// Ablation benchmarks for the design choices called out in DESIGN.md:
// protocol thresholds, the region-coalescing optimizer, and the
// contiguous fast path of the derived-datatype engine.
package mpicd_test

import (
	"fmt"
	"testing"
	"time"

	"mpicd/internal/core"
	"mpicd/internal/ddtbench"
	"mpicd/internal/fabric"
	"mpicd/internal/harness"
	"mpicd/internal/obs"
	"mpicd/internal/ucp"
)

// benchOpWith is benchOp with explicit world options.
func benchOpWith(b *testing.B, opt core.Options, op harness.Op) {
	b.Helper()
	sys := core.NewSystem(2, opt)
	defer sys.Close()
	iters := b.N
	done := make(chan error, 1)
	go func() {
		c := sys.Comm(1)
		for i := 0; i < iters; i++ {
			if err := op.Recv(c, 0, 1); err != nil {
				done <- err
				return
			}
			if err := op.Send(c, 0, 2); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	c := sys.Comm(0)
	b.SetBytes(2 * op.Bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op.Send(c, 1, 1); err != nil {
			b.Fatal(err)
		}
		if err := op.Recv(c, 1, 2); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblationRndvThreshold sweeps the eager→rendezvous switch for a
// contiguous 64 KiB transfer: too low pays handshakes, too high pays the
// extra eager staging copies.
func BenchmarkAblationRndvThreshold(b *testing.B) {
	const size = 64 * 1024
	for _, thresh := range []int64{4 << 10, 32 << 10, 256 << 10} {
		b.Run(fmt.Sprintf("thresh-%dK", thresh/1024), func(b *testing.B) {
			opt := core.Options{UCP: ucp.Config{RndvThresh: thresh}}
			benchOpWith(b, opt, harness.PickleOp("roofline", nil, size))
		})
	}
}

// BenchmarkAblationIovRndvMin sweeps the region-list rendezvous threshold
// on a region-heavy transfer (double-vec, 1024-byte subvectors, 64 KiB):
// below the threshold regions are gathered into eager fragments, above it
// they move zero-copy but pay the handshake.
func BenchmarkAblationIovRndvMin(b *testing.B) {
	const size = 64 * 1024
	for _, min := range []int64{1 << 10, 8 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("min-%dK", min/1024), func(b *testing.B) {
			opt := core.Options{UCP: ucp.Config{IovRndvMin: min}}
			benchOpWith(b, opt, harness.DoubleVecOp("custom", size, 1024))
		})
	}
}

// BenchmarkAblationFragSize sweeps the eager fragment size for a 256 KiB
// callback-packed transfer: small fragments mean more per-packet
// overhead, large ones more staging memory.
func BenchmarkAblationFragSize(b *testing.B) {
	for _, frag := range []int{4 << 10, 16 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("frag-%dK", frag/1024), func(b *testing.B) {
			opt := core.Options{UCP: ucp.Config{FragSize: frag, RndvThresh: 1 << 30}}
			opt.Fabric.FragSize = frag
			benchOpWith(b, opt, harness.StructSimpleOp("custom", 256<<10))
		})
	}
}

// BenchmarkAblationRegionCoalescing contrasts the two region exposures of
// the same exchange: NAS_MG_y's coalesced rows (few large regions)
// versus NAS_MG_x's per-element regions (thousands of 8-byte pieces) at
// the same packed size — the mechanism behind Figure 10's region
// win/loss split.
func BenchmarkAblationRegionCoalescing(b *testing.B) {
	for _, name := range []string{"NAS_MG_y", "NAS_MG_x"} {
		k, err := ddtbench.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		in := k.Instance(1)
		op, err := harness.DDTBenchOp(in, ddtbench.MethodCustomRegions)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s-%dregions", name, in.Type.NumRuns()), func(b *testing.B) {
			benchOpWith(b, core.Options{}, op)
		})
	}
}

// BenchmarkAblationPullStripes sweeps the striped-rendezvous fan-out
// (Config.PullStripes) over large transfers. struct-vec exposes regions
// and packs under the non-inorder contract, so stripes engage; double-vec
// is declared inorder and must fall back to one sequential pull at every
// setting — its flat curve is the correctness baseline. The 32 KiB point
// stays under PullStripeThresh and pins the no-regression claim for small
// messages. Wall-clock gains need real cores: on GOMAXPROCS=1 the stripes
// time-slice and the sweep only shows the fan-out overhead staying flat.
func BenchmarkAblationPullStripes(b *testing.B) {
	sizes := []int{32 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20}
	ops := []struct {
		name string
		op   func(size int) harness.Op
	}{
		{"struct-vec", func(size int) harness.Op { return harness.StructVecOp("custom", size) }},
		{"double-vec-inorder", func(size int) harness.Op { return harness.DoubleVecOp("custom", size, 1024) }},
	}
	for _, o := range ops {
		for _, size := range sizes {
			for _, stripes := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("%s/size-%dK/stripes-%d", o.name, size/1024, stripes), func(b *testing.B) {
					opt := core.Options{UCP: ucp.Config{
						PullStripes:      stripes,
						PullStripeThresh: ucp.DefaultPullStripeThresh,
					}}
					benchOpWith(b, opt, o.op(size))
				})
			}
		}
	}
}

// BenchmarkAblationObs prices the observability layer on the latency
// path: off (Config.Obs nil — one pointer check per instrumentation
// site), metrics (registry counters, gauges and histograms) and trace
// (metrics plus the per-message lifecycle ring). The 1 KiB point rides
// eager, 64 KiB rides rendezvous. Allocations are reported: the off and
// on variants must match — the layer adds timestamps and atomic bucket
// increments, never per-message garbage (pinned by
// TestObsEagerAllocsPinned in internal/core).
func BenchmarkAblationObs(b *testing.B) {
	modes := []struct {
		name string
		mk   func() *obs.Observer
	}{
		{"off", func() *obs.Observer { return nil }},
		{"metrics", func() *obs.Observer { return obs.New(0) }},
		{"trace", func() *obs.Observer { return obs.New(4096) }},
	}
	for _, size := range []int64{1 << 10, 64 << 10} {
		for _, m := range modes {
			b.Run(fmt.Sprintf("size-%dK/%s", size/1024, m.name), func(b *testing.B) {
				b.ReportAllocs()
				opt := core.Options{UCP: ucp.Config{Obs: m.mk()}}
				benchOpWith(b, opt, harness.PickleOp("roofline", nil, size))
			})
		}
	}
}

// BenchmarkAblationContigFastPath measures the derived-datatype engine's
// contiguous shortcut against the generic walk on the same bytes.
func BenchmarkAblationContigFastPath(b *testing.B) {
	const size = 1 << 20
	b.Run("contig-fast-path", func(b *testing.B) {
		benchOpWith(b, core.Options{}, harness.StructSimpleNoGapOp("rsmpi", size))
	})
	b.Run("gapped-engine-walk", func(b *testing.B) {
		benchOpWith(b, core.Options{}, harness.StructSimpleOp("rsmpi", size))
	})
}

// BenchmarkAblationHeartbeat prices the liveness detector on the eager
// latency path: off (Heartbeat.Period zero — the NIC is not wrapped at
// all), and on at two probe cadences. With traffic flowing, detection is
// piggybacked — one atomic last-seen store per inbound packet and a kind
// check — and the prober never fires, so the on/off gap is the entire
// per-message cost of failure detection. Allocations must match exactly
// (pinned by TestHeartbeatEagerAllocsPinned in internal/core).
func BenchmarkAblationHeartbeat(b *testing.B) {
	modes := []struct {
		name string
		hb   fabric.DetectorConfig
	}{
		{"off", fabric.DetectorConfig{}},
		{"period-100ms", fabric.DetectorConfig{Period: 100 * time.Millisecond}},
		{"period-5ms", fabric.DetectorConfig{Period: 5 * time.Millisecond}},
	}
	for _, size := range []int64{1 << 10, 64 << 10} {
		for _, m := range modes {
			b.Run(fmt.Sprintf("size-%dK/%s", size/1024, m.name), func(b *testing.B) {
				b.ReportAllocs()
				opt := core.Options{UCP: ucp.Config{Heartbeat: m.hb}}
				benchOpWith(b, opt, harness.PickleOp("roofline", nil, size))
			})
		}
	}
}
