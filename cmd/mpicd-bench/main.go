// mpicd-bench regenerates the paper's evaluation figures and tables.
//
// Usage:
//
//	mpicd-bench -fig all            # every figure (slow)
//	mpicd-bench -fig 1              # Figure 1 only
//	mpicd-bench -fig 10 -scale 2    # DDTBench table at scale 2
//	mpicd-bench -fig tableI
//	mpicd-bench -fig 8 -quick       # reduced iterations/sizes
//
// Output is an aligned text table per figure: one row per message size,
// one column per method, "mean ±dev" with the deviation over repeated
// runs (the paper averages 4 runs and shows error bars).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpicd/internal/ddt"
	"mpicd/internal/harness"
	"mpicd/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 1-10, tableI, or all")
	quick := flag.Bool("quick", false, "reduced iterations and size sweep")
	scale := flag.Int("scale", 1, "DDTBench size scale for figure 10")
	runs := flag.Int("runs", 0, "override number of measurement runs")
	stats := flag.String("stats", "", "dump transport metrics as JSON after the run: a file path, or - for stderr")
	traceCap := flag.Int("trace", 0, "with -stats, also keep the last N per-message lifecycle events")
	planCache := flag.Bool("plancache", false, "print datatype plan-cache counters after the run")
	flag.Parse()

	cfg := harness.Full
	if *quick {
		cfg = harness.Quick
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	var observer *obs.Observer
	if *stats != "" {
		observer = obs.New(*traceCap)
		cfg.Opt.UCP.Obs = observer
	}

	figures := map[string]func() error{
		"1":  func() error { return printFig(harness.Fig1(cfg)) },
		"2":  func() error { return printFig(harness.Fig2(cfg)) },
		"3":  func() error { return printFig(harness.Fig3(cfg)) },
		"4":  func() error { return printFig(harness.Fig4(cfg)) },
		"5":  func() error { return printFig(harness.Fig5(cfg)) },
		"6":  func() error { return printFig(harness.Fig6(cfg)) },
		"7":  func() error { return printFig(harness.Fig7(cfg)) },
		"8":  func() error { return printFig(harness.Fig8(cfg)) },
		"9":  func() error { return printFig(harness.Fig9(cfg)) },
		"10": func() error { return printTable(harness.Fig10(cfg, *scale)) },
		"tableI": func() error {
			harness.TableI().Print(os.Stdout)
			return nil
		},
	}

	var order []string
	switch strings.ToLower(*fig) {
	case "all":
		order = []string{"tableI", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10"}
	default:
		order = []string{*fig}
	}
	for _, id := range order {
		gen, ok := figures[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q (want 1-10, tableI, all)\n", id)
			os.Exit(2)
		}
		if err := gen(); err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if observer != nil {
		if err := dumpStats(observer, *stats); err != nil {
			fmt.Fprintf(os.Stderr, "stats: %v\n", err)
			os.Exit(1)
		}
	}
	if *planCache {
		hits, misses, compileNS := ddt.PlanCacheStats()
		fmt.Fprintf(os.Stderr, "plan cache: %d hits, %d misses, %d cached plans, %.3fms compiling\n",
			hits, misses, ddt.PlanCacheSize(), float64(compileNS)/1e6)
	}
}

// dumpStats writes the accumulated metrics (and trace, when enabled) to
// dest: a file path, or "-" for stderr so the dump does not interleave
// with the figure tables on stdout.
func dumpStats(o *obs.Observer, dest string) error {
	if dest == "-" {
		return o.WriteJSON(os.Stderr)
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	if err := o.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printFig(f *harness.Figure, err error) error {
	if err != nil {
		return err
	}
	f.Print(os.Stdout)
	return nil
}

func printTable(t *harness.Table, err error) error {
	if err != nil {
		return err
	}
	t.Print(os.Stdout)
	return nil
}
