// ddtbench runs the reproduced DDTBench subset (paper Section V.C).
//
// Usage:
//
//	ddtbench -table                 # print Table I (kernel characteristics)
//	ddtbench                        # run every kernel, every method
//	ddtbench -kernel MILC -scale 2  # one kernel at a larger size
package main

import (
	"flag"
	"fmt"
	"os"

	"mpicd/internal/core"
	"mpicd/internal/ddtbench"
	"mpicd/internal/harness"
)

// verifyAll runs one verified exchange per kernel and method before any
// timing, failing loudly on payload corruption.
func verifyAll(kernels []*ddtbench.Kernel, scale int) error {
	for _, k := range kernels {
		in := k.Instance(scale)
		for _, m := range in.Methods() {
			src := in.NewImage(3)
			dst := make([]byte, in.ImageLen)
			err := core.Run(2, core.Options{}, func(c *core.Comm) error {
				e, err := ddtbench.NewEndpoint(in, m)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					return e.Send(c, src, 1, 1)
				}
				return e.Recv(c, dst, 0, 1)
			})
			if err != nil {
				return fmt.Errorf("%s/%s: %w", k.Name, m, err)
			}
			if m != ddtbench.MethodReference && !in.PackedEqual(src, dst) {
				return fmt.Errorf("%s/%s: payload corrupted", k.Name, m)
			}
		}
		fmt.Printf("verified %s (all methods)\n", k.Name)
	}
	return nil
}

func main() {
	table := flag.Bool("table", false, "print Table I and exit")
	kernel := flag.String("kernel", "", "run a single kernel (default: all)")
	scale := flag.Int("scale", 1, "exchange size scale")
	quick := flag.Bool("quick", false, "reduced iterations")
	verify := flag.Bool("verify", false, "verify payload integrity per method before timing")
	flag.Parse()

	if *table {
		harness.TableI().Print(os.Stdout)
		return
	}

	cfg := harness.Full
	if *quick {
		cfg = harness.Quick
	}

	kernels := ddtbench.All
	if *kernel != "" {
		k, err := ddtbench.ByName(*kernel)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		kernels = []*ddtbench.Kernel{k}
	}

	if *verify {
		if err := verifyAll(kernels, *scale); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	t := &harness.Table{ID: "ddtbench", Title: fmt.Sprintf("bandwidth in MB/s (scale %d)", *scale)}
	for _, m := range harness.Fig10Methods {
		t.Columns = append(t.Columns, string(m))
	}
	for _, k := range kernels {
		in := k.Instance(*scale)
		row := harness.TableRow{Name: fmt.Sprintf("%s (%d KiB)", k.Name, in.Packed/1024)}
		for _, m := range harness.Fig10Methods {
			if m == ddtbench.MethodCustomRegions && !k.Regions {
				row.Cells = append(row.Cells, "-")
				continue
			}
			op, err := harness.DDTBenchOp(in, m)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			mean, dev, err := harness.MeasureBandwidth(cfg, op)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			row.Cells = append(row.Cells, fmt.Sprintf("%.0f ±%.0f", mean, dev))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Print(os.Stdout)
}
