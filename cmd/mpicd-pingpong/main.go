// mpicd-pingpong is an OSU-style pingpong over the reproduction's MPI
// stack, either in-process or across real processes over TCP.
//
// In-process (both ranks as goroutines):
//
//	mpicd-pingpong
//
// Across two processes on real sockets:
//
//	mpicd-pingpong -transport tcp -rank 0 -addrs 127.0.0.1:7771,127.0.0.1:7772
//	mpicd-pingpong -transport tcp -rank 1 -addrs 127.0.0.1:7771,127.0.0.1:7772
//
// The -type flag selects the datatype exercised: bytes (contiguous),
// struct-simple / struct-vec (derived vs custom vs manual packing) or
// doublevec (dynamic custom type).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mpicd/internal/harness"
	"mpicd/mpi"
)

func main() {
	transport := flag.String("transport", "inproc", "inproc or tcp")
	rank := flag.Int("rank", 0, "rank of this process (tcp only)")
	addrs := flag.String("addrs", "", "comma-separated rank addresses (tcp only)")
	typ := flag.String("type", "bytes", "bytes, struct-simple, struct-vec or doublevec")
	method := flag.String("method", "custom", "custom, packed/manual-pack or rsmpi")
	maxSize := flag.Int64("max", 1<<20, "largest message size in bytes")
	iters := flag.Int("iters", 100, "timed iterations per size")
	stats := flag.String("stats", "", "dump transport metrics as JSON after the run: a file path, or - for stderr")
	traceCap := flag.Int("trace", 0, "with -stats, also keep the last N per-message lifecycle events")
	flag.Parse()

	var observer *mpi.Observer
	opt := mpi.Options{}
	if *stats != "" {
		observer = mpi.NewObserver(*traceCap)
		opt.UCP.Obs = observer
	}

	op := func(size int64) harness.Op {
		switch *typ {
		case "bytes":
			return harness.PickleOp("roofline", nil, size)
		case "doublevec":
			m := *method
			if m == "custom" {
				return harness.DoubleVecOp("custom", int(size), 1024)
			}
			return harness.DoubleVecOp("manual-pack", int(size), 1024)
		case "struct-simple":
			return harness.StructSimpleOp(*method, int(size))
		case "struct-vec":
			return harness.StructVecOp(*method, int(size))
		default:
			log.Fatalf("unknown -type %q", *typ)
			return harness.Op{}
		}
	}

	run := func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			fmt.Printf("# pingpong type=%s method=%s transport=%s\n", *typ, *method, *transport)
			fmt.Printf("%12s %14s %14s\n", "bytes", "latency(us)", "MB/s")
		}
		peer := 1 - c.Rank()
		for _, size := range harness.Sizes(64, *maxSize, *maxSize) {
			o := op(size)
			if err := c.Barrier(); err != nil {
				return err
			}
			start := time.Now()
			for i := 0; i < *iters; i++ {
				if c.Rank() == 0 {
					if err := o.Send(c, peer, 1); err != nil {
						return err
					}
					if err := o.Recv(c, peer, 2); err != nil {
						return err
					}
				} else {
					if err := o.Recv(c, peer, 1); err != nil {
						return err
					}
					if err := o.Send(c, peer, 2); err != nil {
						return err
					}
				}
			}
			if c.Rank() == 0 {
				rtt := time.Since(start).Seconds() / float64(*iters)
				lat := rtt / 2 * 1e6
				bw := 2 * float64(o.Bytes) / rtt / 1e6
				fmt.Printf("%12d %14.2f %14.1f\n", o.Bytes, lat, bw)
			}
		}
		return nil
	}

	switch *transport {
	case "inproc":
		if err := mpi.Run(2, opt, run); err != nil {
			log.Fatal(err)
		}
	case "tcp":
		list := strings.Split(*addrs, ",")
		if len(list) != 2 {
			log.Fatal("-addrs must list exactly two rank addresses")
		}
		world, err := mpi.ConnectTCP(*rank, list, opt)
		if err != nil {
			log.Fatal(err)
		}
		defer world.Close()
		if err := run(world.Comm); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -transport %q", *transport)
	}
	if observer != nil {
		if err := dumpStats(observer, *stats); err != nil {
			log.Fatal(err)
		}
	}
}

// dumpStats writes the accumulated metrics (and trace, when enabled) to
// dest: a file path, or "-" for stderr so the dump does not interleave
// with the latency table on stdout.
func dumpStats(o *mpi.Observer, dest string) error {
	if dest == "-" {
		return o.WriteJSON(os.Stderr)
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	if err := o.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
