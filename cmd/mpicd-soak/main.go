// mpicd-soak runs the sustained-traffic chaos soak: an in-process world
// under production-shaped load (training-loop halo exchange + gradient
// allreduce, pub/sub broadcast fan-out with bounded-queue backpressure,
// both on persistent operations) while a seeded schedule of faults —
// corruption bursts, link flaps, rank kills — plays out against it. The
// run must hold its invariants end to end: forward progress within the
// watchdog window, verified payloads, ULFM recovery after every kill,
// and a leak-free tear-down.
//
// Usage:
//
//	mpicd-soak                          # 60s, 5 ranks, 1 kill, seed 1
//	mpicd-soak -budget 90s -kills 2
//	mpicd-soak -seed 20240711 -v        # reproduce a logged run, verbose
//	mpicd-soak -report soak.json        # machine-readable report + metrics
//	mpicd-soak -floor 500               # fail below 500 training steps/s
//
// -multiproc moves the kills from goroutines to real OS processes: the
// world is launched as N supervised workers over a cross-process
// transport, a seeded schedule SIGKILLs live ranks, survivors shrink
// and re-grow each supervised respawn, and the run passes only if the
// job finishes back at full size with verified collectives:
//
//	mpicd-soak -multiproc -kills 2
//	mpicd-soak -multiproc -transport tcp -seed 7 -report soak.json
//
// Exit status 0 iff every invariant held. A failing run prints the
// violated invariants and (when -report is set) the full metric
// registry; the seed in the report header reproduces the exact chaos
// schedule.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"mpicd/internal/launch"
	"mpicd/internal/obs"
	"mpicd/internal/workloads"
	"mpicd/mpi"
)

func main() {
	if task := os.Getenv(launch.EnvTask); task != "" && launch.IsWorker() {
		// Re-executed as a multiproc worker.
		in, err := launch.FromEnv()
		if err != nil {
			log.Fatalf("worker: %v", err)
		}
		if err := launch.RunTask(task, in, mpi.Options{}); err != nil {
			log.Fatalf("worker rank %d: %v", in.Rank, err)
		}
		return
	}

	ranks := flag.Int("ranks", 5, "world size")
	seed := flag.Int64("seed", 1, "chaos schedule seed (a report's seed reproduces its run)")
	budget := flag.Duration("budget", 60*time.Second, "wall-clock traffic budget")
	kills := flag.Int("kills", 1, "rank-kill events (rank 0 is always protected)")
	bursts := flag.Int("bursts", 0, "corruption-burst events (0 = one per rank)")
	flaps := flag.Int("flaps", 0, "link-flap events (0 = one per rank)")
	window := flag.Duration("watchdog", 5*time.Second, "watchdog no-progress window")
	floor := flag.Float64("floor", 0, "minimum sustained training steps/sec (0 = no floor)")
	report := flag.String("report", "", "write the JSON report (with full metrics) to this path, or - for stdout")
	verbose := flag.Bool("v", false, "log chaos events and recoveries as they happen")
	multiproc := flag.Bool("multiproc", false, "launch real OS processes and SIGKILL them instead of in-process chaos")
	transport := flag.String("transport", "shm", "multiproc transport: shm or tcp")
	flag.Parse()

	if *multiproc {
		if err := runMultiproc(*ranks, *transport, *seed, *kills, *budget, *report, *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "mpicd-soak: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "mpicd-soak: PASS")
		return
	}

	reg := obs.NewRegistry()
	cfg := workloads.SoakConfig{
		Ranks:          *ranks,
		Seed:           *seed,
		Budget:         *budget,
		Kills:          *kills,
		CorruptBursts:  *bursts,
		LinkFlaps:      *flaps,
		WatchdogWindow: *window,
		MinStepsPerSec: *floor,
		Registry:       reg,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	fmt.Fprintf(os.Stderr, "mpicd-soak: %d ranks, budget %v, %d kill(s), seed %d\n",
		cfg.Ranks, cfg.Budget, cfg.Kills, cfg.Seed)
	rep, runErr := workloads.RunSoak(cfg)

	fmt.Fprintf(os.Stderr,
		"mpicd-soak: %v elapsed, %d/%d ranks survived %d chaos event(s) (%d killed, %d fenced)\n"+
			"  training: %d steps (%.0f/s), p50 %v, p99 %v\n"+
			"  pub/sub:  %d frames published, %d delivered, p50 %v, p99 %v\n"+
			"  recovery: %d cycles; stalls: %d; leak check: %s\n",
		rep.Elapsed.Round(time.Millisecond), rep.Survivors, rep.Ranks, len(rep.Events), len(rep.Killed), len(rep.Fenced),
		rep.TrainSteps, rep.StepsPerSec, rep.TrainP50, rep.TrainP99,
		rep.PubFrames, rep.Delivered, rep.PubSubP50, rep.PubSubP99,
		rep.Recoveries, rep.Stalls, rep.LeakCheck)

	if *report != "" {
		if err := writeReport(*report, rep, reg); err != nil {
			fmt.Fprintf(os.Stderr, "mpicd-soak: writing report: %v\n", err)
			os.Exit(1)
		}
	}

	if runErr != nil {
		fmt.Fprintf(os.Stderr, "mpicd-soak: FAIL: %v\n", runErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "mpicd-soak: PASS")
}

// runMultiproc is the cross-process soak: launch the elastic task as
// real supervised worker processes, SIGKILL `kills` of them on the
// seeded schedule, and require the job to finish back at full size.
// Rank 0's recovery telemetry (detection latency, recovery-cycle time)
// is printed and, with -report, written as JSON alongside the launcher's
// per-rank exit log.
func runMultiproc(ranks int, transport string, seed int64, kills int, budget time.Duration, report string, verbose bool) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	repPath := filepath.Join(os.TempDir(), fmt.Sprintf("mpicd-soak-elastic-%d.json", os.Getpid()))
	defer os.Remove(repPath)
	// Size the loop to the wall-clock budget: 25ms-spaced iterations,
	// leaving the kill schedule (2s spacing, 1s minimum uptime) room to
	// land every event while traffic still flows.
	iters := int(budget / (25 * time.Millisecond))
	if iters < 100 {
		iters = 100
	}
	cmd := launch.Cmd{
		N:         ranks,
		Prog:      exe,
		Transport: transport,
		Timeout:   budget + 2*time.Minute,
		Supervise: &launch.Supervise{},
		Chaos:     &launch.Chaos{Seed: seed, Kills: kills},
		Env: []string{
			launch.EnvTask + "=elastic",
			launch.EnvElasticKill + "=none",
			fmt.Sprintf("%s=%d", launch.EnvElasticIters, iters),
			launch.EnvElasticSpin + "=25ms",
			launch.EnvElasticOut + "=" + repPath,
		},
	}
	if !verbose {
		cmd.Stdout = os.Stderr // worker chatter stays visible but off stdout
	}
	fmt.Fprintf(os.Stderr, "mpicd-soak: multiproc: %d ranks over %s, %d kill(s), seed %d, %d iterations\n",
		ranks, transport, kills, seed, iters)
	start := time.Now()
	runErr := cmd.Run()
	elapsed := time.Since(start)

	var killed, respawned int
	for _, ex := range cmd.ExitLog() {
		if ex.Cause != "ok" {
			killed++
		}
		if ex.Epoch > 0 {
			respawned++
		}
		fmt.Fprintf(os.Stderr, "  rank %d epoch %d: %s\n", ex.Rank, ex.Epoch, ex.Cause)
	}
	if runErr != nil {
		return runErr
	}

	var rep struct {
		Transport  string  `json:"transport"`
		Ranks      int     `json:"ranks"`
		Iters      int     `json:"iters"`
		Recoveries int     `json:"recoveries"`
		DetectMs   float64 `json:"detect_ms"`
		RecoverMs  float64 `json:"recover_ms"`
	}
	if b, err := os.ReadFile(repPath); err == nil {
		_ = json.Unmarshal(b, &rep)
	}
	fmt.Fprintf(os.Stderr,
		"mpicd-soak: multiproc: %v elapsed, %d killed, %d respawned, %d recovery cycle(s)\n"+
			"  detect %.1fms, recover %.1fms\n",
		elapsed.Round(time.Millisecond), killed, respawned, rep.Recoveries, rep.DetectMs, rep.RecoverMs)
	if kills > 0 && respawned == 0 {
		return fmt.Errorf("chaos schedule (%d kills) produced no respawns", kills)
	}
	if report != "" {
		doc := struct {
			Mode      string            `json:"mode"`
			Transport string            `json:"transport"`
			Ranks     int               `json:"ranks"`
			Seed      int64             `json:"seed"`
			ElapsedMs float64           `json:"elapsed_ms"`
			Killed    int               `json:"killed"`
			Respawned int               `json:"respawned"`
			Recovery  any               `json:"recovery"`
			ExitLog   []launch.RankExit `json:"exit_log"`
		}{"multiproc", transport, ranks, seed, float64(elapsed.Microseconds()) / 1000, killed, respawned, rep, cmd.ExitLog()}
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		if report == "-" {
			_, err = os.Stdout.Write(out)
			return err
		}
		return os.WriteFile(report, out, 0o644)
	}
	return nil
}

// writeReport emits the soak report plus the full metric registry as one
// JSON document.
func writeReport(path string, rep *workloads.SoakReport, reg *obs.Registry) error {
	doc := struct {
		*workloads.SoakReport
		Metrics obs.Snapshot `json:"metrics"`
	}{rep, reg.Snapshot()}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
