// mpicd-soak runs the sustained-traffic chaos soak: an in-process world
// under production-shaped load (training-loop halo exchange + gradient
// allreduce, pub/sub broadcast fan-out with bounded-queue backpressure,
// both on persistent operations) while a seeded schedule of faults —
// corruption bursts, link flaps, rank kills — plays out against it. The
// run must hold its invariants end to end: forward progress within the
// watchdog window, verified payloads, ULFM recovery after every kill,
// and a leak-free tear-down.
//
// Usage:
//
//	mpicd-soak                          # 60s, 5 ranks, 1 kill, seed 1
//	mpicd-soak -budget 90s -kills 2
//	mpicd-soak -seed 20240711 -v        # reproduce a logged run, verbose
//	mpicd-soak -report soak.json        # machine-readable report + metrics
//	mpicd-soak -floor 500               # fail below 500 training steps/s
//
// Exit status 0 iff every invariant held. A failing run prints the
// violated invariants and (when -report is set) the full metric
// registry; the seed in the report header reproduces the exact chaos
// schedule.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mpicd/internal/obs"
	"mpicd/internal/workloads"
)

func main() {
	ranks := flag.Int("ranks", 5, "world size")
	seed := flag.Int64("seed", 1, "chaos schedule seed (a report's seed reproduces its run)")
	budget := flag.Duration("budget", 60*time.Second, "wall-clock traffic budget")
	kills := flag.Int("kills", 1, "rank-kill events (rank 0 is always protected)")
	bursts := flag.Int("bursts", 0, "corruption-burst events (0 = one per rank)")
	flaps := flag.Int("flaps", 0, "link-flap events (0 = one per rank)")
	window := flag.Duration("watchdog", 5*time.Second, "watchdog no-progress window")
	floor := flag.Float64("floor", 0, "minimum sustained training steps/sec (0 = no floor)")
	report := flag.String("report", "", "write the JSON report (with full metrics) to this path, or - for stdout")
	verbose := flag.Bool("v", false, "log chaos events and recoveries as they happen")
	flag.Parse()

	reg := obs.NewRegistry()
	cfg := workloads.SoakConfig{
		Ranks:          *ranks,
		Seed:           *seed,
		Budget:         *budget,
		Kills:          *kills,
		CorruptBursts:  *bursts,
		LinkFlaps:      *flaps,
		WatchdogWindow: *window,
		MinStepsPerSec: *floor,
		Registry:       reg,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	fmt.Fprintf(os.Stderr, "mpicd-soak: %d ranks, budget %v, %d kill(s), seed %d\n",
		cfg.Ranks, cfg.Budget, cfg.Kills, cfg.Seed)
	rep, runErr := workloads.RunSoak(cfg)

	fmt.Fprintf(os.Stderr,
		"mpicd-soak: %v elapsed, %d/%d ranks survived %d chaos event(s) (%d killed, %d fenced)\n"+
			"  training: %d steps (%.0f/s), p50 %v, p99 %v\n"+
			"  pub/sub:  %d frames published, %d delivered, p50 %v, p99 %v\n"+
			"  recovery: %d cycles; stalls: %d; leak check: %s\n",
		rep.Elapsed.Round(time.Millisecond), rep.Survivors, rep.Ranks, len(rep.Events), len(rep.Killed), len(rep.Fenced),
		rep.TrainSteps, rep.StepsPerSec, rep.TrainP50, rep.TrainP99,
		rep.PubFrames, rep.Delivered, rep.PubSubP50, rep.PubSubP99,
		rep.Recoveries, rep.Stalls, rep.LeakCheck)

	if *report != "" {
		if err := writeReport(*report, rep, reg); err != nil {
			fmt.Fprintf(os.Stderr, "mpicd-soak: writing report: %v\n", err)
			os.Exit(1)
		}
	}

	if runErr != nil {
		fmt.Fprintf(os.Stderr, "mpicd-soak: FAIL: %v\n", runErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "mpicd-soak: PASS")
}

// writeReport emits the soak report plus the full metric registry as one
// JSON document.
func writeReport(path string, rep *workloads.SoakReport, reg *obs.Registry) error {
	doc := struct {
		*workloads.SoakReport
		Metrics obs.Snapshot `json:"metrics"`
	}{rep, reg.Snapshot()}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
