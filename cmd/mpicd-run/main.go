// mpicd-run is the repo's mpirun: it forks an N-rank job as N local
// processes wired together over the shared-memory or TCP provider.
//
// Launch an arbitrary worker binary (it reads its identity from the
// MPICD_* environment — see internal/launch):
//
//	mpicd-run -n 8 ./my-worker arg1 arg2
//
// Or one of the built-in smoke workloads, run by re-executing this
// binary:
//
//	mpicd-run -n 128 -transport shm -task pingpong
//	mpicd-run -n 32 -transport tcp -task allreduce
//	mpicd-run -n 16 -task ringping          # asserts lazy dialing held
//
// The -rpn flag carves the job into synthetic nodes of that many
// consecutive ranks, which routes small collectives hierarchically and
// scales per-rank pull parallelism as a real multi-node placement would.
//
// -supervise turns first-failure-kill into a restart policy: failed
// ranks are respawned (with a fresh incarnation epoch) until their
// per-rank budget runs out, and every termination is classified and
// reported. -chaos N layers a seeded SIGKILL schedule on top; together
// with the elastic task that is the full recovery demo — kill, detect,
// shrink, respawn, grow:
//
//	mpicd-run -n 4 -task elastic -supervise
//	mpicd-run -n 4 -task elastic -supervise -chaos 2 -chaos-seed 7
//
// -bench-out runs the cross-transport microbenchmark suite (eager
// round-trip latency and 4 MiB striped-pull bandwidth over shm, tcp and
// the in-process transport) and writes the combined JSON:
//
//	mpicd-run -bench-out BENCH_shm.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"mpicd/internal/launch"
	"mpicd/mpi"
)

func main() {
	log.SetFlags(0)
	if task := os.Getenv(launch.EnvTask); task != "" && launch.IsWorker() {
		runWorker(task)
		return
	}

	n := flag.Int("n", 2, "number of ranks")
	transport := flag.String("transport", "shm", "shm or tcp")
	task := flag.String("task", "pingpong", "built-in workload when no program is given: pingpong, allreduce, ringping, elastic, bench")
	rpn := flag.Int("rpn", 0, "ranks per synthetic node (0: all ranks share one node)")
	dir := flag.String("dir", "", "SHM session directory (default: fresh temp dir)")
	timeout := flag.Duration("timeout", 2*time.Minute, "kill the job after this long")
	benchOut := flag.String("bench-out", "", "run the bench suite and write combined JSON here")
	supervise := flag.Bool("supervise", false, "respawn failed ranks instead of killing the job")
	restarts := flag.Int("restarts", 0, "per-rank respawn budget under -supervise (0: default of 3)")
	chaosKills := flag.Int("chaos", 0, "SIGKILL this many workers on a seeded schedule (implies -supervise)")
	chaosSeed := flag.Int64("chaos-seed", 0, "chaos schedule seed (0: default of 1)")
	chaosEvery := flag.Duration("chaos-interval", 0, "spacing between chaos kills (0: default of 2s)")
	flag.Parse()

	if *benchOut != "" {
		if err := runBenchSuite(*benchOut, *timeout); err != nil {
			log.Fatalf("mpicd-run: %v", err)
		}
		return
	}

	cmd := launch.Cmd{
		N:            *n,
		Transport:    *transport,
		Dir:          *dir,
		RanksPerNode: *rpn,
		Timeout:      *timeout,
	}
	if *supervise || *chaosKills > 0 {
		cmd.Supervise = &launch.Supervise{MaxRestarts: *restarts}
	}
	if *chaosKills > 0 {
		cmd.Chaos = &launch.Chaos{Seed: *chaosSeed, Kills: *chaosKills, Interval: *chaosEvery}
	}
	if flag.NArg() > 0 {
		cmd.Prog = flag.Arg(0)
		cmd.Args = flag.Args()[1:]
	} else {
		exe, err := os.Executable()
		if err != nil {
			log.Fatalf("mpicd-run: %v", err)
		}
		cmd.Prog = exe
		cmd.Env = []string{launch.EnvTask + "=" + *task}
		if *task == "elastic" && cmd.Chaos != nil {
			// The launcher's schedule owns the kills; disable the task's
			// deterministic self-kill so the two don't compound, and
			// stretch the loop so the job outlives the kill schedule
			// (explicit MPICD_ELASTIC_* settings win).
			cmd.Env = append(cmd.Env, launch.EnvElasticKill+"=none")
			if os.Getenv(launch.EnvElasticIters) == "" {
				cmd.Env = append(cmd.Env, launch.EnvElasticIters+"=400")
			}
			if os.Getenv(launch.EnvElasticSpin) == "" {
				cmd.Env = append(cmd.Env, launch.EnvElasticSpin+"=25ms")
			}
		}
	}
	start := time.Now()
	runErr := cmd.Run()
	if cmd.Supervise != nil {
		for _, ex := range cmd.ExitLog() {
			if ex.Cause != "ok" || ex.Epoch > 0 {
				fmt.Printf("mpicd-run: rank %d epoch %d: %s\n", ex.Rank, ex.Epoch, ex.Cause)
			}
		}
	}
	if runErr != nil {
		log.Fatalf("mpicd-run: %v", runErr)
	}
	fmt.Printf("mpicd-run: %d ranks over %s ok in %v\n", *n, *transport, time.Since(start).Round(time.Millisecond))
}

// runWorker is the re-executed side of a built-in workload.
func runWorker(task string) {
	in, err := launch.FromEnv()
	if err != nil {
		log.Fatalf("worker: %v", err)
	}
	if err := launch.RunTask(task, in, mpi.Options{}); err != nil {
		log.Fatalf("worker rank %d: %v", in.Rank, err)
	}
}

// runBenchSuite measures every transport with the same 2-rank pair
// benchmark: in-process ranks directly, shm and tcp through real
// launched processes.
func runBenchSuite(out string, timeout time.Duration) error {
	var results []launch.BenchResult

	var eager, pull float64
	err := mpi.Run(2, mpi.Options{}, func(c *mpi.Comm) error {
		e, p, err := launch.BenchPair(c)
		if c.Rank() == 0 {
			eager, pull = e, p
		}
		return err
	})
	if err != nil {
		return fmt.Errorf("inproc bench: %w", err)
	}
	results = append(results, launch.BenchResult{
		Transport: "inproc", Ranks: 2, EagerRTTus: eager, PullMiBps: pull,
	})

	exe, err := os.Executable()
	if err != nil {
		return err
	}
	for _, tr := range []string{launch.TransportSHM, launch.TransportTCP} {
		tmp := filepath.Join(os.TempDir(), fmt.Sprintf("mpicd-bench-%s-%d.json", tr, os.Getpid()))
		cmd := launch.Cmd{
			N:         2,
			Prog:      exe,
			Transport: tr,
			Timeout:   timeout,
			Env:       []string{launch.EnvTask + "=bench", launch.EnvBenchOut + "=" + tmp},
		}
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("%s bench: %w", tr, err)
		}
		b, err := os.ReadFile(tmp)
		if err != nil {
			return fmt.Errorf("%s bench result: %w", tr, err)
		}
		os.Remove(tmp)
		var r launch.BenchResult
		if err := json.Unmarshal(b, &r); err != nil {
			return fmt.Errorf("%s bench result: %w", tr, err)
		}
		results = append(results, r)
	}

	doc := struct {
		GeneratedAt string               `json:"generated_at"`
		Results     []launch.BenchResult `json:"results"`
	}{time.Now().UTC().Format(time.RFC3339), results}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-7s eager rtt %8.2f us   4MiB pull %9.1f MiB/s\n", r.Transport, r.EagerRTTus, r.PullMiBps)
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
