// Benchmarks reproducing every table and figure of the paper's
// evaluation (Section V) as testing.B benchmarks: one benchmark family
// per figure, one sub-benchmark per (method, representative size). The
// full sweeps behind the actual plots are produced by cmd/mpicd-bench;
// these benches regenerate each figure's characteristic points under
// `go test -bench`, with MB/s reported via SetBytes.
//
// Figure index:
//
//	BenchmarkFig1DoubleVecLatency   — Fig 1 (latency vs subvector size)
//	BenchmarkFig2DoubleVecBandwidth — Fig 2
//	BenchmarkFig3StructVecLatency   — Fig 3
//	BenchmarkFig4StructVecBandwidth — Fig 4
//	BenchmarkFig5StructSimpleLatency       — Fig 5
//	BenchmarkFig6StructSimpleNoGapLatency  — Fig 6
//	BenchmarkFig7StructSimpleBandwidth     — Fig 7
//	BenchmarkFig8PickleSingleArray  — Fig 8
//	BenchmarkFig9PickleComplexObject — Fig 9
//	BenchmarkFig10DDTBench          — Fig 10 (plus the coroutine ablation)
package mpicd_test

import (
	"fmt"
	"testing"

	"mpicd/internal/core"
	"mpicd/internal/ddtbench"
	"mpicd/internal/harness"
)

// benchOp drives b.N pingpong exchanges of op over a fresh 2-rank world.
func benchOp(b *testing.B, op harness.Op) {
	b.Helper()
	sys := core.NewSystem(2, core.Options{})
	defer sys.Close()
	const warm = 4
	iters := b.N + warm
	done := make(chan error, 1)
	go func() {
		c := sys.Comm(1)
		for i := 0; i < iters; i++ {
			if err := op.Recv(c, 0, 1); err != nil {
				done <- err
				return
			}
			if err := op.Send(c, 0, 2); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	c := sys.Comm(0)
	fail := func(err error) {
		b.Fatal(err)
	}
	for i := 0; i < warm; i++ {
		if err := op.Send(c, 1, 1); err != nil {
			fail(err)
		}
		if err := op.Recv(c, 1, 2); err != nil {
			fail(err)
		}
	}
	b.SetBytes(2 * op.Bytes) // a pingpong moves the payload twice
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op.Send(c, 1, 1); err != nil {
			fail(err)
		}
		if err := op.Recv(c, 1, 2); err != nil {
			fail(err)
		}
	}
	b.StopTimer()
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig1DoubleVecLatency reproduces Figure 1: double-vec latency
// at a small message size for each subvector size and method.
func BenchmarkFig1DoubleVecLatency(b *testing.B) {
	const msg = 4096
	for _, sub := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("custom-sub%d", sub), func(b *testing.B) {
			benchOp(b, harness.DoubleVecOp("custom", msg, sub))
		})
	}
	b.Run("manual-pack", func(b *testing.B) {
		benchOp(b, harness.DoubleVecOp("manual-pack", msg, 1024))
	})
	b.Run("rsmpi-bytes-baseline", func(b *testing.B) {
		benchOp(b, harness.DoubleVecOp("rsmpi-bytes-baseline", msg, 1024))
	})
}

// BenchmarkFig2DoubleVecBandwidth reproduces Figure 2: double-vec
// bandwidth with 1024-byte subvectors at a large message size.
func BenchmarkFig2DoubleVecBandwidth(b *testing.B) {
	const msg = 1 << 20
	for _, m := range []string{"custom", "manual-pack", "rsmpi-bytes-baseline"} {
		b.Run(m, func(b *testing.B) {
			benchOp(b, harness.DoubleVecOp(m, msg, 1024))
		})
	}
}

func structBench(b *testing.B, opMaker func(method string, size int) harness.Op, size int) {
	b.Helper()
	for _, m := range []string{"custom", "packed", "rsmpi"} {
		b.Run(fmt.Sprintf("%s-%dB", m, size), func(b *testing.B) {
			benchOp(b, opMaker(m, size))
		})
	}
}

// BenchmarkFig3StructVecLatency reproduces Figure 3: struct-vec latency
// below and around the crossover.
func BenchmarkFig3StructVecLatency(b *testing.B) {
	structBench(b, harness.StructVecOp, 8212)    // one element
	structBench(b, harness.StructVecOp, 8212*32) // 2^18-ish crossover
}

// BenchmarkFig4StructVecBandwidth reproduces Figure 4: struct-vec
// bandwidth at a large size.
func BenchmarkFig4StructVecBandwidth(b *testing.B) {
	structBench(b, harness.StructVecOp, 8212*256) // ~2 MiB
}

// BenchmarkFig5StructSimpleLatency reproduces Figure 5: struct-simple
// (gapped) latency where the derived-datatype engine suffers.
func BenchmarkFig5StructSimpleLatency(b *testing.B) {
	structBench(b, harness.StructSimpleOp, 20*512) // 10 KiB
}

// BenchmarkFig6StructSimpleNoGapLatency reproduces Figure 6: the no-gap
// variant where the engine's contiguous fast path keeps up.
func BenchmarkFig6StructSimpleNoGapLatency(b *testing.B) {
	for _, m := range []string{"custom", "packed", "rsmpi"} {
		b.Run(m, func(b *testing.B) {
			benchOp(b, harness.StructSimpleNoGapOp(m, 16*512))
		})
	}
}

// BenchmarkFig7StructSimpleBandwidth reproduces Figure 7: struct-simple
// bandwidth at a large size (custom's copy advantage).
func BenchmarkFig7StructSimpleBandwidth(b *testing.B) {
	structBench(b, harness.StructSimpleOp, 20*65536) // ~1.3 MiB
}

// BenchmarkFig8PickleSingleArray reproduces Figure 8: serialized single
// arrays at a post-crossover size.
func BenchmarkFig8PickleSingleArray(b *testing.B) {
	const size = 1 << 20
	for _, m := range []string{"roofline", "pickle-basic", "pickle-oob", "pickle-oob-cdt"} {
		b.Run(m, func(b *testing.B) {
			benchOp(b, harness.PickleOpSingleArray(m, size))
		})
	}
}

// BenchmarkFig9PickleComplexObject reproduces Figure 9: a complex object
// of 128 KiB arrays summing to 1 MiB.
func BenchmarkFig9PickleComplexObject(b *testing.B) {
	const size = 1 << 20
	for _, m := range []string{"roofline", "pickle-basic", "pickle-oob", "pickle-oob-cdt"} {
		b.Run(m, func(b *testing.B) {
			benchOp(b, harness.PickleOpComplexObject(m, size))
		})
	}
}

// BenchmarkFig10DDTBench reproduces Figure 10: every kernel and every
// applicable method (including the custom-coro resumable-pack ablation).
func BenchmarkFig10DDTBench(b *testing.B) {
	for _, k := range ddtbench.All {
		in := k.Instance(1)
		for _, m := range in.Methods() {
			b.Run(fmt.Sprintf("%s/%s", k.Name, m), func(b *testing.B) {
				op, err := harness.DDTBenchOp(in, m)
				if err != nil {
					b.Fatal(err)
				}
				benchOp(b, op)
			})
		}
	}
}

// BenchmarkAblationCoroVsOffsetPack isolates the resumable-pack design
// choice: the same kernel packed via offset recomputation (PackAt) versus
// the suspendable generator (the paper's coroutine experiment), on the
// deepest loop nest in the suite.
func BenchmarkAblationCoroVsOffsetPack(b *testing.B) {
	in := ddtbench.MILC.Instance(1)
	for _, m := range []ddtbench.Method{ddtbench.MethodCustomPack, ddtbench.MethodCustomCoro} {
		b.Run(string(m), func(b *testing.B) {
			op, err := harness.DDTBenchOp(in, m)
			if err != nil {
				b.Fatal(err)
			}
			benchOp(b, op)
		})
	}
}
