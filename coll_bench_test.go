// Collective-engine benchmarks: the algorithm ablations behind
// BENCH_coll.json. Each series pins one algorithm via CollTuning — a huge
// threshold forces the naive schedule, a tiny one forces the chunked
// schedule — so the pipelined binomial Bcast, ring Allgather and
// Rabenseifner Allreduce can be compared against their whole-message
// counterparts on identical worlds.
//
// The chunked schedules win by overlapping tree hops on different cores;
// on GOMAXPROCS=1 every schedule serializes onto one core and moves the
// same total bytes, so the ratios only materialize on multi-core hosts
// (the CI gate below skips itself accordingly).
package mpicd_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"mpicd/internal/core"
	"mpicd/internal/ddt"
	"mpicd/internal/layout"
)

// collRanks is the world size for the collective series (matches the
// BENCH_coll.json acceptance point: 8 inproc ranks).
const collRanks = 8

// benchColl runs mk's iteration closure b.N times on every rank of an
// n-rank inproc world concurrently and accounts bytesPerIter to rank 0.
func benchColl(b *testing.B, n int, tuning core.CollTuning, bytesPerIter int64, mk func(c *core.Comm) func() error) {
	b.Helper()
	sys := core.NewSystem(n, core.Options{})
	defer sys.Close()
	iters := b.N
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 1; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := sys.Comm(rank)
			c.SetCollTuning(tuning)
			iter := mk(c)
			for i := 0; i < iters; i++ {
				if err := iter(); err != nil {
					errs[rank] = err
					return
				}
			}
		}(r)
	}
	c := sys.Comm(0)
	c.SetCollTuning(tuning)
	iter := mk(c)
	b.SetBytes(bytesPerIter)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := iter(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Tunings pinning one algorithm each.
var (
	collNaive = core.CollTuning{ // whole-message trees, reduce+bcast
		PipelineThresh: 1 << 62,
		RabenThresh:    1 << 62,
	}
	collEngine = core.CollTuning{ // chunked schedules from byte one
		PipelineThresh: 1,
		RabenThresh:    1,
	}
)

var collSizes = []int64{64 << 10, 1 << 20, 4 << 20}

// BenchmarkCollBcast contrasts the whole-message binomial broadcast with
// the segment-pipelined tree at 8 ranks.
func BenchmarkCollBcast(b *testing.B) {
	for _, size := range collSizes {
		for _, v := range []struct {
			name   string
			tuning core.CollTuning
		}{{"naive", collNaive}, {"pipelined", collEngine}} {
			b.Run(fmt.Sprintf("size-%dK/%s", size/1024, v.name), func(b *testing.B) {
				benchColl(b, collRanks, v.tuning, size, func(c *core.Comm) func() error {
					buf := make([]byte, size)
					return func() error { return c.Bcast(buf, -1, core.TypeBytes, 0) }
				})
			})
		}
	}
}

// BenchmarkCollAllreduce contrasts reduce-to-0 + broadcast with
// Rabenseifner's reduce-scatter + allgather on a float64 sum.
func BenchmarkCollAllreduce(b *testing.B) {
	for _, size := range collSizes {
		count := core.Count(size / 8)
		for _, v := range []struct {
			name   string
			tuning core.CollTuning
		}{{"naive", collNaive}, {"rabenseifner", collEngine}} {
			b.Run(fmt.Sprintf("size-%dK/%s", size/1024, v.name), func(b *testing.B) {
				benchColl(b, collRanks, v.tuning, size, func(c *core.Comm) func() error {
					send := make([]byte, size)
					recv := make([]byte, size)
					for i := core.Count(0); i < count; i++ {
						layout.PutF64(send, int(8*i), float64(c.Rank()+1))
					}
					dt := core.FromDDT(ddt.Float64)
					return func() error {
						return c.Allreduce(send, recv, count, dt, core.OpSumFloat64)
					}
				})
			})
		}
	}
}

// BenchmarkCollAllgather contrasts gather-to-0 + broadcast with the ring
// schedule; size is the per-rank contribution.
func BenchmarkCollAllgather(b *testing.B) {
	for _, size := range []int64{8 << 10, 128 << 10, 512 << 10} {
		for _, v := range []struct {
			name   string
			tuning core.CollTuning
		}{{"linear", collNaive}, {"ring", collEngine}} {
			b.Run(fmt.Sprintf("size-%dK/%s", size/1024, v.name), func(b *testing.B) {
				benchColl(b, collRanks, v.tuning, size*collRanks, func(c *core.Comm) func() error {
					mine := make([]byte, size)
					all := make([]byte, size*collRanks)
					return func() error { return c.Allgather(mine, core.Count(size), core.TypeBytes, all) }
				})
			})
		}
	}
}

// collWallClock times reps iterations of a Bcast across an 8-rank world
// under one tuning and returns the best (minimum) wall-clock time.
func collWallClock(t *testing.T, tuning core.CollTuning, size int64, reps, trials int) time.Duration {
	t.Helper()
	best := time.Duration(1 << 62)
	for trial := 0; trial < trials; trial++ {
		sys := core.NewSystem(collRanks, core.Options{})
		var wg sync.WaitGroup
		errs := make([]error, collRanks)
		start := time.Now()
		for r := 0; r < collRanks; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				c := sys.Comm(rank)
				c.SetCollTuning(tuning)
				buf := make([]byte, size)
				for i := 0; i < reps; i++ {
					if err := c.Bcast(buf, -1, core.TypeBytes, 0); err != nil {
						errs[rank] = err
						return
					}
				}
			}(r)
		}
		wg.Wait()
		elapsed := time.Since(start)
		sys.Close()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		if elapsed < best {
			best = elapsed
		}
	}
	return best
}

// TestCollPipelineGate is the CI bench gate: at 4 MiB over 8 inproc
// ranks, the segment-pipelined broadcast must beat the whole-message
// binomial tree by ≥ 1.3×. The win comes from overlapping tree hops on
// different cores, so the gate only runs where cores exist to overlap —
// on a single-core host every schedule serializes and the ratio
// structurally converges to 1 (see BENCH_coll.json's environment note).
func TestCollPipelineGate(t *testing.T) {
	if testing.Short() {
		t.Skip("bench gate skipped in short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("bench gate needs ≥4 CPUs to overlap pipeline hops, have %d", runtime.NumCPU())
	}
	const size = 4 << 20
	const reps = 8
	naive := collWallClock(t, collNaive, size, reps, 3)
	pipelined := collWallClock(t, collEngine, size, reps, 3)
	ratio := float64(naive) / float64(pipelined)
	t.Logf("bcast 4MiB x %d ranks: naive %v, pipelined %v, ratio %.2fx", collRanks, naive, pipelined, ratio)
	if ratio < 1.3 {
		t.Fatalf("pipelined bcast ratio %.2fx < 1.3x gate", ratio)
	}
}
