package mpi_test

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"mpicd/mpi"
)

func TestFacadeSendRecv(t *testing.T) {
	data := []byte("through the facade")
	err := mpi.Run(2, mpi.Options{}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			return c.Send(data, -1, mpi.TypeBytes, 1, 5)
		}
		out := make([]byte, len(data))
		st, err := c.Recv(out, -1, mpi.TypeBytes, mpi.AnySource, mpi.AnyTag)
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 5 || !bytes.Equal(out, data) {
			return fmt.Errorf("status %+v / payload %q", st, out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDerivedTypes(t *testing.T) {
	st, err := mpi.Struct([]int{3, 1}, []int64{0, 16}, []*mpi.DDT{mpi.Int32, mpi.Float64})
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 20 || st.Extent() != 24 {
		t.Fatalf("struct metadata: size %d extent %d", st.Size(), st.Extent())
	}
	dt := mpi.FromDDT(st)
	img := make([]byte, st.Span(4))
	for i := range img {
		img[i] = byte(i)
	}
	packed := make([]byte, st.PackedSize(4))
	if _, err := mpi.Pack(img, 4, dt, packed); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, st.Span(4))
	if err := mpi.Unpack(packed, out, 4, dt); err != nil {
		t.Fatal(err)
	}
	repacked := make([]byte, len(packed))
	if _, err := mpi.Pack(out, 4, dt, repacked); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repacked, packed) {
		t.Fatal("facade pack/unpack roundtrip mismatch")
	}
}

// facadeHandler is a minimal custom handler defined purely against the
// public API: it sends a length-prefixed byte slice.
type facadeHandler struct{}

type facadeBuf struct {
	Data []byte
}

func (facadeHandler) State(buf any, _ mpi.Count) (any, error) {
	b, ok := buf.(*facadeBuf)
	if !ok {
		return nil, errors.New("want *facadeBuf")
	}
	return b, nil
}

func (facadeHandler) FreeState(any) error { return nil }

func (facadeHandler) PackedSize(_, _ any, _ mpi.Count) (mpi.Count, error) { return 8, nil }

func (facadeHandler) Pack(state, _ any, _, offset mpi.Count, dst []byte) (mpi.Count, error) {
	b := state.(*facadeBuf)
	var hdr [8]byte
	n := len(b.Data)
	for i := 0; i < 8; i++ {
		hdr[i] = byte(n >> (8 * i))
	}
	return mpi.Count(copy(dst, hdr[offset:])), nil
}

func (facadeHandler) Unpack(state, _ any, _, offset mpi.Count, src []byte) error {
	b := state.(*facadeBuf)
	if b.Data == nil {
		b.Data = make([]byte, 8)
	}
	copy(b.Data[offset:8], src)
	if offset+mpi.Count(len(src)) == 8 {
		n := 0
		for i := 7; i >= 0; i-- {
			n = n<<8 | int(b.Data[i])
		}
		b.Data = make([]byte, n)
	}
	return nil
}

func (facadeHandler) RegionCount(state, _ any, _ mpi.Count) (mpi.Count, error) {
	return 1, nil
}

func (facadeHandler) Regions(state, _ any, _ mpi.Count, regions [][]byte) error {
	regions[0] = state.(*facadeBuf).Data
	return nil
}

func TestFacadeCustomDatatype(t *testing.T) {
	dt := mpi.TypeCreateCustom(facadeHandler{}, mpi.WithInOrder(), mpi.WithName("length-prefixed"))
	payload := make([]byte, 100000)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	err := mpi.Run(2, mpi.Options{}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			return c.Send(&facadeBuf{Data: payload}, 1, dt, 1, 1)
		}
		var rb facadeBuf
		if _, err := c.Recv(&rb, 1, dt, 0, 1); err != nil {
			return err
		}
		if !bytes.Equal(rb.Data, payload) {
			return errors.New("custom facade transfer mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCollectives(t *testing.T) {
	err := mpi.Run(4, mpi.Options{}, func(c *mpi.Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		buf := make([]byte, 8)
		if c.Rank() == 2 {
			copy(buf, "rooted!!")
		}
		if err := c.Bcast(buf, -1, mpi.TypeBytes, 2); err != nil {
			return err
		}
		if string(buf) != "rooted!!" {
			return fmt.Errorf("bcast got %q", buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPWorldTwoProcessesSimulated(t *testing.T) {
	// Two "processes" (goroutines with independent TCP stacks) join a
	// real-socket world through the public API.
	addrs := make([]string, 2)
	lns := make([]net.Listener, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			world, err := mpi.ConnectTCP(rank, addrs, mpi.Options{})
			if err != nil {
				errs[rank] = err
				return
			}
			defer world.Close()
			c := world.Comm
			if rank == 0 {
				errs[rank] = c.Send([]byte("over tcp"), -1, mpi.TypeBytes, 1, 9)
				return
			}
			out := make([]byte, 8)
			if _, err := c.Recv(out, -1, mpi.TypeBytes, 0, 9); err != nil {
				errs[rank] = err
				return
			}
			if string(out) != "over tcp" {
				errs[rank] = fmt.Errorf("got %q", out)
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}
