package mpi

import (
	"mpicd/internal/core"
	"mpicd/internal/ddt"
)

// This file re-exports the classic derived-datatype interface — the
// baseline the paper's custom API is compared against. Derived types
// operate on []byte images laid out exactly like the corresponding C
// structures (see the Int32/Float64/... element types and the layout
// helper functions in examples).

// DDT is an immutable derived datatype (typemap over a C-layout image).
type DDT = ddt.Type

// Predefined element types.
var (
	Byte       = ddt.Byte
	Int8       = ddt.Int8
	Int16      = ddt.Int16
	Int32      = ddt.Int32
	Int64      = ddt.Int64
	Uint64     = ddt.Uint64
	Float32    = ddt.Float32
	Float64    = ddt.Float64
	Complex128 = ddt.Complex128
)

// FromDDT wraps a derived datatype for use in communication calls.
func FromDDT(t *DDT) *Datatype { return core.FromDDT(t) }

// Contiguous mirrors MPI_Type_contiguous.
func Contiguous(count int, base *DDT) (*DDT, error) { return ddt.Contiguous(count, base) }

// Vector mirrors MPI_Type_vector (stride in elements).
func Vector(count, blocklen, stride int, base *DDT) (*DDT, error) {
	return ddt.Vector(count, blocklen, stride, base)
}

// Hvector mirrors MPI_Type_create_hvector (stride in bytes).
func Hvector(count, blocklen int, stride int64, base *DDT) (*DDT, error) {
	return ddt.Hvector(count, blocklen, stride, base)
}

// Indexed mirrors MPI_Type_indexed (displacements in elements).
func Indexed(blocklens, displs []int, base *DDT) (*DDT, error) {
	return ddt.Indexed(blocklens, displs, base)
}

// Hindexed mirrors MPI_Type_create_hindexed (displacements in bytes).
func Hindexed(blocklens []int, displs []int64, base *DDT) (*DDT, error) {
	return ddt.Hindexed(blocklens, displs, base)
}

// IndexedBlock mirrors MPI_Type_create_indexed_block.
func IndexedBlock(blocklen int, displs []int, base *DDT) (*DDT, error) {
	return ddt.IndexedBlock(blocklen, displs, base)
}

// Struct mirrors MPI_Type_create_struct.
func Struct(blocklens []int, displs []int64, types []*DDT) (*DDT, error) {
	return ddt.Struct(blocklens, displs, types)
}

// Subarray mirrors MPI_Type_create_subarray (C order).
func Subarray(sizes, subsizes, starts []int, base *DDT) (*DDT, error) {
	return ddt.Subarray(sizes, subsizes, starts, base)
}

// Resized mirrors MPI_Type_create_resized with a zero lower bound.
func Resized(base *DDT, extent int64) (*DDT, error) { return ddt.Resized(base, extent) }

// TypeEqual reports transfer-equivalence of two derived datatypes (same
// packed size, extent and flattened typemap).
func TypeEqual(a, b *DDT) bool { return ddt.Equal(a, b) }

// TypeDup mirrors MPI_Type_dup. The duplicate shares the original's
// compiled pack plan through the plan cache.
func TypeDup(t *DDT) *DDT { return t.Dup() }

// Plan is the compiled pack/unpack program of a committed datatype —
// canonical layout descriptor plus specialized kernels (see package ddt).
type Plan = ddt.Plan

// PlanKind is the canonical form a layout compiled to.
type PlanKind = ddt.PlanKind

// Canonical plan forms.
const (
	PlanContig  = ddt.PlanContig
	PlanBlock   = ddt.PlanBlock
	PlanStrided = ddt.PlanStrided
	PlanRunList = ddt.PlanRunList
)

// TypePlan returns (compiling on first use) the datatype's plan. Useful
// for introspection: plan kind, canonical layout hash, region count.
func TypePlan(t *DDT) *Plan { return t.Plan() }

// PlanCacheStats reports the process-wide datatype plan cache counters:
// cache hits, misses (compilations), and total nanoseconds spent
// compiling.
func PlanCacheStats() (hits, misses, compileNS int64) {
	return ddt.PlanCacheStats()
}

// MarshalType serializes a derived datatype's description so another
// process can rebuild it (see Comm.SendType / Comm.RecvType).
func MarshalType(t *DDT) []byte { return t.Marshal() }

// UnmarshalType reconstructs a datatype marshalled with MarshalType.
func UnmarshalType(data []byte) (*DDT, error) { return ddt.Unmarshal(data) }
