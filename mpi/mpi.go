// Package mpi is the public API of the mpicd-go reproduction — the
// analogue of the paper's mpicd-capi layer. It exposes a simplified
// MPI-style interface with the paper's custom datatype extension:
//
//	handler := myHandler{}                       // implements mpi.CustomHandler
//	dt := mpi.TypeCreateCustom(handler,          // MPI_Type_create_custom
//	    mpi.WithInOrder())                       // the paper's inorder flag
//	err := comm.Send(buf, 1, dt, dst, tag)       // one MPI message: packed
//	                                             // part + zero-copy regions
//
// Worlds can run in-process (mpi.Run spawns one goroutine per rank — the
// moral equivalent of mpirun for tests, examples and benchmarks) or span
// processes over TCP (ConnectTCP).
//
// Classic derived datatypes (the baseline the paper compares against) are
// available through the re-exported constructors (Contiguous, Vector,
// Struct, ...) and FromDDT.
package mpi

import (
	"errors"
	"time"

	"mpicd/internal/core"
	"mpicd/internal/fabric"
	"mpicd/internal/launch"
	"mpicd/internal/obs"
	"mpicd/internal/ucp"
)

// Count is the element/byte count type (MPI_Count).
type Count = core.Count

// Comm is a communicator; see the point-to-point (Send, Recv, Isend,
// Irecv, SendRecv, Probe, Mprobe, MRecv), collective (Barrier, Bcast,
// Reduce, Allreduce, Gather, Allgather, Scatter, Alltoall, Dup, Split)
// and nonblocking-collective (Ibarrier, Ibcast, Iallreduce, Iallgather)
// methods.
type Comm = core.Comm

// Datatype describes how buffers serialize: TypeBytes, FromDDT or
// TypeCreateCustom.
type Datatype = core.Datatype

// CustomHandler is the callback set behind TypeCreateCustom — the Go
// mirror of the paper's MPI_Type_create_custom callbacks (state, query,
// pack, unpack, region count, regions).
type CustomHandler = core.CustomHandler

// Status describes a completed receive (source, tag, byte count).
type Status = core.Status

// Request is a pending nonblocking operation.
type Request = core.Request

// Message is a matched message claimed by Mprobe.
type Message = core.Message

// Options configures an in-process world.
type Options = core.Options

// System is an in-process world of ranks.
type System = core.System

// Wildcards.
const (
	AnySource = core.AnySource
	AnyTag    = core.AnyTag
)

// MaxTag is the largest usable tag value.
const MaxTag = core.MaxTag

// ErrTruncated reports a receive buffer smaller than the incoming
// message.
var ErrTruncated = core.ErrTruncated

// Failure taxonomy, for classifying errors with errors.Is.
var (
	// ErrTimeout reports a request that exceeded its deadline
	// (Options.UCP.ReqTimeout or Request.WaitTimeout) or exhausted its
	// retransmission budget.
	ErrTimeout = core.ErrTimeout
	// ErrLinkDown reports a broken or deliberately downed fabric link.
	ErrLinkDown = core.ErrLinkDown
	// ErrCorrupt reports a payload that failed its checksum.
	ErrCorrupt = core.ErrCorrupt
	// ErrProcFailed reports an operation bound to a peer process that has
	// been declared dead (ULFM's MPI_ERR_PROC_FAILED). Enable detection
	// with Options.UCP.Heartbeat; recover with Comm.Revoke, Comm.Agree and
	// Comm.Shrink.
	ErrProcFailed = core.ErrProcFailed
	// ErrExcluded reports that the surviving group agreed the calling
	// rank into the failed set (a false-positive death verdict, e.g.
	// from an asymmetric link outage). The verdict is permanent; the
	// rank must stop or continue without the excluding peers — see
	// core.ErrExcluded.
	ErrExcluded = core.ErrExcluded
	// ErrRevoked reports an operation on a revoked communicator (ULFM's
	// MPI_ERR_REVOKED).
	ErrRevoked = core.ErrRevoked
)

// DetectorConfig tunes the heartbeat liveness detector enabled through
// Options.UCP.Heartbeat (zero Period disables detection). See
// Comm.Revoke/Agree/Shrink for the recovery flow it feeds.
type DetectorConfig = fabric.DetectorConfig

// KillSwitch is the shared death registry fault plans use to model whole
// process failure across an in-process world (fabric.FaultPlan.Kills).
type KillSwitch = fabric.KillSwitch

// NewKillSwitch builds an empty shared death registry.
func NewKillSwitch() *KillSwitch { return fabric.NewKillSwitch() }

// TypeBytes is the predefined byte datatype (MPI_BYTE): buffers are
// []byte, counts are byte counts, and a negative count means the whole
// slice.
var TypeBytes = core.TypeBytes

// TypeCreateCustom builds a datatype from an application serialization
// handler (the paper's proposed API).
func TypeCreateCustom(h CustomHandler, opts ...core.CustomOption) *Datatype {
	return core.TypeCreateCustom(h, opts...)
}

// WithInOrder requires in-order unpack delivery (set it when the receive
// region layout depends on unpacked metadata).
func WithInOrder() core.CustomOption { return core.WithInOrder() }

// WithName names a custom datatype for diagnostics.
func WithName(name string) core.CustomOption { return core.WithName(name) }

// Run executes fn once per rank over a fresh in-process world and returns
// the first rank error (the mpirun analogue).
func Run(n int, opt Options, fn func(c *Comm) error) error {
	return core.Run(n, opt, fn)
}

// NewSystem brings up an in-process world whose communicators are
// retrieved with System.Comm(rank). Close it when done.
func NewSystem(n int, opt Options) *System { return core.NewSystem(n, opt) }

// WaitAll waits on requests and returns the first error.
func WaitAll(reqs ...*Request) error { return core.WaitAll(reqs...) }

// WaitAny blocks until one request completes, returning its index and
// status (MPI_Waitany). Nil entries are ignored.
func WaitAny(reqs ...*Request) (int, Status, error) { return core.WaitAny(reqs...) }

// PersistentRequest is a reusable operation binding created with
// Comm.SendInit / Comm.RecvInit and launched with Start (MPI_Start).
type PersistentRequest = core.PersistentRequest

// PersistentColl is a reusable collective binding created with
// Comm.BarrierInit / Comm.BcastInit / Comm.AllreduceInit /
// Comm.AllgatherInit (MPI-4 MPI_Bcast_init and friends) and launched
// with Start (MPI_Start). The algorithm, datatype plan and schedule
// scratch are fixed at init, so steady-state iterations add zero
// allocations in the persistent layer; after a failure the handle is
// re-aimed at a shrunken communicator with Rebind and keeps iterating.
type PersistentColl = core.PersistentColl

// CartComm is a communicator with an attached Cartesian topology
// (Comm.CartCreate); see Coords, CartRank, Shift, NeighborSendRecv.
type CartComm = core.CartComm

// ProcNull is the null-neighbor rank at non-periodic topology boundaries.
const ProcNull = core.ProcNull

// StartAll starts a set of persistent requests (MPI_Startall).
func StartAll(ps ...*PersistentRequest) error { return core.StartAll(ps...) }

// WaitAllPersistent waits for every started persistent instance.
func WaitAllPersistent(ps ...*PersistentRequest) error { return core.WaitAllPersistent(ps...) }

// Pack serializes (buf, count, dt) into dst (MPI_Pack).
func Pack(buf any, count Count, dt *Datatype, dst []byte) (Count, error) {
	return core.Pack(buf, count, dt, dst)
}

// Unpack deserializes src into (buf, count, dt) (MPI_Unpack).
func Unpack(src []byte, buf any, count Count, dt *Datatype) error {
	return core.Unpack(src, buf, count, dt)
}

// PackedSize returns the packed size of (buf, count, dt) (MPI_Pack_size).
func PackedSize(buf any, count Count, dt *Datatype) (Count, error) {
	return core.PackedSize(buf, count, dt)
}

// ReduceOp is a reduction operator for Reduce/Allreduce: a Combine
// function plus a Commutative property. Non-commutative operators are
// combined strictly in rank order; commutative ones additionally qualify
// for the Rabenseifner large-message Allreduce schedule.
type ReduceOp = core.ReduceOp

// Reduction operators for Reduce/Allreduce.
var (
	OpSumFloat64 = core.OpSumFloat64
	OpSumInt64   = core.OpSumInt64
	OpMaxInt64   = core.OpMaxInt64
)

// CollRequest is a pending nonblocking collective started with Ibarrier,
// Ibcast, Iallreduce or Iallgather; complete it with Wait, WaitTimeout,
// Test or a select on Done().
type CollRequest = core.CollRequest

// CollTuning configures the collective engine's algorithm-selection
// thresholds (Comm.SetCollTuning); zero fields select the defaults.
type CollTuning = core.CollTuning

// Default collective-engine thresholds.
const (
	DefaultCollChunkBytes     = core.DefaultCollChunkBytes
	DefaultCollPipelineThresh = core.DefaultCollPipelineThresh
	DefaultCollRabenThresh    = core.DefaultCollRabenThresh
	DefaultCollWindow         = core.DefaultCollWindow
)

// Observer is the observability layer: a metrics registry of counters,
// gauges and power-of-two-bucket histograms plus an optional bounded
// per-message trace ring. Attach one with Options.UCP.Obs; dump it with
// Observer.WriteJSON. Nil disables observability — the transport hot
// path then pays a single pointer check.
type Observer = obs.Observer

// StatsSnapshot is a point-in-time copy of one rank's transport counters
// and queue depths, from Comm.Worker().StatsSnapshot(). It needs no
// Observer: protocol counters are always maintained.
type StatsSnapshot = ucp.StatsSnapshot

// NewObserver builds an Observer. traceCap > 0 additionally enables the
// lifecycle trace ring holding the last traceCap events (rounded up to a
// power of two); 0 records metrics only.
func NewObserver(traceCap int) *Observer { return obs.New(traceCap) }

// ProcWorld is a world communicator whose ranks are separate OS
// processes, connected over real sockets (ConnectTCP), shared memory
// (ConnectSHM), or whatever transport the launcher picked (InitFromEnv).
//
// Launcher-connected worlds (InitFromEnv) additionally expose the
// elasticity surface: Rejoined, Join and PollRejoins tie the ULFM
// recovery flow (Comm.Revoke / Agree / Shrink / Grow) to the launcher's
// supervision — survivors poll for supervised respawns and Grow them
// back in, replacements Join. Directly-connected worlds (ConnectTCP,
// ConnectSHM) have no launcher behind them; their elasticity calls fail
// with a descriptive error.
type ProcWorld struct {
	Comm     *Comm
	world    *launch.World // launcher-connected worlds only
	shutdown func() error
}

// JoinPeer names one respawned process being re-admitted by Comm.Grow:
// its fabric rank and, for transports with dialable endpoints, its new
// address.
type JoinPeer = core.JoinPeer

// TCPWorld is the original, transport-specific name for ProcWorld.
type TCPWorld = ProcWorld

// ConnectTCP joins a TCP world: rank i of addrs listens at addrs[i]; the
// call blocks until the full mesh is connected. Options' fabric
// configuration applies (fragment sizes, thresholds).
func ConnectTCP(rank int, addrs []string, opt Options) (*ProcWorld, error) {
	if o := opt.UCP.Obs; o != nil && opt.Fabric.Obs == nil {
		opt.Fabric.Obs = o.Registry
	}
	nic, err := fabric.NewTCP(rank, addrs, opt.Fabric)
	if err != nil {
		return nil, err
	}
	return procWorld(nic, opt)
}

// ConnectSHM joins a shared-memory world rooted at dir, a directory on a
// local filesystem every rank of the job can reach. Segment and socket
// names inside dir are deterministic functions of the rank pair, so the
// only thing ranks must agree on out of band is dir itself (and keep it
// short — unix socket paths cap at ~100 bytes).
func ConnectSHM(rank, size int, dir string, opt Options) (*ProcWorld, error) {
	if o := opt.UCP.Obs; o != nil && opt.Fabric.Obs == nil {
		opt.Fabric.Obs = o.Registry
	}
	nic, err := fabric.NewSHM(rank, size, dir, opt.Fabric)
	if err != nil {
		return nil, err
	}
	return procWorld(nic, opt)
}

// InitFromEnv joins the world a mpicd-run launcher described in this
// process's environment (the MPICD_* variables: rank, size, transport,
// rendezvous address, node placement). ok reports whether such a
// description was present at all — a process run directly, outside any
// launcher, gets (nil, false, nil) and should fall back to single-process
// behaviour. The launcher-reported placement is applied to the world
// communicator's collective tuning, so hierarchical schedules engage
// automatically under multi-node layouts.
//
// The environment can also tune cross-process failure detection without
// code changes: MPICD_HB_PERIOD (a Go duration, e.g. "20ms") enables
// the heartbeat detector at that probe period, and MPICD_HB_SUSPECT /
// MPICD_HB_DEAD scale the suspicion and death thresholds as multiples
// of the period (defaults 8 and 30). Options.UCP.Heartbeat, when set,
// wins over the environment.
//
// A process whose MPICD_EPOCH is greater than zero is a supervised
// respawn of a dead rank: it has no Comm (the returned world's Comm is
// nil) and must re-enter through Join while the survivors Grow it back
// in — see ProcWorld.Rejoined.
func InitFromEnv(opt Options) (world *ProcWorld, ok bool, err error) {
	if !launch.IsWorker() {
		return nil, false, nil
	}
	in, err := launch.FromEnv()
	if err != nil {
		return nil, true, err
	}
	w, err := in.Connect(opt)
	if err != nil {
		return nil, true, err
	}
	return &ProcWorld{Comm: w.Comm, world: w, shutdown: w.Close}, true, nil
}

// Rejoined reports whether this process is a supervised respawn that
// must Join the surviving group instead of using a world communicator
// from startup (its Comm is nil until Join succeeds).
func (t *ProcWorld) Rejoined() bool {
	return t.world != nil && t.world.Rejoined()
}

// Join runs the joiner side of elastic re-admission: wait, up to window,
// for the surviving group to Grow this rank back in, and return the new
// world communicator (also stored as t.Comm). Only meaningful when
// Rejoined reports true.
func (t *ProcWorld) Join(window time.Duration) (*Comm, error) {
	if t.world == nil {
		return nil, errors.New("mpi: Join needs a launcher-connected world (InitFromEnv)")
	}
	c, err := t.world.Join(window)
	if c != nil {
		t.Comm = c
	}
	return c, err
}

// PollRejoins asks the launcher's join service which respawned
// replacements have registered since join epoch `since` (0 means all).
// The returned peers feed Comm.Grow; the second result is the service's
// current epoch, the watermark for the next incremental poll.
func (t *ProcWorld) PollRejoins(since uint64) ([]JoinPeer, uint64, error) {
	if t.world == nil {
		return nil, 0, errors.New("mpi: PollRejoins needs a launcher-connected world (InitFromEnv)")
	}
	return t.world.PollRejoins(since)
}

func procWorld(nic fabric.NIC, opt Options) (*ProcWorld, error) {
	w := ucp.NewWorker(nic, opt.UCP)
	return &ProcWorld{
		Comm:     core.NewComm(w),
		shutdown: func() error { w.Close(); return nil },
	}, nil
}

// Close leaves the world.
func (t *ProcWorld) Close() error { return t.shutdown() }
