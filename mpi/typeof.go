package mpi

import (
	"reflect"
	"sync"
	"unsafe"

	"mpicd/internal/core"
	"mpicd/internal/derive"
)

// Go-native datatype derivation: the ergonomic front end over the
// classic constructors. Instead of hand-assembling a ddt tree (or a
// layout.StructOf descriptor) that mirrors a Go struct, applications
// declare the struct once and derive the datatype from it:
//
//	type Particle struct {
//		ID       int32
//		Mass     float64
//		Pos, Vel [3]float64
//	}
//	dt := mpi.MustTypeOf[Particle]()          // derived once, memoized
//	err := mpi.SendSlice(comm, particles, dst, tag)
//
// The derived type lowers to the same canonical layout a hand-built
// equivalent produces, so both share one compiled plan in the plan cache
// — "derived == hand-written" is a structural identity, not a benchmark
// claim (though BENCH_derive.json records the benchmark too).
//
// Supported shapes are fixed-size ones: scalars, fixed arrays, structs
// of those (nested, embedded, unexported fields included; blank "_"
// fields and alignment gaps are elided as padding). Pointers, maps,
// slices, strings, chans, funcs and interfaces anywhere in the shape
// yield ErrTypeUnsupported — use TypeCreateCustom (or package serial)
// for dynamic shapes.

// ErrTypeUnsupported reports a Go type that cannot be derived into a
// datatype (pointer-bearing or variable-length shape). Test with
// errors.Is.
var ErrTypeUnsupported = derive.ErrUnsupported

// TypeOf derives the derived datatype of the Go type T. Derivation
// reflects T once and memoizes per type: the steady-state call is one
// lock-free lookup with zero allocations.
func TypeOf[T any]() (*DDT, error) { return derive.TypeOf[T]() }

// MustTypeOf is TypeOf, panicking on unsupported shapes (package-level
// type declarations).
func MustTypeOf[T any]() *DDT { return derive.MustTypeOf[T]() }

// dtMemo caches the committed *Datatype per reflect.Type, so the typed
// send/recv helpers are allocation-free after first use (FromDDT compiles
// the plan at commit time; the memo makes that a one-time cost per T).
var dtMemo sync.Map // reflect.Type -> *dtEntry

type dtEntry struct {
	dt  *Datatype
	err error
}

// DatatypeOf returns the committed communication datatype of T —
// TypeOf[T] wrapped with FromDDT — memoized per type.
func DatatypeOf[T any]() (*Datatype, error) {
	rt := reflect.TypeFor[T]()
	if e, ok := dtMemo.Load(rt); ok {
		ent := e.(*dtEntry)
		return ent.dt, ent.err
	}
	t, err := derive.TypeFor(rt)
	var dt *Datatype
	if err == nil {
		dt = core.FromDDT(t)
	}
	ent, _ := dtMemo.LoadOrStore(rt, &dtEntry{dt: dt, err: err})
	e := ent.(*dtEntry)
	return e.dt, e.err
}

// valueBytes views one T as its memory image. Derivation has already
// established the shape is pointer-free, so the image is plain data.
func valueBytes[T any](v *T) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(v)), unsafe.Sizeof(*v))
}

// sliceBytes views a []T as its memory image.
func sliceBytes[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	var zero T
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), uintptr(len(s))*unsafe.Sizeof(zero))
}

// SendValue sends one value of a derived Go type: the typed-helper face
// of Comm.Send (derives the datatype on first use, then views v's memory
// as the send buffer — no staging copy).
func SendValue[T any](c *Comm, v *T, dst, tag int) error {
	dt, err := DatatypeOf[T]()
	if err != nil {
		return err
	}
	return c.Send(valueBytes(v), 1, dt, dst, tag)
}

// RecvValue receives one value of a derived Go type into *v.
func RecvValue[T any](c *Comm, v *T, src, tag int) (Status, error) {
	dt, err := DatatypeOf[T]()
	if err != nil {
		return Status{}, err
	}
	return c.Recv(valueBytes(v), 1, dt, src, tag)
}

// SendSlice sends all elements of a slice of a derived Go type. Array
// striding (including struct trailing padding) follows the derived
// extent, which equals unsafe.Sizeof(T).
func SendSlice[T any](c *Comm, s []T, dst, tag int) error {
	dt, err := DatatypeOf[T]()
	if err != nil {
		return err
	}
	return c.Send(sliceBytes(s), Count(len(s)), dt, dst, tag)
}

// RecvSlice receives len(s) elements of a derived Go type into s.
func RecvSlice[T any](c *Comm, s []T, src, tag int) (Status, error) {
	dt, err := DatatypeOf[T]()
	if err != nil {
		return Status{}, err
	}
	return c.Recv(sliceBytes(s), Count(len(s)), dt, src, tag)
}
