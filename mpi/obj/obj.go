// Package obj moves serialized objects over MPI — the public face of the
// paper's Python evaluation (Section V.B). It wraps the pickle-5-style
// serializer (in-band header + out-of-band buffers) and offers the three
// transfer strategies the paper compares:
//
//	SendBasic/RecvBasic — everything in one in-band byte stream
//	                      (pickle-basic: simple, but serialization copies
//	                      every payload byte twice);
//	SendOOB/RecvOOB     — header message plus one message per large
//	                      buffer (pickle-oob: today's multi-message
//	                      binding protocol, with tag-space hazards under
//	                      threads);
//	Send/Recv           — the paper's custom datatype: header packed plus
//	                      buffers as zero-copy regions, one atomic MPI
//	                      message (pickle-oob-cdt).
//
// Supported values: nil, bool, int64 (int/int32 normalize), float64,
// string, obj.Buffer ([]byte eligible for out-of-band transfer), []any,
// map[string]any, and *obj.NDArray (the NumPy stand-in).
package obj

import (
	"mpicd/internal/serial"
	"mpicd/mpi"
)

// Buffer is a byte payload eligible for zero-copy (out-of-band)
// treatment, like pickle.PickleBuffer.
type Buffer = serial.Buffer

// NDArray models a NumPy array: dtype, shape and a flat Buffer.
type NDArray = serial.NDArray

// NewFloat64Array builds a deterministic 1-D float64 array (test data).
func NewFloat64Array(n int, seed byte) *NDArray { return serial.NewFloat64Array(n, seed) }

// DefaultThreshold is the byte size above which buffers go out-of-band.
const DefaultThreshold = serial.DefaultThreshold

// Dumps serializes v fully in-band.
func Dumps(v any) ([]byte, error) { return serial.Dumps(v) }

// Loads deserializes an in-band stream.
func Loads(data []byte) (any, error) { return serial.Loads(data) }

// DumpsOOB serializes v with out-of-band buffers above threshold bytes.
func DumpsOOB(v any, threshold int) ([]byte, []Buffer, error) {
	return serial.DumpsOOB(v, threshold)
}

// LoadsOOB deserializes a stream with its out-of-band buffers (decoded
// Buffers alias oob — zero copy).
func LoadsOOB(header []byte, oob []Buffer) (any, error) { return serial.LoadsOOB(header, oob) }

// Type returns the custom datatype that carries a serialized object as
// one MPI message. Buffers for it are *Msg values.
func Type() *mpi.Datatype { return serial.ObjectType() }

// Msg is the buffer type for Type: set Value to send; pass an empty Msg
// to receive and call Decode afterwards.
type Msg = serial.Msg

// Send transfers v in a single MPI message via the custom datatype.
func Send(c *mpi.Comm, v any, dst, tag int) error {
	return serial.SendCDT(c, v, dst, tag, DefaultThreshold)
}

// Recv receives an object sent with Send.
func Recv(c *mpi.Comm, src, tag int) (any, error) {
	return serial.RecvCDT(c, src, tag)
}

// SendBasic transfers v fully in-band (one message, everything copied).
func SendBasic(c *mpi.Comm, v any, dst, tag int) error {
	return serial.SendBasic(c, v, dst, tag)
}

// RecvBasic receives an object sent with SendBasic, sizing the
// allocation with Mprobe.
func RecvBasic(c *mpi.Comm, src, tag int) (any, error) {
	return serial.RecvBasic(c, src, tag)
}

// SendOOB transfers v as a header message plus one message per large
// buffer (the multi-message protocol bindings use today).
func SendOOB(c *mpi.Comm, v any, dst, tag int) error {
	return serial.SendOOB(c, v, dst, tag, DefaultThreshold)
}

// RecvOOB receives an object sent with SendOOB.
func RecvOOB(c *mpi.Comm, src, tag int) (any, error) {
	return serial.RecvOOB(c, src, tag)
}
