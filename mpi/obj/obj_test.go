package obj_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"mpicd/mpi"
	"mpicd/mpi/obj"
)

func sample() map[string]any {
	return map[string]any{
		"name": "experiment",
		"step": int64(12),
		"grid": obj.NewFloat64Array(64*1024, 3),
		"tags": []any{"a", true, nil, 2.5},
	}
}

func TestPublicStrategiesRoundtrip(t *testing.T) {
	type method struct {
		name string
		send func(c *mpi.Comm, v any) error
		recv func(c *mpi.Comm) (any, error)
	}
	methods := []method{
		{"cdt", func(c *mpi.Comm, v any) error { return obj.Send(c, v, 1, 1) },
			func(c *mpi.Comm) (any, error) { return obj.Recv(c, 0, 1) }},
		{"basic", func(c *mpi.Comm, v any) error { return obj.SendBasic(c, v, 1, 1) },
			func(c *mpi.Comm) (any, error) { return obj.RecvBasic(c, 0, 1) }},
		{"oob", func(c *mpi.Comm, v any) error { return obj.SendOOB(c, v, 1, 1) },
			func(c *mpi.Comm) (any, error) { return obj.RecvOOB(c, 0, 1) }},
	}
	for _, m := range methods {
		t.Run(m.name, func(t *testing.T) {
			want := sample()
			err := mpi.Run(2, mpi.Options{}, func(c *mpi.Comm) error {
				if c.Rank() == 0 {
					return m.send(c, want)
				}
				got, err := m.recv(c)
				if err != nil {
					return err
				}
				if !reflect.DeepEqual(got, want) {
					return fmt.Errorf("%s roundtrip mismatch", m.name)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPublicDumpsLoads(t *testing.T) {
	v := sample()
	// In-band.
	data, err := obj.Dumps(v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := obj.Loads(data)
	if err != nil || !reflect.DeepEqual(got, v) {
		t.Fatalf("in-band roundtrip: %v", err)
	}
	// Out-of-band: big array hoisted, header small.
	header, oob, err := obj.DumpsOOB(v, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(oob) != 1 || len(header) > 256 {
		t.Fatalf("oob split: %d buffers, %d header bytes", len(oob), len(header))
	}
	got, err = obj.LoadsOOB(header, oob)
	if err != nil || !reflect.DeepEqual(got, v) {
		t.Fatalf("oob roundtrip: %v", err)
	}
}

func TestPublicMsgType(t *testing.T) {
	// Direct use of the custom datatype with nonblocking calls.
	want := sample()
	err := mpi.Run(2, mpi.Options{}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			r, err := c.Isend(&obj.Msg{Value: want}, 1, obj.Type(), 1, 9)
			if err != nil {
				return err
			}
			_, err = r.Wait()
			return err
		}
		var m obj.Msg
		if _, err := c.Recv(&m, 1, obj.Type(), 0, 9); err != nil {
			return err
		}
		got, err := m.Decode()
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(got, want) {
			return errors.New("msg-type roundtrip mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
