package mpi_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"mpicd/internal/fabric"
	"mpicd/internal/ucp"
	"mpicd/mpi"
)

// TestFacadeFaultRecovery drives a transfer through the public facade over
// a lossy fabric: the application sees a normal, intact delivery and the
// error taxonomy stays invisible unless something is genuinely
// unrecoverable.
func TestFacadeFaultRecovery(t *testing.T) {
	opt := mpi.Options{
		Fabric: fabric.Config{FragSize: 1024},
		UCP: ucp.Config{
			Reliable:      true,
			Checksum:      true,
			FragSize:      1024,
			RexmitBase:    time.Millisecond,
			RexmitMax:     20 * time.Millisecond,
			RexmitRetries: 200,
		},
		WrapNIC: func(rank int, nic fabric.NIC) fabric.NIC {
			return fabric.WrapFault(nic, fabric.FaultPlan{
				Seed: 7 + int64(rank),
				Rules: []fabric.FaultRule{
					{Peer: -1, Action: fabric.Drop, Prob: 0.15},
					{Peer: -1, Action: fabric.Duplicate, Prob: 0.15},
					{Peer: -1, Action: fabric.Corrupt, Prob: 0.1},
				},
			})
		},
	}
	data := make([]byte, 30000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	err := mpi.Run(2, opt, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			return c.Send(data, -1, mpi.TypeBytes, 1, 1)
		}
		out := make([]byte, len(data))
		if _, err := c.Recv(out, -1, mpi.TypeBytes, 0, 1); err != nil {
			return err
		}
		if !bytes.Equal(out, data) {
			return fmt.Errorf("bytes corrupted in delivery")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFacadeErrorTaxonomy pins the public error surface: a request on a
// downed link times out with mpi.ErrTimeout via errors.Is, both through
// WaitTimeout and through retransmission exhaustion.
func TestFacadeErrorTaxonomy(t *testing.T) {
	opt := mpi.Options{
		UCP: ucp.Config{
			Reliable:      true,
			RexmitBase:    time.Millisecond,
			RexmitMax:     10 * time.Millisecond,
			RexmitRetries: 5,
		},
		WrapNIC: func(rank int, nic fabric.NIC) fabric.NIC {
			if rank != 0 {
				return nic
			}
			return fabric.WrapFault(nic, fabric.FaultPlan{Seed: 1, Rules: []fabric.FaultRule{
				{Peer: 1, Action: fabric.LinkDown, Prob: 1, Count: 1, Down: -1},
			}})
		},
	}
	s := mpi.NewSystem(2, opt)
	defer s.Close()
	data := []byte("never arrives")
	r, err := s.Comm(0).Isend(data, -1, mpi.TypeBytes, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.WaitTimeout(5 * time.Millisecond); !errors.Is(err, mpi.ErrTimeout) {
		t.Fatalf("WaitTimeout = %v, want mpi.ErrTimeout", err)
	}
	if _, err := r.Wait(); !errors.Is(err, mpi.ErrTimeout) {
		t.Fatalf("exhausted send = %v, want mpi.ErrTimeout", err)
	}
}
