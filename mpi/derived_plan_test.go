package mpi

import "testing"

// TestTypeDupSharesPlan pins the facade-level plan contract: Dup and an
// independently built identical layout both resolve to the same
// compiled plan, and the cache counters move accordingly.
func TestTypeDupSharesPlan(t *testing.T) {
	v, err := Vector(33, 2, 7, Int32)
	if err != nil {
		t.Fatal(err)
	}
	p := TypePlan(v)
	if p.Kind() != PlanStrided {
		t.Fatalf("plan kind %v, want strided", p.Kind())
	}
	if TypePlan(TypeDup(v)) != p {
		t.Fatal("TypeDup compiled a separate plan")
	}
	w, err := Vector(33, 2, 7, Int32)
	if err != nil {
		t.Fatal(err)
	}
	h0, m0, _ := PlanCacheStats()
	if TypePlan(w) != p {
		t.Fatal("identical layout compiled a separate plan")
	}
	h1, m1, _ := PlanCacheStats()
	if h1 <= h0 || m1 != m0 {
		t.Fatalf("expected a pure cache hit: hits %d->%d misses %d->%d", h0, h1, m0, m1)
	}
}
