package mpi_test

import (
	"fmt"

	"mpicd/mpi"
)

// The smallest possible program: two in-process ranks exchanging bytes.
func ExampleRun() {
	err := mpi.Run(2, mpi.Options{}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			return c.Send([]byte("ping"), -1, mpi.TypeBytes, 1, 0)
		}
		buf := make([]byte, 4)
		if _, err := c.Recv(buf, -1, mpi.TypeBytes, 0, 0); err != nil {
			return err
		}
		fmt.Printf("rank 1 got %q\n", buf)
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: rank 1 got "ping"
}

// Derived datatypes describe C-layout buffers; the engine elides the
// alignment gap on the wire.
func ExampleStruct() {
	// struct { int32 a, b, c; /* 4-byte gap */ float64 d; }
	st, err := mpi.Struct([]int{3, 1}, []int64{0, 16}, []*mpi.DDT{mpi.Int32, mpi.Float64})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("size %d extent %d contiguous %v\n", st.Size(), st.Extent(), st.Contig())
	// Output: size 20 extent 24 contiguous false
}

// Datatype descriptions marshal so a peer can rebuild the same layout.
func ExampleUnmarshalType() {
	v, _ := mpi.Vector(4, 2, 5, mpi.Float64)
	rebuilt, err := mpi.UnmarshalType(mpi.MarshalType(v))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(mpi.TypeEqual(v, rebuilt))
	// Output: true
}

// Probe-then-allocate receives messages of unknown size — the pattern
// language bindings use for serialized objects.
func ExampleComm_Mprobe() {
	err := mpi.Run(2, mpi.Options{}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			return c.Send([]byte("sized exactly right"), -1, mpi.TypeBytes, 1, 3)
		}
		m, err := c.Mprobe(0, 3)
		if err != nil {
			return err
		}
		buf := make([]byte, m.Bytes) // allocation from the probed size
		if _, err := c.MRecv(m, buf, -1, mpi.TypeBytes); err != nil {
			return err
		}
		fmt.Printf("%d bytes: %s\n", len(buf), buf)
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: 19 bytes: sized exactly right
}
