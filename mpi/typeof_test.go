package mpi_test

import (
	"errors"
	"testing"
	"unsafe"

	"mpicd/mpi"
)

// particle is the quickstart's derived type: padded struct with nested
// fixed arrays.
type particle struct {
	ID       int32
	Mass     float64 // 4-byte gap before this field
	Pos, Vel [3]float64
}

func TestTypeOfSendRecvValue(t *testing.T) {
	err := mpi.Run(2, mpi.Options{}, func(c *mpi.Comm) error {
		v := particle{ID: 42, Mass: 1.5, Pos: [3]float64{1, 2, 3}, Vel: [3]float64{-1, 0, 1}}
		if c.Rank() == 0 {
			return mpi.SendValue(c, &v, 1, 7)
		}
		var r particle
		if _, err := mpi.RecvValue(c, &r, 0, 7); err != nil {
			return err
		}
		if r != v {
			t.Errorf("received %+v, want %+v", r, v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTypeOfSendRecvSlice(t *testing.T) {
	const n = 257 // straddles eager fragmentation for this extent
	err := mpi.Run(2, mpi.Options{}, func(c *mpi.Comm) error {
		vals := make([]particle, n)
		for i := range vals {
			vals[i] = particle{
				ID:   int32(i),
				Mass: float64(i) / 3,
				Pos:  [3]float64{float64(i), float64(2 * i), float64(3 * i)},
				Vel:  [3]float64{1, float64(-i), 0.5},
			}
		}
		if c.Rank() == 0 {
			return mpi.SendSlice(c, vals, 1, 9)
		}
		got := make([]particle, n)
		if _, err := mpi.RecvSlice(c, got, 0, 9); err != nil {
			return err
		}
		for i := range got {
			if got[i] != vals[i] {
				t.Errorf("element %d: got %+v want %+v", i, got[i], vals[i])
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTypeOfSharesPlanWithHandBuilt is the facade-level differential
// gate: mpi.TypeOf and the hand-built mpi.Struct equivalent intern to
// one plan cache entry.
func TestTypeOfSharesPlanWithHandBuilt(t *testing.T) {
	derived, err := mpi.TypeOf[particle]()
	if err != nil {
		t.Fatal(err)
	}
	hand, err := mpi.Struct(
		[]int{1, 1, 3, 3},
		[]int64{0, 8, int64(unsafe.Offsetof(particle{}.Pos)), int64(unsafe.Offsetof(particle{}.Vel))},
		[]*mpi.DDT{mpi.Int32, mpi.Float64, mpi.Float64, mpi.Float64},
	)
	if err != nil {
		t.Fatal(err)
	}
	hand, err = mpi.Resized(hand, int64(unsafe.Sizeof(particle{})))
	if err != nil {
		t.Fatal(err)
	}
	if !mpi.TypeEqual(derived, hand) {
		t.Fatal("derived and hand-built types are not transfer-equivalent")
	}
	if mpi.TypePlan(derived) != mpi.TypePlan(hand) {
		t.Fatal("derived and hand-built types did not share one cached plan")
	}
}

// TestDatatypeOfMemoZeroAlloc guards the helper hot path: after first
// use, resolving the committed datatype of T allocates nothing.
func TestDatatypeOfMemoZeroAlloc(t *testing.T) {
	if _, err := mpi.DatatypeOf[particle](); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := mpi.DatatypeOf[particle](); err != nil {
			t.Error(err)
		}
	}); allocs != 0 {
		t.Fatalf("memo-hit DatatypeOf allocated %.1f times per call, want 0", allocs)
	}
}

func TestTypeOfUnsupportedTaxonomy(t *testing.T) {
	type dynamic struct {
		Names []string
	}
	if _, err := mpi.TypeOf[dynamic](); !errors.Is(err, mpi.ErrTypeUnsupported) {
		t.Fatalf("TypeOf: error %v does not wrap ErrTypeUnsupported", err)
	}
	if _, err := mpi.DatatypeOf[dynamic](); !errors.Is(err, mpi.ErrTypeUnsupported) {
		t.Fatalf("DatatypeOf: error %v does not wrap ErrTypeUnsupported", err)
	}
	// The typed helpers surface the same taxonomy without communicating.
	err := mpi.Run(2, mpi.Options{}, func(c *mpi.Comm) error {
		var v dynamic
		if c.Rank() == 0 {
			if err := mpi.SendValue(c, &v, 1, 1); !errors.Is(err, mpi.ErrTypeUnsupported) {
				t.Errorf("SendValue: %v", err)
			}
		} else if _, err := mpi.RecvValue(c, &v, 0, 1); !errors.Is(err, mpi.ErrTypeUnsupported) {
			t.Errorf("RecvValue: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
