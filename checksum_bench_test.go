// Ablation benchmark for the integrity machinery added with the fault
// tolerance work: what does checksumming cost when nothing goes wrong?
//
// Two distinct mechanisms are measured. On byte-stream (TCP) fabrics,
// fabric.Config.Checksum adds a CRC32C over every rendezvous pull frame.
// On the transport layer, ucp.Config.Checksum adds a CRC32C to eager
// fragment headers — which also forces the eager path to stage fragments
// instead of streaming them zero-copy, so its cost is staging + CRC.
package mpicd_test

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"mpicd/internal/core"
	"mpicd/internal/fabric"
	"mpicd/internal/ucp"
)

// benchTCPContig ping-pongs a contiguous buffer between two TCP ranks on
// loopback and reports bandwidth.
func benchTCPContig(b *testing.B, size int, fcfg fabric.Config, ucfg ucp.Config) {
	b.Helper()
	addrs := make([]string, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	nics := make([]*fabric.TCP, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nics[i], errs[i] = fabric.NewTCP(i, addrs, fcfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			b.Fatalf("rank %d: %v", i, err)
		}
	}
	comms := make([]*core.Comm, 2)
	for i := range comms {
		comms[i] = core.NewComm(ucp.NewWorker(nics[i], ucfg))
	}
	defer func() {
		for _, c := range comms {
			c.Worker().Close()
		}
	}()

	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 13)
	}
	iters := b.N
	done := make(chan error, 1)
	go func() {
		c := comms[1]
		buf := make([]byte, size)
		for i := 0; i < iters; i++ {
			if _, err := c.Recv(buf, -1, core.TypeBytes, 0, 1); err != nil {
				done <- err
				return
			}
			if err := c.Send(buf, -1, core.TypeBytes, 0, 2); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	c := comms[0]
	out := make([]byte, size)
	b.SetBytes(2 * int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(data, -1, core.TypeBytes, 1, 1); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Recv(out, -1, core.TypeBytes, 1, 2); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		b.Fatal("roundtrip mismatch")
	}
}

// benchInproc ping-pongs a contiguous buffer over the in-process fabric
// under the given transport config.
func benchInproc(b *testing.B, size int, fcfg fabric.Config, ucfg ucp.Config) {
	b.Helper()
	sys := core.NewSystem(2, core.Options{Fabric: fcfg, UCP: ucfg})
	defer sys.Close()
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 13)
	}
	iters := b.N
	done := make(chan error, 1)
	go func() {
		c := sys.Comm(1)
		buf := make([]byte, size)
		for i := 0; i < iters; i++ {
			if _, err := c.Recv(buf, -1, core.TypeBytes, 0, 1); err != nil {
				done <- err
				return
			}
			if err := c.Send(buf, -1, core.TypeBytes, 0, 2); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	c := sys.Comm(0)
	out := make([]byte, size)
	b.SetBytes(2 * int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(data, -1, core.TypeBytes, 1, 1); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Recv(out, -1, core.TypeBytes, 1, 2); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblationChecksum measures the no-fault cost of integrity
// checking. The headline number is the 4 MiB contiguous rendezvous over
// TCP with pull-frame CRCs on versus off (acceptance target: <10%
// bandwidth cost); the eager sub-benchmarks price the transport-level
// fragment CRC, whose cost includes the forced staging copy.
func BenchmarkAblationChecksum(b *testing.B) {
	// The headline: 4 MiB contiguous through the default protocol choice
	// (rendezvous) with every checksum knob on versus off. On the
	// in-process fabric the pull is a memory move with nothing to
	// checksum, so integrity costs nothing on this path by construction.
	b.Run("inproc-rndv", func(b *testing.B) {
		for _, size := range []int{1 << 20, 4 << 20} {
			for _, crc := range []bool{false, true} {
				b.Run(fmt.Sprintf("size-%dK/crc-%v", size/1024, crc), func(b *testing.B) {
					benchInproc(b, size, fabric.Config{Checksum: crc}, ucp.Config{Checksum: crc})
				})
			}
		}
	})
	b.Run("tcp-rndv", func(b *testing.B) {
		for _, size := range []int{1 << 20, 4 << 20} {
			for _, crc := range []bool{false, true} {
				b.Run(fmt.Sprintf("size-%dK/crc-%v", size/1024, crc), func(b *testing.B) {
					benchTCPContig(b, size, fabric.Config{Checksum: crc}, ucp.Config{})
				})
			}
		}
	})
	b.Run("inproc-eager", func(b *testing.B) {
		for _, size := range []int{64 << 10, 1 << 20} {
			for _, crc := range []bool{false, true} {
				b.Run(fmt.Sprintf("size-%dK/crc-%v", size/1024, crc), func(b *testing.B) {
					ucfg := ucp.Config{Checksum: crc, RndvThresh: 1 << 30}
					benchInproc(b, size, fabric.Config{}, ucfg)
				})
			}
		}
	})
}
