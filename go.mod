module mpicd

go 1.22
