// Package coro provides a goroutine-based generator for resumable
// packing: the Go analogue of the paper's C++ std::generator experiment
// (Listing 9).
//
// Partial packing — returning from the pack callback when the destination
// fragment is full and resuming later — is trivial for single loops (the
// loop index is recomputed from the offset) but intractable for deep loop
// nests like MILC's or WRF's. The paper suspends a C++ coroutine in the
// middle of the loop nest instead; here a goroutine plays that role: the
// packing function writes through a put function that transparently
// suspends whenever the current fragment is full and resumes inside the
// innermost loop when the next fragment arrives.
package coro

// Packer drives a packing function that produces one byte stream and may
// suspend at any point, mid-loop-nest included.
type Packer struct {
	frags  chan []byte // next destination fragment, Fill -> generator
	used   chan int    // bytes written into that fragment, generator -> Fill
	done   chan struct{}
	closed bool
}

// NewPacker starts fn on its own goroutine. fn emits packed bytes by
// calling put; each put may suspend the function when the current
// destination fragment fills up. fn runs lazily: nothing executes until
// the first Fill.
func NewPacker(fn func(put func([]byte))) *Packer {
	p := &Packer{
		frags: make(chan []byte),
		used:  make(chan int),
		done:  make(chan struct{}),
	}
	go func() {
		defer close(p.done)
		cur, ok := <-p.frags
		if !ok {
			return
		}
		pos := 0
		put := func(b []byte) {
			for len(b) > 0 {
				n := copy(cur[pos:], b)
				pos += n
				b = b[n:]
				if pos == len(cur) {
					p.used <- pos
					cur, ok = <-p.frags
					if !ok {
						// Canceled: unwind the generator goroutine.
						panic(packerCanceled{})
					}
					pos = 0
				}
			}
		}
		defer func() {
			if r := recover(); r != nil {
				if _, isCancel := r.(packerCanceled); !isCancel {
					panic(r)
				}
			}
		}()
		fn(put)
		// Flush the trailing partial fragment.
		p.used <- pos
	}()
	return p
}

type packerCanceled struct{}

// Fill resumes the packing function with dst as the next fragment and
// returns how many bytes were produced. more is false once the stream is
// exhausted (every later Fill returns 0, false).
func (p *Packer) Fill(dst []byte) (n int, more bool) {
	if p.closed {
		return 0, false
	}
	select {
	case p.frags <- dst:
	case <-p.done:
		p.closed = true
		return 0, false
	}
	select {
	case n = <-p.used:
		if n < len(dst) {
			// The generator finished inside this fragment.
			select {
			case <-p.done:
				p.closed = true
				return n, false
			default:
				// Underfull fragment with the generator still alive can
				// only happen at stream end; wait for it to wind down.
				<-p.done
				p.closed = true
				return n, false
			}
		}
		return n, true
	case <-p.done:
		p.closed = true
		return 0, false
	}
}

// Close cancels a packer before exhaustion, releasing its goroutine.
// Safe to call multiple times and after exhaustion.
func (p *Packer) Close() {
	if p.closed {
		return
	}
	p.closed = true
	close(p.frags)
	for {
		select {
		case <-p.used:
			// Drain a final flush racing with cancellation.
		case <-p.done:
			return
		}
	}
}
