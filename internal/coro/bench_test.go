package coro

import (
	"fmt"
	"testing"
)

// Benchmarks quantifying the resumable-pack design choice: a generator
// suspension costs one channel handshake per fragment, while each put
// costs a function call — coarse puts amortize both.

func BenchmarkPackerThroughput(b *testing.B) {
	const total = 1 << 20
	src := fill(total)
	for _, put := range []int{16, 512, 16384} {
		b.Run(fmt.Sprintf("put-%d", put), func(b *testing.B) {
			frag := make([]byte, 16*1024)
			b.SetBytes(total)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := NewPacker(func(emit func([]byte)) {
					for at := 0; at < total; at += put {
						end := at + put
						if end > total {
							end = total
						}
						emit(src[at:end])
					}
				})
				for {
					_, more := p.Fill(frag)
					if !more {
						break
					}
				}
				p.Close()
			}
		})
	}
}

func BenchmarkPackerSuspendCost(b *testing.B) {
	// One suspension per Fill: fragment == put size.
	const chunk = 4096
	src := fill(chunk)
	frag := make([]byte, chunk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewPacker(func(emit func([]byte)) {
			emit(src)
			emit(src)
		})
		p.Fill(frag)
		p.Fill(frag)
		p.Close()
	}
}
