package coro

import (
	"bytes"
	"testing"
	"testing/quick"
)

// nestedPack emits the paper's Listing 9 pattern: a loop nest over a
// strided 2-D array, suspendable anywhere.
func nestedPack(src []byte, dim1, dim3, stride int) func(put func([]byte)) {
	return func(put func([]byte)) {
		for k := 1; k < dim3; k++ {
			for m := 0; m < dim1; m++ {
				off := (k*stride + m) * 8
				put(src[off : off+8])
			}
		}
	}
}

func refNestedPack(src []byte, dim1, dim3, stride int) []byte {
	var out []byte
	for k := 1; k < dim3; k++ {
		for m := 0; m < dim1; m++ {
			off := (k*stride + m) * 8
			out = append(out, src[off:off+8]...)
		}
	}
	return out
}

func fill(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + 1)
	}
	return b
}

func TestPackerWholeStream(t *testing.T) {
	src := fill(8 * 100)
	p := NewPacker(func(put func([]byte)) { put(src) })
	defer p.Close()
	out := make([]byte, len(src))
	n, more := p.Fill(out)
	if n != len(src) {
		t.Fatalf("Fill = %d", n)
	}
	if !bytes.Equal(out, src) {
		t.Fatal("content mismatch")
	}
	if more {
		// Exactly-full fragments leave the stream state unknown until the
		// next Fill; it must then report exhaustion.
		n, more = p.Fill(out)
		if n != 0 || more {
			t.Fatalf("post-stream Fill = %d, %v", n, more)
		}
	}
}

func TestPackerSuspendsMidLoopNest(t *testing.T) {
	const dim1, dim3, stride = 7, 9, 13
	src := fill(8 * dim3 * stride)
	want := refNestedPack(src, dim1, dim3, stride)
	// Fragment sizes that do NOT divide the 8-byte element force
	// suspension in the middle of an element and of the m-loop.
	for _, frag := range []int{1, 3, 5, 8, 13, 64, 1000} {
		p := NewPacker(nestedPack(src, dim1, dim3, stride))
		var got []byte
		buf := make([]byte, frag)
		for {
			n, more := p.Fill(buf)
			got = append(got, buf[:n]...)
			if !more {
				break
			}
		}
		p.Close()
		if !bytes.Equal(got, want) {
			t.Fatalf("frag %d: stream mismatch (%d vs %d bytes)", frag, len(got), len(want))
		}
	}
}

func TestPackerEmptyStream(t *testing.T) {
	p := NewPacker(func(put func([]byte)) {})
	defer p.Close()
	buf := make([]byte, 16)
	n, more := p.Fill(buf)
	if n != 0 || more {
		t.Fatalf("empty stream Fill = %d, %v", n, more)
	}
}

func TestPackerCloseMidStream(t *testing.T) {
	src := fill(1 << 20)
	p := NewPacker(func(put func([]byte)) { put(src) })
	buf := make([]byte, 128)
	if n, _ := p.Fill(buf); n != 128 {
		t.Fatal("first fragment short")
	}
	p.Close() // must not deadlock or leak
	if n, more := p.Fill(buf); n != 0 || more {
		t.Fatal("Fill after Close must report exhaustion")
	}
	p.Close() // idempotent
}

func TestPackerManySmallPuts(t *testing.T) {
	var want []byte
	p := NewPacker(func(put func([]byte)) {
		for i := 0; i < 1000; i++ {
			put([]byte{byte(i)})
		}
	})
	defer p.Close()
	for i := 0; i < 1000; i++ {
		want = append(want, byte(i))
	}
	var got []byte
	buf := make([]byte, 37)
	for {
		n, more := p.Fill(buf)
		got = append(got, buf[:n]...)
		if !more {
			break
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatal("small-put stream mismatch")
	}
}

// Property: any put-chunking streamed through any fill-chunking preserves
// the byte stream.
func TestPackerStreamProperty(t *testing.T) {
	check := func(total uint16, putChunk, fillChunk uint8) bool {
		n := int(total) % 5000
		pc := int(putChunk)%97 + 1
		fc := int(fillChunk)%89 + 1
		src := fill(n)
		p := NewPacker(func(put func([]byte)) {
			for at := 0; at < n; at += pc {
				end := at + pc
				if end > n {
					end = n
				}
				put(src[at:end])
			}
		})
		defer p.Close()
		var got []byte
		buf := make([]byte, fc)
		for {
			m, more := p.Fill(buf)
			got = append(got, buf[:m]...)
			if !more {
				break
			}
		}
		return bytes.Equal(got, src)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
