package serial

import (
	"fmt"
	"testing"
)

// Benchmarks documenting the serialization costs the Python evaluation
// turns on: full in-band serialization copies every payload byte, while
// out-of-band mode touches only the small header.

func BenchmarkDumpsInBand(b *testing.B) {
	for _, size := range []int{4 << 10, 1 << 20} {
		b.Run(fmt.Sprint(size), func(b *testing.B) {
			obj := NewFloat64Array(size/8, 1)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Dumps(obj); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDumpsOOB(b *testing.B) {
	for _, size := range []int{4 << 10, 1 << 20} {
		b.Run(fmt.Sprint(size), func(b *testing.B) {
			obj := NewFloat64Array(size/8, 1)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := DumpsOOB(obj, DefaultThreshold); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLoadsOOBZeroCopy(b *testing.B) {
	obj := NewFloat64Array(1<<17, 1)
	header, oob, _ := DumpsOOB(obj, DefaultThreshold)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadsOOB(header, oob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComplexObjectOOB(b *testing.B) {
	list := make([]any, 8)
	for i := range list {
		list[i] = NewFloat64Array(128*1024/8, byte(i))
	}
	obj := map[string]any{"arrays": list, "meta": "m"}
	b.SetBytes(8 * 128 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		header, oob, err := DumpsOOB(obj, DefaultThreshold)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := LoadsOOB(header, oob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBufferLens(b *testing.B) {
	list := make([]any, 64)
	for i := range list {
		list[i] = NewFloat64Array(1024, byte(i))
	}
	header, _, _ := DumpsOOB(list, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BufferLens(header); err != nil {
			b.Fatal(err)
		}
	}
}
