package serial

import (
	"fmt"

	"mpicd/internal/ddt"
)

// Strided (non-contiguous) NDArray support, backed by the datatype plan
// compiler. NumPy views — transposes, column slices, every-other-row
// selections — carry explicit byte strides; rather than forcing callers
// to copy into C order before serializing, Encode lowers the strided
// view to a derived datatype (nested hvectors, innermost dimension out)
// and packs it through the type's compiled plan. The wire format is
// unchanged: receivers always see a contiguous C-order buffer, so
// Decode and BufferLens need no strided awareness, and two views with
// the same shape/stride geometry share one cached plan.

// dtypeSizes maps the supported NDArray dtypes to their element width.
var dtypeSizes = map[string]int64{
	"byte": 1, "int8": 1, "uint8": 1,
	"int16": 2,
	"int32": 4, "float32": 4,
	"int64": 8, "uint64": 8, "float64": 8,
	"complex128": 16,
}

// dtypeBase picks the ddt base type for an element width.
func dtypeBase(size int64) *ddt.Type {
	switch size {
	case 1:
		return ddt.Byte
	case 2:
		return ddt.Int16
	case 4:
		return ddt.Int32
	case 8:
		return ddt.Float64
	default:
		return ddt.Complex128
	}
}

// ElemSize returns the element width implied by the dtype, or an error
// for dtypes the strided path does not know.
func (a *NDArray) ElemSize() (int64, error) {
	if es, ok := dtypeSizes[a.DType]; ok {
		return es, nil
	}
	return 0, fmt.Errorf("serial: unknown dtype %q", a.DType)
}

// Contiguous reports whether the array is C-order contiguous: no
// strides recorded, or strides exactly matching row-major layout.
func (a *NDArray) Contiguous() bool {
	if len(a.Strides) == 0 {
		return true
	}
	es, err := a.ElemSize()
	if err != nil {
		return false
	}
	want := es
	for k := len(a.Shape) - 1; k >= 0; k-- {
		if k < len(a.Strides) && a.Shape[k] > 1 && a.Strides[k] != want {
			return false
		}
		want *= a.Shape[k]
	}
	return true
}

// packType builds the derived datatype describing one traversal of the
// strided view: the base element wrapped in one hvector per dimension,
// innermost (fastest-varying) dimension first. Committing it compiles —
// or fetches from the plan cache — the pack kernels.
func (a *NDArray) packType() (*ddt.Type, error) {
	if len(a.Strides) != len(a.Shape) {
		return nil, fmt.Errorf("serial: %d strides for %d-d array", len(a.Strides), len(a.Shape))
	}
	es, err := a.ElemSize()
	if err != nil {
		return nil, err
	}
	typ := dtypeBase(es)
	for k := len(a.Shape) - 1; k >= 0; k-- {
		if a.Shape[k] < 0 {
			return nil, fmt.Errorf("serial: negative dimension %d", a.Shape[k])
		}
		if a.Strides[k] < 0 {
			// A negative stride views the buffer backwards; packing it needs
			// a base-offset convention the wire format does not carry.
			return nil, fmt.Errorf("serial: negative stride %d unsupported", a.Strides[k])
		}
		typ, err = ddt.Hvector(int(a.Shape[k]), 1, a.Strides[k], typ)
		if err != nil {
			return nil, err
		}
	}
	return typ, nil
}

// packed returns the array's data as a contiguous C-order buffer: the
// data itself when already contiguous, otherwise a fresh buffer filled
// by the compiled plan of the strided layout.
//
// Empty arrays — any Shape[k] == 0 — pack to zero bytes explicitly,
// before the contiguity and stride checks: a zero-length dimension makes
// every stride irrelevant (there is no element to walk), and the
// fall-through used to let Contiguous() treat such arrays as contiguous
// and emit the entire backing Data buffer for an array that holds no
// elements.
func (a *NDArray) packed() (Buffer, error) {
	for _, s := range a.Shape {
		if s < 0 {
			return nil, fmt.Errorf("serial: negative dimension %d", s)
		}
	}
	if a.Elems() == 0 {
		return Buffer{}, nil
	}
	if a.Contiguous() {
		return a.Data, nil
	}
	typ, err := a.packType()
	if err != nil {
		return nil, err
	}
	if span := typ.Span(1); int64(len(a.Data)) < span {
		return nil, fmt.Errorf("serial: strided view spans %d bytes, buffer has %d", span, len(a.Data))
	}
	out := make(Buffer, typ.PackedSize(1))
	if _, err := typ.Pack(a.Data, 1, out); err != nil {
		return nil, err
	}
	return out, nil
}
