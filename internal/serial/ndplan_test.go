package serial

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"mpicd/internal/ddt"
)

// matrix44 builds a contiguous 4x4 float64 matrix with a[i][j] = 10i+j
// and returns it alongside the transposed element order for reference.
func matrix44() (Buffer, []float64) {
	data := make(Buffer, 16*8)
	var tr []float64
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			tr = append(tr, float64(10*i+j))
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			binary.LittleEndian.PutUint64(data[(i*4+j)*8:], math.Float64bits(float64(10*i+j)))
		}
	}
	return data, tr
}

// TestStridedNDArrayEncode serializes a transpose view (swapped
// strides, shared buffer) and expects the wire to carry the transposed
// data contiguously — the decoder stays stride-unaware.
func TestStridedNDArrayEncode(t *testing.T) {
	data, want := matrix44()
	view := &NDArray{
		DType:   "float64",
		Shape:   []int64{4, 4},
		Strides: []int64{8, 32}, // transpose of C-order {32, 8}
		Data:    data,
	}
	if view.Contiguous() {
		t.Fatal("transpose view reported contiguous")
	}
	h, err := Dumps(view)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Loads(h)
	if err != nil {
		t.Fatal(err)
	}
	arr, ok := got.(*NDArray)
	if !ok {
		t.Fatalf("decoded %T", got)
	}
	if len(arr.Data) != 16*8 || arr.Strides != nil {
		t.Fatalf("decoded array: %d bytes, strides %v", len(arr.Data), arr.Strides)
	}
	for k, w := range want {
		if v := math.Float64frombits(binary.LittleEndian.Uint64(arr.Data[k*8:])); v != w {
			t.Fatalf("element %d = %v, want %v", k, v, w)
		}
	}
}

// TestStridedNDArraySlice takes every-other-row (stride doubled along
// the leading dimension) and checks both the packed bytes and that an
// explicitly C-contiguous stride set short-circuits without packing.
func TestStridedNDArraySlice(t *testing.T) {
	data, _ := matrix44()
	half := &NDArray{
		DType:   "float64",
		Shape:   []int64{2, 4},
		Strides: []int64{64, 8}, // rows 0 and 2
		Data:    data,
	}
	p, err := half.packed()
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := append(append(Buffer{}, data[0:32]...), data[64:96]...)
	if !bytes.Equal(p, wantBytes) {
		t.Fatal("every-other-row pack produced wrong bytes")
	}

	cont := &NDArray{DType: "float64", Shape: []int64{4, 4}, Strides: []int64{32, 8}, Data: data}
	if !cont.Contiguous() {
		t.Fatal("C-order strides reported non-contiguous")
	}
	if p, err := cont.packed(); err != nil || &p[0] != &data[0] {
		t.Fatalf("contiguous fast path copied (%v)", err)
	}
}

// TestStridedNDArrayErrors: negative strides and views that overrun the
// buffer must fail at encode time, not corrupt the stream.
func TestStridedNDArrayErrors(t *testing.T) {
	data, _ := matrix44()
	for name, arr := range map[string]*NDArray{
		"negative-stride": {DType: "float64", Shape: []int64{4, 4}, Strides: []int64{-32, 8}, Data: data},
		"overrun":         {DType: "float64", Shape: []int64{4, 4}, Strides: []int64{64, 8}, Data: data},
		"unknown-dtype":   {DType: "decimal128", Shape: []int64{4}, Strides: []int64{16}, Data: data},
		"stride-mismatch": {DType: "float64", Shape: []int64{4, 4}, Strides: []int64{8}, Data: data},
	} {
		if _, err := Dumps(arr); err == nil {
			t.Errorf("%s: encode succeeded", name)
		}
	}
}

// TestEmptyNDArrayPacksZeroBytes is the regression for the zero-length-
// dimension gap: an array with any Shape[k] == 0 holds no elements, so
// it must pack to zero bytes — it used to fall through the stride checks
// (every dim with shape <= 1 is exempt from stride validation, so
// Contiguous() reported true) and emit the entire backing Data buffer.
func TestEmptyNDArrayPacksZeroBytes(t *testing.T) {
	junk := Buffer{1, 2, 3, 4, 5, 6, 7, 8}
	for name, arr := range map[string]*NDArray{
		"1d":              {DType: "float64", Shape: []int64{0}, Data: junk},
		"1d-junk-strides": {DType: "float64", Shape: []int64{0}, Strides: []int64{-8}, Data: junk},
		"trailing-zero":   {DType: "float64", Shape: []int64{3, 0}, Strides: []int64{999, 8}, Data: junk},
		"leading-zero":    {DType: "int32", Shape: []int64{0, 5}, Strides: []int64{20, 4}, Data: junk},
	} {
		p, err := arr.packed()
		if err != nil {
			t.Fatalf("%s: packed: %v", name, err)
		}
		if len(p) != 0 {
			t.Fatalf("%s: empty array packed %d bytes, want 0", name, len(p))
		}
	}
}

// TestEmptyNDArrayRoundtrip: an empty array survives encode/decode with
// its shape intact and zero payload bytes, regardless of what the
// backing buffer or strides held.
func TestEmptyNDArrayRoundtrip(t *testing.T) {
	arr := &NDArray{
		DType:   "float64",
		Shape:   []int64{4, 0, 3},
		Strides: []int64{0, 0, 8},
		Data:    Buffer{9, 9, 9, 9, 9, 9, 9, 9}, // junk that must not leak
	}
	h, err := Dumps(arr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Loads(h)
	if err != nil {
		t.Fatal(err)
	}
	dec, ok := got.(*NDArray)
	if !ok {
		t.Fatalf("decoded %T", got)
	}
	if len(dec.Data) != 0 {
		t.Fatalf("decoded empty array carries %d data bytes", len(dec.Data))
	}
	if len(dec.Shape) != 3 || dec.Shape[0] != 4 || dec.Shape[1] != 0 || dec.Shape[2] != 3 {
		t.Fatalf("decoded shape %v, want [4 0 3]", dec.Shape)
	}
	if dec.Elems() != 0 {
		t.Fatalf("decoded element count %d, want 0", dec.Elems())
	}
	// Re-encoding the decoded array is stable.
	h2, err := Dumps(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(h, h2) {
		t.Fatal("empty array round trip is not stable")
	}
}

// TestNDArrayNegativeDimension: a negative dimension is corrupt metadata
// and must fail at encode time.
func TestNDArrayNegativeDimension(t *testing.T) {
	arr := &NDArray{DType: "float64", Shape: []int64{-1}, Data: Buffer{}}
	if _, err := Dumps(arr); err == nil {
		t.Fatal("negative dimension accepted")
	}
}

// TestStridedPlanShared: two views with the same stride geometry must
// compile one plan — the second encode hits the ddt plan cache.
func TestStridedPlanShared(t *testing.T) {
	ddt.ResetPlanCache()
	data, _ := matrix44()
	for i := 0; i < 2; i++ {
		v := &NDArray{DType: "float64", Shape: []int64{4, 4}, Strides: []int64{8, 32}, Data: data}
		if _, err := Dumps(v); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, _ := ddt.PlanCacheStats()
	if misses == 0 || hits == 0 {
		t.Fatalf("plan cache: %d hits, %d misses — second encode should hit", hits, misses)
	}
}
