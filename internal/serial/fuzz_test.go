package serial

import (
	"testing"
)

// FuzzLoads hardens the deserializer against hostile streams: whatever
// the input, Loads must return an error or a value — never panic or
// over-read. (Serialized data crosses trust boundaries in MPI programs.)
func FuzzLoads(f *testing.F) {
	seedValues := []any{
		nil, true, int64(-1), 3.14, "string", Buffer{1, 2, 3},
		[]any{int64(1), "two"},
		map[string]any{"k": Buffer("v")},
		NewFloat64Array(16, 1),
	}
	for _, v := range seedValues {
		data, err := Dumps(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		header, _, err := DumpsOOB(v, 8)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(header)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must not panic; errors are fine.
		v, err := Loads(data)
		if err == nil {
			// A decoded value must re-encode (the model is closed).
			if _, err := Dumps(v); err != nil {
				t.Fatalf("decoded value %#v does not re-encode: %v", v, err)
			}
		}
		// The length scanner must agree with the decoder on validity for
		// streams without buffer references.
		_, _ = BufferLens(data)
		// OOB decoding with no buffers must reject streams that
		// reference them rather than panic.
		_, _ = LoadsOOB(data, nil)
	})
}
