// Package serial is the reproduction's stand-in for Python's pickle with
// PEP-574 out-of-band buffers (pickle protocol 5), which the paper's
// Python evaluation (Section V.B) builds on.
//
// A value serializes into a small in-band header stream plus — when
// out-of-band mode is enabled — a list of zero-copy buffers: large Buffer
// values are not copied into the stream; the stream records an index and
// length, and the raw bytes travel separately (over separate MPI messages,
// or as custom-datatype memory regions). NDArray models a NumPy array:
// its serialized header (dtype, shape, flags) is a few dozen bytes, small
// against the array payloads the benchmarks move, matching the paper's
// ~120-byte pickle header observation.
//
// The value model is deliberately pickle-shaped but finite: nil, bool,
// int64, float64, string, Buffer, []any, map[string]any and *NDArray.
// This covers everything the paper's benchmarks serialize; arbitrary Go
// object graphs are out of scope (a substitution recorded in DESIGN.md).
package serial

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Buffer is the PickleBuffer analogue: a byte payload eligible for
// out-of-band (zero-copy) treatment.
type Buffer []byte

// NDArray models a NumPy ndarray: shape, dtype, and a flat data buffer.
// Strides, when non-nil, give the byte distance between consecutive
// elements along each dimension (a non-contiguous NumPy view); Encode
// packs such arrays into C order through a compiled datatype plan (see
// ndplan.go), so the wire format always carries contiguous data.
type NDArray struct {
	DType   string
	Shape   []int64
	Strides []int64
	Data    Buffer
}

// NewFloat64Array builds a 1-D float64 NDArray of n elements with
// deterministic contents.
func NewFloat64Array(n int, seed byte) *NDArray {
	data := make(Buffer, 8*n)
	for i := range data {
		data[i] = byte(i)*29 + seed
	}
	return &NDArray{DType: "float64", Shape: []int64{int64(n)}, Data: data}
}

// Elems returns the number of elements implied by the shape.
func (a *NDArray) Elems() int64 {
	n := int64(1)
	for _, s := range a.Shape {
		n *= s
	}
	return n
}

// value tags of the wire format.
const (
	tagNil     = 0
	tagFalse   = 1
	tagTrue    = 2
	tagInt     = 3
	tagFloat   = 4
	tagString  = 5
	tagBytes   = 6 // in-band buffer
	tagBufRef  = 7 // out-of-band buffer reference
	tagList    = 8
	tagDict    = 9
	tagNDArray = 10
)

// ErrFormat reports a corrupt or unsupported stream.
var ErrFormat = errors.New("serial: invalid stream")

// Encoder serializes values. With a non-negative OOB threshold, Buffer
// values of at least that many bytes are emitted out-of-band.
type Encoder struct {
	out       []byte
	oob       []Buffer
	oobMode   bool
	threshold int
}

// NewEncoder returns an in-band encoder (everything in one stream).
func NewEncoder() *Encoder { return &Encoder{threshold: -1} }

// NewEncoderOOB returns an encoder that hoists Buffers of >= threshold
// bytes out-of-band.
func NewEncoderOOB(threshold int) *Encoder {
	if threshold < 0 {
		threshold = 0
	}
	return &Encoder{oobMode: true, threshold: threshold}
}

func (e *Encoder) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.out = append(e.out, b[:]...)
}

func (e *Encoder) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.out = append(e.out, b[:]...)
}

func (e *Encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.out = append(e.out, s...)
}

// Encode appends one value to the stream.
func (e *Encoder) Encode(v any) error {
	switch x := v.(type) {
	case nil:
		e.out = append(e.out, tagNil)
	case bool:
		if x {
			e.out = append(e.out, tagTrue)
		} else {
			e.out = append(e.out, tagFalse)
		}
	case int:
		e.out = append(e.out, tagInt)
		e.u64(uint64(int64(x)))
	case int32:
		e.out = append(e.out, tagInt)
		e.u64(uint64(int64(x)))
	case int64:
		e.out = append(e.out, tagInt)
		e.u64(uint64(x))
	case float64:
		e.out = append(e.out, tagFloat)
		e.u64(math.Float64bits(x))
	case string:
		e.out = append(e.out, tagString)
		e.str(x)
	case Buffer:
		e.buffer(x)
	case []byte:
		e.buffer(Buffer(x))
	case []any:
		e.out = append(e.out, tagList)
		e.u32(uint32(len(x)))
		for _, el := range x {
			if err := e.Encode(el); err != nil {
				return err
			}
		}
	case map[string]any:
		e.out = append(e.out, tagDict)
		e.u32(uint32(len(x)))
		// Deterministic key order (insertion-order-free): sort keys.
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, k := range keys {
			e.str(k)
			if err := e.Encode(x[k]); err != nil {
				return err
			}
		}
	case *NDArray:
		if x == nil {
			e.out = append(e.out, tagNil)
			return nil
		}
		data, err := x.packed()
		if err != nil {
			return err
		}
		e.out = append(e.out, tagNDArray)
		e.str(x.DType)
		e.u32(uint32(len(x.Shape)))
		for _, s := range x.Shape {
			e.u64(uint64(s))
		}
		e.buffer(data)
	default:
		return fmt.Errorf("serial: unsupported type %T", v)
	}
	return nil
}

func (e *Encoder) buffer(b Buffer) {
	if e.oobMode && len(b) >= e.threshold {
		e.out = append(e.out, tagBufRef)
		e.u32(uint32(len(e.oob)))
		e.u64(uint64(len(b)))
		e.oob = append(e.oob, b)
		return
	}
	e.out = append(e.out, tagBytes)
	e.u32(uint32(len(b)))
	e.out = append(e.out, b...)
}

// Header returns the in-band stream.
func (e *Encoder) Header() []byte { return e.out }

// OOB returns the out-of-band buffers in reference order.
func (e *Encoder) OOB() []Buffer { return e.oob }

// Dumps serializes v fully in-band (basic pickle).
func Dumps(v any) ([]byte, error) {
	e := NewEncoder()
	if err := e.Encode(v); err != nil {
		return nil, err
	}
	return e.Header(), nil
}

// DumpsOOB serializes v with out-of-band buffers (pickle protocol 5).
func DumpsOOB(v any, threshold int) (header []byte, oob []Buffer, err error) {
	e := NewEncoderOOB(threshold)
	if err := e.Encode(v); err != nil {
		return nil, nil, err
	}
	return e.Header(), e.OOB(), nil
}

// Decoder deserializes a stream produced by an Encoder.
type Decoder struct {
	in  []byte
	oob []Buffer
	at  int
}

// NewDecoder decodes an in-band stream.
func NewDecoder(header []byte) *Decoder { return &Decoder{in: header} }

// NewDecoderOOB decodes a stream with its out-of-band buffers. Decoded
// Buffers alias the supplied oob slices (zero copy).
func NewDecoderOOB(header []byte, oob []Buffer) *Decoder {
	return &Decoder{in: header, oob: oob}
}

func (d *Decoder) take(n int) ([]byte, error) {
	if d.at+n > len(d.in) {
		return nil, ErrFormat
	}
	b := d.in[d.at : d.at+n]
	d.at += n
	return b, nil
}

func (d *Decoder) u32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *Decoder) u64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *Decoder) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	b, err := d.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Decode reads one value.
func (d *Decoder) Decode() (any, error) {
	tb, err := d.take(1)
	if err != nil {
		return nil, err
	}
	switch tb[0] {
	case tagNil:
		return nil, nil
	case tagFalse:
		return false, nil
	case tagTrue:
		return true, nil
	case tagInt:
		v, err := d.u64()
		return int64(v), err
	case tagFloat:
		v, err := d.u64()
		return math.Float64frombits(v), err
	case tagString:
		return d.str()
	case tagBytes:
		n, err := d.u32()
		if err != nil {
			return nil, err
		}
		b, err := d.take(int(n))
		if err != nil {
			return nil, err
		}
		out := make(Buffer, n)
		copy(out, b)
		return out, nil
	case tagBufRef:
		idx, err := d.u32()
		if err != nil {
			return nil, err
		}
		n, err := d.u64()
		if err != nil {
			return nil, err
		}
		if int(idx) >= len(d.oob) {
			return nil, fmt.Errorf("%w: buffer reference %d of %d", ErrFormat, idx, len(d.oob))
		}
		b := d.oob[idx]
		if uint64(len(b)) != n {
			return nil, fmt.Errorf("%w: buffer %d is %d bytes, expected %d", ErrFormat, idx, len(b), n)
		}
		return b, nil
	case tagList:
		n, err := d.u32()
		if err != nil {
			return nil, err
		}
		out := make([]any, n)
		for i := range out {
			if out[i], err = d.Decode(); err != nil {
				return nil, err
			}
		}
		return out, nil
	case tagDict:
		n, err := d.u32()
		if err != nil {
			return nil, err
		}
		out := make(map[string]any, n)
		for i := uint32(0); i < n; i++ {
			k, err := d.str()
			if err != nil {
				return nil, err
			}
			if out[k], err = d.Decode(); err != nil {
				return nil, err
			}
		}
		return out, nil
	case tagNDArray:
		dtype, err := d.str()
		if err != nil {
			return nil, err
		}
		nd, err := d.u32()
		if err != nil {
			return nil, err
		}
		shape := make([]int64, nd)
		for i := range shape {
			v, err := d.u64()
			if err != nil {
				return nil, err
			}
			shape[i] = int64(v)
		}
		data, err := d.Decode()
		if err != nil {
			return nil, err
		}
		buf, ok := data.(Buffer)
		if !ok {
			return nil, fmt.Errorf("%w: ndarray data is %T", ErrFormat, data)
		}
		return &NDArray{DType: dtype, Shape: shape, Data: buf}, nil
	default:
		return nil, fmt.Errorf("%w: tag %d", ErrFormat, tb[0])
	}
}

// Loads deserializes an in-band stream. The stream must contain exactly
// one value; trailing bytes are an error.
func Loads(header []byte) (any, error) {
	d := NewDecoder(header)
	v, err := d.Decode()
	if err == nil && d.at != len(d.in) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFormat, len(d.in)-d.at)
	}
	return v, err
}

// LoadsOOB deserializes a stream with out-of-band buffers; decoded
// Buffers alias oob (zero copy).
func LoadsOOB(header []byte, oob []Buffer) (any, error) {
	d := NewDecoderOOB(header, oob)
	v, err := d.Decode()
	if err == nil && d.at != len(d.in) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFormat, len(d.in)-d.at)
	}
	return v, err
}

// BufferLens lists the out-of-band buffer lengths referenced by a header,
// in order — what the multi-message receive side needs to preallocate (the
// paper's "separate message with the buffer lengths" workaround reads
// these from the wire instead).
func BufferLens(header []byte) ([]int64, error) {
	d := NewDecoder(header)
	var lens []int64
	var walk func() error
	walk = func() error {
		tb, err := d.take(1)
		if err != nil {
			return err
		}
		switch tb[0] {
		case tagNil, tagFalse, tagTrue:
		case tagInt, tagFloat:
			_, err = d.u64()
		case tagString, tagBytes:
			var n uint32
			if n, err = d.u32(); err == nil {
				_, err = d.take(int(n))
			}
		case tagBufRef:
			if _, err = d.u32(); err != nil {
				return err
			}
			var n uint64
			if n, err = d.u64(); err == nil {
				lens = append(lens, int64(n))
			}
		case tagList:
			var n uint32
			if n, err = d.u32(); err != nil {
				return err
			}
			for i := uint32(0); i < n; i++ {
				if err = walk(); err != nil {
					return err
				}
			}
		case tagDict:
			var n uint32
			if n, err = d.u32(); err != nil {
				return err
			}
			for i := uint32(0); i < n; i++ {
				if _, err = d.str(); err != nil {
					return err
				}
				if err = walk(); err != nil {
					return err
				}
			}
		case tagNDArray:
			if _, err = d.str(); err != nil {
				return err
			}
			var nd uint32
			if nd, err = d.u32(); err != nil {
				return err
			}
			for i := uint32(0); i < nd; i++ {
				if _, err = d.u64(); err != nil {
					return err
				}
			}
			return walk()
		default:
			return fmt.Errorf("%w: tag %d", ErrFormat, tb[0])
		}
		return err
	}
	if err := walk(); err != nil {
		return nil, err
	}
	return lens, nil
}

// sortStrings is a dependency-free insertion sort (key sets are tiny).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
