package serial

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"mpicd/internal/core"
)

func run2(t *testing.T, rank0, rank1 func(c *core.Comm) error) {
	t.Helper()
	err := core.Run(2, core.Options{}, func(c *core.Comm) error {
		if c.Rank() == 0 {
			return rank0(c)
		}
		return rank1(c)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// complexObject mirrors the paper's Figure 9 workload: a user object
// holding several 128-KiB arrays plus small metadata.
func complexObject(arrays int, arrayBytes int) map[string]any {
	list := make([]any, arrays)
	for i := range list {
		list[i] = NewFloat64Array(arrayBytes/8, byte(i+1))
	}
	return map[string]any{
		"name":   "sample",
		"step":   int64(42),
		"arrays": list,
	}
}

func sameObject(a, b any) bool { return reflect.DeepEqual(a, b) }

func TestSendRecvBasic(t *testing.T) {
	obj := complexObject(4, 4096)
	run2(t,
		func(c *core.Comm) error { return SendBasic(c, obj, 1, 1) },
		func(c *core.Comm) error {
			got, err := RecvBasic(c, 0, 1)
			if err != nil {
				return err
			}
			if !sameObject(got, obj) {
				return errors.New("basic transfer mismatch")
			}
			return nil
		})
}

func TestSendRecvOOB(t *testing.T) {
	obj := complexObject(5, 128*1024)
	run2(t,
		func(c *core.Comm) error { return SendOOB(c, obj, 1, 1, 4096) },
		func(c *core.Comm) error {
			got, err := RecvOOB(c, 0, 1)
			if err != nil {
				return err
			}
			if !sameObject(got, obj) {
				return errors.New("oob transfer mismatch")
			}
			return nil
		})
}

func TestSendRecvCDT(t *testing.T) {
	for _, tc := range []struct {
		name string
		obj  any
	}{
		{"single-array", NewFloat64Array(1<<16, 3)},
		{"complex", complexObject(8, 128*1024)},
		{"no-oob", "just a small string"},
		{"mixed", []any{"m", NewFloat64Array(4096, 9), int64(-1)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run2(t,
				func(c *core.Comm) error { return SendCDT(c, tc.obj, 1, 1, 4096) },
				func(c *core.Comm) error {
					got, err := RecvCDT(c, 0, 1)
					if err != nil {
						return err
					}
					if !sameObject(got, tc.obj) {
						return fmt.Errorf("cdt transfer mismatch: %#v", got)
					}
					return nil
				})
		})
	}
}

func TestCDTIsSingleMessage(t *testing.T) {
	// After one RecvCDT, no stray messages may remain (the OOB strategy
	// leaves one message per buffer in flight).
	obj := complexObject(6, 64*1024)
	run2(t,
		func(c *core.Comm) error { return SendCDT(c, obj, 1, 1, 1024) },
		func(c *core.Comm) error {
			if _, err := RecvCDT(c, 0, 1); err != nil {
				return err
			}
			if _, ok, err := c.Iprobe(core.AnySource, core.AnyTag); err != nil || ok {
				return fmt.Errorf("stray message after CDT receive (ok=%v, err=%v)", ok, err)
			}
			return nil
		})
}

// TestOOBInterleavingHazard demonstrates the thread-safety problem the
// paper describes with multi-message protocols: when two objects' message
// sequences interleave on the same (comm, tag), receives mis-associate
// headers and buffers. The custom-datatype strategy is immune because an
// object is one atomic message (see TestCDTConcurrentSenders).
func TestOOBInterleavingHazard(t *testing.T) {
	objA := NewFloat64Array(64*1024/8, 1) // 64 KiB payload
	objB := NewFloat64Array(16*1024/8, 2) // different size
	run2(t,
		func(c *core.Comm) error {
			// Simulate two unsynchronized threads: the headers of A and B
			// are sent before either object's buffers.
			ha, oa, _ := DumpsOOB(objA, 1024)
			hb, ob, _ := DumpsOOB(objB, 1024)
			if err := c.Send(ha, -1, core.TypeBytes, 1, 7); err != nil {
				return err
			}
			if err := c.Send(hb, -1, core.TypeBytes, 1, 7); err != nil {
				return err
			}
			if err := c.Send([]byte(oa[0]), -1, core.TypeBytes, 1, 7); err != nil {
				return err
			}
			return c.Send([]byte(ob[0]), -1, core.TypeBytes, 1, 7)
		},
		func(c *core.Comm) error {
			// Receiver follows the OOB protocol and mis-associates: the
			// second message (B's header) is consumed as A's buffer.
			gotA, errA := RecvOOB(c, 0, 7)
			gotB, errB := RecvOOB(c, 0, 7)
			okA := errA == nil && sameObject(gotA, objA)
			okB := errB == nil && sameObject(gotB, objB)
			if okA && okB {
				return errors.New("interleaved multi-message objects decoded cleanly; hazard not reproduced")
			}
			return nil
		})
}

func TestCDTConcurrentSenders(t *testing.T) {
	// Two goroutines send objects on the same tag with the custom
	// datatype; both arrive intact because each object is one message.
	const senders = 4
	run2(t,
		func(c *core.Comm) error {
			var wg sync.WaitGroup
			errs := make(chan error, senders)
			for g := 0; g < senders; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					obj := NewFloat64Array(32*1024/8, byte(g))
					if err := SendCDT(c, obj, 1, 7, 1024); err != nil {
						errs <- err
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			return <-errs
		},
		func(c *core.Comm) error {
			seen := map[byte]bool{}
			for i := 0; i < senders; i++ {
				got, err := RecvCDT(c, 0, 7)
				if err != nil {
					return err
				}
				arr, ok := got.(*NDArray)
				if !ok || len(arr.Data) != 32*1024 {
					return fmt.Errorf("object %d corrupted: %T", i, got)
				}
				// Identify which sender's object this is via its fill seed.
				want := NewFloat64Array(32*1024/8, arr.Data[0])
				if !bytes.Equal(arr.Data, want.Data) {
					return fmt.Errorf("object %d payload corrupted", i)
				}
				seen[arr.Data[0]] = true
			}
			if len(seen) != senders {
				return fmt.Errorf("received %d distinct objects, want %d", len(seen), senders)
			}
			return nil
		})
}

func TestCDTSelfSend(t *testing.T) {
	obj := complexObject(2, 8192)
	err := core.Run(1, core.Options{}, func(c *core.Comm) error {
		r, err := c.Isend(&Msg{Value: obj}, 1, ObjectType(), 0, 1)
		if err != nil {
			return err
		}
		got, err := RecvCDT(c, 0, 1)
		if err != nil {
			return err
		}
		if _, err := r.Wait(); err != nil {
			return err
		}
		if !sameObject(got, obj) {
			return errors.New("self cdt mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
