package serial

import (
	"errors"
	"fmt"

	"mpicd/internal/core"
)

// This file implements the three object-transfer strategies of the
// paper's Python evaluation (Section V.B) over the point-to-point engine:
//
//   - Basic     — "pickle-basic": the object is fully serialized into one
//     in-band byte stream and moved with a single message pair; the
//     receiver sizes its allocation with Mprobe.
//   - OOB       — "pickle-oob": the header travels in one message and each
//     out-of-band buffer in its own message (the mpi4py multi-message
//     protocol, with its tag-space and threading hazards).
//   - CDT       — "pickle-oob-cdt": the custom datatype proposed by the
//     paper carries header and buffers in a single MPI message; the
//     header is the packed part and the buffers are memory regions.
//
// DefaultThreshold matches pickle-5 behaviour of only hoisting large
// buffers out-of-band.
const DefaultThreshold = 4096

// SendBasic transfers v fully in-band.
func SendBasic(c *core.Comm, v any, dst, tag int) error {
	data, err := Dumps(v)
	if err != nil {
		return err
	}
	return c.Send(data, -1, core.TypeBytes, dst, tag)
}

// RecvBasic receives an object sent with SendBasic, allocating from the
// probed size.
func RecvBasic(c *core.Comm, src, tag int) (any, error) {
	m, err := c.Mprobe(src, tag)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, m.Bytes)
	if _, err := c.MRecv(m, buf, -1, core.TypeBytes); err != nil {
		return nil, err
	}
	return Loads(buf)
}

// SendOOB transfers v with the header in one message and every
// out-of-band buffer in its own follow-up message, all on the same tag —
// the multi-message protocol language bindings use today. The messages
// belong together, so concurrent senders on the same (comm, tag) would
// interleave; see TestOOBInterleavingHazard.
func SendOOB(c *core.Comm, v any, dst, tag, threshold int) error {
	header, oob, err := DumpsOOB(v, threshold)
	if err != nil {
		return err
	}
	if err := c.Send(header, -1, core.TypeBytes, dst, tag); err != nil {
		return err
	}
	reqs := make([]*core.Request, 0, len(oob))
	for _, b := range oob {
		r, err := c.Isend([]byte(b), -1, core.TypeBytes, dst, tag)
		if err != nil {
			return err
		}
		reqs = append(reqs, r)
	}
	return core.WaitAll(reqs...)
}

// RecvOOB receives an object sent with SendOOB: it probes the header,
// reads the buffer lengths from it, and posts one receive per buffer.
func RecvOOB(c *core.Comm, src, tag int) (any, error) {
	m, err := c.Mprobe(src, tag)
	if err != nil {
		return nil, err
	}
	header := make([]byte, m.Bytes)
	if _, err := c.MRecv(m, header, -1, core.TypeBytes); err != nil {
		return nil, err
	}
	lens, err := BufferLens(header)
	if err != nil {
		return nil, err
	}
	oob := make([]Buffer, len(lens))
	reqs := make([]*core.Request, len(lens))
	for i, n := range lens {
		oob[i] = make(Buffer, n)
		// Buffers must come from the same source in order.
		r, err := c.Irecv([]byte(oob[i]), -1, core.TypeBytes, m.Source, tag)
		if err != nil {
			return nil, err
		}
		reqs[i] = r
	}
	if err := core.WaitAll(reqs...); err != nil {
		return nil, err
	}
	return LoadsOOB(header, oob)
}

// Msg is the buffer type of the custom-datatype strategy: fill Value (and
// optionally Threshold) to send; pass an empty Msg to receive and call
// Decode afterwards.
type Msg struct {
	// Value is the object to serialize (send side).
	Value any
	// Threshold is the out-of-band threshold in bytes; zero means
	// DefaultThreshold.
	Threshold int

	header []byte
	got    int64
	bufs   []Buffer
}

// Decode returns the received object. Decoded buffers alias the message's
// region memory (zero copy).
func (m *Msg) Decode() (any, error) {
	if m.header == nil {
		return nil, errors.New("serial: Decode before a completed receive")
	}
	return LoadsOOB(m.header, m.bufs)
}

// objectHandler implements core.CustomHandler for *Msg buffers.
type objectHandler struct{}

type objSendState struct {
	header []byte
	oob    []Buffer
}

func (objectHandler) State(buf any, _ core.Count) (any, error) {
	m, ok := buf.(*Msg)
	if !ok {
		return nil, fmt.Errorf("serial: object datatype requires *serial.Msg, got %T", buf)
	}
	if m.Value == nil {
		// Receive side: accumulate into the Msg itself.
		return m, nil
	}
	threshold := m.Threshold
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	header, oob, err := DumpsOOB(m.Value, threshold)
	if err != nil {
		return nil, err
	}
	return &objSendState{header: header, oob: oob}, nil
}

func (objectHandler) FreeState(any) error { return nil }

func (objectHandler) PackedSize(state, _ any, _ core.Count) (core.Count, error) {
	switch s := state.(type) {
	case *objSendState:
		return int64(len(s.header)), nil
	default:
		return 0, errors.New("serial: receive side cannot pre-compute packed size")
	}
}

func (objectHandler) Pack(state, _ any, _, offset core.Count, dst []byte) (core.Count, error) {
	s, ok := state.(*objSendState)
	if !ok {
		return 0, errors.New("serial: pack on a receive-side state")
	}
	return int64(copy(dst, s.header[offset:])), nil
}

func (objectHandler) Unpack(state, _ any, _, offset core.Count, src []byte) error {
	m, ok := state.(*Msg)
	if !ok {
		return errors.New("serial: unpack on a send-side state")
	}
	if need := offset + int64(len(src)); int64(len(m.header)) < need {
		grown := make([]byte, need)
		copy(grown, m.header)
		m.header = grown
	}
	copy(m.header[offset:], src)
	m.got += int64(len(src))
	return nil
}

func (objectHandler) RegionCount(state, _ any, _ core.Count) (core.Count, error) {
	switch s := state.(type) {
	case *objSendState:
		return int64(len(s.oob)), nil
	case *Msg:
		// Called only after the packed part (header) was unpacked in
		// order: the region layout comes from the header.
		lens, err := BufferLens(s.header)
		if err != nil {
			return 0, err
		}
		s.bufs = make([]Buffer, len(lens))
		for i, n := range lens {
			s.bufs[i] = make(Buffer, n)
		}
		return int64(len(lens)), nil
	default:
		return 0, errors.New("serial: bad state")
	}
}

func (objectHandler) Regions(state, _ any, _ core.Count, regions [][]byte) error {
	switch s := state.(type) {
	case *objSendState:
		for i, b := range s.oob {
			regions[i] = b
		}
	case *Msg:
		if s.bufs == nil {
			var h objectHandler
			if _, err := h.RegionCount(state, nil, 0); err != nil {
				return err
			}
		}
		for i, b := range s.bufs {
			regions[i] = b
		}
	default:
		return errors.New("serial: bad state")
	}
	return nil
}

// ObjectType returns the custom datatype that moves a serialized object —
// header packed in-band, buffers as zero-copy regions — in one MPI
// message. The region layout on the receive side depends on the unpacked
// header, so the type requires in-order delivery.
func ObjectType() *core.Datatype {
	return core.TypeCreateCustom(objectHandler{}, core.WithInOrder(), core.WithName("serialized-object"))
}

// SendCDT transfers v through the custom datatype in a single message.
func SendCDT(c *core.Comm, v any, dst, tag, threshold int) error {
	return c.Send(&Msg{Value: v, Threshold: threshold}, 1, ObjectType(), dst, tag)
}

// RecvCDT receives an object sent with SendCDT.
func RecvCDT(c *core.Comm, src, tag int) (any, error) {
	var m Msg
	if _, err := c.Recv(&m, 1, ObjectType(), src, tag); err != nil {
		return nil, err
	}
	return m.Decode()
}
