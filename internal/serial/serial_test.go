package serial

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestScalarRoundtrips(t *testing.T) {
	cases := []any{
		nil, true, false, int64(0), int64(-42), int64(1) << 60,
		3.14159, -0.0, "", "hello, world", Buffer{}, Buffer{1, 2, 3},
	}
	for i, v := range cases {
		data, err := Dumps(v)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got, err := Loads(data)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, v) && !(v == nil && got == nil) {
			t.Fatalf("case %d: %#v != %#v", i, got, v)
		}
	}
}

func TestIntWidthsNormalize(t *testing.T) {
	for _, v := range []any{int(7), int32(7), int64(7)} {
		data, _ := Dumps(v)
		got, err := Loads(data)
		if err != nil || got != int64(7) {
			t.Fatalf("%T: got %#v, %v", v, got, err)
		}
	}
}

func TestCompositeRoundtrip(t *testing.T) {
	v := []any{
		"metadata",
		int64(123),
		map[string]any{"a": 1.5, "b": []any{true, nil}, "c": "x"},
		Buffer("payload-bytes"),
	}
	data, err := Dumps(v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Loads(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("got %#v", got)
	}
}

func TestNDArrayRoundtrip(t *testing.T) {
	a := &NDArray{DType: "float64", Shape: []int64{4, 8}, Data: Buffer("0123456789")}
	data, err := Dumps(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Loads(data)
	if err != nil {
		t.Fatal(err)
	}
	b := got.(*NDArray)
	if b.DType != "float64" || !reflect.DeepEqual(b.Shape, a.Shape) || !bytes.Equal(b.Data, a.Data) {
		t.Fatalf("got %#v", b)
	}
}

func TestNDArrayHeaderIsSmall(t *testing.T) {
	// The paper notes pickle's NumPy header is ~120 bytes — small against
	// the array. Our header must stay the same order of magnitude.
	a := NewFloat64Array(1<<20, 1)
	header, oob, err := DumpsOOB(a, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(oob) != 1 || len(oob[0]) != 8<<20 {
		t.Fatalf("oob = %d buffers", len(oob))
	}
	if len(header) > 200 {
		t.Fatalf("header is %d bytes; want well under 200", len(header))
	}
}

func TestOOBThreshold(t *testing.T) {
	small := Buffer(make([]byte, 100))
	big := Buffer(make([]byte, 10000))
	v := []any{small, big}
	header, oob, err := DumpsOOB(v, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(oob) != 1 || len(oob[0]) != 10000 {
		t.Fatalf("threshold hoisted %d buffers", len(oob))
	}
	got, err := LoadsOOB(header, oob)
	if err != nil {
		t.Fatal(err)
	}
	lv := got.([]any)
	if len(lv[0].(Buffer)) != 100 || len(lv[1].(Buffer)) != 10000 {
		t.Fatal("mixed in/out-of-band roundtrip mismatch")
	}
}

func TestOOBZeroCopyAliasing(t *testing.T) {
	big := Buffer(make([]byte, 5000))
	header, oob, _ := DumpsOOB(big, 100)
	got, err := LoadsOOB(header, oob)
	if err != nil {
		t.Fatal(err)
	}
	gb := got.(Buffer)
	// Decoded buffer aliases the supplied OOB memory: writing through one
	// is visible through the other.
	oob[0][0] = 0xEE
	if gb[0] != 0xEE {
		t.Fatal("decoded buffer is a copy, not a zero-copy alias")
	}
	// The encoder side also aliases the original (no copy on encode).
	if &oob[0][0] != &big[0] {
		t.Fatal("encoder copied the out-of-band buffer")
	}
}

func TestBufferLens(t *testing.T) {
	v := map[string]any{
		"x":    NewFloat64Array(1000, 1),
		"meta": "hello",
		"list": []any{NewFloat64Array(200, 2), Buffer(make([]byte, 50))},
	}
	header, oob, err := DumpsOOB(v, 256)
	if err != nil {
		t.Fatal(err)
	}
	lens, err := BufferLens(header)
	if err != nil {
		t.Fatal(err)
	}
	if len(lens) != len(oob) {
		t.Fatalf("BufferLens found %d, oob has %d", len(lens), len(oob))
	}
	for i := range lens {
		if lens[i] != int64(len(oob[i])) {
			t.Fatalf("len[%d] = %d, want %d", i, lens[i], len(oob[i]))
		}
	}
}

func TestMissingOOBBufferFails(t *testing.T) {
	big := Buffer(make([]byte, 5000))
	header, _, _ := DumpsOOB(big, 100)
	if _, err := LoadsOOB(header, nil); err == nil {
		t.Fatal("decode without buffers must fail")
	}
	if _, err := LoadsOOB(header, []Buffer{make(Buffer, 3)}); err == nil {
		t.Fatal("decode with wrong-size buffer must fail")
	}
}

func TestCorruptStreams(t *testing.T) {
	good, _ := Dumps([]any{"x", int64(1)})
	for cut := 0; cut < len(good); cut++ {
		if _, err := Loads(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte{}, good...)
	bad[0] = 0xFF
	if _, err := Loads(bad); err == nil {
		t.Fatal("bad tag accepted")
	}
}

func TestUnsupportedType(t *testing.T) {
	if _, err := Dumps(struct{ X int }{1}); err == nil {
		t.Fatal("arbitrary structs must be rejected")
	}
	if _, err := Dumps(map[int]any{}); err == nil {
		t.Fatal("non-string-keyed maps must be rejected")
	}
}

// randomValue generates a random supported value of bounded depth.
func randomValue(rng *rand.Rand, depth int) any {
	if depth <= 0 {
		switch rng.Intn(6) {
		case 0:
			return nil
		case 1:
			return rng.Intn(2) == 0
		case 2:
			return rng.Int63()
		case 3:
			return rng.Float64()
		case 4:
			return fmt.Sprintf("s%d", rng.Intn(1000))
		default:
			b := make(Buffer, rng.Intn(64))
			rng.Read(b)
			return b
		}
	}
	switch rng.Intn(3) {
	case 0:
		n := rng.Intn(4)
		l := make([]any, n)
		for i := range l {
			l[i] = randomValue(rng, depth-1)
		}
		return l
	case 1:
		n := rng.Intn(4)
		m := make(map[string]any, n)
		for i := 0; i < n; i++ {
			m[fmt.Sprintf("k%d", i)] = randomValue(rng, depth-1)
		}
		return m
	default:
		data := make(Buffer, rng.Intn(256))
		rng.Read(data)
		return &NDArray{DType: "int8", Shape: []int64{int64(len(data))}, Data: data}
	}
}

// Property: every supported value roundtrips through both modes.
func TestRoundtripProperty(t *testing.T) {
	check := func(seed int64, threshold uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomValue(rng, rng.Intn(4))
		inband, err := Dumps(v)
		if err != nil {
			return false
		}
		got, err := Loads(inband)
		if err != nil || !reflect.DeepEqual(got, v) {
			return false
		}
		header, oob, err := DumpsOOB(v, int(threshold))
		if err != nil {
			return false
		}
		got2, err := LoadsOOB(header, oob)
		return err == nil && reflect.DeepEqual(got2, v)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
