package launch

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"mpicd/internal/core"
)

// The e2e tests launch REAL worker processes by re-executing this test
// binary: TestMain intercepts the relaunch before any test runs and
// hands the process to the named built-in task.
func TestMain(m *testing.M) {
	if task := os.Getenv(EnvTask); task != "" && IsWorker() {
		in, err := FromEnv()
		if err == nil {
			err = RunTask(task, in, core.Options{})
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runJob launches n ranks of the given built-in task over transport and
// returns the job error plus the captured worker output.
func runJob(t *testing.T, n int, transport, task string, rpn int, timeout time.Duration) (error, string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	cmd := Cmd{
		N:            n,
		Prog:         exe,
		Transport:    transport,
		RanksPerNode: rpn,
		Timeout:      timeout,
		Env:          []string{EnvTask + "=" + task},
		Stdout:       &out,
		Stderr:       &out,
	}
	return cmd.Run(), out.String()
}

func TestLaunchPingpong(t *testing.T) {
	for _, tr := range []string{TransportSHM, TransportTCP} {
		t.Run(tr, func(t *testing.T) {
			if err, out := runJob(t, 4, tr, "pingpong", 0, time.Minute); err != nil {
				t.Fatalf("job failed: %v\n%s", err, out)
			}
		})
	}
}

func TestLaunchAllreduceWithTopology(t *testing.T) {
	for _, tr := range []string{TransportSHM, TransportTCP} {
		t.Run(tr, func(t *testing.T) {
			// rpn 2 over 8 ranks: four synthetic nodes, so the verified
			// Allreduce/Bcast run the hierarchical schedules end to end.
			if err, out := runJob(t, 8, tr, "allreduce", 2, time.Minute); err != nil {
				t.Fatalf("job failed: %v\n%s", err, out)
			}
		})
	}
}

// TestLaunchLazyDialRing is the lazy-dialing acceptance check across
// real processes: ring-neighbor traffic must leave each rank holding at
// most its ring degree in connections, not a full mesh.
func TestLaunchLazyDialRing(t *testing.T) {
	err, out := runJob(t, 8, TransportSHM, "ringping", 0, time.Minute)
	if err != nil {
		t.Fatalf("job failed: %v\n%s", err, out)
	}
	if strings.Count(out, "conns") != 8 {
		t.Fatalf("expected a conns report from all 8 ranks:\n%s", out)
	}
}

// TestLaunchCrashPropagates: one rank exits 3 after startup; the
// launcher must kill the survivors (who would otherwise sleep 60s) and
// report the failing rank, promptly.
func TestLaunchCrashPropagates(t *testing.T) {
	start := time.Now()
	err, out := runJob(t, 4, TransportSHM, "crash", 0, time.Minute)
	if err == nil {
		t.Fatalf("crash job reported success:\n%s", out)
	}
	if !strings.Contains(err.Error(), "rank 2") || !strings.Contains(err.Error(), "exit status 3") {
		t.Fatalf("error does not name rank 2 / exit status 3: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("survivors were not killed promptly: job took %v", elapsed)
	}
}

// TestLaunchWorldFacts: workers see the address table and placement the
// rendezvous assembled.
func TestLaunchConnectFacts(t *testing.T) {
	if err, out := runJob(t, 6, TransportTCP, "facts", 3, time.Minute); err != nil {
		t.Fatalf("job failed: %v\n%s", err, out)
	}
}

// TestLaunchScale32 exercises a mid-size world — large enough for
// multi-round tree schedules and connection storms, small enough for a
// unit-test budget.
func TestLaunchScale32(t *testing.T) {
	if testing.Short() {
		t.Skip("32-process job in -short mode")
	}
	if err, out := runJob(t, 32, TransportSHM, "allreduce", 8, 2*time.Minute); err != nil {
		t.Fatalf("job failed: %v\n%s", err, out)
	}
}

func TestFromEnvValidation(t *testing.T) {
	t.Setenv(EnvRank, "3")
	t.Setenv(EnvSize, "2")
	if _, err := FromEnv(); err == nil {
		t.Fatal("rank >= size accepted")
	}
	t.Setenv(EnvRank, "bogus")
	if _, err := FromEnv(); err == nil {
		t.Fatal("non-numeric rank accepted")
	}
	t.Setenv(EnvRank, "1")
	t.Setenv(EnvTransport, "")
	t.Setenv(EnvRend, "")
	t.Setenv(EnvDir, "")
	t.Setenv(EnvRPN, "")
	t.Setenv(EnvNode, "")
	in, err := FromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if in.Transport != TransportSHM {
		t.Fatalf("default transport = %q, want shm", in.Transport)
	}
}

func TestCmdValidation(t *testing.T) {
	if err := (&Cmd{N: 0, Prog: "x"}).Run(); err == nil {
		t.Fatal("N=0 accepted")
	}
	if err := (&Cmd{N: 2}).Run(); err == nil {
		t.Fatal("empty Prog accepted")
	}
	if err := (&Cmd{N: 2, Prog: "x", Transport: "carrier-pigeon"}).Run(); err == nil {
		t.Fatal("unknown transport accepted")
	}
}
