package launch

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// These tests launch real worker processes (TestMain in launch_test.go
// re-executes the test binary) and kill them with real SIGKILLs — the
// cross-process acceptance tier for failure detection, supervision, and
// elastic re-admission.

// runSupervised launches task with the given Cmd policy fields and
// returns the job error, the captured output, and the exit log.
func runSupervised(t *testing.T, n int, transport, task string, sup *Supervise, chaos *Chaos, timeout time.Duration, env ...string) (error, string, []RankExit) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if v := os.Getenv("MPICD_TEST_DEBUG"); v != "" {
		env = append(env, EnvDebug+"="+v)
	}
	cmd := Cmd{
		N:         n,
		Prog:      exe,
		Transport: transport,
		Timeout:   timeout,
		Supervise: sup,
		Chaos:     chaos,
		Env:       append([]string{EnvTask + "=" + task}, env...),
		Stdout:    &out,
		Stderr:    &out,
	}
	err = cmd.Run()
	if os.Getenv("MPICD_TEST_DEBUG") != "" {
		t.Logf("job output:\n%s", out.String())
	}
	return err, out.String(), cmd.ExitLog()
}

// TestLaunchSIGKILLClassified is the termination-cause regression: a
// SIGKILLed worker must be reported as killed by that signal, not as a
// generic exit code, and the error must name the rank.
func TestLaunchSIGKILLClassified(t *testing.T) {
	err, out, exits := runSupervised(t, 4, TransportSHM, "killself", nil, nil, time.Minute)
	if err == nil {
		t.Fatalf("killself job reported success:\n%s", out)
	}
	if !strings.Contains(err.Error(), "rank 1") || !strings.Contains(err.Error(), "killed by SIGKILL") {
		t.Fatalf("error does not classify the SIGKILL: %v", err)
	}
	found := false
	for _, e := range exits {
		if e.Rank == 1 && e.Cause == "killed by SIGKILL" {
			found = true
		}
	}
	if !found {
		t.Fatalf("exit log missing the SIGKILL record: %+v", exits)
	}
}

// TestLaunchSuperviseRespawns: with supervision the SIGKILLed rank is
// respawned (epoch 1 registers through the join service) and the job
// finishes cleanly.
func TestLaunchSuperviseRespawns(t *testing.T) {
	sup := &Supervise{MaxRestarts: 2, Backoff: 100 * time.Millisecond}
	err, out, exits := runSupervised(t, 4, TransportSHM, "killself", sup, nil, time.Minute)
	if err != nil {
		t.Fatalf("supervised killself failed: %v\n%s", err, out)
	}
	var killed, respawnedOK bool
	for _, e := range exits {
		if e.Rank == 1 && e.Epoch == 0 && e.Cause == "killed by SIGKILL" {
			killed = true
		}
		if e.Rank == 1 && e.Epoch == 1 && e.Cause == "ok" {
			respawnedOK = true
		}
	}
	if !killed || !respawnedOK {
		t.Fatalf("exit log does not show kill-then-clean-respawn: %+v", exits)
	}
}

// TestLaunchSuperviseBudget: a worker that fails every incarnation
// exhausts its restart budget and the job error says so.
func TestLaunchSuperviseBudget(t *testing.T) {
	sup := &Supervise{MaxRestarts: 2, Backoff: 50 * time.Millisecond}
	// The crash task exits 3 on rank 2 in every incarnation (it keys off
	// the comm rank, not the epoch) — but respawned workers have no comm
	// under the crash task... use a worker that always fails instead:
	// an unknown task name makes every incarnation exit 1 immediately.
	err, out, exits := runSupervised(t, 2, TransportSHM, "no-such-task", sup, nil, time.Minute)
	if err == nil {
		t.Fatalf("always-failing job reported success:\n%s", out)
	}
	if !strings.Contains(err.Error(), "restart budget 2 exhausted") {
		t.Fatalf("error does not report the exhausted budget: %v", err)
	}
	// Both original incarnations fail; the first to exhaust its budget
	// dooms the job, so at least one rank shows 3 records (epoch 0,1,2).
	count := map[int]int{}
	for _, e := range exits {
		count[e.Rank]++
	}
	if count[0] < 3 && count[1] < 3 {
		t.Fatalf("no rank shows budget-depth exit records: %+v", exits)
	}
}

// TestLaunchElastic is the end-to-end elasticity acceptance: in a
// launched world, a rank SIGKILLs itself mid-Allreduce; survivors
// detect the death (heartbeat tightened via MPICD_HB_*), Revoke, Agree,
// Shrink; the supervisor respawns the rank with a fresh epoch; the
// replacement registers through the join service and runs JoinWorld
// while the survivors Grow it back in; the job finishes at the original
// world size with verified collectives.
func TestLaunchElastic(t *testing.T) {
	for _, tr := range []string{TransportSHM, TransportTCP} {
		t.Run(tr, func(t *testing.T) {
			repPath := filepath.Join(t.TempDir(), "elastic.json")
			sup := &Supervise{MaxRestarts: 3, Backoff: 100 * time.Millisecond}
			err, out, exits := runSupervised(t, 4, tr, "elastic", sup, nil, 90*time.Second,
				EnvHBPeriod+"=10ms", EnvHBSuspect+"=6", EnvHBDead+"=30",
				EnvElasticIters+"=30",
				EnvElasticOut+"="+repPath,
			)
			if err != nil {
				t.Fatalf("elastic job failed: %v\n%s", err, out)
			}
			var killed, respawnedOK bool
			for _, e := range exits {
				if e.Rank == 1 && e.Epoch == 0 && e.Cause == "killed by SIGKILL" {
					killed = true
				}
				if e.Rank == 1 && e.Epoch == 1 && e.Cause == "ok" {
					respawnedOK = true
				}
			}
			if !killed || !respawnedOK {
				t.Fatalf("exit log does not show the kill/respawn cycle: %+v", exits)
			}
			if strings.Count(out, "elastic done (size 4") != 4 {
				t.Fatalf("not every rank finished at the original size:\n%s", out)
			}
			b, err := os.ReadFile(repPath)
			if err != nil {
				t.Fatalf("no recovery report: %v", err)
			}
			var rep elasticReport
			if err := json.Unmarshal(b, &rep); err != nil {
				t.Fatalf("bad recovery report %q: %v", b, err)
			}
			if rep.Recoveries < 1 || rep.DetectMs <= 0 || rep.RecoverMs <= 0 {
				t.Fatalf("recovery report shows no recovery cycle: %+v", rep)
			}
			t.Logf("%s: detect %.1fms, recover %.1fms, %d recoveries", tr, rep.DetectMs, rep.RecoverMs, rep.Recoveries)
		})
	}
}

// TestLaunchElasticChaos is the cross-process chaos soak: the launcher's
// seeded schedule SIGKILLs live workers while the elastic loop runs;
// supervision respawns them and the world grows back every time.
func TestLaunchElasticChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-kill chaos soak in -short mode")
	}
	sup := &Supervise{MaxRestarts: 4, Backoff: 100 * time.Millisecond}
	chaos := &Chaos{Seed: 42, Kills: 2, Interval: 1500 * time.Millisecond, MinUp: time.Second}
	err, out, _ := runSupervised(t, 4, TransportSHM, "elastic", sup, chaos, 2*time.Minute,
		EnvHBPeriod+"=10ms", EnvHBSuspect+"=6", EnvHBDead+"=30",
		EnvElasticIters+"=400",
		EnvElasticKill+"=none",
		EnvElasticSpin+"=25ms",
	)
	if err != nil {
		t.Fatalf("chaos soak failed: %v\n%s", err, out)
	}
	if strings.Count(out, "elastic done (size 4") != 4 {
		t.Fatalf("not every rank finished at the original size:\n%s", out)
	}
	if !strings.Contains(out, "chaos: SIGKILL rank") {
		t.Fatalf("chaos schedule never fired:\n%s", out)
	}
}

// TestHeartbeatFromEnv covers the MPICD_HB_* parsing contract: the
// returned config scales multipliers off the period, and every
// validation error names the offending variable.
func TestHeartbeatFromEnv(t *testing.T) {
	clear := func() {
		t.Setenv(EnvHBPeriod, "")
		t.Setenv(EnvHBSuspect, "")
		t.Setenv(EnvHBDead, "")
	}
	clear()
	if _, ok, err := HeartbeatFromEnv(); ok || err != nil {
		t.Fatalf("unset env: ok=%v err=%v", ok, err)
	}
	t.Setenv(EnvHBPeriod, "10ms")
	cfg, ok, err := HeartbeatFromEnv()
	if !ok || err != nil {
		t.Fatalf("period-only: ok=%v err=%v", ok, err)
	}
	if cfg.Period != 10*time.Millisecond || cfg.SuspectAfter != 80*time.Millisecond || cfg.DeadAfter != 300*time.Millisecond {
		t.Fatalf("default multipliers wrong: %+v", cfg)
	}
	t.Setenv(EnvHBSuspect, "4")
	t.Setenv(EnvHBDead, "12.5")
	if cfg, _, err = HeartbeatFromEnv(); err != nil {
		t.Fatal(err)
	}
	if cfg.SuspectAfter != 40*time.Millisecond || cfg.DeadAfter != 125*time.Millisecond {
		t.Fatalf("explicit multipliers wrong: %+v", cfg)
	}
	for name, set := range map[string]func(){
		EnvHBPeriod:  func() { clear(); t.Setenv(EnvHBPeriod, "banana") },
		EnvHBSuspect: func() { clear(); t.Setenv(EnvHBPeriod, "10ms"); t.Setenv(EnvHBSuspect, "0.5") },
		EnvHBDead: func() {
			clear()
			t.Setenv(EnvHBPeriod, "10ms")
			t.Setenv(EnvHBSuspect, "8")
			t.Setenv(EnvHBDead, "4")
		},
	} {
		set()
		if _, _, err := HeartbeatFromEnv(); err == nil || !strings.Contains(err.Error(), name) {
			t.Fatalf("invalid %s: error %v does not name the variable", name, err)
		}
	}
	clear()
	t.Setenv(EnvHBDead, "12")
	if _, _, err := HeartbeatFromEnv(); err == nil || !strings.Contains(err.Error(), EnvHBPeriod) {
		t.Fatalf("multiplier without period: error %v does not name %s", err, EnvHBPeriod)
	}
}
