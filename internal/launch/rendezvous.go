package launch

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"time"
)

// The rendezvous wire protocol: each worker dials the launcher's
// rendezvous listener, writes one JSON line announcing itself, and blocks
// until the launcher answers with one JSON line carrying the full world.
// The reply is withheld until all Size workers have checked in, which
// makes the exchange a startup barrier: when Connect returns, every
// peer's endpoint is bound and reachable.
//
// After the barrier the listener does not shut down: it becomes the
// job's join service. Two more hello kinds ride the same wire format:
//
//   - "rejoin": a respawned replacement for a dead rank registers its
//     (possibly new) endpoint and gets the current address table back
//     immediately — there is no barrier to wait for.
//   - "poll": a survivor asks which replacements have registered since
//     the join epoch it last saw, so its Grow call knows who to admit
//     and where to dial them.
//
// Every rejoin bumps a monotone join epoch, which doubles as the
// record's id: polls are incremental ("records newer than epoch E"),
// and a record's epoch orders incarnations of the same rank.

// rendTimeout bounds both sides of the exchange. Workers that cannot
// reach the launcher, and launchers missing a worker (it crashed before
// checking in), fail with a named error instead of hanging.
const rendTimeout = 30 * time.Second

// Hello kinds after the initial barrier check-in (empty kind).
const (
	helloRejoin = "rejoin"
	helloPoll   = "poll"
)

type helloMsg struct {
	Rank int    `json:"rank"`
	Addr string `json:"addr"`
	Node int    `json:"node"`
	// Kind selects the exchange: "" is the initial barrier check-in,
	// helloRejoin a replacement registration, helloPoll an incremental
	// query for replacement registrations.
	Kind string `json:"kind,omitempty"`
	// Epoch is the poll watermark: the reply carries only rejoin records
	// with a strictly larger join epoch.
	Epoch uint64 `json:"epoch,omitempty"`
}

// rejoinRec is one replacement registration: rank's new incarnation is
// reachable at Addr, registered at join epoch Epoch.
type rejoinRec struct {
	Rank  int    `json:"rank"`
	Addr  string `json:"addr"`
	Epoch uint64 `json:"epoch"`
}

type worldMsg struct {
	Addrs   []string    `json:"addrs"`
	Nodes   []int       `json:"nodes"`
	Epoch   uint64      `json:"epoch,omitempty"`   // join epoch as of this reply
	Rejoins []rejoinRec `json:"rejoins,omitempty"` // poll results, epoch-ascending
	Err     string      `json:"err,omitempty"`
}

// rendCall dials rend, sends one hello, and reads one world reply.
func rendCall(rend string, m helloMsg) (*worldMsg, error) {
	deadline := time.Now().Add(rendTimeout)
	var conn net.Conn
	var err error
	// The launcher starts its listener before spawning, but tolerate a
	// slow start (or out-of-band launch scripts) with a short dial loop.
	for backoff := 10 * time.Millisecond; ; backoff *= 2 {
		conn, err = net.DialTimeout("tcp", rend, time.Until(deadline))
		if err == nil {
			break
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("launch: rank %d cannot reach rendezvous %s: %w", m.Rank, rend, err)
		}
		time.Sleep(backoff)
	}
	defer conn.Close()
	_ = conn.SetDeadline(deadline)
	if err := json.NewEncoder(conn).Encode(m); err != nil {
		return nil, fmt.Errorf("launch: rank %d rendezvous hello: %w", m.Rank, err)
	}
	var reply worldMsg
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&reply); err != nil {
		return nil, fmt.Errorf("launch: rank %d rendezvous reply: %w", m.Rank, err)
	}
	if reply.Err != "" {
		return nil, fmt.Errorf("launch: rendezvous failed: %s", reply.Err)
	}
	return &reply, nil
}

// exchange is the worker side of the startup barrier: announce
// (rank, addr, node) to rend and wait for the assembled world.
func exchange(rend string, rank, size int, addr string, node int) (*worldMsg, error) {
	reply, err := rendCall(rend, helloMsg{Rank: rank, Addr: addr, Node: node})
	if err != nil {
		return nil, err
	}
	if len(reply.Addrs) != size || len(reply.Nodes) != size {
		return nil, fmt.Errorf("launch: rendezvous reply sized %d/%d, want %d", len(reply.Addrs), len(reply.Nodes), size)
	}
	return reply, nil
}

// rejoinExchange is the respawned worker side: register the replacement
// endpoint under the dead incarnation's rank and get the current world
// back without waiting for any barrier.
func rejoinExchange(rend string, rank, size int, addr string, node int) (*worldMsg, error) {
	reply, err := rendCall(rend, helloMsg{Rank: rank, Addr: addr, Node: node, Kind: helloRejoin})
	if err != nil {
		return nil, err
	}
	if len(reply.Addrs) != size || len(reply.Nodes) != size {
		return nil, fmt.Errorf("launch: rejoin reply sized %d/%d, want %d", len(reply.Addrs), len(reply.Nodes), size)
	}
	return reply, nil
}

// pollRejoins is the survivor side: fetch replacement registrations with
// join epoch > since.
func pollRejoins(rend string, rank int, since uint64) (*worldMsg, error) {
	return rendCall(rend, helloMsg{Rank: rank, Kind: helloPoll, Epoch: since})
}

// serveJoin is the launcher side: collect one hello per rank from ln and
// broadcast the world to every connection (the startup barrier), then
// keep serving rejoin registrations and polls until stop closes. An
// error during the barrier dooms the job (after telling every connected
// worker why); errors after the barrier only fail the one exchange —
// the job's health is the supervisor's call, not the join service's.
func serveJoin(ln net.Listener, size int, stop <-chan struct{}) error {
	type arrival struct {
		conn net.Conn
		msg  helloMsg
	}
	arrivals := make(chan arrival, size)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed by the caller
			}
			go func() {
				_ = conn.SetDeadline(time.Now().Add(rendTimeout))
				var m helloMsg
				if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&m); err != nil {
					conn.Close()
					return
				}
				arrivals <- arrival{conn: conn, msg: m}
			}()
		}
	}()

	deadline := time.Now().Add(rendTimeout)
	conns := make(map[int]net.Conn, size)
	world := worldMsg{Addrs: make([]string, size), Nodes: make([]int, size)}
	fail := func(msg string) error {
		for _, c := range conns {
			_ = json.NewEncoder(c).Encode(worldMsg{Err: msg})
			c.Close()
		}
		return fmt.Errorf("launch: rendezvous: %s", msg)
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	for len(conns) < size {
		select {
		case a := <-arrivals:
			r := a.msg.Rank
			if a.msg.Kind == helloPoll {
				// A poll cannot be answered before the world exists; the
				// poller retries.
				_ = json.NewEncoder(a.conn).Encode(worldMsg{Err: "world not formed yet"})
				a.conn.Close()
				continue
			}
			if r < 0 || r >= size {
				a.conn.Close()
				return fail(fmt.Sprintf("worker announced out-of-range rank %d (world size %d)", r, size))
			}
			if old, dup := conns[r]; dup {
				// A second initial hello is a launcher bug; a rejoin during
				// the barrier is a worker that died and was respawned before
				// the world ever formed — its replacement simply takes the
				// dead incarnation's slot.
				if a.msg.Kind != helloRejoin {
					a.conn.Close()
					return fail(fmt.Sprintf("two workers announced rank %d", r))
				}
				old.Close()
			}
			conns[r] = a.conn
			world.Addrs[r] = a.msg.Addr
			world.Nodes[r] = a.msg.Node
		case <-stop:
			for _, c := range conns {
				c.Close()
			}
			return nil
		case <-timer.C:
			missing := make([]int, 0, size)
			for r := 0; r < size; r++ {
				if _, ok := conns[r]; !ok {
					missing = append(missing, r)
				}
			}
			sort.Ints(missing)
			return fail(fmt.Sprintf("timed out after %v waiting for rank(s) %v", rendTimeout, missing))
		}
	}
	var firstErr error
	for r, c := range conns {
		if err := json.NewEncoder(c).Encode(world); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("launch: rendezvous reply to rank %d: %w", r, err)
		}
		c.Close()
	}
	if firstErr != nil {
		return firstErr
	}

	// The barrier is done; serve as the persistent join point until the
	// job ends. All state is owned by this goroutine.
	var epoch uint64
	var rejoins []rejoinRec
	for {
		select {
		case a := <-arrivals:
			reply := worldMsg{Epoch: epoch}
			r := a.msg.Rank
			switch {
			case r < 0 || r >= size:
				reply.Err = fmt.Sprintf("rank %d out of range (world size %d)", r, size)
			case a.msg.Kind == helloRejoin:
				epoch++
				world.Addrs[r] = a.msg.Addr
				world.Nodes[r] = a.msg.Node
				rejoins = append(rejoins, rejoinRec{Rank: r, Addr: a.msg.Addr, Epoch: epoch})
				reply.Epoch = epoch
				reply.Addrs, reply.Nodes = world.Addrs, world.Nodes
			case a.msg.Kind == helloPoll:
				reply.Addrs, reply.Nodes = world.Addrs, world.Nodes
				for _, rec := range rejoins {
					if rec.Epoch > a.msg.Epoch {
						reply.Rejoins = append(reply.Rejoins, rec)
					}
				}
			default:
				reply.Err = "initial hello after world formation (respawned workers must rejoin)"
			}
			_ = json.NewEncoder(a.conn).Encode(reply)
			a.conn.Close()
		case <-stop:
			return nil
		}
	}
}
