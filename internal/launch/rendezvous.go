package launch

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"time"
)

// The rendezvous wire protocol: each worker dials the launcher's
// rendezvous listener, writes one JSON line announcing itself, and blocks
// until the launcher answers with one JSON line carrying the full world.
// The reply is withheld until all Size workers have checked in, which
// makes the exchange a startup barrier: when Connect returns, every
// peer's endpoint is bound and reachable.

// rendTimeout bounds both sides of the exchange. Workers that cannot
// reach the launcher, and launchers missing a worker (it crashed before
// checking in), fail with a named error instead of hanging.
const rendTimeout = 30 * time.Second

type helloMsg struct {
	Rank int    `json:"rank"`
	Addr string `json:"addr"`
	Node int    `json:"node"`
}

type worldMsg struct {
	Addrs []string `json:"addrs"`
	Nodes []int    `json:"nodes"`
	Err   string   `json:"err,omitempty"`
}

// exchange is the worker side: announce (rank, addr, node) to rend and
// wait for the assembled world.
func exchange(rend string, rank, size int, addr string, node int) (*worldMsg, error) {
	deadline := time.Now().Add(rendTimeout)
	var conn net.Conn
	var err error
	// The launcher starts its listener before spawning, but tolerate a
	// slow start (or out-of-band launch scripts) with a short dial loop.
	for backoff := 10 * time.Millisecond; ; backoff *= 2 {
		conn, err = net.DialTimeout("tcp", rend, time.Until(deadline))
		if err == nil {
			break
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("launch: rank %d cannot reach rendezvous %s: %w", rank, rend, err)
		}
		time.Sleep(backoff)
	}
	defer conn.Close()
	_ = conn.SetDeadline(deadline)
	if err := json.NewEncoder(conn).Encode(helloMsg{Rank: rank, Addr: addr, Node: node}); err != nil {
		return nil, fmt.Errorf("launch: rank %d rendezvous hello: %w", rank, err)
	}
	var reply worldMsg
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&reply); err != nil {
		return nil, fmt.Errorf("launch: rank %d rendezvous reply: %w", rank, err)
	}
	if reply.Err != "" {
		return nil, fmt.Errorf("launch: rendezvous failed: %s", reply.Err)
	}
	if len(reply.Addrs) != size || len(reply.Nodes) != size {
		return nil, fmt.Errorf("launch: rendezvous reply sized %d/%d, want %d", len(reply.Addrs), len(reply.Nodes), size)
	}
	return &reply, nil
}

// serveRendezvous is the launcher side: collect one hello per rank from
// ln, then broadcast the world to every connection. Returns once all
// replies are written (or on the first protocol error / timeout, after
// telling every connected worker why). Closing stop abandons the
// exchange silently — the job is already over, so an incomplete
// rendezvous is either a crash reported elsewhere or a worker program
// that never connected, neither of which this side should diagnose.
func serveRendezvous(ln net.Listener, size int, stop <-chan struct{}) error {
	deadline := time.Now().Add(rendTimeout)
	type arrival struct {
		conn net.Conn
		msg  helloMsg
		err  error
	}
	arrivals := make(chan arrival, size)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed by the caller
			}
			go func() {
				_ = conn.SetDeadline(deadline)
				var m helloMsg
				if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&m); err != nil {
					conn.Close()
					return
				}
				arrivals <- arrival{conn: conn, msg: m}
			}()
		}
	}()

	conns := make(map[int]net.Conn, size)
	world := worldMsg{Addrs: make([]string, size), Nodes: make([]int, size)}
	fail := func(msg string) error {
		world.Err = msg
		for _, c := range conns {
			_ = json.NewEncoder(c).Encode(worldMsg{Err: msg})
			c.Close()
		}
		return fmt.Errorf("launch: rendezvous: %s", msg)
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	for len(conns) < size {
		select {
		case a := <-arrivals:
			r := a.msg.Rank
			if r < 0 || r >= size {
				a.conn.Close()
				return fail(fmt.Sprintf("worker announced out-of-range rank %d (world size %d)", r, size))
			}
			if _, dup := conns[r]; dup {
				a.conn.Close()
				return fail(fmt.Sprintf("two workers announced rank %d", r))
			}
			conns[r] = a.conn
			world.Addrs[r] = a.msg.Addr
			world.Nodes[r] = a.msg.Node
		case <-stop:
			for _, c := range conns {
				c.Close()
			}
			return nil
		case <-timer.C:
			missing := make([]int, 0, size)
			for r := 0; r < size; r++ {
				if _, ok := conns[r]; !ok {
					missing = append(missing, r)
				}
			}
			sort.Ints(missing)
			return fail(fmt.Sprintf("timed out after %v waiting for rank(s) %v", rendTimeout, missing))
		}
	}
	var firstErr error
	for r, c := range conns {
		if err := json.NewEncoder(c).Encode(world); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("launch: rendezvous reply to rank %d: %w", r, err)
		}
		c.Close()
	}
	return firstErr
}
