package launch

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"mpicd/internal/core"
)

// BenchResult is one transport's microbenchmark numbers: small-message
// eager round-trip latency and large-message pull bandwidth (4 MiB
// messages, which every cross-process provider moves with striped
// windowed Get pulls rather than eager copies).
type BenchResult struct {
	Transport  string  `json:"transport"`
	Ranks      int     `json:"ranks"`
	EagerRTTus float64 `json:"eager_rtt_us"`
	PullMiBps  float64 `json:"pull_mib_per_s"`
}

const (
	benchEagerBytes = 64
	benchEagerIters = 500
	benchPullBytes  = 4 << 20
	benchPullIters  = 16
)

// BenchPair measures rank 0 ↔ rank 1 traffic on c; ranks beyond the pair
// only participate in the closing barrier. Both members return the same
// numbers (rank 0 measures, then sends them over).
func BenchPair(c *core.Comm) (eagerRTTus, pullMiBps float64, err error) {
	rank := c.Rank()
	if c.Size() < 2 {
		return 0, 0, fmt.Errorf("launch: bench needs at least 2 ranks")
	}
	if rank <= 1 {
		peer := 1 - rank
		small := make([]byte, benchEagerBytes)
		pingpong := func(iters int) error {
			for i := 0; i < iters; i++ {
				if rank == 0 {
					if err := c.Send(small, benchEagerBytes, core.TypeBytes, peer, 1); err != nil {
						return err
					}
					if _, err := c.Recv(small, benchEagerBytes, core.TypeBytes, peer, 1); err != nil {
						return err
					}
				} else {
					if _, err := c.Recv(small, benchEagerBytes, core.TypeBytes, peer, 1); err != nil {
						return err
					}
					if err := c.Send(small, benchEagerBytes, core.TypeBytes, peer, 1); err != nil {
						return err
					}
				}
			}
			return nil
		}
		if err := pingpong(50); err != nil { // warmup: dial, open rings
			return 0, 0, err
		}
		start := time.Now()
		if err := pingpong(benchEagerIters); err != nil {
			return 0, 0, err
		}
		eagerRTTus = float64(time.Since(start).Microseconds()) / benchEagerIters

		big := make([]byte, benchPullBytes)
		ack := make([]byte, 8)
		start = time.Now()
		for i := 0; i < benchPullIters; i++ {
			if rank == 0 {
				if err := c.Send(big, benchPullBytes, core.TypeBytes, peer, 2); err != nil {
					return 0, 0, err
				}
				if _, err := c.Recv(ack, 8, core.TypeBytes, peer, 3); err != nil {
					return 0, 0, err
				}
			} else {
				if _, err := c.Recv(big, benchPullBytes, core.TypeBytes, peer, 2); err != nil {
					return 0, 0, err
				}
				if err := c.Send(ack, 8, core.TypeBytes, peer, 3); err != nil {
					return 0, 0, err
				}
			}
		}
		secs := time.Since(start).Seconds()
		pullMiBps = float64(benchPullIters) * (benchPullBytes / (1 << 20)) / secs
	}
	if err := c.Barrier(); err != nil {
		return 0, 0, err
	}
	return eagerRTTus, pullMiBps, nil
}

// taskBench runs BenchPair and has rank 0 write the result JSON to the
// file named by MPICD_BENCH_OUT.
func taskBench(w *World) error {
	eager, pull, err := BenchPair(w.Comm)
	if err != nil {
		return err
	}
	if w.Comm.Rank() != 0 {
		return nil
	}
	out := os.Getenv(EnvBenchOut)
	if out == "" {
		fmt.Printf("eager rtt %.2f us, pull %.1f MiB/s\n", eager, pull)
		return nil
	}
	res := BenchResult{
		Transport:  w.Info.Transport,
		Ranks:      w.Comm.Size(),
		EagerRTTus: eager,
		PullMiBps:  pull,
	}
	b, err := json.Marshal(res)
	if err != nil {
		return err
	}
	return os.WriteFile(out, b, 0o644)
}
