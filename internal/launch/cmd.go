package launch

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// Cmd spawns an N-rank job as N local OS processes, the way mpirun does
// on one node: start a rendezvous listener, fork the workers with their
// MPICD_* identity in the environment, multiplex their output, and wait.
//
// Exit policy: the job's status is the first non-zero worker exit. As
// soon as one worker fails, the rest are killed — a cross-process job
// whose rank 3 died is dead, and leaving 127 siblings blocked in Recv
// until the timeout only hides the real error. Timeout is a hard
// backstop that kills everything and reports which ranks were still
// running.
type Cmd struct {
	N         int      // number of ranks (required, > 0)
	Prog      string   // worker binary (required)
	Args      []string // worker argv[1:]
	Transport string   // TransportSHM (default) or TransportTCP

	// Dir is the SHM session directory. Empty means a fresh directory
	// under the default temp root, removed when the job ends. Keep it
	// short: unix socket paths cap at ~100 bytes.
	Dir string

	// RanksPerNode carves the job into synthetic nodes of this many
	// consecutive ranks for placement-aware code paths (hierarchical
	// collectives, pull-stripe scaling). 0 or >= N places every rank on
	// one node, which is the truth for a single-host launcher.
	RanksPerNode int

	Timeout time.Duration // kill-all guard; default 2 minutes
	Env     []string      // extra KEY=VALUE pairs for every worker

	// Stdout/Stderr receive the workers' output, each line prefixed
	// "[rank] ". Nil means the launcher process's own streams.
	Stdout, Stderr io.Writer
}

// rankExit is one worker's termination.
type rankExit struct {
	rank int
	err  error
}

// Run launches the job and blocks until it ends. The returned error is
// nil only if every rank exited 0 and the rendezvous succeeded.
func (c *Cmd) Run() error {
	if c.N <= 0 {
		return fmt.Errorf("launch: Cmd.N = %d", c.N)
	}
	if c.Prog == "" {
		return fmt.Errorf("launch: Cmd.Prog is empty")
	}
	transport := c.Transport
	if transport == "" {
		transport = TransportSHM
	}
	if transport != TransportSHM && transport != TransportTCP {
		return fmt.Errorf("launch: unknown transport %q", transport)
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	rpn := c.RanksPerNode
	if rpn <= 0 || rpn > c.N {
		rpn = c.N
	}
	stdout, stderr := c.Stdout, c.Stderr
	if stdout == nil {
		stdout = os.Stdout
	}
	if stderr == nil {
		stderr = os.Stderr
	}

	dir := c.Dir
	if transport == TransportSHM && dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "mpicd-*"); err != nil {
			return fmt.Errorf("launch: session dir: %w", err)
		}
		defer os.RemoveAll(dir)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("launch: rendezvous listener: %w", err)
	}
	defer ln.Close()
	rendErr := make(chan error, 1)
	rendStop := make(chan struct{})
	go func() { rendErr <- serveRendezvous(ln, c.N, rendStop) }()

	var outMu sync.Mutex // one worker line at a time, never interleaved bytes
	procs := make([]*exec.Cmd, c.N)
	exits := make(chan rankExit, c.N)
	for r := 0; r < c.N; r++ {
		p := exec.Command(c.Prog, c.Args...)
		p.Env = append(os.Environ(),
			fmt.Sprintf("%s=%d", EnvRank, r),
			fmt.Sprintf("%s=%d", EnvSize, c.N),
			fmt.Sprintf("%s=%s", EnvRend, ln.Addr().String()),
			fmt.Sprintf("%s=%s", EnvTransport, transport),
			fmt.Sprintf("%s=%s", EnvDir, dir),
			fmt.Sprintf("%s=%d", EnvRPN, rpn),
			fmt.Sprintf("%s=%d", EnvNode, r/rpn),
		)
		p.Env = append(p.Env, c.Env...)
		op, _ := p.StdoutPipe()
		ep, _ := p.StderrPipe()
		// Drain both pipes to EOF before calling Wait: Wait closes the
		// pipes as soon as the process exits, and a reader that loses
		// that race silently drops the worker's last lines of output.
		var pw sync.WaitGroup
		pw.Add(2)
		go prefixLines(&pw, &outMu, stdout, r, op)
		go prefixLines(&pw, &outMu, stderr, r, ep)
		if err := p.Start(); err != nil {
			killAll(procs)
			return fmt.Errorf("launch: start rank %d: %w", r, err)
		}
		procs[r] = p
		go func(r int, p *exec.Cmd, pw *sync.WaitGroup) {
			pw.Wait()
			exits <- rankExit{r, p.Wait()}
		}(r, p, &pw)
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	var jobErr error
	live := c.N
	for live > 0 {
		select {
		case e := <-exits:
			live--
			if e.err != nil && jobErr == nil {
				jobErr = fmt.Errorf("launch: rank %d: %w", e.rank, e.err)
				killAll(procs) // first failure dooms the job; reap the rest
			}
		case <-timer.C:
			jobErr = fmt.Errorf("launch: job timed out after %v with %d rank(s) still running", timeout, live)
			killAll(procs)
			for live > 0 {
				<-exits
				live--
			}
		}
	}
	ln.Close()
	close(rendStop)
	if err := <-rendErr; err != nil && jobErr == nil {
		jobErr = err
	}
	return jobErr
}

// killAll terminates every started worker: SIGTERM first (a worker
// running with MPICD_DEBUG installed a handler that dumps its transport
// state before dying; the Go default is immediate exit), SIGKILL for
// any that linger past a short grace. Safe to call repeatedly and with
// nil slots (ranks that never started).
func killAll(procs []*exec.Cmd) {
	for _, p := range procs {
		if p != nil && p.Process != nil {
			_ = p.Process.Signal(syscall.SIGTERM)
		}
	}
	go func() {
		time.Sleep(3 * time.Second)
		for _, p := range procs {
			if p != nil && p.Process != nil {
				_ = p.Process.Kill()
			}
		}
	}()
}

// prefixLines copies r to w line by line, each prefixed with the rank.
func prefixLines(wg *sync.WaitGroup, mu *sync.Mutex, w io.Writer, rank int, r io.Reader) {
	defer wg.Done()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		mu.Lock()
		fmt.Fprintf(w, "[%d] %s\n", rank, sc.Bytes())
		mu.Unlock()
	}
}
