package launch

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// Cmd spawns an N-rank job as N local OS processes, the way mpirun does
// on one node: start a rendezvous listener, fork the workers with their
// MPICD_* identity in the environment, multiplex their output, and wait.
//
// Exit policy without supervision: the job's status is the first
// non-zero worker exit. As soon as one worker fails, the rest are
// killed — a cross-process job whose rank 3 died is dead, and leaving
// 127 siblings blocked in Recv until the timeout only hides the real
// error. Timeout is a hard backstop that kills everything and reports
// which ranks were still running.
//
// With Supervise set, a failed rank is respawned instead (with an
// incremented MPICD_EPOCH, so the replacement registers through the
// join service and the workers can Grow it back in), until its restart
// budget runs out. Chaos injects seeded SIGKILLs into live workers to
// exercise exactly that path.
type Cmd struct {
	N         int      // number of ranks (required, > 0)
	Prog      string   // worker binary (required)
	Args      []string // worker argv[1:]
	Transport string   // TransportSHM (default) or TransportTCP

	// Dir is the SHM session directory. Empty means a fresh directory
	// under the default temp root, removed when the job ends. Keep it
	// short: unix socket paths cap at ~100 bytes.
	Dir string

	// RanksPerNode carves the job into synthetic nodes of this many
	// consecutive ranks for placement-aware code paths (hierarchical
	// collectives, pull-stripe scaling). 0 or >= N places every rank on
	// one node, which is the truth for a single-host launcher.
	RanksPerNode int

	Timeout time.Duration // kill-all guard; default 2 minutes
	Env     []string      // extra KEY=VALUE pairs for every worker

	// Supervise, when non-nil, turns first-failure-kill into a restart
	// policy: failed ranks are respawned with a fresh incarnation epoch
	// until their budget runs out.
	Supervise *Supervise

	// Chaos, when non-nil, runs a seeded kill schedule against the live
	// workers. It only makes sense together with Supervise and a worker
	// program that recovers (the elastic task does).
	Chaos *Chaos

	// Stdout/Stderr receive the workers' output, each line prefixed
	// "[rank] ". Nil means the launcher process's own streams.
	Stdout, Stderr io.Writer

	exitLog []RankExit // completed terminations, in observation order
}

// Supervise is the restart policy for failed ranks.
type Supervise struct {
	// MaxRestarts is the per-rank respawn budget. 0 selects the default
	// of 3; negative means no restarts (supervision then only classifies
	// and reports).
	MaxRestarts int
	// Backoff is the delay before a rank's first respawn, doubling with
	// each consecutive restart of that rank. 0 selects 200ms.
	Backoff time.Duration
}

// Chaos is a deterministic kill schedule: every Interval, SIGKILL one
// uniformly-chosen live worker that has been up for at least MinUp.
// The same Seed reproduces the same victim sequence against the same
// liveness history.
type Chaos struct {
	Seed     int64         // schedule seed; 0 selects 1
	Kills    int           // kill events to inject; 0 selects 1
	Interval time.Duration // spacing between kills; 0 selects 2s
	MinUp    time.Duration // never kill a worker younger than this; 0 selects 1s
}

// RankExit is one observed worker termination.
type RankExit struct {
	Rank  int
	Epoch int    // incarnation that exited (0 = original process)
	Cause string // "ok", "exited with code N", or "killed by SIGxxx"
}

// ExitLog returns every termination Run observed, in order — the
// per-rank exit records behind the supervisor's decisions. Valid after
// Run returns.
func (c *Cmd) ExitLog() []RankExit { return c.exitLog }

// exitCause classifies one worker termination: the signal that killed
// it, or the code it exited with. The distinction drives both the
// supervisor's reporting and the propagated job error — "killed by
// SIGKILL" points at the machine (or the chaos schedule), "exited with
// code 3" points at the program.
type exitCause struct {
	signal syscall.Signal // non-zero when a signal terminated the worker
	code   int            // exit code otherwise
}

func (ec exitCause) String() string {
	if ec.signal != 0 {
		return "killed by " + sigName(ec.signal)
	}
	if ec.code == 0 {
		return "ok"
	}
	return fmt.Sprintf("exited with code %d", ec.code)
}

// classifyExit extracts the termination cause from (*exec.Cmd).Wait's
// error.
func classifyExit(err error) exitCause {
	if err == nil {
		return exitCause{}
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok {
			if ws.Signaled() {
				return exitCause{signal: ws.Signal()}
			}
			return exitCause{code: ws.ExitStatus()}
		}
		return exitCause{code: ee.ExitCode()}
	}
	return exitCause{code: -1}
}

// sigName renders the conventional name for the signals a worker
// plausibly dies to; syscall.Signal's own String is the prose form
// ("killed"), which reads ambiguously in a job error.
func sigName(s syscall.Signal) string {
	switch s {
	case syscall.SIGKILL:
		return "SIGKILL"
	case syscall.SIGTERM:
		return "SIGTERM"
	case syscall.SIGINT:
		return "SIGINT"
	case syscall.SIGSEGV:
		return "SIGSEGV"
	case syscall.SIGABRT:
		return "SIGABRT"
	case syscall.SIGBUS:
		return "SIGBUS"
	case syscall.SIGQUIT:
		return "SIGQUIT"
	}
	return fmt.Sprintf("signal %d", int(s))
}

// rankExit is one worker's termination.
type rankExit struct {
	rank  int
	epoch int
	err   error
}

// Run launches the job and blocks until it ends. The returned error is
// nil only if every rank's final incarnation exited 0 and the
// rendezvous succeeded.
func (c *Cmd) Run() error {
	if c.N <= 0 {
		return fmt.Errorf("launch: Cmd.N = %d", c.N)
	}
	if c.Prog == "" {
		return fmt.Errorf("launch: Cmd.Prog is empty")
	}
	transport := c.Transport
	if transport == "" {
		transport = TransportSHM
	}
	if transport != TransportSHM && transport != TransportTCP {
		return fmt.Errorf("launch: unknown transport %q", transport)
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	rpn := c.RanksPerNode
	if rpn <= 0 || rpn > c.N {
		rpn = c.N
	}
	stdout, stderr := c.Stdout, c.Stderr
	if stdout == nil {
		stdout = os.Stdout
	}
	if stderr == nil {
		stderr = os.Stderr
	}
	maxRestarts := 0
	var backoff time.Duration
	if c.Supervise != nil {
		maxRestarts = c.Supervise.MaxRestarts
		if maxRestarts == 0 {
			maxRestarts = 3
		}
		if maxRestarts < 0 {
			maxRestarts = 0
		}
		backoff = c.Supervise.Backoff
		if backoff <= 0 {
			backoff = 200 * time.Millisecond
		}
	}

	dir := c.Dir
	if transport == TransportSHM && dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "mpicd-*"); err != nil {
			return fmt.Errorf("launch: session dir: %w", err)
		}
		defer os.RemoveAll(dir)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("launch: rendezvous listener: %w", err)
	}
	defer ln.Close()
	rendErr := make(chan error, 1)
	rendStop := make(chan struct{})
	go func() { rendErr <- serveJoin(ln, c.N, rendStop) }()

	var outMu sync.Mutex // one worker line at a time, never interleaved bytes
	var mu sync.Mutex    // procs/alive/startedAt, shared with the chaos goroutine
	procs := make([]*exec.Cmd, c.N)
	alive := make([]bool, c.N)
	startedAt := make([]time.Time, c.N)
	exits := make(chan rankExit, c.N)
	respawns := make(chan int, c.N)

	kill := func() {
		mu.Lock()
		ps := append([]*exec.Cmd(nil), procs...)
		mu.Unlock()
		killAll(ps)
	}

	spawn := func(r, epoch int) error {
		p := exec.Command(c.Prog, c.Args...)
		p.Env = append(os.Environ(),
			fmt.Sprintf("%s=%d", EnvRank, r),
			fmt.Sprintf("%s=%d", EnvSize, c.N),
			fmt.Sprintf("%s=%s", EnvRend, ln.Addr().String()),
			fmt.Sprintf("%s=%s", EnvTransport, transport),
			fmt.Sprintf("%s=%s", EnvDir, dir),
			fmt.Sprintf("%s=%d", EnvRPN, rpn),
			fmt.Sprintf("%s=%d", EnvNode, r/rpn),
			fmt.Sprintf("%s=%d", EnvEpoch, epoch),
		)
		p.Env = append(p.Env, c.Env...)
		op, _ := p.StdoutPipe()
		ep, _ := p.StderrPipe()
		// Drain both pipes to EOF before calling Wait: Wait closes the
		// pipes as soon as the process exits, and a reader that loses
		// that race silently drops the worker's last lines of output.
		var pw sync.WaitGroup
		pw.Add(2)
		go prefixLines(&pw, &outMu, stdout, r, op)
		go prefixLines(&pw, &outMu, stderr, r, ep)
		if err := p.Start(); err != nil {
			return err
		}
		mu.Lock()
		procs[r], alive[r], startedAt[r] = p, true, time.Now()
		mu.Unlock()
		go func() {
			pw.Wait()
			exits <- rankExit{r, epoch, p.Wait()}
		}()
		return nil
	}

	for r := 0; r < c.N; r++ {
		if err := spawn(r, 0); err != nil {
			kill()
			return fmt.Errorf("launch: start rank %d: %w", r, err)
		}
	}

	chaosStop := make(chan struct{})
	defer close(chaosStop)
	if c.Chaos != nil {
		go runChaos(*c.Chaos, procs, alive, startedAt, &mu, chaosStop, &outMu, stderr)
	}

	debug := os.Getenv(EnvDebug) != ""
	logf := func(format string, args ...any) {
		outMu.Lock()
		fmt.Fprintf(stderr, "[launch] "+format+"\n", args...)
		outMu.Unlock()
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	restarts := make([]int, c.N)
	var jobErr error
	failing := false
	live, pending := c.N, 0
	for live > 0 || pending > 0 {
		select {
		case e := <-exits:
			live--
			mu.Lock()
			alive[e.rank] = false
			mu.Unlock()
			cause := classifyExit(e.err)
			c.exitLog = append(c.exitLog, RankExit{Rank: e.rank, Epoch: e.epoch, Cause: cause.String()})
			if e.err == nil || failing {
				continue
			}
			if c.Supervise != nil && restarts[e.rank] < maxRestarts {
				restarts[e.rank]++
				delay := backoff << (restarts[e.rank] - 1)
				logf("rank %d %s; restart %d/%d in %v", e.rank, cause, restarts[e.rank], maxRestarts, delay)
				pending++
				r := e.rank
				time.AfterFunc(delay, func() { respawns <- r })
				continue
			}
			suffix := ""
			if c.Supervise != nil {
				suffix = fmt.Sprintf(" (restart budget %d exhausted)", maxRestarts)
			}
			jobErr = fmt.Errorf("launch: rank %d %s%s: %w", e.rank, cause, suffix, e.err)
			failing = true
			kill() // the job is lost; reap the rest
		case r := <-respawns:
			pending--
			if failing {
				continue
			}
			if err := spawn(r, restarts[r]); err != nil {
				jobErr = fmt.Errorf("launch: respawn rank %d: %w", r, err)
				failing = true
				kill()
				continue
			}
			live++
		case <-timer.C:
			jobErr = fmt.Errorf("launch: job timed out after %v with %d rank(s) still running", timeout, live)
			failing = true
			kill()
			// Pending respawn timers still fire; the failing flag drops
			// them, and live exits drain through the loop condition.
		}
	}
	if debug || (c.Supervise != nil && jobErr != nil) {
		for _, e := range c.exitLog {
			logf("exit record: rank %d epoch %d: %s", e.Rank, e.Epoch, e.Cause)
		}
	}
	ln.Close()
	close(rendStop)
	if err := <-rendErr; err != nil && jobErr == nil {
		jobErr = err
	}
	return jobErr
}

// runChaos executes the kill schedule: every Interval, SIGKILL one
// seeded-random live worker old enough to have gotten off the ground.
// Ticks with no eligible victim are retried rather than skipped, so the
// schedule delivers its full kill count against a healthy job.
func runChaos(ch Chaos, procs []*exec.Cmd, alive []bool, startedAt []time.Time, mu *sync.Mutex, stop <-chan struct{}, outMu *sync.Mutex, stderr io.Writer) {
	if ch.Seed == 0 {
		ch.Seed = 1
	}
	if ch.Kills == 0 {
		ch.Kills = 1
	}
	if ch.Interval <= 0 {
		ch.Interval = 2 * time.Second
	}
	if ch.MinUp <= 0 {
		ch.MinUp = time.Second
	}
	rng := rand.New(rand.NewSource(ch.Seed))
	for kills := 0; kills < ch.Kills; {
		select {
		case <-stop:
			return
		case <-time.After(ch.Interval):
		}
		mu.Lock()
		var candidates []int
		for r := range procs {
			if alive[r] && time.Since(startedAt[r]) >= ch.MinUp {
				candidates = append(candidates, r)
			}
		}
		var victim *exec.Cmd
		vr := -1
		if len(candidates) > 0 {
			vr = candidates[rng.Intn(len(candidates))]
			victim = procs[vr]
		}
		mu.Unlock()
		if victim == nil || victim.Process == nil {
			continue
		}
		kills++
		outMu.Lock()
		fmt.Fprintf(stderr, "[launch] chaos: SIGKILL rank %d (kill %d/%d)\n", vr, kills, ch.Kills)
		outMu.Unlock()
		_ = victim.Process.Kill()
	}
}

// killAll terminates every started worker: SIGTERM first (a worker
// running with MPICD_DEBUG installed a handler that dumps its transport
// state before dying; the Go default is immediate exit), SIGKILL for
// any that linger past a short grace. Safe to call repeatedly and with
// nil slots (ranks that never started).
func killAll(procs []*exec.Cmd) {
	for _, p := range procs {
		if p != nil && p.Process != nil {
			_ = p.Process.Signal(syscall.SIGTERM)
		}
	}
	go func() {
		time.Sleep(3 * time.Second)
		for _, p := range procs {
			if p != nil && p.Process != nil {
				_ = p.Process.Kill()
			}
		}
	}()
}

// prefixLines copies r to w line by line, each prefixed with the rank.
func prefixLines(wg *sync.WaitGroup, mu *sync.Mutex, w io.Writer, rank int, r io.Reader) {
	defer wg.Done()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		mu.Lock()
		fmt.Fprintf(w, "[%d] %s\n", rank, sc.Bytes())
		mu.Unlock()
	}
}
