// Package launch is the process-launch half of cross-process deployment:
// an mpirun-style spawner (Cmd) that forks N local worker processes, and
// the worker-side bootstrap (FromEnv + Info.Connect) that turns the
// launcher-provided environment into a connected world communicator.
//
// The contract between the two halves is a handful of MPICD_* environment
// variables plus a JSON-line rendezvous service: each worker binds its
// transport endpoint, reports {rank, addr, node} to the rendezvous
// address, and receives the full address table and node placement once
// every rank has checked in. The rendezvous doubles as a startup barrier,
// so no worker sends before every peer is reachable.
//
// Placement is threaded through the stack: RanksPerNode scales the
// transport's automatic pull-stripe count (128 co-located ranks must not
// each spawn 4 pull goroutines), and the per-rank node ids become the
// communicator's CollTopology so small collectives route hierarchically.
package launch

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"mpicd/internal/core"
	"mpicd/internal/fabric"
	"mpicd/internal/ucp"
)

// Environment variables the launcher sets for every worker process.
const (
	EnvRank      = "MPICD_RANK"      // this process's world rank
	EnvSize      = "MPICD_SIZE"      // world size
	EnvRend      = "MPICD_REND"      // rendezvous host:port (may be empty for SHM)
	EnvTransport = "MPICD_TRANSPORT" // "shm" or "tcp"
	EnvDir       = "MPICD_DIR"       // SHM session directory
	EnvRPN       = "MPICD_RPN"       // ranks per node
	EnvNode      = "MPICD_NODE"      // this rank's node id
	EnvEpoch     = "MPICD_EPOCH"     // incarnation; > 0 marks a respawned replacement
)

// Heartbeat detector overrides, honored by Info.Connect (and therefore
// by mpi.InitFromEnv): the period is a Go duration, the suspect and dead
// thresholds are multipliers of the period. Setting only the period
// keeps the default multipliers, so launched tests can tighten
// failure-detection latency with a single variable and no code changes.
const (
	EnvHBPeriod  = "MPICD_HB_PERIOD"  // probe period, e.g. "20ms"; enables the detector
	EnvHBSuspect = "MPICD_HB_SUSPECT" // SuspectAfter = multiplier x period (default 8)
	EnvHBDead    = "MPICD_HB_DEAD"    // DeadAfter = multiplier x period (default 30)
)

// Transport names accepted by the launcher and Info.Transport.
const (
	TransportSHM = "shm"
	TransportTCP = "tcp"
)

// Info is the launch-time identity of one worker process.
type Info struct {
	Rank         int
	Size         int
	Rend         string // rendezvous address; empty skips the exchange (SHM only)
	Transport    string // TransportSHM (default) or TransportTCP
	Dir          string // SHM session directory
	RanksPerNode int    // 0 means unknown (single node assumed)
	Node         int    // node id of this rank
	Bind         string // TCP bind pattern; default "127.0.0.1:0"

	// Epoch is this process's incarnation under its rank: 0 for an
	// original worker, n for the n-th supervised respawn. A non-zero
	// epoch switches Connect from the startup barrier to the rejoin
	// exchange and offsets the reliable-protocol message-id space so the
	// replacement's traffic cannot collide with its predecessor's dedup
	// records on surviving peers.
	Epoch int
}

// IsWorker reports whether this process was spawned by the launcher.
func IsWorker() bool { return os.Getenv(EnvRank) != "" }

// FromEnv reads the worker identity the launcher exported.
func FromEnv() (*Info, error) {
	in := &Info{
		Rend:      os.Getenv(EnvRend),
		Transport: os.Getenv(EnvTransport),
		Dir:       os.Getenv(EnvDir),
	}
	var err error
	if in.Rank, err = envInt(EnvRank, -1); err != nil {
		return nil, err
	}
	if in.Size, err = envInt(EnvSize, -1); err != nil {
		return nil, err
	}
	if in.RanksPerNode, err = envInt(EnvRPN, 0); err != nil {
		return nil, err
	}
	if in.Node, err = envInt(EnvNode, 0); err != nil {
		return nil, err
	}
	if in.Epoch, err = envInt(EnvEpoch, 0); err != nil {
		return nil, err
	}
	if in.Epoch < 0 {
		return nil, fmt.Errorf("launch: %s=%d: incarnation cannot be negative", EnvEpoch, in.Epoch)
	}
	if in.Rank < 0 || in.Size <= 0 || in.Rank >= in.Size {
		return nil, fmt.Errorf("launch: bad identity rank=%d size=%d (is %s set?)", in.Rank, in.Size, EnvRank)
	}
	if in.Transport == "" {
		in.Transport = TransportSHM
	}
	return in, nil
}

func envInt(name string, def int) (int, error) {
	v := os.Getenv(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("launch: %s=%q: %w", name, v, err)
	}
	return n, nil
}

// HeartbeatFromEnv reads the MPICD_HB_* failure-detector overrides.
// ok reports whether any of them is set; when it is, the returned config
// is fully validated and ready for ucp.Config.Heartbeat. Every
// validation failure names the offending variable.
func HeartbeatFromEnv() (cfg fabric.DetectorConfig, ok bool, err error) {
	pv, sv, dv := os.Getenv(EnvHBPeriod), os.Getenv(EnvHBSuspect), os.Getenv(EnvHBDead)
	if pv == "" && sv == "" && dv == "" {
		return fabric.DetectorConfig{}, false, nil
	}
	if pv == "" {
		return cfg, false, fmt.Errorf("launch: %s/%s need %s to be set", EnvHBSuspect, EnvHBDead, EnvHBPeriod)
	}
	period, err := time.ParseDuration(pv)
	if err != nil {
		return cfg, false, fmt.Errorf("launch: %s=%q: %w", EnvHBPeriod, pv, err)
	}
	if period <= 0 {
		return cfg, false, fmt.Errorf("launch: %s=%q: period must be positive", EnvHBPeriod, pv)
	}
	mul := func(name, v string, def float64) (float64, error) {
		if v == "" {
			return def, nil
		}
		m, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("launch: %s=%q: %w", name, v, err)
		}
		if m < 1 {
			return 0, fmt.Errorf("launch: %s=%q: multiplier must be >= 1", name, v)
		}
		return m, nil
	}
	suspect, err := mul(EnvHBSuspect, sv, 8)
	if err != nil {
		return cfg, false, err
	}
	dead, err := mul(EnvHBDead, dv, 30)
	if err != nil {
		return cfg, false, err
	}
	if dead <= suspect {
		return cfg, false, fmt.Errorf("launch: %s (%g) must exceed %s (%g)", EnvHBDead, dead, EnvHBSuspect, suspect)
	}
	cfg = fabric.DetectorConfig{
		Period:       period,
		SuspectAfter: time.Duration(suspect * float64(period)),
		DeadAfter:    time.Duration(dead * float64(period)),
	}
	return cfg, true, nil
}

// World is a connected cross-process world communicator plus the
// bootstrap facts (address table, node placement) the rendezvous
// produced. For a respawned replacement (Rejoined() true) Comm is nil —
// the dead incarnation's communicators died with it, and the only way
// back in is Join, which runs the joiner side of the Grow protocol.
type World struct {
	Comm  *core.Comm
	Info  *Info
	Addrs []string // addrs[i] is rank i's bound transport endpoint
	Nodes []int    // nodes[i] is rank i's node id

	worker *ucp.Worker
	nic    fabric.NIC
}

// Rejoined reports whether this process is a supervised respawn that
// registered through the join service rather than the startup barrier.
func (w *World) Rejoined() bool { return w.Info.Epoch > 0 }

// Worker exposes the transport worker, which elastic recovery needs for
// failure declarations outside any communicator.
func (w *World) Worker() *ucp.Worker { return w.worker }

// Join runs the joiner side of elastic re-admission: wait (up to window)
// for a surviving group to Grow this rank back in, and return the new
// world communicator. Only meaningful after Rejoined().
func (w *World) Join(window time.Duration) (*core.Comm, error) {
	if !w.Rejoined() {
		return nil, fmt.Errorf("launch: Join is for respawned workers (epoch %d)", w.Info.Epoch)
	}
	tuning := core.CollTuning{Topology: &core.CollTopology{NodeOf: w.Nodes}}
	return core.JoinWorldWithin(w.worker, tuning, window)
}

// PollRejoins asks the launcher's join service which replacements have
// registered since join epoch `since` (0 means all). The returned peers
// are ready for Comm.Grow: for transports whose endpoints are derived
// from the rank (SHM), the address is blanked, because the fabric needs
// no repointing. The second result is the service's current epoch — the
// watermark for the next incremental poll.
func (w *World) PollRejoins(since uint64) ([]core.JoinPeer, uint64, error) {
	if w.Info.Rend == "" {
		return nil, 0, fmt.Errorf("launch: no rendezvous service to poll (%s unset)", EnvRend)
	}
	reply, err := pollRejoins(w.Info.Rend, w.Info.Rank, since)
	if err != nil {
		return nil, 0, err
	}
	peers := make([]core.JoinPeer, 0, len(reply.Rejoins))
	for _, rec := range reply.Rejoins {
		p := core.JoinPeer{Rank: rec.Rank, Addr: rec.Addr}
		if w.Info.Transport != TransportTCP {
			p.Addr = ""
		}
		peers = append(peers, p)
	}
	return peers, reply.Epoch, nil
}

// NumConns reports how many transport connections this rank currently
// holds, when the provider tracks that (TCP and SHM do). Lazy dialing
// means a rank that only ever talked to k peers reports ~k, not Size-1.
func (w *World) NumConns() int {
	if n, ok := w.nic.(interface{ NumConns() int }); ok {
		return n.NumConns()
	}
	return -1
}

// Close leaves the world, closing the transport.
func (w *World) Close() error {
	w.worker.Close()
	return nil
}

// Connect binds this worker's transport endpoint, runs the rendezvous
// exchange, and returns the world communicator. opt carries the usual
// fabric/ucp configuration; observability registries propagate the same
// way mpi.ConnectTCP propagates them.
func (in *Info) Connect(opt core.Options) (*World, error) {
	if o := opt.UCP.Obs; o != nil && opt.Fabric.Obs == nil {
		opt.Fabric.Obs = o.Registry
	}
	if opt.UCP.RanksPerNode == 0 {
		opt.UCP.RanksPerNode = in.RanksPerNode
	}
	// Environment overrides win over programmatic heartbeat config, so a
	// launched test can tighten failure detection without code changes.
	if hb, ok, err := HeartbeatFromEnv(); err != nil {
		return nil, err
	} else if ok {
		opt.UCP.Heartbeat = hb
	}
	// A replacement restarts its message-id counter at zero; offsetting
	// the id space by incarnation keeps its first reliable sends from
	// colliding with the dead predecessor's dedup records on peers that
	// have not purged them yet.
	if in.Epoch > 0 && opt.UCP.MsgIDBase == 0 {
		opt.UCP.MsgIDBase = uint64(in.Epoch) << 40
	}
	// The fabric announces the incarnation in every connection handshake:
	// a replacement that reconnects to survivors before their silence
	// threshold expires would otherwise mask its predecessor's death with
	// its own heartbeats, and the survivors would hang forever in the
	// dead incarnation's last collective.
	opt.Fabric.Epoch = uint32(in.Epoch)
	// A replacement boots into a world that will not talk to it until a
	// survivor notices its join request and issues an invite. Counting
	// that pre-invite silence against the survivors would declare them
	// all dead within DeadAfter of boot — a sticky verdict that mutes the
	// joiner exactly when the invite arrives, deadlocking re-admission.
	// Give respawned workers a boot grace that comfortably covers the
	// notice-and-invite path; first contact per peer resumes normal
	// accounting.
	if in.Epoch > 0 && opt.UCP.Heartbeat.Period > 0 && opt.UCP.Heartbeat.BootGrace == 0 {
		opt.UCP.Heartbeat.BootGrace = 10 * time.Second
	}
	// Cross-process worlds always run the acked eager protocol. Unlike
	// the in-process transport, a socket can lose data when its peer
	// process exits right after writing (a TCP close with unread inbound
	// bytes turns into a reset, which discards kernel-buffered data in
	// both directions) — and a dissemination barrier lets fast ranks
	// exit while their last token to a laggard is still in flight. With
	// acked completion, a send that has completed is a send the
	// receiver's worker holds, so finish-barrier-then-exit is safe.
	opt.UCP.Reliable = true
	// Launched jobs oversubscribe cores hard — every rank is a full OS
	// process, and CI-class machines run 128 of them on a few CPUs — so
	// a receiver can legitimately sit unscheduled for whole seconds.
	// Unless the caller tuned them, give retransmission a far longer
	// budget than the in-process defaults, scaled by how oversubscribed
	// this job actually is, so scheduler starvation is not misread as
	// message loss.
	over := (in.Size + runtime.NumCPU() - 1) / runtime.NumCPU()
	if opt.UCP.RexmitMax == 0 {
		opt.UCP.RexmitMax = time.Second
		if over >= 8 {
			opt.UCP.RexmitMax = 2 * time.Second
		}
	}
	if opt.UCP.RexmitRetries == 0 {
		opt.UCP.RexmitRetries = 20
		if over >= 8 {
			opt.UCP.RexmitRetries = 45
		}
	}

	var (
		nic  fabric.NIC
		tcp  *fabric.TCP
		addr string
		err  error
	)
	switch in.Transport {
	case TransportSHM, "":
		if in.Dir == "" {
			return nil, fmt.Errorf("launch: SHM transport needs %s", EnvDir)
		}
		// Deterministic addressing: every segment and socket name is a
		// function of the session dir and the rank pair, so the address
		// table is known before the exchange.
		nic, err = fabric.NewSHM(in.Rank, in.Size, in.Dir, opt.Fabric)
		if err != nil {
			return nil, err
		}
		addr = fabric.ShmSocket(in.Dir, in.Rank)
	case TransportTCP:
		bind := in.Bind
		if bind == "" {
			bind = "127.0.0.1:0"
		}
		tcp, err = fabric.ListenTCP(in.Rank, in.Size, bind, opt.Fabric)
		if err != nil {
			return nil, err
		}
		nic, addr = tcp, tcp.Addr()
	default:
		return nil, fmt.Errorf("launch: unknown transport %q", in.Transport)
	}

	addrs, nodes := make([]string, in.Size), make([]int, in.Size)
	if in.Rend != "" {
		var reply *worldMsg
		if in.Epoch > 0 {
			reply, err = rejoinExchange(in.Rend, in.Rank, in.Size, addr, in.Node)
		} else {
			reply, err = exchange(in.Rend, in.Rank, in.Size, addr, in.Node)
		}
		if err != nil {
			nic.Close()
			return nil, err
		}
		addrs, nodes = reply.Addrs, reply.Nodes
	} else {
		// No rendezvous: only SHM can bootstrap from convention alone
		// (all ranks on one node, addresses derived from the dir).
		if in.Transport == TransportTCP {
			nic.Close()
			return nil, fmt.Errorf("launch: TCP transport needs %s", EnvRend)
		}
		for i := range addrs {
			addrs[i] = fabric.ShmSocket(in.Dir, i)
		}
	}
	if tcp != nil {
		if err := tcp.Join(addrs); err != nil {
			nic.Close()
			return nil, err
		}
	}

	w := ucp.NewWorker(nic, opt.UCP)
	world := &World{Info: in, Addrs: addrs, Nodes: nodes, worker: w, nic: nic}
	if in.Epoch == 0 {
		// A replacement has no world communicator — the one its dead
		// predecessor belonged to is gone; Join builds its successor.
		comm := core.NewComm(w)
		comm.SetCollTuning(core.CollTuning{Topology: &core.CollTopology{NodeOf: nodes}})
		world.Comm = comm
	}
	return world, nil
}
