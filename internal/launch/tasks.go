package launch

import (
	"bytes"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"mpicd/internal/core"
	"mpicd/internal/ddt"
	"mpicd/internal/fabric"
	"mpicd/internal/layout"
)

// Built-in worker tasks. cmd/mpicd-run re-executes itself with
// MPICD_WORKER_TASK naming one of these, and the launch e2e tests reuse
// them from the re-executed test binary, so the exact same traffic
// patterns validate the CLI and the package.
const EnvTask = "MPICD_WORKER_TASK"

// EnvBenchOut names the file the bench task's rank 0 writes its JSON
// result to.
const EnvBenchOut = "MPICD_BENCH_OUT"

// EnvDebug turns on failure forensics in built-in tasks: a state dump
// on task error, and a SIGTERM handler that dumps before dying (the
// launcher kills survivors with SIGTERM first, so when one rank times
// out, every OTHER rank reports what it was stuck on). "2" adds full
// goroutine stacks.
const EnvDebug = "MPICD_DEBUG"

// RunTask connects a world from in and runs the named built-in task.
func RunTask(name string, in *Info, opt core.Options) error {
	if name == "elastic" && opt.UCP.Heartbeat.Period == 0 {
		// Elastic recovery hinges on failure detection: without a
		// heartbeat, a survivor blocked in Recv on a SIGKILLed peer only
		// learns of the death from transport-level evidence, which a
		// quiet link may never produce. Default a snappy single-host
		// cadence; MPICD_HB_* (applied in Connect) overrides it.
		opt.UCP.Heartbeat = fabric.DetectorConfig{
			Period:       20 * time.Millisecond,
			SuspectAfter: 150 * time.Millisecond,
			DeadAfter:    600 * time.Millisecond,
		}
	}
	w, err := in.Connect(opt)
	if err != nil {
		return err
	}
	defer w.Close()
	if os.Getenv(EnvDebug) != "" {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGTERM)
		go func() {
			<-ch
			debugDump(w, "killed")
			os.Exit(1)
		}()
	}
	err = runTask(name, w)
	if err != nil && os.Getenv(EnvDebug) != "" {
		debugDump(w, err.Error())
	}
	if err == nil {
		// Exit linger: task completion is not symmetric across ranks. A
		// rank can finish the closing collective and exit while a peer
		// still owes that collective's last acknowledgements — and a
		// straggler whose retransmissions then hit a closed port reads
		// connect-refused as hard death evidence and declares the finished
		// rank failed (observed as a survivor stranded at size 1 after
		// everyone else exited cleanly). Keep the fabric alive briefly so
		// stragglers drain; heartbeats keep flowing, so the linger can
		// never be mistaken for a death.
		time.Sleep(exitLinger)
	}
	return err
}

// exitLinger is how long a successfully finished worker keeps its fabric
// serving (acks, retransmit requests, heartbeats) before exiting. It
// must exceed the scheduling skew between ranks finishing the same final
// collective on a loaded machine.
const exitLinger = 500 * time.Millisecond

func runTask(name string, w *World) error {
	switch name {
	case "pingpong":
		return taskPingpong(w.Comm)
	case "allreduce":
		return taskAllreduce(w.Comm)
	case "ringping":
		return taskRingping(w)
	case "crash":
		return taskCrash(w.Comm)
	case "killself":
		return taskKillself(w)
	case "elastic":
		return taskElastic(w)
	case "facts":
		return taskFacts(w)
	case "bench":
		return taskBench(w)
	default:
		return fmt.Errorf("launch: unknown worker task %q", name)
	}
}

// debugDump writes the rank's transport forensics to stderr: protocol
// counters, every send still awaiting acknowledgement (and which peer
// owes the ack), and the provider's channel state.
func (w *World) debugDump(reason string) {
	var b strings.Builder
	st := w.worker.Stats()
	fmt.Fprintf(&b, "rank %d debug (%s):\n", w.Info.Rank, reason)
	fmt.Fprintf(&b, "  ucp: eager=%d acksSent=%d rexmits=%d dupFrags=%d timeouts=%d\n",
		st.EagerSends.Load(), st.AcksSent.Load(), st.Retransmits.Load(), st.DupFrags.Load(), st.Timeouts.Load())
	for _, e := range w.worker.RexmitSnapshot() {
		fmt.Fprintf(&b, "  unacked: dst=%d tag=%#x eager=%v attempts=%d\n", e.Dst, e.Tag, e.Eager, e.Attempts)
	}
	if d, ok := w.nic.(interface{ DebugState() string }); ok {
		b.WriteString(d.DebugState())
	}
	for _, ev := range fabric.ConnTrace() {
		fmt.Fprintf(&b, "  conn: %s\n", ev)
	}
	os.Stderr.WriteString(b.String())
	if os.Getenv(EnvDebug) == "2" {
		_ = pprof.Lookup("goroutine").WriteTo(os.Stderr, 2)
	}
}

func debugDump(w *World, reason string) { w.debugDump(reason) }

func fill(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

// taskPingpong pairs rank i with rank i^1 (the last rank idles when the
// world is odd) and pingpongs an eager-sized and a rendezvous-sized
// payload, verifying both directions, then barriers.
func taskPingpong(c *core.Comm) error {
	rank, size := c.Rank(), c.Size()
	peer := rank ^ 1
	if peer < size {
		for _, n := range []int{64, 1 << 20} {
			mine := fill(n, byte(rank+1))
			got := make([]byte, n)
			if rank < peer {
				if err := c.Send(mine, core.Count(n), core.TypeBytes, peer, 7); err != nil {
					return err
				}
				if _, err := c.Recv(got, core.Count(n), core.TypeBytes, peer, 7); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(got, core.Count(n), core.TypeBytes, peer, 7); err != nil {
					return err
				}
				if err := c.Send(mine, core.Count(n), core.TypeBytes, peer, 7); err != nil {
					return err
				}
			}
			if !bytes.Equal(got, fill(n, byte(peer+1))) {
				return fmt.Errorf("rank %d: %d-byte pingpong payload mismatch from %d", rank, n, peer)
			}
		}
	}
	return c.Barrier()
}

// taskAllreduce verifies an int64 sum Allreduce and a Bcast — the two
// collectives that reroute hierarchically when the launcher reports a
// multi-node placement.
func taskAllreduce(c *core.Comm) error {
	rank, size := c.Rank(), c.Size()
	const count = 257
	send, recv := make([]byte, 8*count), make([]byte, 8*count)
	for i := 0; i < count; i++ {
		layout.PutI64(send, 8*i, int64((rank+1)*(i+1)))
	}
	if err := c.Allreduce(send, recv, count, core.FromDDT(ddt.Int64), core.OpSumInt64); err != nil {
		return err
	}
	sum := int64(size * (size + 1) / 2)
	for i := 0; i < count; i++ {
		if got, want := layout.I64(recv, 8*i), sum*int64(i+1); got != want {
			return fmt.Errorf("rank %d allreduce elem %d: got %d, want %d", rank, i, got, want)
		}
	}
	want := fill(4096, 3)
	buf := make([]byte, len(want))
	if rank == 0 {
		copy(buf, want)
	}
	if err := c.Bcast(buf, core.Count(len(buf)), core.TypeBytes, 0); err != nil {
		return err
	}
	if !bytes.Equal(buf, want) {
		return fmt.Errorf("rank %d: bcast payload mismatch", rank)
	}
	return c.Barrier()
}

// taskRingping exchanges with the two ring neighbors only — no
// collectives, whose tree schedules would dial extra peers — and then
// asserts lazy dialing held: this rank's connection count must not
// exceed its neighbor count.
func taskRingping(w *World) error {
	c := w.Comm
	rank, size := c.Rank(), c.Size()
	right, left := (rank+1)%size, (rank+size-1)%size
	buf := make([]byte, 8)
	sr, err := c.Isend(fill(8, byte(rank)), 8, core.TypeBytes, right, 9)
	if err != nil {
		return err
	}
	if _, err := c.Recv(buf, 8, core.TypeBytes, left, 9); err != nil {
		return err
	}
	if _, err := sr.Wait(); err != nil {
		return err
	}
	if !bytes.Equal(buf, fill(8, byte(left))) {
		return fmt.Errorf("rank %d: ring payload mismatch", rank)
	}
	// Echo back so both directions of each neighbor link carried data.
	sr, err = c.Isend(buf, 8, core.TypeBytes, left, 10)
	if err != nil {
		return err
	}
	if _, err := c.Recv(buf, 8, core.TypeBytes, right, 10); err != nil {
		return err
	}
	if _, err := sr.Wait(); err != nil {
		return err
	}
	// Quiesce before anyone closes (like MPI, finalization is
	// collective): a two-pass ring token barrier. The collect pass
	// certifies every rank finished its traffic; the release pass lets
	// ranks exit. Both passes ride the existing neighbor links, so the
	// connection count stays exactly the ring degree — and under the
	// reliable protocol the final release forward is acked before the
	// forwarding rank tears down.
	token := make([]byte, 1)
	for _, tag := range []int{11, 12} {
		if rank == 0 {
			if err := c.Send(token, 1, core.TypeBytes, right, tag); err != nil {
				return err
			}
			if _, err := c.Recv(token, 1, core.TypeBytes, left, tag); err != nil {
				return err
			}
		} else {
			if _, err := c.Recv(token, 1, core.TypeBytes, left, tag); err != nil {
				return err
			}
			if err := c.Send(token, 1, core.TypeBytes, right, tag); err != nil {
				return err
			}
		}
	}
	conns := w.NumConns()
	limit := 2
	if size <= 3 {
		limit = size - 1
	}
	if conns > limit {
		return fmt.Errorf("rank %d: %d connections after ring traffic, want <= %d (lazy dialing broken?)", rank, conns, limit)
	}
	fmt.Printf("rank %d: %d conns\n", rank, conns)
	return nil
}

// taskFacts verifies the bootstrap facts every worker derives from the
// rendezvous: a full address table and the launcher's node placement.
func taskFacts(w *World) error {
	in, c := w.Info, w.Comm
	if c.Rank() != in.Rank || c.Size() != in.Size {
		return fmt.Errorf("comm identity %d/%d != env identity %d/%d", c.Rank(), c.Size(), in.Rank, in.Size)
	}
	if len(w.Addrs) != in.Size || len(w.Nodes) != in.Size {
		return fmt.Errorf("world facts sized %d/%d, want %d", len(w.Addrs), len(w.Nodes), in.Size)
	}
	for r, a := range w.Addrs {
		if a == "" {
			return fmt.Errorf("no address for rank %d", r)
		}
	}
	if w.Nodes[in.Rank] != in.Node {
		return fmt.Errorf("rendezvous says node %d, env says %d", w.Nodes[in.Rank], in.Node)
	}
	if in.RanksPerNode > 0 {
		for r, node := range w.Nodes {
			if want := r / in.RanksPerNode; node != want {
				return fmt.Errorf("rank %d on node %d, want %d", r, node, want)
			}
		}
	}
	return c.Barrier()
}

// taskCrash makes one rank exit non-zero after the world is up, so the
// launcher's kill-the-rest + propagate-first-failure policy can be
// observed end to end. The survivors sleep far past any reasonable kill
// latency; reaching the sleep's end means the launcher failed to reap
// them.
func taskCrash(c *core.Comm) error {
	crasher := 2
	if c.Size() <= crasher {
		crasher = c.Size() - 1
	}
	if err := c.Barrier(); err != nil {
		return err
	}
	if c.Rank() == crasher {
		os.Exit(3)
	}
	time.Sleep(60 * time.Second)
	return nil
}

// taskKillself makes one rank SIGKILL itself after the world is up — the
// regression workload for termination-cause classification. Ranks do not
// talk after the startup barrier, so the death stalls nobody: without
// supervision the job error must say "killed by SIGKILL" (not an exit
// code), and with supervision the respawned incarnation — which does not
// kill itself again — lets the whole job finish cleanly.
func taskKillself(w *World) error {
	if w.Rejoined() {
		return nil // the replacement's only job is a clean exit
	}
	c := w.Comm
	victim := 1
	if c.Size() <= victim {
		victim = 0
	}
	if err := c.Barrier(); err != nil {
		return err
	}
	if c.Rank() == victim {
		_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	}
	return nil
}
