package launch

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"syscall"
	"time"

	"mpicd/internal/core"
	"mpicd/internal/ddt"
	"mpicd/internal/layout"
	"mpicd/internal/ucp"
)

// The elastic task is the cross-process acceptance workload for rank
// death: a verified Allreduce loop in which a rank is SIGKILLed
// mid-collective (by itself on a deterministic iteration, or by the
// launcher's chaos schedule), survivors detect the death, Revoke +
// Agree + Shrink, poll the join service for the supervised respawn, and
// Grow it back in; the respawned process registers, runs JoinWorld, and
// rejoins the loop. The job succeeds only if the final communicator is
// back at the original world size with verified collectives.
//
// Iteration counts stay consistent across membership changes by
// consensus, not local bookkeeping: after every successful recovery (and
// after every join), the new communicator Allreduce-maxes the
// remaining-iteration count. A rank that completed iteration k while a
// peer failed it — or a fresh joiner holding no count at all — simply
// re-aligns to the group maximum.

// Env knobs for the elastic task.
const (
	EnvElasticIters  = "MPICD_ELASTIC_ITERS"  // Allreduce iterations (default 30)
	EnvElasticVictim = "MPICD_ELASTIC_VICTIM" // self-kill victim rank (default 1)
	EnvElasticKill   = "MPICD_ELASTIC_KILL"   // "self" (default) or "none" (launcher chaos drives)
	EnvElasticSpin   = "MPICD_ELASTIC_SPIN"   // optional per-iteration pause, e.g. "25ms"
	EnvElasticOut    = "MPICD_ELASTIC_OUT"    // rank 0 writes a JSON recovery report here
)

// elasticReport is the recovery telemetry rank 0 writes to
// MPICD_ELASTIC_OUT: how long the failing collective took to surface the
// death (detection latency) and how long the full shrink → respawn-wait
// → grow cycle ran.
type elasticReport struct {
	Transport  string  `json:"transport"`
	Ranks      int     `json:"ranks"`
	Iters      int     `json:"iters"`
	Recoveries int     `json:"recoveries"`
	DetectMs   float64 `json:"detect_ms"`
	RecoverMs  float64 `json:"recover_ms"`
}

// Elastic-task patience windows. The recovery window dominates: it must
// cover the supervisor's restart backoff plus the replacement's full
// reconnect, with slack for oversubscribed CI machines.
const (
	elasticJoinWindow    = 30 * time.Second
	elasticGrowWindow    = 15 * time.Second
	elasticRecoverWindow = 60 * time.Second
	elasticRejoinBudget  = 90 * time.Second
)

func elasticRecoverable(err error) bool {
	return errors.Is(err, core.ErrProcFailed) || errors.Is(err, core.ErrRevoked)
}

// elasticAllreduce is one verified iteration: an int64 sum whose
// expected value depends only on the current communicator size, so the
// same check holds before, during (shrunk), and after recovery.
func elasticAllreduce(c *core.Comm) error {
	const count = 8
	send, recv := make([]byte, 8*count), make([]byte, 8*count)
	for i := 0; i < count; i++ {
		layout.PutI64(send, 8*i, int64(c.Rank()+1)*1000+int64(i))
	}
	if err := c.Allreduce(send, recv, count, core.FromDDT(ddt.Int64), core.OpSumInt64); err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		var want int64
		for r := 0; r < c.Size(); r++ {
			want += int64(r+1)*1000 + int64(i)
		}
		if got := layout.I64(recv, 8*i); got != want {
			return fmt.Errorf("rank %d: elastic sum[%d] = %d, want %d", c.Rank(), i, got, want)
		}
	}
	return nil
}

// missingRanks returns the world ranks absent from c, ascending.
func missingRanks(size int, c *core.Comm) []int {
	present := make([]bool, size)
	for _, fr := range c.FabricRanks() {
		if fr >= 0 && fr < size {
			present[fr] = true
		}
	}
	var out []int
	for r := 0; r < size; r++ {
		if !present[r] {
			out = append(out, r)
		}
	}
	return out
}

// elasticRecover runs the survivor side of one recovery cycle: fold the
// failure in (Revoke + Shrink), then keep polling the join service and
// growing until the communicator is back at full world size. Every
// survivor runs the identical collective sequence: Shrink, then per
// attempt Grow followed — only on an aborted grow — by an Agree that
// decides, identically everywhere, whether the surviving group itself
// lost a member and must re-shrink before retrying.
func elasticRecover(w *World, comm *core.Comm) (*core.Comm, error) {
	in := w.Info
	trace := func(format string, args ...any) {
		if os.Getenv(EnvDebug) != "" {
			fmt.Fprintf(os.Stderr, "%s rank %d recover: %s\n",
				time.Now().Format("15:04:05.000"), in.Rank, fmt.Sprintf(format, args...))
		}
	}
	_ = comm.Revoke()
	sc, err := comm.Shrink()
	if err != nil {
		return nil, fmt.Errorf("shrink: %w", err)
	}
	trace("shrunk to size %d (members %v)", sc.Size(), sc.FabricRanks())
	latest := make(map[int]core.JoinPeer)
	deadline := time.Now().Add(elasticRecoverWindow)
	for {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("recovery window (%v) exhausted at size %d of %d",
				elasticRecoverWindow, sc.Size(), in.Size)
		}
		if f := sc.Failed(); len(f) > 0 {
			// Another member died since the last agreement; fold it in.
			trace("members %v failed since last agreement; re-shrinking", f)
			_ = sc.Revoke()
			ns, err := sc.Shrink()
			if err != nil {
				return nil, fmt.Errorf("re-shrink: %w", err)
			}
			sc = ns
			trace("re-shrunk to size %d (members %v)", sc.Size(), sc.FabricRanks())
			continue
		}
		missing := missingRanks(in.Size, sc)
		if len(missing) == 0 {
			return sc, nil
		}
		peers, _, err := w.PollRejoins(0)
		if err != nil {
			trace("poll rejoins: %v", err)
			time.Sleep(50 * time.Millisecond)
			continue
		}
		for _, p := range peers {
			if old, seen := latest[p.Rank]; !seen || old != p {
				trace("join record: rank %d at %s", p.Rank, p.Addr)
			}
			latest[p.Rank] = p // records arrive epoch-ascending: newest wins
		}
		args := make([]core.JoinPeer, 0, len(missing))
		for _, r := range missing {
			if p, ok := latest[r]; ok {
				args = append(args, p)
			}
		}
		if len(args) < len(missing) {
			// Replacements still booting; every survivor waits for the
			// full set so all Grow calls carry the same peer ranks.
			time.Sleep(50 * time.Millisecond)
			continue
		}
		trace("growing with joiners %v", missing)
		nc, gerr := sc.GrowWithin(args, elasticGrowWindow)
		trace("grow result: size=%d err=%v", growSize(nc), gerr)
		if nc != nil {
			// Even with a failed opening barrier the grown communicator
			// is the new world; the next collective re-detects the death.
			return nc, nil
		}
		// The abort was agreed; now agree on WHY so every survivor makes
		// the same next move: a non-zero mask means the group itself lost
		// a member (re-shrink), zero means only the joiner side misfired
		// (stale record, slow boot, replacement died again) — re-poll.
		mask, aerr := sc.Agree(0)
		if aerr != nil {
			return nil, fmt.Errorf("post-abort agreement: %w (grow: %v)", aerr, gerr)
		}
		if mask != 0 {
			_ = sc.Revoke()
			ns, serr := sc.Shrink()
			if serr != nil {
				return nil, fmt.Errorf("re-shrink: %w", serr)
			}
			sc = ns
		}
	}
}

func growSize(c *core.Comm) int {
	if c == nil {
		return 0
	}
	return c.Size()
}

func taskElastic(w *World) error {
	in := w.Info
	trace := func(format string, args ...any) {
		if os.Getenv(EnvDebug) != "" {
			fmt.Fprintf(os.Stderr, "%s rank %d task: %s\n",
				time.Now().Format("15:04:05.000"), in.Rank, fmt.Sprintf(format, args...))
		}
	}
	iters, err := envInt(EnvElasticIters, 30)
	if err != nil {
		return err
	}
	victim, err := envInt(EnvElasticVictim, 1)
	if err != nil {
		return err
	}
	killMode := os.Getenv(EnvElasticKill)
	if killMode == "" {
		killMode = "self"
	}
	var spin time.Duration
	if v := os.Getenv(EnvElasticSpin); v != "" {
		if spin, err = time.ParseDuration(v); err != nil {
			return fmt.Errorf("launch: %s=%q: %w", EnvElasticSpin, v, err)
		}
	}
	if victim >= in.Size {
		victim = in.Size - 1
	}
	// The self-kill lands with a third of the loop still to go: late
	// enough that steady-state traffic is flowing, early enough that the
	// regrown world still has real iterations to verify.
	killAt := int64(iters - iters/3)

	var (
		comm       *core.Comm
		remaining  int64
		recoveries int
		detectMs   float64
		recoverMs  float64
	)

	if w.Rejoined() {
		deadline := time.Now().Add(elasticRejoinBudget)
		for {
			trace("join window opens")
			comm, err = w.Join(elasticJoinWindow)
			trace("join window closed: comm=%v err=%v", comm != nil, err)
			if comm != nil {
				break
			}
			if err != nil && !elasticRecoverable(err) && !errors.Is(err, ucp.ErrTimeout) {
				return fmt.Errorf("rejoin: %w", err)
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("rejoin budget exhausted: %w", err)
			}
		}
	} else {
		comm = w.Comm
		remaining = int64(iters)
	}

	// A fresh joiner has no iteration count yet; the post-recovery
	// consensus broadcast supplies it.
	needSync := w.Rejoined()
	for remaining > 0 || needSync {
		if needSync {
			// Consensus on the remaining count via Allreduce-max: a fresh
			// joiner contributes 0, survivors contribute counts that may
			// differ by one (a collective can succeed on some ranks and
			// fail on others); the max re-aligns everyone without having
			// to know which ranks are survivors.
			send, recv := make([]byte, 8), make([]byte, 8)
			layout.PutI64(send, 0, remaining)
			if err := comm.Allreduce(send, recv, 1, core.FromDDT(ddt.Int64), core.OpMaxInt64); err != nil {
				if !elasticRecoverable(err) {
					return err
				}
				if comm, err = elasticRecover(w, comm); err != nil {
					return err
				}
				recoveries++
				continue
			}
			remaining = layout.I64(recv, 0)
			needSync = false
			continue
		}
		if killMode == "self" && in.Epoch == 0 && in.Rank == victim && remaining == killAt {
			// Die mid-collective, not between collectives: the survivors
			// must cope with a peer that vanishes while the schedule is
			// in flight.
			go func() {
				time.Sleep(500 * time.Microsecond)
				_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}()
		}
		t0 := time.Now()
		err := elasticAllreduce(comm)
		if err == nil {
			remaining--
			if spin > 0 {
				time.Sleep(spin)
			}
			continue
		}
		if !elasticRecoverable(err) {
			return err
		}
		if detectMs == 0 {
			detectMs = float64(time.Since(t0).Microseconds()) / 1000
		}
		r0 := time.Now()
		if comm, err = elasticRecover(w, comm); err != nil {
			return err
		}
		if recoverMs == 0 {
			recoverMs = float64(time.Since(r0).Microseconds()) / 1000
		}
		recoveries++
		needSync = true
	}

	// Quiesce: the job only counts as recovered if the final
	// communicator is back at the original world size and functional.
	for {
		err := comm.Barrier()
		if err == nil && comm.Size() == in.Size {
			break
		}
		if err != nil && !elasticRecoverable(err) {
			return err
		}
		if comm, err = elasticRecover(w, comm); err != nil {
			return err
		}
		recoveries++
	}

	if out := os.Getenv(EnvElasticOut); out != "" && comm.Rank() == 0 {
		rep := elasticReport{
			Transport:  in.Transport,
			Ranks:      in.Size,
			Iters:      iters,
			Recoveries: recoveries,
			DetectMs:   detectMs,
			RecoverMs:  recoverMs,
		}
		b, err := json.Marshal(rep)
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("rank %d: elastic done (size %d, %d recoveries)\n", comm.Rank(), comm.Size(), recoveries)
	return nil
}
