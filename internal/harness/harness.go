// Package harness drives the paper's evaluation: pingpong latency and
// streaming bandwidth measurements (OSU-micro-benchmark style, as in
// Section V), statistics over repeated runs (the paper averages four runs
// and shows error bars), and generators that reproduce every figure and
// table of the evaluation section as printable series.
package harness

import (
	"fmt"
	"io"
	"math"
	"time"

	"mpicd/internal/core"
)

// Op is one transfer method bound to concrete buffers: the unit every
// measurement drives. Send and Recv move one message; Bytes is the
// payload size used for bandwidth accounting.
type Op struct {
	Name  string
	Bytes int64
	Send  func(c *core.Comm, dst, tag int) error
	Recv  func(c *core.Comm, src, tag int) error
}

// Config scales measurement effort.
type Config struct {
	// Runs is the number of repeated measurements (the paper uses 4).
	Runs int
	// Warmup iterations before timing starts.
	Warmup int
	// Iters timed iterations per run.
	Iters int
	// MaxBytes caps sweep sizes so quick runs stay quick.
	MaxBytes int64
	// Opt configures the in-process world.
	Opt core.Options
}

// Quick is the configuration used by tests and -short runs.
var Quick = Config{Runs: 1, Warmup: 2, Iters: 6, MaxBytes: 1 << 18}

// Full approximates the paper's methodology (4 runs, error bars).
var Full = Config{Runs: 4, Warmup: 10, Iters: 60, MaxBytes: 1 << 24}

// Stats returns the mean and standard deviation of runs.
func Stats(runs []float64) (mean, dev float64) {
	if len(runs) == 0 {
		return 0, 0
	}
	for _, v := range runs {
		mean += v
	}
	mean /= float64(len(runs))
	if len(runs) > 1 {
		for _, v := range runs {
			dev += (v - mean) * (v - mean)
		}
		dev = math.Sqrt(dev / float64(len(runs)-1))
	}
	return mean, dev
}

// MeasureLatency returns the mean half-round-trip latency of op in
// microseconds, with its spread over cfg.Runs runs.
func MeasureLatency(cfg Config, op Op) (mean, dev float64, err error) {
	runs := make([]float64, 0, cfg.Runs)
	err = core.Run(2, cfg.Opt, func(c *core.Comm) error {
		peer := 1 - c.Rank()
		for r := 0; r < cfg.Runs; r++ {
			if err := c.Barrier(); err != nil {
				return err
			}
			var start time.Time
			for i := 0; i < cfg.Warmup+cfg.Iters; i++ {
				if i == cfg.Warmup && c.Rank() == 0 {
					start = time.Now()
				}
				if c.Rank() == 0 {
					if err := op.Send(c, peer, 1); err != nil {
						return err
					}
					if err := op.Recv(c, peer, 2); err != nil {
						return err
					}
				} else {
					if err := op.Recv(c, peer, 1); err != nil {
						return err
					}
					if err := op.Send(c, peer, 2); err != nil {
						return err
					}
				}
			}
			if c.Rank() == 0 {
				elapsed := time.Since(start)
				runs = append(runs, elapsed.Seconds()/float64(cfg.Iters)/2*1e6)
			}
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	mean, dev = Stats(runs)
	return mean, dev, nil
}

// MeasureBandwidth returns the mean streaming bandwidth of op in MB/s
// (10^6 bytes per second), with its spread: the sender streams Iters
// messages, the receiver acknowledges the batch.
func MeasureBandwidth(cfg Config, op Op) (mean, dev float64, err error) {
	runs := make([]float64, 0, cfg.Runs)
	ack := make([]byte, 1)
	err = core.Run(2, cfg.Opt, func(c *core.Comm) error {
		peer := 1 - c.Rank()
		batch := func(n int) error {
			for i := 0; i < n; i++ {
				if c.Rank() == 0 {
					if err := op.Send(c, peer, 1); err != nil {
						return err
					}
				} else {
					if err := op.Recv(c, peer, 1); err != nil {
						return err
					}
				}
			}
			// Close the batch with an ack so timing covers delivery.
			if c.Rank() == 0 {
				_, err := c.Recv(ack, 1, core.TypeBytes, peer, 3)
				return err
			}
			return c.Send(ack, 1, core.TypeBytes, peer, 3)
		}
		for r := 0; r < cfg.Runs; r++ {
			if err := c.Barrier(); err != nil {
				return err
			}
			if err := batch(cfg.Warmup); err != nil {
				return err
			}
			start := time.Now()
			if err := batch(cfg.Iters); err != nil {
				return err
			}
			if c.Rank() == 0 {
				elapsed := time.Since(start).Seconds()
				runs = append(runs, float64(op.Bytes)*float64(cfg.Iters)/elapsed/1e6)
			}
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	mean, dev = Stats(runs)
	return mean, dev, nil
}

// Point is one measured value at an x position.
type Point struct {
	X   int64
	Val float64
	Dev float64
}

// Series is one line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is one reproduced plot: labelled series over a common x axis.
type Figure struct {
	ID     string // e.g. "fig1"
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// Add appends a point to the named series, creating it on first use.
func (f *Figure) Add(label string, p Point) {
	for _, s := range f.Series {
		if s.Label == label {
			s.Points = append(s.Points, p)
			return
		}
	}
	f.Series = append(f.Series, &Series{Label: label, Points: []Point{p}})
}

// Print renders the figure as an aligned table: one row per x value, one
// column per series ("value ±dev").
func (f *Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "# x: %s, y: %s\n", f.XLabel, f.YLabel)
	// Collect the x axis (union over series, in first-seen order).
	var xs []int64
	seen := map[int64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	fmt.Fprintf(w, "%12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, " %22s", s.Label)
	}
	fmt.Fprintln(w)
	for _, x := range xs {
		fmt.Fprintf(w, "%12d", x)
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%.2f ±%.2f", p.Val, p.Dev)
					break
				}
			}
			fmt.Fprintf(w, " %22s", cell)
		}
		fmt.Fprintln(w)
	}
}

// Sizes returns powers of two in [lo, hi] capped at max (0 = no cap).
func Sizes(lo, hi, max int64) []int64 {
	var out []int64
	for s := lo; s <= hi; s *= 2 {
		if max > 0 && s > max {
			break
		}
		out = append(out, s)
	}
	return out
}
