package harness

import (
	"fmt"
	"io"

	"mpicd/internal/core"
	"mpicd/internal/ddtbench"
	"mpicd/internal/serial"
	"mpicd/internal/workloads"
)

// Table is a row/column result (Figure 10 bars, Table I).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    []TableRow
}

// TableRow is one table line.
type TableRow struct {
	Name  string
	Cells []string
}

// Print renders the table aligned.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s\n", t.ID, t.Title)
	width := 12
	for _, r := range t.Rows {
		if len(r.Name) > width {
			width = len(r.Name)
		}
	}
	fmt.Fprintf(w, "%-*s", width, "")
	for _, col := range t.Columns {
		fmt.Fprintf(w, " %20s", col)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-*s", width, r.Name)
		for _, cell := range r.Cells {
			fmt.Fprintf(w, " %20s", cell)
		}
		fmt.Fprintln(w)
	}
}

// --- double-vec ops (Figures 1 and 2) ---------------------------------------

// DoubleVecOp builds the op for one (method, total size, subvec size).
func DoubleVecOp(method string, total, subvec int) Op {
	send := workloads.NewDoubleVec(total, subvec, 1)
	bytes := int64(workloads.DoubleVecBytes(send))
	switch method {
	case "custom":
		dt := workloads.DoubleVecCustom()
		return Op{
			Name:  method,
			Bytes: bytes,
			Send:  func(c *core.Comm, dst, tag int) error { return c.Send(send, 1, dt, dst, tag) },
			Recv: func(c *core.Comm, src, tag int) error {
				var recv [][]byte
				_, err := c.Recv(&recv, 1, dt, src, tag)
				return err
			},
		}
	case "manual-pack":
		scratch := make([]byte, workloads.PackedDoubleVecSize(send))
		return Op{
			Name:  method,
			Bytes: bytes,
			Send: func(c *core.Comm, dst, tag int) error {
				workloads.PackDoubleVec(send, scratch)
				return c.Send(scratch, -1, core.TypeBytes, dst, tag)
			},
			Recv: func(c *core.Comm, src, tag int) error {
				// Dynamic type: the receiver probes for the size like real
				// bindings do, then allocates and unpacks.
				m, err := c.Mprobe(src, tag)
				if err != nil {
					return err
				}
				buf := make([]byte, m.Bytes)
				if _, err := c.MRecv(m, buf, -1, core.TypeBytes); err != nil {
					return err
				}
				_, err = workloads.UnpackDoubleVec(buf)
				return err
			},
		}
	case "rsmpi-bytes-baseline":
		flat := make([]byte, total)
		rflat := make([]byte, total)
		return Op{
			Name:  method,
			Bytes: int64(total),
			Send:  func(c *core.Comm, dst, tag int) error { return c.Send(flat, -1, core.TypeBytes, dst, tag) },
			Recv: func(c *core.Comm, src, tag int) error {
				_, err := c.Recv(rflat, -1, core.TypeBytes, src, tag)
				return err
			},
		}
	}
	panic("harness: unknown double-vec method " + method)
}

// Fig1 reproduces Figure 1: double-vec latency over message size, one
// custom line per subvector size, plus manual-pack and the raw-bytes
// baseline.
func Fig1(cfg Config) (*Figure, error) {
	f := &Figure{
		ID:     "fig1",
		Title:  "Latency, double-vector type, varying subvector size",
		XLabel: "bytes",
		YLabel: "latency (us)",
	}
	sizes := Sizes(64, 1<<20, cfg.MaxBytes)
	for _, size := range sizes {
		for _, sub := range []int{64, 256, 1024, 4096} {
			op := DoubleVecOp("custom", int(size), sub)
			mean, dev, err := MeasureLatency(cfg, op)
			if err != nil {
				return nil, err
			}
			f.Add(fmt.Sprintf("custom-sub%d", sub), Point{X: size, Val: mean, Dev: dev})
		}
		for _, m := range []string{"manual-pack", "rsmpi-bytes-baseline"} {
			op := DoubleVecOp(m, int(size), 1024)
			mean, dev, err := MeasureLatency(cfg, op)
			if err != nil {
				return nil, err
			}
			f.Add(m, Point{X: size, Val: mean, Dev: dev})
		}
	}
	return f, nil
}

// Fig2 reproduces Figure 2: double-vec bandwidth with 1024-byte
// subvectors.
func Fig2(cfg Config) (*Figure, error) {
	f := &Figure{
		ID:     "fig2",
		Title:  "Bandwidth, double-vector type, subvector size 1024 B",
		XLabel: "bytes",
		YLabel: "bandwidth (MB/s)",
	}
	for _, size := range Sizes(1<<10, 1<<22, cfg.MaxBytes) {
		for _, m := range []string{"custom", "manual-pack", "rsmpi-bytes-baseline"} {
			op := DoubleVecOp(m, int(size), 1024)
			mean, dev, err := MeasureBandwidth(cfg, op)
			if err != nil {
				return nil, err
			}
			f.Add(m, Point{X: size, Val: mean, Dev: dev})
		}
	}
	return f, nil
}

// --- struct type ops (Figures 3-7) -------------------------------------------

// structSpec abstracts over the three paper struct types.
type structSpec struct {
	name    string
	extent  int
	packed  int
	fill    func(img []byte, count int, seed int32)
	pack    func(img []byte, count int, dst []byte) int
	unpack  func(src []byte, img []byte, count int)
	custom  func() *core.Datatype
	derived func() *core.Datatype
	// goDerive is the TypeOf[T]-derived equivalent of derived: same wire
	// format and — by plan interning — the same compiled plan, built from
	// the Go mirror struct instead of a hand-written constructor tree.
	goDerive func() *core.Datatype
}

var structVecSpec = structSpec{
	name:     "struct-vec",
	extent:   workloads.StructVecExtent,
	packed:   workloads.StructVecPacked,
	fill:     workloads.FillStructVec,
	pack:     workloads.PackStructVec,
	unpack:   workloads.UnpackStructVec,
	custom:   workloads.StructVecCustom,
	derived:  func() *core.Datatype { return core.FromDDT(workloads.StructVecType()) },
	goDerive: func() *core.Datatype { return core.FromDDT(workloads.StructVecDerived()) },
}

var structSimpleSpec = structSpec{
	name:     "struct-simple",
	extent:   workloads.StructSimpleExtent,
	packed:   workloads.StructSimplePacked,
	fill:     workloads.FillStructSimple,
	pack:     workloads.PackStructSimple,
	unpack:   workloads.UnpackStructSimple,
	custom:   workloads.StructSimpleCustom,
	derived:  func() *core.Datatype { return core.FromDDT(workloads.StructSimpleType()) },
	goDerive: func() *core.Datatype { return core.FromDDT(workloads.StructSimpleDerived()) },
}

var structSimpleNoGapSpec = structSpec{
	name:     "struct-simple-no-gap",
	extent:   workloads.StructSimpleNoGapExtent,
	packed:   workloads.StructSimpleNoGapPacked,
	fill:     workloads.FillStructSimpleNoGap,
	pack:     workloads.PackStructSimpleNoGap,
	unpack:   workloads.UnpackStructSimpleNoGap,
	custom:   workloads.StructSimpleNoGapCustom,
	derived:  func() *core.Datatype { return core.FromDDT(workloads.StructSimpleNoGapType()) },
	goDerive: func() *core.Datatype { return core.FromDDT(workloads.StructSimpleNoGapDerived()) },
}

// StructOp builds the op for one (spec, method, element count).
func StructOp(spec structSpec, method string, count int) Op {
	img := make([]byte, count*spec.extent)
	spec.fill(img, count, 11)
	rimg := make([]byte, count*spec.extent)
	bytes := int64(count * spec.packed)
	switch method {
	case "custom":
		dt := spec.custom()
		return Op{
			Name:  method,
			Bytes: bytes,
			Send:  func(c *core.Comm, dst, tag int) error { return c.Send(img, int64(count), dt, dst, tag) },
			Recv: func(c *core.Comm, src, tag int) error {
				_, err := c.Recv(rimg, int64(count), dt, src, tag)
				return err
			},
		}
	case "packed":
		sscratch := make([]byte, count*spec.packed)
		rscratch := make([]byte, count*spec.packed)
		return Op{
			Name:  method,
			Bytes: bytes,
			Send: func(c *core.Comm, dst, tag int) error {
				spec.pack(img, count, sscratch)
				return c.Send(sscratch, -1, core.TypeBytes, dst, tag)
			},
			Recv: func(c *core.Comm, src, tag int) error {
				if _, err := c.Recv(rscratch, -1, core.TypeBytes, src, tag); err != nil {
					return err
				}
				spec.unpack(rscratch, rimg, count)
				return nil
			},
		}
	case "rsmpi":
		dt := spec.derived()
		return Op{
			Name:  method,
			Bytes: bytes,
			Send:  func(c *core.Comm, dst, tag int) error { return c.Send(img, int64(count), dt, dst, tag) },
			Recv: func(c *core.Comm, src, tag int) error {
				_, err := c.Recv(rimg, int64(count), dt, src, tag)
				return err
			},
		}
	case "derive":
		dt := spec.goDerive()
		return Op{
			Name:  method,
			Bytes: bytes,
			Send:  func(c *core.Comm, dst, tag int) error { return c.Send(img, int64(count), dt, dst, tag) },
			Recv: func(c *core.Comm, src, tag int) error {
				_, err := c.Recv(rimg, int64(count), dt, src, tag)
				return err
			},
		}
	}
	panic("harness: unknown struct method " + method)
}

// normalizeStructMethod maps CLI spellings onto the figure labels.
func normalizeStructMethod(m string) string {
	if m == "manual-pack" {
		return "packed"
	}
	return m
}

// StructSimpleOp builds a struct-simple op carrying roughly size payload
// bytes (rounded to whole elements).
func StructSimpleOp(method string, size int) Op {
	count := size / workloads.StructSimplePacked
	if count < 1 {
		count = 1
	}
	return StructOp(structSimpleSpec, normalizeStructMethod(method), count)
}

// StructVecOp builds a struct-vec op carrying roughly size payload bytes.
func StructVecOp(method string, size int) Op {
	count := size / workloads.StructVecPacked
	if count < 1 {
		count = 1
	}
	return StructOp(structVecSpec, normalizeStructMethod(method), count)
}

// StructSimpleNoGapOp builds a struct-simple-no-gap op carrying roughly
// size payload bytes.
func StructSimpleNoGapOp(method string, size int) Op {
	count := size / workloads.StructSimpleNoGapPacked
	if count < 1 {
		count = 1
	}
	return StructOp(structSimpleNoGapSpec, normalizeStructMethod(method), count)
}

// PickleOpSingleArray builds a Figure 8 op: one array of size bytes.
func PickleOpSingleArray(method string, size int64) Op {
	return PickleOp(method, serial.NewFloat64Array(int(size)/8, 5), size)
}

// PickleOpComplexObject builds a Figure 9 op: 128-KiB arrays summing to
// size bytes, wrapped with small metadata.
func PickleOpComplexObject(method string, size int64) Op {
	const arrayBytes = 128 * 1024
	arrays := int(size) / arrayBytes
	if arrays < 1 {
		arrays = 1
	}
	list := make([]any, arrays)
	for i := range list {
		list[i] = serial.NewFloat64Array(arrayBytes/8, byte(i+1))
	}
	obj := map[string]any{"arrays": list, "meta": "complex-object", "step": int64(7)}
	return PickleOp(method, obj, size)
}

// structFigure sweeps counts for one spec and measurement kind.
func structFigure(cfg Config, id, title string, spec structSpec, bandwidth bool, minCount int) (*Figure, error) {
	yl := "latency (us)"
	if bandwidth {
		yl = "bandwidth (MB/s)"
	}
	f := &Figure{ID: id, Title: title, XLabel: "bytes", YLabel: yl}
	for count := minCount; ; count *= 2 {
		size := int64(count * spec.packed)
		if size > cfg.MaxBytes {
			break
		}
		for _, m := range []string{"custom", "packed", "rsmpi", "derive"} {
			op := StructOp(spec, m, count)
			var mean, dev float64
			var err error
			if bandwidth {
				mean, dev, err = MeasureBandwidth(cfg, op)
			} else {
				mean, dev, err = MeasureLatency(cfg, op)
			}
			if err != nil {
				return nil, err
			}
			f.Add(m, Point{X: size, Val: mean, Dev: dev})
		}
	}
	return f, nil
}

// Fig3 reproduces Figure 3: struct-vec latency.
func Fig3(cfg Config) (*Figure, error) {
	return structFigure(cfg, "fig3", "Latency, struct-vec type", structVecSpec, false, 1)
}

// Fig4 reproduces Figure 4: struct-vec bandwidth.
func Fig4(cfg Config) (*Figure, error) {
	return structFigure(cfg, "fig4", "Bandwidth, struct-vec type", structVecSpec, true, 4)
}

// Fig5 reproduces Figure 5: struct-simple latency (the gapped struct the
// derived-datatype engine handles poorly).
func Fig5(cfg Config) (*Figure, error) {
	return structFigure(cfg, "fig5", "Latency, struct-simple type", structSimpleSpec, false, 1)
}

// Fig6 reproduces Figure 6: struct-simple-no-gap latency (contiguous, so
// the derived-datatype engine matches).
func Fig6(cfg Config) (*Figure, error) {
	return structFigure(cfg, "fig6", "Latency, struct-simple-no-gap type", structSimpleNoGapSpec, false, 1)
}

// Fig7 reproduces Figure 7: struct-simple bandwidth (manual-pack dips at
// the eager/rendezvous switchover; custom does not).
func Fig7(cfg Config) (*Figure, error) {
	return structFigure(cfg, "fig7", "Bandwidth, struct-simple type", structSimpleSpec, true, 1)
}

// --- serialized objects (Figures 8 and 9) ------------------------------------

// PickleOp builds the op for one (method, object) pair.
func PickleOp(method string, obj any, bytes int64) Op {
	switch method {
	case "roofline":
		buf := make([]byte, bytes)
		rbuf := make([]byte, bytes)
		return Op{
			Name:  method,
			Bytes: bytes,
			Send:  func(c *core.Comm, dst, tag int) error { return c.Send(buf, -1, core.TypeBytes, dst, tag) },
			Recv: func(c *core.Comm, src, tag int) error {
				_, err := c.Recv(rbuf, -1, core.TypeBytes, src, tag)
				return err
			},
		}
	case "pickle-basic":
		return Op{
			Name:  method,
			Bytes: bytes,
			Send:  func(c *core.Comm, dst, tag int) error { return serial.SendBasic(c, obj, dst, tag) },
			Recv: func(c *core.Comm, src, tag int) error {
				_, err := serial.RecvBasic(c, src, tag)
				return err
			},
		}
	case "pickle-oob":
		return Op{
			Name:  method,
			Bytes: bytes,
			Send: func(c *core.Comm, dst, tag int) error {
				return serial.SendOOB(c, obj, dst, tag, serial.DefaultThreshold)
			},
			Recv: func(c *core.Comm, src, tag int) error {
				_, err := serial.RecvOOB(c, src, tag)
				return err
			},
		}
	case "pickle-oob-cdt":
		return Op{
			Name:  method,
			Bytes: bytes,
			Send: func(c *core.Comm, dst, tag int) error {
				return serial.SendCDT(c, obj, dst, tag, serial.DefaultThreshold)
			},
			Recv: func(c *core.Comm, src, tag int) error {
				_, err := serial.RecvCDT(c, src, tag)
				return err
			},
		}
	}
	panic("harness: unknown pickle method " + method)
}

var pickleMethods = []string{"roofline", "pickle-basic", "pickle-oob", "pickle-oob-cdt"}

// Fig8 reproduces Figure 8: pingpong bandwidth of a single NumPy-like
// array of the given size.
func Fig8(cfg Config) (*Figure, error) {
	f := &Figure{
		ID:     "fig8",
		Title:  "Pingpong bandwidth, single array object",
		XLabel: "bytes",
		YLabel: "bandwidth (MB/s)",
	}
	for _, size := range Sizes(1<<10, 1<<24, cfg.MaxBytes) {
		obj := serial.NewFloat64Array(int(size)/8, 5)
		for _, m := range pickleMethods {
			mean, dev, err := MeasureBandwidth(cfg, PickleOp(m, obj, size))
			if err != nil {
				return nil, err
			}
			f.Add(m, Point{X: size, Val: mean, Dev: dev})
		}
	}
	return f, nil
}

// Fig9 reproduces Figure 9: pingpong bandwidth of a complex object made
// of 128-KiB arrays summing to the x-axis size.
func Fig9(cfg Config) (*Figure, error) {
	f := &Figure{
		ID:     "fig9",
		Title:  "Pingpong bandwidth, complex object of 128 KiB arrays",
		XLabel: "bytes",
		YLabel: "bandwidth (MB/s)",
	}
	const arrayBytes = 128 * 1024
	lo := int64(arrayBytes)
	if cfg.MaxBytes < lo {
		lo = cfg.MaxBytes
	}
	for _, size := range Sizes(lo, 1<<24, cfg.MaxBytes) {
		arrays := int(size) / arrayBytes
		per := arrayBytes
		if arrays == 0 {
			arrays = 1
			per = int(size)
		}
		list := make([]any, arrays)
		for i := range list {
			list[i] = serial.NewFloat64Array(per/8, byte(i+1))
		}
		obj := map[string]any{"arrays": list, "meta": "complex-object", "step": int64(7)}
		for _, m := range pickleMethods {
			mean, dev, err := MeasureBandwidth(cfg, PickleOp(m, obj, size))
			if err != nil {
				return nil, err
			}
			f.Add(m, Point{X: size, Val: mean, Dev: dev})
		}
	}
	return f, nil
}

// --- DDTBench (Figure 10, Table I) -------------------------------------------

// DDTBenchOp builds the op for one (kernel instance, method).
func DDTBenchOp(in *ddtbench.Instance, m ddtbench.Method) (Op, error) {
	img := in.NewImage(9)
	rimg := make([]byte, in.ImageLen)
	send, err := ddtbench.NewEndpoint(in, m)
	if err != nil {
		return Op{}, err
	}
	recv, err := ddtbench.NewEndpoint(in, m)
	if err != nil {
		return Op{}, err
	}
	return Op{
		Name:  string(m),
		Bytes: int64(in.Packed),
		Send:  func(c *core.Comm, dst, tag int) error { return send.Send(c, img, dst, tag) },
		Recv:  func(c *core.Comm, src, tag int) error { return recv.Recv(c, rimg, src, tag) },
	}, nil
}

// Fig10Methods is the column order of the Figure 10 table.
var Fig10Methods = []ddtbench.Method{
	ddtbench.MethodReference,
	ddtbench.MethodDDT,
	ddtbench.MethodDDTPack,
	ddtbench.MethodManualPack,
	ddtbench.MethodCustomPack,
	ddtbench.MethodCustomCoro,
	ddtbench.MethodCustomRegions,
}

// Fig10 reproduces Figure 10: DDTBench bandwidth per kernel and method
// (empty cells where a method does not apply). scale sets the exchange
// size (1 is a few hundred KiB packed).
func Fig10(cfg Config, scale int) (*Table, error) {
	t := &Table{
		ID:    "fig10",
		Title: fmt.Sprintf("DDTBench bandwidth in MB/s (scale %d)", scale),
	}
	for _, m := range Fig10Methods {
		t.Columns = append(t.Columns, string(m))
	}
	for _, k := range ddtbench.All {
		in := k.Instance(scale)
		row := TableRow{Name: k.Name}
		for _, m := range Fig10Methods {
			if m == ddtbench.MethodCustomRegions && !k.Regions {
				row.Cells = append(row.Cells, "-")
				continue
			}
			op, err := DDTBenchOp(in, m)
			if err != nil {
				return nil, err
			}
			mean, dev, err := MeasureBandwidth(cfg, op)
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, fmt.Sprintf("%.1f ±%.1f", mean, dev))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// TableI reproduces Table I: the benchmark characteristics.
func TableI() *Table {
	t := &Table{
		ID:      "tableI",
		Title:   "Benchmark characteristics",
		Columns: []string{"MPI Datatypes", "Loop Structure", "Memory Regions"},
	}
	for _, k := range ddtbench.All {
		reg := ""
		if k.Regions {
			reg = "yes"
		}
		t.Rows = append(t.Rows, TableRow{Name: k.Name, Cells: []string{k.Datatypes, k.Loops, reg}})
	}
	return t
}
