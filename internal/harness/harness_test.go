package harness

import (
	"bytes"
	"strings"
	"testing"

	"mpicd/internal/core"
	"mpicd/internal/ddtbench"
)

// tiny is a minimal config so figure generators stay fast under test.
var tiny = Config{Runs: 2, Warmup: 1, Iters: 3, MaxBytes: 1 << 13}

func TestStats(t *testing.T) {
	mean, dev := Stats([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Fatalf("mean = %v", mean)
	}
	if dev < 2.0 || dev > 2.2 { // sample stddev of that set is ~2.14
		t.Fatalf("dev = %v", dev)
	}
	if m, d := Stats(nil); m != 0 || d != 0 {
		t.Fatal("empty stats")
	}
	if m, d := Stats([]float64{3}); m != 3 || d != 0 {
		t.Fatal("single-run stats")
	}
}

func TestSizes(t *testing.T) {
	got := Sizes(64, 1<<20, 256)
	if len(got) != 3 || got[0] != 64 || got[2] != 256 {
		t.Fatalf("Sizes = %v", got)
	}
	if got := Sizes(8, 8, 0); len(got) != 1 {
		t.Fatalf("uncapped Sizes = %v", got)
	}
}

func TestMeasureLatencySanity(t *testing.T) {
	op := PickleOp("roofline", nil, 512)
	mean, _, err := MeasureLatency(tiny, op)
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 || mean > 1e6 {
		t.Fatalf("latency = %v us", mean)
	}
}

func TestMeasureBandwidthSanity(t *testing.T) {
	op := PickleOp("roofline", nil, 64*1024)
	mean, _, err := MeasureBandwidth(tiny, op)
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 {
		t.Fatalf("bandwidth = %v MB/s", mean)
	}
}

func TestFigurePrint(t *testing.T) {
	f := &Figure{ID: "figX", Title: "demo", XLabel: "bytes", YLabel: "us"}
	f.Add("a", Point{X: 64, Val: 1.5, Dev: 0.1})
	f.Add("a", Point{X: 128, Val: 2.5, Dev: 0.2})
	f.Add("b", Point{X: 64, Val: 3.5, Dev: 0.3})
	var buf bytes.Buffer
	f.Print(&buf)
	out := buf.String()
	for _, want := range []string{"figX", "bytes", "a", "b", "1.50", "3.50", "128"} {
		if !strings.Contains(out, want) {
			t.Fatalf("print output missing %q:\n%s", want, out)
		}
	}
}

func TestTablePrint(t *testing.T) {
	tb := TableI()
	var buf bytes.Buffer
	tb.Print(&buf)
	out := buf.String()
	for _, want := range []string{"LAMMPS", "MILC", "WRF_y_vec", "strided vector", "yes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q", want)
		}
	}
}

func TestAllOpsTransfer(t *testing.T) {
	// Every op used by the figures must move a message without error.
	ops := []Op{
		DoubleVecOp("custom", 4096, 256),
		DoubleVecOp("manual-pack", 4096, 256),
		DoubleVecOp("rsmpi-bytes-baseline", 4096, 256),
		StructOp(structVecSpec, "custom", 2),
		StructOp(structVecSpec, "packed", 2),
		StructOp(structVecSpec, "rsmpi", 2),
		StructOp(structVecSpec, "derive", 2),
		StructOp(structSimpleSpec, "custom", 10),
		StructOp(structSimpleSpec, "packed", 10),
		StructOp(structSimpleSpec, "rsmpi", 10),
		StructOp(structSimpleSpec, "derive", 10),
		StructOp(structSimpleNoGapSpec, "custom", 10),
		StructOp(structSimpleNoGapSpec, "rsmpi", 10),
		StructOp(structSimpleNoGapSpec, "derive", 10),
	}
	for _, m := range pickleMethods {
		ops = append(ops, PickleOp(m, map[string]any{"x": int64(1)}, 16))
	}
	for _, op := range ops {
		op := op
		t.Run(op.Name, func(t *testing.T) {
			err := core.Run(2, core.Options{}, func(c *core.Comm) error {
				if c.Rank() == 0 {
					return op.Send(c, 1, 1)
				}
				return op.Recv(c, 0, 1)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFig5Quick(t *testing.T) {
	f, err := Fig5(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 {
		t.Fatalf("fig5 series = %d", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.Label)
		}
		for _, p := range s.Points {
			if p.Val <= 0 {
				t.Fatalf("series %s has nonpositive latency at %d", s.Label, p.X)
			}
		}
	}
}

func TestFig8Quick(t *testing.T) {
	f, err := Fig8(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 {
		t.Fatalf("fig8 series = %d", len(f.Series))
	}
}

func TestFig10QuickSingleKernel(t *testing.T) {
	// A full Fig10 is slow; drive one kernel/method pair through the
	// table machinery instead.
	in := ddtbench.NASMGy.Instance(1)
	op, err := DDTBenchOp(in, ddtbench.MethodCustomRegions)
	if err != nil {
		t.Fatal(err)
	}
	mean, _, err := MeasureBandwidth(tiny, op)
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 {
		t.Fatalf("bandwidth = %v", mean)
	}
}
