package derive_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"mpicd/internal/derive"
)

// FuzzDeriveDifferential generates random fixed-shape Go struct types
// with reflect.StructOf and checks derivation against an independent
// reflection oracle: the oracle walks the reflect.Type directly and
// copies field bytes out of the memory image, with no knowledge of ddt
// runs or plans. For every generated shape the derived type's extent,
// packed size, pack output and unpack/repack round trip must agree with
// the oracle — and shapes carrying a pointer must fail with the
// ErrUnsupported taxonomy, never mis-pack.
func FuzzDeriveDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6})
	f.Add([]byte{7, 7, 7})          // nested structs
	f.Add([]byte{8, 0, 8, 3, 8, 6}) // arrays of scalars
	f.Add([]byte{9})                // pointer: unsupported
	f.Add([]byte{8, 7, 2, 1})       // array of struct
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, shape []byte) {
		rt, hasPtr := buildShape(&shape, 0)
		if rt == nil {
			t.Skip()
		}
		typ, err := derive.TypeFor(rt)
		if hasPtr {
			if !errors.Is(err, derive.ErrUnsupported) {
				t.Fatalf("pointer-bearing %v derived without taxonomy error (err=%v)", rt, err)
			}
			return
		}
		if err != nil {
			t.Fatalf("derive %v: %v", rt, err)
		}
		if typ.Extent() != int64(rt.Size()) {
			t.Fatalf("%v: extent %d != sizeof %d", rt, typ.Extent(), rt.Size())
		}

		// Random-ish image, deterministic in the shape bytes.
		img := make([]byte, rt.Size())
		x := uint32(2463534242)
		for i := range img {
			x ^= x << 13
			x ^= x >> 17
			x ^= x << 5
			img[i] = byte(x)
		}

		want := oraclePack(rt, img, 0, nil)
		if typ.Size() != int64(len(want)) {
			t.Fatalf("%v: packed size %d, oracle moves %d bytes", rt, typ.Size(), len(want))
		}
		got := make([]byte, typ.PackedSize(1))
		if _, err := typ.Pack(img, 1, got); err != nil {
			t.Fatalf("%v: pack: %v", rt, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%v: derived pack disagrees with the reflection oracle", rt)
		}

		// Unpack into a fresh image and repack: the moved bytes survive.
		rimg := make([]byte, rt.Size())
		if err := typ.Unpack(rimg, 1, got); err != nil {
			t.Fatalf("%v: unpack: %v", rt, err)
		}
		if again := oraclePack(rt, rimg, 0, nil); !bytes.Equal(again, want) {
			t.Fatalf("%v: unpack/repack round trip lost bytes", rt)
		}
	})
}

// scalarKinds are the supported leaf types the fuzzer draws from.
var scalarKinds = []reflect.Type{
	reflect.TypeFor[int8](),
	reflect.TypeFor[uint8](),
	reflect.TypeFor[int16](),
	reflect.TypeFor[int32](),
	reflect.TypeFor[float32](),
	reflect.TypeFor[int64](),
	reflect.TypeFor[float64](),
	reflect.TypeFor[complex128](),
	reflect.TypeFor[bool](),
}

// take consumes the next shape byte, defaulting to 0 when exhausted.
func take(shape *[]byte) byte {
	if len(*shape) == 0 {
		return 0
	}
	b := (*shape)[0]
	*shape = (*shape)[1:]
	return b
}

// buildShape decodes one type from the shape bytes: opcodes 0..6 are
// scalars, 7 is a nested struct, 8 is a fixed array, 9 is a pointer
// (expected-unsupported), everything else wraps around. Depth is bounded
// so reflect.StructOf cannot blow up.
func buildShape(shape *[]byte, depth int) (reflect.Type, bool) {
	op := take(shape)
	if depth >= 3 {
		return scalarKinds[int(op)%len(scalarKinds)], false
	}
	switch {
	case op == 9:
		return reflect.PointerTo(scalarKinds[int(take(shape))%len(scalarKinds)]), true
	case op == 8:
		n := int(take(shape)) % 5 // 0..4 elements; 0 exercises zero-size fields
		elem, ptr := buildShape(shape, depth+1)
		if elem == nil {
			return nil, false
		}
		return reflect.ArrayOf(n, elem), ptr
	case op == 7:
		nf := 1 + int(take(shape))%4
		fields := make([]reflect.StructField, 0, nf)
		hasPtr := false
		for i := 0; i < nf; i++ {
			ft, ptr := buildShape(shape, depth+1)
			if ft == nil {
				return nil, false
			}
			hasPtr = hasPtr || ptr
			fields = append(fields, reflect.StructField{
				Name: string(rune('A' + i)),
				Type: ft,
			})
		}
		return reflect.StructOf(fields), hasPtr
	default:
		return scalarKinds[int(op)%len(scalarKinds)], false
	}
}

// oraclePack is the independent packing oracle: append the bytes of
// every field in declaration order, recursing through arrays and
// structs, skipping nothing but zero-size fields — exactly the wire
// contract derivation promises, computed without ddt.
func oraclePack(rt reflect.Type, img []byte, off int64, dst []byte) []byte {
	switch rt.Kind() {
	case reflect.Array:
		es := int64(rt.Elem().Size())
		for i := 0; i < rt.Len(); i++ {
			dst = oraclePack(rt.Elem(), img, off+int64(i)*es, dst)
		}
		return dst
	case reflect.Struct:
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i)
			if f.Name == "_" {
				continue
			}
			dst = oraclePack(f.Type, img, off+int64(f.Offset), dst)
		}
		return dst
	default: // scalar leaf
		return append(dst, img[off:off+int64(rt.Size())]...)
	}
}
