package derive_test

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"unsafe"

	"mpicd/internal/ddt"
	"mpicd/internal/derive"
	"mpicd/internal/layout"
)

// The acceptance gate's three representative shapes: a padded struct, a
// nested struct with fixed arrays, and a submatrix-bearing struct. Each
// has a hand-built layout/ddt equivalent; the differential contract is
// byte-identical pack output AND one shared cached plan.

// padded is the paper's struct-simple (Listing 7): interior alignment
// gap at bytes 12..16.
type padded struct {
	A, B, C int32
	D       float64
}

// header is a nested struct with trailing padding (size 4, one pad byte).
type header struct {
	Tag  int16
	Flag uint8
}

// nested combines a nested struct, two fixed arrays and tail padding.
type nested struct {
	Hdr  header
	Vals [4]float64
	Ids  [3]int32
}

// matbearing carries a fixed 2-D matrix (the submatrix shape Rows2D
// describes) plus a trailing scalar.
type matbearing struct {
	M   [4][8]float64
	Tag int64
}

func handPadded(t *testing.T) *ddt.Type {
	t.Helper()
	h, err := layout.StructOf(int64(unsafe.Sizeof(padded{})),
		layout.Field{Off: 0, Type: ddt.Int32, Count: 3},
		layout.Field{Off: 16, Type: ddt.Float64},
	)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func handNested(t *testing.T) *ddt.Type {
	t.Helper()
	inner, err := layout.StructOf(int64(unsafe.Sizeof(header{})),
		layout.Field{Off: 0, Type: ddt.Int16},
		layout.Field{Off: 2, Type: ddt.Int8},
	)
	if err != nil {
		t.Fatal(err)
	}
	h, err := layout.StructOf(int64(unsafe.Sizeof(nested{})),
		layout.Field{Off: 0, Type: inner},
		layout.Field{Off: int64(unsafe.Offsetof(nested{}.Vals)), Type: ddt.Float64, Count: 4},
		layout.Field{Off: int64(unsafe.Offsetof(nested{}.Ids)), Type: ddt.Int32, Count: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func handMatbearing(t *testing.T) *ddt.Type {
	t.Helper()
	m, err := layout.Rows2D(4, 8, 8, ddt.Float64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := layout.StructOf(int64(unsafe.Sizeof(matbearing{})),
		layout.Field{Off: 0, Type: m},
		layout.Field{Off: int64(unsafe.Offsetof(matbearing{}.Tag)), Type: ddt.Int64},
	)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// differential asserts the full contract for one (derived, hand-built)
// pair: identical size/extent, byte-identical pack output over a random
// image, a shared interned plan, and a lossless pack/unpack round trip
// of the data runs.
func differential(t *testing.T, name string, derived, hand *ddt.Type, count int64) {
	t.Helper()
	if derived.Size() != hand.Size() || derived.Extent() != hand.Extent() {
		t.Fatalf("%s: derived size/extent %d/%d != hand-built %d/%d",
			name, derived.Size(), derived.Extent(), hand.Size(), hand.Extent())
	}
	if !ddt.Equal(derived, hand) {
		t.Fatalf("%s: derived and hand-built types are not transfer-equivalent", name)
	}
	if derived.Plan() != hand.Plan() {
		t.Fatalf("%s: derived and hand-built types compiled separate plans (same layout must intern to one cache entry)", name)
	}

	rng := rand.New(rand.NewSource(7))
	src := make([]byte, derived.Span(count))
	rng.Read(src)

	got := make([]byte, derived.PackedSize(count))
	want := make([]byte, hand.PackedSize(count))
	if _, err := derived.Pack(src, count, got); err != nil {
		t.Fatalf("%s: derived pack: %v", name, err)
	}
	if _, err := hand.Pack(src, count, want); err != nil {
		t.Fatalf("%s: hand-built pack: %v", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: derived pack output differs from hand-built", name)
	}

	// Round trip: unpacking into a fresh image restores every data byte
	// (gaps excluded by construction).
	back := make([]byte, len(src))
	if err := derived.Unpack(back, count, got); err != nil {
		t.Fatalf("%s: unpack: %v", name, err)
	}
	again := make([]byte, len(got))
	if _, err := derived.Pack(back, count, again); err != nil {
		t.Fatalf("%s: repack: %v", name, err)
	}
	if !bytes.Equal(got, again) {
		t.Fatalf("%s: pack/unpack round trip lost data", name)
	}
}

func TestDeriveDifferentialPadded(t *testing.T) {
	d, err := derive.TypeOf[padded]()
	if err != nil {
		t.Fatal(err)
	}
	if d.Extent() != int64(unsafe.Sizeof(padded{})) {
		t.Fatalf("extent %d != sizeof %d", d.Extent(), unsafe.Sizeof(padded{}))
	}
	if d.Size() != 20 {
		t.Fatalf("packed size %d, want 20 (gap elided)", d.Size())
	}
	differential(t, "padded", d, handPadded(t), 16)
}

func TestDeriveDifferentialNested(t *testing.T) {
	d, err := derive.TypeOf[nested]()
	if err != nil {
		t.Fatal(err)
	}
	differential(t, "nested", d, handNested(t), 9)
}

func TestDeriveDifferentialMatbearing(t *testing.T) {
	d, err := derive.TypeOf[matbearing]()
	if err != nil {
		t.Fatal(err)
	}
	differential(t, "matbearing", d, handMatbearing(t), 5)
}

// TestDeriveValueImage packs an actual Go value (not a synthetic image)
// and checks the field bytes land where the layout accessors expect.
func TestDeriveValueImage(t *testing.T) {
	v := padded{A: 1, B: 2, C: 3, D: 4.5}
	d, err := derive.TypeOf[padded]()
	if err != nil {
		t.Fatal(err)
	}
	img := unsafe.Slice((*byte)(unsafe.Pointer(&v)), unsafe.Sizeof(v))
	out := make([]byte, d.PackedSize(1))
	if _, err := d.Pack(img, 1, out); err != nil {
		t.Fatal(err)
	}
	if layout.I32(out, 0) != 1 || layout.I32(out, 4) != 2 || layout.I32(out, 8) != 3 {
		t.Fatalf("int fields mispacked: % x", out)
	}
	if layout.F64(out, 12) != 4.5 {
		t.Fatalf("float field mispacked: % x", out)
	}

	// And unpack reconstructs the value.
	var r padded
	rimg := unsafe.Slice((*byte)(unsafe.Pointer(&r)), unsafe.Sizeof(r))
	if err := d.Unpack(rimg, 1, out); err != nil {
		t.Fatal(err)
	}
	if r != v {
		t.Fatalf("round trip: got %+v want %+v", r, v)
	}
}

// embedded and unexported fields are part of the memory image, so they
// derive and transfer like named exported fields.
type inner struct {
	X int32
	y int32 // unexported: still data
}

type outer struct {
	inner         // embedded
	_     [4]byte // blank: explicit padding, elided
	Z     float64
}

func TestDeriveEmbeddedUnexportedBlank(t *testing.T) {
	d, err := derive.TypeOf[outer]()
	if err != nil {
		t.Fatal(err)
	}
	// X + y + Z = 16 data bytes; the blank [4]byte is padding.
	if d.Size() != 16 {
		t.Fatalf("packed size %d, want 16", d.Size())
	}
	if d.Extent() != int64(unsafe.Sizeof(outer{})) {
		t.Fatalf("extent %d != sizeof %d", d.Extent(), unsafe.Sizeof(outer{}))
	}
	v := outer{inner: inner{X: 7, y: -9}, Z: 2.25}
	img := unsafe.Slice((*byte)(unsafe.Pointer(&v)), unsafe.Sizeof(v))
	out := make([]byte, d.PackedSize(1))
	if _, err := d.Pack(img, 1, out); err != nil {
		t.Fatal(err)
	}
	var r outer
	rimg := unsafe.Slice((*byte)(unsafe.Pointer(&r)), unsafe.Sizeof(r))
	if err := d.Unpack(rimg, 1, out); err != nil {
		t.Fatal(err)
	}
	if r != v {
		t.Fatalf("round trip: got %+v want %+v", r, v)
	}
}

// TestDeriveScalarsAndArrays covers the scalar width table and fixed
// arrays, including zero-length ones.
func TestDeriveScalarsAndArrays(t *testing.T) {
	if d, err := derive.TypeOf[float64](); err != nil || d.Size() != 8 || !d.Contig() {
		t.Fatalf("float64: %v %+v", err, d)
	}
	if d, err := derive.TypeOf[bool](); err != nil || d.Size() != 1 {
		t.Fatalf("bool: %v", err)
	}
	if d, err := derive.TypeOf[complex128](); err != nil || d.Size() != 16 {
		t.Fatalf("complex128: %v", err)
	}
	if d, err := derive.TypeOf[[12]int16](); err != nil || d.Size() != 24 || !d.Contig() {
		t.Fatalf("[12]int16: %v", err)
	}
	if d, err := derive.TypeOf[[0]int64](); err != nil || d.Size() != 0 {
		t.Fatalf("[0]int64: %v", err)
	}
	if d, err := derive.TypeOf[struct{}](); err != nil || d.Size() != 0 {
		t.Fatalf("struct{}: %v", err)
	}
	type zf struct {
		A int32
		B [0]float64
		C int32
	}
	d, err := derive.TypeOf[zf]()
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 8 {
		t.Fatalf("zero-length array field must pack no bytes, size %d", d.Size())
	}
}

// TestDeriveUnsupported pins the error taxonomy: every pointer-bearing
// or variable-length shape fails with ErrUnsupported and the offending
// field path; nothing mis-packs silently.
func TestDeriveUnsupported(t *testing.T) {
	type hasPtr struct{ P *int32 }
	type hasSlice struct{ S []float64 }
	type hasMap struct{ M map[string]int }
	type hasString struct{ S string }
	type hasIface struct{ I any }
	type hasChan struct{ C chan int }
	type hasFunc struct{ F func() }
	type hasUintptr struct{ U uintptr }
	type hasUnsafe struct{ U unsafe.Pointer }
	type deepPtr struct {
		A int32
		B struct {
			C [2]struct{ D *float64 }
		}
	}
	type unexportedPtr struct {
		A int32
		p *int64 // unexported pointer must still be rejected
	}

	cases := []struct {
		name string
		derv func() (*ddt.Type, error)
		path string
	}{
		{"ptr", func() (*ddt.Type, error) { return derive.TypeOf[hasPtr]() }, ".P"},
		{"slice", func() (*ddt.Type, error) { return derive.TypeOf[hasSlice]() }, ".S"},
		{"map", func() (*ddt.Type, error) { return derive.TypeOf[hasMap]() }, ".M"},
		{"string", func() (*ddt.Type, error) { return derive.TypeOf[hasString]() }, ".S"},
		{"iface", func() (*ddt.Type, error) { return derive.TypeOf[hasIface]() }, ".I"},
		{"chan", func() (*ddt.Type, error) { return derive.TypeOf[hasChan]() }, ".C"},
		{"func", func() (*ddt.Type, error) { return derive.TypeOf[hasFunc]() }, ".F"},
		{"uintptr", func() (*ddt.Type, error) { return derive.TypeOf[hasUintptr]() }, ".U"},
		{"unsafeptr", func() (*ddt.Type, error) { return derive.TypeOf[hasUnsafe]() }, ".U"},
		{"deep", func() (*ddt.Type, error) { return derive.TypeOf[deepPtr]() }, ".B.C[i].D"},
		{"unexported", func() (*ddt.Type, error) { return derive.TypeOf[unexportedPtr]() }, ".p"},
		{"bare-ptr", func() (*ddt.Type, error) { return derive.TypeOf[*int32]() }, ""},
		{"bare-slice", func() (*ddt.Type, error) { return derive.TypeOf[[]int32]() }, ""},
		{"bare-map", func() (*ddt.Type, error) { return derive.TypeOf[map[int]int]() }, ""},
	}
	for _, tc := range cases {
		typ, err := tc.derv()
		if err == nil {
			t.Fatalf("%s: derivation succeeded, want ErrUnsupported (type %v)", tc.name, typ)
		}
		if !errors.Is(err, derive.ErrUnsupported) {
			t.Fatalf("%s: error %v does not wrap ErrUnsupported", tc.name, err)
		}
		if typ != nil {
			t.Fatalf("%s: non-nil type alongside error", tc.name)
		}
		if tc.path != "" && !strings.Contains(err.Error(), tc.path) {
			t.Fatalf("%s: error %q does not name the field path %q", tc.name, err, tc.path)
		}
		// The memoized retry returns the identical taxonomy error.
		_, err2 := tc.derv()
		if !errors.Is(err2, derive.ErrUnsupported) {
			t.Fatalf("%s: memoized error lost taxonomy: %v", tc.name, err2)
		}
	}
}

// TestDeriveMemo pins the amortization contract: repeated derivation
// returns the identical *ddt.Type, and the memo-hit path is zero-alloc.
func TestDeriveMemo(t *testing.T) {
	d1, err := derive.TypeOf[nested]()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := derive.TypeOf[nested]()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("memo did not return the identical type")
	}
	if d3, err := derive.TypeFor(reflect.TypeFor[nested]()); err != nil || d3 != d1 {
		t.Fatalf("TypeFor does not share the TypeOf memo: %v", err)
	}
}

func TestDeriveMemoHitZeroAlloc(t *testing.T) {
	if _, err := derive.TypeOf[nested](); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := derive.TypeOf[nested](); err != nil {
			t.Error(err)
		}
	}); allocs != 0 {
		t.Fatalf("memo-hit TypeOf allocated %.1f times per call, want 0", allocs)
	}
	// The error path is memoized and allocation-free too.
	type bad struct{ P *int }
	if _, err := derive.TypeOf[bad](); err == nil {
		t.Fatal("want error")
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := derive.TypeOf[bad](); err == nil {
			t.Error("want error")
		}
	}); allocs != 0 {
		t.Fatalf("memo-hit error path allocated %.1f times per call, want 0", allocs)
	}
}

// TestDeriveConcurrent hammers the memo from many goroutines (the -race
// CI job turns this into a data-race probe).
func TestDeriveConcurrent(t *testing.T) {
	const workers = 8
	done := make(chan *ddt.Type, workers)
	for i := 0; i < workers; i++ {
		go func() {
			d, err := derive.TypeOf[matbearing]()
			if err != nil {
				t.Error(err)
			}
			done <- d
		}()
	}
	first := <-done
	for i := 1; i < workers; i++ {
		if d := <-done; d != first {
			t.Fatal("concurrent derivations returned distinct types")
		}
	}
}
