package derive

// ResetMemo clears the derivation memo. Tests and benchmarks only: it
// lets first-derivation cost be measured repeatedly and keeps fuzz
// iterations from saturating the memo with throwaway reflect.StructOf
// types.
func ResetMemo() {
	memo.Range(func(k, _ any) bool {
		memo.Delete(k)
		return true
	})
}
