package derive_test

import (
	"reflect"
	"testing"

	"mpicd/internal/ddt"
	"mpicd/internal/derive"
	"mpicd/internal/layout"
	"mpicd/internal/workloads"
)

// The derive ablation (BENCH_derive.json): what one-time derivation
// costs, what the memoized steady state costs, and proof that packing
// through a derived type is indistinguishable from the hand-built
// equivalent — they execute the same interned plan.

// benchParticle is the README quickstart shape: scalar + padding gap +
// two fixed arrays, a run-list plan.
type benchParticle struct {
	ID       int32
	Mass     float64
	Pos, Vel [3]float64
}

// BenchmarkDeriveFirst measures cold derivation: the full reflect walk
// and ddt lowering, memo cleared every iteration.
func BenchmarkDeriveFirst(b *testing.B) {
	rt := reflect.TypeFor[benchParticle]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		derive.ResetMemo()
		if _, err := derive.TypeFor(rt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeriveMemoHit measures the steady state every typed Send
// pays: one lock-free map load, zero allocations.
func BenchmarkDeriveMemoHit(b *testing.B) {
	rt := reflect.TypeFor[benchParticle]()
	if _, err := derive.TypeFor(rt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := derive.TypeFor(rt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHandBuiltConstruct is the baseline derivation replaces:
// assembling the same layout by hand (offsets spelled out) each time.
func BenchmarkHandBuiltConstruct(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := layout.StructOf(64,
			layout.Field{Off: 0, Type: ddt.Int32},
			layout.Field{Off: 8, Type: ddt.Float64},
			layout.Field{Off: 16, Type: ddt.Float64, Count: 3},
			layout.Field{Off: 40, Type: ddt.Float64, Count: 3},
		); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDerivedPack and BenchmarkHandPack pack the same struct-vec
// image through the derived and the hand-built type. Identical numbers
// are the expected result: both types memoize the same interned plan.
func BenchmarkDerivedPack(b *testing.B) { benchPack(b, true) }
func BenchmarkHandPack(b *testing.B)    { benchPack(b, false) }

func benchPack(b *testing.B, derived bool) {
	const count = 64
	typ := workloads.StructVecType()
	if derived {
		typ = workloads.StructVecDerived()
	}
	img := make([]byte, count*workloads.StructVecExtent)
	workloads.FillStructVec(img, count, 3)
	dst := make([]byte, typ.PackedSize(count))
	typ.Plan() // memoize outside the loop
	b.SetBytes(int64(len(dst)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := typ.Pack(img, count, dst); err != nil {
			b.Fatal(err)
		}
	}
}
