// Package derive turns ordinary Go types into derived datatypes: the
// "KaMPIng for Go" front end of the datatype engine. Where package layout
// asks applications to spell out offsets by hand (StructOf, Field{Off: 16,
// ...}), derive reflects a Go struct, fixed-size array or scalar ONCE and
// lowers it to the same ddt constructor tree — struct fields at their
// real unsafe.Offsetof offsets, nested and embedded structs flattened
// recursively, fixed arrays as contiguous repeats, alignment gaps elided
// and trailing padding modeled with Resized to unsafe.Sizeof. Because the
// lowering lands on the canonical run lists of the plan compiler, a
// derived type and its hand-built layout/ddt equivalent hash to the same
// layout and share one compiled plan in the cache: derivation changes
// ergonomics, not the wire format or the pack kernels.
//
// Derivation is memoized per reflect.Type in a sync.Map, so steady-state
// callers (every Send of a derived value) pay one lock-free map load and
// zero allocations. Failed derivations are memoized too: the error
// taxonomy (ErrUnsupported) is part of the contract — pointers, maps,
// slices, strings, channels, funcs and interfaces anywhere in the shape
// (including inside unexported fields) fail loudly with the exact field
// path, and never silently mis-pack.
package derive

import (
	"errors"
	"fmt"
	"reflect"
	"sync"

	"mpicd/internal/ddt"
)

// ErrUnsupported reports a Go type whose memory image cannot be described
// by a fixed derived datatype: anything carrying a pointer (ptr, map,
// slice, string, chan, func, interface, unsafe.Pointer) or a
// platform-pointer-sized uintptr. Errors wrap it for errors.Is and name
// the offending field path.
var ErrUnsupported = errors.New("derive: unsupported Go type")

// memo caches derivation results — successes and failures — per
// reflect.Type. Entries are immutable once stored.
var memo sync.Map // reflect.Type -> *memoEntry

type memoEntry struct {
	typ *ddt.Type
	err error
}

// TypeOf derives the datatype of T (memoized). The common spelling:
//
//	dt, err := derive.TypeOf[Particle]()
func TypeOf[T any]() (*ddt.Type, error) {
	return TypeFor(reflect.TypeFor[T]())
}

// MustTypeOf is TypeOf for shapes the caller knows are supported; it
// panics on derivation errors (init-time type declarations).
func MustTypeOf[T any]() *ddt.Type {
	t, err := TypeOf[T]()
	if err != nil {
		panic(err)
	}
	return t
}

// TypeFor derives the datatype of rt. The first call per reflect.Type
// walks the shape and lowers it to ddt constructors; every later call is
// a single allocation-free sync.Map load returning the same *ddt.Type
// (or the same taxonomy error).
func TypeFor(rt reflect.Type) (*ddt.Type, error) {
	if rt == nil {
		return nil, fmt.Errorf("%w: nil reflect.Type", ErrUnsupported)
	}
	if e, ok := memo.Load(rt); ok {
		ent := e.(*memoEntry)
		return ent.typ, ent.err
	}
	typ, err := lower(rt, rt.String())
	if err == nil && typ.Extent() != int64(rt.Size()) {
		// Defensive: a derived type whose extent disagrees with the Go
		// size would mis-stride arrays of T. Never expected to fire.
		err = fmt.Errorf("derive: internal error: %s extent %d != sizeof %d",
			rt, typ.Extent(), rt.Size())
		typ = nil
	}
	if err != nil {
		typ = nil
	}
	ent, _ := memo.LoadOrStore(rt, &memoEntry{typ: typ, err: err})
	e := ent.(*memoEntry)
	return e.typ, e.err
}

// lower recursively lowers rt to a ddt constructor tree. path names the
// current position for error messages ("main.Particle.Pos[2].X").
func lower(rt reflect.Type, path string) (*ddt.Type, error) {
	switch rt.Kind() {
	case reflect.Bool,
		reflect.Int8, reflect.Uint8,
		reflect.Int16, reflect.Uint16,
		reflect.Int32, reflect.Uint32, reflect.Float32,
		reflect.Int64, reflect.Uint64, reflect.Float64,
		reflect.Int, reflect.Uint,
		reflect.Complex64, reflect.Complex128:
		return scalarBase(rt)

	case reflect.Array:
		elem, err := lower(rt.Elem(), path+"[i]")
		if err != nil {
			return nil, err
		}
		// Go array stride is exactly the element size, which the element's
		// derived extent already equals (struct elements carry their
		// trailing padding through Resized).
		return ddt.Contiguous(rt.Len(), elem)

	case reflect.Struct:
		return lowerStruct(rt, path)

	case reflect.Pointer, reflect.UnsafePointer, reflect.Uintptr,
		reflect.Map, reflect.Slice, reflect.String,
		reflect.Chan, reflect.Func, reflect.Interface:
		return nil, fmt.Errorf("%w: %s at %s (variable-length or pointer-bearing shapes cannot be described by a fixed datatype)",
			ErrUnsupported, rt.Kind(), path)

	default:
		return nil, fmt.Errorf("%w: %s at %s", ErrUnsupported, rt.Kind(), path)
	}
}

// scalarBase maps a fixed-size scalar kind onto the predefined base type
// of its width. Only the width matters to the engine — base types are
// opaque byte runs — so uint32 and float32 share the 4-byte base exactly
// as a hand-built layout would use ddt.Int32 for either.
func scalarBase(rt reflect.Type) (*ddt.Type, error) {
	switch rt.Size() {
	case 1:
		return ddt.Int8, nil
	case 2:
		return ddt.Int16, nil
	case 4:
		return ddt.Int32, nil
	case 8:
		return ddt.Int64, nil
	case 16:
		return ddt.Complex128, nil
	}
	return nil, fmt.Errorf("%w: %d-byte scalar %s", ErrUnsupported, rt.Size(), rt)
}

// lowerStruct lowers a struct: one ddt.Struct field per Go field at its
// reflect offset (embedded and unexported fields included — they are part
// of the memory image and of the wire format), then Resized to the Go
// sizeof so arrays of the struct stride over trailing padding exactly
// like Go arrays do. Interior alignment gaps fall out naturally: runs
// only cover fields.
func lowerStruct(rt reflect.Type, path string) (*ddt.Type, error) {
	n := rt.NumField()
	if n == 0 {
		// A zero-field (or zero-size) struct packs to zero bytes.
		empty, err := ddt.Struct(nil, nil, nil)
		if err != nil {
			return nil, err
		}
		return ddt.Resized(empty, int64(rt.Size()))
	}
	bls := make([]int, 0, n)
	displs := make([]int64, 0, n)
	types := make([]*ddt.Type, 0, n)
	for i := 0; i < n; i++ {
		f := rt.Field(i)
		if f.Name == "_" {
			continue // blank fields are explicit padding: elided like gaps
		}
		ft, err := lower(f.Type, path+"."+f.Name)
		if err != nil {
			return nil, err
		}
		if ft.Size() == 0 {
			continue // zero-size field ([0]T, struct{}): no bytes to move
		}
		bls = append(bls, 1)
		displs = append(displs, int64(f.Offset))
		types = append(types, ft)
	}
	var t *ddt.Type
	var err error
	if len(bls) == 0 {
		t, err = ddt.Struct(nil, nil, nil)
	} else {
		t, err = ddt.Struct(bls, displs, types)
	}
	if err != nil {
		return nil, err
	}
	return ddt.Resized(t, int64(rt.Size()))
}
