package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"mpicd/internal/ddt"
	"mpicd/internal/layout"
	"mpicd/internal/ucp"
)

// Elastic re-admission, in-process: the victim's worker plays the role
// of the respawned process (same fabric rank, fresh matching state after
// the survivors' Revive purge), so the full Grow/JoinWorld handshake
// runs without real process death. Reliable mode is on, as it would be
// in any launched world, so control messages survive the purge windows
// by retransmission.

func growAllreduceCheck(nc *Comm) error {
	const count = 4
	send := make([]byte, 8*count)
	recv := make([]byte, 8*count)
	for i := 0; i < count; i++ {
		layout.PutI64(send, i*8, int64(nc.Rank()+1)*100+int64(i))
	}
	if err := nc.Allreduce(send, recv, count, FromDDT(ddt.Int64), OpSumInt64); err != nil {
		return fmt.Errorf("rank %d: Allreduce on grown comm: %w", nc.Rank(), err)
	}
	for i := 0; i < count; i++ {
		var want int64
		for r := 0; r < nc.Size(); r++ {
			want += int64(r+1)*100 + int64(i)
		}
		if got := layout.I64(recv, i*8); got != want {
			return fmt.Errorf("rank %d: grown sum[%d] = %d, want %d", nc.Rank(), i, got, want)
		}
	}
	return nil
}

// TestGrowReadmitsRank is the elasticity acceptance path in one process:
// survivors declare a rank dead, Shrink, then Grow it back while the
// victim runs JoinWorld; the re-grown world has the original size and
// numbering and working collectives.
func TestGrowReadmitsRank(t *testing.T) {
	leakChecked(t)
	const n, victim = 4, 2
	opt := Options{UCP: ucp.Config{Reliable: true}}
	err := Run(n, opt, func(c *Comm) error {
		if c.Rank() == victim {
			nc, err := JoinWorld(c.Worker(), CollTuning{})
			if err != nil {
				return fmt.Errorf("victim: JoinWorld: %w", err)
			}
			if nc.Size() != n || nc.Rank() != victim {
				return fmt.Errorf("victim: rejoined as rank %d of %d, want %d of %d", nc.Rank(), nc.Size(), victim, n)
			}
			return growAllreduceCheck(nc)
		}
		c.Worker().DeclarePeerFailed(victim)
		sc, err := c.Shrink()
		if err != nil {
			return fmt.Errorf("rank %d: shrink: %w", c.Rank(), err)
		}
		if sc.Size() != n-1 {
			return fmt.Errorf("rank %d: shrunk size = %d, want %d", c.Rank(), sc.Size(), n-1)
		}
		nc, err := sc.Grow([]JoinPeer{{Rank: victim}})
		if err != nil {
			return fmt.Errorf("rank %d: grow: %w", c.Rank(), err)
		}
		// Growing the shrunk world back to size restores the original
		// numbering: members are ordered by fabric rank.
		if nc.Size() != n || nc.Rank() != c.Rank() {
			return fmt.Errorf("rank %d: grown comm rank %d of %d, want %d of %d", c.Rank(), nc.Rank(), nc.Size(), c.Rank(), n)
		}
		// The shrunk communicator stays valid alongside the grown one.
		if err := growAllreduceCheck(nc); err != nil {
			return err
		}
		return sc.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGrowValidation exercises the local argument checks and the
// revoked/duplicate refusals — all fail before any protocol traffic, so
// ranks assert independently.
func TestGrowValidation(t *testing.T) {
	leakChecked(t)
	const n, victim = 3, 2
	opt := Options{UCP: ucp.Config{Reliable: true}}
	err := Run(n, opt, func(c *Comm) error {
		wantInvalid := func(what string, peers []JoinPeer) error {
			if _, err := c.Grow(peers); !errors.Is(err, ErrInvalidComm) {
				return fmt.Errorf("rank %d: Grow(%s) = %v, want ErrInvalidComm", c.Rank(), what, err)
			}
			return nil
		}
		if err := wantInvalid("no peers", nil); err != nil {
			return err
		}
		if err := wantInvalid("member", []JoinPeer{{Rank: 1}}); err != nil {
			return err
		}
		if err := wantInvalid("out of range", []JoinPeer{{Rank: n + 7}}); err != nil {
			return err
		}
		if c.Rank() == victim {
			return nil
		}
		c.Worker().DeclarePeerFailed(victim)
		sc, err := c.Shrink()
		if err != nil {
			return fmt.Errorf("rank %d: shrink: %w", c.Rank(), err)
		}
		if _, err := sc.Grow([]JoinPeer{{Rank: victim}, {Rank: victim}}); !errors.Is(err, ErrInvalidComm) {
			return fmt.Errorf("rank %d: Grow(dup) = %v, want ErrInvalidComm", c.Rank(), err)
		}
		if err := sc.Revoke(); err != nil {
			return err
		}
		if _, err := sc.Grow([]JoinPeer{{Rank: victim}}); !errors.Is(err, ErrRevoked) {
			return fmt.Errorf("rank %d: Grow on revoked comm = %v, want ErrRevoked", c.Rank(), err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGrowAbortsTogether: when the awaited joiner never calls JoinWorld,
// every survivor abandons the grow inside its window, the abort is
// agreed (all survivors return an error, none hangs), and the shrunk
// communicator remains usable for the next attempt.
func TestGrowAbortsTogether(t *testing.T) {
	leakChecked(t)
	const n, victim = 3, 2
	opt := Options{UCP: ucp.Config{Reliable: true, ReqTimeout: 300 * time.Millisecond}}
	err := Run(n, opt, func(c *Comm) error {
		if c.Rank() == victim {
			return nil // alive but never joins: the invite lands unanswered
		}
		c.Worker().DeclarePeerFailed(victim)
		sc, err := c.Shrink()
		if err != nil {
			return fmt.Errorf("rank %d: shrink: %w", c.Rank(), err)
		}
		if _, err := sc.GrowWithin([]JoinPeer{{Rank: victim}}, 100*time.Millisecond); err == nil {
			return fmt.Errorf("rank %d: grow of a never-joining peer succeeded", c.Rank())
		} else if !errors.Is(err, ucp.ErrTimeout) && !errors.Is(err, ErrProcFailed) {
			return fmt.Errorf("rank %d: grow abort error outside the taxonomy: %v", c.Rank(), err)
		}
		// The aborted grow consumed a context id but left the shrunk
		// communicator fully usable.
		if err := sc.Barrier(); err != nil {
			return fmt.Errorf("rank %d: barrier after aborted grow: %w", c.Rank(), err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
