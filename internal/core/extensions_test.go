package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestProbeCarriesPackedLength covers the paper's Section VI suggestion —
// "perhaps by extending MPI_Probe and MPI_Get_count" — which this
// reproduction implements: a probe on a custom-datatype message reports
// both the total size and the packed-part length (Status.Aux), so a
// receiver can reason about the message's structure without extra
// messages.
func TestProbeCarriesPackedLength(t *testing.T) {
	dt := TypeCreateCustom(dvHandler{}, WithInOrder())
	send := [][]byte{pattern(1000, 1), pattern(2000, 2)}
	run2(t, Options{},
		func(c *Comm) error { return c.Send(send, 1, dt, 1, 3) },
		func(c *Comm) error {
			st, err := c.Probe(0, 3)
			if err != nil {
				return err
			}
			wantPacked := int64(8 * 3) // count + two lengths
			if st.Aux != wantPacked {
				return fmt.Errorf("probe Aux = %d, want %d", st.Aux, wantPacked)
			}
			if st.Bytes != wantPacked+3000 {
				return fmt.Errorf("probe Total = %d", st.Bytes)
			}
			var recv [][]byte
			_, err = c.Recv(&recv, 1, dt, 0, 3)
			return err
		})
}

func TestMprobeMrecvCustomDatatype(t *testing.T) {
	// Matched-probe then matched-receive of a custom-datatype message.
	dt := TypeCreateCustom(dvHandler{}, WithInOrder())
	send := [][]byte{pattern(64, 1), pattern(50000, 2)}
	run2(t, Options{},
		func(c *Comm) error { return c.Send(send, 1, dt, 1, 1) },
		func(c *Comm) error {
			m, err := c.Mprobe(0, 1)
			if err != nil {
				return err
			}
			var recv [][]byte
			if _, err := c.MRecv(m, &recv, 1, dt); err != nil {
				return err
			}
			if len(recv) != 2 || !bytes.Equal(recv[1], send[1]) {
				return errors.New("custom mrecv mismatch")
			}
			return nil
		})
}

func TestMaxTagBoundary(t *testing.T) {
	run2(t, Options{},
		func(c *Comm) error {
			if err := c.Send([]byte{9}, 1, TypeBytes, 1, MaxTag); err != nil {
				return err
			}
			if err := c.Send([]byte{9}, 1, TypeBytes, 1, MaxTag+1); err == nil {
				return errors.New("tag beyond MaxTag accepted")
			}
			return nil
		},
		func(c *Comm) error {
			out := make([]byte, 1)
			st, err := c.Recv(out, 1, TypeBytes, 0, MaxTag)
			if err != nil {
				return err
			}
			if st.Tag != MaxTag {
				return fmt.Errorf("tag = %d", st.Tag)
			}
			return nil
		})
}

func TestRequestTestPolling(t *testing.T) {
	run2(t, Options{},
		func(c *Comm) error {
			time.Sleep(20 * time.Millisecond)
			return c.Send(pattern(100, 1), -1, TypeBytes, 1, 1)
		},
		func(c *Comm) error {
			out := make([]byte, 100)
			r, err := c.Irecv(out, -1, TypeBytes, 0, 1)
			if err != nil {
				return err
			}
			// Immediately after posting nothing has arrived.
			if done, _, _ := r.Test(); done {
				return errors.New("request done before the sender sent")
			}
			for {
				done, st, err := r.Test()
				if err != nil {
					return err
				}
				if done {
					if st.Bytes != 100 {
						return fmt.Errorf("bytes = %d", st.Bytes)
					}
					return nil
				}
				time.Sleep(time.Millisecond)
			}
		})
}

func TestGetCountCustomIsUndefined(t *testing.T) {
	dt := TypeCreateCustom(recVecHandler{})
	st := Status{Bytes: 100}
	if got := st.GetCount(dt); got != -1 {
		t.Fatalf("custom GetCount = %d, want -1", got)
	}
}

func TestSplitThenSplitAgain(t *testing.T) {
	// Chained communicator derivation keeps contexts distinct.
	err := Run(4, Options{}, func(c *Comm) error {
		half, err := c.Split(c.Rank()/2, 0)
		if err != nil {
			return err
		}
		solo, err := half.Split(half.Rank(), 0)
		if err != nil {
			return err
		}
		if solo.Size() != 1 || solo.Rank() != 0 {
			return fmt.Errorf("solo comm = rank %d of %d", solo.Rank(), solo.Size())
		}
		// Self-send on the singleton comm.
		r, err := solo.Isend([]byte{byte(c.Rank())}, 1, TypeBytes, 0, 0)
		if err != nil {
			return err
		}
		out := make([]byte, 1)
		if _, err := solo.Recv(out, 1, TypeBytes, 0, 0); err != nil {
			return err
		}
		if _, err := r.Wait(); err != nil {
			return err
		}
		if out[0] != byte(c.Rank()) {
			return errors.New("singleton self-send mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManySmallMessagesStress(t *testing.T) {
	const n = 2000
	run2(t, Options{},
		func(c *Comm) error {
			for i := 0; i < n; i++ {
				if err := c.Send([]byte{byte(i)}, 1, TypeBytes, 1, i%17); err != nil {
					return err
				}
			}
			return nil
		},
		func(c *Comm) error {
			for i := 0; i < n; i++ {
				out := make([]byte, 1)
				if _, err := c.Recv(out, 1, TypeBytes, 0, i%17); err != nil {
					return err
				}
				if out[0] != byte(i) {
					return fmt.Errorf("message %d corrupted", i)
				}
			}
			return nil
		})
}

func TestLargeCustomMessage(t *testing.T) {
	// A multi-fragment custom message well past every threshold.
	dt := TypeCreateCustom(dvHandler{}, WithInOrder())
	send := make([][]byte, 32)
	for i := range send {
		send[i] = pattern(1<<18, byte(i)) // 8 MiB total
	}
	run2(t, Options{},
		func(c *Comm) error { return c.Send(send, 1, dt, 1, 1) },
		func(c *Comm) error {
			var recv [][]byte
			if _, err := c.Recv(&recv, 1, dt, 0, 1); err != nil {
				return err
			}
			for i := range send {
				if !bytes.Equal(recv[i], send[i]) {
					return fmt.Errorf("subvector %d mismatch", i)
				}
			}
			return nil
		})
}
