package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"mpicd/internal/ddt"
	"mpicd/internal/layout"
)

func TestBarrier(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			var entered atomic.Int32
			err := Run(n, Options{}, func(c *Comm) error {
				// Rank 0 lags; nobody may leave the barrier before it
				// enters.
				if c.Rank() == 0 {
					time.Sleep(30 * time.Millisecond)
				}
				entered.Add(1)
				if err := c.Barrier(); err != nil {
					return err
				}
				if got := entered.Load(); got != int32(n) {
					return fmt.Errorf("left barrier with %d/%d ranks entered", got, n)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBcastBytes(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		for root := 0; root < n; root += 3 {
			t.Run(fmt.Sprintf("n%d_root%d", n, root), func(t *testing.T) {
				want := pattern(10000, byte(root))
				err := Run(n, Options{}, func(c *Comm) error {
					buf := make([]byte, 10000)
					if c.Rank() == root {
						copy(buf, want)
					}
					if err := c.Bcast(buf, -1, TypeBytes, root); err != nil {
						return err
					}
					if !bytes.Equal(buf, want) {
						return errors.New("bcast payload mismatch")
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestBcastCustomDatatype(t *testing.T) {
	// The future-work extension: broadcasting a dynamic custom type.
	dt := TypeCreateCustom(dvHandler{}, WithInOrder())
	want := [][]byte{pattern(100, 1), pattern(5000, 2)}
	err := Run(4, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			send := [][]byte{append([]byte{}, want[0]...), append([]byte{}, want[1]...)}
			return c.Bcast(send, 1, dt, 0)
		}
		var recv [][]byte
		buf := any(&recv)
		if err := c.Bcast(buf, 1, dt, 0); err != nil {
			return err
		}
		if len(recv) != 2 || !bytes.Equal(recv[0], want[0]) || !bytes.Equal(recv[1], want[1]) {
			return errors.New("custom bcast mismatch")
		}
		return nil
	})
	// Non-root interior ranks must re-send from *[][]byte buffers; the
	// handler supports both directions, but forwarding from a pointer
	// buffer requires the send path to accept it too.
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSumFloat64(t *testing.T) {
	const n = 6
	const count = 100
	err := Run(n, Options{}, func(c *Comm) error {
		vals := make([]float64, count)
		for i := range vals {
			vals[i] = float64(c.Rank()*count + i)
		}
		send := layout.Float64Image(vals)
		recv := make([]byte, len(send))
		if err := c.Reduce(send, recv, count, FromDDT(ddt.Float64), OpSumFloat64, 2); err != nil {
			return err
		}
		if c.Rank() == 2 {
			got := layout.Float64s(recv)
			for i := range got {
				want := 0.0
				for r := 0; r < n; r++ {
					want += float64(r*count + i)
				}
				if got[i] != want {
					return fmt.Errorf("sum[%d] = %v, want %v", i, got[i], want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMaxInt64(t *testing.T) {
	const n = 5
	err := Run(n, Options{}, func(c *Comm) error {
		send := make([]byte, 8)
		layout.PutI64(send, 0, int64(c.Rank()*10))
		recv := make([]byte, 8)
		if err := c.Allreduce(send, recv, 1, FromDDT(ddt.Int64), OpMaxInt64); err != nil {
			return err
		}
		if got := layout.I64(recv, 0); got != int64((n-1)*10) {
			return fmt.Errorf("max = %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatter(t *testing.T) {
	const n = 4
	err := Run(n, Options{}, func(c *Comm) error {
		mine := pattern(100, byte(c.Rank()))
		all := make([]byte, 100*n)
		if err := c.Gather(mine, 100, TypeBytes, all, 0); err != nil {
			return err
		}
		if c.Rank() == 0 {
			for r := 0; r < n; r++ {
				if !bytes.Equal(all[r*100:(r+1)*100], pattern(100, byte(r))) {
					return fmt.Errorf("gather slot %d mismatch", r)
				}
			}
		}
		// Scatter it back.
		out := make([]byte, 100)
		if err := c.Scatter(all, 100, TypeBytes, out, 0); err != nil {
			return err
		}
		if !bytes.Equal(out, mine) {
			return errors.New("scatter returned wrong block")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	const n = 5
	err := Run(n, Options{}, func(c *Comm) error {
		mine := pattern(64, byte(c.Rank()+1))
		all := make([]byte, 64*n)
		if err := c.Allgather(mine, 64, TypeBytes, all); err != nil {
			return err
		}
		for r := 0; r < n; r++ {
			if !bytes.Equal(all[r*64:(r+1)*64], pattern(64, byte(r+1))) {
				return fmt.Errorf("allgather slot %d mismatch at rank %d", r, c.Rank())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	const n = 4
	err := Run(n, Options{}, func(c *Comm) error {
		send := make([]byte, 8*n)
		for r := 0; r < n; r++ {
			layout.PutI64(send[r*8:], 0, int64(c.Rank()*100+r))
		}
		recv := make([]byte, 8*n)
		if err := c.Alltoall(send, 8, TypeBytes, recv); err != nil {
			return err
		}
		for r := 0; r < n; r++ {
			want := int64(r*100 + c.Rank())
			if got := layout.I64(recv[r*8:], 0); got != want {
				return fmt.Errorf("alltoall [%d] = %d, want %d", r, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitRings(t *testing.T) {
	const n = 6
	err := Run(n, Options{}, func(c *Comm) error {
		color := c.Rank() % 2
		sub, err := c.Split(color, -c.Rank()) // reverse order via key
		if err != nil {
			return err
		}
		if sub.Size() != n/2 {
			return fmt.Errorf("sub size = %d", sub.Size())
		}
		// Keys are negative ranks, so higher world ranks come first.
		wantRank := (n/2 - 1) - c.Rank()/2
		if sub.Rank() != wantRank {
			return fmt.Errorf("world %d: sub rank = %d, want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// Communicate within the subcomm.
		buf := make([]byte, 1)
		if sub.Rank() == 0 {
			buf[0] = byte(100 + color)
		}
		if err := sub.Bcast(buf, 1, TypeBytes, 0); err != nil {
			return err
		}
		if buf[0] != byte(100+color) {
			return fmt.Errorf("sub bcast got %d", buf[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefined(t *testing.T) {
	err := Run(3, Options{}, func(c *Comm) error {
		color := -1
		if c.Rank() == 0 {
			color = 0
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if sub == nil || sub.Size() != 1 {
				return errors.New("rank 0 should get a singleton comm")
			}
		} else if sub != nil {
			return errors.New("undefined color must return nil comm")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDupConcurrentTraffic(t *testing.T) {
	// Messages on parent and dup with identical tags stay separated.
	err := Run(2, Options{}, func(c *Comm) error {
		dup, err := c.Dup()
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := c.Send([]byte{1}, 1, TypeBytes, 1, 0); err != nil {
				return err
			}
			return dup.Send([]byte{2}, 1, TypeBytes, 1, 0)
		}
		a := make([]byte, 1)
		b := make([]byte, 1)
		if _, err := dup.Recv(b, 1, TypeBytes, 0, 0); err != nil {
			return err
		}
		if _, err := c.Recv(a, 1, TypeBytes, 0, 0); err != nil {
			return err
		}
		if a[0] != 1 || b[0] != 2 {
			return fmt.Errorf("comm separation broken: %d %d", a[0], b[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
