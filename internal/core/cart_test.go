package core

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCartCoordsRankRoundtrip(t *testing.T) {
	err := Run(6, Options{}, func(c *Comm) error {
		cc, err := c.CartCreate([]int{2, 3}, []bool{true, false})
		if err != nil {
			return err
		}
		for r := 0; r < 6; r++ {
			coords, err := cc.Coords(r)
			if err != nil {
				return err
			}
			back, err := cc.CartRank(coords)
			if err != nil {
				return err
			}
			if back != r {
				return fmt.Errorf("rank %d -> %v -> %d", r, coords, back)
			}
		}
		// Row-major: rank 4 = (1, 1).
		coords, _ := cc.Coords(4)
		if coords[0] != 1 || coords[1] != 1 {
			return fmt.Errorf("coords(4) = %v", coords)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartPeriodicWrapAndNull(t *testing.T) {
	err := Run(6, Options{}, func(c *Comm) error {
		cc, err := c.CartCreate([]int{2, 3}, []bool{true, false})
		if err != nil {
			return err
		}
		coords, _ := cc.Coords(cc.Rank())
		// Dim 0 is periodic: shifts always resolve.
		src, dst, err := cc.Shift(0, 1)
		if err != nil {
			return err
		}
		if src == ProcNull || dst == ProcNull {
			return fmt.Errorf("periodic shift returned ProcNull")
		}
		// Dim 1 is not periodic: edges get ProcNull.
		src, dst, err = cc.Shift(1, 1)
		if err != nil {
			return err
		}
		if coords[1] == 0 && src != ProcNull {
			return fmt.Errorf("left edge should have null source, got %d", src)
		}
		if coords[1] == 2 && dst != ProcNull {
			return fmt.Errorf("right edge should have null destination, got %d", dst)
		}
		if coords[1] == 1 && (src == ProcNull || dst == ProcNull) {
			return fmt.Errorf("interior rank got null neighbor")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartValidation(t *testing.T) {
	err := Run(4, Options{}, func(c *Comm) error {
		if _, err := c.CartCreate([]int{3}, []bool{false}); err == nil {
			return fmt.Errorf("grid/size mismatch accepted")
		}
		if _, err := c.CartCreate([]int{2, 2}, []bool{false}); err == nil {
			return fmt.Errorf("dims/periodic mismatch accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartRingExchange(t *testing.T) {
	// A periodic 1-D ring: every rank passes its payload right; after one
	// NeighborSendRecv each rank holds its left neighbor's payload.
	const n = 5
	err := Run(n, Options{}, func(c *Comm) error {
		cc, err := c.CartCreate([]int{n}, []bool{true})
		if err != nil {
			return err
		}
		src, dst, err := cc.Shift(0, 1)
		if err != nil {
			return err
		}
		mine := pattern(256, byte(cc.Rank()))
		out := make([]byte, 256)
		if _, err := cc.NeighborSendRecv(mine, -1, TypeBytes, dst, 1, out, -1, TypeBytes, src, 1); err != nil {
			return err
		}
		left := (cc.Rank() - 1 + n) % n
		if !bytes.Equal(out, pattern(256, byte(left))) {
			return fmt.Errorf("ring exchange mismatch at rank %d", cc.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartNonPeriodicLineExchange(t *testing.T) {
	// Non-periodic line: boundary ranks talk to ProcNull and must not
	// hang or receive anything.
	const n = 4
	err := Run(n, Options{}, func(c *Comm) error {
		cc, err := c.CartCreate([]int{n}, []bool{false})
		if err != nil {
			return err
		}
		src, dst, err := cc.Shift(0, 1)
		if err != nil {
			return err
		}
		mine := pattern(64, byte(cc.Rank()))
		out := make([]byte, 64)
		st, err := cc.NeighborSendRecv(mine, -1, TypeBytes, dst, 1, out, -1, TypeBytes, src, 1)
		if err != nil {
			return err
		}
		if cc.Rank() == 0 {
			if st.Bytes != 0 {
				return fmt.Errorf("rank 0 received %d bytes from null", st.Bytes)
			}
		} else if !bytes.Equal(out, pattern(64, byte(cc.Rank()-1))) {
			return fmt.Errorf("line exchange mismatch at rank %d", cc.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
