package core

// ULFM-style communicator recovery (User-Level Failure Mitigation: the
// MPI fault-tolerance proposal this file reproduces the core of). The
// model has four pieces:
//
//  1. Detection. The transport's heartbeat detector (ucp.Config.Heartbeat)
//     declares silent peers dead; every operation bound to a dead rank
//     fails with ErrProcFailed instead of hanging. Failed sets are local
//     knowledge: different ranks may notice different deaths at different
//     times.
//  2. Revoke. A rank that decides a communicator is broken calls Revoke:
//     the communicator is poisoned locally (pending receives on its
//     context abort, future operations fail with ErrRevoked) and a
//     revocation notice is flooded to every other rank on a reserved
//     control tag. Each rank re-floods once on first receipt, so the
//     notice survives the death of the revoker mid-broadcast.
//  3. Agree. Fault-tolerant agreement ORs each survivor's failed-rank
//     bitmask until every participant observes the same stable set —
//     the decision ranks need before they can rebuild.
//  4. Shrink. Builds a new communicator from the agreed survivors with a
//     fresh matching context, renumbered ranks and working collectives;
//     the application retries its collective there.
//
// Control traffic (revoke notices, agreement rounds) rides reserved
// collective-op tags (opRevoke/opAgree, colltag.go) that revocation
// deliberately does not abort, so recovery keeps working on a revoked
// communicator — exactly ULFM's rule that MPI_Comm_agree and
// MPI_Comm_shrink remain callable after MPI_Comm_revoke.

import (
	"errors"
	"fmt"
	"sync/atomic"

	"mpicd/internal/layout"
	"mpicd/internal/ucp"
)

// ErrProcFailed re-exports the transport's peer-death verdict (ULFM's
// MPI_ERR_PROC_FAILED).
var ErrProcFailed = ucp.ErrProcFailed

// ErrRevoked reports an operation on a revoked communicator (ULFM's
// MPI_ERR_REVOKED).
var ErrRevoked = errors.New("core: communicator revoked")

// ErrExcluded reports that the surviving group agreed THIS rank into the
// failed set: the calling process is alive, but some survivor's failure
// detector declared it dead (an asymmetric link outage looks exactly
// like a crash from the silent side) and the agreement propagated that
// verdict. The verdict is not appealable — peers that declared this
// rank dead have already flushed its transport state and will never
// match its messages again — so the only correct responses are to stop
// (treat it as this process's own failure) or to continue on a
// communicator that never included the excluding peers. Retrying Shrink
// on the old communicator is specifically wrong: the survivors have
// moved on and will never join another agreement there, so the retry
// blocks forever.
var ErrExcluded = errors.New("core: rank agreed into the failed set by the surviving group")

// ulfmState is the per-communicator recovery state.
type ulfmState struct {
	revoked  atomic.Bool
	fenced   atomic.Bool   // the surviving group agreed this rank dead
	agreeSeq atomic.Uint64 // numbers Agree/Shrink calls on this comm
}

// Control-notice payloads on the opRevoke tag. Both are single bytes on
// the same matching criteria, so one posted listener receive hears both.
const (
	noticeRevoke = 1 // revocation flood (Revoke / revokeLocal)
	noticeFence  = 2 // exclusion verdict: the survivors shrank without you
)

// initULFM attaches recovery state to a freshly built communicator and
// starts its revoke listener.
func (c *Comm) initULFM() {
	c.rv = &ulfmState{}
	if c.Size() > 1 {
		go c.revokeListener()
	}
}

// checkRevoked gates every non-recovery operation on the communicator.
func (c *Comm) checkRevoked() error {
	if c.rv.revoked.Load() {
		return ErrRevoked
	}
	return nil
}

// Revoked reports whether the communicator has been revoked (locally or
// by a received notice).
func (c *Comm) Revoked() bool { return c.rv.revoked.Load() }

// Failed returns the comm ranks currently known (locally) to have
// failed, ascending. Different ranks may know different sets; Agree
// reconciles them.
func (c *Comm) Failed() []int {
	var out []int
	for _, fr := range c.w.FailedPeers() {
		if cr, ok := c.inverse[fr]; ok {
			out = append(out, cr)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// failedMask is Failed as a comm-rank bitmask (ranks ≥ 64 are dropped;
// Agree rejects such communicators anyway).
func (c *Comm) failedMask() uint64 {
	var m uint64
	for _, fr := range c.w.FailedPeers() {
		if cr, ok := c.inverse[fr]; ok && cr < 64 {
			m |= 1 << uint(cr)
		}
	}
	return m
}

// revokeCtrl builds the matching criteria for revoke notices on this
// communicator: context and op participate, source/epoch/seq do not —
// one posted receive hears any rank's notice.
func (c *Comm) revokeCtrl() (tag, mask ucp.Tag) {
	tag = ucp.Tag(c.ctx<<ctxShift | collBit | uint64(opRevoke)<<collOpShift)
	mask = ucp.Tag(uint64(0xFFFF)<<ctxShift | collBit | uint64(collOpMax)<<collOpShift)
	return tag, mask
}

// revokeListener runs for the communicator's lifetime: it keeps one
// receive posted on the revoke control tag, dispatches each notice by
// its payload byte — revocation (re-flooded once) or an exclusion
// verdict — and then keeps draining duplicates. It exits when the
// worker closes, when every peer is dead, or on any other terminal
// receive error.
func (c *Comm) revokeListener() {
	buf := make([]byte, 1)
	for {
		tag, mask := c.revokeCtrl()
		r, err := c.w.Recv(-1, tag, mask, TypeBytes.transport(), buf, 1)
		if err != nil {
			return
		}
		if err := r.Wait(); err != nil {
			if errors.Is(err, ucp.ErrTimeout) {
				continue // janitor deadline on a quiet comm; repost
			}
			c.ulfmTrace("revoke listener exit: %v", err)
			return
		}
		c.ulfmTrace("notice %d received", buf[0])
		if buf[0] == noticeFence {
			c.fenceLocal()
		} else {
			c.revokeLocal(true)
		}
	}
}

// Revoke poisons the communicator (ULFM's MPI_Comm_revoke): pending
// receives on its context abort with ErrRevoked, future operations fail
// with ErrRevoked, and a notice is flooded to every other rank so their
// pending operations abort too. Idempotent, never collective, callable
// from any rank at any time. Agreement and shrinking remain available.
func (c *Comm) Revoke() error {
	c.revokeLocal(true)
	return nil
}

// revokeLocal performs the local half of revocation exactly once, then
// optionally floods the notice. Fire-and-forget sends: a dead rank's
// notice just vanishes, and the flooding (every informed rank re-floods
// once) covers the gaps.
func (c *Comm) revokeLocal(propagate bool) {
	if !c.rv.revoked.CompareAndSwap(false, true) {
		return
	}
	// Poison every pending receive on this context except recovery
	// control traffic (revoke listeners, agreement rounds), and wake
	// blocked probes so their callers re-check Revoked. The poison is
	// standing, not a one-shot sweep: a collective that passed its
	// revocation check before the flag flipped may post its receive
	// after this sweep, and that receive must fail too — nobody will
	// ever send on a revoked context again.
	aborted := c.w.PoisonWhere(func(from int, tag, mask ucp.Tag) bool {
		if uint64(tag)>>ctxShift&0xFFFF != c.ctx {
			return false
		}
		if uint64(tag)&collBit != 0 {
			op := collOp(uint64(tag) >> collOpShift & collOpMax)
			if op == opRevoke || op == opAgree {
				return false
			}
		}
		return true
	}, ErrRevoked)
	if !propagate {
		c.ulfmTrace("revoked locally (%d receives aborted)", aborted)
		return
	}
	notice := []byte{noticeRevoke}
	var flooded []int
	for r := 0; r < c.Size(); r++ {
		if r == c.rank || c.w.PeerFailed(c.group[r]) {
			continue
		}
		// Not waited: a peer that dies mid-flood must not stall the
		// revoker, and transport-level failure notification completes
		// the request either way.
		if _, err := c.w.Send(c.group[r], c.collTag(opRevoke, 0, 0), TypeBytes.transport(), notice, 1, 0, ucp.ProtoEager); err != nil {
			c.ulfmTrace("revoke notice to rank %d refused at post: %v", r, err)
		} else {
			flooded = append(flooded, r)
		}
	}
	c.ulfmTrace("revoked (%d receives aborted), notices -> %v", aborted, flooded)
}

// Fenced reports whether the surviving group agreed this live rank into
// the failed set (see ErrExcluded).
func (c *Comm) Fenced() bool { return c.rv.fenced.Load() }

// fenceLocal applies an exclusion verdict: the survivors completed an
// agreement whose failed set contains this rank and have moved on, so no
// collective on this communicator — including the recovery control
// collectives — can ever complete again. Revocation alone is not enough:
// Agree and Shrink deliberately survive revocation, and an excluded rank
// blocked in an agreement round would wait forever for peers that now
// skip it. The fence aborts those receives too, with ErrExcluded, and
// marks the communicator so later agreement attempts fail fast.
func (c *Comm) fenceLocal() {
	c.revokeLocal(false)
	if !c.rv.fenced.CompareAndSwap(false, true) {
		return
	}
	c.w.PoisonWhere(func(from int, tag, mask ucp.Tag) bool {
		if uint64(tag)>>ctxShift&0xFFFF != c.ctx {
			return false
		}
		if uint64(tag)&collBit != 0 {
			// Keep the notice listener posted so duplicates keep draining.
			if collOp(uint64(tag)>>collOpShift&collOpMax) == opRevoke {
				return false
			}
		}
		return true
	}, ErrExcluded)
}

// agreeMaxRounds bounds agreement; the seq tag field wraps at 256, and a
// complete-graph exchange converges in 2 rounds once the failed sets
// stop changing, so hitting this cap means rank churn outlasted it.
const agreeMaxRounds = 200

// agreePayload is [mask:8][cid:8][stable:1].
const agreePayload = 17

// Agree is fault-tolerant agreement on the failed-rank set (ULFM's
// MPI_Comm_agree over the standard uint64 bitmask): it ORs local (a
// caller-supplied contribution, often 0) with every rank's known-failed
// mask and returns when all live ranks hold the same stable result.
// Collective over the live ranks — every survivor must call it, in the
// same order relative to other Agree/Shrink calls on this communicator.
// It operates on a revoked communicator.
//
// A rank whose death is observed only by some survivors during the
// final round can strand a straggler waiting for a round nobody else
// runs; configure ucp.Config.ReqTimeout to bound that window (the
// detector-declared deaths that matter for recovery are delivered as
// ErrProcFailed regardless).
func (c *Comm) Agree(local uint64) (uint64, error) {
	mask, _, err := c.agreeFull(local, 0)
	return mask, err
}

// agreeFull runs the agreement rounds, additionally carrying the maximum
// of every rank's cid proposal (Shrink agrees on the next context id in
// the same rounds that agree on the survivor set).
func (c *Comm) agreeFull(local, cid uint64) (uint64, uint64, error) {
	n := c.Size()
	if n > 64 {
		return 0, 0, fmt.Errorf("%w: agreement supports at most 64 ranks (communicator has %d)", ErrInvalidComm, n)
	}
	// failedMask only sets bits of ranks in this communicator; local may
	// carry arbitrary flag bits (the ULFM flag-consensus idiom) and is
	// passed through untouched.
	mask := local | c.failedMask()
	if n == 1 {
		return mask, cid, nil
	}
	agreement := c.rv.agreeSeq.Add(1)
	stable := false
	out := make([]byte, agreePayload)
	in := make([]byte, agreePayload*n)
	sends := make([]*Request, 0, n-1)
	peers := make([]int, 0, n-1)
	for round := 0; round < agreeMaxRounds; round++ {
		if c.rv.fenced.Load() {
			return 0, 0, fmt.Errorf("%w: agreement abandoned", ErrExcluded)
		}
		peers = peers[:0]
		for r := 0; r < n; r++ {
			if r != c.rank && mask&(1<<uint(r)) == 0 {
				peers = append(peers, r)
			}
		}
		if len(peers) == 0 {
			return mask, cid, nil
		}
		layout.PutI64(out, 0, int64(mask))
		layout.PutI64(out, 8, int64(cid))
		out[16] = 0
		if stable {
			out[16] = 1
		}
		newMask := mask
		allEqual, allStable := true, true
		sends = sends[:0]
		for _, r := range peers {
			sr, err := c.collIsend(out, agreePayload, TypeBytes, r, opAgree, agreement, round)
			if err != nil {
				if errors.Is(err, ErrProcFailed) {
					newMask |= 1 << uint(r)
					allEqual, allStable = false, false
					continue
				}
				drainRequests(sends)
				return 0, 0, err
			}
			sends = append(sends, sr)
		}
		for _, r := range peers {
			pb := in[agreePayload*r : agreePayload*(r+1)]
			if err := c.collRecv(pb, agreePayload, TypeBytes, r, opAgree, agreement, round); err != nil {
				if errors.Is(err, ErrProcFailed) {
					newMask |= 1 << uint(r)
					allEqual, allStable = false, false
					continue
				}
				drainRequests(sends)
				return 0, 0, err
			}
			pm := uint64(layout.I64(pb, 0))
			newMask |= pm
			if pcid := uint64(layout.I64(pb, 8)); pcid > cid {
				cid = pcid
			}
			if pm != mask {
				allEqual = false
			}
			if pb[16] == 0 {
				allStable = false
			}
		}
		drainRequests(sends)
		unchanged := newMask == mask
		if stable && unchanged && allEqual && allStable {
			// Everyone advertised a stable, identical mask this round —
			// with the complete-graph exchange, every survivor observed
			// the same thing and exits here too. The cid maximum also
			// propagated to all in one full exchange, so it is agreed.
			return mask, cid, nil
		}
		stable = unchanged && allEqual
		mask = newMask
	}
	return 0, 0, fmt.Errorf("%w: agreement did not converge within %d rounds", ErrInvalidComm, agreeMaxRounds)
}

// Shrink builds a new communicator from the survivors (ULFM's
// MPI_Comm_shrink): the failed set and the next context id are agreed in
// one agreement, the survivors keep their relative order with renumbered
// ranks, and the result has a fresh matching context, fresh collective
// epoch space, working collectives and its own revoke listener.
// Collective over the live ranks; it operates on a revoked communicator.
func (c *Comm) Shrink() (*Comm, error) {
	mask, cid, err := c.agreeFull(0, *c.nextCID)
	if err != nil {
		return nil, err
	}
	if mask&(1<<uint(c.rank)) != 0 {
		return nil, fmt.Errorf("%w: shrink: calling rank %d is in the agreed failed set", ErrExcluded, c.rank)
	}
	if cid >= 1<<16 {
		return nil, fmt.Errorf("%w: communicator context ids exhausted", ErrInvalidComm)
	}
	// Fence the excluded: a rank in the agreed failed set may well be
	// alive (an asymmetric link outage reads as death from the silent
	// side) and blocked in an agreement round the survivors will never
	// run. Every survivor notifies every excluded rank it can still
	// reach — redundant on purpose, since the links that caused the
	// false verdict may drop any single notice.
	notice := []byte{noticeFence}
	for r := 0; r < c.Size(); r++ {
		if mask&(1<<uint(r)) == 0 || r == c.rank || c.w.PeerFailed(c.group[r]) {
			continue
		}
		_, _ = c.w.Send(c.group[r], c.collTag(opRevoke, 0, 0), TypeBytes.transport(), notice, 1, 0, ucp.ProtoEager)
	}
	*c.nextCID = cid + 1
	group := make([]int, 0, c.Size())
	inverse := make(map[int]int, c.Size())
	myRank := -1
	for r := 0; r < c.Size(); r++ {
		if mask&(1<<uint(r)) != 0 {
			continue
		}
		if r == c.rank {
			myRank = len(group)
		}
		inverse[c.group[r]] = len(group)
		group = append(group, c.group[r])
	}
	nc := &Comm{
		w: c.w, ctx: cid, group: group, inverse: inverse, rank: myRank,
		nextCID: c.nextCID, collEpoch: new(atomic.Uint64), tuning: c.tuning,
	}
	nc.initULFM()
	return nc, nil
}
