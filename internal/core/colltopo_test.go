package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"mpicd/internal/ddt"
	"mpicd/internal/layout"
)

// blockNodes places ranks on nodes in contiguous blocks of perNode.
func blockNodes(n, perNode int) *CollTopology {
	nodeOf := make([]int, n)
	for r := range nodeOf {
		nodeOf[r] = r / perNode
	}
	return &CollTopology{NodeOf: nodeOf}
}

func TestTopoPlanSelection(t *testing.T) {
	err := Run(6, Options{}, func(c *Comm) error {
		// No topology: flat.
		if c.topoPlan() != nil {
			return errors.New("plan without topology")
		}
		// Placement sized for a different communicator: flat.
		c.SetCollTuning(CollTuning{Topology: &CollTopology{NodeOf: []int{0, 0, 1}}})
		if c.topoPlan() != nil {
			return errors.New("plan with mismatched NodeOf length")
		}
		// Single node: hierarchy degenerates, flat.
		c.SetCollTuning(CollTuning{Topology: blockNodes(6, 6)})
		if c.topoPlan() != nil {
			return errors.New("plan with a single node")
		}
		// One rank per node: ditto.
		c.SetCollTuning(CollTuning{Topology: blockNodes(6, 1)})
		if c.topoPlan() != nil {
			return errors.New("plan with one rank per node")
		}
		// Two nodes of three: hierarchical.
		c.SetCollTuning(CollTuning{Topology: blockNodes(6, 3)})
		p := c.topoPlan()
		if p == nil {
			return errors.New("no plan for a 2x3 placement")
		}
		if len(p.leaders) != 2 || p.leaders[0] != 0 || p.leaders[1] != 3 {
			return fmt.Errorf("leaders = %v, want [0 3]", p.leaders)
		}
		want := []int{0, 1, 2}
		if c.Rank() >= 3 {
			want = []int{3, 4, 5}
		}
		if len(p.nodeRanks) != 3 || p.nodeRanks[0] != want[0] {
			return fmt.Errorf("rank %d nodeRanks = %v, want %v", c.Rank(), p.nodeRanks, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastTopo(t *testing.T) {
	for _, tc := range []struct{ n, perNode int }{{4, 2}, {6, 3}, {7, 2}, {8, 4}} {
		for root := 0; root < tc.n; root += 3 {
			t.Run(fmt.Sprintf("n%d_per%d_root%d", tc.n, tc.perNode, root), func(t *testing.T) {
				want := pattern(4096, byte(root+1))
				err := Run(tc.n, Options{}, func(c *Comm) error {
					c.SetCollTuning(CollTuning{Topology: blockNodes(tc.n, tc.perNode)})
					if c.topoPlan() == nil {
						return errors.New("expected hierarchical plan")
					}
					buf := make([]byte, len(want))
					if c.Rank() == root {
						copy(buf, want)
					}
					if err := c.Bcast(buf, -1, TypeBytes, root); err != nil {
						return err
					}
					if !bytes.Equal(buf, want) {
						return fmt.Errorf("rank %d: topo bcast payload mismatch", c.Rank())
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestAllreduceTopo(t *testing.T) {
	for _, tc := range []struct{ n, perNode int }{{4, 2}, {6, 3}, {7, 3}, {8, 2}} {
		t.Run(fmt.Sprintf("n%d_per%d", tc.n, tc.perNode), func(t *testing.T) {
			const count = 257
			err := Run(tc.n, Options{}, func(c *Comm) error {
				c.SetCollTuning(CollTuning{Topology: blockNodes(tc.n, tc.perNode)})
				if c.topoPlan() == nil {
					return errors.New("expected hierarchical plan")
				}
				send := make([]byte, 8*count)
				recv := make([]byte, 8*count)
				for i := 0; i < count; i++ {
					layout.PutI64(send, 8*i, int64((c.Rank()+1)*(i+1)))
				}
				if err := c.Allreduce(send, recv, count, FromDDT(ddt.Int64), OpSumInt64); err != nil {
					return err
				}
				sum := int64(tc.n * (tc.n + 1) / 2)
				for i := 0; i < count; i++ {
					if got, want := layout.I64(recv, 8*i), sum*int64(i+1); got != want {
						return fmt.Errorf("rank %d elem %d: got %d, want %d", c.Rank(), i, got, want)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAllreduceTopoNonCommutative checks that a non-commutative operator
// with a topology configured still combines in strict rank order (it
// must take the ordered reduce + broadcast path; only the broadcast leg
// is hierarchical).
func TestAllreduceTopoNonCommutative(t *testing.T) {
	// 2x2 integer matrix multiplication: associative (so the binomial
	// tree's range combining is legal) but non-commutative, so any
	// out-of-rank-order combine produces a detectably different product.
	matmul := ReduceOp{
		Commutative: false,
		Combine: func(dst, src []byte, count Count, _ *Datatype) error {
			for m := Count(0); m < count/4; m++ {
				o := int(8 * 4 * m)
				var d, s, r [4]int64
				for i := 0; i < 4; i++ {
					d[i] = layout.I64(dst, o+8*i)
					s[i] = layout.I64(src, o+8*i)
				}
				r[0] = d[0]*s[0] + d[1]*s[2]
				r[1] = d[0]*s[1] + d[1]*s[3]
				r[2] = d[2]*s[0] + d[3]*s[2]
				r[3] = d[2]*s[1] + d[3]*s[3]
				for i := 0; i < 4; i++ {
					layout.PutI64(dst, o+8*i, r[i])
				}
			}
			return nil
		},
	}
	rankMat := func(r int) [4]int64 {
		return [4]int64{1, int64(r + 1), int64((r*7+3)%5 + 1), 1}
	}
	const n = 6
	want := rankMat(0)
	for r := 1; r < n; r++ {
		s := rankMat(r)
		want = [4]int64{
			want[0]*s[0] + want[1]*s[2],
			want[0]*s[1] + want[1]*s[3],
			want[2]*s[0] + want[3]*s[2],
			want[2]*s[1] + want[3]*s[3],
		}
	}
	err := Run(n, Options{}, func(c *Comm) error {
		c.SetCollTuning(CollTuning{Topology: blockNodes(n, 2)})
		send := make([]byte, 8*4)
		recv := make([]byte, 8*4)
		m := rankMat(c.Rank())
		for i := 0; i < 4; i++ {
			layout.PutI64(send, 8*i, m[i])
		}
		if err := c.Allreduce(send, recv, 4, FromDDT(ddt.Int64), matmul); err != nil {
			return err
		}
		for i := 0; i < 4; i++ {
			if got := layout.I64(recv, 8*i); got != want[i] {
				return fmt.Errorf("rank %d entry %d: got %d, want %d (rank order violated)", c.Rank(), i, got, want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTopoSurvivesSplit: tuning (with a parent-sized Topology) is
// inherited by Split children; the child must fall back to flat
// schedules rather than misusing the stale placement.
func TestTopoSurvivesSplit(t *testing.T) {
	err := Run(6, Options{}, func(c *Comm) error {
		c.SetCollTuning(CollTuning{Topology: blockNodes(6, 3)})
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if sub.topoPlan() != nil {
			return errors.New("split child reused the parent's placement")
		}
		buf := make([]byte, 512)
		if sub.Rank() == 0 {
			copy(buf, pattern(512, 9))
		}
		if err := sub.Bcast(buf, -1, TypeBytes, 0); err != nil {
			return err
		}
		if !bytes.Equal(buf, pattern(512, 9)) {
			return errors.New("split-child bcast mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
