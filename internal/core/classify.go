package core

import (
	"errors"
	"fmt"
	"time"
)

// ULFM error classification for collectives.
//
// When a rank dies mid-collective, different survivors see the death
// through different symptoms depending on where their schedule was: a
// rank blocked on a receive from the victim is eventually poisoned by
// the failure detector and surfaces ErrProcFailed, but a rank whose
// next step is a *send* to the victim hits the torn-down link
// immediately and gets a raw ErrLinkDown — often milliseconds before
// the detector's DeadAfter window closes. Both ranks observed the same
// event; only one got the taxonomy error recovery code can act on.
//
// classifyCommErr closes that gap: when the worker runs a liveness
// detector, a link-level failure is held until the detector delivers
// its verdict (peer dead → ErrProcFailed, communicator revoked →
// ErrRevoked) or the verdict window expires, in which case the raw
// error stands — a transient link flap with nobody dead is still a
// link error. Without a detector there is no authority to reinterpret
// the failure and the raw error always stands (matrix tests that
// inject LinkDown without heartbeats rely on this).

// classifyCommErr maps a link-level collective failure into the ULFM
// taxonomy using the worker's failure detector, as described above.
// Errors that are nil, already classified, or not link failures pass
// through untouched.
func (c *Comm) classifyCommErr(err error) error {
	if err == nil || !errors.Is(err, ErrLinkDown) ||
		errors.Is(err, ErrProcFailed) || errors.Is(err, ErrRevoked) {
		return err
	}
	det := c.w.Detector()
	if det == nil {
		return err
	}
	// The peer fell silent at or before the link error, so the verdict
	// arrives within DeadAfter of *now*; the extra half-window plus a
	// constant absorbs probe cadence and scheduler slack.
	deadline := time.Now().Add(det.DeadAfter() + det.DeadAfter()/2 + 100*time.Millisecond)
	for {
		if c.Revoked() {
			return fmt.Errorf("%w (link failure during revocation: %v)", ErrRevoked, err)
		}
		if len(c.Failed()) > 0 {
			return fmt.Errorf("%w (detected after link failure: %v)", ErrProcFailed, err)
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(time.Millisecond)
	}
}
