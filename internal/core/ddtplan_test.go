package core

import (
	"bytes"
	"testing"

	"mpicd/internal/ddt"
	"mpicd/internal/ucp"
)

// Plan-backed derived-datatype transport adapters: the streaming path
// (ucp.Generic over ddtOps) must survive worst-case 1-byte fragmentation
// at every offset, and the region path must expose the same wire stream
// zero-copy. These are the core-layer halves of the ddt plan tests: the
// same kernels, driven through the interfaces the transport actually
// uses mid-transfer.

func ddtFill(n int64) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*11 + 5)
	}
	return b
}

// TestDDTStreamOneByteFragments drives the generic pack adapter the way
// a maximally fragmented transport would: reading and writing the wire
// stream one byte at a time at every virtual offset, including offsets
// that resume mid-run. The stream must byte-match the plan's one-shot
// pack and the unpacked destination must round-trip.
func TestDDTStreamOneByteFragments(t *testing.T) {
	typ, err := ddt.Struct([]int{3, 1}, []int64{0, 16}, []*ddt.Type{ddt.Int32, ddt.Float64})
	if err != nil {
		t.Fatal(err)
	}
	d := FromDDT(typ)
	const count = 5
	src := ddtFill(typ.Span(count))
	ref := make([]byte, typ.PackedSize(count))
	if _, err := typ.Pack(src, count, ref); err != nil {
		t.Fatal(err)
	}

	ss, err := d.transport().SendState(src, count)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Size() != int64(len(ref)) {
		t.Fatalf("send state size %d, want %d", ss.Size(), len(ref))
	}
	one := make([]byte, 1)
	for off := int64(0); off < int64(len(ref)); off++ {
		n, err := ss.ReadAt(one, off)
		if n != 1 || (err != nil && off+1 < int64(len(ref))) {
			t.Fatalf("ReadAt(off=%d) = %d, %v", off, n, err)
		}
		if one[0] != ref[off] {
			t.Fatalf("ReadAt(off=%d) = %#x, want %#x", off, one[0], ref[off])
		}
	}
	if err := ss.Finish(); err != nil {
		t.Fatal(err)
	}

	dst := make([]byte, typ.Span(count))
	rs, err := d.transport().RecvState(dst, count, ucp.RecvInfo{Total: int64(len(ref))})
	if err != nil {
		t.Fatal(err)
	}
	// Scatter in reverse order: every 1-byte write must land on the right
	// data byte independent of delivery order.
	for off := int64(len(ref)) - 1; off >= 0; off-- {
		if _, err := rs.WriteAt(ref[off:off+1], off); err != nil {
			t.Fatalf("WriteAt(off=%d): %v", off, err)
		}
	}
	if err := rs.Finish(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(ref))
	if _, err := typ.Pack(dst, count, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("1-byte scattered receive lost data bytes")
	}
}

// TestDDTRegionPath exercises the zero-copy branch: a layout with long
// contiguous runs above the rendezvous thresholds must lower to the
// pooled iovec state on both sides, expose direct windows into the
// application buffer, and still produce the packed wire stream.
func TestDDTRegionPath(t *testing.T) {
	typ, err := ddt.Vector(64, 128, 256, ddt.Float64)
	if err != nil {
		t.Fatal(err)
	}
	const count = 16
	dt := ddtType{t: typ, plan: typ.Plan()}
	if !dt.useRegions(count) {
		t.Fatalf("layout should select the region path (regions=%d total=%d)",
			typ.Plan().RegionCount(count), typ.PackedSize(count))
	}
	src := ddtFill(typ.Span(count))
	ss, err := dt.SendState(src, count)
	if err != nil {
		t.Fatal(err)
	}
	iov, ok := ss.(*ddtIovState)
	if !ok {
		t.Fatalf("send state is %T, want *ddtIovState", ss)
	}
	if iov.NumRegions() <= 1 {
		t.Fatalf("region path exposed %d regions", iov.NumRegions())
	}
	ref := make([]byte, typ.PackedSize(count))
	if _, err := typ.Pack(src, count, ref); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(ref))
	if n, err := iov.ReadAt(got, 0); int64(n) != int64(len(ref)) || (err != nil && n != len(ref)) {
		t.Fatalf("iov ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("iovec stream differs from packed stream")
	}
	// Direct windows must alias the application buffer (zero-copy), not a
	// staging copy.
	win, ok := iov.Window(0, 128)
	if !ok || len(win) != 128 {
		t.Fatalf("Window(0,128) = %d bytes, ok=%v", len(win), ok)
	}
	if &win[0] != &src[0] {
		t.Fatal("window does not alias the application buffer")
	}
	if err := iov.Finish(); err != nil {
		t.Fatal(err)
	}
	if iov.scratch != nil {
		t.Fatal("Finish did not return the region scratch to the pool")
	}

	// Receive side: scatter the packed stream through the iovec sink and
	// verify the destination holds the data bytes.
	dst := make([]byte, typ.Span(count))
	rs, err := dt.RecvState(dst, count, ucp.RecvInfo{Total: int64(len(ref))})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rs.(*ddtIovState); !ok {
		t.Fatalf("recv state is %T, want *ddtIovState", rs)
	}
	if _, err := rs.WriteAt(ref, 0); err != nil {
		t.Fatal(err)
	}
	if err := rs.Finish(); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, len(ref))
	if _, err := typ.Pack(dst, count, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, ref) {
		t.Fatal("region-path receive lost data bytes")
	}
}

// TestDDTPlanSharedAcrossDatatypes: committing the same layout twice —
// including through Dup — must hand both Datatypes the same compiled
// plan from the cache, not recompile it.
func TestDDTPlanSharedAcrossDatatypes(t *testing.T) {
	a, err := ddt.Vector(7, 3, 5, ddt.Int32)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Dup()
	d1, d2 := FromDDT(a), FromDDT(b)
	if d1.plan == nil || d1.plan != d2.plan {
		t.Fatal("Dup'd datatype did not share the compiled plan")
	}
}
