package core

import (
	"fmt"
	"time"
)

// Nonblocking collectives (MPI_Ibarrier and friends). Each call reserves
// its collective epoch synchronously — so the caller's call order defines
// the matching sequence, exactly as for blocking collectives — and then
// runs the same schedule the blocking form uses on a per-call goroutine.
// Multiple nonblocking collectives may be outstanding on one communicator
// at once; the epoch in every message tag keeps them from cross-matching.
//
// As in MPI, all ranks must start the same collectives in the same order
// on a given communicator, and the buffers belong to the operation until
// the handle completes.

// CollRequest is a pending nonblocking collective. Its interface mirrors
// Request (Wait/WaitTimeout/Test/Done), minus the Status — collectives
// have no per-message status.
type CollRequest struct {
	done chan struct{}
	err  error
}

// Wait blocks until the collective completes and returns its error.
func (r *CollRequest) Wait() error {
	<-r.done
	return r.err
}

// WaitTimeout blocks until completion or until d elapses, returning
// ErrTimeout in the latter case. The collective keeps running; a late
// completion can still be observed with Test or Wait.
func (r *CollRequest) WaitTimeout(d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-r.done:
		return r.err
	case <-timer.C:
		return ErrTimeout
	}
}

// Test reports completion without blocking.
func (r *CollRequest) Test() (bool, error) {
	select {
	case <-r.done:
		return true, r.err
	default:
		return false, nil
	}
}

// Done exposes the completion channel for select loops.
func (r *CollRequest) Done() <-chan struct{} { return r.done }

// startColl runs a collective schedule on its own goroutine.
func startColl(run func() error) *CollRequest {
	r := &CollRequest{done: make(chan struct{})}
	go func() {
		r.err = run()
		close(r.done)
	}()
	return r
}

// Ibarrier starts a nonblocking barrier: the returned request completes
// once every rank has entered its matching Ibarrier (or Barrier epoch —
// but as in MPI, blocking and nonblocking calls must pair consistently
// across ranks).
func (c *Comm) Ibarrier() *CollRequest {
	if err := c.checkRevoked(); err != nil {
		r := &CollRequest{done: make(chan struct{}), err: err}
		close(r.done)
		return r
	}
	epoch := c.nextEpoch()
	return startColl(func() error { return c.classifyCommErr(c.barrier(epoch, nil)) })
}

// Ibcast starts a nonblocking broadcast with Bcast's algorithm selection.
// Argument errors are reported synchronously.
func (c *Comm) Ibcast(buf any, count Count, dt *Datatype, root int) (*CollRequest, error) {
	if err := c.checkRevoked(); err != nil {
		return nil, err
	}
	epoch := c.nextEpoch()
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("%w: ibcast root %d", ErrInvalidComm, root)
	}
	return startColl(func() error { return c.classifyCommErr(c.bcast(buf, count, dt, root, epoch, nil)) }), nil
}

// Iallreduce starts a nonblocking allreduce with Allreduce's algorithm
// selection. Argument errors are reported synchronously.
func (c *Comm) Iallreduce(sendBuf, recvBuf []byte, count Count, dt *Datatype, op ReduceOp) (*CollRequest, error) {
	if err := c.checkRevoked(); err != nil {
		return nil, err
	}
	epoch := c.nextEpoch()
	bytes, err := c.fixedSize("iallreduce", count, dt)
	if err != nil {
		return nil, err
	}
	if err := checkLen("iallreduce send", sendBuf, bytes); err != nil {
		return nil, err
	}
	if err := checkLen("iallreduce receive", recvBuf, bytes); err != nil {
		return nil, err
	}
	return startColl(func() error {
		return c.classifyCommErr(c.allreduce(sendBuf, recvBuf, bytes, count, dt, op, epoch, nil))
	}), nil
}

// Iallgather starts a nonblocking allgather with Allgather's algorithm
// selection. Argument errors are reported synchronously.
func (c *Comm) Iallgather(sendBuf []byte, count Count, dt *Datatype, recvBuf []byte) (*CollRequest, error) {
	if err := c.checkRevoked(); err != nil {
		return nil, err
	}
	epoch := c.nextEpoch()
	bytes, err := c.fixedSize("iallgather", count, dt)
	if err != nil {
		return nil, err
	}
	if err := checkLen("iallgather send", sendBuf, bytes); err != nil {
		return nil, err
	}
	if err := checkLen("iallgather receive", recvBuf, bytes*int64(c.Size())); err != nil {
		return nil, err
	}
	return startColl(func() error { return c.classifyCommErr(c.allgather(sendBuf, recvBuf, bytes, epoch, nil)) }), nil
}
