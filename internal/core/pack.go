package core

import (
	"fmt"
	"io"
	"sync"
)

// regionScratch recycles the region-slice scratch PackedSize and Unpack
// hand to handler.Regions, keeping the custom-datatype hot path free of
// per-call allocations. Slices are cleared before being pooled so no
// application memory is retained.
var regionScratch = sync.Pool{New: func() any { return new([][]byte) }}

// getRegionScratch returns a pooled region slice of length n.
func getRegionScratch(n Count) *[][]byte {
	sp := regionScratch.Get().(*[][]byte)
	if int64(cap(*sp)) < n {
		*sp = make([][]byte, n)
	}
	*sp = (*sp)[:n]
	return sp
}

// putRegionScratch drops region references and recycles the slice.
func putRegionScratch(sp *[][]byte) {
	s := *sp
	for i := range s {
		s[i] = nil
	}
	*sp = s[:0]
	regionScratch.Put(sp)
}

// PackedSize returns the packed byte size of count elements of dt
// (MPI_Pack_size). For custom datatypes it runs the handler's query
// callback against buf.
func PackedSize(buf any, count Count, dt *Datatype) (Count, error) {
	switch dt.kind {
	case kindBytes:
		if count < 0 {
			b, ok := buf.([]byte)
			if !ok {
				return 0, fmt.Errorf("core: bytes datatype requires []byte, got %T", buf)
			}
			return int64(len(b)), nil
		}
		return count, nil
	case kindDDT:
		return dt.elem.PackedSize(count), nil
	default:
		h := dt.handler
		state, err := h.State(buf, count)
		if err != nil {
			return 0, err
		}
		defer h.FreeState(state)
		packed, err := h.PackedSize(state, buf, count)
		if err != nil {
			return 0, err
		}
		nreg, err := h.RegionCount(state, buf, count)
		if err != nil {
			return 0, err
		}
		sp := getRegionScratch(nreg)
		defer putRegionScratch(sp)
		regions := *sp
		if nreg > 0 {
			if err := h.Regions(state, buf, count, regions); err != nil {
				return 0, err
			}
		}
		for _, r := range regions {
			packed += int64(len(r))
		}
		return packed, nil
	}
}

// Pack serializes count elements of dt at buf into dst (MPI_Pack) and
// returns the number of bytes written. This is the "manual pack before a
// byte send" baseline of the paper's evaluation when driven by a derived
// datatype; applications usually write their own loops instead.
func Pack(buf any, count Count, dt *Datatype, dst []byte) (Count, error) {
	switch dt.kind {
	case kindBytes:
		b, ok := buf.([]byte)
		if !ok {
			return 0, fmt.Errorf("core: bytes datatype requires []byte, got %T", buf)
		}
		if count < 0 {
			count = int64(len(b))
		}
		if int64(len(dst)) < count {
			return 0, fmt.Errorf("core: pack destination too small (%d < %d)", len(dst), count)
		}
		return int64(copy(dst[:count], b)), nil
	case kindDDT:
		b, ok := buf.([]byte)
		if !ok {
			return 0, fmt.Errorf("core: derived datatype requires a []byte image, got %T", buf)
		}
		return dt.elem.Pack(b, count, dst)
	default:
		// Full serialization through the custom handler: packed part then
		// regions, matching the wire image.
		st, err := customType{dt}.SendState(buf, count)
		if err != nil {
			return 0, err
		}
		total := st.Size()
		if int64(len(dst)) < total {
			st.Finish()
			return 0, fmt.Errorf("core: pack destination too small (%d < %d)", len(dst), total)
		}
		var off int64
		for off < total {
			n, rerr := st.ReadAt(dst[off:total], off)
			off += int64(n)
			if rerr != nil && rerr != io.EOF {
				st.Finish()
				return off, rerr
			}
			if n == 0 {
				break
			}
		}
		if err := st.Finish(); err != nil {
			return off, err
		}
		if off != total {
			return off, fmt.Errorf("core: short pack (%d of %d bytes)", off, total)
		}
		return off, nil
	}
}

// Unpack deserializes src into count elements of dt at buf (MPI_Unpack).
func Unpack(src []byte, buf any, count Count, dt *Datatype) error {
	switch dt.kind {
	case kindBytes:
		b, ok := buf.([]byte)
		if !ok {
			return fmt.Errorf("core: bytes datatype requires []byte, got %T", buf)
		}
		if len(src) > len(b) {
			return fmt.Errorf("core: unpack destination too small (%d < %d)", len(b), len(src))
		}
		copy(b, src)
		return nil
	case kindDDT:
		b, ok := buf.([]byte)
		if !ok {
			return fmt.Errorf("core: derived datatype requires a []byte image, got %T", buf)
		}
		return dt.elem.Unpack(b, count, src)
	default:
		h := dt.handler
		state, err := h.State(buf, count)
		if err != nil {
			return err
		}
		defer h.FreeState(state)
		packed, err := h.PackedSize(state, buf, count)
		if err != nil {
			return err
		}
		if packed > int64(len(src)) {
			return fmt.Errorf("core: packed part (%d bytes) exceeds source (%d)", packed, len(src))
		}
		if packed > 0 {
			if err := h.Unpack(state, buf, count, 0, src[:packed]); err != nil {
				return err
			}
		}
		rest := src[packed:]
		nreg, err := h.RegionCount(state, buf, count)
		if err != nil {
			return err
		}
		sp := getRegionScratch(nreg)
		defer putRegionScratch(sp)
		regions := *sp
		if nreg > 0 {
			if err := h.Regions(state, buf, count, regions); err != nil {
				return err
			}
		}
		for _, r := range regions {
			if int64(len(rest)) < int64(len(r)) {
				return fmt.Errorf("core: unpack source exhausted before regions were filled")
			}
			copy(r, rest[:len(r)])
			rest = rest[len(r):]
		}
		return nil
	}
}
