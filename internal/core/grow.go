package core

// Elastic re-admission: growing a shrunk communicator back to size by
// admitting respawned processes under their old fabric ranks.
//
// After a rank dies, the survivors Revoke → Agree → Shrink and continue
// on a smaller communicator. A supervisor (cmd/mpicd-run -supervise)
// respawns the dead process; the replacement registers with the
// launcher's join service and calls JoinWorld, while the survivors call
// Grow with the replacement's fabric rank (and, on address-bearing
// fabrics, its new listening address). Both sides meet in a three-way
// control exchange on context 0 — a matching context no communicator
// ever uses (the world is context 1 and agreed ids count upward), so
// join traffic can never collide with application matching:
//
//	survivor                                joiner
//	--------                                ------
//	Revive(rank), UpdateAddr(rank, addr)
//	invite ────────────────────────────────▶ (recv, AnySource)
//	        ◀──────────────────────────── announce
//	[all survivors: agree on abort-or-commit + next context id]
//	leader: world spec ────────────────────▶ (recv, AnySource)
//	[everyone: barrier on the grown communicator]
//
// The invitation step exists for a delivery-ordering reason, not
// politeness: reliable eager messages are acknowledged when fully
// buffered, before they match. An announcement sent blind could land —
// and be acked, ending retransmission — while the survivor still holds
// the rank's death record, and Revive's purge of the dead incarnation's
// buffered traffic would then destroy the only copy. Because the
// survivor invites strictly after Revive, and the joiner announces only
// in reply, the announcement is causally ordered after the purge and can
// never be swallowed by it.
//
// Abort is agreed, not assumed: a survivor whose handshake fails (the
// replacement died too, or the window expired) contributes its own rank
// bit to the agreement, so every survivor sees a non-zero mask and
// returns ErrProcFailed together — the shrunk communicator remains
// usable for another Shrink/Grow round. The leader tells waiting joiners
// with an empty world spec. The agreed context id is consumed either
// way, keeping every rank's id sequence aligned.
//
// Renumbering is deterministic: the grown communicator orders its
// members by fabric rank, so re-growing a shrunk world communicator back
// to full size reproduces the original world numbering exactly.

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"mpicd/internal/layout"
	"mpicd/internal/ucp"
)

// JoinPeer names one process being re-admitted by Grow: the fabric rank
// it is reclaiming and, on address-bearing fabrics (TCP), the listening
// address of the new incarnation. Addr is empty when the fabric derives
// peer addresses from ranks (in-process, shared-memory segment paths).
type JoinPeer struct {
	Rank int
	Addr string
}

// Default patience windows for the two sides of re-admission. Within the
// window, retryable failures (request timeouts while the counterpart is
// still booting) are absorbed and retried; past it the protocol aborts.
const (
	DefaultGrowWindow = 45 * time.Second
	DefaultJoinWindow = 90 * time.Second
)

// Join control payloads (all fields 8-byte little-endian).
const (
	joinInvPayload = 8  // [survivor fabric rank]
	joinAnnPayload = 8  // [joiner fabric rank]
	joinSpecHdr    = 16 // [context id][member count], then count fabric ranks
)

// errJoinDone aborts the joiner's posted invitation receive once the
// world spec has arrived.
var errJoinDone = errors.New("core: join complete")

// joinTag builds a context-0 control tag for the given join phase, with
// the sender's fabric rank in the source field (joiners have no comm
// rank, so join tags carry fabric ranks where collective tags carry comm
// ranks).
func joinTag(src int, op collOp) ucp.Tag {
	return ucp.Tag(uint64(src)<<srcShift | collBit | uint64(op)<<collOpShift)
}

// joinAnyMask matches a join tag from any sender: every bit participates
// except the source field.
var joinAnyMask = ^ucp.Tag(uint64(0xFFFF) << srcShift)

// FabricRanks returns the fabric (world) rank of each member, indexed by
// communicator rank. Elastic recovery uses it to compute which world
// ranks a shrunk communicator is missing — exactly the set a Grow call
// must re-admit to restore the original world.
func (c *Comm) FabricRanks() []int {
	return append([]int(nil), c.group...)
}

// Grow admits respawned processes into the communicator under their old
// fabric ranks, with the default patience window. Collective over the
// communicator's (surviving) members; every member must pass the same
// peer set. The respawned processes must concurrently call JoinWorld on
// their fresh workers. On success every participant — survivor and
// joiner — holds a new communicator whose members are ordered by fabric
// rank; the caller's communicator remains valid either way.
//
// A non-nil communicator alongside a non-nil error means the grown
// communicator was built but its opening barrier failed (a member died
// immediately); the caller should Revoke and Shrink it.
func (c *Comm) Grow(peers []JoinPeer) (*Comm, error) {
	return c.GrowWithin(peers, DefaultGrowWindow)
}

// GrowWithin is Grow with an explicit patience window bounding how long
// the handshake waits out a still-booting replacement.
func (c *Comm) GrowWithin(peers []JoinPeer, window time.Duration) (*Comm, error) {
	if err := c.checkRevoked(); err != nil {
		return nil, err
	}
	if c.rv.fenced.Load() {
		return nil, fmt.Errorf("%w: grow on a fenced communicator", ErrExcluded)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("%w: grow with no peers", ErrInvalidComm)
	}
	if window <= 0 {
		window = DefaultGrowWindow
	}
	ps := append([]JoinPeer(nil), peers...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Rank < ps[j].Rank })
	for i, p := range ps {
		if p.Rank < 0 || p.Rank >= c.w.Size() {
			return nil, fmt.Errorf("%w: grow peer fabric rank %d out of range [0,%d)", ErrInvalidComm, p.Rank, c.w.Size())
		}
		if _, ok := c.inverse[p.Rank]; ok {
			return nil, fmt.Errorf("%w: grow peer fabric rank %d is already a member", ErrInvalidComm, p.Rank)
		}
		if i > 0 && ps[i-1].Rank == p.Rank {
			return nil, fmt.Errorf("%w: grow peer fabric rank %d listed twice", ErrInvalidComm, p.Rank)
		}
	}

	// Re-admit locally before any traffic: lift the death records, then
	// repoint the fabric at the new incarnations' addresses.
	for _, p := range ps {
		if err := c.w.Revive(p.Rank); err != nil {
			return nil, err
		}
		if p.Addr != "" {
			if err := c.w.UpdateAddr(p.Rank, p.Addr); err != nil {
				return nil, err
			}
		}
	}

	deadline := time.Now().Add(window)
	var growErr error
	for _, p := range ps {
		if growErr = c.joinHandshake(p.Rank, deadline); growErr != nil {
			break
		}
	}

	// Agree on abort-or-commit and the new context id in one shot. A
	// failed handshake is contributed as this rank's own bit: the mask
	// has no bit to spare for a joiner (joiners are outside the
	// communicator), and any non-zero mask aborts identically.
	var local uint64
	if growErr != nil {
		local = 1 << uint(c.rank)
	}
	mask, cid, err := c.agreeFull(local, *c.nextCID)
	if err != nil {
		if growErr != nil {
			return nil, fmt.Errorf("grow: %w (agreement also failed: %v)", growErr, err)
		}
		return nil, err
	}
	if cid >= 1<<16 {
		return nil, fmt.Errorf("%w: communicator context ids exhausted", ErrInvalidComm)
	}
	*c.nextCID = cid + 1

	if mask != 0 {
		// Abort, together. The lowest live rank releases waiting joiners
		// with an empty spec; fire-and-forget, like every notice to a
		// possibly-dead peer.
		leader := -1
		for r := 0; r < c.Size(); r++ {
			if mask&(1<<uint(r)) == 0 {
				leader = r
				break
			}
		}
		if leader == c.rank {
			abort := make([]byte, joinSpecHdr)
			layout.PutI64(abort, 0, int64(cid))
			for _, p := range ps {
				_, _ = c.w.Send(p.Rank, joinTag(c.w.Rank(), opJoinSpec), TypeBytes.transport(), abort, joinSpecHdr, 0, ucp.ProtoEager)
			}
		}
		if growErr != nil {
			return nil, fmt.Errorf("grow aborted: %w", growErr)
		}
		if mask&(1<<uint(c.rank)) != 0 {
			return nil, fmt.Errorf("%w: grow: calling rank %d is in the agreed failed set", ErrExcluded, c.rank)
		}
		return nil, fmt.Errorf("%w: grow aborted by the surviving group", ErrProcFailed)
	}

	// Commit: members ordered by fabric rank, deterministically on every
	// participant.
	group := make([]int, 0, c.Size()+len(ps))
	group = append(group, c.group...)
	for _, p := range ps {
		group = append(group, p.Rank)
	}
	sort.Ints(group)
	inverse := make(map[int]int, len(group))
	myRank := -1
	for i, fr := range group {
		inverse[fr] = i
		if fr == c.w.Rank() {
			myRank = i
		}
	}

	// The leader (comm rank 0; mask is zero here, so it is alive) hands
	// each joiner the agreed world spec. Send errors are not an abort —
	// the agreement is committed — the opening barrier below surfaces a
	// joiner that died at the last moment.
	if c.rank == 0 {
		spec := make([]byte, joinSpecHdr+8*len(group))
		layout.PutI64(spec, 0, int64(cid))
		layout.PutI64(spec, 8, int64(len(group)))
		for i, fr := range group {
			layout.PutI64(spec, joinSpecHdr+8*i, int64(fr))
		}
		for _, p := range ps {
			r, err := c.w.Send(p.Rank, joinTag(c.w.Rank(), opJoinSpec), TypeBytes.transport(), spec, int64(len(spec)), 0, ucp.ProtoEager)
			if err == nil {
				_ = r.Wait()
			}
		}
	}

	nc := &Comm{
		w: c.w, ctx: cid, group: group, inverse: inverse, rank: myRank,
		nextCID: c.nextCID, collEpoch: new(atomic.Uint64), tuning: c.tuning,
	}
	nc.initULFM()
	if err := nc.Barrier(); err != nil {
		return nc, fmt.Errorf("grow: opening barrier on the grown communicator: %w", err)
	}
	return nc, nil
}

// joinHandshake runs one survivor↔joiner invite/announce exchange.
// Request timeouts before the deadline re-invite (each invitation
// triggers a fresh announcement, so the retry is self-healing against
// loss on either leg); anything else — including the peer dying again —
// is terminal for this grow attempt.
func (c *Comm) joinHandshake(peer int, deadline time.Time) error {
	inv := make([]byte, joinInvPayload)
	layout.PutI64(inv, 0, int64(c.w.Rank()))
	ann := make([]byte, joinAnnPayload)
	for {
		r, err := c.w.Send(peer, joinTag(c.w.Rank(), opJoinInv), TypeBytes.transport(), inv, joinInvPayload, 0, ucp.ProtoEager)
		if err == nil {
			err = r.Wait()
		}
		if err != nil {
			if errors.Is(err, ucp.ErrTimeout) && time.Now().Before(deadline) {
				continue
			}
			return fmt.Errorf("inviting fabric rank %d: %w", peer, err)
		}
		rr, err := c.w.Recv(peer, joinTag(peer, opJoinAnn), ^ucp.Tag(0), TypeBytes.transport(), ann, joinAnnPayload)
		if err != nil {
			return err
		}
		if err = rr.Wait(); err == nil {
			return nil
		}
		if errors.Is(err, ucp.ErrTimeout) && time.Now().Before(deadline) {
			continue
		}
		return fmt.Errorf("awaiting announcement from fabric rank %d: %w", peer, err)
	}
}

// JoinWorld is the joiner's half of re-admission, with the default
// patience window: called by a respawned process on its fresh worker
// (configured with the original world size, its old fabric rank, and a
// message-id base no prior incarnation used) while the survivors call
// Grow. It answers each survivor's invitation with an announcement,
// waits for the leader's world spec, and returns the grown communicator
// after its opening barrier. The tuning is the joiner's own — typically
// rebuilt from the launcher's placement report, matching the survivors'.
//
// An abort by the surviving group (a survivor died mid-grow, or the
// grow window expired) returns ErrProcFailed; the caller may simply
// call JoinWorld again to meet the survivors' next Grow attempt.
func JoinWorld(w *ucp.Worker, tuning CollTuning) (*Comm, error) {
	return JoinWorldWithin(w, tuning, DefaultJoinWindow)
}

// JoinWorldWithin is JoinWorld with an explicit patience window.
func JoinWorldWithin(w *ucp.Worker, tuning CollTuning, window time.Duration) (*Comm, error) {
	if window <= 0 {
		window = DefaultJoinWindow
	}
	deadline := time.Now().Add(window)
	self := w.Rank()

	// Answer invitations on a side goroutine for as long as the spec wait
	// runs: every survivor invites independently, and a re-invitation
	// after a lost announcement must be answered again.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		inv := make([]byte, joinInvPayload)
		ann := make([]byte, joinAnnPayload)
		layout.PutI64(ann, 0, int64(self))
		for {
			select {
			case <-stop:
				return
			default:
			}
			r, err := w.Recv(-1, joinTag(0, opJoinInv), joinAnyMask, TypeBytes.transport(), inv, joinInvPayload)
			if err == nil {
				err = r.Wait()
			}
			if err != nil {
				if errors.Is(err, ucp.ErrTimeout) {
					continue
				}
				if errors.Is(err, ucp.ErrProcFailed) {
					// Every peer looks dead — the joiner outwaited its own
					// detector before the survivors' first contact, so even
					// posting the receive fails. Invitations are still
					// deliverable (they buffer as unexpected and match at
					// the next post) and prove their sender alive; back off
					// and keep listening rather than dying here.
					time.Sleep(10 * time.Millisecond)
					continue
				}
				return // aborted by errJoinDone, or the worker closed
			}
			peer := int(layout.I64(inv, 0))
			if peer == self || peer < 0 || peer >= w.Size() {
				continue
			}
			if w.PeerFailed(peer) {
				// A just-delivered invitation is proof of life; the local
				// verdict was the detector outwaiting a quiet boot phase.
				_ = w.Revive(peer)
			}
			_, _ = w.Send(peer, joinTag(self, opJoinAnn), TypeBytes.transport(), ann, joinAnnPayload, 0, ucp.ProtoEager)
		}
	}()
	stopResponder := func() {
		close(stop)
		for {
			w.AbortWhere(func(from int, tag, mask ucp.Tag) bool {
				return tag == joinTag(0, opJoinInv) && mask == joinAnyMask
			}, errJoinDone)
			select {
			case <-done:
				return
			case <-time.After(time.Millisecond):
				// The responder was between receives when the abort swept;
				// sweep again once its next post lands.
			}
		}
	}

	specLen := joinSpecHdr + 8*w.Size()
	spec := make([]byte, specLen)
	for {
		r, err := w.Recv(-1, joinTag(0, opJoinSpec), joinAnyMask, TypeBytes.transport(), spec, int64(specLen))
		if err == nil {
			err = r.Wait()
		}
		if err == nil {
			break
		}
		if (errors.Is(err, ucp.ErrTimeout) || errors.Is(err, ucp.ErrProcFailed)) && time.Now().Before(deadline) {
			if errors.Is(err, ucp.ErrProcFailed) {
				time.Sleep(10 * time.Millisecond)
			}
			continue
		}
		stopResponder()
		return nil, fmt.Errorf("join: awaiting world spec: %w", err)
	}
	stopResponder()

	cid := uint64(layout.I64(spec, 0))
	n := int(layout.I64(spec, 8))
	if n == 0 {
		return nil, fmt.Errorf("%w: join aborted by the surviving group", ErrProcFailed)
	}
	if n < 0 || n > w.Size() || cid == 0 || cid >= 1<<16 {
		return nil, fmt.Errorf("%w: join: malformed world spec (members=%d cid=%d)", ErrInvalidComm, n, cid)
	}
	group := make([]int, n)
	inverse := make(map[int]int, n)
	myRank := -1
	for i := range group {
		fr := int(layout.I64(spec, joinSpecHdr+8*i))
		if fr < 0 || fr >= w.Size() {
			return nil, fmt.Errorf("%w: join: spec member %d has fabric rank %d out of range [0,%d)", ErrInvalidComm, i, fr, w.Size())
		}
		group[i] = fr
		inverse[fr] = i
		if fr == self {
			myRank = i
		}
	}
	if myRank < 0 {
		return nil, fmt.Errorf("%w: join: world spec omits this rank (%d)", ErrInvalidComm, self)
	}
	// Quiet peers may have been outwaited by the local detector during
	// the join; the agreed spec says they are members, which outranks the
	// silence-based verdict. A member that truly died re-fails on first
	// contact.
	for _, fr := range group {
		if fr != self && w.PeerFailed(fr) {
			_ = w.Revive(fr)
		}
	}
	next := cid + 1
	nc := &Comm{
		w: w, ctx: cid, group: group, inverse: inverse, rank: myRank,
		nextCID: &next, collEpoch: new(atomic.Uint64), tuning: tuning,
	}
	nc.initULFM()
	if err := nc.Barrier(); err != nil {
		return nc, fmt.Errorf("join: opening barrier on the grown communicator: %w", err)
	}
	return nc, nil
}
