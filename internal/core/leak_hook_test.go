package core

import (
	"testing"
	"time"

	"mpicd/internal/obs"
)

// leakChecked arms a goroutine-leak gate for the calling test: a
// snapshot now, a Check at cleanup. Recovery and fault tests grab
// goroutines aggressively (schedule runners, redial campaigns, revoke
// listeners, detector probers, persistent-collective workers) on paths
// where ranks die mid-protocol — exactly where a forgotten goroutine
// hides. The settle window absorbs asynchronous unwinding after the
// world closes.
//
// The gate is skipped when the test already failed: a failing rank
// legitimately abandons its schedule, and the leak report would bury
// the real error.
func leakChecked(t *testing.T) {
	t.Helper()
	snap := obs.TakeLeakSnapshot()
	t.Cleanup(func() {
		if t.Failed() {
			return
		}
		if err := snap.Check(10 * time.Second); err != nil {
			t.Errorf("goroutine leak after clean run: %v", err)
		}
	})
}
