package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"mpicd/internal/ddt"
	"mpicd/internal/layout"
)

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*17 + seed
	}
	return b
}

// run2 runs a sender function on rank 0 and a receiver function on rank 1.
func run2(t *testing.T, opt Options, rank0, rank1 func(c *Comm) error) {
	t.Helper()
	err := Run(2, opt, func(c *Comm) error {
		if c.Rank() == 0 {
			return rank0(c)
		}
		return rank1(c)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBytesSendRecv(t *testing.T) {
	data := pattern(5000, 1)
	run2(t, Options{},
		func(c *Comm) error { return c.Send(data, -1, TypeBytes, 1, 7) },
		func(c *Comm) error {
			out := make([]byte, 5000)
			st, err := c.Recv(out, -1, TypeBytes, 0, 7)
			if err != nil {
				return err
			}
			if st.Source != 0 || st.Tag != 7 || st.Bytes != 5000 {
				return fmt.Errorf("status = %+v", st)
			}
			if st.GetCount(TypeBytes) != 5000 {
				return fmt.Errorf("GetCount = %d", st.GetCount(TypeBytes))
			}
			if !bytes.Equal(out, data) {
				return errors.New("data mismatch")
			}
			return nil
		})
}

func TestDerivedDatatypeSendRecv(t *testing.T) {
	// struct-simple: 3 int32 + gap + float64, extent 24.
	st, err := ddt.Struct([]int{3, 1}, []int64{0, 16}, []*ddt.Type{ddt.Int32, ddt.Float64})
	if err != nil {
		t.Fatal(err)
	}
	dt := FromDDT(st)
	const count = 50
	src := pattern(int(st.Span(count)), 2)
	run2(t, Options{},
		func(c *Comm) error { return c.Send(src, count, dt, 1, 1) },
		func(c *Comm) error {
			dst := make([]byte, st.Span(count))
			status, err := c.Recv(dst, count, dt, 0, 1)
			if err != nil {
				return err
			}
			if status.GetCount(dt) != count {
				return fmt.Errorf("GetCount = %d", status.GetCount(dt))
			}
			// Compare packed forms: gaps are not transferred.
			a := make([]byte, st.PackedSize(count))
			b := make([]byte, st.PackedSize(count))
			st.Pack(src, count, a)
			st.Pack(dst, count, b)
			if !bytes.Equal(a, b) {
				return errors.New("derived datatype transfer mismatch")
			}
			return nil
		})
}

func TestDerivedContigFastPath(t *testing.T) {
	ct, _ := ddt.Contiguous(100, ddt.Float64)
	dt := FromDDT(ct)
	src := pattern(int(ct.Span(4)), 3)
	run2(t, Options{},
		func(c *Comm) error { return c.Send(src, 4, dt, 1, 1) },
		func(c *Comm) error {
			dst := make([]byte, ct.Span(4))
			if _, err := c.Recv(dst, 4, dt, 0, 1); err != nil {
				return err
			}
			if !bytes.Equal(dst, src) {
				return errors.New("contig ddt mismatch")
			}
			return nil
		})
}

func TestAnySourceAnyTag(t *testing.T) {
	err := Run(3, Options{}, func(c *Comm) error {
		if c.Rank() != 2 {
			return c.Send([]byte{byte(c.Rank())}, 1, TypeBytes, 2, 10+c.Rank())
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			out := make([]byte, 1)
			st, err := c.Recv(out, 1, TypeBytes, AnySource, AnyTag)
			if err != nil {
				return err
			}
			if int(out[0]) != st.Source || st.Tag != 10+st.Source {
				return fmt.Errorf("status/source mismatch: %+v payload %d", st, out[0])
			}
			seen[st.Source] = true
		}
		if !seen[0] || !seen[1] {
			return errors.New("missing sources")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommIsolation(t *testing.T) {
	// A message sent on a dup'd communicator must not match a world recv.
	err := Run(2, Options{}, func(c *Comm) error {
		c2, err := c.Dup()
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := c2.Send([]byte{42}, 1, TypeBytes, 1, 5); err != nil {
				return err
			}
			return c.Send([]byte{1}, 1, TypeBytes, 1, 5)
		}
		out := make([]byte, 1)
		// World recv sees only the world message even though the dup
		// message arrived first.
		time.Sleep(20 * time.Millisecond)
		if _, err := c.Recv(out, 1, TypeBytes, 0, 5); err != nil {
			return err
		}
		if out[0] != 1 {
			return fmt.Errorf("world recv got dup-comm message (%d)", out[0])
		}
		if _, err := c2.Recv(out, 1, TypeBytes, 0, 5); err != nil {
			return err
		}
		if out[0] != 42 {
			return fmt.Errorf("dup recv got %d", out[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbeThenRecv(t *testing.T) {
	data := pattern(12345, 4)
	run2(t, Options{},
		func(c *Comm) error { return c.Send(data, -1, TypeBytes, 1, 3) },
		func(c *Comm) error {
			st, err := c.Probe(AnySource, 3)
			if err != nil {
				return err
			}
			if st.Bytes != 12345 {
				return fmt.Errorf("probe size = %d", st.Bytes)
			}
			out := make([]byte, st.Bytes)
			if _, err := c.Recv(out, -1, TypeBytes, st.Source, st.Tag); err != nil {
				return err
			}
			if !bytes.Equal(out, data) {
				return errors.New("probe+recv mismatch")
			}
			return nil
		})
}

func TestMprobeMrecvDynamicAllocation(t *testing.T) {
	// The mpi4py pattern: probe for size, allocate, matched-receive.
	data := pattern(54321, 5)
	run2(t, Options{},
		func(c *Comm) error { return c.Send(data, -1, TypeBytes, 1, 3) },
		func(c *Comm) error {
			m, err := c.Mprobe(0, 3)
			if err != nil {
				return err
			}
			out := make([]byte, m.Bytes)
			if _, err := c.MRecv(m, out, -1, TypeBytes); err != nil {
				return err
			}
			if !bytes.Equal(out, data) {
				return errors.New("mrecv mismatch")
			}
			return nil
		})
}

func TestIprobeNoMessage(t *testing.T) {
	err := Run(2, Options{}, func(c *Comm) error {
		if c.Rank() == 1 {
			_, ok, err := c.Iprobe(0, 9)
			if err != nil {
				return err
			}
			if ok {
				return errors.New("iprobe matched nothing sent")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingOverlap(t *testing.T) {
	const n = 16
	run2(t, Options{},
		func(c *Comm) error {
			reqs := make([]*Request, n)
			for i := range reqs {
				r, err := c.Isend(pattern(1000, byte(i)), -1, TypeBytes, 1, i)
				if err != nil {
					return err
				}
				reqs[i] = r
			}
			return WaitAll(reqs...)
		},
		func(c *Comm) error {
			bufs := make([][]byte, n)
			reqs := make([]*Request, n)
			// Post in reverse tag order to exercise matching.
			for i := n - 1; i >= 0; i-- {
				bufs[i] = make([]byte, 1000)
				r, err := c.Irecv(bufs[i], -1, TypeBytes, 0, i)
				if err != nil {
					return err
				}
				reqs[i] = r
			}
			if err := WaitAll(reqs...); err != nil {
				return err
			}
			for i := range bufs {
				if !bytes.Equal(bufs[i], pattern(1000, byte(i))) {
					return fmt.Errorf("tag %d corrupted", i)
				}
			}
			return nil
		})
}

func TestSendRecvCombined(t *testing.T) {
	err := Run(2, Options{}, func(c *Comm) error {
		peer := 1 - c.Rank()
		out := make([]byte, 8)
		mine := pattern(8, byte(c.Rank()))
		st, err := c.SendRecv(mine, -1, TypeBytes, peer, 1, out, -1, TypeBytes, peer, 1)
		if err != nil {
			return err
		}
		if st.Source != peer {
			return fmt.Errorf("status source = %d", st.Source)
		}
		if !bytes.Equal(out, pattern(8, byte(peer))) {
			return errors.New("sendrecv exchange mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTruncationSurfaces(t *testing.T) {
	run2(t, Options{},
		func(c *Comm) error { return c.Send(pattern(100, 1), -1, TypeBytes, 1, 1) },
		func(c *Comm) error {
			out := make([]byte, 10)
			_, err := c.Recv(out, -1, TypeBytes, 0, 1)
			if !errors.Is(err, ErrTruncated) {
				return fmt.Errorf("err = %v, want ErrTruncated", err)
			}
			return nil
		})
}

func TestPackUnpackHelpers(t *testing.T) {
	st, _ := ddt.Struct([]int{3, 1}, []int64{0, 16}, []*ddt.Type{ddt.Int32, ddt.Float64})
	dt := FromDDT(st)
	const count = 7
	src := pattern(int(st.Span(count)), 6)
	size, err := PackedSize(src, count, dt)
	if err != nil {
		t.Fatal(err)
	}
	if size != st.PackedSize(count) {
		t.Fatalf("PackedSize = %d", size)
	}
	packed := make([]byte, size)
	n, err := Pack(src, count, dt, packed)
	if err != nil || n != size {
		t.Fatalf("Pack = %d, %v", n, err)
	}
	dst := make([]byte, st.Span(count))
	if err := Unpack(packed, dst, count, dt); err != nil {
		t.Fatal(err)
	}
	repacked := make([]byte, size)
	st.Pack(dst, count, repacked)
	if !bytes.Equal(repacked, packed) {
		t.Fatal("pack/unpack roundtrip mismatch")
	}
}

func TestGetCountNonIntegral(t *testing.T) {
	ct, _ := ddt.Contiguous(3, ddt.Int32) // 12-byte elements
	dt := FromDDT(ct)
	st := Status{Bytes: 25}
	if got := st.GetCount(dt); got != -1 {
		t.Fatalf("GetCount of partial element = %d; want -1", got)
	}
	st.Bytes = 24
	if got := st.GetCount(dt); got != 2 {
		t.Fatalf("GetCount = %d; want 2", got)
	}
}

func TestTagValidation(t *testing.T) {
	err := Run(1, Options{}, func(c *Comm) error {
		if err := c.Send([]byte{1}, 1, TypeBytes, 0, -5); err == nil {
			return errors.New("negative tag accepted")
		}
		if err := c.Send([]byte{1}, 1, TypeBytes, 9, 0); err == nil {
			return errors.New("bad destination accepted")
		}
		if _, err := c.Irecv(make([]byte, 1), 1, TypeBytes, 9, 0); err == nil {
			return errors.New("bad source accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceOpsOnImages(t *testing.T) {
	a := layout.Float64Image([]float64{1, 2, 3})
	b := layout.Float64Image([]float64{10, 20, 30})
	if err := OpSumFloat64.Combine(a, b, 3, nil); err != nil {
		t.Fatal(err)
	}
	got := layout.Float64s(a)
	want := []float64{11, 22, 33}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sum[%d] = %v", i, got[i])
		}
	}
}
