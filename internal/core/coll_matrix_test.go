package core

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"mpicd/internal/ddt"
	"mpicd/internal/fabric"
	"mpicd/internal/layout"
	"mpicd/internal/ucp"
)

// tcpAddrs reserves n loopback addresses for a TCP-fabric world.
func tcpAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// The collective correctness matrix: every collective × rank counts
// {2,3,4,5,8} × payload sizes below, straddling and above the
// algorithm-selection thresholds. Tuning is scaled down so the chunked
// schedules (pipelined Bcast, ring Allgather, Rabenseifner Allreduce)
// engage at test-sized payloads; the "straddle" size sits exactly at the
// switch point.

// matrixTuning shrinks the engine thresholds so small payloads exercise
// the large-message schedules.
var matrixTuning = CollTuning{
	ChunkBytes:     4096,
	PipelineThresh: 16384,
	RabenThresh:    8192,
	Window:         3,
}

var matrixSizes = []struct {
	name  string
	bytes int
}{
	{"small", 1 << 10},
	{"straddle", 16384},   // exactly PipelineThresh; RabenThresh crossed
	{"large", 1<<16 + 24}, // odd size: uneven chunk tails, odd halving splits
}

var matrixRanks = []int{2, 3, 4, 5, 8}

// forEachMatrixCell trims the cross-product under -short.
func forEachMatrixCell(t *testing.T, f func(t *testing.T, n, size int)) {
	for _, n := range matrixRanks {
		for _, sz := range matrixSizes {
			if testing.Short() && n != 3 && sz.name != "large" {
				continue
			}
			t.Run(fmt.Sprintf("n%d_%s", n, sz.name), func(t *testing.T) {
				f(t, n, sz.bytes)
			})
		}
	}
}

func TestMatrixBcast(t *testing.T) {
	forEachMatrixCell(t, func(t *testing.T, n, size int) {
		for _, root := range []int{0, n - 1} {
			want := pattern(size, byte(root+1))
			err := Run(n, Options{}, func(c *Comm) error {
				c.SetCollTuning(matrixTuning)
				buf := make([]byte, size)
				if c.Rank() == root {
					copy(buf, want)
				}
				if err := c.Bcast(buf, -1, TypeBytes, root); err != nil {
					return err
				}
				if !bytes.Equal(buf, want) {
					return fmt.Errorf("root %d: bcast payload mismatch", root)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestMatrixAllreduce(t *testing.T) {
	forEachMatrixCell(t, func(t *testing.T, n, size int) {
		count := size / 8
		err := Run(n, Options{}, func(c *Comm) error {
			c.SetCollTuning(matrixTuning)
			vals := make([]float64, count)
			for i := range vals {
				vals[i] = float64(c.Rank()+1) * float64(i%97)
			}
			send := layout.Float64Image(vals)
			recv := make([]byte, len(send))
			if err := c.Allreduce(send, recv, Count(count), FromDDT(ddt.Float64), OpSumFloat64); err != nil {
				return err
			}
			got := layout.Float64s(recv)
			for i := range got {
				want := 0.0
				for r := 0; r < n; r++ {
					want += float64(r+1) * float64(i%97)
				}
				if got[i] != want {
					return fmt.Errorf("sum[%d] = %v, want %v", i, got[i], want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestMatrixReduce(t *testing.T) {
	forEachMatrixCell(t, func(t *testing.T, n, size int) {
		count := size / 8
		root := n / 2
		err := Run(n, Options{}, func(c *Comm) error {
			c.SetCollTuning(matrixTuning)
			send := make([]byte, size)
			for i := 0; i < count; i++ {
				layout.PutI64(send, 8*i, int64(c.Rank()*count+i))
			}
			recv := make([]byte, size)
			if err := c.Reduce(send, recv, Count(count), FromDDT(ddt.Int64), OpSumInt64, root); err != nil {
				return err
			}
			if c.Rank() == root {
				for i := 0; i < count; i++ {
					want := int64(0)
					for r := 0; r < n; r++ {
						want += int64(r*count + i)
					}
					if got := layout.I64(recv, 8*i); got != want {
						return fmt.Errorf("sum[%d] = %d, want %d", i, got, want)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestMatrixAllgather(t *testing.T) {
	forEachMatrixCell(t, func(t *testing.T, n, size int) {
		err := Run(n, Options{}, func(c *Comm) error {
			c.SetCollTuning(matrixTuning)
			mine := pattern(size, byte(c.Rank()+1))
			all := make([]byte, size*n)
			if err := c.Allgather(mine, Count(size), TypeBytes, all); err != nil {
				return err
			}
			for r := 0; r < n; r++ {
				if !bytes.Equal(all[r*size:(r+1)*size], pattern(size, byte(r+1))) {
					return fmt.Errorf("allgather slot %d mismatch at rank %d", r, c.Rank())
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestMatrixGatherScatter(t *testing.T) {
	forEachMatrixCell(t, func(t *testing.T, n, size int) {
		err := Run(n, Options{}, func(c *Comm) error {
			c.SetCollTuning(matrixTuning)
			mine := pattern(size, byte(c.Rank()+1))
			all := make([]byte, size*n)
			root := n - 1
			if err := c.Gather(mine, Count(size), TypeBytes, all, root); err != nil {
				return err
			}
			if c.Rank() == root {
				for r := 0; r < n; r++ {
					if !bytes.Equal(all[r*size:(r+1)*size], pattern(size, byte(r+1))) {
						return fmt.Errorf("gather slot %d mismatch", r)
					}
				}
			}
			out := make([]byte, size)
			if err := c.Scatter(all, Count(size), TypeBytes, out, root); err != nil {
				return err
			}
			if !bytes.Equal(out, mine) {
				return errors.New("scatter returned wrong block")
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestMatrixAlltoall(t *testing.T) {
	forEachMatrixCell(t, func(t *testing.T, n, size int) {
		if size > 1<<14 && testing.Short() {
			t.Skip("short mode")
		}
		err := Run(n, Options{}, func(c *Comm) error {
			c.SetCollTuning(matrixTuning)
			send := make([]byte, size*n)
			for r := 0; r < n; r++ {
				copy(send[r*size:(r+1)*size], pattern(size, byte(c.Rank()*10+r)))
			}
			recv := make([]byte, size*n)
			if err := c.Alltoall(send, Count(size), TypeBytes, recv); err != nil {
				return err
			}
			for r := 0; r < n; r++ {
				if !bytes.Equal(recv[r*size:(r+1)*size], pattern(size, byte(r*10+c.Rank()))) {
					return fmt.Errorf("alltoall slot %d mismatch at rank %d", r, c.Rank())
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestMatrixBarrierStress hammers back-to-back barriers across the rank
// counts — the epoch separation keeps rounds from bleeding together.
func TestMatrixBarrierStress(t *testing.T) {
	for _, n := range matrixRanks {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			err := Run(n, Options{}, func(c *Comm) error {
				for k := 0; k < 50; k++ {
					if err := c.Barrier(); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMatrixTCP runs a slice of the matrix over the TCP fabric: three
// single-process ranks meshed through loopback sockets, exercising the
// pipelined Bcast, ring Allgather and Rabenseifner Allreduce paths over a
// real wire.
func TestMatrixTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 3
	const size = 1<<15 + 8
	addrs := tcpAddrs(t, n)
	want := pattern(size, 7)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(rank int) {
			errs <- func() error {
				nic, err := fabric.NewTCP(rank, addrs, fabric.Config{})
				if err != nil {
					return err
				}
				defer nic.Close()
				w := ucp.NewWorker(nic, ucp.Config{})
				defer w.Close()
				c := NewComm(w)
				c.SetCollTuning(matrixTuning)

				buf := make([]byte, size)
				if rank == 0 {
					copy(buf, want)
				}
				if err := c.Bcast(buf, -1, TypeBytes, 0); err != nil {
					return fmt.Errorf("bcast: %w", err)
				}
				if !bytes.Equal(buf, want) {
					return errors.New("tcp bcast mismatch")
				}

				all := make([]byte, size*n)
				if err := c.Allgather(pattern(size, byte(rank+1)), size, TypeBytes, all); err != nil {
					return fmt.Errorf("allgather: %w", err)
				}
				for r := 0; r < n; r++ {
					if !bytes.Equal(all[r*size:(r+1)*size], pattern(size, byte(r+1))) {
						return fmt.Errorf("tcp allgather slot %d mismatch", r)
					}
				}

				count := size / 8
				vals := make([]float64, count)
				for i := range vals {
					vals[i] = float64(rank + 1)
				}
				send := layout.Float64Image(vals)
				recv := make([]byte, len(send))
				if err := c.Allreduce(send, recv, Count(count), FromDDT(ddt.Float64), OpSumFloat64); err != nil {
					return fmt.Errorf("allreduce: %w", err)
				}
				got := layout.Float64s(recv)
				for i := range got {
					if got[i] != 6 { // 1+2+3
						return fmt.Errorf("tcp allreduce[%d] = %v", i, got[i])
					}
				}
				return nil
			}()
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestBcastLinkDownNoHang is the fault-matrix case for collectives: a
// link goes down mid-Bcast at rendezvous size, the affected rank surfaces
// ErrLinkDown, and — with a request timeout bounding the root's sends —
// nobody hangs.
func TestBcastLinkDownNoHang(t *testing.T) {
	const n = 4
	const size = 1 << 16 // above RndvThresh: the receiver pulls via Get
	opt := Options{
		UCP: ucp.Config{ReqTimeout: 2 * time.Second}, // bounds collateral waits
		WrapNIC: func(rank int, nic fabric.NIC) fabric.NIC {
			if rank != 1 {
				return nic
			}
			// Rank 1's rendezvous pulls from the root fail: link down.
			return fabric.WrapFault(nic, fabric.FaultPlan{Seed: 1, Rules: []fabric.FaultRule{
				{Peer: 0, Action: fabric.FailGet, Prob: 1},
			}})
		},
	}
	err := Run(n, opt, func(c *Comm) error {
		buf := make([]byte, size)
		if c.Rank() == 0 {
			copy(buf, pattern(size, 3))
		}
		err := c.Bcast(buf, -1, TypeBytes, 0)
		switch c.Rank() {
		case 1:
			if !errors.Is(err, ErrLinkDown) {
				return fmt.Errorf("rank 1 bcast = %v, want ErrLinkDown", err)
			}
		case 0:
			// The root's send to rank 1 fails too (the transport notifies
			// the sender of the remote pull failure) or times out — any
			// bounded outcome is fine; hanging is the bug.
		default:
			if err != nil {
				return fmt.Errorf("rank %d bcast = %v", c.Rank(), err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
