package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"mpicd/internal/fabric"
	"mpicd/internal/layout"
	"mpicd/internal/ucp"
)

// legacyCollTag is the user tag the pre-engine collectives stole their
// matching space from (collTagBase = MaxTag-1024): a perfectly legal user
// tag, which is exactly the bug.
const legacyCollTag = MaxTag - 1024

// TestUserTagCollectiveIsolation is the tag-collision regression test: a
// user Send tagged legacyCollTag is queued at the peer before the peer
// enters Barrier. Without the reserved collective bit the barrier receive
// match-steals the user payload as its token (and the user Recv later
// gets the stale token instead); with it, the two matching spaces cannot
// interact.
func TestUserTagCollectiveIsolation(t *testing.T) {
	err := Run(2, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send([]byte{0xAA}, 1, TypeBytes, 1, legacyCollTag); err != nil {
				return err
			}
			return c.Barrier()
		}
		// Let the user message land in the unexpected queue first, then
		// run the collective before receiving it.
		time.Sleep(20 * time.Millisecond)
		if err := c.Barrier(); err != nil {
			return err
		}
		buf := make([]byte, 1)
		st, err := c.Recv(buf, 1, TypeBytes, 0, legacyCollTag)
		if err != nil {
			return err
		}
		if buf[0] != 0xAA {
			return fmt.Errorf("user recv got %#x — collective traffic crossed into the user tag space", buf[0])
		}
		if st.Tag != legacyCollTag {
			return fmt.Errorf("user recv matched tag %d, want %d", st.Tag, legacyCollTag)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAnyTagExcludesCollective pins the wildcard side of the isolation: a
// posted MPI_ANY_TAG receive must sit out a concurrent Barrier and match
// only the user message sent afterwards.
func TestAnyTagExcludesCollective(t *testing.T) {
	err := Run(2, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Barrier(); err != nil {
				return err
			}
			return c.Send([]byte{0x55}, 1, TypeBytes, 1, 7)
		}
		buf := make([]byte, 1)
		rr, err := c.Irecv(buf, 1, TypeBytes, 0, AnyTag)
		if err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		st, err := rr.Wait()
		if err != nil {
			return err
		}
		if buf[0] != 0x55 || st.Tag != 7 {
			return fmt.Errorf("AnyTag recv got payload %#x tag %d — matched collective traffic", buf[0], st.Tag)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// opConcat is a string-concat-style reduction: each element is a
// length-prefixed string in a fixed 16-byte slot ([len:1][data:15]) and
// Combine appends src's string to dst's. Associative but decidedly not
// commutative — the canonical witness for rank-ordered combining.
var opConcat = ReduceOp{
	Commutative: false,
	Combine: func(dst, src []byte, count Count, _ *Datatype) error {
		dl, sl := int(dst[0]), int(src[0])
		if dl+sl > 15 {
			return errors.New("concat overflow")
		}
		copy(dst[1+dl:], src[1:1+sl])
		dst[0] = byte(dl + sl)
		return nil
	},
}

// TestReduceNonCommutativeOrder is the combining-order regression test:
// with root 2 the old rotated binomial tree combined contributions in
// virtual-rank order (2,3,0,1 → "CDAB"); MPI requires canonical rank
// order 0∘1∘…∘n-1 for non-commutative operators, i.e. "ABCD", whatever
// the root.
func TestReduceNonCommutativeOrder(t *testing.T) {
	const n = 4
	for root := 0; root < n; root++ {
		t.Run(fmt.Sprintf("root%d", root), func(t *testing.T) {
			err := Run(n, Options{}, func(c *Comm) error {
				send := make([]byte, 16)
				send[0] = 1
				send[1] = byte('A' + c.Rank())
				recv := make([]byte, 16)
				if err := c.Reduce(send, recv, 16, TypeBytes, opConcat, root); err != nil {
					return err
				}
				if c.Rank() == root {
					got := string(recv[1 : 1+recv[0]])
					if got != "ABCD" {
						return fmt.Errorf("non-commutative reduce combined %q, want %q", got, "ABCD")
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAllreduceNonCommutativeOrder extends the order guarantee to
// Allreduce, which must refuse the Rabenseifner schedule for
// non-commutative operators at any size.
func TestAllreduceNonCommutativeOrder(t *testing.T) {
	const n = 4
	err := Run(n, Options{}, func(c *Comm) error {
		// Force the large-message path decision point.
		c.SetCollTuning(CollTuning{RabenThresh: 1})
		send := make([]byte, 16)
		send[0] = 1
		send[1] = byte('A' + c.Rank())
		recv := make([]byte, 16)
		if err := c.Allreduce(send, recv, 16, TypeBytes, opConcat); err != nil {
			return err
		}
		if got := string(recv[1 : 1+recv[0]]); got != "ABCD" {
			return fmt.Errorf("rank %d: non-commutative allreduce combined %q, want %q", c.Rank(), got, "ABCD")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSendRecvNoRecvLeakOnSendError: when the send half fails
// synchronously, the already-posted receive must be canceled — a later
// user receive on the same tag must match new traffic, not feed a zombie
// buffer from the failed call.
func TestSendRecvNoRecvLeakOnSendError(t *testing.T) {
	err := Run(2, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			// Wait for rank 1's failed SendRecv, then send the real payload.
			if _, err := c.Recv(make([]byte, 1), 1, TypeBytes, 1, 2); err != nil {
				return err
			}
			return c.Send([]byte{0x77}, 1, TypeBytes, 1, 3)
		}
		stale := make([]byte, 1)
		_, err := c.SendRecv([]byte{9}, 1, TypeBytes, 99, 3, stale, 1, TypeBytes, 0, 3)
		if err == nil {
			return errors.New("SendRecv to rank 99 should fail")
		}
		if err := c.Send([]byte{1}, 1, TypeBytes, 0, 2); err != nil {
			return err
		}
		fresh := make([]byte, 1)
		rr, err := c.Irecv(fresh, 1, TypeBytes, 0, 3)
		if err != nil {
			return err
		}
		if _, err := rr.WaitTimeout(2 * time.Second); err != nil {
			return fmt.Errorf("fresh recv starved — failed SendRecv leaked its posted receive: %w", err)
		}
		if fresh[0] != 0x77 || stale[0] != 0 {
			return fmt.Errorf("payload landed in the wrong buffer: fresh=%#x stale=%#x", fresh[0], stale[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSendRecvFaultErrorPath drives the same leak through the
// fault-injection fabric: rank 1's link to rank 0 is down, so the send
// half times out after the receive was posted. The error must surface
// without hanging and without leaving the receive behind.
func TestSendRecvFaultErrorPath(t *testing.T) {
	release := make(chan struct{})
	opt := Options{
		UCP: ucp.Config{
			Reliable:      true,
			RexmitBase:    time.Millisecond,
			RexmitMax:     5 * time.Millisecond,
			RexmitRetries: 20,
		},
		WrapNIC: func(rank int, nic fabric.NIC) fabric.NIC {
			if rank != 1 {
				return nic
			}
			return fabric.WrapFault(nic, fabric.FaultPlan{Seed: 1, Rules: []fabric.FaultRule{
				{Peer: 0, Action: fabric.LinkDown, Prob: 1, Count: 1, Down: -1},
			}})
		},
	}
	err := Run(2, opt, func(c *Comm) error {
		if c.Rank() == 0 {
			<-release
			// The reverse link carries the payload fine but rank 1's acks
			// die on its downed link, so tolerate the ack timeout.
			if err := c.Send([]byte{0x66}, 1, TypeBytes, 1, 5); err != nil && !errors.Is(err, ErrTimeout) {
				return err
			}
			return nil
		}
		stale := make([]byte, 1)
		_, err := c.SendRecv(pattern(4000, 9), -1, TypeBytes, 0, 5, stale, 1, TypeBytes, 0, 5)
		if err == nil {
			return errors.New("SendRecv over a down link should fail")
		}
		close(release)
		fresh := make([]byte, 1)
		rr, err := c.Irecv(fresh, 1, TypeBytes, 0, 5)
		if err != nil {
			return err
		}
		if _, err := rr.WaitTimeout(2 * time.Second); err != nil {
			return fmt.Errorf("fresh recv starved after failed SendRecv: %w", err)
		}
		if fresh[0] != 0x66 {
			return fmt.Errorf("fresh recv got %#x", fresh[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveShortBuffers pins the up-front argument validation: short
// buffers and bad roots return ErrInvalidComm-wrapped errors instead of
// panicking mid-schedule. Every rank passes the same (bad) arguments, so
// the failures are symmetric and nothing hangs.
func TestCollectiveShortBuffers(t *testing.T) {
	const n = 3
	short := make([]byte, 4)
	full := make([]byte, 64)
	wide := make([]byte, 64*n)
	cases := []struct {
		name string
		call func(c *Comm) error
	}{
		{"gather-short-send", func(c *Comm) error { return c.Gather(short, 64, TypeBytes, wide, 0) }},
		{"gather-short-recv", func(c *Comm) error { return c.Gather(full, 64, TypeBytes, short, c.Rank()) }},
		{"gather-bad-root", func(c *Comm) error { return c.Gather(full, 64, TypeBytes, wide, n) }},
		{"scatter-short-send", func(c *Comm) error { return c.Scatter(short, 64, TypeBytes, full, c.Rank()) }},
		{"scatter-short-recv", func(c *Comm) error { return c.Scatter(wide, 64, TypeBytes, short, 0) }},
		{"alltoall-short-send", func(c *Comm) error { return c.Alltoall(full[:8], 64, TypeBytes, wide) }},
		{"alltoall-short-recv", func(c *Comm) error { return c.Alltoall(wide, 64, TypeBytes, full) }},
		{"allgather-short-recv", func(c *Comm) error { return c.Allgather(full, 64, TypeBytes, full) }},
		{"allreduce-short-send", func(c *Comm) error { return c.Allreduce(short, full, 64, TypeBytes, OpSumInt64) }},
		{"allreduce-short-recv", func(c *Comm) error { return c.Allreduce(full, short, 64, TypeBytes, OpSumInt64) }},
		{"reduce-short-send", func(c *Comm) error { return c.Reduce(short, full, 64, TypeBytes, OpSumInt64, 0) }},
		{"reduce-bad-root", func(c *Comm) error { return c.Reduce(full, full, 64, TypeBytes, OpSumInt64, -1) }},
		{"bcast-bad-root", func(c *Comm) error { return c.Bcast(full, -1, TypeBytes, n+1) }},
		{"gatherv-short-send", func(c *Comm) error {
			return c.Gatherv(short, 64, wide, []Count{64, 64, 64}, []Count{0, 64, 128}, 0)
		}},
		{"gatherv-bad-displs", func(c *Comm) error {
			return c.Gatherv(full, 64, wide, []Count{64, 64, 64}, []Count{0, 64, 1024}, c.Rank())
		}},
		{"scatterv-neg-count", func(c *Comm) error {
			return c.Scatterv(wide, []Count{-1, 64, 64}, []Count{0, 64, 128}, full, 64, c.Rank())
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Run(n, Options{}, func(c *Comm) error {
				if err := tc.call(c); !errors.Is(err, ErrInvalidComm) {
					return fmt.Errorf("got %v, want ErrInvalidComm", err)
				}
				// The communicator must stay usable: a failed collective
				// consumes its epoch on every rank symmetrically.
				return c.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestReduceFixedSizeRequired pins the custom-datatype guard: reductions
// need a fixed element size to slice accumulators.
func TestReduceFixedSizeRequired(t *testing.T) {
	dt := TypeCreateCustom(dvHandler{})
	err := Run(2, Options{}, func(c *Comm) error {
		if err := c.Allreduce(make([]byte, 8), make([]byte, 8), 1, dt, OpSumInt64); !errors.Is(err, ErrInvalidComm) {
			return fmt.Errorf("got %v, want ErrInvalidComm", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDupCollectiveEpochIsolation runs the same collective concurrently
// on a communicator and its dup: identical (op, epoch, seq) tags on both,
// separated only by the context id.
func TestDupCollectiveEpochIsolation(t *testing.T) {
	const n = 4
	err := Run(n, Options{}, func(c *Comm) error {
		dup, err := c.Dup()
		if err != nil {
			return err
		}
		want1 := pattern(2048, 1)
		want2 := pattern(2048, 2)
		buf1 := make([]byte, 2048)
		buf2 := make([]byte, 2048)
		if c.Rank() == 0 {
			copy(buf1, want1)
			copy(buf2, want2)
		}
		// Interleave: start both broadcasts nonblocking on different
		// comms, then complete them in reverse order.
		r1, err := c.Ibcast(buf1, -1, TypeBytes, 0)
		if err != nil {
			return err
		}
		r2, err := dup.Ibcast(buf2, -1, TypeBytes, 0)
		if err != nil {
			return err
		}
		if err := r2.Wait(); err != nil {
			return err
		}
		if err := r1.Wait(); err != nil {
			return err
		}
		if !bytes.Equal(buf1, want1) || !bytes.Equal(buf2, want2) {
			return errors.New("collectives crossed between comm and dup")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBackToBackCollectives pins the epoch separation for consecutive
// blocking collectives carrying identical shapes: with per-call epochs a
// slow rank cannot feed round k's traffic into round k+1.
func TestBackToBackCollectives(t *testing.T) {
	const n = 4
	const rounds = 20
	err := Run(n, Options{}, func(c *Comm) error {
		buf := make([]byte, 8)
		for k := 0; k < rounds; k++ {
			if c.Rank() == 0 {
				layout.PutI64(buf, 0, int64(k))
			}
			if err := c.Bcast(buf, -1, TypeBytes, 0); err != nil {
				return err
			}
			if got := layout.I64(buf, 0); got != int64(k) {
				return fmt.Errorf("round %d received round %d's payload", k, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
