package core

import (
	"fmt"
	"sync"
)

// Persistent collectives (MPI-4 MPI_Barrier_init / MPI_Bcast_init /
// MPI_Allreduce_init / MPI_Allgather_init): the argument binding, the
// algorithm selection and the schedule's working storage are fixed once
// at init, then every iteration is Start + Wait on the same handle.
//
// Two properties distinguish a PersistentColl from calling the
// one-shot collective in a loop:
//
//   - steady-state cost: the schedule runs on one long-lived worker
//     goroutine created at init (not one per call), its scratch
//     buffers (accumulators, barrier tokens, request windows — see
//     collScratch) are preallocated, and Start/Wait signal through
//     preallocated channels, so the persistent layer itself adds zero
//     allocations per iteration (pinned by TestPersistentAllreduce
//     ZeroAllocSteadyState);
//   - restartability under failure: a Start on a revoked communicator
//     fails fast with ErrRevoked, an iteration interrupted by rank
//     death surfaces ErrProcFailed from Wait, and after the usual
//     Revoke/Agree/Shrink recovery the handle is re-aimed at the
//     shrunken communicator with Rebind and keeps iterating.
//
// One design note: MPI-4 leaves tag-space reservation to the
// implementation. Reserving a single epoch at init and reusing it every
// iteration would make iteration i and i+1 indistinguishable at the
// matching layer — under fault-injected duplication or reordering a
// stale retransmit from iteration i could match iteration i+1's receive
// and silently corrupt it. Start therefore reserves a fresh epoch per
// iteration via the same synchronous nextEpoch() every collective uses
// (one atomic add, allocation-free); MPI's requirement that all ranks
// issue collectives in the same order makes the sequence consistent
// across ranks.

// pcKind identifies which collective a PersistentColl is bound to.
type pcKind int

const (
	pcBarrier pcKind = iota
	pcBcast
	pcAllreduce
	pcAllgather
)

func (k pcKind) String() string {
	switch k {
	case pcBarrier:
		return "barrier"
	case pcBcast:
		return "bcast"
	case pcAllreduce:
		return "allreduce"
	case pcAllgather:
		return "allgather"
	}
	return fmt.Sprintf("pcKind(%d)", int(k))
}

// PersistentColl is a reusable collective binding. The zero value is
// not usable; construct with BarrierInit, BcastInit, AllreduceInit or
// AllgatherInit. Start/Wait/Test must not be called concurrently with
// each other (same rule as an MPI request); the bound buffers belong
// to the operation from Start until its Wait.
type PersistentColl struct {
	comm *Comm
	kind pcKind

	// Bound arguments, fixed at init (comm may be re-aimed by Rebind).
	buf     any    // bcast payload
	sendBuf []byte // allreduce/allgather contribution
	recvBuf []byte // allreduce/allgather result
	count   Count
	dt      *Datatype
	op      ReduceOp
	root    int
	bytes   Count // per-rank byte image size

	sc collScratch // preallocated schedule working storage

	startCh chan uint64 // epoch handoff to the worker (buffered 1)
	resCh   chan error  // iteration result from the worker (buffered 1)
	stopCh  chan struct{}
	doneCh  chan struct{} // closed when the worker has exited

	mu      sync.Mutex
	active  bool
	freed   bool
	lastErr error
}

// newPersistentColl wires the handle and spawns its worker.
func newPersistentColl(c *Comm, kind pcKind) *PersistentColl {
	p := &PersistentColl{
		comm:    c,
		kind:    kind,
		startCh: make(chan uint64, 1),
		resCh:   make(chan error, 1),
		stopCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	go p.worker()
	return p
}

// BarrierInit creates a persistent barrier (MPI_Barrier_init).
func (c *Comm) BarrierInit() (*PersistentColl, error) {
	if err := c.checkRevoked(); err != nil {
		return nil, err
	}
	return newPersistentColl(c, pcBarrier), nil
}

// BcastInit creates a persistent broadcast of count elements of dt at
// buf from root (MPI_Bcast_init). Any datatype works, including custom
// ones — the whole-message tree re-serializes per hop; byte images
// above the pipeline threshold ride the segment-pipelined tree with a
// preallocated request window.
func (c *Comm) BcastInit(buf any, count Count, dt *Datatype, root int) (*PersistentColl, error) {
	if err := c.checkRevoked(); err != nil {
		return nil, err
	}
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("%w: bcast_init root %d", ErrInvalidComm, root)
	}
	p := newPersistentColl(c, pcBcast)
	p.buf, p.count, p.dt, p.root = buf, count, dt, root
	return p, nil
}

// AllreduceInit creates a persistent allreduce combining count elements
// of dt from sendBuf into recvBuf with op on every rank
// (MPI_Allreduce_init). The accumulator and exchange scratch the
// schedule needs are allocated here, once.
func (c *Comm) AllreduceInit(sendBuf, recvBuf []byte, count Count, dt *Datatype, op ReduceOp) (*PersistentColl, error) {
	if err := c.checkRevoked(); err != nil {
		return nil, err
	}
	bytes, err := c.fixedSize("allreduce_init", count, dt)
	if err != nil {
		return nil, err
	}
	if err := checkLen("allreduce_init send", sendBuf, bytes); err != nil {
		return nil, err
	}
	if err := checkLen("allreduce_init receive", recvBuf, bytes); err != nil {
		return nil, err
	}
	p := newPersistentColl(c, pcAllreduce)
	p.sendBuf, p.recvBuf, p.count, p.dt, p.op, p.bytes = sendBuf, recvBuf, count, dt, op, bytes
	// Warm the scratch the reduction schedules draw from so the first
	// Start is as allocation-free as the thousandth.
	_ = p.sc.bufA(bytes)
	_ = p.sc.bufB(bytes)
	return p, nil
}

// AllgatherInit creates a persistent allgather of count elements of dt
// from every rank's sendBuf into every rank's recvBuf
// (MPI_Allgather_init).
func (c *Comm) AllgatherInit(sendBuf []byte, count Count, dt *Datatype, recvBuf []byte) (*PersistentColl, error) {
	if err := c.checkRevoked(); err != nil {
		return nil, err
	}
	bytes, err := c.fixedSize("allgather_init", count, dt)
	if err != nil {
		return nil, err
	}
	if err := checkLen("allgather_init send", sendBuf, bytes); err != nil {
		return nil, err
	}
	if err := checkLen("allgather_init receive", recvBuf, bytes*int64(c.Size())); err != nil {
		return nil, err
	}
	p := newPersistentColl(c, pcAllgather)
	p.sendBuf, p.recvBuf, p.count, p.dt, p.bytes = sendBuf, recvBuf, count, dt, bytes
	_ = p.sc.requests(c.Size())
	return p, nil
}

// worker is the handle's single long-lived schedule runner. Start hands
// it an epoch; it runs one iteration and posts the result. It exists so
// a thousand iterations cost one goroutine, not a thousand (contrast
// startColl, which spawns per call).
func (p *PersistentColl) worker() {
	defer close(p.doneCh)
	for {
		select {
		case <-p.stopCh:
			return
		case epoch := <-p.startCh:
			p.resCh <- p.runOnce(epoch)
		}
	}
}

// runOnce executes one iteration's schedule. p.comm is read without the
// lock: the startCh handoff orders it after any Rebind, which only
// runs while the handle is inactive.
func (p *PersistentColl) runOnce(epoch uint64) error {
	c := p.comm
	switch p.kind {
	case pcBarrier:
		return c.classifyCommErr(c.barrier(epoch, &p.sc))
	case pcBcast:
		return c.classifyCommErr(c.bcast(p.buf, p.count, p.dt, p.root, epoch, &p.sc))
	case pcAllreduce:
		return c.classifyCommErr(c.allreduce(p.sendBuf, p.recvBuf, p.bytes, p.count, p.dt, p.op, epoch, &p.sc))
	case pcAllgather:
		return c.classifyCommErr(c.allgather(p.sendBuf, p.recvBuf, p.bytes, epoch, &p.sc))
	}
	return fmt.Errorf("%w: unknown persistent collective kind %d", ErrInvalidComm, int(p.kind))
}

// Start launches one iteration (MPI_Start). It fails fast with
// ErrRevoked on a revoked communicator, ErrActive if the previous
// iteration has not been waited on, and ErrInvalidComm after Free.
// Allocation-free: an epoch reservation and a buffered channel send.
func (p *PersistentColl) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.freed {
		return fmt.Errorf("%w: Start on a freed persistent collective", ErrInvalidComm)
	}
	if p.active {
		return ErrActive
	}
	if err := p.comm.checkRevoked(); err != nil {
		return err
	}
	epoch := p.comm.nextEpoch()
	p.active = true
	p.startCh <- epoch
	return nil
}

// Wait blocks until the current iteration completes and returns its
// error (MPI_Wait). On an inactive handle it returns the previous
// iteration's result immediately (nil if never started).
func (p *PersistentColl) Wait() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.active {
		return p.lastErr
	}
	err := <-p.resCh
	p.lastErr = err
	p.active = false
	return err
}

// Test reports whether the current iteration has completed, without
// blocking (MPI_Test). An inactive handle tests complete with the
// previous iteration's result.
func (p *PersistentColl) Test() (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.active {
		return true, p.lastErr
	}
	select {
	case err := <-p.resCh:
		p.lastErr = err
		p.active = false
		return true, err
	default:
		return false, nil
	}
}

// Kind returns the bound collective's name (for logs and reports).
func (p *PersistentColl) Kind() string { return p.kind.String() }

// Rebind re-aims an inactive handle at another communicator — the
// restart path after Revoke/Agree/Shrink. The argument binding
// (buffers, count, datatype, op, root) is kept; root and buffer sizes
// are re-validated against the new communicator's size. The scratch
// survives, so a rebind costs no steady-state allocations either.
func (p *PersistentColl) Rebind(nc *Comm) error {
	if nc == nil {
		return fmt.Errorf("%w: Rebind to nil communicator", ErrInvalidComm)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.freed {
		return fmt.Errorf("%w: Rebind on a freed persistent collective", ErrInvalidComm)
	}
	if p.active {
		return ErrActive
	}
	switch p.kind {
	case pcBcast:
		if p.root < 0 || p.root >= nc.Size() {
			return fmt.Errorf("%w: rebind: bcast root %d outside new communicator of size %d",
				ErrInvalidComm, p.root, nc.Size())
		}
	case pcAllgather:
		if err := checkLen("rebind allgather receive", p.recvBuf, p.bytes*int64(nc.Size())); err != nil {
			return err
		}
	}
	p.comm = nc
	p.lastErr = nil
	return nil
}

// Free retires the handle and stops its worker goroutine, waiting for
// it to exit so leak checks see a quiesced process (MPI_Request_free).
// An active iteration is waited out first. Idempotent.
func (p *PersistentColl) Free() error {
	p.mu.Lock()
	if p.freed {
		p.mu.Unlock()
		return nil
	}
	if p.active {
		p.lastErr = <-p.resCh
		p.active = false
	}
	p.freed = true
	p.mu.Unlock()
	close(p.stopCh)
	<-p.doneCh
	return nil
}
