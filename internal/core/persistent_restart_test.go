package core

import (
	"errors"
	"fmt"
	"testing"

	"mpicd/internal/layout"
)

// Regression tests for the persistent-request restart path under
// failure: a Start that cannot launch (revoked communicator) must leave
// the binding inactive rather than pointing at the previous iteration's
// completed instance, and WaitAll must treat inactive requests the way
// MPI_Waitall does.

// TestPersistentStartFailureLeavesInactive: after a successful
// iteration, a failed restart must not let Wait resurface the stale
// success as if the new iteration had run.
func TestPersistentStartFailureLeavesInactive(t *testing.T) {
	leakChecked(t)
	const n = 2
	err := Run(n, Options{}, func(c *Comm) error {
		buf := make([]byte, 8)
		var p *PersistentRequest
		var err error
		if c.Rank() == 0 {
			layout.PutI64(buf, 0, 7)
			p, err = c.SendInit(buf, -1, TypeBytes, 1, 3)
		} else {
			p, err = c.RecvInit(buf, -1, TypeBytes, 0, 3)
		}
		if err != nil {
			return err
		}
		// One clean iteration.
		if err := p.Start(); err != nil {
			return err
		}
		if _, err := p.Wait(); err != nil {
			return err
		}
		if c.Rank() == 1 && layout.I64(buf, 0) != 7 {
			return fmt.Errorf("first iteration delivered %d", layout.I64(buf, 0))
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		// Revoke, then attempt a restart: Start fails fast, and the stale
		// completed instance from iteration one must not leak out of Wait.
		if err := c.Revoke(); err != nil {
			return err
		}
		if err := p.Start(); !errors.Is(err, ErrRevoked) {
			return fmt.Errorf("rank %d: Start on revoked comm = %v, want ErrRevoked", c.Rank(), err)
		}
		if _, err := p.Wait(); err == nil {
			return fmt.Errorf("rank %d: Wait after failed restart returned the stale iteration's success", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWaitAllPersistentSkipsInactive: a WaitAll spanning started and
// never-started requests completes the started ones and reports their
// result — not a complaint about the inactive ones.
func TestWaitAllPersistentSkipsInactive(t *testing.T) {
	leakChecked(t)
	sys := NewSystem(1, Options{})
	defer sys.Close()
	c := sys.Comm(0)

	out := make([]byte, 8)
	in := make([]byte, 8)
	layout.PutI64(out, 0, 42)
	ps, err := c.SendInit(out, -1, TypeBytes, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := c.RecvInit(in, -1, TypeBytes, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	idle, err := c.SendInit(out, -1, TypeBytes, 0, 6) // never started
	if err != nil {
		t.Fatal(err)
	}

	if err := StartAll(ps, pr); err != nil {
		t.Fatal(err)
	}
	if err := WaitAllPersistent(ps, pr, idle, nil); err != nil {
		t.Fatalf("WaitAll over started+inactive+nil = %v, want nil", err)
	}
	if got := layout.I64(in, 0); got != 42 {
		t.Fatalf("self round-trip delivered %d, want 42", got)
	}
	// Direct Wait on an inactive request still reports it, so misuse of a
	// single request is not silently absorbed.
	if _, err := idle.Wait(); err == nil {
		t.Fatal("Wait on a never-started request = nil, want error")
	}
}
