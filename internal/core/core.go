// Package core is the point-to-point engine of the reproduction — the
// analogue of the paper's mpicd crate. It provides communicators, tagged
// blocking/nonblocking point-to-point operations, probe/mprobe, manual
// pack/unpack, a small set of collectives, and — centrally — the custom
// datatype engine implementing the paper's MPI_Type_create_custom API:
// application callbacks pack the non-contiguous portion of a buffer while
// contiguous memory regions ride the wire zero-copy, all within a single
// MPI-level message.
//
// Ranks can live in one process (inproc fabric; used by the tests,
// examples and benchmarks) or in separate processes over TCP (see
// cmd/mpicd-pingpong).
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mpicd/internal/ddt"
	"mpicd/internal/fabric"
	"mpicd/internal/ucp"
)

// Wildcards (match MPI_ANY_SOURCE / MPI_ANY_TAG).
const (
	AnySource = -1
	AnyTag    = -1
)

// MaxTag is the largest user tag (tags occupy 31 bits of the matching
// word).
const MaxTag = 1<<31 - 1

// ErrTruncated re-exports the transport truncation error.
var ErrTruncated = ucp.ErrTruncated

// Error taxonomy re-exports, so applications can classify failures with
// errors.Is without importing the transport packages.
var (
	// ErrTimeout reports a request that exceeded its deadline or exhausted
	// its retransmission budget.
	ErrTimeout = ucp.ErrTimeout
	// ErrLinkDown reports a broken or injected-down fabric link.
	ErrLinkDown = ucp.ErrLinkDown
	// ErrCorrupt reports a payload that failed its checksum.
	ErrCorrupt = ucp.ErrCorrupt
)

// Options configures a System.
type Options struct {
	Fabric fabric.Config
	UCP    ucp.Config
	// WrapNIC, when set, wraps each rank's NIC before the transport worker
	// is built — the hook fault-injection harnesses use to interpose a
	// fabric.FaultNIC per rank.
	WrapNIC func(rank int, nic fabric.NIC) fabric.NIC
}

// System owns an in-process world: one fabric and one transport worker
// per rank. It is how tests, examples and benchmarks bring up N ranks
// inside a single process.
type System struct {
	fab     *fabric.Inproc
	workers []*ucp.Worker
	comms   []*Comm
	once    sync.Once
}

// NewSystem brings up n in-process ranks.
func NewSystem(n int, opt Options) *System {
	// One Observer serves all ranks: per-rank metric prefixes keep them
	// apart, and the fabric registry is shared with the transport's.
	if o := opt.UCP.Obs; o != nil && opt.Fabric.Obs == nil {
		opt.Fabric.Obs = o.Registry
	}
	if o := opt.UCP.Obs; o != nil {
		// Datatype plan-cache gauges (hits/misses/compile time) ride the
		// same registry as the transport counters.
		ddt.RegisterObs(o.Registry)
	}
	s := &System{fab: fabric.NewInproc(n, opt.Fabric)}
	s.workers = make([]*ucp.Worker, n)
	s.comms = make([]*Comm, n)
	for i := 0; i < n; i++ {
		nic := fabric.NIC(s.fab.NIC(i))
		if opt.WrapNIC != nil {
			nic = opt.WrapNIC(i, nic)
		}
		if o := opt.UCP.Obs; o != nil {
			if fn, ok := nic.(*fabric.FaultNIC); ok {
				fn.RegisterObs(o.Registry)
			}
		}
		s.workers[i] = ucp.NewWorker(nic, opt.UCP)
		s.comms[i] = newWorldComm(s.workers[i])
	}
	return s
}

// Comm returns rank's world communicator.
func (s *System) Comm(rank int) *Comm { return s.comms[rank] }

// Size returns the number of ranks.
func (s *System) Size() int { return len(s.workers) }

// Close tears the world down.
func (s *System) Close() {
	s.once.Do(func() {
		for _, w := range s.workers {
			w.Close()
		}
	})
}

// Run executes fn once per rank, each on its own goroutine, over a fresh
// in-process world, and returns the first error. It is the moral
// equivalent of mpirun -n for this reproduction.
func Run(n int, opt Options, fn func(c *Comm) error) error {
	s := NewSystem(n, opt)
	defer s.Close()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = fn(s.Comm(rank))
		}(i)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return fmt.Errorf("rank %d: %w", rank, err)
		}
	}
	return nil
}

// Comm is a communicator: an ordered group of ranks with an isolated
// matching context.
type Comm struct {
	w       *ucp.Worker
	ctx     uint64
	group   []int       // comm rank -> fabric rank
	inverse map[int]int // fabric rank -> comm rank
	rank    int

	// nextCID is shared by all communicators of this rank and advanced by
	// collective agreement, so every rank derives the same context id for
	// the same Dup/Split call.
	nextCID *uint64

	// collEpoch numbers this communicator's collective calls. Every rank
	// enters collectives on a communicator in the same order (standard MPI
	// semantics), so the per-rank counters agree; the epoch rides in the
	// collective tag and keeps back-to-back and outstanding nonblocking
	// collectives from cross-matching. Shared (by pointer) between Comm
	// values only when they alias the same communicator.
	collEpoch *atomic.Uint64

	// tuning holds the collective-engine thresholds (zero fields mean
	// defaults; see CollTuning).
	tuning CollTuning

	// rv holds the ULFM recovery state — revocation flag, agreement
	// sequence, revoke-listener lifecycle (see ulfm.go). Set by initULFM
	// at construction for every communicator.
	rv *ulfmState
}

// worldCtx is the context id of the world communicator.
const worldCtx = 1

// newWorldComm wraps a transport worker into the world communicator.
func newWorldComm(w *ucp.Worker) *Comm {
	n := w.Size()
	group := make([]int, n)
	inverse := make(map[int]int, n)
	for i := range group {
		group[i] = i
		inverse[i] = i
	}
	next := uint64(worldCtx + 1)
	c := &Comm{
		w: w, ctx: worldCtx, group: group, inverse: inverse, rank: w.Rank(),
		nextCID: &next, collEpoch: new(atomic.Uint64),
	}
	c.initULFM()
	return c
}

// NewComm builds a world communicator over an externally created transport
// worker (e.g. one attached to a TCP fabric spanning processes).
func NewComm(w *ucp.Worker) *Comm { return newWorldComm(w) }

// Rank returns the calling rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// Worker exposes the underlying transport worker.
func (c *Comm) Worker() *ucp.Worker { return c.w }

// Tag word layout: [context:16][source comm rank:16][coll:1][user tag:31].
//
// User tags occupy only 31 bits (MaxTag = 2^31-1), so bit 31 of the low
// word is never set by point-to-point traffic. It is reserved as the
// collective bit: every collective message carries it, and every user
// receive — including MPI_ANY_TAG wildcards — masks it out with a zero
// value. A user Send can therefore never match-steal collective traffic
// and vice versa, structurally, for any tag value (the analogue of Open
// MPI's negative collective tag space). See colltag.go for the layout of
// the remaining 31 bits of a collective tag (op, epoch, sequence).
const (
	ctxShift = 48
	srcShift = 32
	tagMask  = (uint64(1) << srcShift) - 1
	// collBit marks collective traffic within the low 32-bit tag field.
	collBit = uint64(1) << 31
)

func (c *Comm) sendTag(utag int) ucp.Tag {
	return ucp.Tag(c.ctx<<ctxShift | uint64(c.rank)<<srcShift | uint64(uint32(utag)))
}

// recvMatch translates (src, utag) with wildcards into transport matching
// criteria. The collective bit always participates in matching with a
// zero value, so user receives never observe collective traffic.
func (c *Comm) recvMatch(src, utag int) (from int, tag, mask ucp.Tag, err error) {
	mask = ucp.Tag(uint64(0xFFFF)<<ctxShift | collBit)
	tag = ucp.Tag(c.ctx << ctxShift)
	if src != AnySource {
		if src < 0 || src >= len(c.group) {
			return 0, 0, 0, fmt.Errorf("core: source rank %d out of range [0,%d)", src, len(c.group))
		}
		from = c.group[src]
		tag |= ucp.Tag(uint64(src) << srcShift)
		mask |= ucp.Tag(uint64(0xFFFF) << srcShift)
	} else {
		from = -1
	}
	if utag != AnyTag {
		if utag < 0 || utag > MaxTag {
			return 0, 0, 0, fmt.Errorf("core: tag %d out of range [0,%d]", utag, MaxTag)
		}
		tag |= ucp.Tag(uint64(uint32(utag)))
		mask |= ucp.Tag(tagMask)
	}
	return from, tag, mask, nil
}

// decodeTag splits a matched transport tag into (source comm rank, user tag).
func decodeTag(t ucp.Tag) (src int, utag int) {
	return int(uint64(t) >> srcShift & 0xFFFF), int(uint32(uint64(t) & tagMask))
}

// checkDst validates a destination rank.
func (c *Comm) checkDst(dst int) (int, error) {
	if dst < 0 || dst >= len(c.group) {
		return 0, fmt.Errorf("core: destination rank %d out of range [0,%d)", dst, len(c.group))
	}
	return c.group[dst], nil
}

// ErrInvalidComm reports collective misuse.
var ErrInvalidComm = errors.New("core: invalid communicator operation")
