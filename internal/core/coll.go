package core

import (
	"fmt"

	"mpicd/internal/layout"
)

// Collective operations built on point-to-point messaging. The paper
// leaves collective integration of custom datatypes as future work; this
// reproduction implements the classic algorithms (dissemination barrier,
// binomial broadcast/reduce, linear gather/scatter, ring allgather,
// pairwise alltoall) and lets Bcast carry any datatype, including custom
// ones, since it reduces to point-to-point transfers.

// collTagBase keeps collective traffic away from user tags; each
// collective call on a communicator must be entered by all ranks in the
// same order (standard MPI semantics).
const collTagBase = MaxTag - 1024

// Barrier blocks until every rank in the communicator has entered it
// (dissemination algorithm, ceil(log2 n) rounds).
func (c *Comm) Barrier() error {
	n := c.Size()
	token := []byte{1}
	recv := make([]byte, 1)
	for dist := 1; dist < n; dist *= 2 {
		to := (c.rank + dist) % n
		from := (c.rank - dist + n) % n
		sr, err := c.Isend(token, 1, TypeBytes, to, collTagBase)
		if err != nil {
			return err
		}
		if _, err := c.Recv(recv, 1, TypeBytes, from, collTagBase); err != nil {
			return err
		}
		if _, err := sr.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// Bcast broadcasts count elements of dt at buf from root to all ranks
// (binomial tree). Custom datatypes are supported: each hop re-serializes
// from the local buffer.
func (c *Comm) Bcast(buf any, count Count, dt *Datatype, root int) error {
	n := c.Size()
	if root < 0 || root >= n {
		return fmt.Errorf("%w: bcast root %d", ErrInvalidComm, root)
	}
	if n == 1 {
		return nil
	}
	// Rotate so the root is virtual rank 0, then run the classic binomial
	// tree: a rank receives on its lowest set bit and forwards on all
	// lower bits.
	vrank := (c.rank - root + n) % n
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			parent := ((vrank - mask) + root) % n
			if _, err := c.Recv(buf, count, dt, parent, collTagBase+1); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		child := vrank + mask
		if child >= n {
			continue
		}
		dst := (child + root) % n
		if err := c.Send(buf, count, dt, dst, collTagBase+1); err != nil {
			return err
		}
	}
	return nil
}

// ReduceOp combines src into dst element-wise; both are byte images of
// count elements of dt.
type ReduceOp func(dst, src []byte, count Count, dt *Datatype) error

// OpSumFloat64 sums float64 elements.
var OpSumFloat64 ReduceOp = func(dst, src []byte, count Count, _ *Datatype) error {
	for i := Count(0); i < count; i++ {
		layout.PutF64(dst, int(8*i), layout.F64(dst, int(8*i))+layout.F64(src, int(8*i)))
	}
	return nil
}

// OpSumInt64 sums int64 elements.
var OpSumInt64 ReduceOp = func(dst, src []byte, count Count, _ *Datatype) error {
	for i := Count(0); i < count; i++ {
		layout.PutI64(dst, int(8*i), layout.I64(dst, int(8*i))+layout.I64(src, int(8*i)))
	}
	return nil
}

// OpMaxInt64 keeps the element-wise maximum of int64 elements.
var OpMaxInt64 ReduceOp = func(dst, src []byte, count Count, _ *Datatype) error {
	for i := Count(0); i < count; i++ {
		if v := layout.I64(src, int(8*i)); v > layout.I64(dst, int(8*i)) {
			layout.PutI64(dst, int(8*i), v)
		}
	}
	return nil
}

// Reduce combines count elements from every rank's sendBuf into recvBuf at
// root using op (binomial tree). Buffers are byte images; recvBuf is only
// written at root. sendBuf contents are preserved.
func (c *Comm) Reduce(sendBuf, recvBuf []byte, count Count, dt *Datatype, op ReduceOp, root int) error {
	n := c.Size()
	if root < 0 || root >= n {
		return fmt.Errorf("%w: reduce root %d", ErrInvalidComm, root)
	}
	es := dt.elemSize()
	if es <= 0 {
		return fmt.Errorf("%w: reduce requires a fixed-size datatype", ErrInvalidComm)
	}
	bytes := count * es
	acc := make([]byte, bytes)
	copy(acc, sendBuf[:bytes])
	tmp := make([]byte, bytes)
	vrank := (c.rank - root + n) % n
	for mask := 1; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			dst := ((vrank - mask) + root) % n
			return c.Send(acc, bytes, TypeBytes, dst, collTagBase+2)
		}
		peer := vrank + mask
		if peer >= n {
			continue
		}
		src := (peer + root) % n
		if _, err := c.Recv(tmp, bytes, TypeBytes, src, collTagBase+2); err != nil {
			return err
		}
		if err := op(acc, tmp, count, dt); err != nil {
			return err
		}
	}
	if c.rank == root {
		copy(recvBuf[:bytes], acc)
	}
	return nil
}

// Allreduce is Reduce followed by Bcast.
func (c *Comm) Allreduce(sendBuf, recvBuf []byte, count Count, dt *Datatype, op ReduceOp) error {
	if err := c.Reduce(sendBuf, recvBuf, count, dt, op, 0); err != nil {
		return err
	}
	es := dt.elemSize()
	return c.Bcast(recvBuf, count*es, TypeBytes, 0)
}

// Gather collects count elements from every rank into recvBuf at root
// (rank i's contribution lands at offset i*count*size).
func (c *Comm) Gather(sendBuf []byte, count Count, dt *Datatype, recvBuf []byte, root int) error {
	n := c.Size()
	if root < 0 || root >= n {
		return fmt.Errorf("%w: gather root %d", ErrInvalidComm, root)
	}
	es := dt.elemSize()
	if es <= 0 {
		return fmt.Errorf("%w: gather requires a fixed-size datatype", ErrInvalidComm)
	}
	bytes := count * es
	if c.rank != root {
		return c.Send(sendBuf, bytes, TypeBytes, root, collTagBase+3)
	}
	if int64(len(recvBuf)) < bytes*int64(n) {
		return fmt.Errorf("%w: gather receive buffer too small", ErrInvalidComm)
	}
	copy(recvBuf[int64(c.rank)*bytes:], sendBuf[:bytes])
	reqs := make([]*Request, 0, n-1)
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		req, err := c.Irecv(recvBuf[int64(r)*bytes:int64(r+1)*bytes], bytes, TypeBytes, r, collTagBase+3)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return WaitAll(reqs...)
}

// Allgather is Gather to rank 0 followed by Bcast of the result.
func (c *Comm) Allgather(sendBuf []byte, count Count, dt *Datatype, recvBuf []byte) error {
	if err := c.Gather(sendBuf, count, dt, recvBuf, 0); err != nil {
		return err
	}
	es := dt.elemSize()
	return c.Bcast(recvBuf, count*es*int64(c.Size()), TypeBytes, 0)
}

// Scatter distributes slices of sendBuf at root: rank i receives the
// count elements at offset i*count*size into recvBuf.
func (c *Comm) Scatter(sendBuf []byte, count Count, dt *Datatype, recvBuf []byte, root int) error {
	n := c.Size()
	if root < 0 || root >= n {
		return fmt.Errorf("%w: scatter root %d", ErrInvalidComm, root)
	}
	es := dt.elemSize()
	if es <= 0 {
		return fmt.Errorf("%w: scatter requires a fixed-size datatype", ErrInvalidComm)
	}
	bytes := count * es
	if c.rank == root {
		reqs := make([]*Request, 0, n-1)
		for r := 0; r < n; r++ {
			part := sendBuf[int64(r)*bytes : int64(r+1)*bytes]
			if r == root {
				copy(recvBuf[:bytes], part)
				continue
			}
			req, err := c.Isend(part, bytes, TypeBytes, r, collTagBase+4)
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		return WaitAll(reqs...)
	}
	_, err := c.Recv(recvBuf, bytes, TypeBytes, root, collTagBase+4)
	return err
}

// Alltoall exchanges count elements with every rank: the block at offset
// i*count*size of sendBuf goes to rank i, and rank i's block lands at the
// same offset of recvBuf (pairwise exchange).
func (c *Comm) Alltoall(sendBuf []byte, count Count, dt *Datatype, recvBuf []byte) error {
	n := c.Size()
	es := dt.elemSize()
	if es <= 0 {
		return fmt.Errorf("%w: alltoall requires a fixed-size datatype", ErrInvalidComm)
	}
	bytes := count * es
	copy(recvBuf[int64(c.rank)*bytes:int64(c.rank+1)*bytes], sendBuf[int64(c.rank)*bytes:int64(c.rank+1)*bytes])
	for step := 1; step < n; step++ {
		dst := (c.rank + step) % n
		src := (c.rank - step + n) % n
		_, err := c.SendRecv(
			sendBuf[int64(dst)*bytes:int64(dst+1)*bytes], bytes, TypeBytes, dst, collTagBase+5,
			recvBuf[int64(src)*bytes:int64(src+1)*bytes], bytes, TypeBytes, src, collTagBase+5)
		if err != nil {
			return err
		}
	}
	return nil
}

// agreeCID agrees on the next communicator context id across all ranks of
// this communicator: the maximum of everyone's local counter.
func (c *Comm) agreeCID() (uint64, error) {
	local := make([]byte, 8)
	layout.PutI64(local, 0, int64(*c.nextCID))
	agreed := make([]byte, 8)
	if err := c.Allreduce(local, agreed, 8, TypeBytes, func(dst, src []byte, _ Count, _ *Datatype) error {
		if layout.I64(src, 0) > layout.I64(dst, 0) {
			layout.PutI64(dst, 0, layout.I64(src, 0))
		}
		return nil
	}); err != nil {
		return 0, err
	}
	cid := uint64(layout.I64(agreed, 0))
	if cid >= 1<<16 {
		return 0, fmt.Errorf("%w: communicator context ids exhausted", ErrInvalidComm)
	}
	*c.nextCID = cid + 1
	return cid, nil
}

// Dup duplicates the communicator with a fresh matching context
// (MPI_Comm_dup; collective). Like MPI, communicator-creation collectives
// must not run concurrently from multiple goroutines of the same rank:
// they advance a shared per-rank context-id counter.
func (c *Comm) Dup() (*Comm, error) {
	cid, err := c.agreeCID()
	if err != nil {
		return nil, err
	}
	group := append([]int(nil), c.group...)
	return &Comm{w: c.w, ctx: cid, group: group, inverse: c.inverse, rank: c.rank, nextCID: c.nextCID}, nil
}

// Split partitions the communicator by color; ranks with equal color form
// a new communicator ordered by (key, rank). A negative color returns nil
// (MPI_UNDEFINED). Collective.
func (c *Comm) Split(color, key int) (*Comm, error) {
	n := c.Size()
	mine := make([]byte, 16)
	layout.PutI64(mine, 0, int64(color))
	layout.PutI64(mine, 8, int64(key))
	all := make([]byte, 16*n)
	if err := c.Allgather(mine, 16, TypeBytes, all); err != nil {
		return nil, err
	}
	cid, err := c.agreeCID()
	if err != nil {
		return nil, err
	}
	if color < 0 {
		return nil, nil
	}
	type member struct{ key, rank int }
	var members []member
	for r := 0; r < n; r++ {
		if int(layout.I64(all, 16*r)) == color {
			members = append(members, member{int(layout.I64(all, 16*r+8)), r})
		}
	}
	// Insertion sort by (key, rank): stable and dependency-free.
	for i := 1; i < len(members); i++ {
		for j := i; j > 0 && (members[j].key < members[j-1].key ||
			(members[j].key == members[j-1].key && members[j].rank < members[j-1].rank)); j-- {
			members[j], members[j-1] = members[j-1], members[j]
		}
	}
	group := make([]int, len(members))
	inverse := make(map[int]int, len(members))
	myRank := -1
	for i, m := range members {
		group[i] = c.group[m.rank]
		inverse[c.group[m.rank]] = i
		if m.rank == c.rank {
			myRank = i
		}
	}
	if myRank < 0 {
		return nil, fmt.Errorf("%w: split: calling rank missing from its color group", ErrInvalidComm)
	}
	return &Comm{w: c.w, ctx: cid, group: group, inverse: inverse, rank: myRank, nextCID: c.nextCID}, nil
}
