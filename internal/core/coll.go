package core

import (
	"fmt"
	"sync/atomic"

	"mpicd/internal/layout"
)

// Collective operations built on point-to-point messaging, organized as a
// small engine:
//
//   - every collective runs in a reserved matching space (the collective
//     tag bit + a per-communicator epoch; see colltag.go), so user traffic
//     can never match-steal collective messages and back-to-back or
//     concurrently outstanding collectives never cross-match;
//   - algorithms are selected by message size (CollTuning): whole-message
//     binomial trees for small payloads, a segment-pipelined binomial
//     Bcast and a ring Allgather above PipelineThresh, and Rabenseifner's
//     reduce-scatter + allgather Allreduce above RabenThresh — the classic
//     Thakur et al. schedules;
//   - reduction operators carry a Commutative property: non-commutative
//     operators are combined strictly in rank order, whatever the root;
//   - nonblocking variants (Ibarrier, Ibcast, Iallreduce, Iallgather; see
//     icoll.go) reserve their epoch synchronously and run the same
//     schedules on a per-call goroutine.
//
// Bcast still carries any datatype, including custom ones, since the
// whole-message tree reduces to point-to-point transfers; the chunked
// schedules engage only for fixed-size byte-image buffers.

// byteView returns the []byte image of (buf, count, dt) when the datatype
// is fixed-size and the buffer is a byte slice. Chunked schedules
// (pipelined Bcast, ring Allgather, Rabenseifner) operate on such views
// only; other buffers take the whole-message paths.
func byteView(buf any, count Count, dt *Datatype) ([]byte, bool) {
	es := dt.elemSize()
	if es <= 0 {
		return nil, false
	}
	b, ok := buf.([]byte)
	if !ok {
		return nil, false
	}
	n := count * es
	if count < 0 {
		if dt != TypeBytes {
			return nil, false
		}
		n = int64(len(b))
	}
	if int64(len(b)) < n {
		return nil, false
	}
	return b[:n], true
}

// fixedSize validates a fixed-size collective buffer pair and returns the
// per-rank byte count.
func (c *Comm) fixedSize(what string, count Count, dt *Datatype) (Count, error) {
	es := dt.elemSize()
	if es <= 0 {
		return 0, fmt.Errorf("%w: %s requires a fixed-size datatype", ErrInvalidComm, what)
	}
	if count < 0 {
		return 0, fmt.Errorf("%w: %s count %d", ErrInvalidComm, what, count)
	}
	return count * es, nil
}

// checkLen validates that a collective buffer holds at least need bytes,
// returning an ErrInvalidComm-wrapped error instead of letting a later
// slice expression panic.
func checkLen(what string, buf []byte, need Count) error {
	if int64(len(buf)) < need {
		return fmt.Errorf("%w: %s buffer holds %d bytes, need %d", ErrInvalidComm, what, len(buf), need)
	}
	return nil
}

// collScratch holds the per-iteration working storage of a collective
// schedule: accumulator and exchange buffers, barrier tokens, request
// windows, and the Rabenseifner step log. One-shot collectives pass nil
// and every helper falls back to a fresh allocation; persistent
// collectives (pcoll.go) preallocate one scratch at init and reuse it
// across Start/Wait iterations, so the steady state stops paying the
// schedule's setup allocations.
//
// A scratch is owned by exactly one schedule invocation at a time —
// every schedule waits out (or drains) all of its requests before
// returning, so reuse by the next iteration never races in-flight
// traffic.
type collScratch struct {
	a, b  []byte     // accumulator / exchange scratch, grown on demand
	pair  [2]byte    // barrier token + receive byte
	reqs  []*Request // appended request window (sends)
	reqs2 []*Request // indexed request window (pipelined receives)
	steps []rabenStep
}

// bufA returns an n-byte scratch buffer (the accumulator slot).
func (s *collScratch) bufA(n Count) []byte {
	if s == nil {
		return make([]byte, n)
	}
	if int64(cap(s.a)) < n {
		s.a = make([]byte, n)
	}
	return s.a[:n]
}

// bufB returns an n-byte scratch buffer distinct from bufA's.
func (s *collScratch) bufB(n Count) []byte {
	if s == nil {
		return make([]byte, n)
	}
	if int64(cap(s.b)) < n {
		s.b = make([]byte, n)
	}
	return s.b[:n]
}

// requests returns an empty request slice with capacity >= n.
func (s *collScratch) requests(n int) []*Request {
	if s == nil {
		return make([]*Request, 0, n)
	}
	if cap(s.reqs) < n {
		s.reqs = make([]*Request, 0, n)
	}
	return s.reqs[:0]
}

// requestsLen returns a zeroed request slice of length n (indexed
// windows).
func (s *collScratch) requestsLen(n int) []*Request {
	if s == nil {
		return make([]*Request, n)
	}
	if cap(s.reqs2) < n {
		s.reqs2 = make([]*Request, n)
	}
	r := s.reqs2[:n]
	for i := range r {
		r[i] = nil
	}
	return r
}

// rabenSteps returns an empty Rabenseifner step log with capacity >= n.
func (s *collScratch) rabenSteps(n int) []rabenStep {
	if s == nil {
		return make([]rabenStep, 0, n)
	}
	if cap(s.steps) < n {
		s.steps = make([]rabenStep, 0, n)
	}
	return s.steps[:0]
}

// rabenStep records one recursive-halving exchange so the allgather
// phase of Rabenseifner's schedule can retrace it in reverse.
type rabenStep struct {
	partner     int // communicator rank
	lo, mid, hi Count
	keepLow     bool
}

// Barrier blocks until every rank in the communicator has entered it
// (dissemination algorithm, ceil(log2 n) rounds).
func (c *Comm) Barrier() error {
	if err := c.checkRevoked(); err != nil {
		return err
	}
	return c.classifyCommErr(c.barrier(c.nextEpoch(), nil))
}

func (c *Comm) barrier(epoch uint64, sc *collScratch) error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	var token, recv []byte
	if sc != nil {
		sc.pair[0] = 1
		token, recv = sc.pair[:1], sc.pair[1:2]
	} else {
		token = []byte{1}
		recv = make([]byte, 1)
	}
	round := 0
	for dist := 1; dist < n; dist *= 2 {
		to := (c.rank + dist) % n
		from := (c.rank - dist + n) % n
		sr, err := c.collIsend(token, 1, TypeBytes, to, opBarrier, epoch, round)
		if err != nil {
			return err
		}
		if err := c.collRecv(recv, 1, TypeBytes, from, opBarrier, epoch, round); err != nil {
			drainRequests([]*Request{sr})
			return err
		}
		if _, err := sr.Wait(); err != nil {
			return err
		}
		round++
	}
	return nil
}

// Bcast broadcasts count elements of dt at buf from root to all ranks.
// Small or non-byte-image payloads ride a whole-message binomial tree
// (each hop re-serializes from the local buffer, so custom datatypes are
// supported); byte-image payloads of at least CollTuning.PipelineThresh
// bytes ride the segment-pipelined binomial tree, overlapping chunks
// through Isend/Irecv windows.
func (c *Comm) Bcast(buf any, count Count, dt *Datatype, root int) error {
	if err := c.checkRevoked(); err != nil {
		return err
	}
	epoch := c.nextEpoch()
	n := c.Size()
	if root < 0 || root >= n {
		return fmt.Errorf("%w: bcast root %d", ErrInvalidComm, root)
	}
	return c.classifyCommErr(c.bcast(buf, count, dt, root, epoch, nil))
}

func (c *Comm) bcast(buf any, count Count, dt *Datatype, root int, epoch uint64, sc *collScratch) error {
	if c.Size() == 1 {
		return nil
	}
	if view, ok := byteView(buf, count, dt); ok && int64(len(view)) >= c.collTuning().PipelineThresh {
		return c.bcastPipelined(view, root, epoch, sc)
	}
	if p := c.topoPlan(); p != nil {
		return c.bcastTopo(p, buf, count, dt, root, epoch)
	}
	return c.bcastTree(buf, count, dt, root, epoch)
}

// binomialRelations computes a rank's parent and children in the binomial
// tree rooted at root (virtual ranks rotate the root to 0): a rank
// receives on its lowest set virtual-rank bit and forwards on all lower
// bits. parent is -1 at the root.
func (c *Comm) binomialRelations(root int) (parent int, children []int) {
	n := c.Size()
	vrank := (c.rank - root + n) % n
	parent = -1
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			parent = ((vrank - mask) + root) % n
			break
		}
		mask <<= 1
	}
	for m := mask >> 1; m > 0; m >>= 1 {
		if vrank+m < n {
			children = append(children, ((vrank+m)+root)%n)
		}
	}
	return parent, children
}

// bcastTree is the whole-message binomial broadcast.
func (c *Comm) bcastTree(buf any, count Count, dt *Datatype, root int, epoch uint64) error {
	parent, children := c.binomialRelations(root)
	if parent >= 0 {
		if err := c.collRecv(buf, count, dt, parent, opBcast, epoch, 0); err != nil {
			return err
		}
	}
	for _, child := range children {
		if err := c.collSend(buf, count, dt, child, opBcast, epoch, 0); err != nil {
			return err
		}
	}
	return nil
}

// bcastPipelined is the segment-pipelined binomial broadcast: the payload
// is cut into CollTuning.ChunkBytes segments that flow down the tree in a
// sliding window, so interior ranks forward segment s while still
// receiving segment s+1 — the tree's hops overlap instead of serializing
// on whole messages.
func (c *Comm) bcastPipelined(buf []byte, root int, epoch uint64, sc *collScratch) error {
	t := c.collTuning()
	chunk := t.ChunkBytes
	total := int64(len(buf))
	nseg := int((total + chunk - 1) / chunk)
	seg := func(s int) []byte {
		lo := int64(s) * chunk
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		return buf[lo:hi]
	}
	parent, children := c.binomialRelations(root)

	window := t.Window
	if window > nseg {
		window = nseg
	}
	maxSends := window
	if len(children) > 0 {
		maxSends = window * len(children)
	}

	var recvs []*Request
	sends := sc.requests(maxSends + 1)
	fail := func(err error) error {
		drainRequests(recvs)
		drainRequests(sends)
		return err
	}

	if parent >= 0 {
		recvs = sc.requestsLen(window)
		for s := 0; s < window; s++ {
			r, err := c.collIrecv(seg(s), int64(len(seg(s))), TypeBytes, parent, opBcast, epoch, s)
			if err != nil {
				return fail(err)
			}
			recvs[s%window] = r
		}
	}
	for s := 0; s < nseg; s++ {
		if parent >= 0 {
			if _, err := recvs[s%window].Wait(); err != nil {
				recvs[s%window] = nil
				return fail(err)
			}
			recvs[s%window] = nil
			if next := s + window; next < nseg {
				r, err := c.collIrecv(seg(next), int64(len(seg(next))), TypeBytes, parent, opBcast, epoch, next)
				if err != nil {
					return fail(err)
				}
				recvs[next%window] = r
			}
		}
		for _, child := range children {
			r, err := c.collIsend(seg(s), int64(len(seg(s))), TypeBytes, child, opBcast, epoch, s)
			if err != nil {
				return fail(err)
			}
			sends = append(sends, r)
		}
		for len(sends) > maxSends {
			if _, err := sends[0].Wait(); err != nil {
				sends = sends[1:]
				return fail(err)
			}
			sends = sends[1:]
		}
	}
	if err := WaitAll(sends...); err != nil {
		return err
	}
	return nil
}

// ReduceOp is a reduction operator for Reduce and Allreduce.
type ReduceOp struct {
	// Combine merges src into dst element-wise (dst = dst ∘ src); both
	// are byte images of count elements of dt.
	Combine func(dst, src []byte, count Count, dt *Datatype) error
	// Commutative declares dst ∘ src ≡ src ∘ dst. Commutative operators
	// may be combined in any order (and qualify for the Rabenseifner
	// schedule); non-commutative operators are combined strictly in rank
	// order 0 ∘ 1 ∘ … ∘ n-1 — MPI's canonical evaluation order —
	// whatever the root.
	Commutative bool
}

// OpSumFloat64 sums float64 elements.
var OpSumFloat64 = ReduceOp{
	Commutative: true,
	Combine: func(dst, src []byte, count Count, _ *Datatype) error {
		for i := Count(0); i < count; i++ {
			layout.PutF64(dst, int(8*i), layout.F64(dst, int(8*i))+layout.F64(src, int(8*i)))
		}
		return nil
	},
}

// OpSumInt64 sums int64 elements.
var OpSumInt64 = ReduceOp{
	Commutative: true,
	Combine: func(dst, src []byte, count Count, _ *Datatype) error {
		for i := Count(0); i < count; i++ {
			layout.PutI64(dst, int(8*i), layout.I64(dst, int(8*i))+layout.I64(src, int(8*i)))
		}
		return nil
	},
}

// OpMaxInt64 keeps the element-wise maximum of int64 elements.
var OpMaxInt64 = ReduceOp{
	Commutative: true,
	Combine: func(dst, src []byte, count Count, _ *Datatype) error {
		for i := Count(0); i < count; i++ {
			if v := layout.I64(src, int(8*i)); v > layout.I64(dst, int(8*i)) {
				layout.PutI64(dst, int(8*i), v)
			}
		}
		return nil
	},
}

// Reduce combines count elements from every rank's sendBuf into recvBuf at
// root using op (binomial tree). Buffers are byte images; recvBuf is only
// written at root. sendBuf contents are preserved. Non-commutative
// operators are combined in rank order.
func (c *Comm) Reduce(sendBuf, recvBuf []byte, count Count, dt *Datatype, op ReduceOp, root int) error {
	if err := c.checkRevoked(); err != nil {
		return err
	}
	epoch := c.nextEpoch()
	n := c.Size()
	if root < 0 || root >= n {
		return fmt.Errorf("%w: reduce root %d", ErrInvalidComm, root)
	}
	bytes, err := c.fixedSize("reduce", count, dt)
	if err != nil {
		return err
	}
	if err := checkLen("reduce send", sendBuf, bytes); err != nil {
		return err
	}
	if c.rank == root {
		if err := checkLen("reduce receive", recvBuf, bytes); err != nil {
			return err
		}
	}
	return c.classifyCommErr(c.reduce(sendBuf, recvBuf, bytes, count, dt, op, root, epoch, nil))
}

func (c *Comm) reduce(sendBuf, recvBuf []byte, bytes Count, count Count, dt *Datatype, op ReduceOp, root int, epoch uint64, sc *collScratch) error {
	if op.Commutative {
		return c.reduceRotated(sendBuf, recvBuf, bytes, count, dt, op, root, epoch, sc)
	}
	return c.reduceOrdered(sendBuf, recvBuf, bytes, count, dt, op, root, epoch, sc)
}

// reduceRotated is the classic root-rotated binomial reduce: the root is
// virtual rank 0, so the result lands at the root in ceil(log2 n) rounds.
// Contributions combine in virtual-rank order, which is only rank order
// for root 0 — hence commutative operators only.
func (c *Comm) reduceRotated(sendBuf, recvBuf []byte, bytes Count, count Count, dt *Datatype, op ReduceOp, root int, epoch uint64, sc *collScratch) error {
	n := c.Size()
	acc := sc.bufA(bytes)
	copy(acc, sendBuf[:bytes])
	tmp := sc.bufB(bytes)
	vrank := (c.rank - root + n) % n
	for mask := 1; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			dst := ((vrank - mask) + root) % n
			return c.collSend(acc, bytes, TypeBytes, dst, opReduce, epoch, 0)
		}
		peer := vrank + mask
		if peer >= n {
			continue
		}
		src := (peer + root) % n
		if err := c.collRecv(tmp, bytes, TypeBytes, src, opReduce, epoch, 0); err != nil {
			return err
		}
		if err := op.Combine(acc, tmp, count, dt); err != nil {
			return err
		}
	}
	if c.rank == root {
		copy(recvBuf[:bytes], acc)
	}
	return nil
}

// reduceOrdered runs the binomial tree over actual ranks rooted at rank 0
// — in that tree a parent's accumulator covers a contiguous rank range
// and each received child accumulator covers the adjacent higher range,
// so combining is exactly rank order 0 ∘ 1 ∘ … ∘ n-1 — then forwards the
// result from rank 0 to the requested root.
func (c *Comm) reduceOrdered(sendBuf, recvBuf []byte, bytes Count, count Count, dt *Datatype, op ReduceOp, root int, epoch uint64, sc *collScratch) error {
	n := c.Size()
	acc := sc.bufA(bytes)
	copy(acc, sendBuf[:bytes])
	tmp := sc.bufB(bytes)
	for mask := 1; mask < n; mask <<= 1 {
		if c.rank&mask != 0 {
			if err := c.collSend(acc, bytes, TypeBytes, c.rank-mask, opReduce, epoch, 0); err != nil {
				return err
			}
			acc = nil
			break
		}
		peer := c.rank + mask
		if peer >= n {
			continue
		}
		if err := c.collRecv(tmp, bytes, TypeBytes, peer, opReduce, epoch, 0); err != nil {
			return err
		}
		if err := op.Combine(acc, tmp, count, dt); err != nil {
			return err
		}
	}
	switch {
	case root == 0:
		if c.rank == 0 {
			copy(recvBuf[:bytes], acc)
		}
	case c.rank == 0:
		return c.collSend(acc, bytes, TypeBytes, root, opReduceRoot, epoch, 0)
	case c.rank == root:
		return c.collRecv(recvBuf[:bytes], bytes, TypeBytes, 0, opReduceRoot, epoch, 0)
	}
	return nil
}

// Allreduce combines count elements from every rank into every rank's
// recvBuf. Commutative operators above CollTuning.RabenThresh bytes use
// Rabenseifner's schedule (reduce-scatter by recursive halving, then
// allgather by recursive doubling — bandwidth-optimal); everything else
// runs reduce-to-0 + broadcast.
func (c *Comm) Allreduce(sendBuf, recvBuf []byte, count Count, dt *Datatype, op ReduceOp) error {
	if err := c.checkRevoked(); err != nil {
		return err
	}
	epoch := c.nextEpoch()
	bytes, err := c.fixedSize("allreduce", count, dt)
	if err != nil {
		return err
	}
	if err := checkLen("allreduce send", sendBuf, bytes); err != nil {
		return err
	}
	if err := checkLen("allreduce receive", recvBuf, bytes); err != nil {
		return err
	}
	return c.classifyCommErr(c.allreduce(sendBuf, recvBuf, bytes, count, dt, op, epoch, nil))
}

func (c *Comm) allreduce(sendBuf, recvBuf []byte, bytes Count, count Count, dt *Datatype, op ReduceOp, epoch uint64, sc *collScratch) error {
	n := c.Size()
	if n == 1 {
		copy(recvBuf[:bytes], sendBuf[:bytes])
		return nil
	}
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	if op.Commutative && bytes >= c.collTuning().RabenThresh && count >= Count(pof2) {
		return c.allreduceRaben(sendBuf, recvBuf, bytes, count, dt, op, pof2, epoch, sc)
	}
	if op.Commutative {
		if p := c.topoPlan(); p != nil {
			return c.allreduceTopo(p, sendBuf, recvBuf, bytes, count, dt, op, epoch, sc)
		}
	}
	if err := c.reduce(sendBuf, recvBuf, bytes, count, dt, op, 0, epoch, sc); err != nil {
		return err
	}
	return c.bcast(recvBuf[:bytes], bytes, TypeBytes, 0, epoch, sc)
}

// allreduceRaben is Rabenseifner's allreduce. Non-power-of-two worlds
// fold the rem = n - pof2 extra ranks into their even partners first, run
// the power-of-two schedule on the survivors, and ship the result back.
// Each rank then moves only ~2·(pof2-1)/pof2 of the vector instead of the
// tree's log2(n) whole-vector hops.
func (c *Comm) allreduceRaben(sendBuf, recvBuf []byte, bytes Count, count Count, dt *Datatype, op ReduceOp, pof2 int, epoch uint64, sc *collScratch) error {
	n := c.Size()
	es := dt.elemSize()
	rem := n - pof2
	copy(recvBuf[:bytes], sendBuf[:bytes])
	tmp := sc.bufB(bytes)

	newrank := -1
	switch {
	case c.rank < 2*rem && c.rank%2 == 1:
		// Folded out: contribute to the even partner, then wait for the
		// result at the end.
		if err := c.collSend(recvBuf[:bytes], bytes, TypeBytes, c.rank-1, opAllreduceRem, epoch, 0); err != nil {
			return err
		}
	case c.rank < 2*rem:
		if err := c.collRecv(tmp, bytes, TypeBytes, c.rank+1, opAllreduceRem, epoch, 0); err != nil {
			return err
		}
		if err := op.Combine(recvBuf, tmp, count, dt); err != nil {
			return err
		}
		newrank = c.rank / 2
	default:
		newrank = c.rank - rem
	}

	if newrank >= 0 {
		// peerRank maps a schedule rank back to a communicator rank.
		peerRank := func(nr int) int {
			if nr < rem {
				return 2 * nr
			}
			return nr + rem
		}
		// Reduce-scatter by recursive halving over element ranges. Each
		// step exchanges the non-kept half with the partner and reduces
		// the kept half; the steps are recorded (rabenStep) so the
		// allgather phase can retrace them in reverse.
		nsteps := 0
		for dist := pof2 / 2; dist > 0; dist /= 2 {
			nsteps++
		}
		steps := sc.rabenSteps(nsteps)
		lo, hi := Count(0), count
		seq := 0
		for dist := pof2 / 2; dist > 0; dist /= 2 {
			partner := peerRank(newrank ^ dist)
			mid := lo + (hi-lo)/2
			keepLow := newrank&dist == 0
			sendLo, sendHi := lo, mid
			recvLo, recvHi := mid, hi
			if keepLow {
				sendLo, sendHi = mid, hi
				recvLo, recvHi = lo, mid
			}
			sr, err := c.collIsend(recvBuf[sendLo*es:sendHi*es], (sendHi-sendLo)*es, TypeBytes, partner, opAllreduceRS, epoch, seq)
			if err != nil {
				return err
			}
			rb := (recvHi - recvLo) * es
			if err := c.collRecv(tmp[:rb], rb, TypeBytes, partner, opAllreduceRS, epoch, seq); err != nil {
				drainRequests([]*Request{sr})
				return err
			}
			if _, err := sr.Wait(); err != nil {
				return err
			}
			if err := op.Combine(recvBuf[recvLo*es:recvHi*es], tmp[:rb], recvHi-recvLo, dt); err != nil {
				return err
			}
			steps = append(steps, rabenStep{partner: partner, lo: lo, mid: mid, hi: hi, keepLow: keepLow})
			if keepLow {
				hi = mid
			} else {
				lo = mid
			}
			seq++
		}
		// Allgather by recursive doubling: retrace the halving steps in
		// reverse, exchanging the owned range for the partner's
		// complementary half until every rank holds the full vector.
		for i := len(steps) - 1; i >= 0; i-- {
			st := steps[i]
			myLo, myHi := st.mid, st.hi
			otherLo, otherHi := st.lo, st.mid
			if st.keepLow {
				myLo, myHi = st.lo, st.mid
				otherLo, otherHi = st.mid, st.hi
			}
			sr, err := c.collIsend(recvBuf[myLo*es:myHi*es], (myHi-myLo)*es, TypeBytes, st.partner, opAllreduceAG, epoch, seq)
			if err != nil {
				return err
			}
			ob := (otherHi - otherLo) * es
			if err := c.collRecv(recvBuf[otherLo*es:otherHi*es], ob, TypeBytes, st.partner, opAllreduceAG, epoch, seq); err != nil {
				drainRequests([]*Request{sr})
				return err
			}
			if _, err := sr.Wait(); err != nil {
				return err
			}
			seq++
		}
	}

	// Ship the full result to the folded-out odd ranks.
	if c.rank < 2*rem {
		if c.rank%2 == 0 {
			return c.collSend(recvBuf[:bytes], bytes, TypeBytes, c.rank+1, opAllreduceRem, epoch, 1)
		}
		return c.collRecv(recvBuf[:bytes], bytes, TypeBytes, c.rank-1, opAllreduceRem, epoch, 1)
	}
	return nil
}

// Gather collects count elements from every rank into recvBuf at root
// (rank i's contribution lands at offset i*count*size).
func (c *Comm) Gather(sendBuf []byte, count Count, dt *Datatype, recvBuf []byte, root int) error {
	if err := c.checkRevoked(); err != nil {
		return err
	}
	epoch := c.nextEpoch()
	n := c.Size()
	if root < 0 || root >= n {
		return fmt.Errorf("%w: gather root %d", ErrInvalidComm, root)
	}
	bytes, err := c.fixedSize("gather", count, dt)
	if err != nil {
		return err
	}
	if err := checkLen("gather send", sendBuf, bytes); err != nil {
		return err
	}
	if c.rank == root {
		if err := checkLen("gather receive", recvBuf, bytes*int64(n)); err != nil {
			return err
		}
	}
	return c.classifyCommErr(c.gather(sendBuf, recvBuf, bytes, root, epoch, nil))
}

func (c *Comm) gather(sendBuf, recvBuf []byte, bytes Count, root int, epoch uint64, sc *collScratch) error {
	n := c.Size()
	if c.rank != root {
		return c.collSend(sendBuf[:bytes], bytes, TypeBytes, root, opGather, epoch, 0)
	}
	copy(recvBuf[int64(c.rank)*bytes:], sendBuf[:bytes])
	reqs := sc.requests(n - 1)
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		req, err := c.collIrecv(recvBuf[int64(r)*bytes:int64(r+1)*bytes], bytes, TypeBytes, r, opGather, epoch, 0)
		if err != nil {
			drainRequests(reqs)
			return err
		}
		reqs = append(reqs, req)
	}
	return WaitAll(reqs...)
}

// Allgather gathers count elements from every rank into every rank's
// recvBuf. Contributions of at least CollTuning.PipelineThresh bytes ride
// the bandwidth-optimal ring (n-1 steps of one block each, neighbor
// Isend/Irecv overlapped); smaller ones gather to rank 0 and broadcast.
func (c *Comm) Allgather(sendBuf []byte, count Count, dt *Datatype, recvBuf []byte) error {
	if err := c.checkRevoked(); err != nil {
		return err
	}
	epoch := c.nextEpoch()
	bytes, err := c.fixedSize("allgather", count, dt)
	if err != nil {
		return err
	}
	if err := checkLen("allgather send", sendBuf, bytes); err != nil {
		return err
	}
	if err := checkLen("allgather receive", recvBuf, bytes*int64(c.Size())); err != nil {
		return err
	}
	return c.classifyCommErr(c.allgather(sendBuf, recvBuf, bytes, epoch, nil))
}

func (c *Comm) allgather(sendBuf, recvBuf []byte, bytes Count, epoch uint64, sc *collScratch) error {
	n := c.Size()
	if n == 1 {
		copy(recvBuf[:bytes], sendBuf[:bytes])
		return nil
	}
	if bytes >= c.collTuning().PipelineThresh {
		return c.allgatherRing(sendBuf, recvBuf, bytes, epoch, sc)
	}
	if err := c.gather(sendBuf, recvBuf, bytes, 0, epoch, sc); err != nil {
		return err
	}
	return c.bcast(recvBuf[:bytes*int64(n)], bytes*int64(n), TypeBytes, 0, epoch, sc)
}

// allgatherRing is the ring allgather: at step s every rank forwards the
// block it received at step s-1 to its right neighbor while receiving the
// next block from the left — each rank moves (n-1)/n of the result
// instead of receiving it twice through a root.
func (c *Comm) allgatherRing(sendBuf, recvBuf []byte, bytes Count, epoch uint64, sc *collScratch) error {
	n := c.Size()
	copy(recvBuf[int64(c.rank)*bytes:], sendBuf[:bytes])
	right := (c.rank + 1) % n
	left := (c.rank - 1 + n) % n
	window := c.collTuning().Window
	sends := sc.requests(window + 1)
	fail := func(err error, extra ...*Request) error {
		drainRequests(extra)
		drainRequests(sends)
		return err
	}
	for step := 0; step < n-1; step++ {
		sb := int64(((c.rank-step)%n + n) % n)
		rb := int64(((c.rank-step-1)%n + n) % n)
		rr, err := c.collIrecv(recvBuf[rb*bytes:(rb+1)*bytes], bytes, TypeBytes, left, opAllgather, epoch, step)
		if err != nil {
			return fail(err)
		}
		sr, err := c.collIsend(recvBuf[sb*bytes:(sb+1)*bytes], bytes, TypeBytes, right, opAllgather, epoch, step)
		if err != nil {
			return fail(err, rr)
		}
		sends = append(sends, sr)
		if _, err := rr.Wait(); err != nil {
			return fail(err)
		}
		for len(sends) > window {
			if _, err := sends[0].Wait(); err != nil {
				sends = sends[1:]
				return fail(err)
			}
			sends = sends[1:]
		}
	}
	return WaitAll(sends...)
}

// Scatter distributes slices of sendBuf at root: rank i receives the
// count elements at offset i*count*size into recvBuf.
func (c *Comm) Scatter(sendBuf []byte, count Count, dt *Datatype, recvBuf []byte, root int) error {
	if err := c.checkRevoked(); err != nil {
		return err
	}
	epoch := c.nextEpoch()
	n := c.Size()
	if root < 0 || root >= n {
		return fmt.Errorf("%w: scatter root %d", ErrInvalidComm, root)
	}
	bytes, err := c.fixedSize("scatter", count, dt)
	if err != nil {
		return err
	}
	if err := checkLen("scatter receive", recvBuf, bytes); err != nil {
		return err
	}
	if c.rank == root {
		if err := checkLen("scatter send", sendBuf, bytes*int64(n)); err != nil {
			return err
		}
	}
	return c.classifyCommErr(c.scatter(sendBuf, recvBuf, bytes, root, epoch))
}

func (c *Comm) scatter(sendBuf, recvBuf []byte, bytes Count, root int, epoch uint64) error {
	n := c.Size()
	if c.rank != root {
		return c.collRecv(recvBuf[:bytes], bytes, TypeBytes, root, opScatter, epoch, 0)
	}
	reqs := make([]*Request, 0, n-1)
	for r := 0; r < n; r++ {
		part := sendBuf[int64(r)*bytes : int64(r+1)*bytes]
		if r == root {
			copy(recvBuf[:bytes], part)
			continue
		}
		req, err := c.collIsend(part, bytes, TypeBytes, r, opScatter, epoch, 0)
		if err != nil {
			drainRequests(reqs)
			return err
		}
		reqs = append(reqs, req)
	}
	return WaitAll(reqs...)
}

// Alltoall exchanges count elements with every rank: the block at offset
// i*count*size of sendBuf goes to rank i, and rank i's block lands at the
// same offset of recvBuf (pairwise exchange).
func (c *Comm) Alltoall(sendBuf []byte, count Count, dt *Datatype, recvBuf []byte) error {
	if err := c.checkRevoked(); err != nil {
		return err
	}
	epoch := c.nextEpoch()
	n := c.Size()
	bytes, err := c.fixedSize("alltoall", count, dt)
	if err != nil {
		return err
	}
	if err := checkLen("alltoall send", sendBuf, bytes*int64(n)); err != nil {
		return err
	}
	if err := checkLen("alltoall receive", recvBuf, bytes*int64(n)); err != nil {
		return err
	}
	return c.classifyCommErr(c.alltoall(sendBuf, recvBuf, bytes, epoch))
}

func (c *Comm) alltoall(sendBuf, recvBuf []byte, bytes Count, epoch uint64) error {
	n := c.Size()
	copy(recvBuf[int64(c.rank)*bytes:int64(c.rank+1)*bytes], sendBuf[int64(c.rank)*bytes:int64(c.rank+1)*bytes])
	for step := 1; step < n; step++ {
		dst := (c.rank + step) % n
		src := (c.rank - step + n) % n
		rr, err := c.collIrecv(recvBuf[int64(src)*bytes:int64(src+1)*bytes], bytes, TypeBytes, src, opAlltoall, epoch, step)
		if err != nil {
			return err
		}
		sr, err := c.collIsend(sendBuf[int64(dst)*bytes:int64(dst+1)*bytes], bytes, TypeBytes, dst, opAlltoall, epoch, step)
		if err != nil {
			drainRequests([]*Request{rr})
			return err
		}
		if _, err := sr.Wait(); err != nil {
			drainRequests([]*Request{rr})
			return err
		}
		if _, err := rr.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// agreeCID agrees on the next communicator context id across all ranks of
// this communicator: the maximum of everyone's local counter.
func (c *Comm) agreeCID() (uint64, error) {
	local := make([]byte, 8)
	layout.PutI64(local, 0, int64(*c.nextCID))
	agreed := make([]byte, 8)
	maxOp := ReduceOp{
		Commutative: true,
		Combine: func(dst, src []byte, _ Count, _ *Datatype) error {
			if layout.I64(src, 0) > layout.I64(dst, 0) {
				layout.PutI64(dst, 0, layout.I64(src, 0))
			}
			return nil
		},
	}
	if err := c.Allreduce(local, agreed, 8, TypeBytes, maxOp); err != nil {
		return 0, err
	}
	cid := uint64(layout.I64(agreed, 0))
	if cid >= 1<<16 {
		return 0, fmt.Errorf("%w: communicator context ids exhausted", ErrInvalidComm)
	}
	*c.nextCID = cid + 1
	return cid, nil
}

// Dup duplicates the communicator with a fresh matching context
// (MPI_Comm_dup; collective). Like MPI, communicator-creation collectives
// must not run concurrently from multiple goroutines of the same rank:
// they advance a shared per-rank context-id counter.
func (c *Comm) Dup() (*Comm, error) {
	if err := c.checkRevoked(); err != nil {
		return nil, err
	}
	cid, err := c.agreeCID()
	if err != nil {
		return nil, err
	}
	group := append([]int(nil), c.group...)
	nc := &Comm{
		w: c.w, ctx: cid, group: group, inverse: c.inverse, rank: c.rank,
		nextCID: c.nextCID, collEpoch: new(atomic.Uint64), tuning: c.tuning,
	}
	nc.initULFM()
	return nc, nil
}

// Split partitions the communicator by color; ranks with equal color form
// a new communicator ordered by (key, rank). A negative color returns nil
// (MPI_UNDEFINED). Collective.
func (c *Comm) Split(color, key int) (*Comm, error) {
	if err := c.checkRevoked(); err != nil {
		return nil, err
	}
	n := c.Size()
	mine := make([]byte, 16)
	layout.PutI64(mine, 0, int64(color))
	layout.PutI64(mine, 8, int64(key))
	all := make([]byte, 16*n)
	if err := c.Allgather(mine, 16, TypeBytes, all); err != nil {
		return nil, err
	}
	cid, err := c.agreeCID()
	if err != nil {
		return nil, err
	}
	if color < 0 {
		return nil, nil
	}
	type member struct{ key, rank int }
	var members []member
	for r := 0; r < n; r++ {
		if int(layout.I64(all, 16*r)) == color {
			members = append(members, member{int(layout.I64(all, 16*r+8)), r})
		}
	}
	// Insertion sort by (key, rank): stable and dependency-free.
	for i := 1; i < len(members); i++ {
		for j := i; j > 0 && (members[j].key < members[j-1].key ||
			(members[j].key == members[j-1].key && members[j].rank < members[j-1].rank)); j-- {
			members[j], members[j-1] = members[j-1], members[j]
		}
	}
	group := make([]int, len(members))
	inverse := make(map[int]int, len(members))
	myRank := -1
	for i, m := range members {
		group[i] = c.group[m.rank]
		inverse[c.group[m.rank]] = i
		if m.rank == c.rank {
			myRank = i
		}
	}
	if myRank < 0 {
		return nil, fmt.Errorf("%w: split: calling rank missing from its color group", ErrInvalidComm)
	}
	nc := &Comm{
		w: c.w, ctx: cid, group: group, inverse: inverse, rank: myRank,
		nextCID: c.nextCID, collEpoch: new(atomic.Uint64), tuning: c.tuning,
	}
	nc.initULFM()
	return nc, nil
}
