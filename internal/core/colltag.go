package core

import (
	"fmt"

	"mpicd/internal/ucp"
)

// Collective matching space. A collective tag's low 32 bits are
//
//	[coll:1][op:5][epoch:18][seq:8]
//
// where coll is the reserved collective bit (core.go), op identifies the
// collective phase (so composite collectives such as Allreduce =
// reduce-scatter + allgather never cross-match their own phases), epoch
// is the per-communicator collective call counter (so back-to-back and
// concurrently outstanding nonblocking collectives never cross-match),
// and seq numbers pipeline chunks and schedule steps within one phase.
//
// Collective receives always match the full 64-bit tag exactly — there
// are no wildcards inside the collective space.
const (
	collOpShift    = 26
	collOpMax      = 0x1F
	collEpochShift = 8
	collEpochMask  = 0x3FFFF // 18 bits; wraps, which is safe: no schedule
	// keeps traffic in flight across 2^18 later collectives on one comm.
	collSeqMask = 0xFF
)

// collOp identifies a collective phase in the tag's op field.
type collOp uint64

const (
	opBarrier collOp = iota + 1
	opBcast
	opReduce
	opReduceRoot // rank-0 -> root result forward of rank-ordered Reduce
	opAllreduceRS
	opAllreduceAG
	opAllreduceRem // non-power-of-two pre/post exchange of Rabenseifner
	opGather
	opScatter
	opAllgather
	opAlltoall
	opGatherv
	opScatterv
)

// Recovery control phases live at the top of the 5-bit op space, far from
// the data collectives, so a revoked communicator can keep exchanging
// control traffic while every data-phase receive is aborted (ulfm.go).
const (
	opRevoke   collOp = collOpMax - iota // revocation notice flood
	opAgree                              // fault-tolerant agreement rounds
	opJoinInv                            // Grow: survivor → joiner invitation (context 0, grow.go)
	opJoinAnn                            // Grow: joiner → survivor announcement (context 0)
	opJoinSpec                           // Grow: leader → joiner world spec (context 0)
)

// CollTuning configures the collective engine's algorithm selection.
// Zero fields select the defaults; Dup and Split inherit the parent's
// tuning.
type CollTuning struct {
	// ChunkBytes is the pipeline segment size for chunked schedules
	// (default 128 KiB).
	ChunkBytes int64
	// PipelineThresh is the message size at which Bcast switches from
	// whole-message binomial to the segment-pipelined binomial tree, and
	// Allgather from gather+bcast to the ring schedule (default 256 KiB,
	// counting the per-rank contribution for Allgather).
	PipelineThresh int64
	// RabenThresh is the message size at which commutative Allreduce
	// switches from binomial reduce+bcast to Rabenseifner's
	// reduce-scatter + allgather (default 64 KiB).
	RabenThresh int64
	// Window is the number of outstanding pipeline chunks per peer
	// (default 4, minimum 1).
	Window int
	// Topology describes rank placement for hierarchy-aware schedules
	// (colltopo.go): small Bcasts and small commutative Allreduces route
	// through one leader per node so each payload crosses the expensive
	// inter-node tier once per node instead of once per rank. Nil — or a
	// placement that does not fit this communicator, such as tuning
	// inherited through Split — keeps the flat topology-oblivious
	// algorithms.
	Topology *CollTopology
}

// CollTopology maps communicator ranks to nodes. The launcher reports
// real placement; in-process tests fabricate one to exercise the
// hierarchical schedules.
type CollTopology struct {
	// NodeOf[i] is the node id hosting communicator rank i. Ids are
	// arbitrary labels; equal ids promise a cheap transport tier (shared
	// memory) between the two ranks.
	NodeOf []int
}

// Default collective-engine thresholds.
const (
	DefaultCollChunkBytes     = 128 * 1024
	DefaultCollPipelineThresh = 256 * 1024
	DefaultCollRabenThresh    = 64 * 1024
	DefaultCollWindow         = 4
)

func (t CollTuning) withDefaults() CollTuning {
	if t.ChunkBytes <= 0 {
		t.ChunkBytes = DefaultCollChunkBytes
	}
	if t.PipelineThresh <= 0 {
		t.PipelineThresh = DefaultCollPipelineThresh
	}
	if t.RabenThresh <= 0 {
		t.RabenThresh = DefaultCollRabenThresh
	}
	if t.Window <= 0 {
		t.Window = DefaultCollWindow
	}
	return t
}

// SetCollTuning replaces the communicator's collective thresholds. Like
// every communicator-state change it must not race in-flight collectives;
// benchmarks use it to pin one algorithm (e.g. a huge PipelineThresh
// forces the naive schedules).
func (c *Comm) SetCollTuning(t CollTuning) { c.tuning = t }

// collTuning returns the effective (default-resolved) tuning.
func (c *Comm) collTuning() CollTuning { return c.tuning.withDefaults() }

// nextEpoch reserves the next collective epoch. Every public collective —
// blocking or nonblocking — calls it exactly once, synchronously at call
// time, so the caller's collective call order defines the epoch sequence
// even when the schedule itself runs on a background goroutine.
func (c *Comm) nextEpoch() uint64 { return c.collEpoch.Add(1) }

// collTag builds the transport tag for collective traffic sent by this
// rank in (op, epoch, seq).
func (c *Comm) collTag(op collOp, epoch uint64, seq int) ucp.Tag {
	low := collBit |
		uint64(op)<<collOpShift |
		(epoch&collEpochMask)<<collEpochShift |
		uint64(seq)&collSeqMask
	return ucp.Tag(c.ctx<<ctxShift | uint64(c.rank)<<srcShift | low)
}

// collMatch builds the exact-match criteria for collective traffic from
// comm rank src in (op, epoch, seq).
func (c *Comm) collMatch(src int, op collOp, epoch uint64, seq int) (from int, tag ucp.Tag) {
	low := collBit |
		uint64(op)<<collOpShift |
		(epoch&collEpochMask)<<collEpochShift |
		uint64(seq)&collSeqMask
	return c.group[src], ucp.Tag(c.ctx<<ctxShift | uint64(src)<<srcShift | low)
}

// collIsend starts a nonblocking collective send to comm rank dst.
func (c *Comm) collIsend(buf any, count Count, dt *Datatype, dst int, op collOp, epoch uint64, seq int) (*Request, error) {
	if dst < 0 || dst >= len(c.group) {
		return nil, fmt.Errorf("%w: collective destination rank %d", ErrInvalidComm, dst)
	}
	r, err := c.w.Send(c.group[dst], c.collTag(op, epoch, seq), dt.transport(), buf, count, 0, ucp.ProtoAuto)
	if err != nil {
		return nil, err
	}
	return &Request{r: r, comm: c}, nil
}

// collSend is the blocking form of collIsend.
func (c *Comm) collSend(buf any, count Count, dt *Datatype, dst int, op collOp, epoch uint64, seq int) error {
	r, err := c.collIsend(buf, count, dt, dst, op, epoch, seq)
	if err != nil {
		return err
	}
	_, err = r.Wait()
	return err
}

// collIrecv posts a nonblocking collective receive from comm rank src.
// Collective receives match the full tag exactly.
func (c *Comm) collIrecv(buf any, count Count, dt *Datatype, src int, op collOp, epoch uint64, seq int) (*Request, error) {
	if src < 0 || src >= len(c.group) {
		return nil, fmt.Errorf("%w: collective source rank %d", ErrInvalidComm, src)
	}
	from, tag := c.collMatch(src, op, epoch, seq)
	r, err := c.w.Recv(from, tag, ^ucp.Tag(0), dt.transport(), buf, count)
	if err != nil {
		return nil, err
	}
	return &Request{r: r, comm: c}, nil
}

// collRecv is the blocking form of collIrecv.
func (c *Comm) collRecv(buf any, count Count, dt *Datatype, src int, op collOp, epoch uint64, seq int) error {
	r, err := c.collIrecv(buf, count, dt, src, op, epoch, seq)
	if err != nil {
		return err
	}
	_, err = r.Wait()
	return err
}

// drainRequests disposes of in-flight requests on an error path: posted
// receives that have not matched are canceled; everything else (sends,
// matched receives) is waited out so no request keeps referencing caller
// buffers after the collective returns. Errors are discarded — the
// caller is already failing with the primary error.
func drainRequests(reqs []*Request) {
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if r.Cancel() {
			continue
		}
		_, _ = r.Wait()
	}
}
