package core

import "fmt"

// Cartesian process topologies (MPI_Cart_create and friends): the
// standard way stencil applications — like the DDTBench kernels' host
// codes — organize their halo exchanges.

// CartComm is a communicator with an attached Cartesian topology.
type CartComm struct {
	*Comm
	dims     []int
	periodic []bool
}

// CartCreate attaches an n-dimensional Cartesian topology to the
// communicator (collective). The product of dims must equal the
// communicator size; periodic selects wraparound per dimension. Ranks are
// row-major (last dimension varies fastest), matching MPI's C order.
func (c *Comm) CartCreate(dims []int, periodic []bool) (*CartComm, error) {
	if len(dims) == 0 || len(dims) != len(periodic) {
		return nil, fmt.Errorf("%w: cart dims/periodic length mismatch", ErrInvalidComm)
	}
	n := 1
	for d, v := range dims {
		if v <= 0 {
			return nil, fmt.Errorf("%w: cart dim %d = %d", ErrInvalidComm, d, v)
		}
		n *= v
	}
	if n != c.Size() {
		return nil, fmt.Errorf("%w: cart grid %d != comm size %d", ErrInvalidComm, n, c.Size())
	}
	dup, err := c.Dup()
	if err != nil {
		return nil, err
	}
	return &CartComm{
		Comm:     dup,
		dims:     append([]int(nil), dims...),
		periodic: append([]bool(nil), periodic...),
	}, nil
}

// Dims returns the topology's dimension sizes.
func (cc *CartComm) Dims() []int { return append([]int(nil), cc.dims...) }

// Coords returns the Cartesian coordinates of a rank (MPI_Cart_coords).
func (cc *CartComm) Coords(rank int) ([]int, error) {
	if rank < 0 || rank >= cc.Size() {
		return nil, fmt.Errorf("%w: cart rank %d", ErrInvalidComm, rank)
	}
	coords := make([]int, len(cc.dims))
	for d := len(cc.dims) - 1; d >= 0; d-- {
		coords[d] = rank % cc.dims[d]
		rank /= cc.dims[d]
	}
	return coords, nil
}

// CartRank returns the rank at the given coordinates (MPI_Cart_rank).
// Coordinates outside a periodic dimension wrap; outside a non-periodic
// dimension they are an error.
func (cc *CartComm) CartRank(coords []int) (int, error) {
	if len(coords) != len(cc.dims) {
		return 0, fmt.Errorf("%w: cart coords dimension %d", ErrInvalidComm, len(coords))
	}
	rank := 0
	for d, v := range coords {
		if cc.periodic[d] {
			v = ((v % cc.dims[d]) + cc.dims[d]) % cc.dims[d]
		} else if v < 0 || v >= cc.dims[d] {
			return 0, fmt.Errorf("%w: coordinate %d out of non-periodic dim %d", ErrInvalidComm, v, d)
		}
		rank = rank*cc.dims[d] + v
	}
	return rank, nil
}

// ProcNull is the null-neighbor rank for non-periodic boundaries
// (MPI_PROC_NULL): sends and receives addressed to it are skipped by
// SendRecvNull-style helpers.
const ProcNull = -2

// Shift returns the source and destination ranks for a displacement along
// one dimension (MPI_Cart_shift). On non-periodic boundaries it returns
// ProcNull for the missing neighbor.
func (cc *CartComm) Shift(dim, disp int) (src, dst int, err error) {
	if dim < 0 || dim >= len(cc.dims) {
		return 0, 0, fmt.Errorf("%w: cart shift dim %d", ErrInvalidComm, dim)
	}
	coords, err := cc.Coords(cc.Rank())
	if err != nil {
		return 0, 0, err
	}
	neighbor := func(delta int) int {
		n := append([]int(nil), coords...)
		n[dim] += delta
		r, err := cc.CartRank(n)
		if err != nil {
			return ProcNull
		}
		return r
	}
	return neighbor(-disp), neighbor(disp), nil
}

// NeighborSendRecv is SendRecv with ProcNull handling: a ProcNull
// destination skips the send, a ProcNull source skips the receive.
func (cc *CartComm) NeighborSendRecv(sendBuf any, sendCount Count, sendDT *Datatype, dst, stag int,
	recvBuf any, recvCount Count, recvDT *Datatype, src, rtag int) (Status, error) {
	var rr *Request
	var err error
	if src != ProcNull {
		rr, err = cc.Irecv(recvBuf, recvCount, recvDT, src, rtag)
		if err != nil {
			return Status{}, err
		}
	}
	if dst != ProcNull {
		if err := cc.Send(sendBuf, sendCount, sendDT, dst, stag); err != nil {
			return Status{}, err
		}
	}
	if rr == nil {
		return Status{}, nil
	}
	return rr.Wait()
}
