package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"mpicd/internal/ddt"
	"mpicd/internal/layout"
)

func TestIbarrier(t *testing.T) {
	const n = 4
	var entered atomic.Int32
	err := Run(n, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			time.Sleep(20 * time.Millisecond)
		}
		entered.Add(1)
		r := c.Ibarrier()
		if err := r.Wait(); err != nil {
			return err
		}
		if got := entered.Load(); got != n {
			return fmt.Errorf("left Ibarrier with %d/%d ranks entered", got, n)
		}
		// Wait is idempotent and Test reports completion.
		done, err := r.Test()
		if !done || err != nil {
			return fmt.Errorf("Test after Wait = (%v, %v)", done, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIbcastOverlapsUserTraffic runs point-to-point traffic while an
// Ibcast is outstanding: the collective bit keeps them apart, and the
// user exchange completes before the collective does.
func TestIbcastOverlapsUserTraffic(t *testing.T) {
	const size = 1 << 19 // large enough to keep the pipeline busy
	want := pattern(size, 5)
	err := Run(2, Options{}, func(c *Comm) error {
		buf := make([]byte, size)
		if c.Rank() == 0 {
			copy(buf, want)
		}
		r, err := c.Ibcast(buf, -1, TypeBytes, 0)
		if err != nil {
			return err
		}
		// A full user ping-pong while the broadcast is in flight.
		if c.Rank() == 0 {
			if err := c.Send([]byte{1}, 1, TypeBytes, 1, 42); err != nil {
				return err
			}
			if _, err := c.Recv(make([]byte, 1), 1, TypeBytes, 1, 43); err != nil {
				return err
			}
		} else {
			if _, err := c.Recv(make([]byte, 1), 1, TypeBytes, 0, 42); err != nil {
				return err
			}
			if err := c.Send([]byte{2}, 1, TypeBytes, 0, 43); err != nil {
				return err
			}
		}
		if err := r.Wait(); err != nil {
			return err
		}
		if !bytes.Equal(buf, want) {
			return errors.New("ibcast payload mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOutstandingNonblockingCollectives keeps several collectives in
// flight at once on one communicator; per-call epochs keep their traffic
// from cross-matching even though every schedule uses the same op codes.
func TestOutstandingNonblockingCollectives(t *testing.T) {
	const n = 4
	const count = 256
	err := Run(n, Options{}, func(c *Comm) error {
		sendA := make([]byte, 8*count)
		sendB := make([]byte, 8*count)
		for i := 0; i < count; i++ {
			layout.PutI64(sendA, 8*i, int64(c.Rank()))
			layout.PutI64(sendB, 8*i, int64(c.Rank()*10))
		}
		recvA := make([]byte, 8*count)
		recvB := make([]byte, 8*count)
		mine := pattern(512, byte(c.Rank()+1))
		all := make([]byte, 512*n)

		ra, err := c.Iallreduce(sendA, recvA, count, FromDDT(ddt.Int64), OpSumInt64)
		if err != nil {
			return err
		}
		rb, err := c.Iallreduce(sendB, recvB, count, FromDDT(ddt.Int64), OpSumInt64)
		if err != nil {
			return err
		}
		rg, err := c.Iallgather(mine, 512, TypeBytes, all)
		if err != nil {
			return err
		}
		// Complete out of order.
		if err := rg.Wait(); err != nil {
			return err
		}
		if err := rb.Wait(); err != nil {
			return err
		}
		if err := ra.Wait(); err != nil {
			return err
		}

		wantA := int64(n * (n - 1) / 2)
		for i := 0; i < count; i++ {
			if got := layout.I64(recvA, 8*i); got != wantA {
				return fmt.Errorf("allreduce A[%d] = %d, want %d", i, got, wantA)
			}
			if got := layout.I64(recvB, 8*i); got != wantA*10 {
				return fmt.Errorf("allreduce B[%d] = %d, want %d", i, got, wantA*10)
			}
		}
		for r := 0; r < n; r++ {
			if !bytes.Equal(all[r*512:(r+1)*512], pattern(512, byte(r+1))) {
				return fmt.Errorf("allgather slot %d mismatch", r)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIcollSynchronousValidation: argument errors surface synchronously,
// and — because a failed call still consumes its epoch on every rank —
// the communicator stays usable afterwards.
func TestIcollSynchronousValidation(t *testing.T) {
	err := Run(3, Options{}, func(c *Comm) error {
		if _, err := c.Ibcast(make([]byte, 8), -1, TypeBytes, 9); !errors.Is(err, ErrInvalidComm) {
			return fmt.Errorf("Ibcast bad root = %v, want ErrInvalidComm", err)
		}
		if _, err := c.Iallreduce(make([]byte, 4), make([]byte, 8), 1, FromDDT(ddt.Int64), OpSumInt64); !errors.Is(err, ErrInvalidComm) {
			return fmt.Errorf("Iallreduce short send = %v, want ErrInvalidComm", err)
		}
		if _, err := c.Iallgather(make([]byte, 8), 8, TypeBytes, make([]byte, 8)); !errors.Is(err, ErrInvalidComm) {
			return fmt.Errorf("Iallgather short recv = %v, want ErrInvalidComm", err)
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollRequestWaitTimeout: an Ibarrier that cannot complete (one rank
// holds back) times out instead of blocking forever, then completes once
// the straggler arrives.
func TestCollRequestWaitTimeout(t *testing.T) {
	release := make(chan struct{})
	err := Run(2, Options{}, func(c *Comm) error {
		if c.Rank() == 1 {
			<-release
			return c.Ibarrier().Wait()
		}
		r := c.Ibarrier()
		if err := r.WaitTimeout(30 * time.Millisecond); !errors.Is(err, ErrTimeout) {
			return fmt.Errorf("WaitTimeout = %v, want ErrTimeout", err)
		}
		close(release)
		select {
		case <-r.Done():
		case <-time.After(2 * time.Second):
			return errors.New("Ibarrier never completed after release")
		}
		return r.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
}
