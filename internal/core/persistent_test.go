package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestPersistentPingpong(t *testing.T) {
	const iters = 50
	run2(t, Options{},
		func(c *Comm) error {
			buf := make([]byte, 4096)
			ps, err := c.SendInit(buf, -1, TypeBytes, 1, 1)
			if err != nil {
				return err
			}
			for i := 0; i < iters; i++ {
				copy(buf, pattern(4096, byte(i)))
				if err := ps.Start(); err != nil {
					return err
				}
				if _, err := ps.Wait(); err != nil {
					return err
				}
			}
			return nil
		},
		func(c *Comm) error {
			buf := make([]byte, 4096)
			pr, err := c.RecvInit(buf, -1, TypeBytes, 0, 1)
			if err != nil {
				return err
			}
			for i := 0; i < iters; i++ {
				if err := pr.Start(); err != nil {
					return err
				}
				if _, err := pr.Wait(); err != nil {
					return err
				}
				if !bytes.Equal(buf, pattern(4096, byte(i))) {
					return fmt.Errorf("iteration %d corrupted", i)
				}
			}
			return nil
		})
}

func TestPersistentCustomDatatype(t *testing.T) {
	// Persistent requests with the custom datatype: re-serialization per
	// Start, the halo-exchange pattern.
	dt := TypeCreateCustom(recVecHandler{})
	const iters = 10
	run2(t, Options{},
		func(c *Comm) error {
			rec := &recVec{Data: make([]byte, 10000)}
			ps, err := c.SendInit(rec, 1, dt, 1, 1)
			if err != nil {
				return err
			}
			for i := 0; i < iters; i++ {
				rec.A = int32(i)
				copy(rec.Data, pattern(10000, byte(i)))
				if err := ps.Start(); err != nil {
					return err
				}
				if _, err := ps.Wait(); err != nil {
					return err
				}
			}
			return nil
		},
		func(c *Comm) error {
			rec := &recVec{Data: make([]byte, 10000)}
			pr, err := c.RecvInit(rec, 1, dt, 0, 1)
			if err != nil {
				return err
			}
			for i := 0; i < iters; i++ {
				if err := pr.Start(); err != nil {
					return err
				}
				if _, err := pr.Wait(); err != nil {
					return err
				}
				if rec.A != int32(i) || !bytes.Equal(rec.Data, pattern(10000, byte(i))) {
					return fmt.Errorf("iteration %d corrupted", i)
				}
			}
			return nil
		})
}

func TestPersistentStartWhileActive(t *testing.T) {
	run2(t, Options{},
		func(c *Comm) error {
			out := make([]byte, 1)
			pr, err := c.RecvInit(out, 1, TypeBytes, 1, 1)
			if err != nil {
				return err
			}
			if err := pr.Start(); err != nil {
				return err
			}
			if err := pr.Start(); !errors.Is(err, ErrActive) {
				return fmt.Errorf("double Start err = %v", err)
			}
			if err := c.Send([]byte{0}, 1, TypeBytes, 1, 2); err != nil { // release peer
				return err
			}
			_, err = pr.Wait()
			return err
		},
		func(c *Comm) error {
			one := make([]byte, 1)
			if _, err := c.Recv(one, 1, TypeBytes, 0, 2); err != nil {
				return err
			}
			return c.Send([]byte{7}, 1, TypeBytes, 0, 1)
		})
}

func TestStartAllWaitAll(t *testing.T) {
	const n = 8
	run2(t, Options{},
		func(c *Comm) error {
			ps := make([]*PersistentRequest, n)
			bufs := make([][]byte, n)
			for i := range ps {
				bufs[i] = pattern(100, byte(i))
				p, err := c.SendInit(bufs[i], -1, TypeBytes, 1, i)
				if err != nil {
					return err
				}
				ps[i] = p
			}
			for round := 0; round < 3; round++ {
				if err := StartAll(ps...); err != nil {
					return err
				}
				if err := WaitAllPersistent(ps...); err != nil {
					return err
				}
			}
			return nil
		},
		func(c *Comm) error {
			for round := 0; round < 3; round++ {
				for i := 0; i < n; i++ {
					out := make([]byte, 100)
					if _, err := c.Recv(out, -1, TypeBytes, 0, i); err != nil {
						return err
					}
					if !bytes.Equal(out, pattern(100, byte(i))) {
						return fmt.Errorf("round %d tag %d corrupted", round, i)
					}
				}
			}
			return nil
		})
}
