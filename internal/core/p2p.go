package core

import (
	"errors"
	"fmt"
	"time"

	"mpicd/internal/ucp"
)

// Status describes a completed receive.
type Status struct {
	// Source is the sending rank within the communicator.
	Source int
	// Tag is the matched user tag.
	Tag int
	// Bytes is the number of message payload bytes received.
	Bytes Count
	// Aux is the sender's auxiliary word (the packed-part length for
	// custom datatypes).
	Aux int64
}

// GetCount returns the number of dt elements in the received message
// (MPI_Get_count). For custom datatypes element counts are handler-defined
// and -1 is returned.
func (s Status) GetCount(dt *Datatype) Count {
	es := dt.elemSize()
	if es <= 0 {
		return -1
	}
	if s.Bytes%es != 0 {
		return -1
	}
	return s.Bytes / es
}

// Request is a pending nonblocking operation.
type Request struct {
	r    *ucp.Request
	comm *Comm
}

// Wait blocks until completion and returns the receive status (zero Status
// for sends).
func (r *Request) Wait() (Status, error) {
	err := r.r.Wait()
	return r.status(), err
}

// WaitTimeout blocks until completion or until d elapses, returning
// ErrTimeout in the latter case. The operation is not canceled; a late
// completion can still be observed with Test or Wait.
func (r *Request) WaitTimeout(d time.Duration) (Status, error) {
	err := r.r.WaitTimeout(d)
	if errors.Is(err, ucp.ErrTimeout) {
		return Status{}, err
	}
	return r.status(), err
}

// Test reports completion without blocking.
func (r *Request) Test() (bool, Status, error) {
	done, err := r.r.Test()
	if !done {
		return false, Status{}, nil
	}
	return true, r.status(), err
}

func (r *Request) status() Status {
	from, tag, n := r.r.Status()
	src, utag := decodeTag(tag)
	if from < 0 {
		src = -1
	}
	return Status{Source: src, Tag: utag, Bytes: n, Aux: r.r.Aux()}
}

// Cancel removes a posted receive that has not matched yet, reporting
// whether cancellation won the race with an incoming message (MPI_Cancel
// for receives). Canceling a send or an already-matched receive returns
// false; such requests must still be waited.
func (r *Request) Cancel() bool {
	return r.comm.w.CancelRecv(r.r)
}

// WaitAll waits for every request, returning the first error. After a
// failure the remaining requests are disposed of rather than waited
// blindly — a batch partner may be dead, and without a deadline its
// receives would never complete: unmatched receives are canceled,
// everything else is drained (the SendRecv error discipline applied to
// batches).
func WaitAll(reqs ...*Request) error {
	for i, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil {
			drainRequests(reqs[i+1:])
			return err
		}
	}
	return nil
}

// Isend starts a nonblocking send of count elements of dt at buf to (dst,
// tag).
func (c *Comm) Isend(buf any, count Count, dt *Datatype, dst, tag int) (*Request, error) {
	if err := c.checkRevoked(); err != nil {
		return nil, err
	}
	fdst, err := c.checkDst(dst)
	if err != nil {
		return nil, err
	}
	if tag < 0 || tag > MaxTag {
		return nil, fmt.Errorf("core: tag %d out of range [0,%d]", tag, MaxTag)
	}
	r, err := c.w.Send(fdst, c.sendTag(tag), dt.transport(), buf, count, 0, ucp.ProtoAuto)
	if err != nil {
		return nil, err
	}
	return &Request{r: r, comm: c}, nil
}

// Send is the blocking form of Isend.
func (c *Comm) Send(buf any, count Count, dt *Datatype, dst, tag int) error {
	r, err := c.Isend(buf, count, dt, dst, tag)
	if err != nil {
		return err
	}
	_, err = r.Wait()
	return err
}

// Irecv posts a nonblocking receive of up to count elements of dt into buf
// from (src, tag); src may be AnySource and tag AnyTag.
func (c *Comm) Irecv(buf any, count Count, dt *Datatype, src, tag int) (*Request, error) {
	if err := c.checkRevoked(); err != nil {
		return nil, err
	}
	from, t, mask, err := c.recvMatch(src, tag)
	if err != nil {
		return nil, err
	}
	r, err := c.w.Recv(from, t, mask, dt.transport(), buf, count)
	if err != nil {
		return nil, err
	}
	return &Request{r: r, comm: c}, nil
}

// Recv is the blocking form of Irecv.
func (c *Comm) Recv(buf any, count Count, dt *Datatype, src, tag int) (Status, error) {
	r, err := c.Irecv(buf, count, dt, src, tag)
	if err != nil {
		return Status{}, err
	}
	return r.Wait()
}

// SendRecv performs a combined send and receive (MPI_Sendrecv). Every
// error path disposes of the posted receive — canceling it if it has not
// matched, draining it otherwise — so no failed SendRecv leaves a pending
// operation referencing recvBuf behind.
func (c *Comm) SendRecv(sendBuf any, sendCount Count, sendDT *Datatype, dst, sendTag int,
	recvBuf any, recvCount Count, recvDT *Datatype, src, recvTag int) (Status, error) {
	rr, err := c.Irecv(recvBuf, recvCount, recvDT, src, recvTag)
	if err != nil {
		return Status{}, err
	}
	discardRecv := func() {
		if !rr.Cancel() {
			_, _ = rr.Wait()
		}
	}
	sr, err := c.Isend(sendBuf, sendCount, sendDT, dst, sendTag)
	if err != nil {
		discardRecv()
		return Status{}, err
	}
	if _, err := sr.Wait(); err != nil {
		discardRecv()
		return Status{}, err
	}
	return rr.Wait()
}

// Message is a claimed matched message (MPI_Mprobe result).
type Message struct {
	Status
	m    *ucp.Message
	comm *Comm
}

func (c *Comm) probeStatus(m *ucp.Message) Status {
	src, utag := decodeTag(m.Tag)
	return Status{Source: src, Tag: utag, Bytes: m.Total, Aux: m.Aux0}
}

// Probe blocks until a message matching (src, tag) is available and
// returns its status without consuming it (MPI_Probe).
func (c *Comm) Probe(src, tag int) (Status, error) {
	if err := c.checkRevoked(); err != nil {
		return Status{}, err
	}
	from, t, mask, err := c.recvMatch(src, tag)
	if err != nil {
		return Status{}, err
	}
	m, err := c.w.Probe(from, t, mask, true)
	if err != nil {
		return Status{}, err
	}
	return c.probeStatus(m), nil
}

// Iprobe is the nonblocking Probe; ok reports whether a message matched.
func (c *Comm) Iprobe(src, tag int) (Status, bool, error) {
	if err := c.checkRevoked(); err != nil {
		return Status{}, false, err
	}
	from, t, mask, err := c.recvMatch(src, tag)
	if err != nil {
		return Status{}, false, err
	}
	m, err := c.w.Probe(from, t, mask, false)
	if err != nil || m == nil {
		return Status{}, false, err
	}
	return c.probeStatus(m), true, nil
}

// Mprobe blocks until a matching message is available and claims it for a
// later MRecv (MPI_Mprobe). This is the pattern Python bindings use to
// size receive allocations for serialized objects.
func (c *Comm) Mprobe(src, tag int) (*Message, error) {
	if err := c.checkRevoked(); err != nil {
		return nil, err
	}
	from, t, mask, err := c.recvMatch(src, tag)
	if err != nil {
		return nil, err
	}
	m, err := c.w.Mprobe(from, t, mask, true)
	if err != nil {
		return nil, err
	}
	return &Message{Status: c.probeStatus(m), m: m, comm: c}, nil
}

// Improbe is the nonblocking Mprobe.
func (c *Comm) Improbe(src, tag int) (*Message, bool, error) {
	if err := c.checkRevoked(); err != nil {
		return nil, false, err
	}
	from, t, mask, err := c.recvMatch(src, tag)
	if err != nil {
		return nil, false, err
	}
	m, err := c.w.Mprobe(from, t, mask, false)
	if err != nil || m == nil {
		return nil, false, err
	}
	return &Message{Status: c.probeStatus(m), m: m, comm: c}, true, nil
}

// MRecv receives a message claimed by Mprobe (MPI_Mrecv).
func (c *Comm) MRecv(m *Message, buf any, count Count, dt *Datatype) (Status, error) {
	r, err := c.w.MRecv(m.m, dt.transport(), buf, count)
	if err != nil {
		return Status{}, err
	}
	req := &Request{r: r, comm: c}
	return req.Wait()
}
