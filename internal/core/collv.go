package core

import (
	"fmt"
	"reflect"

	"mpicd/internal/ddt"
)

// Variable-count collectives and request-set helpers.

// WaitAny blocks until one of the requests completes and returns its
// index and status (MPI_Waitany). Nil entries are ignored; it returns -1
// when every entry is nil.
func WaitAny(reqs ...*Request) (int, Status, error) {
	cases := make([]reflect.SelectCase, 0, len(reqs))
	idx := make([]int, 0, len(reqs))
	for i, r := range reqs {
		if r == nil {
			continue
		}
		cases = append(cases, reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(r.r.Done())})
		idx = append(idx, i)
	}
	if len(cases) == 0 {
		return -1, Status{}, nil
	}
	chosen, _, _ := reflect.Select(cases)
	i := idx[chosen]
	_, st, err := reqs[i].Test()
	return i, st, err
}

// checkSlices validates a counts/displs pair against a buffer, returning
// the high-water extent.
func checkSlices(what string, buf []byte, counts, displs []Count, n int) (Count, error) {
	if len(counts) != n || len(displs) != n {
		return 0, fmt.Errorf("%w: %s needs %d counts/displs", ErrInvalidComm, what, n)
	}
	total := Count(0)
	for r := 0; r < n; r++ {
		if counts[r] < 0 || displs[r] < 0 {
			return 0, fmt.Errorf("%w: %s negative count/displ for rank %d", ErrInvalidComm, what, r)
		}
		if end := displs[r] + counts[r]; end > total {
			total = end
		}
	}
	if err := checkLen(what, buf, total); err != nil {
		return 0, err
	}
	return total, nil
}

// Gatherv collects counts[i] bytes from rank i into recvBuf at offsets
// displs[i] at root (MPI_Gatherv over the byte type; derived types are
// packed by the caller).
func (c *Comm) Gatherv(sendBuf []byte, sendCount Count, recvBuf []byte, counts, displs []Count, root int) error {
	if err := c.checkRevoked(); err != nil {
		return err
	}
	epoch := c.nextEpoch()
	n := c.Size()
	if root < 0 || root >= n {
		return fmt.Errorf("%w: gatherv root %d", ErrInvalidComm, root)
	}
	if err := checkLen("gatherv send", sendBuf, sendCount); err != nil {
		return err
	}
	return c.classifyCommErr(c.gatherv(sendBuf, sendCount, recvBuf, counts, displs, root, epoch))
}

func (c *Comm) gatherv(sendBuf []byte, sendCount Count, recvBuf []byte, counts, displs []Count, root int, epoch uint64) error {
	n := c.Size()
	if c.rank != root {
		return c.collSend(sendBuf[:sendCount], sendCount, TypeBytes, root, opGatherv, epoch, 0)
	}
	if _, err := checkSlices("gatherv receive", recvBuf, counts, displs, n); err != nil {
		return err
	}
	reqs := make([]*Request, 0, n-1)
	for r := 0; r < n; r++ {
		dst := recvBuf[displs[r] : displs[r]+counts[r]]
		if r == root {
			copy(dst, sendBuf[:sendCount])
			continue
		}
		req, err := c.collIrecv(dst, counts[r], TypeBytes, r, opGatherv, epoch, 0)
		if err != nil {
			drainRequests(reqs)
			return err
		}
		reqs = append(reqs, req)
	}
	return WaitAll(reqs...)
}

// Scatterv distributes counts[i] bytes at displs[i] of sendBuf to rank i
// (MPI_Scatterv over the byte type).
func (c *Comm) Scatterv(sendBuf []byte, counts, displs []Count, recvBuf []byte, recvCount Count, root int) error {
	if err := c.checkRevoked(); err != nil {
		return err
	}
	epoch := c.nextEpoch()
	n := c.Size()
	if root < 0 || root >= n {
		return fmt.Errorf("%w: scatterv root %d", ErrInvalidComm, root)
	}
	if err := checkLen("scatterv receive", recvBuf, recvCount); err != nil {
		return err
	}
	if c.rank != root {
		return c.classifyCommErr(c.collRecv(recvBuf[:recvCount], recvCount, TypeBytes, root, opScatterv, epoch, 0))
	}
	if _, err := checkSlices("scatterv send", sendBuf, counts, displs, n); err != nil {
		return err
	}
	reqs := make([]*Request, 0, n-1)
	for r := 0; r < n; r++ {
		part := sendBuf[displs[r] : displs[r]+counts[r]]
		if r == root {
			copy(recvBuf[:recvCount], part)
			continue
		}
		req, err := c.collIsend(part, counts[r], TypeBytes, r, opScatterv, epoch, 0)
		if err != nil {
			drainRequests(reqs)
			return c.classifyCommErr(err)
		}
		reqs = append(reqs, req)
	}
	return c.classifyCommErr(WaitAll(reqs...))
}

// Allgatherv gathers variable contributions everywhere: counts/displs
// must be identical on all ranks.
func (c *Comm) Allgatherv(sendBuf []byte, sendCount Count, recvBuf []byte, counts, displs []Count) error {
	if err := c.checkRevoked(); err != nil {
		return err
	}
	epoch := c.nextEpoch()
	if err := checkLen("allgatherv send", sendBuf, sendCount); err != nil {
		return err
	}
	total, err := checkSlices("allgatherv receive", recvBuf, counts, displs, c.Size())
	if err != nil {
		return err
	}
	if err := c.gatherv(sendBuf, sendCount, recvBuf, counts, displs, 0, epoch); err != nil {
		return c.classifyCommErr(err)
	}
	return c.classifyCommErr(c.bcast(recvBuf[:total], total, TypeBytes, 0, epoch, nil))
}

// SendType ships a derived datatype description to another rank
// (datatype marshalling in the sense of Kimpe et al., which the paper
// cites): the receiver reconstructs a transfer-equivalent type with
// RecvType and can then receive buffers in the sender's layout.
func (c *Comm) SendType(t *ddt.Type, dst, tag int) error {
	return c.Send(t.Marshal(), -1, TypeBytes, dst, tag)
}

// RecvType receives a datatype description sent with SendType.
func (c *Comm) RecvType(src, tag int) (*ddt.Type, error) {
	m, err := c.Mprobe(src, tag)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, m.Bytes)
	if _, err := c.MRecv(m, buf, -1, TypeBytes); err != nil {
		return nil, err
	}
	return ddt.Unmarshal(buf)
}
