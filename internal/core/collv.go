package core

import (
	"fmt"
	"reflect"

	"mpicd/internal/ddt"
)

// Variable-count collectives and request-set helpers.

// WaitAny blocks until one of the requests completes and returns its
// index and status (MPI_Waitany). Nil entries are ignored; it returns -1
// when every entry is nil.
func WaitAny(reqs ...*Request) (int, Status, error) {
	cases := make([]reflect.SelectCase, 0, len(reqs))
	idx := make([]int, 0, len(reqs))
	for i, r := range reqs {
		if r == nil {
			continue
		}
		cases = append(cases, reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(r.r.Done())})
		idx = append(idx, i)
	}
	if len(cases) == 0 {
		return -1, Status{}, nil
	}
	chosen, _, _ := reflect.Select(cases)
	i := idx[chosen]
	_, st, err := reqs[i].Test()
	return i, st, err
}

// Gatherv collects counts[i] bytes from rank i into recvBuf at offsets
// displs[i] at root (MPI_Gatherv over the byte type; derived types are
// packed by the caller).
func (c *Comm) Gatherv(sendBuf []byte, sendCount Count, recvBuf []byte, counts, displs []Count, root int) error {
	n := c.Size()
	if root < 0 || root >= n {
		return fmt.Errorf("%w: gatherv root %d", ErrInvalidComm, root)
	}
	if c.rank != root {
		return c.Send(sendBuf[:sendCount], sendCount, TypeBytes, root, collTagBase+6)
	}
	if len(counts) != n || len(displs) != n {
		return fmt.Errorf("%w: gatherv needs %d counts/displs", ErrInvalidComm, n)
	}
	reqs := make([]*Request, 0, n-1)
	for r := 0; r < n; r++ {
		dst := recvBuf[displs[r] : displs[r]+counts[r]]
		if r == root {
			copy(dst, sendBuf[:sendCount])
			continue
		}
		req, err := c.Irecv(dst, counts[r], TypeBytes, r, collTagBase+6)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return WaitAll(reqs...)
}

// Scatterv distributes counts[i] bytes at displs[i] of sendBuf to rank i
// (MPI_Scatterv over the byte type).
func (c *Comm) Scatterv(sendBuf []byte, counts, displs []Count, recvBuf []byte, recvCount Count, root int) error {
	n := c.Size()
	if root < 0 || root >= n {
		return fmt.Errorf("%w: scatterv root %d", ErrInvalidComm, root)
	}
	if c.rank != root {
		_, err := c.Recv(recvBuf[:recvCount], recvCount, TypeBytes, root, collTagBase+7)
		return err
	}
	if len(counts) != n || len(displs) != n {
		return fmt.Errorf("%w: scatterv needs %d counts/displs", ErrInvalidComm, n)
	}
	reqs := make([]*Request, 0, n-1)
	for r := 0; r < n; r++ {
		part := sendBuf[displs[r] : displs[r]+counts[r]]
		if r == root {
			copy(recvBuf[:recvCount], part)
			continue
		}
		req, err := c.Isend(part, counts[r], TypeBytes, r, collTagBase+7)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return WaitAll(reqs...)
}

// Allgatherv gathers variable contributions everywhere: counts/displs
// must be identical on all ranks.
func (c *Comm) Allgatherv(sendBuf []byte, sendCount Count, recvBuf []byte, counts, displs []Count) error {
	if err := c.Gatherv(sendBuf, sendCount, recvBuf, counts, displs, 0); err != nil {
		return err
	}
	total := Count(0)
	for i, cnt := range counts {
		if end := displs[i] + cnt; end > total {
			total = end
		}
	}
	return c.Bcast(recvBuf[:total], total, TypeBytes, 0)
}

// SendType ships a derived datatype description to another rank
// (datatype marshalling in the sense of Kimpe et al., which the paper
// cites): the receiver reconstructs a transfer-equivalent type with
// RecvType and can then receive buffers in the sender's layout.
func (c *Comm) SendType(t *ddt.Type, dst, tag int) error {
	return c.Send(t.Marshal(), -1, TypeBytes, dst, tag)
}

// RecvType receives a datatype description sent with SendType.
func (c *Comm) RecvType(src, tag int) (*ddt.Type, error) {
	m, err := c.Mprobe(src, tag)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, m.Bytes)
	if _, err := c.MRecv(m, buf, -1, TypeBytes); err != nil {
		return nil, err
	}
	return ddt.Unmarshal(buf)
}
