package core_test

import (
	"testing"

	"mpicd/internal/core"
	"mpicd/internal/ddt"
)

// Allocation guards for the persistent-collective steady state. The
// whole point of Init/Start/Wait over calling the one-shot collective in
// a loop is that per-iteration garbage disappears: the worker goroutine,
// schedule scratch and signalling channels are all created at init.

// TestPersistentAllreduceZeroAllocSteadyState pins the persistent
// layer's own per-iteration cost to literally zero. On a single-rank
// world the schedule completes locally, so every allocation counted here
// would come from the persistent machinery itself — epoch reservation,
// channel signalling, scratch reuse. Zero is a hard contract, not a
// ceiling; if this trips, something in Start/Wait/runOnce started
// allocating.
func TestPersistentAllreduceZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	sys := core.NewSystem(1, core.Options{})
	defer sys.Close()
	c := sys.Comm(0)

	const count = 1024
	send := make([]byte, 8*count)
	recv := make([]byte, 8*count)
	p, err := c.AllreduceInit(send, recv, count, core.FromDDT(ddt.Int64), core.OpSumInt64)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Free()

	avg := testing.AllocsPerRun(200, func() {
		if err := p.Start(); err != nil {
			t.Error(err)
		}
		if err := p.Wait(); err != nil {
			t.Error(err)
		}
	})
	if avg != 0 {
		t.Fatalf("persistent allreduce steady state allocates %.2f/iter, want 0", avg)
	}
}

// persistentPairAllocCeiling bounds a full 2-rank persistent Allreduce
// iteration (both ranks, whole process — AllocsPerRun reads global
// counts). The remaining allocations are the transport's per-message
// cost (requests, completion channels, pooled-frame bookkeeping), not
// the persistent layer's; the ceiling has ~30% headroom over the
// measured steady state so transport regressions surface without the
// guard flaking.
const persistentPairAllocCeiling = 50

func TestPersistentAllreducePairAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	sys := core.NewSystem(2, core.Options{})
	defer sys.Close()

	const count = 256
	const iters = 100
	mk := func(c *core.Comm) *core.PersistentColl {
		send := make([]byte, 8*count)
		recv := make([]byte, 8*count)
		p, err := c.AllreduceInit(send, recv, count, core.FromDDT(ddt.Int64), core.OpSumInt64)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	done := make(chan error, 1)
	go func() {
		p := mk(sys.Comm(1))
		defer p.Free()
		// AllocsPerRun invokes its body iters+1 times (one warm-up run).
		for i := 0; i < iters+1; i++ {
			if err := p.Start(); err != nil {
				done <- err
				return
			}
			if err := p.Wait(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	p := mk(sys.Comm(0))
	defer p.Free()
	avg := testing.AllocsPerRun(iters, func() {
		if err := p.Start(); err != nil {
			t.Error(err)
		}
		if err := p.Wait(); err != nil {
			t.Error(err)
		}
	})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if avg > persistentPairAllocCeiling {
		t.Fatalf("2-rank persistent allreduce allocates %.1f/iter, ceiling %d", avg, persistentPairAllocCeiling)
	}
	t.Logf("2-rank persistent allreduce: %.1f allocs/iter (ceiling %d)", avg, persistentPairAllocCeiling)
}
