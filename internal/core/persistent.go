package core

import (
	"errors"
	"fmt"

	"mpicd/internal/ucp"
)

// Persistent requests (MPI_Send_init / MPI_Recv_init / MPI_Start): the
// argument binding is fixed once and the operation restarted per
// iteration — the natural fit for the repeated halo exchanges the
// DDTBench kernels model.

// PersistentRequest is a reusable operation binding.
type PersistentRequest struct {
	comm   *Comm
	isSend bool

	buf   any
	count Count
	dt    *Datatype

	// send side
	dst, stag int
	// recv side
	src, rtag int

	active *Request
}

// SendInit creates a persistent send binding (MPI_Send_init).
func (c *Comm) SendInit(buf any, count Count, dt *Datatype, dst, tag int) (*PersistentRequest, error) {
	if _, err := c.checkDst(dst); err != nil {
		return nil, err
	}
	if tag < 0 || tag > MaxTag {
		return nil, fmt.Errorf("core: tag %d out of range [0,%d]", tag, MaxTag)
	}
	return &PersistentRequest{comm: c, isSend: true, buf: buf, count: count, dt: dt, dst: dst, stag: tag}, nil
}

// RecvInit creates a persistent receive binding (MPI_Recv_init).
func (c *Comm) RecvInit(buf any, count Count, dt *Datatype, src, tag int) (*PersistentRequest, error) {
	if _, _, _, err := c.recvMatch(src, tag); err != nil {
		return nil, err
	}
	return &PersistentRequest{comm: c, buf: buf, count: count, dt: dt, src: src, rtag: tag}, nil
}

// ErrActive reports a Start on an already-started persistent request.
var ErrActive = errors.New("core: persistent request already active")

// Start launches one instance of the bound operation (MPI_Start). A
// Start that fails (revoked communicator, dead destination) leaves the
// request inactive: the previous instance's completed state is
// discarded so a later Wait cannot mistake it for this iteration's
// result.
func (p *PersistentRequest) Start() error {
	if p.active != nil {
		if done, _, _ := p.active.Test(); !done {
			return ErrActive
		}
		p.active = nil
	}
	var (
		r   *Request
		err error
	)
	if p.isSend {
		r, err = p.comm.Isend(p.buf, p.count, p.dt, p.dst, p.stag)
	} else {
		r, err = p.comm.Irecv(p.buf, p.count, p.dt, p.src, p.rtag)
	}
	if err != nil {
		return err
	}
	p.active = r
	return nil
}

// Wait blocks for the current instance (MPI_Wait on a started persistent
// request). The binding stays valid for another Start.
func (p *PersistentRequest) Wait() (Status, error) {
	if p.active == nil {
		return Status{}, errors.New("core: persistent request not started")
	}
	return p.active.Wait()
}

// Test polls the current instance.
func (p *PersistentRequest) Test() (bool, Status, error) {
	if p.active == nil {
		return false, Status{}, errors.New("core: persistent request not started")
	}
	return p.active.Test()
}

// StartAll starts a set of persistent requests (MPI_Startall).
func StartAll(ps ...*PersistentRequest) error {
	for _, p := range ps {
		if p == nil {
			continue
		}
		if err := p.Start(); err != nil {
			return err
		}
	}
	return nil
}

// WaitAllPersistent waits for every started instance. Inactive requests
// — never started, or whose last Start failed — are skipped, matching
// MPI_Waitall's treatment of inactive persistent requests: after a
// partial StartAll failure the started prefix still completes and the
// caller sees its real errors, not a "not started" complaint about the
// requests the failure prevented from launching.
func WaitAllPersistent(ps ...*PersistentRequest) error {
	var first error
	for _, p := range ps {
		if p == nil || p.active == nil {
			continue
		}
		if _, err := p.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

var _ = ucp.ProtoAuto // keep the import anchored for future tuning hooks
