package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// Persistent-request fault coverage: the restartable bindings must hold
// up under the lossy adversary (every restarted instance delivers
// exactly once) and fail with the process-failure taxonomy when their
// bound peer dies.

// TestPersistentFaultMatrix drives a persistent ping stream through the
// lossy world at eager and rendezvous sizes, for the CI-pinned seeds.
func TestPersistentFaultMatrix(t *testing.T) {
	leakChecked(t)
	for _, seed := range faultMatrixSeeds {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			for _, size := range []int{2048, 64 * 1024} { // eager and rendezvous
				size := size
				t.Run(fmt.Sprint(size), func(t *testing.T) {
					const iters = 6
					run2(t, faultOptions(seed),
						func(c *Comm) error {
							buf := make([]byte, size)
							ps, err := c.SendInit(buf, -1, TypeBytes, 1, 3)
							if err != nil {
								return err
							}
							for i := 0; i < iters; i++ {
								copy(buf, pattern(size, byte(i)))
								if err := ps.Start(); err != nil {
									return err
								}
								if _, err := ps.Wait(); err != nil {
									return err
								}
							}
							return nil
						},
						func(c *Comm) error {
							buf := make([]byte, size)
							pr, err := c.RecvInit(buf, -1, TypeBytes, 0, 3)
							if err != nil {
								return err
							}
							for i := 0; i < iters; i++ {
								if err := pr.Start(); err != nil {
									return err
								}
								st, err := pr.Wait()
								if err != nil {
									return err
								}
								if st.Bytes != Count(size) || !bytes.Equal(buf, pattern(size, byte(i))) {
									return fmt.Errorf("instance %d corrupted", i)
								}
							}
							return nil
						})
				})
			}
		})
	}
}

// TestPersistentKillRank: a persistent binding whose peer dies. The
// blocked receive instance fails with ErrProcFailed via the detector
// (no ReqTimeout configured), a restarted send to the dead rank is
// refused fast, and after revocation Start reports ErrRevoked.
func TestPersistentKillRank(t *testing.T) {
	leakChecked(t)
	const n = 3
	opt, fns := killableWorld(n)
	err := Run(n, opt, func(c *Comm) error {
		switch c.Rank() {
		case 2: // victim: serves one instance, then dies
			buf := make([]byte, 1024)
			pr, err := c.RecvInit(buf, -1, TypeBytes, 0, 5)
			if err != nil {
				return err
			}
			if err := pr.Start(); err != nil {
				return err
			}
			if _, err := pr.Wait(); err != nil {
				return err
			}
			fns[2].Kill()
			return nil
		case 0:
			sbuf := make([]byte, 1024)
			ps, err := c.SendInit(sbuf, -1, TypeBytes, 2, 5)
			if err != nil {
				return err
			}
			if err := ps.Start(); err != nil {
				return err
			}
			if _, err := ps.Wait(); err != nil {
				return err
			}
			// The victim is now dead. A persistent receive bound to it
			// blocks until failure notification, not forever.
			rbuf := make([]byte, 1024)
			pr, err := c.RecvInit(rbuf, -1, TypeBytes, 2, 6)
			if err != nil {
				return err
			}
			if err := pr.Start(); err != nil {
				if errors.Is(err, ErrProcFailed) {
					return c.revokeAndCheck(ps)
				}
				return err
			}
			if _, err := pr.Wait(); !errors.Is(err, ErrProcFailed) {
				return fmt.Errorf("persistent recv from killed rank = %v, want ErrProcFailed", err)
			}
			// Restarting the send binding toward the dead rank fails fast.
			if err := ps.Start(); !errors.Is(err, ErrProcFailed) {
				return fmt.Errorf("persistent send restart to killed rank = %v, want ErrProcFailed", err)
			}
			return c.revokeAndCheck(ps)
		default:
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// revokeAndCheck finishes the kill scenario: after revocation every
// persistent restart on the communicator reports ErrRevoked.
func (c *Comm) revokeAndCheck(ps *PersistentRequest) error {
	if err := c.Revoke(); err != nil {
		return err
	}
	if err := ps.Start(); !errors.Is(err, ErrRevoked) {
		return fmt.Errorf("persistent restart on revoked comm = %v, want ErrRevoked", err)
	}
	return nil
}
