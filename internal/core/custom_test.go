package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"mpicd/internal/fabric"
	"mpicd/internal/layout"
	"mpicd/internal/ucp"
)

// recVec is a struct-with-vector test type: three scalar fields that need
// packing plus a heap buffer sent as a memory region (the paper's
// struct-vec with a true dynamic vector, which derived datatypes cannot
// express).
type recVec struct {
	A, B int32
	D    float64
	Data []byte
}

const recVecPacked = 16 // A, B, D packed without the 4-byte gap

// recVecHandler implements CustomHandler for *recVec (count == 1) and
// []*recVec (count > 1).
type recVecHandler struct{}

func recVecs(buf any, count Count) ([]*recVec, error) {
	switch v := buf.(type) {
	case *recVec:
		if count != 1 {
			return nil, fmt.Errorf("count %d for single record", count)
		}
		return []*recVec{v}, nil
	case []*recVec:
		if count > int64(len(v)) {
			return nil, fmt.Errorf("count %d exceeds %d records", count, len(v))
		}
		return v[:count], nil
	default:
		return nil, fmt.Errorf("recVecHandler: bad buffer %T", buf)
	}
}

func (recVecHandler) State(buf any, count Count) (any, error) {
	return recVecs(buf, count)
}

func (recVecHandler) FreeState(any) error { return nil }

func (recVecHandler) PackedSize(state, _ any, count Count) (Count, error) {
	return count * recVecPacked, nil
}

func (recVecHandler) Pack(state, _ any, count, offset Count, dst []byte) (Count, error) {
	recs := state.([]*recVec)
	var used Count
	for used < Count(len(dst)) {
		at := offset + used
		i := at / recVecPacked
		if i >= count {
			break
		}
		within := at % recVecPacked
		var elem [recVecPacked]byte
		layout.PutI32(elem[:], 0, recs[i].A)
		layout.PutI32(elem[:], 4, recs[i].B)
		layout.PutF64(elem[:], 8, recs[i].D)
		n := copy(dst[used:], elem[within:])
		used += Count(n)
	}
	return used, nil
}

func (recVecHandler) Unpack(state, _ any, count, offset Count, src []byte) error {
	recs := state.([]*recVec)
	// Fragments may split fields; reassemble via a per-record staging
	// buffer held in the records themselves (whole-element writes only in
	// this test: offsets are element-aligned when fragments are big).
	for len(src) > 0 {
		i := offset / recVecPacked
		within := offset % recVecPacked
		var elem [recVecPacked]byte
		layout.PutI32(elem[:], 0, recs[i].A)
		layout.PutI32(elem[:], 4, recs[i].B)
		layout.PutF64(elem[:], 8, recs[i].D)
		n := copy(elem[within:], src)
		recs[i].A = layout.I32(elem[:], 0)
		recs[i].B = layout.I32(elem[:], 4)
		recs[i].D = layout.F64(elem[:], 8)
		src = src[n:]
		offset += Count(n)
	}
	return nil
}

func (recVecHandler) RegionCount(state, _ any, count Count) (Count, error) {
	return count, nil
}

func (recVecHandler) Regions(state, _ any, count Count, regions [][]byte) error {
	recs := state.([]*recVec)
	for i := Count(0); i < count; i++ {
		regions[i] = recs[i].Data
	}
	return nil
}

// dvHeader is the packed part of the dynamic double-vector handler:
// [count][len 0][len 1]... as int64s.
func dvHeaderSize(n int) Count { return Count(8 * (n + 1)) }

// dvHandler serializes [][]byte (the paper's Vec<Vec<i32>> double-vector):
// packed part carries the lengths, regions carry the subvector bytes. The
// receive side learns the shape from the unpacked header, so the type
// requires in-order delivery — the exact scenario the paper's inorder flag
// exists for.
type dvHandler struct{}

type dvState struct {
	// send side
	vecs [][]byte
	// receive side
	out    *[][]byte
	header []byte // staged header bytes (receive)
	got    Count
}

func (dvHandler) State(buf any, count Count) (any, error) {
	switch v := buf.(type) {
	case [][]byte:
		return &dvState{vecs: v}, nil
	case *[][]byte:
		return &dvState{out: v}, nil
	default:
		return nil, fmt.Errorf("dvHandler: bad buffer %T", buf)
	}
}

func (dvHandler) FreeState(any) error { return nil }

// sendVecs returns the vector list when the state can act as a send side
// (plain [][]byte buffers, or pointer buffers already materialized by a
// receive — needed when a Bcast interior rank forwards what it received).
func (s *dvState) sendVecs() ([][]byte, error) {
	if s.vecs != nil {
		return s.vecs, nil
	}
	if s.out != nil && *s.out != nil {
		return *s.out, nil
	}
	return nil, errors.New("dvHandler: buffer holds no data to pack")
}

func (dvHandler) PackedSize(state, _ any, _ Count) (Count, error) {
	vecs, err := state.(*dvState).sendVecs()
	if err != nil {
		return 0, err
	}
	return dvHeaderSize(len(vecs)), nil
}

func (dvHandler) Pack(state, _ any, _, offset Count, dst []byte) (Count, error) {
	vecs, err := state.(*dvState).sendVecs()
	if err != nil {
		return 0, err
	}
	hdr := make([]byte, dvHeaderSize(len(vecs)))
	layout.PutI64(hdr, 0, int64(len(vecs)))
	for i, v := range vecs {
		layout.PutI64(hdr, 8*(i+1), int64(len(v)))
	}
	return Count(copy(dst, hdr[offset:])), nil
}

func (dvHandler) Unpack(state, _ any, _, offset Count, src []byte) error {
	s := state.(*dvState)
	if s.header == nil {
		s.header = make([]byte, 8)
	}
	// Grow once the count is known.
	copyAt := func(off Count, b []byte) {
		copy(s.header[off:], b)
	}
	if offset < 8 {
		n := copy(s.header[offset:8], src)
		s.got += Count(n)
		src = src[n:]
		offset += Count(n)
	}
	if s.got >= 8 && len(s.header) == 8 {
		n := int(layout.I64(s.header, 0))
		grown := make([]byte, dvHeaderSize(n))
		copy(grown, s.header)
		s.header = grown
	}
	if len(src) > 0 {
		copyAt(offset, src)
		s.got += Count(len(src))
	}
	// Materialize output vectors when the header is complete.
	if len(s.header) > 8 && s.got == Count(len(s.header)) {
		n := int(layout.I64(s.header, 0))
		vecs := make([][]byte, n)
		for i := 0; i < n; i++ {
			vecs[i] = make([]byte, layout.I64(s.header, 8*(i+1)))
		}
		*s.out = vecs
	}
	return nil
}

func (dvHandler) RegionCount(state, _ any, _ Count) (Count, error) {
	s := state.(*dvState)
	if s.vecs != nil {
		return Count(len(s.vecs)), nil
	}
	return Count(len(*s.out)), nil
}

func (dvHandler) Regions(state, _ any, _ Count, regions [][]byte) error {
	s := state.(*dvState)
	vecs := s.vecs
	if vecs == nil {
		vecs = *s.out
	}
	for i := range regions {
		regions[i] = vecs[i]
	}
	return nil
}

func TestCustomStructVecRoundtrip(t *testing.T) {
	dt := TypeCreateCustom(recVecHandler{}, WithName("rec-vec"))
	for _, dataLen := range []int{0, 100, 100000} {
		t.Run(fmt.Sprint(dataLen), func(t *testing.T) {
			send := &recVec{A: 1, B: -2, D: 3.25, Data: pattern(dataLen, 9)}
			run2(t, Options{},
				func(c *Comm) error { return c.Send(send, 1, dt, 1, 1) },
				func(c *Comm) error {
					recv := &recVec{Data: make([]byte, dataLen)}
					st, err := c.Recv(recv, 1, dt, 0, 1)
					if err != nil {
						return err
					}
					if st.Aux != recVecPacked {
						return fmt.Errorf("aux (packed len) = %d", st.Aux)
					}
					if recv.A != 1 || recv.B != -2 || recv.D != 3.25 {
						return fmt.Errorf("fields = %+v", recv)
					}
					if !bytes.Equal(recv.Data, send.Data) {
						return errors.New("region data mismatch")
					}
					return nil
				})
		})
	}
}

func TestCustomStructVecMultiCount(t *testing.T) {
	dt := TypeCreateCustom(recVecHandler{})
	const n = 20
	send := make([]*recVec, n)
	for i := range send {
		send[i] = &recVec{A: int32(i), B: int32(-i), D: float64(i) / 2, Data: pattern(512, byte(i))}
	}
	run2(t, Options{},
		func(c *Comm) error { return c.Send(send, n, dt, 1, 1) },
		func(c *Comm) error {
			recv := make([]*recVec, n)
			for i := range recv {
				recv[i] = &recVec{Data: make([]byte, 512)}
			}
			if _, err := c.Recv(recv, n, dt, 0, 1); err != nil {
				return err
			}
			for i := range recv {
				if recv[i].A != int32(i) || recv[i].B != int32(-i) || recv[i].D != float64(i)/2 {
					return fmt.Errorf("record %d fields = %+v", i, recv[i])
				}
				if !bytes.Equal(recv[i].Data, send[i].Data) {
					return fmt.Errorf("record %d data mismatch", i)
				}
			}
			return nil
		})
}

func TestCustomDynamicDoubleVec(t *testing.T) {
	dt := TypeCreateCustom(dvHandler{}, WithInOrder(), WithName("double-vec"))
	shapes := [][]int{
		{},
		{10},
		{1024, 1024, 1024},
		{1, 100000, 3, 0, 77},
	}
	for si, shape := range shapes {
		t.Run(fmt.Sprint(si), func(t *testing.T) {
			send := make([][]byte, len(shape))
			for i, n := range shape {
				send[i] = pattern(n, byte(i+1))
			}
			run2(t, Options{},
				func(c *Comm) error { return c.Send(send, 1, dt, 1, 1) },
				func(c *Comm) error {
					// Receiver does NOT know the shape: the header message
					// part carries it.
					var recv [][]byte
					if _, err := c.Recv(&recv, 1, dt, 0, 1); err != nil {
						return err
					}
					if len(recv) != len(send) {
						return fmt.Errorf("got %d subvectors, want %d", len(recv), len(send))
					}
					for i := range send {
						if !bytes.Equal(recv[i], send[i]) {
							return fmt.Errorf("subvector %d mismatch", i)
						}
					}
					return nil
				})
		})
	}
}

func TestCustomDynamicDoubleVecEagerAndSmall(t *testing.T) {
	// Tiny messages go eager; the dynamic header flow must still work.
	dt := TypeCreateCustom(dvHandler{}, WithInOrder())
	send := [][]byte{pattern(5, 1), pattern(9, 2)}
	run2(t, Options{UCP: ucp.Config{IovRndvMin: 1 << 20}},
		func(c *Comm) error { return c.Send(send, 1, dt, 1, 1) },
		func(c *Comm) error {
			var recv [][]byte
			if _, err := c.Recv(&recv, 1, dt, 0, 1); err != nil {
				return err
			}
			if len(recv) != 2 || !bytes.Equal(recv[0], send[0]) || !bytes.Equal(recv[1], send[1]) {
				return errors.New("eager dynamic mismatch")
			}
			return nil
		})
}

func TestCustomDynamicUnderOutOfOrderFabric(t *testing.T) {
	// The inorder flag must shield the handler from fabric reordering.
	dt := TypeCreateCustom(dvHandler{}, WithInOrder())
	send := make([][]byte, 64)
	for i := range send {
		send[i] = pattern(700, byte(i))
	}
	opt := Options{
		Fabric: fabric.Config{FragSize: 512, OutOfOrder: true, Seed: 99},
		UCP:    ucp.Config{FragSize: 512, IovRndvMin: 1 << 30, RndvThresh: 1 << 30},
	}
	run2(t, opt,
		func(c *Comm) error { return c.Send(send, 1, dt, 1, 1) },
		func(c *Comm) error {
			var recv [][]byte
			if _, err := c.Recv(&recv, 1, dt, 0, 1); err != nil {
				return err
			}
			for i := range send {
				if !bytes.Equal(recv[i], send[i]) {
					return fmt.Errorf("subvector %d mismatch", i)
				}
			}
			return nil
		})
}

func TestCustomUnexpectedPath(t *testing.T) {
	dt := TypeCreateCustom(dvHandler{}, WithInOrder())
	send := [][]byte{pattern(30000, 3)}
	run2(t, Options{},
		func(c *Comm) error {
			r, err := c.Isend(send, 1, dt, 1, 1)
			if err != nil {
				return err
			}
			if err := c.Send([]byte{1}, 1, TypeBytes, 1, 2); err != nil { // flush marker
				return err
			}
			_, err = r.Wait()
			return err
		},
		func(c *Comm) error {
			// Let the custom message land unexpectedly first.
			one := make([]byte, 1)
			if _, err := c.Recv(one, 1, TypeBytes, 0, 2); err != nil {
				return err
			}
			var recv [][]byte
			if _, err := c.Recv(&recv, 1, dt, 0, 1); err != nil {
				return err
			}
			if len(recv) != 1 || !bytes.Equal(recv[0], send[0]) {
				return errors.New("unexpected custom mismatch")
			}
			return nil
		})
}

// failingHandler errors from a chosen callback.
type failingHandler struct {
	recVecHandler
	failState   bool
	failQuery   bool
	failPack    bool
	failRegions bool
}

func (h failingHandler) State(buf any, count Count) (any, error) {
	if h.failState {
		return nil, errors.New("state failure")
	}
	return h.recVecHandler.State(buf, count)
}

func (h failingHandler) PackedSize(state, buf any, count Count) (Count, error) {
	if h.failQuery {
		return 0, errors.New("query failure")
	}
	return h.recVecHandler.PackedSize(state, buf, count)
}

func (h failingHandler) Pack(state, buf any, count, offset Count, dst []byte) (Count, error) {
	if h.failPack {
		return 0, errors.New("pack failure")
	}
	return h.recVecHandler.Pack(state, buf, count, offset, dst)
}

func (h failingHandler) Regions(state, buf any, count Count, regions [][]byte) error {
	if h.failRegions {
		return errors.New("regions failure")
	}
	return h.recVecHandler.Regions(state, buf, count, regions)
}

func TestCustomCallbackErrorsPropagate(t *testing.T) {
	for _, tc := range []struct {
		name string
		h    failingHandler
	}{
		{"state", failingHandler{failState: true}},
		{"query", failingHandler{failQuery: true}},
		{"regions", failingHandler{failRegions: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dt := TypeCreateCustom(tc.h)
			rec := &recVec{Data: pattern(100, 1)}
			err := Run(2, Options{}, func(c *Comm) error {
				if c.Rank() == 0 {
					if err := c.Send(rec, 1, dt, 1, 1); err == nil {
						return errors.New("send should fail")
					}
					return nil
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCustomStateFreed(t *testing.T) {
	var mu sync.Mutex
	allocs, frees := 0, 0
	h := countingHandler{onState: func() { mu.Lock(); allocs++; mu.Unlock() },
		onFree: func() { mu.Lock(); frees++; mu.Unlock() }}
	dt := TypeCreateCustom(h)
	rec := &recVec{A: 5, Data: pattern(10, 1)}
	run2(t, Options{},
		func(c *Comm) error { return c.Send(rec, 1, dt, 1, 1) },
		func(c *Comm) error {
			out := &recVec{Data: make([]byte, 10)}
			_, err := c.Recv(out, 1, dt, 0, 1)
			return err
		})
	mu.Lock()
	defer mu.Unlock()
	if allocs == 0 || allocs != frees {
		t.Fatalf("state allocs %d, frees %d", allocs, frees)
	}
}

type countingHandler struct {
	recVecHandler
	onState func()
	onFree  func()
}

func (h countingHandler) State(buf any, count Count) (any, error) {
	h.onState()
	return h.recVecHandler.State(buf, count)
}

func (h countingHandler) FreeState(state any) error {
	h.onFree()
	return h.recVecHandler.FreeState(state)
}

func TestCustomPackUnpackHelper(t *testing.T) {
	// The MPI_Pack analogue runs full serialization through the handler.
	dt := TypeCreateCustom(recVecHandler{})
	rec := &recVec{A: 7, B: 8, D: 9.5, Data: pattern(64, 2)}
	size, err := PackedSize(rec, 1, dt)
	if err != nil {
		t.Fatal(err)
	}
	if size != recVecPacked+64 {
		t.Fatalf("PackedSize = %d", size)
	}
	buf := make([]byte, size)
	if _, err := Pack(rec, 1, dt, buf); err != nil {
		t.Fatal(err)
	}
	out := &recVec{Data: make([]byte, 64)}
	if err := Unpack(buf, out, 1, dt); err != nil {
		t.Fatal(err)
	}
	if out.A != 7 || out.B != 8 || out.D != 9.5 || !bytes.Equal(out.Data, rec.Data) {
		t.Fatalf("unpacked = %+v", out)
	}
}

func TestCustomSelfSend(t *testing.T) {
	dt := TypeCreateCustom(dvHandler{}, WithInOrder())
	send := [][]byte{pattern(100, 1), pattern(20000, 2)}
	err := Run(1, Options{}, func(c *Comm) error {
		r, err := c.Isend(send, 1, dt, 0, 1)
		if err != nil {
			return err
		}
		var recv [][]byte
		if _, err := c.Recv(&recv, 1, dt, 0, 1); err != nil {
			return err
		}
		if _, err := r.Wait(); err != nil {
			return err
		}
		if len(recv) != 2 || !bytes.Equal(recv[0], send[0]) || !bytes.Equal(recv[1], send[1]) {
			return errors.New("self-send custom mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
