package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"mpicd/internal/ddt"
)

func TestGathervScatterv(t *testing.T) {
	const n = 4
	err := Run(n, Options{}, func(c *Comm) error {
		// Rank r contributes r+1 bytes of value r.
		mine := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()+1)
		counts := make([]Count, n)
		displs := make([]Count, n)
		total := Count(0)
		for r := 0; r < n; r++ {
			counts[r] = Count(r + 1)
			displs[r] = total
			total += counts[r]
		}
		all := make([]byte, total)
		if err := c.Gatherv(mine, Count(len(mine)), all, counts, displs, 1); err != nil {
			return err
		}
		if c.Rank() == 1 {
			for r := 0; r < n; r++ {
				part := all[displs[r] : displs[r]+counts[r]]
				if !bytes.Equal(part, bytes.Repeat([]byte{byte(r)}, r+1)) {
					return fmt.Errorf("gatherv slot %d = %v", r, part)
				}
			}
		}
		// Scatter the ragged buffer back out.
		out := make([]byte, c.Rank()+1)
		if err := c.Scatterv(all, counts, displs, out, Count(len(out)), 1); err != nil {
			return err
		}
		if !bytes.Equal(out, mine) {
			return fmt.Errorf("scatterv returned %v", out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherv(t *testing.T) {
	const n = 3
	err := Run(n, Options{}, func(c *Comm) error {
		mine := bytes.Repeat([]byte{byte(10 + c.Rank())}, 2*c.Rank()+1)
		counts := []Count{1, 3, 5}
		displs := []Count{0, 1, 4}
		all := make([]byte, 9)
		if err := c.Allgatherv(mine, Count(len(mine)), all, counts, displs); err != nil {
			return err
		}
		want := []byte{10, 11, 11, 11, 12, 12, 12, 12, 12}
		if !bytes.Equal(all, want) {
			return fmt.Errorf("allgatherv = %v", all)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitAny(t *testing.T) {
	run2(t, Options{},
		func(c *Comm) error {
			time.Sleep(10 * time.Millisecond)
			if err := c.Send([]byte{2}, 1, TypeBytes, 1, 2); err != nil {
				return err
			}
			time.Sleep(10 * time.Millisecond)
			return c.Send([]byte{1}, 1, TypeBytes, 1, 1)
		},
		func(c *Comm) error {
			b1 := make([]byte, 1)
			b2 := make([]byte, 1)
			r1, err := c.Irecv(b1, 1, TypeBytes, 0, 1)
			if err != nil {
				return err
			}
			r2, err := c.Irecv(b2, 1, TypeBytes, 0, 2)
			if err != nil {
				return err
			}
			i, st, err := WaitAny(r1, nil, r2)
			if err != nil {
				return err
			}
			if i != 2 || st.Tag != 2 || b2[0] != 2 {
				return fmt.Errorf("first completion = index %d, %+v", i, st)
			}
			if _, err := r1.Wait(); err != nil {
				return err
			}
			return nil
		})
}

func TestWaitAnyAllNil(t *testing.T) {
	i, _, err := WaitAny(nil, nil)
	if i != -1 || err != nil {
		t.Fatalf("WaitAny(nil) = %d, %v", i, err)
	}
}

func TestSendRecvType(t *testing.T) {
	// Datatype marshalling over the wire: the receiver reconstructs the
	// sender's layout and receives data with it.
	layoutType, err := ddt.Struct([]int{3, 1}, []int64{0, 16}, []*ddt.Type{ddt.Int32, ddt.Float64})
	if err != nil {
		t.Fatal(err)
	}
	const count = 16
	img := pattern(int(layoutType.Span(count)), 7)
	run2(t, Options{},
		func(c *Comm) error {
			if err := c.SendType(layoutType, 1, 1); err != nil {
				return err
			}
			return c.Send(img, count, FromDDT(layoutType), 1, 2)
		},
		func(c *Comm) error {
			remote, err := c.RecvType(0, 1)
			if err != nil {
				return err
			}
			if !ddt.Equal(remote, layoutType) {
				return errors.New("reconstructed type not equivalent")
			}
			dst := make([]byte, remote.Span(count))
			if _, err := c.Recv(dst, count, FromDDT(remote), 0, 2); err != nil {
				return err
			}
			a := make([]byte, layoutType.PackedSize(count))
			b := make([]byte, layoutType.PackedSize(count))
			layoutType.Pack(img, count, a)
			remote.Pack(dst, count, b)
			if !bytes.Equal(a, b) {
				return errors.New("data received with marshalled type mismatches")
			}
			return nil
		})
}
