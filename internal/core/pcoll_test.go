package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mpicd/internal/ddt"
	"mpicd/internal/fabric"
	"mpicd/internal/layout"
	"mpicd/internal/ucp"
)

// Persistent-collective matrix: correctness across rank counts and
// providers, iteration reuse with changing data, derived datatypes,
// lifecycle errors, and the restart path after a rank kill.

// pcollIters is how many Start/Wait rounds each matrix cell runs — data
// changes every round, so cross-iteration mismatches (a stale epoch, a
// dirty accumulator) show up as wrong sums, not just hangs.
const pcollIters = 5

// pcollRank runs every persistent kind on one communicator for
// pcollIters rounds, reinitializing inputs each round.
func pcollRank(c *Comm) error {
	n := c.Size()
	const count = 6

	// Allreduce over a derived datatype.
	arSend := make([]byte, 8*count)
	arRecv := make([]byte, 8*count)
	ar, err := c.AllreduceInit(arSend, arRecv, count, FromDDT(ddt.Int64), OpSumInt64)
	if err != nil {
		return fmt.Errorf("allreduce_init: %v", err)
	}
	defer ar.Free()

	// Bcast of a strided vector (4 blocks of 2 int64s, stride 4): the
	// gaps must survive untouched while the blocks propagate.
	vec, err := ddt.Vector(4, 2, 4, ddt.Int64)
	if err != nil {
		return err
	}
	vdt := FromDDT(vec)
	vecExtent := ((4-1)*4 + 2) * 8
	bcBuf := make([]byte, vecExtent)
	bc, err := c.BcastInit(bcBuf, 1, vdt, 0)
	if err != nil {
		return fmt.Errorf("bcast_init: %v", err)
	}
	defer bc.Free()

	// Allgather of one int64 per rank.
	agSend := make([]byte, 8)
	agRecv := make([]byte, 8*n)
	ag, err := c.AllgatherInit(agSend, 1, FromDDT(ddt.Int64), agRecv)
	if err != nil {
		return fmt.Errorf("allgather_init: %v", err)
	}
	defer ag.Free()

	ba, err := c.BarrierInit()
	if err != nil {
		return fmt.Errorf("barrier_init: %v", err)
	}
	defer ba.Free()

	runOne := func(p *PersistentColl) error {
		if err := p.Start(); err != nil {
			return fmt.Errorf("%s start: %v", p.Kind(), err)
		}
		return p.Wait()
	}

	for iter := 0; iter < pcollIters; iter++ {
		// Allreduce: rank r contributes (r+1)*1000 + iter*10 + i.
		for i := 0; i < count; i++ {
			layout.PutI64(arSend, i*8, int64(c.Rank()+1)*1000+int64(iter)*10+int64(i))
		}
		if err := runOne(ar); err != nil {
			return err
		}
		for i := 0; i < count; i++ {
			var want int64
			for r := 0; r < n; r++ {
				want += int64(r+1)*1000 + int64(iter)*10 + int64(i)
			}
			if got := layout.I64(arRecv, i*8); got != want {
				return fmt.Errorf("rank %d iter %d: allreduce[%d] = %d, want %d", c.Rank(), iter, i, got, want)
			}
		}

		// Bcast: root refills the vector blocks, everyone else clears the
		// buffer; packed images must agree afterwards.
		for i := range bcBuf {
			bcBuf[i] = 0
		}
		if c.Rank() == 0 {
			for blk := 0; blk < 4; blk++ {
				for e := 0; e < 2; e++ {
					layout.PutI64(bcBuf, (blk*4+e)*8, int64(iter)*100+int64(blk*2+e))
				}
			}
		}
		if err := runOne(bc); err != nil {
			return err
		}
		want := make([]byte, 4*2*8)
		for blk := 0; blk < 4; blk++ {
			for e := 0; e < 2; e++ {
				layout.PutI64(want, (blk*2+e)*8, int64(iter)*100+int64(blk*2+e))
			}
		}
		got := make([]byte, len(want))
		if _, err := Pack(bcBuf, 1, vdt, got); err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("rank %d iter %d: bcast vector payload mismatch", c.Rank(), iter)
		}

		// Allgather: rank r contributes r*10 + iter.
		layout.PutI64(agSend, 0, int64(c.Rank())*10+int64(iter))
		if err := runOne(ag); err != nil {
			return err
		}
		for r := 0; r < n; r++ {
			if got := layout.I64(agRecv, r*8); got != int64(r)*10+int64(iter) {
				return fmt.Errorf("rank %d iter %d: allgather[%d] = %d", c.Rank(), iter, r, got)
			}
		}

		if err := runOne(ba); err != nil {
			return err
		}
	}
	return nil
}

func TestPersistentCollMatrix(t *testing.T) {
	leakChecked(t)
	for _, n := range []int{2, 4, 5, 8} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			if err := Run(n, Options{}, pcollRank); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPersistentCollTCP runs the same matrix body over real sockets.
func TestPersistentCollTCP(t *testing.T) {
	leakChecked(t)
	if testing.Short() {
		t.Skip("TCP persistent matrix skipped in -short")
	}
	for _, n := range []int{2, 4} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			addrs := tcpAddrs(t, n)
			errs := make(chan error, n)
			for rank := 0; rank < n; rank++ {
				go func(rank int) {
					nic, err := fabric.NewTCP(rank, addrs, fabric.Config{})
					if err != nil {
						errs <- fmt.Errorf("rank %d: %v", rank, err)
						return
					}
					w := ucp.NewWorker(nic, ucp.Config{})
					defer w.Close()
					if err := pcollRank(NewComm(w)); err != nil {
						errs <- fmt.Errorf("rank %d: %v", rank, err)
						return
					}
					errs <- nil
				}(rank)
			}
			for i := 0; i < n; i++ {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestPersistentCollLifecycle pins the handle's state machine on a
// single-rank world, where collectives complete locally and every
// transition is deterministic.
func TestPersistentCollLifecycle(t *testing.T) {
	leakChecked(t)
	sys := NewSystem(1, Options{})
	defer sys.Close()
	c := sys.Comm(0)

	send := make([]byte, 8)
	recv := make([]byte, 8)
	p, err := c.AllreduceInit(send, recv, 1, FromDDT(ddt.Int64), OpSumInt64)
	if err != nil {
		t.Fatal(err)
	}

	// Wait/Test before any Start report idle success.
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait before Start = %v", err)
	}
	if done, err := p.Test(); !done || err != nil {
		t.Fatalf("Test before Start = %v, %v", done, err)
	}

	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// A second Start before Wait is an error even if the iteration has
	// already finished internally.
	if err := p.Start(); !errors.Is(err, ErrActive) {
		t.Fatalf("double Start = %v, want ErrActive", err)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}

	// Test drains a completed iteration.
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	for {
		done, err := p.Test()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}

	if err := p.Rebind(nil); !errors.Is(err, ErrInvalidComm) {
		t.Fatalf("Rebind(nil) = %v, want ErrInvalidComm", err)
	}

	if err := p.Free(); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(); err != nil {
		t.Fatalf("second Free = %v", err)
	}
	if err := p.Start(); !errors.Is(err, ErrInvalidComm) {
		t.Fatalf("Start after Free = %v, want ErrInvalidComm", err)
	}

	// Init-time validation.
	if _, err := c.BcastInit(make([]byte, 8), 8, TypeBytes, 5); !errors.Is(err, ErrInvalidComm) {
		t.Fatalf("BcastInit bad root = %v", err)
	}
	if _, err := c.AllreduceInit(make([]byte, 4), recv, 1, FromDDT(ddt.Int64), OpSumInt64); !errors.Is(err, ErrInvalidComm) {
		t.Fatalf("AllreduceInit short send = %v", err)
	}
}

// persistentRecoveryRank is the restart scenario: iterate a persistent
// Allreduce, lose the victim mid-iteration, recover with
// Revoke/Agree/Shrink, Rebind the same handle to the survivor
// communicator, and keep iterating.
func persistentRecoveryRank(c *Comm, victim, killIter int, kill func()) error {
	const count = 4
	send := make([]byte, 8*count)
	recv := make([]byte, 8*count)
	fill := func(rank, iter int) {
		for i := 0; i < count; i++ {
			layout.PutI64(send, i*8, int64(rank+1)*100+int64(iter)*7+int64(i))
		}
	}
	check := func(ranks, iter int) error {
		for i := 0; i < count; i++ {
			var want int64
			for r := 0; r < ranks; r++ {
				want += int64(r+1)*100 + int64(iter)*7 + int64(i)
			}
			if got := layout.I64(recv, i*8); got != want {
				return fmt.Errorf("iter %d: sum[%d] = %d, want %d", iter, i, got, want)
			}
		}
		return nil
	}

	p, err := c.AllreduceInit(send, recv, count, FromDDT(ddt.Int64), OpSumInt64)
	if err != nil {
		return err
	}
	defer p.Free()

	var failure error
	for iter := 0; ; iter++ {
		fill(c.Rank(), iter)
		if c.Rank() == victim && iter == killIter {
			go func() {
				time.Sleep(300 * time.Microsecond)
				kill()
			}()
			_ = p.Start()
			_ = p.Wait()
			return nil // the victim is dead; nothing further to verify
		}
		if err := p.Start(); err != nil {
			if errors.Is(err, ErrRevoked) {
				// Another survivor revoked between iterations: Start
				// failed fast, which is exactly the contract.
				failure = err
				break
			}
			return fmt.Errorf("rank %d iter %d: Start: %v", c.Rank(), iter, err)
		}
		err := p.Wait()
		if err == nil {
			if iter > killIter {
				return fmt.Errorf("rank %d: persistent Allreduce succeeded at iter %d with a dead participant", c.Rank(), iter)
			}
			if err := check(c.Size(), iter); err != nil {
				return fmt.Errorf("rank %d: %v", c.Rank(), err)
			}
			continue
		}
		if !errors.Is(err, ErrProcFailed) && !errors.Is(err, ErrRevoked) {
			return fmt.Errorf("rank %d: persistent Allreduce failed outside the taxonomy at iter %d: %v", c.Rank(), iter, err)
		}
		failure = err
		break
	}

	// Standard ULFM recovery, then re-aim the same handle.
	if err := c.Revoke(); err != nil {
		return fmt.Errorf("rank %d: revoke: %v", c.Rank(), err)
	}
	// Start on the revoked communicator fails fast without touching the
	// network.
	if err := p.Start(); !errors.Is(err, ErrRevoked) {
		return fmt.Errorf("rank %d: Start on revoked comm = %v, want ErrRevoked (after %v)", c.Rank(), err, failure)
	}
	if _, err := c.Agree(0); err != nil {
		return fmt.Errorf("rank %d: agree: %v", c.Rank(), err)
	}
	nc, err := c.Shrink()
	if err != nil {
		return fmt.Errorf("rank %d: shrink: %v", c.Rank(), err)
	}
	if err := p.Rebind(nc); err != nil {
		return fmt.Errorf("rank %d: rebind: %v", c.Rank(), err)
	}

	// The handle keeps iterating on the survivor communicator.
	for iter := 0; iter < 3; iter++ {
		fill(nc.Rank(), iter)
		if err := p.Start(); err != nil {
			return fmt.Errorf("rank %d: post-rebind Start: %v", c.Rank(), err)
		}
		if err := p.Wait(); err != nil {
			return fmt.Errorf("rank %d: post-rebind Wait: %v", c.Rank(), err)
		}
		if err := check(nc.Size(), iter); err != nil {
			return fmt.Errorf("rank %d post-rebind: %v", c.Rank(), err)
		}
	}
	return nil
}

func TestPersistentAllreduceKillRebind(t *testing.T) {
	leakChecked(t)
	for _, seed := range recoverySeeds {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			const n = 5
			victim := int((seed*7 + 3) % n)
			opt, fns := killableWorld(n)
			err := Run(n, opt, func(c *Comm) error {
				return persistentRecoveryRank(c, victim, 2, func() { fns[victim].Kill() })
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPersistentAllreduceKillRebindTCP is the same restart scenario over
// real sockets (one seed: the TCP mesh is expensive to stand up).
func TestPersistentAllreduceKillRebindTCP(t *testing.T) {
	leakChecked(t)
	if testing.Short() {
		t.Skip("TCP persistent recovery skipped in -short")
	}
	const seed = 42
	const n = 5
	victim := int((seed*7 + 3) % n)
	addrs := tcpAddrs(t, n)
	ks := fabric.NewKillSwitch()
	fns := make([]*fabric.FaultNIC, n)
	var mu sync.Mutex
	errs := make(chan error, n)
	for rank := 0; rank < n; rank++ {
		go func(rank int) {
			nic, err := fabric.NewTCP(rank, addrs, fabric.Config{})
			if err != nil {
				errs <- fmt.Errorf("rank %d: %v", rank, err)
				return
			}
			fn := fabric.WrapFault(nic, fabric.FaultPlan{Kills: ks})
			mu.Lock()
			fns[rank] = fn
			mu.Unlock()
			w := ucp.NewWorker(fn, hbUCP())
			defer w.Close()
			c := NewComm(w)
			errs <- persistentRecoveryRank(c, victim, 2, func() {
				mu.Lock()
				fn := fns[victim]
				mu.Unlock()
				fn.Kill()
			})
		}(rank)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
