package core_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"mpicd/internal/core"
	"mpicd/internal/ucp"
)

// stripedWorldOpts enables rendezvous striping aggressively so the tests
// exercise the concurrent path on any host.
func stripedWorldOpts(stripes int) core.Options {
	return core.Options{UCP: ucp.Config{
		RndvThresh:       32 * 1024,
		PullStripes:      stripes,
		PullStripeThresh: 64 * 1024,
	}}
}

// seqHandler is a pure-pack custom handler (identity serialization of a
// []byte buffer) that records every unpack fragment, so tests can assert
// the delivery order the inorder contract promises.
type seqHandler struct {
	mu   sync.Mutex
	offs []core.Count
	ends []core.Count
}

func (h *seqHandler) State(buf any, count core.Count) (any, error) {
	b, ok := buf.([]byte)
	if !ok {
		return nil, fmt.Errorf("seqHandler: want []byte, got %T", buf)
	}
	if count > int64(len(b)) {
		return nil, fmt.Errorf("seqHandler: count %d exceeds %d", count, len(b))
	}
	return b[:count], nil
}

func (h *seqHandler) FreeState(any) error { return nil }

func (h *seqHandler) PackedSize(state, _ any, count core.Count) (core.Count, error) {
	return count, nil
}

func (h *seqHandler) Pack(state, _ any, count, offset core.Count, dst []byte) (core.Count, error) {
	img := state.([]byte)
	return core.Count(copy(dst, img[offset:])), nil
}

func (h *seqHandler) Unpack(state, _ any, count, offset core.Count, src []byte) error {
	h.mu.Lock()
	h.offs = append(h.offs, offset)
	h.ends = append(h.ends, offset+core.Count(len(src)))
	h.mu.Unlock()
	img := state.([]byte)
	copy(img[offset:], src)
	return nil
}

func (h *seqHandler) RegionCount(state, _ any, count core.Count) (core.Count, error) {
	return 0, nil
}

func (h *seqHandler) Regions(state, _ any, count core.Count, regions [][]byte) error {
	return nil
}

// TestInOrderLargeMessageSequentialFallback sends a large inorder custom
// message with striping configured and an out-of-order fabric: the
// sequential fallback must engage (no striped pulls) and the unpack
// callbacks must observe strictly increasing, gap-free offsets.
func TestInOrderLargeMessageSequentialFallback(t *testing.T) {
	opt := stripedWorldOpts(8)
	opt.Fabric.OutOfOrder = true
	opt.Fabric.Seed = 42
	sys := core.NewSystem(2, opt)
	defer sys.Close()

	const size = 2 << 20
	src := make([]byte, size)
	for i := range src {
		src[i] = byte(i*31 + 7)
	}
	dst := make([]byte, size)
	sendDT := core.TypeCreateCustom(&seqHandler{}, core.WithInOrder())
	rh := &seqHandler{}
	recvDT := core.TypeCreateCustom(rh, core.WithInOrder())

	done := make(chan error, 1)
	go func() {
		_, err := sys.Comm(1).Recv(dst, size, recvDT, 0, 9)
		done <- err
	}()
	if err := sys.Comm(0).Send(src, size, sendDT, 1, 9); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("inorder roundtrip mismatch")
	}

	stats := sys.Comm(1).Worker().Stats()
	if got := stats.StripedPulls.Load(); got != 0 {
		t.Fatalf("striped pulls = %d, want 0 for an inorder datatype", got)
	}
	if got := stats.SequentialPulls.Load(); got != 1 {
		t.Fatalf("sequential pulls = %d, want 1", got)
	}

	rh.mu.Lock()
	defer rh.mu.Unlock()
	if len(rh.offs) == 0 || rh.offs[0] != 0 {
		t.Fatalf("first unpack offset missing or nonzero: %v", rh.offs[:min(4, len(rh.offs))])
	}
	for i := 1; i < len(rh.offs); i++ {
		if rh.offs[i] <= rh.offs[i-1] {
			t.Fatalf("unpack offsets not strictly increasing at %d: %d after %d",
				i, rh.offs[i], rh.offs[i-1])
		}
		if rh.offs[i] != rh.ends[i-1] {
			t.Fatalf("unpack gap at %d: fragment ends %d, next starts %d",
				i, rh.ends[i-1], rh.offs[i])
		}
	}
	if rh.ends[len(rh.ends)-1] != size {
		t.Fatalf("last unpack ends at %d, want %d", rh.ends[len(rh.ends)-1], size)
	}
}

// regionHandler splits a []byte buffer into a callback-packed head and
// nreg zero-copy regions — the layout the paper's custom API targets. It
// is stateless apart from the buffer itself, so concurrent Pack/Unpack at
// disjoint offsets (the non-inorder contract) is safe.
type regionHandler struct {
	packed core.Count
	nreg   int
}

func (h *regionHandler) State(buf any, count core.Count) (any, error) {
	b, ok := buf.([]byte)
	if !ok {
		return nil, fmt.Errorf("regionHandler: want []byte, got %T", buf)
	}
	return b[:count], nil
}

func (h *regionHandler) FreeState(any) error { return nil }

func (h *regionHandler) PackedSize(state, _ any, count core.Count) (core.Count, error) {
	return h.packed, nil
}

func (h *regionHandler) Pack(state, _ any, count, offset core.Count, dst []byte) (core.Count, error) {
	img := state.([]byte)
	return core.Count(copy(dst, img[offset:h.packed])), nil
}

func (h *regionHandler) Unpack(state, _ any, count, offset core.Count, src []byte) error {
	img := state.([]byte)
	copy(img[offset:h.packed], src)
	return nil
}

func (h *regionHandler) RegionCount(state, _ any, count core.Count) (core.Count, error) {
	return core.Count(h.nreg), nil
}

func (h *regionHandler) Regions(state, _ any, count core.Count, regions [][]byte) error {
	img := state.([]byte)
	rest := img[h.packed:]
	per := len(rest) / h.nreg
	for i := 0; i < h.nreg; i++ {
		lo := i * per
		hi := lo + per
		if i == h.nreg-1 {
			hi = len(rest)
		}
		regions[i] = rest[lo:hi]
	}
	return nil
}

// TestStripedCustomConcurrentPairs exchanges large custom-datatype
// messages (packed head + regions) across 8 concurrent sender/receiver
// pairs with 4-way striping: the -race stress for concurrent pack,
// unpack and region scatter at the MPI layer.
func TestStripedCustomConcurrentPairs(t *testing.T) {
	const pairs = 8
	sys := core.NewSystem(2*pairs, stripedWorldOpts(4))
	defer sys.Close()

	const size = 1 << 20
	dt := core.TypeCreateCustom(&regionHandler{packed: 64 * 1024, nreg: 16})
	var wg sync.WaitGroup
	errs := make(chan error, 2*pairs)
	for p := 0; p < pairs; p++ {
		src := make([]byte, size)
		for i := range src {
			src[i] = byte(i*13 + p)
		}
		dst := make([]byte, size)
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var inner sync.WaitGroup
			inner.Add(1)
			go func() {
				defer inner.Done()
				if _, err := sys.Comm(2*p+1).Recv(dst, size, dt, 2*p, 3); err != nil {
					errs <- fmt.Errorf("pair %d recv: %w", p, err)
				}
			}()
			if err := sys.Comm(2*p).Send(src, size, dt, 2*p+1, 3); err != nil {
				errs <- fmt.Errorf("pair %d send: %w", p, err)
			}
			inner.Wait()
			if !bytes.Equal(dst, src) {
				errs <- fmt.Errorf("pair %d roundtrip mismatch", p)
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	striped := int64(0)
	for r := 0; r < 2*pairs; r++ {
		striped += sys.Comm(r).Worker().Stats().StripedPulls.Load()
	}
	if striped != pairs {
		t.Fatalf("striped pulls = %d, want %d", striped, pairs)
	}
}
