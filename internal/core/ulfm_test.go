package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mpicd/internal/ddt"
	"mpicd/internal/fabric"
	"mpicd/internal/layout"
	"mpicd/internal/ucp"
)

// End-to-end ULFM recovery: detect → Revoke → Agree → Shrink → retry.
// The tests run without any ReqTimeout — unblocking relies entirely on
// failure notification (the detector) and revocation, which is the
// property under test.

// recoverySeeds are the fixed seeds the CI chaos job pins.
var recoverySeeds = []int64{1, 42, 20240711}

// hbUCP is the detector-enabled transport configuration for recovery
// tests: fast heartbeats so deaths are declared within test time.
func hbUCP() ucp.Config {
	// DeadAfter trades detection latency for false-positive margin. The
	// race detector and TCP syscalls can starve a rank's pong path for
	// tens of milliseconds, so the threshold stays comfortably above that
	// while keeping recovery well under a second.
	return ucp.Config{Heartbeat: fabric.DetectorConfig{
		Period:       5 * time.Millisecond,
		SuspectAfter: 40 * time.Millisecond,
		DeadAfter:    150 * time.Millisecond,
	}}
}

// killableWorld wires every rank's NIC through a fault plan sharing one
// kill switch, collecting the FaultNICs so the test can kill a rank at a
// precise point.
func killableWorld(n int) (Options, []*fabric.FaultNIC) {
	ks := fabric.NewKillSwitch()
	fns := make([]*fabric.FaultNIC, n)
	var mu sync.Mutex
	opt := Options{
		UCP: hbUCP(),
		WrapNIC: func(rank int, nic fabric.NIC) fabric.NIC {
			fn := fabric.WrapFault(nic, fabric.FaultPlan{Kills: ks})
			mu.Lock()
			fns[rank] = fn
			mu.Unlock()
			return fn
		},
	}
	return opt, fns
}

// recoveryRank is the per-rank body of the acceptance scenario: loop
// Allreduce; the victim dies mid-collective at killIter; each survivor
// observes a failure (ErrProcFailed if it noticed the death itself,
// ErrRevoked if another survivor revoked first), revokes, agrees on the
// failed set, shrinks, and retries the Allreduce on the survivor
// communicator.
func recoveryRank(c *Comm, victim, killIter int, kill func()) error {
	const count = 4
	send := make([]byte, 8*count)
	recv := make([]byte, 8*count)
	fill := func(rank int) {
		for i := 0; i < count; i++ {
			layout.PutI64(send, i*8, int64(rank+1)*100+int64(i))
		}
	}
	sum := func(ranks int) []int64 {
		out := make([]int64, count)
		for r := 0; r < ranks; r++ {
			for i := 0; i < count; i++ {
				out[i] += int64(r+1)*100 + int64(i)
			}
		}
		return out
	}

	var failure error
	for iter := 0; ; iter++ {
		fill(c.Rank())
		if c.Rank() == victim && iter == killIter {
			// Die mid-collective: enter the Allreduce, then have the NIC
			// killed out from under it. Whatever the local call returns,
			// this rank is gone.
			go func() {
				time.Sleep(300 * time.Microsecond)
				kill()
			}()
			_ = c.Allreduce(send, recv, count, FromDDT(ddt.Int64), OpSumInt64)
			return nil
		}
		err := c.Allreduce(send, recv, count, FromDDT(ddt.Int64), OpSumInt64)
		if err == nil {
			// iter == killIter may legitimately succeed: the victim enters
			// the collective and the kill can land just after it completes.
			// Beyond that the victim no longer participates, so success
			// would mean the collective matched without a contributor.
			if iter > killIter {
				return fmt.Errorf("rank %d: Allreduce succeeded at iter %d with a dead participant", c.Rank(), iter)
			}
			want := sum(c.Size())
			for i := 0; i < count; i++ {
				if got := layout.I64(recv, i*8); got != want[i] {
					return fmt.Errorf("rank %d iter %d: sum[%d] = %d, want %d", c.Rank(), iter, i, got, want[i])
				}
			}
			continue
		}
		if !errors.Is(err, ErrProcFailed) && !errors.Is(err, ErrRevoked) {
			return fmt.Errorf("rank %d: Allreduce failed outside the taxonomy at iter %d: %v\nconn trace:\n  %s",
				c.Rank(), iter, err, strings.Join(fabric.ConnTrace(), "\n  "))
		}
		failure = err
		break
	}

	// Recovery. Revoke is idempotent and never collective: every survivor
	// may call it regardless of who revoked first.
	if err := c.Revoke(); err != nil {
		return fmt.Errorf("rank %d: revoke: %v", c.Rank(), err)
	}
	if !c.Revoked() {
		return fmt.Errorf("rank %d: Revoked() false after Revoke", c.Rank())
	}
	// The revoked communicator refuses ordinary traffic...
	if err := c.Barrier(); !errors.Is(err, ErrRevoked) {
		return fmt.Errorf("rank %d: Barrier on revoked comm = %v, want ErrRevoked", c.Rank(), err)
	}
	// ...but agreement still works on it, and every survivor must agree
	// on a failed set containing exactly the victim.
	mask, err := c.Agree(0)
	if err != nil {
		return fmt.Errorf("rank %d: agree (after %v): %v", c.Rank(), failure, err)
	}
	if want := uint64(1) << uint(victim); mask != want {
		return fmt.Errorf("rank %d: agreed mask = %#x, want %#x (locally failed: %v)", c.Rank(), mask, want, c.Failed())
	}
	nc, err := c.Shrink()
	if err != nil {
		return fmt.Errorf("rank %d: shrink: %v", c.Rank(), err)
	}
	if nc.Size() != c.Size()-1 {
		return fmt.Errorf("rank %d: shrunk size = %d, want %d", c.Rank(), nc.Size(), c.Size()-1)
	}
	// Survivors keep their relative order under renumbering.
	wantRank := c.Rank()
	if c.Rank() > victim {
		wantRank--
	}
	if nc.Rank() != wantRank {
		return fmt.Errorf("rank %d: shrunk rank = %d, want %d", c.Rank(), nc.Rank(), wantRank)
	}
	// The retried collective completes on the survivor communicator with
	// the survivors' data.
	fill(nc.Rank())
	if err := nc.Allreduce(send, recv, count, FromDDT(ddt.Int64), OpSumInt64); err != nil {
		return fmt.Errorf("rank %d: retried Allreduce: %v", c.Rank(), err)
	}
	want := sum(nc.Size())
	for i := 0; i < count; i++ {
		if got := layout.I64(recv, i*8); got != want[i] {
			return fmt.Errorf("rank %d: retried sum[%d] = %d, want %d", c.Rank(), i, got, want[i])
		}
	}
	return nil
}

// TestRecoveryKillMidAllreduce is the inproc acceptance scenario: a
// 5-rank world, one rank killed mid-Allreduce, full recovery on the
// survivors.
func TestRecoveryKillMidAllreduce(t *testing.T) {
	leakChecked(t)
	for _, seed := range recoverySeeds {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			const n = 5
			victim := int((seed*7 + 3) % n)
			opt, fns := killableWorld(n)
			err := Run(n, opt, func(c *Comm) error {
				return recoveryRank(c, victim, 2, func() { fns[victim].Kill() })
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRecoveryKillMidAllreduceTCP is the same scenario over the TCP
// provider: five in-process "ranks" on real sockets, the kill switch
// shared across their fault wrappers exactly as a crashed process would
// go silent on every connection at once.
func TestRecoveryKillMidAllreduceTCP(t *testing.T) {
	leakChecked(t)
	if testing.Short() {
		t.Skip("TCP recovery matrix skipped in -short")
	}
	for _, seed := range recoverySeeds {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			const n = 5
			victim := int((seed*7 + 3) % n)
			addrs := tcpAddrs(t, n)
			ks := fabric.NewKillSwitch()
			fns := make([]*fabric.FaultNIC, n)
			var mu sync.Mutex
			errs := make(chan error, n)
			for rank := 0; rank < n; rank++ {
				go func(rank int) {
					nic, err := fabric.NewTCP(rank, addrs, fabric.Config{})
					if err != nil {
						errs <- fmt.Errorf("rank %d: %v", rank, err)
						return
					}
					fn := fabric.WrapFault(nic, fabric.FaultPlan{Kills: ks})
					mu.Lock()
					fns[rank] = fn
					mu.Unlock()
					w := ucp.NewWorker(fn, hbUCP())
					defer w.Close()
					c := NewComm(w)
					errs <- recoveryRank(c, victim, 2, func() {
						mu.Lock()
						fn := fns[victim]
						mu.Unlock()
						fn.Kill()
					})
				}(rank)
			}
			for i := 0; i < n; i++ {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestRevokePropagation: one rank's Revoke must reach every other rank,
// aborting their pending operations — including a blocking receive that
// would otherwise wait forever — and poisoning future ones.
func TestRevokePropagation(t *testing.T) {
	leakChecked(t)
	const n = 3
	err := Run(n, Options{UCP: hbUCP()}, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			time.Sleep(5 * time.Millisecond) // let rank 1's receive block
			return c.Revoke()
		case 1:
			buf := make([]byte, 8)
			_, err := c.Recv(buf, -1, TypeBytes, AnySource, 9)
			if !errors.Is(err, ErrRevoked) {
				return fmt.Errorf("pending recv on revoked comm = %v, want ErrRevoked", err)
			}
			return nil
		default:
			// A rank with nothing pending still learns of the revocation.
			deadline := time.Now().Add(5 * time.Second)
			for !c.Revoked() {
				if time.Now().After(deadline) {
					return errors.New("revocation never propagated to an idle rank")
				}
				time.Sleep(time.Millisecond)
			}
			if err := c.Send(make([]byte, 8), -1, TypeBytes, 0, 9); !errors.Is(err, ErrRevoked) {
				return fmt.Errorf("send on revoked comm = %v, want ErrRevoked", err)
			}
			if r := c.Ibarrier(); !errors.Is(r.Wait(), ErrRevoked) {
				return errors.New("Ibarrier on revoked comm did not fail with ErrRevoked")
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShrinkWithoutFailure: Shrink on a revoked but fully-alive
// communicator rebuilds the same group with working collectives — the
// degenerate recovery where the revocation was a false alarm.
func TestShrinkWithoutFailure(t *testing.T) {
	leakChecked(t)
	const n = 4
	err := Run(n, Options{UCP: hbUCP()}, func(c *Comm) error {
		if err := c.Revoke(); err != nil {
			return err
		}
		mask, err := c.Agree(0)
		if err != nil {
			return fmt.Errorf("rank %d: agree: %v", c.Rank(), err)
		}
		if mask != 0 {
			return fmt.Errorf("rank %d: agreed mask = %#x on an alive world", c.Rank(), mask)
		}
		nc, err := c.Shrink()
		if err != nil {
			return fmt.Errorf("rank %d: shrink: %v", c.Rank(), err)
		}
		if nc.Size() != n || nc.Rank() != c.Rank() {
			return fmt.Errorf("rank %d: shrunk to rank %d of %d, want identity", c.Rank(), nc.Rank(), nc.Size())
		}
		return nc.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAgreeMergesContributions: Agree ORs the callers' local masks even
// when no rank has failed (the ULFM flag-consensus idiom).
func TestAgreeMergesContributions(t *testing.T) {
	leakChecked(t)
	const n = 3
	err := Run(n, Options{UCP: hbUCP()}, func(c *Comm) error {
		local := uint64(0)
		if c.Rank() == 1 {
			local = 1 << 9 // a flag bit outside the rank space... within 64
		}
		mask, err := c.Agree(local)
		if err != nil {
			return err
		}
		if mask != 1<<9 {
			return fmt.Errorf("rank %d: agreed mask = %#x, want %#x", c.Rank(), mask, uint64(1)<<9)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFailedIsLocalKnowledge: Failed reflects this rank's detector view;
// after a kill every survivor converges on the victim.
func TestFailedIsLocalKnowledge(t *testing.T) {
	leakChecked(t)
	const n = 3
	opt, fns := killableWorld(n)
	err := Run(n, opt, func(c *Comm) error {
		if c.Rank() == 2 {
			fns[2].Kill()
			return nil
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			f := c.Failed()
			if len(f) == 1 && f[0] == 2 {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("rank %d: Failed() = %v, want [2]", c.Rank(), f)
			}
			time.Sleep(time.Millisecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShrinkFencesExcludedLiveRank: one directed link dies (rank 2 can
// no longer reach rank 1) while every other path stays up — the
// asymmetric outage that produces a false-positive death verdict: rank
// 1 declares 2 dead, the agreement spreads the verdict, and the
// survivors shrink without 2. Rank 2 is alive and blocked in the
// agreement the survivors no longer run it through; the fence notice
// (deliverable here by rank 0, which never declared 2 failed) must
// convert that otherwise-forever wait into ErrExcluded.
func TestShrinkFencesExcludedLiveRank(t *testing.T) {
	leakChecked(t)
	const n, mute, excluder = 3, 2, 1
	opt := Options{
		UCP: hbUCP(),
		WrapNIC: func(rank int, nic fabric.NIC) fabric.NIC {
			if rank != mute {
				return nic
			}
			return fabric.WrapFault(nic, fabric.FaultPlan{Rules: []fabric.FaultRule{
				{Peer: excluder, Action: fabric.LinkDown, Prob: 1, Count: 1, Down: -1},
			}})
		},
	}
	err := Run(n, opt, func(c *Comm) error {
		send := make([]byte, 8)
		recv := make([]byte, 8)
		if c.Rank() == excluder {
			// The excluder observes the silence directly: a posted receive
			// from the mute rank fails when the detector declares it dead.
			if _, err := c.Recv(recv, 1, FromDDT(ddt.Int64), mute, 7); !errors.Is(err, ErrProcFailed) {
				return fmt.Errorf("excluder: recv from mute rank = %v, want ErrProcFailed", err)
			}
		} else {
			// Everyone else blocks in a collective the wedged excluder never
			// enters, until the revocation aborts it.
			layout.PutI64(send, 0, int64(c.Rank()+1))
			err := c.Allreduce(send, recv, 1, FromDDT(ddt.Int64), OpSumInt64)
			if !errors.Is(err, ErrProcFailed) && !errors.Is(err, ErrRevoked) {
				return fmt.Errorf("rank %d: allreduce = %v, want a taxonomy error", c.Rank(), err)
			}
		}
		_ = c.Revoke()
		nc, err := c.Shrink()
		if c.Rank() == mute {
			if !errors.Is(err, ErrExcluded) {
				return fmt.Errorf("excluded rank: Shrink = %v, want ErrExcluded", err)
			}
			if !c.Fenced() {
				return errors.New("excluded rank: Fenced() = false after ErrExcluded")
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("rank %d: shrink: %v", c.Rank(), err)
		}
		if nc.Size() != n-1 {
			return fmt.Errorf("rank %d: shrunk size = %d, want %d", c.Rank(), nc.Size(), n-1)
		}
		layout.PutI64(send, 0, int64(nc.Rank()+1))
		if err := nc.Allreduce(send, recv, 1, FromDDT(ddt.Int64), OpSumInt64); err != nil {
			return fmt.Errorf("rank %d: allreduce on shrunk comm: %v", c.Rank(), err)
		}
		if got := layout.I64(recv, 0); got != 3 {
			return fmt.Errorf("rank %d: shrunk allreduce = %d, want 3", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
