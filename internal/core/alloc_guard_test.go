package core_test

import (
	"testing"
	"time"

	"mpicd/internal/core"
	"mpicd/internal/fabric"
	"mpicd/internal/obs"
	"mpicd/internal/ucp"
)

// Allocation ceilings for the eager small-message path, measured on the
// pooled implementation (wire buffers recycled by the fabric's
// size-classed pool, region scratch recycled in core). The guards leave
// ~30% headroom over the measured steady state; if one trips, a change
// added per-message garbage to the hot path — fix the change, don't bump
// the ceiling without a benchmark showing why.
const (
	eagerPingPongAllocCeiling  = 40 // allocs per 1 KiB contiguous ping-pong (both ranks)
	customPingPongAllocCeiling = 70 // allocs per 1 KiB custom-datatype ping-pong (both ranks)
)

// measureEcho runs a fixed-iteration ping-pong between two in-process
// ranks and returns the average allocations per round trip across the
// whole process (both sides included — AllocsPerRun reads global counts).
func measureEcho(t *testing.T, sys *core.System, iters int, send func(c *core.Comm) error, echo func(c *core.Comm) error) float64 {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		c := sys.Comm(1)
		// AllocsPerRun invokes its body iters+1 times (one warm-up run).
		for i := 0; i < iters+1; i++ {
			if err := echo(c); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	c := sys.Comm(0)
	avg := testing.AllocsPerRun(iters, func() {
		if err := send(c); err != nil {
			t.Error(err)
		}
	})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return avg
}

// TestEagerSmallMessageAllocsPinned pins the per-message allocation count
// of the eager contiguous path so buffer-pooling work cannot silently
// regress.
func TestEagerSmallMessageAllocsPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	sys := core.NewSystem(2, core.Options{})
	defer sys.Close()
	const size = 1024
	msg := make([]byte, size)
	out := make([]byte, size)
	buf := make([]byte, size)

	avg := measureEcho(t, sys, 100,
		func(c *core.Comm) error {
			if err := c.Send(msg, -1, core.TypeBytes, 1, 1); err != nil {
				return err
			}
			_, err := c.Recv(out, -1, core.TypeBytes, 1, 2)
			return err
		},
		func(c *core.Comm) error {
			if _, err := c.Recv(buf, -1, core.TypeBytes, 0, 1); err != nil {
				return err
			}
			return c.Send(buf, -1, core.TypeBytes, 0, 2)
		})
	t.Logf("eager 1 KiB ping-pong: %.1f allocs/op", avg)
	if avg > eagerPingPongAllocCeiling {
		t.Fatalf("eager path allocates %.1f/op, ceiling %d", avg, eagerPingPongAllocCeiling)
	}
}

// TestObsEagerAllocsPinned runs the same eager ping-pong with the full
// observability layer enabled (metrics registry plus trace ring) and
// holds it to the same ceiling as the uninstrumented path: counters are
// atomics, histogram observation is a fixed-shape bucket increment, and
// trace recording copies one fixed-size struct into a preallocated ring.
func TestObsEagerAllocsPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	sys := core.NewSystem(2, core.Options{UCP: ucp.Config{Obs: obs.New(4096)}})
	defer sys.Close()
	const size = 1024
	msg := make([]byte, size)
	out := make([]byte, size)
	buf := make([]byte, size)

	avg := measureEcho(t, sys, 100,
		func(c *core.Comm) error {
			if err := c.Send(msg, -1, core.TypeBytes, 1, 1); err != nil {
				return err
			}
			_, err := c.Recv(out, -1, core.TypeBytes, 1, 2)
			return err
		},
		func(c *core.Comm) error {
			if _, err := c.Recv(buf, -1, core.TypeBytes, 0, 1); err != nil {
				return err
			}
			return c.Send(buf, -1, core.TypeBytes, 0, 2)
		})
	t.Logf("obs-enabled eager 1 KiB ping-pong: %.1f allocs/op", avg)
	if avg > eagerPingPongAllocCeiling {
		t.Fatalf("obs-enabled eager path allocates %.1f/op, ceiling %d", avg, eagerPingPongAllocCeiling)
	}
}

// TestHeartbeatEagerAllocsPinned runs the eager ping-pong with the
// liveness detector enabled and holds it to the unchanged ceiling: with
// traffic flowing, detection is piggybacked — one atomic last-seen store
// and a kind check per inbound packet, no per-message garbage. The probe
// period is kept long so the prober goroutine's own (off-path) sends
// cannot blur the measurement.
func TestHeartbeatEagerAllocsPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	sys := core.NewSystem(2, core.Options{UCP: ucp.Config{
		Heartbeat: fabric.DetectorConfig{Period: time.Minute},
	}})
	defer sys.Close()
	const size = 1024
	msg := make([]byte, size)
	out := make([]byte, size)
	buf := make([]byte, size)

	avg := measureEcho(t, sys, 100,
		func(c *core.Comm) error {
			if err := c.Send(msg, -1, core.TypeBytes, 1, 1); err != nil {
				return err
			}
			_, err := c.Recv(out, -1, core.TypeBytes, 1, 2)
			return err
		},
		func(c *core.Comm) error {
			if _, err := c.Recv(buf, -1, core.TypeBytes, 0, 1); err != nil {
				return err
			}
			return c.Send(buf, -1, core.TypeBytes, 0, 2)
		})
	t.Logf("heartbeat-enabled eager 1 KiB ping-pong: %.1f allocs/op", avg)
	if avg > eagerPingPongAllocCeiling {
		t.Fatalf("heartbeat-enabled eager path allocates %.1f/op, ceiling %d", avg, eagerPingPongAllocCeiling)
	}
}

// TestCustomEagerAllocsPinned pins the custom-datatype eager path, which
// additionally exercises the region-scratch pooling in core.
func TestCustomEagerAllocsPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	sys := core.NewSystem(2, core.Options{})
	defer sys.Close()
	const size = 1024
	dt := core.TypeCreateCustom(&regionHandler{packed: 256, nreg: 2})
	msg := make([]byte, size)
	out := make([]byte, size)
	buf := make([]byte, size)

	avg := measureEcho(t, sys, 100,
		func(c *core.Comm) error {
			if err := c.Send(msg, size, dt, 1, 1); err != nil {
				return err
			}
			_, err := c.Recv(out, size, dt, 1, 2)
			return err
		},
		func(c *core.Comm) error {
			if _, err := c.Recv(buf, size, dt, 0, 1); err != nil {
				return err
			}
			return c.Send(buf, size, dt, 0, 2)
		})
	t.Logf("custom 1 KiB ping-pong: %.1f allocs/op", avg)
	if avg > customPingPongAllocCeiling {
		t.Fatalf("custom eager path allocates %.1f/op, ceiling %d", avg, customPingPongAllocCeiling)
	}
}
