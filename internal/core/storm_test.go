package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mpicd/internal/ddt"
	"mpicd/internal/fabric"
	"mpicd/internal/ucp"
)

// TestMessageStorm is a randomized soak: several ranks blast messages of
// random sizes (spanning eager and rendezvous) at a sink that receives
// with wildcards, verifying payload integrity and per-source ordering.
func TestMessageStorm(t *testing.T) {
	const (
		ranks    = 4
		perRank  = 120
		maxBytes = 100000
	)
	opt := Options{UCP: ucp.Config{RndvThresh: 8192, FragSize: 2048}, Fabric: fabric.Config{FragSize: 2048}}
	payload := func(src, seq int) []byte {
		rng := rand.New(rand.NewSource(int64(src)*100000 + int64(seq)))
		b := make([]byte, rng.Intn(maxBytes))
		rng.Read(b)
		return b
	}
	err := Run(ranks, opt, func(c *Comm) error {
		sink := ranks - 1
		if c.Rank() != sink {
			for seq := 0; seq < perRank; seq++ {
				if err := c.Send(payload(c.Rank(), seq), -1, TypeBytes, sink, seq%7); err != nil {
					return err
				}
			}
			return nil
		}
		next := make([]int, ranks) // per-source, per-tag FIFO tracking via seq recovery
		buf := make([]byte, maxBytes)
		for i := 0; i < (ranks-1)*perRank; i++ {
			st, err := c.Recv(buf, -1, TypeBytes, AnySource, AnyTag)
			if err != nil {
				return err
			}
			// Identify which sequence number this is by regenerating the
			// expected payload for the source's next outstanding seq with
			// this tag.
			found := false
			for seq := next[st.Source]; seq < perRank; seq++ {
				if seq%7 != st.Tag {
					continue
				}
				want := payload(st.Source, seq)
				if int64(len(want)) != st.Bytes {
					continue
				}
				if bytes.Equal(buf[:st.Bytes], want) {
					found = true
					break
				}
				break
			}
			if !found {
				return fmt.Errorf("message %d from rank %d (tag %d, %d bytes) did not match any expected payload",
					i, st.Source, st.Tag, st.Bytes)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentCollectivesAndP2P mixes collective rounds with concurrent
// point-to-point traffic on a dup'd communicator: context isolation must
// keep them from interfering.
func TestConcurrentCollectivesAndP2P(t *testing.T) {
	const ranks = 4
	const rounds = 20
	err := Run(ranks, Options{}, func(c *Comm) error {
		p2p, err := c.Dup()
		if err != nil {
			return err
		}
		var wg sync.WaitGroup
		errs := make(chan error, 2)
		// Collective traffic on the parent.
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 64)
			for r := 0; r < rounds; r++ {
				if c.Rank() == 0 {
					copy(buf, pattern(64, byte(r)))
				}
				if err := c.Bcast(buf, -1, TypeBytes, 0); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(buf, pattern(64, byte(r))) {
					errs <- fmt.Errorf("bcast round %d corrupted", r)
					return
				}
			}
		}()
		// Ring traffic on the dup.
		wg.Add(1)
		go func() {
			defer wg.Done()
			right := (p2p.Rank() + 1) % ranks
			left := (p2p.Rank() - 1 + ranks) % ranks
			out := make([]byte, 128)
			for r := 0; r < rounds; r++ {
				mine := pattern(128, byte(p2p.Rank()*rounds+r))
				want := pattern(128, byte(left*rounds+r))
				if _, err := p2p.SendRecv(mine, -1, TypeBytes, right, 5, out, -1, TypeBytes, left, 5); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(out, want) {
					errs <- fmt.Errorf("ring round %d corrupted", r)
					return
				}
			}
		}()
		wg.Wait()
		select {
		case err := <-errs:
			return err
		default:
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// structSimpleDDT builds the Listing 7 struct type for tests.
func structSimpleDDT(t *testing.T) *ddt.Type {
	t.Helper()
	st, err := ddt.Struct([]int{3, 1}, []int64{0, 16}, []*ddt.Type{ddt.Int32, ddt.Float64})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestBcastDerivedDatatype broadcasts a gapped struct image: collectives
// compose with the datatype engine.
func TestBcastDerivedDatatype(t *testing.T) {
	st := structSimpleDDT(t)
	dt := FromDDT(st)
	const count = 25
	err := Run(3, Options{}, func(c *Comm) error {
		img := make([]byte, st.Span(count))
		if c.Rank() == 1 {
			copy(img, pattern(int(st.Span(count)), 9))
		}
		if err := c.Bcast(img, count, dt, 1); err != nil {
			return err
		}
		// Compare packed forms (gaps don't travel).
		want := make([]byte, st.PackedSize(count))
		ref := pattern(int(st.Span(count)), 9)
		st.Pack(ref, count, want)
		got := make([]byte, st.PackedSize(count))
		st.Pack(img, count, got)
		if !bytes.Equal(got, want) {
			return fmt.Errorf("rank %d: ddt bcast mismatch", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
