package core

import (
	"fmt"
	"sync"

	"mpicd/internal/ddt"
	"mpicd/internal/fabric"
	"mpicd/internal/ucp"
)

// Count is the element/byte count type (MPI_Count).
type Count = int64

// CustomHandler is the Go mirror of the paper's MPI_Type_create_custom
// callback set (Listings 2-5). One handler describes how buffers of an
// application type are serialized:
//
//   - State/FreeState    — MPI_Type_custom_state_function / _state_free_:
//     per-operation state bound to one buffer;
//   - PackedSize         — MPI_Type_custom_query_function: total bytes the
//     pack callbacks will produce (the in-band, packed part);
//   - Pack/Unpack        — MPI_Type_custom_pack/unpack_function: move the
//     packed part fragment by fragment at virtual byte offsets. Pack may
//     underfill dst (return used < len(dst)); the engine continues at
//     offset+used;
//   - RegionCount/Regions — MPI_Type_custom_region_count/region_function:
//     expose contiguous memory regions sent/received zero-copy after the
//     packed part.
//
// Every callback may fail; errors propagate to both ends of the transfer
// (the paper's MPI_SUCCESS / error-value convention). On the receive side
// the same handler runs against the receive buffer: Unpack reconstructs
// the packed part and Regions returns writable destination regions.
//
// Concurrency contract: unless the type is created WithInOrder, Pack and
// Unpack must tolerate being called at arbitrary — including concurrent —
// disjoint offsets against one state. The transport exploits this to
// stripe large rendezvous pulls across cores; inorder types are always
// driven sequentially at strictly increasing offsets.
type CustomHandler interface {
	// State allocates per-operation state for (buf, count); it may return
	// nil for stateless types.
	State(buf any, count Count) (state any, err error)
	// FreeState releases state when the operation completes.
	FreeState(state any) error
	// PackedSize returns the total packed-part size in bytes.
	PackedSize(state any, buf any, count Count) (Count, error)
	// Pack fills dst with packed bytes starting at virtual offset offset
	// and returns how many bytes it produced.
	Pack(state any, buf any, count Count, offset Count, dst []byte) (used Count, err error)
	// Unpack consumes a packed-part fragment at virtual offset offset.
	Unpack(state any, buf any, count Count, offset Count, src []byte) error
	// RegionCount returns how many memory regions the buffer exposes.
	RegionCount(state any, buf any, count Count) (Count, error)
	// Regions fills regions (length RegionCount) with the buffer's memory
	// regions, in wire order.
	Regions(state any, buf any, count Count, regions [][]byte) error
}

type kind int

const (
	kindBytes kind = iota
	kindDDT
	kindCustom
)

// Datatype is an MPI-level datatype: raw bytes, a derived datatype
// (classic typemap engine) or a custom serialization handler (the paper's
// contribution).
type Datatype struct {
	name    string
	kind    kind
	elem    *ddt.Type
	plan    *ddt.Plan // compiled pack program (kindDDT)
	handler CustomHandler
	inorder bool
}

// TypeBytes is the predefined MPI_BYTE-like datatype: buffers are []byte
// and count is a byte count (negative count means the whole slice).
var TypeBytes = &Datatype{name: "bytes", kind: kindBytes}

// FromDDT wraps a derived datatype built with package ddt. Buffers are
// []byte images in the type's C layout. This is the commit point: the
// type's plan is compiled (or fetched from the plan cache) here, so every
// subsequent pack, unpack and region extraction runs compiled kernels.
func FromDDT(t *ddt.Type) *Datatype {
	return &Datatype{name: t.Name(), kind: kindDDT, elem: t, plan: t.Plan()}
}

// CustomOption configures TypeCreateCustom.
type CustomOption func(*Datatype)

// WithInOrder sets the paper's inorder flag: unpack callbacks observe
// strictly increasing offsets and regions are resolved only after the
// packed part has been fully unpacked (required when the region layout
// depends on unpacked metadata, e.g. serialized dynamic objects).
func WithInOrder() CustomOption {
	return func(d *Datatype) { d.inorder = true }
}

// WithName names the type for diagnostics.
func WithName(name string) CustomOption {
	return func(d *Datatype) { d.name = name }
}

// TypeCreateCustom mirrors MPI_Type_create_custom: it builds a datatype
// from an application-provided serialization handler.
func TypeCreateCustom(h CustomHandler, opts ...CustomOption) *Datatype {
	d := &Datatype{name: "custom", kind: kindCustom, handler: h}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Name returns the datatype's debug name.
func (d *Datatype) Name() string { return d.name }

// DDT returns the underlying derived datatype, if any.
func (d *Datatype) DDT() *ddt.Type { return d.elem }

// transport lowers the MPI datatype to the transport datatype.
func (d *Datatype) transport() ucp.Datatype {
	switch d.kind {
	case kindBytes:
		return ucp.Contig{}
	case kindDDT:
		if d.elem.Contig() {
			return contigDDT{d.elem}
		}
		plan := d.plan
		if plan == nil {
			plan = d.elem.Plan()
		}
		return ddtType{t: d.elem, plan: plan}
	default:
		return customType{d}
	}
}

// extent returns bytes-per-element for count accounting, where defined.
func (d *Datatype) elemSize() int64 {
	switch d.kind {
	case kindBytes:
		return 1
	case kindDDT:
		return d.elem.Size()
	default:
		return 0 // element size is handler-defined
	}
}

// --- derived datatype adapters ----------------------------------------------

// contigDDT maps a fully contiguous derived type straight onto the
// contiguous transport datatype: memory layout equals packed layout, so no
// engine involvement is needed (Open MPI's contiguous fast path).
type contigDDT struct{ t *ddt.Type }

func (c contigDDT) bytes(buf any, count int64) (any, int64, error) {
	b, ok := buf.([]byte)
	if !ok {
		return nil, 0, fmt.Errorf("core: derived datatype requires a []byte image, got %T", buf)
	}
	size := c.t.PackedSize(count)
	if int64(len(b)) < size {
		return nil, 0, fmt.Errorf("core: buffer of %d bytes cannot hold %d x %s", len(b), count, c.t.Name())
	}
	return b[:size], size, nil
}

func (c contigDDT) SendState(buf any, count int64) (ucp.SendState, error) {
	b, size, err := c.bytes(buf, count)
	if err != nil {
		return nil, err
	}
	return ucp.Contig{}.SendState(b, size)
}

func (c contigDDT) RecvState(buf any, count int64, info ucp.RecvInfo) (ucp.RecvState, error) {
	b, size, err := c.bytes(buf, count)
	if err != nil {
		return nil, err
	}
	return ucp.Contig{}.RecvState(b, size, info)
}

// ddtType lowers a non-contiguous derived datatype per operation: small
// or fragmented layouts stream through the generic pack path (compiled
// plan kernels behind ucp.PackState); large layouts with substantial
// contiguous runs are exposed as a memory-region list instead, so the
// rendezvous pull moves them zero-copy like the paper's custom types.
type ddtType struct {
	t    *ddt.Type
	plan *ddt.Plan
}

// Region-path thresholds: worth bypassing the pack kernels only when the
// message is rendezvous-sized and the average region is long enough that
// per-region bookkeeping beats one packed copy.
const (
	ddtRegionMinTotal = 32 << 10 // below this, eager + pack always wins
	ddtRegionMinAvg   = 1 << 10  // average contiguous run length floor
	ddtRegionMaxCount = 1 << 16  // iovec bookkeeping ceiling
)

func (dt ddtType) useRegions(count int64) bool {
	n := dt.plan.RegionCount(count)
	if n <= 1 || n > ddtRegionMaxCount {
		return false
	}
	total := dt.plan.PackedSize(count)
	return total >= ddtRegionMinTotal && total/n >= ddtRegionMinAvg
}

// regionState builds the pooled iovec view of (b, count); Finish returns
// the scratch to the pool shared with the custom-datatype engine.
func (dt ddtType) regionState(b []byte, count int64) (*ddtIovState, error) {
	sp := getRegionScratch(dt.plan.RegionCount(count))
	regs, err := dt.plan.AppendRegions((*sp)[:0], b, count)
	if err != nil {
		putRegionScratch(sp)
		return nil, err
	}
	*sp = regs
	return &ddtIovState{iov: fabric.NewIov(regs), scratch: sp}, nil
}

func (dt ddtType) SendState(buf any, count int64) (ucp.SendState, error) {
	if b, ok := buf.([]byte); ok && dt.useRegions(count) {
		return dt.regionState(b, count)
	}
	return ucp.Generic{Ops: ddtOps{t: dt.t, plan: dt.plan}}.SendState(buf, count)
}

func (dt ddtType) RecvState(buf any, count int64, info ucp.RecvInfo) (ucp.RecvState, error) {
	if b, ok := buf.([]byte); ok && dt.useRegions(count) {
		return dt.regionState(b, count)
	}
	return ucp.Generic{Ops: ddtOps{t: dt.t, plan: dt.plan}}.RecvState(buf, count, info)
}

// ddtIovState serves both directions: the wire stream is the packed byte
// order either way, so sender and receiver choose pack vs. regions
// independently. Window gives the rendezvous pull direct (zero-copy)
// access to the application buffer.
type ddtIovState struct {
	iov     *fabric.Iov
	scratch *[][]byte
}

func (s *ddtIovState) Size() int64                               { return s.iov.Size() }
func (s *ddtIovState) ReadAt(dst []byte, off int64) (int, error) { return s.iov.ReadAt(dst, off) }
func (s *ddtIovState) WriteAt(src []byte, off int64) (int, error) {
	return s.iov.WriteAt(src, off)
}
func (s *ddtIovState) Window(off, n int64) ([]byte, bool) { return s.iov.Window(off, n) }
func (s *ddtIovState) NumRegions() int                    { return s.iov.NumRegions() }

func (s *ddtIovState) Finish() error {
	if s.scratch != nil {
		putRegionScratch(s.scratch)
		s.scratch = nil
	}
	return nil
}

// ddtOps drives the compiled plan through the transport's generic
// datatype (ucp.PackState): the descendant of the Open MPI / RSMPI
// derived-datatype send path the paper benchmarks as "rsmpi", now backed
// by plan kernels instead of the typemap interpreter.
type ddtOps struct {
	t    *ddt.Type
	plan *ddt.Plan
}

type ddtPackState struct {
	plan  *ddt.Plan
	buf   []byte
	count int64
}

func (o ddtOps) StartPack(buf any, count int64) (ucp.PackState, error) {
	b, ok := buf.([]byte)
	if !ok {
		return nil, fmt.Errorf("core: derived datatype requires a []byte image, got %T", buf)
	}
	return &ddtPackState{plan: o.plan, buf: b, count: count}, nil
}

func (o ddtOps) StartUnpack(buf any, count int64) (ucp.UnpackState, error) {
	b, ok := buf.([]byte)
	if !ok {
		return nil, fmt.Errorf("core: derived datatype requires a []byte image, got %T", buf)
	}
	return &ddtPackState{plan: o.plan, buf: b, count: count}, nil
}

func (s *ddtPackState) PackedSize() (int64, error)   { return s.plan.PackedSize(s.count), nil }
func (s *ddtPackState) UnpackedSize() (int64, error) { return s.plan.PackedSize(s.count), nil }

func (s *ddtPackState) Pack(off int64, dst []byte) (int, error) {
	return s.plan.PackAt(s.buf, s.count, off, dst)
}

func (s *ddtPackState) Unpack(off int64, src []byte) error {
	return s.plan.UnpackAt(s.buf, s.count, off, src)
}

func (s *ddtPackState) Finish() error { return nil }

// --- custom datatype engine ---------------------------------------------------

// customType adapts a custom handler to the transport. The wire image of a
// message is the packed part followed by the raw memory regions, exactly
// as the prototype lays out its UCP iovec (packed buffer first, then the
// region pointers).
type customType struct{ d *Datatype }

// customSendState is the send-side binding.
type customSendState struct {
	h      CustomHandler
	state  any
	src    *fabric.Concat
	packed int64
	nreg   int
}

func (c customType) SendState(buf any, count int64) (ucp.SendState, error) {
	h := c.d.handler
	state, err := h.State(buf, count)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (ucp.SendState, error) {
		h.FreeState(state)
		return nil, err
	}
	packed, err := h.PackedSize(state, buf, count)
	if err != nil {
		return fail(err)
	}
	if packed < 0 {
		return fail(fmt.Errorf("core: negative packed size %d", packed))
	}
	nreg, err := h.RegionCount(state, buf, count)
	if err != nil {
		return fail(err)
	}
	if nreg < 0 {
		return fail(fmt.Errorf("core: negative region count %d", nreg))
	}
	regions := make([][]byte, nreg)
	if nreg > 0 {
		if err := h.Regions(state, buf, count, regions); err != nil {
			return fail(err)
		}
	}
	parts := make([]fabric.Source, 0, 2)
	if packed > 0 {
		parts = append(parts, &packSrc{h: h, state: state, buf: buf, count: count, size: packed})
	}
	if nreg > 0 {
		parts = append(parts, fabric.NewIov(regions))
	}
	return &customSendState{
		h:      h,
		state:  state,
		src:    fabric.NewConcatSource(parts...),
		packed: packed,
		nreg:   int(nreg),
	}, nil
}

func (s *customSendState) Size() int64                             { return s.src.Size() }
func (s *customSendState) ReadAt(d []byte, off int64) (int, error) { return s.src.ReadAt(d, off) }
func (s *customSendState) Window(off, n int64) ([]byte, bool)      { return s.src.Window(off, n) }
func (s *customSendState) NumRegions() int                         { return s.nreg + 1 }
func (s *customSendState) Finish() error                           { return s.h.FreeState(s.state) }

// Aux implements ucp.AuxProvider: the receiver learns the packed-part
// length from the message header.
func (s *customSendState) Aux() int64 { return s.packed }

// ChooseProto implements ucp.ProtoChooser. Region-bearing custom types
// ride the iovec (pull) path as soon as messages are non-trivial — only
// the pull path gives the regions zero-copy treatment, and it is why the
// paper's custom method is insensitive to the eager/rendezvous
// switchover. Pure-pack custom types (no regions) behave like the
// contiguous path but switch earlier, so their curve has no discontinuity
// at the classic threshold either.
func (s *customSendState) ChooseProto(total, rndvThresh, iovMin int64) ucp.Proto {
	if s.nreg > 0 {
		if total >= iovMin {
			return ucp.ProtoRndv
		}
		return ucp.ProtoEager
	}
	if total >= rndvThresh/4 {
		return ucp.ProtoRndv
	}
	return ucp.ProtoEager
}

// packSrc streams the packed part through the handler's Pack callback.
type packSrc struct {
	h     CustomHandler
	state any
	buf   any
	count int64
	size  int64
}

func (p *packSrc) Size() int64 { return p.size }

func (p *packSrc) ReadAt(dst []byte, off int64) (int, error) {
	if rem := p.size - off; int64(len(dst)) > rem {
		dst = dst[:rem]
	}
	if len(dst) == 0 {
		return 0, nil
	}
	used, err := p.h.Pack(p.state, p.buf, p.count, off, dst)
	return int(used), err
}

// customRecvState is the receive-side binding.
type customRecvState struct {
	h     CustomHandler
	state any
	sink  *fabric.Concat
}

func (c customType) RecvState(buf any, count int64, info ucp.RecvInfo) (ucp.RecvState, error) {
	h := c.d.handler
	state, err := h.State(buf, count)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (ucp.RecvState, error) {
		h.FreeState(state)
		return nil, err
	}
	packed := info.Aux
	if packed < 0 || packed > info.Total {
		return fail(fmt.Errorf("core: invalid packed-part length %d for %d-byte message", packed, info.Total))
	}
	regionSize := info.Total - packed
	parts := make([]fabric.Sink, 0, 2)
	if packed > 0 {
		parts = append(parts, &unpackSink{h: h, state: state, buf: buf, count: count, size: packed})
	}
	if regionSize > 0 {
		resolve := func() (*fabric.Iov, error) {
			nreg, err := h.RegionCount(state, buf, count)
			if err != nil {
				return nil, err
			}
			regions := make([][]byte, nreg)
			if err := h.Regions(state, buf, count, regions); err != nil {
				return nil, err
			}
			iov := fabric.NewIov(regions)
			if iov.Size() != regionSize {
				return nil, fmt.Errorf("core: receive regions total %d bytes, message carries %d", iov.Size(), regionSize)
			}
			return iov, nil
		}
		if c.d.inorder {
			// Region layout may depend on unpacked metadata: defer
			// resolution until the packed part has been consumed.
			parts = append(parts, &lazyRegionSink{size: regionSize, resolve: resolve})
		} else {
			iov, err := resolve()
			if err != nil {
				return fail(err)
			}
			parts = append(parts, iov)
		}
	}
	return &customRecvState{
		h:     h,
		state: state,
		sink:  fabric.NewConcatSink(c.d.inorder, parts...),
	}, nil
}

func (s *customRecvState) Size() int64 { return s.sink.Size() }
func (s *customRecvState) WriteAt(src []byte, off int64) (int, error) {
	return s.sink.WriteAt(src, off)
}
func (s *customRecvState) Window(off, n int64) ([]byte, bool) { return s.sink.Window(off, n) }
func (s *customRecvState) Sequential() bool                   { return s.sink.Sequential() }
func (s *customRecvState) Finish() error                      { return s.h.FreeState(s.state) }

// unpackSink feeds packed-part fragments to the handler's Unpack callback.
type unpackSink struct {
	h     CustomHandler
	state any
	buf   any
	count int64
	size  int64
}

func (u *unpackSink) Size() int64 { return u.size }

func (u *unpackSink) WriteAt(src []byte, off int64) (int, error) {
	if err := u.h.Unpack(u.state, u.buf, u.count, off, src); err != nil {
		return 0, err
	}
	return len(src), nil
}

// lazyRegionSink resolves receive regions on first access, which — under
// in-order delivery — happens only after the packed part was unpacked.
// It reports Sequential, so the transport never stripes across it; the
// mutex only guards the one-shot resolution against misuse.
type lazyRegionSink struct {
	size    int64
	resolve func() (*fabric.Iov, error)

	mu  sync.Mutex
	iov *fabric.Iov
	err error
}

func (l *lazyRegionSink) materialize() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.iov == nil && l.err == nil {
		l.iov, l.err = l.resolve()
	}
	return l.err
}

func (l *lazyRegionSink) Size() int64 { return l.size }

func (l *lazyRegionSink) WriteAt(src []byte, off int64) (int, error) {
	if err := l.materialize(); err != nil {
		return 0, err
	}
	return l.iov.WriteAt(src, off)
}

// Window implements fabric.DirectSink so the rendezvous pull can scatter
// straight into the application's regions.
func (l *lazyRegionSink) Window(off, n int64) ([]byte, bool) {
	if l.materialize() != nil {
		return nil, false
	}
	return l.iov.Window(off, n)
}

// Sequential implements fabric.SequentialSink: lazy resolution is only
// sound when the packed part is consumed first.
func (l *lazyRegionSink) Sequential() bool { return true }
