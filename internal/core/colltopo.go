package core

// Topology-aware collective schedules. With CollTuning.Topology set, the
// communicator knows which ranks share a node (a shared-memory domain
// under the SHM provider) and which pairs talk over sockets. Small
// latency-bound collectives then run hierarchically:
//
//	Bcast:     root → binomial tree over node leaders → intra-node
//	           binomial fan-out. The payload crosses the inter-node tier
//	           once per node instead of once per subtree rank.
//	Allreduce: intra-node binomial reduce to each leader → leader
//	           reduce + broadcast over the inter-node tier → intra-node
//	           binomial fan-out of the result.
//
// Only the whole-message small-payload paths reroute: the pipelined
// Bcast, ring Allgather and Rabenseifner Allreduce are bandwidth
// schedules whose per-byte cost already amortizes the tier difference,
// so they stay flat. Every phase runs over an explicit rank list with a
// distinct tag seq, keeping the phases of one epoch unmatchable against
// each other.

// topoPlan is the resolved hierarchy for one collective call: this
// rank's node peers and the per-node leaders.
type topoPlan struct {
	nodeRanks []int // communicator ranks sharing this rank's node, ascending
	leaders   []int // one leader rank per node, ascending
	myNode    int   // index into leaders of this rank's node leader
}

// topoPlan resolves the communicator's topology into a hierarchy, or nil
// when the flat schedules should run: no placement configured, placement
// that does not fit this communicator (tuning inherited through
// Dup/Split keeps the parent's NodeOf), a single node, or one rank per
// node (both degenerate hierarchies reduce to the flat tree anyway).
func (c *Comm) topoPlan() *topoPlan {
	topo := c.collTuning().Topology
	n := c.Size()
	if topo == nil || len(topo.NodeOf) != n {
		return nil
	}
	myNode := topo.NodeOf[c.rank]
	p := &topoPlan{}
	seen := make(map[int]int, 8) // node id → index into leaders
	for r := 0; r < n; r++ {
		node := topo.NodeOf[r]
		if _, ok := seen[node]; !ok {
			seen[node] = len(p.leaders)
			p.leaders = append(p.leaders, r) // first rank on a node leads it
		}
		if node == myNode {
			p.nodeRanks = append(p.nodeRanks, r)
		}
	}
	if len(p.leaders) == 1 || len(p.leaders) == n {
		return nil
	}
	p.myNode = seen[myNode]
	return p
}

// leaderFor returns this rank's node leader.
func (p *topoPlan) leaderFor() int { return p.nodeRanks[0] }

// rankIndex returns r's position in ranks, or -1.
func rankIndex(ranks []int, r int) int {
	for i, v := range ranks {
		if v == r {
			return i
		}
	}
	return -1
}

// bcastTreeOver runs a whole-message binomial broadcast over the ranks
// in list, rooted at list position rootIdx. Ranks outside the list do
// not participate. seq separates concurrent phases of one epoch.
func (c *Comm) bcastTreeOver(list []int, rootIdx int, buf any, count Count, dt *Datatype, epoch uint64, seq int) error {
	idx := rankIndex(list, c.rank)
	if idx < 0 {
		return nil
	}
	n := len(list)
	vrank := (idx - rootIdx + n) % n
	parent := -1
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			parent = list[((vrank-mask)+rootIdx)%n]
			break
		}
		mask <<= 1
	}
	if parent >= 0 {
		if err := c.collRecv(buf, count, dt, parent, opBcast, epoch, seq); err != nil {
			return err
		}
	}
	for m := mask >> 1; m > 0; m >>= 1 {
		if vrank+m < n {
			child := list[((vrank+m)+rootIdx)%n]
			if err := c.collSend(buf, count, dt, child, opBcast, epoch, seq); err != nil {
				return err
			}
		}
	}
	return nil
}

// reduceTreeOver runs a whole-message binomial reduce over the ranks in
// list, combining into acc at list position 0. Commutative operators
// only — the tree combines in virtual-rank order. tmp must hold bytes.
func (c *Comm) reduceTreeOver(list []int, acc, tmp []byte, bytes, count Count, dt *Datatype, op ReduceOp, epoch uint64, seq int) error {
	idx := rankIndex(list, c.rank)
	if idx < 0 {
		return nil
	}
	n := len(list)
	for mask := 1; mask < n; mask <<= 1 {
		if idx&mask != 0 {
			return c.collSend(acc, bytes, TypeBytes, list[idx-mask], opReduce, epoch, seq)
		}
		peer := idx + mask
		if peer >= n {
			continue
		}
		if err := c.collRecv(tmp, bytes, TypeBytes, list[peer], opReduce, epoch, seq); err != nil {
			return err
		}
		if err := op.Combine(acc, tmp, count, dt); err != nil {
			return err
		}
	}
	return nil
}

// bcastTopo is the hierarchical whole-message broadcast. The root's node
// leader is replaced by the root itself so the inter-node phase starts
// where the data lives, saving the root→leader hop.
func (c *Comm) bcastTopo(p *topoPlan, buf any, count Count, dt *Datatype, root int, epoch uint64) error {
	topo := c.collTuning().Topology
	rootNode := topo.NodeOf[root]
	// Phase 1 participants: the root stands in for its node's leader.
	leaders := make([]int, len(p.leaders))
	rootIdx := 0
	for i, l := range p.leaders {
		leaders[i] = l
		if topo.NodeOf[l] == rootNode {
			leaders[i] = root
			rootIdx = i
		}
	}
	if err := c.bcastTreeOver(leaders, rootIdx, buf, count, dt, epoch, 0); err != nil {
		return err
	}
	// Phase 2: fan out inside each node from whoever holds the data —
	// the root on its own node, the leader elsewhere.
	intraRoot := p.leaderFor()
	if topo.NodeOf[c.rank] == rootNode {
		intraRoot = root
	}
	ranks := p.nodeRanks
	ri := rankIndex(ranks, intraRoot)
	if ri < 0 {
		return nil
	}
	return c.bcastTreeOver(ranks, ri, buf, count, dt, epoch, 1)
}

// allreduceTopo is the hierarchical small-message allreduce for
// commutative operators: reduce within each node, allreduce across the
// leaders (binomial reduce to the first leader plus broadcast back), and
// fan the result out within each node.
func (c *Comm) allreduceTopo(p *topoPlan, sendBuf, recvBuf []byte, bytes, count Count, dt *Datatype, op ReduceOp, epoch uint64, sc *collScratch) error {
	acc := recvBuf[:bytes]
	copy(acc, sendBuf[:bytes])
	tmp := sc.bufB(bytes)
	if err := c.reduceTreeOver(p.nodeRanks, acc, tmp, bytes, count, dt, op, epoch, 0); err != nil {
		return err
	}
	if c.rank == p.leaderFor() {
		if err := c.reduceTreeOver(p.leaders, acc, tmp, bytes, count, dt, op, epoch, 1); err != nil {
			return err
		}
		if err := c.bcastTreeOver(p.leaders, 0, acc, bytes, TypeBytes, epoch, 2); err != nil {
			return err
		}
	}
	return c.bcastTreeOver(p.nodeRanks, 0, acc, bytes, TypeBytes, epoch, 3)
}
