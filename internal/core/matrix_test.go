package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mpicd/internal/fabric"
	"mpicd/internal/ucp"
)

// TestConfigMatrixProperty drives the full stack — custom dynamic
// datatype over randomized fragment sizes, protocol thresholds, fabric
// ordering and message shapes — and requires exact roundtrips. This is
// the repo's broadest integrity property: any protocol-selection or
// fragmentation bug surfaces here.
func TestConfigMatrixProperty(t *testing.T) {
	dt := TypeCreateCustom(dvHandler{}, WithInOrder())
	check := func(seed int64, fragRaw uint16, threshRaw uint16, ooo bool) bool {
		rng := rand.New(rand.NewSource(seed))
		frag := int(fragRaw)%8000 + 256
		thresh := int64(threshRaw)%100000 + 512
		iovMin := int64(rng.Intn(32768) + 128)
		opt := Options{
			Fabric: fabric.Config{FragSize: frag, OutOfOrder: ooo, Seed: seed},
			UCP:    ucp.Config{FragSize: frag, RndvThresh: thresh, IovRndvMin: iovMin},
		}
		// Random double-vector shape.
		n := rng.Intn(8)
		send := make([][]byte, n)
		for i := range send {
			send[i] = make([]byte, rng.Intn(30000))
			rng.Read(send[i])
		}
		ok := true
		err := Run(2, opt, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(send, 1, dt, 1, 1)
			}
			var recv [][]byte
			if _, err := c.Recv(&recv, 1, dt, 0, 1); err != nil {
				return err
			}
			if len(recv) != len(send) {
				ok = false
				return nil
			}
			for i := range send {
				if !bytes.Equal(recv[i], send[i]) {
					ok = false
					return nil
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestConfigMatrixBytes does the same sweep for plain byte transfers with
// both expected and unexpected arrival orders.
func TestConfigMatrixBytes(t *testing.T) {
	for _, frag := range []int{300, 4096, 65536} {
		for _, thresh := range []int64{600, 32768, 1 << 30} {
			for _, unexpected := range []bool{false, true} {
				name := fmt.Sprintf("frag%d-thresh%d-unex%v", frag, thresh, unexpected)
				t.Run(name, func(t *testing.T) {
					opt := Options{
						Fabric: fabric.Config{FragSize: frag},
						UCP:    ucp.Config{FragSize: frag, RndvThresh: thresh},
					}
					data := pattern(100000, 3)
					run2(t, opt,
						func(c *Comm) error {
							if unexpected {
								// Fire before the receiver posts.
								r, err := c.Isend(data, -1, TypeBytes, 1, 1)
								if err != nil {
									return err
								}
								if err := c.Send([]byte{1}, 1, TypeBytes, 1, 2); err != nil {
									return err
								}
								_, err = r.Wait()
								return err
							}
							return c.Send(data, -1, TypeBytes, 1, 1)
						},
						func(c *Comm) error {
							if unexpected {
								one := make([]byte, 1)
								if _, err := c.Recv(one, 1, TypeBytes, 0, 2); err != nil {
									return err
								}
							}
							out := make([]byte, len(data))
							if _, err := c.Recv(out, -1, TypeBytes, 0, 1); err != nil {
								return err
							}
							if !bytes.Equal(out, data) {
								return fmt.Errorf("roundtrip mismatch")
							}
							return nil
						})
				})
			}
		}
	}
}
