package core

// Recovery-path tracing, enabled by MPICD_DEBUG (the same switch the
// launcher forwards to workers for its own dumps). The revoke/agree
// control plane is fire-and-forget by design, which makes its failures
// silent by design too — these traces exist so a hung cross-process
// recovery can say which half went missing: the flood that was never
// sent, or the notice that was never consumed.

import (
	"fmt"
	"os"
	"sync"
	"time"
)

var ulfmDebugOn = sync.OnceValue(func() bool { return os.Getenv("MPICD_DEBUG") != "" })

func (c *Comm) ulfmTrace(format string, args ...any) {
	if !ulfmDebugOn() {
		return
	}
	fmt.Fprintf(os.Stderr, "%s rank %d ulfm: %s\n",
		time.Now().Format("15:04:05.000"), c.rank, fmt.Sprintf(format, args...))
}
