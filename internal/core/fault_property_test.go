package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFaultExactlyOnceProperty is the robustness property check: under a
// randomly seeded drop+duplicate+reorder+corrupt+truncate plan, every
// transfer — eager and rendezvous, contiguous and custom-with-regions and
// inorder-generic — is delivered exactly once with intact bytes. The
// reliability layer (checksums, retransmission, duplicate suppression)
// must make the lossy fabric indistinguishable from a perfect one.
func TestFaultExactlyOnceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property check is slow under fault injection")
	}
	dtRegions := TypeCreateCustom(recVecHandler{})
	dtInorder := TypeCreateCustom(dvHandler{}, WithInOrder())

	check := func(seed int64, sizeRaw uint16, shape uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(sizeRaw)%40000 + 1
		opt := faultOptions(seed)
		switch shape % 3 {
		case 0: // contiguous bytes (eager or rendezvous depending on size)
			data := pattern(size, byte(seed))
			ok := true
			err := Run(2, opt, func(c *Comm) error {
				if c.Rank() == 0 {
					return c.Send(data, -1, TypeBytes, 1, 1)
				}
				out := make([]byte, size)
				st, err := c.Recv(out, -1, TypeBytes, 0, 1)
				if err != nil {
					return err
				}
				ok = st.Bytes == Count(size) && bytes.Equal(out, data)
				return nil
			})
			return err == nil && ok
		case 1: // custom with memory regions
			send := &recVec{A: int32(seed), B: -1, D: 2.5, Data: pattern(size, byte(seed>>8))}
			ok := true
			err := Run(2, opt, func(c *Comm) error {
				if c.Rank() == 0 {
					return c.Send(send, 1, dtRegions, 1, 1)
				}
				recv := &recVec{Data: make([]byte, size)}
				if _, err := c.Recv(recv, 1, dtRegions, 0, 1); err != nil {
					return err
				}
				ok = recv.A == send.A && recv.B == send.B && recv.D == send.D &&
					bytes.Equal(recv.Data, send.Data)
				return nil
			})
			return err == nil && ok
		default: // inorder dynamic double-vector
			n := rng.Intn(6) + 1
			send := make([][]byte, n)
			for i := range send {
				send[i] = make([]byte, rng.Intn(size+1))
				rng.Read(send[i])
			}
			ok := true
			err := Run(2, opt, func(c *Comm) error {
				if c.Rank() == 0 {
					return c.Send(send, 1, dtInorder, 1, 1)
				}
				var recv [][]byte
				if _, err := c.Recv(&recv, 1, dtInorder, 0, 1); err != nil {
					return err
				}
				if len(recv) != n {
					ok = false
					return nil
				}
				for i := range send {
					if !bytes.Equal(recv[i], send[i]) {
						ok = false
						return nil
					}
				}
				return nil
			})
			return err == nil && ok
		}
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 24}); err != nil {
		t.Fatal(err)
	}
}
