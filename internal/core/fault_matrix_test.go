package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"mpicd/internal/fabric"
	"mpicd/internal/ucp"
)

// faultMatrixSeeds are the fixed seeds CI pins for the fault matrix.
var faultMatrixSeeds = []int64{1, 42, 20240711}

// faultOptions builds an in-process world whose every NIC is wrapped in a
// lossy fault plan (drop + duplicate + reorder + corrupt + truncate), with
// the reliability machinery turned on to recover from it.
func faultOptions(seed int64) Options {
	return Options{
		Fabric: fabric.Config{FragSize: 1024},
		UCP: ucp.Config{
			Reliable:      true,
			Checksum:      true,
			FragSize:      1024,
			RexmitBase:    time.Millisecond,
			RexmitMax:     20 * time.Millisecond,
			RexmitRetries: 200,
		},
		WrapNIC: func(rank int, nic fabric.NIC) fabric.NIC {
			return fabric.WrapFault(nic, fabric.FaultPlan{
				Seed: seed + int64(rank),
				Rules: []fabric.FaultRule{
					{Peer: -1, Action: fabric.Drop, Prob: 0.12},
					{Peer: -1, Action: fabric.Duplicate, Prob: 0.12},
					{Peer: -1, Action: fabric.Reorder, Prob: 0.12},
					{Peer: -1, Action: fabric.Corrupt, Prob: 0.08},
					{Peer: -1, Action: fabric.Truncate, Prob: 0.05, Bytes: 3},
				},
			})
		},
	}
}

// TestFaultMatrixCore drives every datatype class through the lossy world:
// contiguous bytes on both protocols, a custom type with memory regions,
// and the inorder dynamic double-vector. Every transfer must land exactly
// once with intact bytes.
func TestFaultMatrixCore(t *testing.T) {
	leakChecked(t)
	for _, seed := range faultMatrixSeeds {
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			t.Run("bytes-eager", func(t *testing.T) {
				data := pattern(20000, 1)
				run2(t, faultOptions(seed),
					func(c *Comm) error { return c.Send(data, -1, TypeBytes, 1, 1) },
					func(c *Comm) error {
						out := make([]byte, len(data))
						st, err := c.Recv(out, -1, TypeBytes, 0, 1)
						if err != nil {
							return err
						}
						if st.Bytes != Count(len(data)) || !bytes.Equal(out, data) {
							return errors.New("eager bytes corrupted in delivery")
						}
						return nil
					})
			})
			t.Run("bytes-rndv", func(t *testing.T) {
				data := pattern(120000, 2)
				run2(t, faultOptions(seed),
					func(c *Comm) error { return c.Send(data, -1, TypeBytes, 1, 1) },
					func(c *Comm) error {
						out := make([]byte, len(data))
						if _, err := c.Recv(out, -1, TypeBytes, 0, 1); err != nil {
							return err
						}
						if !bytes.Equal(out, data) {
							return errors.New("rendezvous bytes corrupted in delivery")
						}
						return nil
					})
			})
			t.Run("custom-regions", func(t *testing.T) {
				dt := TypeCreateCustom(recVecHandler{})
				send := &recVec{A: 7, B: -9, D: 1.5, Data: pattern(50000, 3)}
				run2(t, faultOptions(seed),
					func(c *Comm) error { return c.Send(send, 1, dt, 1, 1) },
					func(c *Comm) error {
						recv := &recVec{Data: make([]byte, len(send.Data))}
						if _, err := c.Recv(recv, 1, dt, 0, 1); err != nil {
							return err
						}
						if recv.A != 7 || recv.B != -9 || recv.D != 1.5 {
							return fmt.Errorf("packed fields corrupted: %+v", recv)
						}
						if !bytes.Equal(recv.Data, send.Data) {
							return errors.New("region bytes corrupted in delivery")
						}
						return nil
					})
			})
			t.Run("custom-inorder", func(t *testing.T) {
				dt := TypeCreateCustom(dvHandler{}, WithInOrder())
				send := make([][]byte, 12)
				for i := range send {
					send[i] = pattern(2000+i*500, byte(i+1))
				}
				run2(t, faultOptions(seed),
					func(c *Comm) error { return c.Send(send, 1, dt, 1, 1) },
					func(c *Comm) error {
						var recv [][]byte
						if _, err := c.Recv(&recv, 1, dt, 0, 1); err != nil {
							return err
						}
						if len(recv) != len(send) {
							return fmt.Errorf("got %d subvectors, want %d", len(recv), len(send))
						}
						for i := range send {
							if !bytes.Equal(recv[i], send[i]) {
								return fmt.Errorf("subvector %d corrupted in delivery", i)
							}
						}
						return nil
					})
			})
		})
	}
}

// TestWaitTimeoutOnDownLink pins the acceptance criterion: with the peer's
// link held down, Request.WaitTimeout must return ErrTimeout instead of
// hanging.
func TestWaitTimeoutOnDownLink(t *testing.T) {
	leakChecked(t)
	opt := Options{
		UCP: ucp.Config{
			Reliable:      true,
			RexmitBase:    time.Millisecond,
			RexmitMax:     10 * time.Millisecond,
			RexmitRetries: 1 << 30, // never give up: only WaitTimeout bounds the wait
		},
		WrapNIC: func(rank int, nic fabric.NIC) fabric.NIC {
			if rank != 0 {
				return nic
			}
			return fabric.WrapFault(nic, fabric.FaultPlan{Seed: 1, Rules: []fabric.FaultRule{
				{Peer: 1, Action: fabric.LinkDown, Prob: 1, Count: 1, Down: -1},
			}})
		},
	}
	s := NewSystem(2, opt)
	defer s.Close()
	data := pattern(5000, 1)
	r, err := s.Comm(0).Isend(data, -1, TypeBytes, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.WaitTimeout(50 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("WaitTimeout on down link = %v, want ErrTimeout", err)
	}
}
