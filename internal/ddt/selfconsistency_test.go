package ddt

import (
	"bytes"
	"testing"
	"time"
)

// Träff-style self-consistency gate: a derived datatype must never pack
// slower than the equivalent hand-written manual pack. For every
// canonical plan shape we time the compiled plan against a loop a user
// would realistically write for that exact layout, best-of-N with
// retries to damp scheduler noise, and fail if the derived path
// regresses. (The tolerance below absorbs timer jitter only: on these
// memory-bound kernels best-of minimums are stable to a few percent.)

type consistencyCase struct {
	name   string
	typ    *Type
	count  int64
	manual func(dst, src []byte) // the hand-written equivalent
}

func consistencyCases(t testing.TB) []consistencyCase {
	mk := func(typ *Type, err error) *Type {
		if err != nil {
			t.Fatal(err)
		}
		return typ
	}
	// contig: 4 MiB of float64 — manual pack is a single copy.
	contig := mk(Contiguous(1024, Float64))
	// 2D-strided: one column of a 1024x2 float64 matrix per element
	// (blocklen 1, stride 2), 4 MiB packed total — the classic strided
	// gather. Manual pack is the row loop everyone writes.
	strided := mk(Vector(1024, 1, 2, Float64))
	// struct-of-fields: the paper's struct-simple (3 int32 + gap +
	// float64). Manual pack copies the two fields per element.
	strct := mk(Struct([]int{3, 1}, []int64{0, 16}, []*Type{Int32, Float64}))
	// irregular: indexed gather with varying block lengths — manual pack
	// walks an offset table.
	bls := make([]int, 512)
	ds := make([]int, 512)
	at := 0
	for i := range bls {
		bls[i] = 1 + i%3
		ds[i] = at
		at += bls[i] + 1 + i%2
	}
	irregular := mk(Indexed(bls, ds, Float64))

	return []consistencyCase{
		{
			name: "contig", typ: contig, count: 512,
			manual: func(dst, src []byte) { copy(dst, src) },
		},
		{
			name: "strided2d", typ: strided, count: 512,
			manual: func(dst, src []byte) {
				// One element spans 1023 full 16-byte rows plus the final
				// 8-byte block (the vector extent).
				extent := int(strided.Extent())
				w := 0
				for e := 0; e < 512; e++ {
					base := e * extent
					for r := 0; r < 1024; r++ {
						o := base + r*16
						copy(dst[w:w+8], src[o:o+8])
						w += 8
					}
				}
			},
		},
		{
			name: "struct", typ: strct, count: 65536,
			manual: func(dst, src []byte) {
				w := 0
				for e := 0; e < 65536; e++ {
					base := e * 24
					copy(dst[w:w+12], src[base:base+12])
					copy(dst[w+12:w+20], src[base+16:base+24])
					w += 20
				}
			},
		},
		{
			name: "irregular", typ: irregular, count: 64,
			manual: func(dst, src []byte) {
				runs := irregular.Runs()
				extent := int(irregular.Extent())
				w := 0
				for e := 0; e < 64; e++ {
					base := e * extent
					for _, r := range runs {
						o := base + int(r.Off)
						n := int(r.Len)
						copy(dst[w:w+n], src[o:o+n])
						w += n
					}
				}
			},
		},
	}
}

// bestOf times fn reps times and returns the minimum of n trials.
func bestOf(n, reps int, fn func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < n; i++ {
		start := time.Now()
		for j := 0; j < reps; j++ {
			fn()
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func TestPlanSelfConsistencyGate(t *testing.T) {
	if testing.Short() {
		t.Skip("bench gate skipped in short mode")
	}
	const (
		trials    = 5
		reps      = 6
		attempts  = 7
		tolerance = 0.95 // timer-jitter allowance on a ratio gate
	)
	for _, c := range consistencyCases(t) {
		src := fill(c.typ.Span(c.count))
		packed := c.typ.PackedSize(c.count)
		// Both variants pack into the same destination so alignment and
		// page state cannot bias the comparison.
		dst := make([]byte, packed)
		c.typ.Plan() // commit before timing

		var ratio float64
		for attempt := 0; attempt < attempts; attempt++ {
			// Interleave the variants trial by trial: drift (frequency
			// scaling, neighbors on a shared box) hits both evenly.
			manual := time.Duration(1<<62 - 1)
			derived := manual
			for trial := 0; trial < trials; trial++ {
				if d := bestOf(1, reps, func() { c.manual(dst, src) }); d < manual {
					manual = d
				}
				if d := bestOf(1, reps, func() {
					if _, err := c.typ.Pack(src, c.count, dst); err != nil {
						t.Fatal(err)
					}
				}); d < derived {
					derived = d
				}
			}
			ratio = float64(manual) / float64(derived)
			t.Logf("%s: manual %v, derived %v, derived/manual throughput %.2fx (attempt %d)",
				c.name, manual, derived, ratio, attempt+1)
			if ratio >= 1.0 {
				break
			}
		}
		if ratio < tolerance {
			t.Errorf("self-consistency violated for %s: derived pack is %.2fx of manual", c.name, ratio)
		}
		// The gate is also a correctness check: both paths must produce
		// the same bytes.
		dstManual := make([]byte, packed)
		c.manual(dstManual, src)
		if _, err := c.typ.Pack(src, c.count, dst); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dstManual, dst) {
			t.Fatalf("%s: manual and derived packs differ", c.name)
		}
	}
}
