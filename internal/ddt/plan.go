package ddt

// This file is the datatype plan compiler: the TEMPI-style answer to the
// typemap interpreter in engine.go. At commit time a type's flattened run
// list is canonicalized into a small family of strided-block descriptors
// and a specialized kernel is selected once per type:
//
//	PlanContig  — layout equals packed form: one straight copy.
//	PlanBlock   — one fixed-length block per element at stride extent
//	              (vectors with blocklen 1, resized single-run structs).
//	PlanStrided — n equal blocks per element at a fixed inner stride
//	              (vectors, subarray rows): vectorizable inner loops with
//	              4/8/16-byte word moves for small blocks.
//	PlanRunList — irregular typemaps: the interpreter walk, kept as the
//	              fallback (and as the differential-testing oracle).
//
// Uniform plans locate any packed offset in O(1) with div/mod instead of
// the interpreter's binary search, so striped rendezvous fragments pay no
// per-fragment setup. Compiled plans are interned in a concurrent cache
// keyed by a canonical layout hash: structurally identical types (Dup,
// Unmarshal reconstruction, independently built equivalents) share one
// plan and are never recompiled. Each Type additionally memoizes its plan
// pointer, so the pack hot path is a single atomic load — zero
// allocations after first use.

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mpicd/internal/obs"
)

// PlanKind identifies the canonical form a type compiled to.
type PlanKind uint8

// The canonical forms, from most to least specialized.
const (
	PlanContig PlanKind = iota
	PlanBlock
	PlanStrided
	PlanRunList
)

// String names the kind for diagnostics and stats.
func (k PlanKind) String() string {
	switch k {
	case PlanContig:
		return "contig"
	case PlanBlock:
		return "block"
	case PlanStrided:
		return "strided"
	default:
		return "runlist"
	}
}

// Plan is a compiled pack/unpack program for one canonical layout. Plans
// are immutable and safe for concurrent use at arbitrary disjoint offsets
// (the striped rendezvous contract).
type Plan struct {
	kind   PlanKind
	size   int64 // packed bytes per element
	extent int64 // element spacing in the buffer
	ub     int64 // upper bound of one element's runs

	// Uniform geometry (PlanBlock, PlanStrided).
	base     int64 // offset of the first block within an element
	blockLen int64 // bytes per block
	nblocks  int64 // blocks per element
	stride   int64 // byte distance between consecutive block starts

	// Canonical per-element run list (all kinds except PlanContig keep it
	// for region extraction; PlanRunList also packs with it).
	runs []Run
	pre  []int64 // packed-offset prefix of runs

	// prog is the compiled per-element program for the run-list kernels:
	// each run annotated with its move class, so small runs inline as
	// word moves instead of per-run memmove calls. wprog is the flattened
	// wide-move variant (see compileWide) used on all but the final
	// element of a whole-element batch.
	prog  []runStep
	wprog []wideStep

	// merge: the last run of element e ends exactly where the first run of
	// element e+1 begins, so regions coalesce across element boundaries
	// (always true when extent == size).
	merge bool
	// wide: the run-list pack kernel may use spilling wide moves — the
	// <=15-byte dst spill stays inside the element's packed image (a
	// compileWide guarantee) and the src overread is covered by the
	// element extent plus the exact-program final element.
	wide bool
	hash uint64
}

// Kind returns the canonical form the layout compiled to.
func (p *Plan) Kind() PlanKind { return p.kind }

// Hash returns the canonical layout hash the plan cache keys on.
func (p *Plan) Hash() uint64 { return p.hash }

// PackedSize returns the packed byte size of count elements.
func (p *Plan) PackedSize(count int64) int64 { return count * p.size }

// Span returns the number of buffer bytes count elements occupy.
func (p *Plan) Span(count int64) int64 {
	if count <= 0 {
		return 0
	}
	return (count-1)*p.extent + p.ub
}

func (p *Plan) checkBuf(buf []byte, count int64) error {
	if count < 0 {
		return fmt.Errorf("ddt: negative count %d", count)
	}
	if need := p.Span(count); int64(len(buf)) < need {
		return fmt.Errorf("ddt: buffer of %d bytes cannot hold %d elements (%d bytes)", len(buf), count, need)
	}
	return nil
}

// --- compilation -------------------------------------------------------------

// Move classes for one run: selected once at compile time so the
// whole-element kernels replace per-run memmove calls with inlined word
// moves — the difference between a derived type and the constant-size
// copies a hand-written pack compiles to.
const (
	clsTiny   uint8 = iota // 1..3 bytes: byte loop
	clsMove4               // exactly 4 bytes
	clsMove8               // exactly 8 bytes
	clsMove16              // exactly 16 bytes
	clsDual4               // 5..7 bytes: two overlapping 4-byte moves
	clsDual8               // 9..15 bytes: two overlapping 8-byte moves
	clsWords               // 17..128 bytes: 8-byte word loop + overlap tail
	clsCopy                // >128 bytes: memmove wins
)

// runStep is one instruction of the compiled per-element program.
type runStep struct {
	off int64 // source offset within the element
	len int64
	cls uint8
}

func moveClass(n int64) uint8 {
	switch {
	case n < 4:
		return clsTiny
	case n == 4:
		return clsMove4
	case n < 8:
		return clsDual4
	case n == 8:
		return clsMove8
	case n < 16:
		return clsDual8
	case n == 16:
		return clsMove16
	case n <= 128:
		return clsWords
	default:
		return clsCopy
	}
}

func compileProg(runs []Run) []runStep {
	prog := make([]runStep, len(runs))
	for i, r := range runs {
		prog[i] = runStep{off: r.Off, len: r.Len, cls: moveClass(r.Len)}
	}
	return prog
}

// wideStep is one instruction of the flattened wide program: a move of
// class cls reading src (offset within the element) and writing dst
// (packed offset). A clsMove16 step may cover fewer than 16 payload
// bytes (len < 16): the spill is compiled in only when it stays inside
// the element's packed image, on positions later steps rewrite.
type wideStep struct {
	src, dst int64
	len      int64
	cls      uint8
}

// compileWide flattens the run list into a straight-line move program
// (runs up to 128 bytes become 16-byte SSE-width moves; larger runs
// stay memmoves). A run tail shorter than 16 bytes still uses a full
// 16-byte move when the write stays within the element's packed size:
// the <=15 spilled bytes land on packed positions of LATER runs of the
// same element, which later steps overwrite — the packed stream is
// dense. Tails whose 16-byte write would cross the element boundary
// compile to exact move classes instead, so the program never writes
// outside its own element. This makes the program safe to execute in
// any step/element order (the kernels run it run-major, tiled).
// Spilling moves may still READ up to 15 bytes past their run, so
// callers keep the final element of a batch on the exact program.
func compileWide(runs []Run, size int64) []wideStep {
	var prog []wideStep
	w := int64(0)
	for _, r := range runs {
		if r.Len > 128 {
			prog = append(prog, wideStep{src: r.Off, dst: w, len: r.Len, cls: clsCopy})
			w += r.Len
			continue
		}
		k := int64(0)
		for ; k+16 <= r.Len; k += 16 {
			prog = append(prog, wideStep{src: r.Off + k, dst: w + k, len: 16, cls: clsMove16})
		}
		if t := r.Len - k; t > 0 {
			if w+k+16 <= size {
				prog = append(prog, wideStep{src: r.Off + k, dst: w + k, len: 16, cls: clsMove16})
			} else {
				prog = append(prog, wideStep{src: r.Off + k, dst: w + k, len: t, cls: moveClass(t)})
			}
		}
		w += r.Len
	}
	return prog
}

// canonicalRuns coalesces adjacent-in-sequence runs and drops empty ones
// without reordering (pack order is semantic). Constructor-built types are
// already canonical, so the common case returns the input slice unchanged.
func canonicalRuns(runs []Run) []Run {
	clean := true
	for i, r := range runs {
		if r.Len <= 0 || (i > 0 && runs[i-1].Off+runs[i-1].Len == r.Off) {
			clean = false
			break
		}
	}
	if clean {
		return runs
	}
	co := make([]Run, 0, len(runs))
	for _, r := range runs {
		if r.Len <= 0 {
			continue
		}
		if n := len(co); n > 0 && co[n-1].Off+co[n-1].Len == r.Off {
			co[n-1].Len += r.Len
			continue
		}
		co = append(co, r)
	}
	return co
}

// buildPlan selects the canonical form for (extent, ub, canonical runs).
func buildPlan(extent, ub int64, runs []Run) *Plan {
	var size int64
	for _, r := range runs {
		size += r.Len
	}
	p := &Plan{
		size:   size,
		extent: extent,
		ub:     ub,
		runs:   runs,
		pre:    computePrefix(runs),
	}
	switch {
	case len(runs) == 0:
		p.kind = PlanContig
	case len(runs) == 1 && runs[0].Off == 0 && size == extent:
		p.kind = PlanContig
	case len(runs) == 1:
		p.kind = PlanBlock
		p.base = runs[0].Off
		p.blockLen = runs[0].Len
		p.nblocks = 1
		p.stride = extent
	default:
		// Uniform when every run has the same length and the offsets form
		// an arithmetic sequence. Adjacent-in-sequence runs are already
		// coalesced, so a uniform stride never equals the block length.
		uniform := true
		bl := runs[0].Len
		stride := runs[1].Off - runs[0].Off
		for i := 1; i < len(runs); i++ {
			if runs[i].Len != bl || runs[i].Off-runs[i-1].Off != stride {
				uniform = false
				break
			}
		}
		if uniform {
			p.kind = PlanStrided
			p.base = runs[0].Off
			p.blockLen = bl
			p.nblocks = int64(len(runs))
			p.stride = stride
		} else {
			p.kind = PlanRunList
		}
	}
	if p.kind == PlanRunList {
		p.prog = compileProg(runs)
		// The tiled wide kernel needs >=16-byte spill headroom on both
		// sides and only pays off when a tile of elements stays
		// cache-resident: for large extents the run-major interchange
		// re-walks a huge source window once per program step, so those
		// layouts keep the element-major exact program.
		p.wide = size >= 16 && extent >= 16 && extent <= 4096
		if p.wide {
			p.wprog = compileWide(runs, size)
		}
	}
	if p.kind != PlanContig && len(runs) > 0 {
		last := runs[len(runs)-1]
		p.merge = runs[0].Off == 0 && last.Off+last.Len == extent
	}
	return p
}

// --- plan cache --------------------------------------------------------------

// planCacheMax bounds interned plans; real workloads use a handful of
// types, so eviction is a runaway damper, not a tuning knob.
const planCacheMax = 1024

var planCache = struct {
	sync.RWMutex
	m map[uint64][]*Plan
	n int
}{m: make(map[uint64][]*Plan)}

var (
	planHits      atomic.Int64
	planMisses    atomic.Int64
	planCompileNS atomic.Int64
	planEvicts    atomic.Int64
)

// layoutHash is FNV-1a over (extent, canonical run list): the structural
// identity Equal uses, so transfer-equivalent types share one plan.
func layoutHash(extent int64, runs []Run) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(extent))
	mix(uint64(len(runs)))
	for _, r := range runs {
		mix(uint64(r.Off))
		mix(uint64(r.Len))
	}
	return h
}

func runsEqual(a, b []Run) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func cacheGet(h uint64, extent int64, runs []Run) *Plan {
	planCache.RLock()
	defer planCache.RUnlock()
	for _, p := range planCache.m[h] {
		if p.extent == extent && runsEqual(p.runs, runs) {
			return p
		}
	}
	return nil
}

// cachePut interns p, returning the winner if another goroutine compiled
// the same layout first.
func cachePut(p *Plan) *Plan {
	planCache.Lock()
	defer planCache.Unlock()
	for _, q := range planCache.m[p.hash] {
		if q.extent == p.extent && runsEqual(q.runs, p.runs) {
			return q
		}
	}
	// At the cap, evict one bucket before interning. Eviction is safe by
	// construction — plans are immutable and every Type that memoized an
	// evicted plan keeps a valid pointer; the only cost is a recompile if
	// the same layout is requested through a fresh Type later. The
	// planEvicts counter (ddt.plan_evictions gauge) makes cap churn
	// observable instead of silent.
	if planCache.n >= planCacheMax {
		for k, ps := range planCache.m {
			if k == p.hash {
				continue // never evict the bucket we are about to fill
			}
			planCache.n -= len(ps)
			planEvicts.Add(int64(len(ps)))
			delete(planCache.m, k)
			break
		}
	}
	planCache.m[p.hash] = append(planCache.m[p.hash], p)
	planCache.n++
	return p
}

// planForLayout is the cache front door: canonicalize, hash, look up,
// compile on miss.
func planForLayout(extent, ub int64, runs []Run) *Plan {
	canon := canonicalRuns(runs)
	h := layoutHash(extent, canon)
	if p := cacheGet(h, extent, canon); p != nil {
		planHits.Add(1)
		return p
	}
	start := time.Now()
	p := buildPlan(extent, ub, canon)
	p.hash = h
	planCompileNS.Add(time.Since(start).Nanoseconds())
	planMisses.Add(1)
	return cachePut(p)
}

// Plan returns the type's compiled plan, compiling (or fetching the
// interned equivalent) on first use. The result is memoized, so steady-
// state callers pay one atomic load and zero allocations.
func (t *Type) Plan() *Plan {
	if p := t.plan.Load(); p != nil {
		return p
	}
	p := planForLayout(t.extent, t.ub, t.runs)
	t.plan.Store(p)
	return p
}

// PlanCacheStats reports cumulative plan-cache counters: cache hits,
// compiles (misses) and total nanoseconds spent compiling.
func PlanCacheStats() (hits, misses, compileNS int64) {
	return planHits.Load(), planMisses.Load(), planCompileNS.Load()
}

// PlanCacheSize returns the number of interned plans.
func PlanCacheSize() int {
	planCache.RLock()
	defer planCache.RUnlock()
	return planCache.n
}

// PlanCacheEvictions reports how many interned plans have been evicted
// at the planCacheMax cap. A nonzero value under a steady workload means
// the working set of distinct layouts exceeds the cache bound and plans
// are being recompiled.
func PlanCacheEvictions() int64 { return planEvicts.Load() }

// PlanCacheCap returns the intern bound (eviction threshold).
func PlanCacheCap() int { return planCacheMax }

// ResetPlanCache drops every interned plan and zeroes the counters. It is
// for tests and ablation benchmarks; types keep their memoized plans.
func ResetPlanCache() {
	planCache.Lock()
	planCache.m = make(map[uint64][]*Plan)
	planCache.n = 0
	planCache.Unlock()
	planHits.Store(0)
	planMisses.Store(0)
	planCompileNS.Store(0)
	planEvicts.Store(0)
}

// RegisterObs exposes the plan-cache counters as live gauges on r
// (ddt.plan_hits / ddt.plan_misses / ddt.plan_compile_ns /
// ddt.plan_cache_size / ddt.plan_evictions), visible in registry
// snapshots.
func RegisterObs(r *obs.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("ddt.plan_hits", planHits.Load)
	r.GaugeFunc("ddt.plan_misses", planMisses.Load)
	r.GaugeFunc("ddt.plan_compile_ns", planCompileNS.Load)
	r.GaugeFunc("ddt.plan_cache_size", func() int64 { return int64(PlanCacheSize()) })
	r.GaugeFunc("ddt.plan_evictions", planEvicts.Load)
}

// --- pack kernels ------------------------------------------------------------

// PackAt packs up to len(dst) bytes of the packed form of (src, count)
// starting at virtual packed offset off, returning the bytes produced and
// io.EOF exactly when the stream end was reached. Semantics match the
// interpreter entry in engine.go; only the kernel differs.
func (p *Plan) PackAt(src []byte, count int64, off int64, dst []byte) (int, error) {
	total := p.PackedSize(count)
	if off < 0 || off > total {
		return 0, fmt.Errorf("ddt: pack offset %d out of [0,%d]", off, total)
	}
	if err := p.checkBuf(src, count); err != nil {
		return 0, err
	}
	if rem := total - off; int64(len(dst)) > rem {
		dst = dst[:rem]
	}
	if len(dst) == 0 {
		if off == total {
			return 0, io.EOF
		}
		return 0, nil
	}
	var w int
	switch p.kind {
	case PlanContig:
		return copy(dst, src[off:]), nil
	case PlanBlock, PlanStrided:
		w = p.packAtUniform(src, count, off, dst)
	default:
		w = p.packAtRuns(src, count, off, dst)
	}
	if off+int64(w) == total {
		return w, io.EOF
	}
	return w, nil
}

// UnpackAt scatters the packed bytes in src at virtual packed offset off
// back into the memory layout of (dst, count).
func (p *Plan) UnpackAt(dst []byte, count int64, off int64, src []byte) error {
	total := p.PackedSize(count)
	if off < 0 || off+int64(len(src)) > total {
		return fmt.Errorf("ddt: unpack range [%d,%d) out of [0,%d]", off, off+int64(len(src)), total)
	}
	if err := p.checkBuf(dst, count); err != nil {
		return err
	}
	if len(src) == 0 {
		return nil
	}
	switch p.kind {
	case PlanContig:
		copy(dst[off:], src)
	case PlanBlock, PlanStrided:
		p.unpackAtUniform(dst, count, off, src)
	default:
		p.unpackAtRuns(dst, count, off, src)
	}
	return nil
}

// Pack packs count elements of src into dst (one-shot convenience).
func (p *Plan) Pack(src []byte, count int64, dst []byte) (int64, error) {
	total := p.PackedSize(count)
	if int64(len(dst)) < total {
		return 0, fmt.Errorf("ddt: pack destination too small (%d < %d)", len(dst), total)
	}
	n, err := p.PackAt(src, count, 0, dst[:total])
	if err == io.EOF {
		err = nil
	}
	if err == nil && int64(n) != total {
		err = fmt.Errorf("ddt: short pack (%d of %d bytes)", n, total)
	}
	return int64(n), err
}

// Unpack scatters the packed bytes in src into count elements at dst.
func (p *Plan) Unpack(dst []byte, count int64, src []byte) error {
	if int64(len(src)) != p.PackedSize(count) {
		return fmt.Errorf("ddt: unpack source is %d bytes, want %d", len(src), p.PackedSize(count))
	}
	return p.UnpackAt(dst, count, 0, src)
}

// packAtUniform is the PlanBlock/PlanStrided kernel: O(1) offset location
// (div/mod), then whole blocks through specialized word-move loops. dst is
// pre-trimmed to the remaining stream, so the kernel always fills it.
func (p *Plan) packAtUniform(src []byte, count int64, off int64, dst []byte) int {
	L := p.blockLen
	elem := off / p.size
	within := off - elem*p.size
	bi := within / L
	rem := within - bi*L
	w := 0
	if rem > 0 {
		// Resume mid-block: finish the split block first.
		so := elem*p.extent + p.base + bi*p.stride + rem
		n := copy(dst, src[so:so+(L-rem)])
		w += n
		if int64(n) < L-rem {
			return w
		}
		bi++
		if bi == p.nblocks {
			bi, elem = 0, elem+1
		}
	}
	if nb := int64(len(dst)-w) / L; nb > 0 {
		var n int
		n, elem, bi = p.packWholeBlocks(dst[w:], src, elem, bi, nb)
		w += n
	}
	if w < len(dst) && elem < count {
		// Trailing partial block.
		so := elem*p.extent + p.base + bi*p.stride
		w += copy(dst[w:], src[so:so+L])
	}
	return w
}

func (p *Plan) unpackAtUniform(dst []byte, count int64, off int64, src []byte) {
	L := p.blockLen
	elem := off / p.size
	within := off - elem*p.size
	bi := within / L
	rem := within - bi*L
	r := 0
	if rem > 0 {
		do := elem*p.extent + p.base + bi*p.stride + rem
		n := copy(dst[do:do+(L-rem)], src)
		r += n
		if int64(n) < L-rem {
			return
		}
		bi++
		if bi == p.nblocks {
			bi, elem = 0, elem+1
		}
	}
	if nb := int64(len(src)-r) / L; nb > 0 {
		var n int
		n, elem, bi = p.unpackWholeBlocks(dst, src[r:], elem, bi, nb)
		r += n
	}
	if r < len(src) && elem < count {
		do := elem*p.extent + p.base + bi*p.stride
		copy(dst[do:do+L], src[r:])
	}
}

// packWholeBlocks copies nb whole blocks starting at (elem, bi) into dst
// and returns the bytes moved plus the advanced cursor. Blocks of 4/8/16
// bytes (int32/float64/complex128 and friends) move as direct word loads;
// other 8-byte multiples up to 128 move as unrolled word loops; anything
// else falls back to copy.
func (p *Plan) packWholeBlocks(dst, src []byte, elem, bi, nb int64) (int, int64, int64) {
	L, stride := p.blockLen, p.stride
	w := int64(0)
	if p.nblocks == 1 {
		// One block per element: the whole message is a single arithmetic
		// sequence at stride extent.
		so := elem*p.extent + p.base
		switch {
		case L == 4:
			for ; nb > 0; nb-- {
				*(*[4]byte)(dst[w:]) = *(*[4]byte)(src[so:])
				w += 4
				so += p.extent
			}
		case L == 8:
			for ; nb > 0; nb-- {
				*(*[8]byte)(dst[w:]) = *(*[8]byte)(src[so:])
				w += 8
				so += p.extent
			}
		case L == 16:
			for ; nb > 0; nb-- {
				*(*[16]byte)(dst[w:]) = *(*[16]byte)(src[so:])
				w += 16
				so += p.extent
			}
		case L%8 == 0 && L <= 128:
			for ; nb > 0; nb-- {
				for k := int64(0); k < L; k += 8 {
					*(*[8]byte)(dst[w+k:]) = *(*[8]byte)(src[so+k:])
				}
				w += L
				so += p.extent
			}
		default:
			for ; nb > 0; nb-- {
				copy(dst[w:w+L], src[so:so+L])
				w += L
				so += p.extent
			}
		}
		return int(w), (so - p.base) / p.extent, 0
	}
	for nb > 0 {
		so := elem*p.extent + p.base + bi*stride
		m := p.nblocks - bi
		if m > nb {
			m = nb
		}
		nb -= m
		bi += m
		switch {
		case L == 4:
			for ; m > 0; m-- {
				*(*[4]byte)(dst[w:]) = *(*[4]byte)(src[so:])
				w += 4
				so += stride
			}
		case L == 8:
			for ; m > 0; m-- {
				*(*[8]byte)(dst[w:]) = *(*[8]byte)(src[so:])
				w += 8
				so += stride
			}
		case L == 16:
			for ; m > 0; m-- {
				*(*[16]byte)(dst[w:]) = *(*[16]byte)(src[so:])
				w += 16
				so += stride
			}
		case L%8 == 0 && L <= 128:
			for ; m > 0; m-- {
				for k := int64(0); k < L; k += 8 {
					*(*[8]byte)(dst[w+k:]) = *(*[8]byte)(src[so+k:])
				}
				w += L
				so += stride
			}
		default:
			for ; m > 0; m-- {
				copy(dst[w:w+L], src[so:so+L])
				w += L
				so += stride
			}
		}
		if bi == p.nblocks {
			bi, elem = 0, elem+1
		}
	}
	return int(w), elem, bi
}

func (p *Plan) unpackWholeBlocks(dst, src []byte, elem, bi, nb int64) (int, int64, int64) {
	L, stride := p.blockLen, p.stride
	r := int64(0)
	if p.nblocks == 1 {
		do := elem*p.extent + p.base
		switch {
		case L == 4:
			for ; nb > 0; nb-- {
				*(*[4]byte)(dst[do:]) = *(*[4]byte)(src[r:])
				r += 4
				do += p.extent
			}
		case L == 8:
			for ; nb > 0; nb-- {
				*(*[8]byte)(dst[do:]) = *(*[8]byte)(src[r:])
				r += 8
				do += p.extent
			}
		case L == 16:
			for ; nb > 0; nb-- {
				*(*[16]byte)(dst[do:]) = *(*[16]byte)(src[r:])
				r += 16
				do += p.extent
			}
		case L%8 == 0 && L <= 128:
			for ; nb > 0; nb-- {
				for k := int64(0); k < L; k += 8 {
					*(*[8]byte)(dst[do+k:]) = *(*[8]byte)(src[r+k:])
				}
				r += L
				do += p.extent
			}
		default:
			for ; nb > 0; nb-- {
				copy(dst[do:do+L], src[r:r+L])
				r += L
				do += p.extent
			}
		}
		return int(r), (do - p.base) / p.extent, 0
	}
	for nb > 0 {
		do := elem*p.extent + p.base + bi*stride
		m := p.nblocks - bi
		if m > nb {
			m = nb
		}
		nb -= m
		bi += m
		switch {
		case L == 4:
			for ; m > 0; m-- {
				*(*[4]byte)(dst[do:]) = *(*[4]byte)(src[r:])
				r += 4
				do += stride
			}
		case L == 8:
			for ; m > 0; m-- {
				*(*[8]byte)(dst[do:]) = *(*[8]byte)(src[r:])
				r += 8
				do += stride
			}
		case L == 16:
			for ; m > 0; m-- {
				*(*[16]byte)(dst[do:]) = *(*[16]byte)(src[r:])
				r += 16
				do += stride
			}
		case L%8 == 0 && L <= 128:
			for ; m > 0; m-- {
				for k := int64(0); k < L; k += 8 {
					*(*[8]byte)(dst[do+k:]) = *(*[8]byte)(src[r+k:])
				}
				r += L
				do += stride
			}
		default:
			for ; m > 0; m-- {
				copy(dst[do:do+L], src[r:r+L])
				r += L
				do += stride
			}
		}
		if bi == p.nblocks {
			bi, elem = 0, elem+1
		}
	}
	return int(r), elem, bi
}

// packAtRuns is the PlanRunList kernel: a partial leading element walks
// the run list with a runOff carry (streaming resume), whole elements go
// through the class-specialized program, and a partial trailing element
// falls back to the careful walk.
func (p *Plan) packAtRuns(src []byte, count int64, off int64, dst []byte) int {
	elem := off / p.size
	within := off - elem*p.size
	w := 0
	if within > 0 {
		w = p.packElemTail(dst, src, elem, within)
		if within+int64(w) < p.size {
			return w // dst exhausted mid-element
		}
		elem++
	}
	if nE := int64(len(dst)-w) / p.size; nE > 0 {
		if rem := count - elem; nE > rem {
			nE = rem
		}
		w += p.packRunsWhole(dst[w:], src, elem, nE)
		elem += nE
	}
	if w < len(dst) && elem < count {
		w += p.packElemTail(dst[w:], src, elem, 0)
	}
	return w
}

// packElemTail packs element elem from packed offset within to the end
// of the element (or until dst fills), returning the bytes produced.
func (p *Plan) packElemTail(dst, src []byte, elem, within int64) int {
	pre := p.pre
	ri := sort.Search(len(p.runs), func(i int) bool { return pre[i+1] > within })
	runOff := within - pre[ri]
	base := elem * p.extent
	w := 0
	for ; ri < len(p.runs) && w < len(dst); ri++ {
		r := p.runs[ri]
		w += copy(dst[w:], src[base+r.Off+runOff:base+r.Off+r.Len])
		runOff = 0
	}
	return w
}

// packRunsWhole runs the compiled program over n complete elements. dst
// must hold at least n elements of packed data. All but the last element
// go through the wide program when the layout permits, executed
// run-major over tiles of elements: for each program step, a tight loop
// over the tile with constant source/dest strides — one move shape per
// inner loop, the program walk amortized across the tile. Safe in this
// order because compileWide confines every write to its own element;
// the exact final element covers the spill READS (up to 15 bytes past a
// run), which must not run off the end of the source buffer.
func (p *Plan) packRunsWhole(dst, src []byte, elem, n int64) int {
	w := int64(0)
	last := elem + n
	if p.wide && n > 1 {
		const tile = 64
		ext, sz := p.extent, p.size
		nw := n - 1 // final element runs the exact program below
		for t0 := int64(0); t0 < nw; t0 += tile {
			nt := nw - t0
			if nt > tile {
				nt = tile
			}
			sbase := (elem + t0) * ext
			dbase := t0 * sz
			for _, m := range p.wprog {
				so := sbase + m.src
				do := dbase + m.dst
				L := m.len
				switch m.cls {
				case clsMove16:
					for e := int64(0); e < nt; e++ {
						*(*[16]byte)(dst[do:]) = *(*[16]byte)(src[so:])
						so += ext
						do += sz
					}
				case clsMove8:
					for e := int64(0); e < nt; e++ {
						*(*[8]byte)(dst[do:]) = *(*[8]byte)(src[so:])
						so += ext
						do += sz
					}
				case clsMove4:
					for e := int64(0); e < nt; e++ {
						*(*[4]byte)(dst[do:]) = *(*[4]byte)(src[so:])
						so += ext
						do += sz
					}
				case clsDual8:
					for e := int64(0); e < nt; e++ {
						*(*[8]byte)(dst[do:]) = *(*[8]byte)(src[so:])
						*(*[8]byte)(dst[do+L-8:]) = *(*[8]byte)(src[so+L-8:])
						so += ext
						do += sz
					}
				case clsDual4:
					for e := int64(0); e < nt; e++ {
						*(*[4]byte)(dst[do:]) = *(*[4]byte)(src[so:])
						*(*[4]byte)(dst[do+L-4:]) = *(*[4]byte)(src[so+L-4:])
						so += ext
						do += sz
					}
				case clsTiny:
					for e := int64(0); e < nt; e++ {
						for k := int64(0); k < L; k++ {
							dst[do+k] = src[so+k]
						}
						so += ext
						do += sz
					}
				default: // clsCopy
					for e := int64(0); e < nt; e++ {
						copy(dst[do:do+L], src[so:so+L])
						so += ext
						do += sz
					}
				}
			}
		}
		w = nw * sz
		elem = last - 1
	}
	for e := elem; e < last; e++ {
		base := e * p.extent
		for _, s := range p.prog {
			so := base + s.off
			L := s.len
			switch s.cls {
			case clsMove4:
				*(*[4]byte)(dst[w:]) = *(*[4]byte)(src[so:])
			case clsMove8:
				*(*[8]byte)(dst[w:]) = *(*[8]byte)(src[so:])
			case clsMove16:
				*(*[16]byte)(dst[w:]) = *(*[16]byte)(src[so:])
			case clsDual4:
				*(*[4]byte)(dst[w:]) = *(*[4]byte)(src[so:])
				*(*[4]byte)(dst[w+L-4:]) = *(*[4]byte)(src[so+L-4:])
			case clsDual8:
				*(*[8]byte)(dst[w:]) = *(*[8]byte)(src[so:])
				*(*[8]byte)(dst[w+L-8:]) = *(*[8]byte)(src[so+L-8:])
			case clsWords:
				k := int64(0)
				for ; k+8 <= L; k += 8 {
					*(*[8]byte)(dst[w+k:]) = *(*[8]byte)(src[so+k:])
				}
				if k < L {
					*(*[8]byte)(dst[w+L-8:]) = *(*[8]byte)(src[so+L-8:])
				}
			case clsTiny:
				for k := int64(0); k < L; k++ {
					dst[w+k] = src[so+k]
				}
			default:
				copy(dst[w:w+L], src[so:so+L])
			}
			w += L
		}
	}
	return int(w)
}

func (p *Plan) unpackAtRuns(dst []byte, count int64, off int64, src []byte) {
	elem := off / p.size
	within := off - elem*p.size
	r := 0
	if within > 0 {
		r = p.unpackElemTail(dst, src, elem, within)
		if within+int64(r) < p.size {
			return // src exhausted mid-element
		}
		elem++
	}
	if nE := int64(len(src)-r) / p.size; nE > 0 {
		if rem := count - elem; nE > rem {
			nE = rem
		}
		r += p.unpackRunsWhole(dst, src[r:], elem, nE)
		elem += nE
	}
	if r < len(src) && elem < count {
		p.unpackElemTail(dst, src[r:], elem, 0)
	}
}

func (p *Plan) unpackElemTail(dst, src []byte, elem, within int64) int {
	pre := p.pre
	ri := sort.Search(len(p.runs), func(i int) bool { return pre[i+1] > within })
	runOff := within - pre[ri]
	base := elem * p.extent
	r := 0
	for ; ri < len(p.runs) && r < len(src); ri++ {
		run := p.runs[ri]
		r += copy(dst[base+run.Off+runOff:base+run.Off+run.Len], src[r:])
		runOff = 0
	}
	return r
}

func (p *Plan) unpackRunsWhole(dst, src []byte, elem, n int64) int {
	r := int64(0)
	for e := elem; e < elem+n; e++ {
		base := e * p.extent
		for _, s := range p.prog {
			do := base + s.off
			L := s.len
			switch s.cls {
			case clsMove4:
				*(*[4]byte)(dst[do:]) = *(*[4]byte)(src[r:])
			case clsMove8:
				*(*[8]byte)(dst[do:]) = *(*[8]byte)(src[r:])
			case clsMove16:
				*(*[16]byte)(dst[do:]) = *(*[16]byte)(src[r:])
			case clsDual4:
				*(*[4]byte)(dst[do:]) = *(*[4]byte)(src[r:])
				*(*[4]byte)(dst[do+L-4:]) = *(*[4]byte)(src[r+L-4:])
			case clsDual8:
				*(*[8]byte)(dst[do:]) = *(*[8]byte)(src[r:])
				*(*[8]byte)(dst[do+L-8:]) = *(*[8]byte)(src[r+L-8:])
			case clsWords:
				k := int64(0)
				for ; k+8 <= L; k += 8 {
					*(*[8]byte)(dst[do+k:]) = *(*[8]byte)(src[r+k:])
				}
				if k < L {
					*(*[8]byte)(dst[do+L-8:]) = *(*[8]byte)(src[r+L-8:])
				}
			case clsTiny:
				for k := int64(0); k < L; k++ {
					dst[do+k] = src[r+k]
				}
			default:
				copy(dst[do:do+L], src[r:r+L])
			}
			r += L
		}
	}
	return int(r)
}

// --- region extraction -------------------------------------------------------

// RegionCount returns the number of memory regions AppendRegions will
// produce for count elements, after cross-element coalescing.
func (p *Plan) RegionCount(count int64) int64 {
	if count <= 0 || p.size == 0 {
		return 0
	}
	if p.kind == PlanContig {
		return 1
	}
	n := int64(len(p.runs)) * count
	if p.merge {
		n -= count - 1
	}
	return n
}

// AppendRegions appends the memory regions of (buf, count) to dst in pack
// order, merging runs that are adjacent across element boundaries (the
// extent == size case collapses entirely). Callers pass reusable scratch
// with sufficient capacity to keep the operation allocation-free.
func (p *Plan) AppendRegions(dst [][]byte, buf []byte, count int64) ([][]byte, error) {
	if err := p.checkBuf(buf, count); err != nil {
		return nil, err
	}
	if count == 0 || p.size == 0 {
		return dst, nil
	}
	if p.kind == PlanContig {
		return append(dst, buf[:p.PackedSize(count)]), nil
	}
	var prevS, prevE int64 = -1, -1
	for e := int64(0); e < count; e++ {
		base := e * p.extent
		for _, r := range p.runs {
			s := base + r.Off
			if s == prevE {
				prevE = s + r.Len
				continue
			}
			if prevE > prevS {
				dst = append(dst, buf[prevS:prevE])
			}
			prevS, prevE = s, s+r.Len
		}
	}
	if prevE > prevS {
		dst = append(dst, buf[prevS:prevE])
	}
	return dst, nil
}
