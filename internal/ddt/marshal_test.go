package ddt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEqualDifferentConstructorPaths(t *testing.T) {
	// contiguous(6, int32) == vector(3, 2, 2, int32): both are 24
	// contiguous bytes.
	a, _ := Contiguous(6, Int32)
	b, _ := Vector(3, 2, 2, Int32)
	if !Equal(a, b) {
		t.Fatal("equivalent constructions compare unequal")
	}
	// A gap changes the typemap.
	c, _ := Vector(3, 2, 3, Int32)
	if Equal(a, c) {
		t.Fatal("strided type equals contiguous")
	}
	// Extent matters even with identical runs.
	r, _ := Resized(a, 32)
	if Equal(a, r) {
		t.Fatal("resized type equals original")
	}
	if !Equal(nil, nil) || Equal(a, nil) {
		t.Fatal("nil handling")
	}
}

func TestEqualPackOrderSensitive(t *testing.T) {
	// Same byte set, different pack order: not transfer-equivalent.
	a, _ := Indexed([]int{1, 1}, []int{0, 2}, Int32)
	b, _ := Indexed([]int{1, 1}, []int{2, 0}, Int32)
	if Equal(a, b) {
		t.Fatal("reordered indexed types compare equal")
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	types := []*Type{
		Int32,
		Float64,
		mustT(Contiguous(10, Float64)),
		mustT(Vector(4, 2, 5, Int32)),
		mustT(Struct([]int{3, 1}, []int64{0, 16}, []*Type{Int32, Float64})),
		mustT(Subarray([]int{8, 8}, []int{3, 4}, []int{1, 2}, Float64)),
		mustT(Resized(mustT(Struct([]int{1}, []int64{0}, []*Type{Int32})), 64)),
	}
	for _, typ := range types {
		data := typ.Marshal()
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("%s: %v", typ.Name(), err)
		}
		if !Equal(typ, got) {
			t.Fatalf("%s: marshalled type not equivalent", typ.Name())
		}
		if got.Name() != typ.Name() {
			t.Fatalf("%s: name lost", typ.Name())
		}
		// The reconstructed type must pack identically.
		count := int64(3)
		src := fill(typ.Span(count))
		a := make([]byte, typ.PackedSize(count))
		b := make([]byte, typ.PackedSize(count))
		typ.Pack(src, count, a)
		got.Pack(src, count, b)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: reconstructed type packs differently", typ.Name())
		}
	}
}

func mustT(t *Type, err error) *Type {
	if err != nil {
		panic(err)
	}
	return t
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	typ, _ := Struct([]int{3, 1}, []int64{0, 16}, []*Type{Int32, Float64})
	good := typ.Marshal()
	// Truncations.
	for cut := 0; cut < len(good); cut += 3 {
		if _, err := Unmarshal(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Trailing garbage.
	if _, err := Unmarshal(append(append([]byte{}, good...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Inconsistent size field.
	bad = append([]byte{}, good...)
	bad[4] ^= 0xFF
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("inconsistent size accepted")
	}
}

// Property: random nested types survive marshalling with identical
// transfer behaviour.
func TestMarshalProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		typ := randomType(rng, rng.Intn(3)+1)
		got, err := Unmarshal(typ.Marshal())
		if err != nil {
			return false
		}
		return Equal(typ, got) && got.Contig() == typ.Contig()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
