package ddt

import (
	"bytes"
	"io"
	"testing"
)

// planShapes returns one representative type per canonical form. The
// struct shapes mirror the paper's Listing 7 struct-simple (interior
// gap) and a single-field-at-offset block.
func planShapes(t *testing.T) map[string]*Type {
	t.Helper()
	contig, err := Contiguous(10, Int32)
	if err != nil {
		t.Fatal(err)
	}
	block, err := Struct([]int{1}, []int64{8}, []*Type{Float64})
	if err != nil {
		t.Fatal(err)
	}
	strided, err := Vector(3, 2, 4, Float64)
	if err != nil {
		t.Fatal(err)
	}
	runlist, err := Struct([]int{3, 1}, []int64{0, 16}, []*Type{Int32, Float64})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Type{
		"contig":  contig,
		"block":   block,
		"strided": strided,
		"runlist": runlist,
	}
}

func TestPlanKindSelection(t *testing.T) {
	shapes := planShapes(t)
	want := map[string]PlanKind{
		"contig":  PlanContig,
		"block":   PlanBlock,
		"strided": PlanStrided,
		"runlist": PlanRunList,
	}
	for name, typ := range shapes {
		p := typ.Plan()
		if p.Kind() != want[name] {
			t.Errorf("%s: plan kind = %v, want %v", name, p.Kind(), want[name])
		}
		if p.Kind().String() != name {
			t.Errorf("%s: kind string = %q", name, p.Kind().String())
		}
	}
	// Geometry of the strided plan: 3 blocks of 16 bytes, inner stride 32.
	p := shapes["strided"].Plan()
	if p.nblocks != 3 || p.blockLen != 16 || p.stride != 32 || p.base != 0 {
		t.Fatalf("strided geometry: base=%d len=%d n=%d stride=%d", p.base, p.blockLen, p.nblocks, p.stride)
	}
	// Predefined types are contiguous plans.
	if Float64.Plan().Kind() != PlanContig {
		t.Fatal("predefined type must compile to PlanContig")
	}
}

// TestPlanCacheShared verifies the interning contract: structurally
// identical types — Dup, marshal round-trips, independently built
// equivalents — share one compiled plan and never recompile.
func TestPlanCacheShared(t *testing.T) {
	ResetPlanCache()
	v1, _ := Vector(3, 2, 4, Float64)
	v2, _ := Vector(3, 2, 4, Float64)

	p1 := v1.Plan()
	hits0, misses0, _ := PlanCacheStats()
	if misses0 != 1 || hits0 != 0 {
		t.Fatalf("first compile: hits=%d misses=%d, want 0/1", hits0, misses0)
	}
	if p2 := v2.Plan(); p2 != p1 {
		t.Fatal("independently built equivalent type did not share the plan")
	}
	if p3 := v1.Dup().Plan(); p3 != p1 {
		t.Fatal("Dup did not share the plan")
	}
	u, err := Unmarshal(v1.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if p4 := u.Plan(); p4 != p1 {
		t.Fatal("Unmarshal reconstruction did not share the plan")
	}
	hits, misses, _ := PlanCacheStats()
	if misses != 1 {
		t.Fatalf("plan was recompiled: misses = %d", misses)
	}
	if hits != 3 {
		t.Fatalf("cache hits = %d, want 3", hits)
	}
	if n := PlanCacheSize(); n != 1 {
		t.Fatalf("cache size = %d, want 1", n)
	}
	// A different extent (Resized) is a different layout: new plan.
	r, err := Resized(v1, v1.Extent()+8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Plan() == p1 {
		t.Fatal("resized type must not share the plan")
	}
}

// TestPlanCacheEviction: interning is bounded; overflow evicts rather
// than growing without limit, and the evictions are counted rather than
// silent.
func TestPlanCacheEviction(t *testing.T) {
	ResetPlanCache()
	for i := 0; i < planCacheMax+64; i++ {
		typ, err := Vector(2, 1, 2+i, Float64)
		if err != nil {
			t.Fatal(err)
		}
		typ.Plan()
	}
	if n := PlanCacheSize(); n > planCacheMax {
		t.Fatalf("cache size %d exceeds bound %d", n, planCacheMax)
	}
	if ev := PlanCacheEvictions(); ev < 64 {
		t.Fatalf("evictions = %d after %d overflow compiles", ev, 64)
	}
	ResetPlanCache()
	if ev := PlanCacheEvictions(); ev != 0 {
		t.Fatalf("ResetPlanCache left eviction counter at %d", ev)
	}
}

// TestPlanCacheChurn is the regression for behavior at the cap: many
// goroutines churning well past planCacheMax distinct layouts must keep
// the cache bounded, count every eviction in the gauge, leave every
// evicted type's memoized plan fully usable (plans are immutable — no
// stale sharing, no corruption), and recompile an Equal plan when an
// evicted layout comes back through a fresh type. Run under -race.
func TestPlanCacheChurn(t *testing.T) {
	ResetPlanCache()
	defer ResetPlanCache()

	const (
		workers   = 8
		perWorker = (planCacheMax + 512) / workers // > planCacheMax total distinct layouts
	)
	types := make([][]*Type, workers)
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			var err error
			types[w] = make([]*Type, perWorker)
			for i := 0; i < perWorker; i++ {
				// Distinct stride per (w, i): a unique layout each time.
				stride := 2 + w*perWorker + i
				typ, e := Vector(2, 1, stride, Float64)
				if e != nil {
					err = e
					break
				}
				typ.Plan() // compile + intern (and possibly evict)
				types[w][i] = typ
			}
			done <- err
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	if n := PlanCacheSize(); n > planCacheMax {
		t.Fatalf("cache size %d exceeds bound %d after churn", n, planCacheMax)
	}
	total := int64(workers * perWorker)
	if ev := PlanCacheEvictions(); ev == 0 || ev > total {
		t.Fatalf("evictions = %d after %d distinct layouts, want in (0, %d]", ev, total, total)
	}
	_, misses, _ := PlanCacheStats()
	if misses != total {
		t.Fatalf("compiles = %d, want %d (every layout distinct)", misses, total)
	}

	// Every type — interned or evicted — still packs correctly through its
	// memoized plan: eviction must never invalidate a held pointer.
	for w := range types {
		for _, typ := range types[w] {
			src := fill(typ.Span(2))
			dst := make([]byte, typ.PackedSize(2))
			if _, err := typ.Pack(src, 2, dst); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dst, refPack(typ, src, 2)) {
				t.Fatalf("type %s mis-packs after cache churn", typ.Name())
			}
		}
	}

	// An evicted layout requested through a fresh type recompiles to an
	// equivalent plan (same canonical geometry, same hash).
	old := types[0][0]
	fresh, err := Vector(2, 1, 2, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(old, fresh) {
		t.Fatal("churn test rebuilt a different layout")
	}
	op, fp := old.Plan(), fresh.Plan()
	if op.Kind() != fp.Kind() || op.Hash() != fp.Hash() || op.PackedSize(3) != fp.PackedSize(3) || op.Span(3) != fp.Span(3) {
		t.Fatal("recompiled plan disagrees with the evicted original")
	}
}

// TestPlanPackZeroAllocs is the cache-hit alloc guard: once a type's
// plan is memoized, Pack/PackAt/UnpackAt allocate nothing.
func TestPlanPackZeroAllocs(t *testing.T) {
	for name, typ := range planShapes(t) {
		const count = 4
		src := fill(typ.Span(count))
		dst := make([]byte, typ.PackedSize(count))
		typ.Plan() // memoize
		if allocs := testing.AllocsPerRun(100, func() {
			if _, err := typ.Pack(src, count, dst); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%s: Pack allocates %v per op on the cache-hit path", name, allocs)
		}
		frag := make([]byte, 16)
		if allocs := testing.AllocsPerRun(100, func() {
			if _, err := typ.PackAt(src, count, 8, frag); err != nil && err != io.EOF {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%s: PackAt allocates %v per op", name, allocs)
		}
		if allocs := testing.AllocsPerRun(100, func() {
			if err := typ.UnpackAt(src, count, 8, frag); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%s: UnpackAt allocates %v per op", name, allocs)
		}
	}
}

// TestAppendRegionsZeroAllocs: with caller-owned scratch of sufficient
// capacity, region extraction is allocation-free (the satellite fix for
// the count x runs header blow-up).
func TestAppendRegionsZeroAllocs(t *testing.T) {
	for name, typ := range planShapes(t) {
		const count = 8
		buf := fill(typ.Span(count))
		p := typ.Plan()
		scratch := make([][]byte, 0, p.RegionCount(count))
		if allocs := testing.AllocsPerRun(100, func() {
			rs, err := p.AppendRegions(scratch[:0], buf, count)
			if err != nil || int64(len(rs)) != p.RegionCount(count) {
				t.Fatalf("regions: %d (%v), want %d", len(rs), err, p.RegionCount(count))
			}
		}); allocs != 0 {
			t.Errorf("%s: AppendRegions allocates %v per op with scratch", name, allocs)
		}
	}
}

// TestRegionCountMatchesAppend: the precomputed count equals what
// AppendRegions emits, and the region concatenation is the packed image.
func TestRegionCountMatchesAppend(t *testing.T) {
	for name, typ := range planShapes(t) {
		p := typ.Plan()
		for _, count := range []int64{0, 1, 2, 5} {
			buf := fill(typ.Span(count))
			rs, err := p.AppendRegions(nil, buf, count)
			if err != nil {
				t.Fatalf("%s/count=%d: %v", name, count, err)
			}
			if int64(len(rs)) != p.RegionCount(count) {
				t.Errorf("%s/count=%d: RegionCount %d but AppendRegions emitted %d",
					name, count, p.RegionCount(count), len(rs))
			}
			var concat []byte
			for _, r := range rs {
				concat = append(concat, r...)
			}
			if !bytes.Equal(concat, refPack(typ, buf, count)) {
				t.Errorf("%s/count=%d: region concatenation != packed image", name, count)
			}
		}
	}
	// Cross-element coalescing: the strided vector's last run ends at the
	// extent, so element boundaries merge: runs*count - (count-1).
	v, _ := Vector(3, 2, 4, Float64)
	if n := v.Plan().RegionCount(4); n != 3*4-3 {
		t.Fatalf("vector RegionCount(4) = %d, want %d", n, 3*4-3)
	}
	// No coalescing when the first run starts past offset 0.
	s, _ := Struct([]int{1, 1}, []int64{8, 24}, []*Type{Float64, Float64})
	if n := s.Plan().RegionCount(3); n != 2*3 {
		t.Fatalf("gapped struct RegionCount(3) = %d, want 6", n)
	}
}

func TestPlanValidation(t *testing.T) {
	v, _ := Vector(3, 2, 4, Float64)
	p := v.Plan()
	const count = 2
	src := fill(v.Span(count))
	dst := make([]byte, p.PackedSize(count))

	if _, err := p.PackAt(src, count, -1, dst); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := p.PackAt(src, count, p.PackedSize(count)+1, dst); err == nil {
		t.Fatal("offset past end accepted")
	}
	if _, err := p.PackAt(src[:3], count, 0, dst); err == nil {
		t.Fatal("short source accepted")
	}
	if _, err := p.PackAt(src, -1, 0, dst); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := p.Pack(src, count, dst[:1]); err == nil {
		t.Fatal("short pack destination accepted")
	}
	if err := p.Unpack(src, count, dst[:1]); err == nil {
		t.Fatal("wrong unpack source length accepted")
	}
	if err := p.UnpackAt(src, count, p.PackedSize(count)-1, dst[:2]); err == nil {
		t.Fatal("unpack range past end accepted")
	}
	if _, err := p.AppendRegions(nil, src[:1], count); err == nil {
		t.Fatal("short region buffer accepted")
	}
}

func TestPlanZeroCount(t *testing.T) {
	v, _ := Vector(3, 2, 4, Float64)
	p := v.Plan()
	n, err := p.PackAt(nil, 0, 0, make([]byte, 8))
	if n != 0 || err != io.EOF {
		t.Fatalf("PackAt(count=0) = %d, %v", n, err)
	}
	if err := p.UnpackAt(nil, 0, 0, nil); err != nil {
		t.Fatalf("UnpackAt(count=0): %v", err)
	}
	rs, err := p.AppendRegions(nil, nil, 0)
	if err != nil || len(rs) != 0 {
		t.Fatalf("AppendRegions(count=0) = %d regions, %v", len(rs), err)
	}
}
