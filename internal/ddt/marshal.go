package ddt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file implements datatype marshalling and equivalence — the
// facility studied by Kimpe, Goodell and Ross ("MPI datatype marshalling:
// a case study in datatype equivalence", EuroMPI'10), which the paper
// cites as prior art for moving datatype descriptions between processes.
// A marshalled type can be reconstructed on another rank (e.g. so a
// receiver can build the sender's layout), and Equal decides whether two
// types describe the same transfer.

// Equal reports whether two types are transfer-equivalent: same packed
// size, same extent, and the same flattened typemap (run sequence). Types
// built through different constructor paths compare equal when they move
// the same bytes in the same order — the useful notion of equivalence for
// communication matching.
func Equal(a, b *Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.size != b.size || a.extent != b.extent || len(a.runs) != len(b.runs) {
		return false
	}
	for i := range a.runs {
		if a.runs[i] != b.runs[i] {
			return false
		}
	}
	return true
}

// marshal wire format:
//
//	magic "DDT1" | size i64 | extent i64 | ub i64 | nameLen u32 | name |
//	nruns u32 | (off i64, len i64)*
const marshalMagic = "DDT1"

// Marshal serializes the type's flattened description. The constructor
// tree is not preserved — only the transfer semantics — which is exactly
// what a remote peer needs to pack or unpack compatible buffers.
func (t *Type) Marshal() []byte {
	out := make([]byte, 0, 4+8*3+4+len(t.name)+4+16*len(t.runs))
	out = append(out, marshalMagic...)
	var b8 [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(b8[:], uint64(v))
		out = append(out, b8[:]...)
	}
	put(t.size)
	put(t.extent)
	put(t.ub)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(t.name)))
	out = append(out, b4[:]...)
	out = append(out, t.name...)
	binary.LittleEndian.PutUint32(b4[:], uint32(len(t.runs)))
	out = append(out, b4[:]...)
	for _, r := range t.runs {
		put(r.Off)
		put(r.Len)
	}
	return out
}

// ErrMarshal reports a corrupt marshalled type description.
var ErrMarshal = errors.New("ddt: invalid marshalled type")

// Unmarshal reconstructs a type from Marshal output.
func Unmarshal(data []byte) (*Type, error) {
	at := 0
	take := func(n int) ([]byte, error) {
		if at+n > len(data) {
			return nil, ErrMarshal
		}
		b := data[at : at+n]
		at += n
		return b, nil
	}
	magic, err := take(4)
	if err != nil || string(magic) != marshalMagic {
		return nil, ErrMarshal
	}
	geti := func() (int64, error) {
		b, err := take(8)
		if err != nil {
			return 0, err
		}
		return int64(binary.LittleEndian.Uint64(b)), nil
	}
	size, err := geti()
	if err != nil {
		return nil, err
	}
	extent, err := geti()
	if err != nil {
		return nil, err
	}
	ub, err := geti()
	if err != nil {
		return nil, err
	}
	nb, err := take(4)
	if err != nil {
		return nil, err
	}
	nameBytes, err := take(int(binary.LittleEndian.Uint32(nb)))
	if err != nil {
		return nil, err
	}
	rb, err := take(4)
	if err != nil {
		return nil, err
	}
	nruns := int(binary.LittleEndian.Uint32(rb))
	if nruns < 0 || nruns > 1<<24 {
		return nil, ErrMarshal
	}
	runs := make([]Run, nruns)
	var total int64
	for i := range runs {
		off, err := geti()
		if err != nil {
			return nil, err
		}
		length, err := geti()
		if err != nil {
			return nil, err
		}
		if off < 0 || length <= 0 {
			return nil, fmt.Errorf("%w: run %d = {%d,%d}", ErrMarshal, i, off, length)
		}
		runs[i] = Run{off, length}
		total += length
	}
	if at != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMarshal, len(data)-at)
	}
	if total != size {
		return nil, fmt.Errorf("%w: runs sum to %d, size is %d", ErrMarshal, total, size)
	}
	var maxEnd int64
	for _, r := range runs {
		if end := r.Off + r.Len; end > maxEnd {
			maxEnd = end
		}
	}
	if ub != maxEnd || extent < ub {
		return nil, fmt.Errorf("%w: bounds (ub %d, extent %d, max end %d)", ErrMarshal, ub, extent, maxEnd)
	}
	t := &Type{
		name:   string(nameBytes),
		size:   size,
		extent: extent,
		ub:     ub,
		runs:   runs,
		pre:    computePrefix(runs),
	}
	t.contig = len(runs) == 1 && runs[0].Off == 0 && t.size == t.extent
	if len(runs) == 0 {
		t.contig = true
	}
	return t, nil
}
