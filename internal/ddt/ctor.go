package ddt

import "fmt"

// Contiguous mirrors MPI_Type_contiguous: count consecutive elements of
// base.
func Contiguous(count int, base *Type) (*Type, error) {
	if count < 0 || base == nil {
		return nil, ctorErr("contiguous: count %d", count)
	}
	runs := make([]Run, 0, count*len(base.runs))
	for i := 0; i < count; i++ {
		off := int64(i) * base.extent
		for _, r := range base.runs {
			runs = append(runs, Run{off + r.Off, r.Len})
		}
	}
	return finalize(fmt.Sprintf("contiguous(%d,%s)", count, base.name), int64(count)*base.extent, runs)
}

// Vector mirrors MPI_Type_vector: count blocks of blocklen elements,
// strided by stride elements of base.
func Vector(count, blocklen, stride int, base *Type) (*Type, error) {
	if base == nil {
		return nil, ctorErr("vector: nil base")
	}
	return Hvector(count, blocklen, int64(stride)*base.extent, base)
}

// Hvector mirrors MPI_Type_create_hvector: like Vector with the stride in
// bytes.
func Hvector(count, blocklen int, stride int64, base *Type) (*Type, error) {
	if count < 0 || blocklen < 0 || base == nil {
		return nil, ctorErr("hvector: count %d blocklen %d", count, blocklen)
	}
	if count > 0 && blocklen > 0 && stride < 0 {
		return nil, ctorErr("hvector: negative stride %d unsupported", stride)
	}
	runs := make([]Run, 0, count*blocklen*len(base.runs))
	for i := 0; i < count; i++ {
		boff := int64(i) * stride
		for j := 0; j < blocklen; j++ {
			off := boff + int64(j)*base.extent
			for _, r := range base.runs {
				runs = append(runs, Run{off + r.Off, r.Len})
			}
		}
	}
	extent := int64(0)
	if count > 0 {
		extent = int64(count-1)*stride + int64(blocklen)*base.extent
	}
	return finalize(fmt.Sprintf("hvector(%d,%d,%d,%s)", count, blocklen, stride, base.name), extent, runs)
}

// Indexed mirrors MPI_Type_indexed: blocks of blocklens[i] elements at
// element displacements displs[i].
func Indexed(blocklens, displs []int, base *Type) (*Type, error) {
	if base == nil || len(blocklens) != len(displs) {
		return nil, ctorErr("indexed: %d blocklens, %d displs", len(blocklens), len(displs))
	}
	hd := make([]int64, len(displs))
	for i, d := range displs {
		hd[i] = int64(d) * base.extent
	}
	return Hindexed(blocklens, hd, base)
}

// Hindexed mirrors MPI_Type_create_hindexed: displacements in bytes.
func Hindexed(blocklens []int, displs []int64, base *Type) (*Type, error) {
	if base == nil || len(blocklens) != len(displs) {
		return nil, ctorErr("hindexed: %d blocklens, %d displs", len(blocklens), len(displs))
	}
	var runs []Run
	for i, bl := range blocklens {
		if bl < 0 || displs[i] < 0 {
			return nil, ctorErr("hindexed: block %d (len %d, displ %d)", i, bl, displs[i])
		}
		for j := 0; j < bl; j++ {
			off := displs[i] + int64(j)*base.extent
			for _, r := range base.runs {
				runs = append(runs, Run{off + r.Off, r.Len})
			}
		}
	}
	return finalize(fmt.Sprintf("hindexed(%d,%s)", len(blocklens), base.name), 0, runs)
}

// IndexedBlock mirrors MPI_Type_create_indexed_block: fixed blocklen,
// element displacements.
func IndexedBlock(blocklen int, displs []int, base *Type) (*Type, error) {
	bl := make([]int, len(displs))
	for i := range bl {
		bl[i] = blocklen
	}
	return Indexed(bl, displs, base)
}

// Struct mirrors MPI_Type_create_struct: per-field block lengths, byte
// displacements and types. No alignment epsilon is added; callers model
// C trailing padding with Resized, as the benchmark kernels do.
func Struct(blocklens []int, displs []int64, types []*Type) (*Type, error) {
	if len(blocklens) != len(displs) || len(displs) != len(types) {
		return nil, ctorErr("struct: mismatched field lists (%d,%d,%d)", len(blocklens), len(displs), len(types))
	}
	var runs []Run
	name := "struct("
	for i, bl := range blocklens {
		ft := types[i]
		if ft == nil || bl < 0 || displs[i] < 0 {
			return nil, ctorErr("struct: field %d", i)
		}
		if i > 0 {
			name += ","
		}
		name += ft.name
		for j := 0; j < bl; j++ {
			off := displs[i] + int64(j)*ft.extent
			for _, r := range ft.runs {
				runs = append(runs, Run{off + r.Off, r.Len})
			}
		}
	}
	name += ")"
	return finalize(name, 0, runs)
}

// Subarray mirrors MPI_Type_create_subarray with C (row-major) order:
// a subsizes-shaped window at starts inside a sizes-shaped array of base.
func Subarray(sizes, subsizes, starts []int, base *Type) (*Type, error) {
	if base == nil || len(sizes) == 0 || len(sizes) != len(subsizes) || len(sizes) != len(starts) {
		return nil, ctorErr("subarray: dims %d/%d/%d", len(sizes), len(subsizes), len(starts))
	}
	total := int64(1)
	for d := range sizes {
		if sizes[d] <= 0 || subsizes[d] < 0 || starts[d] < 0 || starts[d]+subsizes[d] > sizes[d] {
			return nil, ctorErr("subarray: dim %d (size %d, sub %d, start %d)", d, sizes[d], subsizes[d], starts[d])
		}
		total *= int64(sizes[d])
	}
	// Row-major strides in elements.
	nd := len(sizes)
	stride := make([]int64, nd)
	stride[nd-1] = 1
	for d := nd - 2; d >= 0; d-- {
		stride[d] = stride[d+1] * int64(sizes[d+1])
	}
	var runs []Run
	var walk func(d int, off int64)
	walk = func(d int, off int64) {
		if d == nd-1 {
			// Innermost dimension is contiguous: one block.
			start := off + (int64(starts[d]))*stride[d]
			for j := 0; j < subsizes[d]; j++ {
				eoff := (start + int64(j)) * base.extent
				for _, r := range base.runs {
					runs = append(runs, Run{eoff + r.Off, r.Len})
				}
			}
			return
		}
		for j := 0; j < subsizes[d]; j++ {
			walk(d+1, off+int64(starts[d]+j)*stride[d])
		}
	}
	walk(0, 0)
	t, err := finalize(fmt.Sprintf("subarray(%dd,%s)", nd, base.name), total*base.extent, runs)
	if err != nil {
		return nil, err
	}
	// A subarray's extent is the full array, even though its data windows
	// only part of it.
	t.extent = total * base.extent
	if t.extent < t.ub {
		t.extent = t.ub
	}
	t.contig = t.contig && t.size == t.extent
	return t, nil
}

// Resized mirrors MPI_Type_create_resized with a zero lower bound: it
// overrides the extent (e.g. to model C trailing padding).
func Resized(base *Type, extent int64) (*Type, error) {
	if base == nil || extent < base.ub {
		return nil, ctorErr("resized: extent %d below upper bound", extent)
	}
	t := &Type{
		name:   fmt.Sprintf("resized(%s,%d)", base.name, extent),
		size:   base.size,
		extent: extent,
		ub:     base.ub,
		runs:   base.runs,
		pre:    base.pre,
	}
	t.contig = len(t.runs) == 1 && t.runs[0].Off == 0 && t.size == t.extent
	return t, nil
}
