package ddt

import "testing"

// BenchmarkAblationDDTPlan is the plan-on/plan-off ablation behind
// BENCH_ddtplan.json: the same pack through the compiled plan kernels
// (Type.Pack) and through the retained typemap interpreter (packInterp),
// across the four canonical shapes. The 2D-strided 4 MiB case is the
// headline: small fixed-size blocks are where O(1) offset location and
// word-move kernels beat the per-run interpreter walk.
func BenchmarkAblationDDTPlan(b *testing.B) {
	for _, c := range consistencyCases(b) {
		src := fill(c.typ.Span(c.count))
		dst := make([]byte, c.typ.PackedSize(c.count))
		c.typ.Plan() // commit outside the timed region
		b.Run(c.name+"/plan", func(b *testing.B) {
			b.SetBytes(c.typ.PackedSize(c.count))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.typ.Pack(src, c.count, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/interp", func(b *testing.B) {
			b.SetBytes(c.typ.PackedSize(c.count))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.typ.packInterp(src, c.count, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlanRegions measures the pooled region extraction vs the old
// per-call allocation pattern (regionsInterp).
func BenchmarkPlanRegions(b *testing.B) {
	typ, err := Vector(64, 128, 256, Float64)
	if err != nil {
		b.Fatal(err)
	}
	const count = 16
	buf := fill(typ.Span(count))
	p := typ.Plan()
	scratch := make([][]byte, 0, p.RegionCount(count))
	b.Run("plan-pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.AppendRegions(scratch[:0], buf, count); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("interp-alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := typ.regionsInterp(buf, count); err != nil {
				b.Fatal(err)
			}
		}
	})
}
