package ddt

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzUnmarshal hardens the datatype unmarshaller: type descriptions
// arrive over the wire (Comm.RecvType), so arbitrary bytes must produce
// an error or a well-formed type — never a panic or a type that violates
// its own invariants.
func FuzzUnmarshal(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 8; i++ {
		f.Add(randomType(rng, rng.Intn(3)+1).Marshal())
	}
	f.Add([]byte{})
	f.Add([]byte("DDT1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Invariants of a well-formed type.
		if typ.Size() < 0 || typ.Extent() < 0 || typ.Extent() < typ.Size() && typ.Contig() {
			t.Fatalf("invalid reconstructed type: size %d extent %d", typ.Size(), typ.Extent())
		}
		var sum int64
		for _, r := range typ.Runs() {
			if r.Len <= 0 || r.Off < 0 || r.Off+r.Len > typ.Extent() {
				t.Fatalf("invalid run %+v (extent %d)", r, typ.Extent())
			}
			sum += r.Len
		}
		if sum != typ.Size() {
			t.Fatalf("runs sum %d != size %d", sum, typ.Size())
		}
		// A reconstructed type must round-trip its own marshalling.
		again, err := Unmarshal(typ.Marshal())
		if err != nil || !Equal(typ, again) {
			t.Fatalf("re-marshal roundtrip failed: %v", err)
		}
		// And pack/unpack within its own span without panicking (bounded:
		// a valid description may still declare an enormous extent).
		count := int64(2)
		if span := typ.Span(count); span > 0 && span <= 1<<20 {
			src := fill(span)
			dst := make([]byte, typ.PackedSize(count))
			if _, err := typ.Pack(src, count, dst); err != nil {
				t.Fatalf("pack of valid type failed: %v", err)
			}
		}
	})
}

// planDifferential is the oracle check behind both the fuzz target and
// the deterministic property test: for one type and count, the compiled
// plan must byte-identically match the interpreter on Pack, on PackAt /
// UnpackAt at every fragmentation the seed selects, and on the region
// concatenation — and Pack followed by Unpack must restore every data
// byte.
func planDifferential(t *testing.T, typ *Type, count int64, seed int64) {
	t.Helper()
	if typ.Size() == 0 {
		return
	}
	span := typ.Span(count)
	if span <= 0 || span > 1<<20 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	src := fill(span)
	total := typ.PackedSize(count)

	// One-shot pack: plan vs interpreter.
	got := make([]byte, total)
	want := make([]byte, total)
	if _, err := typ.Pack(src, count, got); err != nil {
		t.Fatalf("plan pack: %v", err)
	}
	if _, err := typ.packInterp(src, count, want); err != nil {
		t.Fatalf("interp pack: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("plan pack differs from interpreter (%s)", typ.Name())
	}

	// Streaming at random fragment sizes: identical (n, err, bytes).
	frag := int64(rng.Intn(7) + 1)
	a := make([]byte, frag)
	b := make([]byte, frag)
	for off := int64(0); off < total; {
		n1, err1 := typ.PackAt(src, count, off, a)
		n2, err2 := typ.packAtInterp(src, count, off, b)
		if n1 != n2 || err1 != err2 || !bytes.Equal(a[:n1], b[:n2]) {
			t.Fatalf("PackAt(%s, off=%d, frag=%d): plan (%d,%v) != interp (%d,%v)",
				typ.Name(), off, frag, n1, err1, n2, err2)
		}
		if n1 == 0 {
			t.Fatalf("PackAt(%s, off=%d): no progress (%v)", typ.Name(), off, err1)
		}
		off += int64(n1)
	}

	// Unpack round trip through both engines at the same fragmentation.
	dst1 := make([]byte, span)
	dst2 := make([]byte, span)
	for off := int64(0); off < total; {
		end := off + frag
		if end > total {
			end = total
		}
		if err := typ.UnpackAt(dst1, count, off, want[off:end]); err != nil {
			t.Fatalf("plan UnpackAt: %v", err)
		}
		if err := typ.unpackAtInterp(dst2, count, off, want[off:end]); err != nil {
			t.Fatalf("interp UnpackAt: %v", err)
		}
		off = end
	}
	if !bytes.Equal(dst1, dst2) {
		t.Fatalf("plan unpack differs from interpreter (%s)", typ.Name())
	}
	// Pack . Unpack == id on the data bytes.
	if rt := refPack(typ, dst1, count); !bytes.Equal(rt, want) {
		t.Fatalf("Pack∘Unpack lost data bytes (%s)", typ.Name())
	}

	// Region extraction: the plan's coalesced regions and the
	// interpreter's per-run regions must concatenate to the same stream.
	rs, err := typ.Regions(src, count)
	if err != nil {
		t.Fatalf("plan regions: %v", err)
	}
	old, err := typ.regionsInterp(src, count)
	if err != nil {
		t.Fatalf("interp regions: %v", err)
	}
	var cat1, cat2 []byte
	for _, r := range rs {
		cat1 = append(cat1, r...)
	}
	for _, r := range old {
		cat2 = append(cat2, r...)
	}
	if !bytes.Equal(cat1, cat2) {
		t.Fatalf("region concatenation differs from interpreter (%s)", typ.Name())
	}
	if int64(len(rs)) != typ.Plan().RegionCount(count) {
		t.Fatalf("RegionCount(%s) = %d, emitted %d", typ.Name(), typ.Plan().RegionCount(count), len(rs))
	}
}

// FuzzPlanDifferential feeds arbitrary marshalled type descriptions —
// which may carry non-canonical run lists the constructors never emit —
// through the plan compiler and requires byte identity with the
// interpreter on every engine entry point.
func FuzzPlanDifferential(f *testing.F) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		f.Add(randomType(rng, rng.Intn(3)+1).Marshal(), int64(i))
	}
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		typ, err := Unmarshal(data)
		if err != nil {
			return
		}
		planDifferential(t, typ, seed%4+1, seed)
	})
}

// TestPlanDifferentialRandomTypes is the always-on slice of the fuzz
// corpus: several hundred random nested types through the same oracle,
// so plain `go test` exercises the differential harness.
func TestPlanDifferentialRandomTypes(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 50
	}
	rng := rand.New(rand.NewSource(20260808))
	for i := 0; i < iters; i++ {
		typ := randomType(rng, rng.Intn(4)+1)
		planDifferential(t, typ, int64(rng.Intn(4)+1), rng.Int63())
	}
}
