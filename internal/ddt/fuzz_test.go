package ddt

import (
	"math/rand"
	"testing"
)

// FuzzUnmarshal hardens the datatype unmarshaller: type descriptions
// arrive over the wire (Comm.RecvType), so arbitrary bytes must produce
// an error or a well-formed type — never a panic or a type that violates
// its own invariants.
func FuzzUnmarshal(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 8; i++ {
		f.Add(randomType(rng, rng.Intn(3)+1).Marshal())
	}
	f.Add([]byte{})
	f.Add([]byte("DDT1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Invariants of a well-formed type.
		if typ.Size() < 0 || typ.Extent() < 0 || typ.Extent() < typ.Size() && typ.Contig() {
			t.Fatalf("invalid reconstructed type: size %d extent %d", typ.Size(), typ.Extent())
		}
		var sum int64
		for _, r := range typ.Runs() {
			if r.Len <= 0 || r.Off < 0 || r.Off+r.Len > typ.Extent() {
				t.Fatalf("invalid run %+v (extent %d)", r, typ.Extent())
			}
			sum += r.Len
		}
		if sum != typ.Size() {
			t.Fatalf("runs sum %d != size %d", sum, typ.Size())
		}
		// A reconstructed type must round-trip its own marshalling.
		again, err := Unmarshal(typ.Marshal())
		if err != nil || !Equal(typ, again) {
			t.Fatalf("re-marshal roundtrip failed: %v", err)
		}
		// And pack/unpack within its own span without panicking (bounded:
		// a valid description may still declare an enormous extent).
		count := int64(2)
		if span := typ.Span(count); span > 0 && span <= 1<<20 {
			src := fill(span)
			dst := make([]byte, typ.PackedSize(count))
			if _, err := typ.Pack(src, count, dst); err != nil {
				t.Fatalf("pack of valid type failed: %v", err)
			}
		}
	})
}
