// Package ddt implements a classic MPI derived-datatype engine over
// C-layout byte images: typemaps built from predefined types with the
// standard constructors (contiguous, vector, hvector, indexed, hindexed,
// indexed_block, struct, subarray, resized), flattened into byte runs, and
// a pack/unpack engine that walks those runs.
//
// This package is the reproduction's stand-in for the Open MPI / RSMPI
// datatype engine the paper benchmarks against. Its performance character
// is deliberately faithful: a type that flattens to one contiguous run per
// extent (no gaps) packs as a single large copy, while a type with interior
// gaps (like the paper's struct-simple, Listing 7) degenerates to small
// per-run copies — the exact effect behind the paper's Figure 5 vs.
// Figure 6 contrast.
//
// Buffers are []byte images laid out exactly as a C compiler would lay out
// the corresponding structs (the paper's #[repr(C)] Rust types); see
// package layout for helpers that build such images.
package ddt

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Run is one contiguous byte range of a type's flattened typemap, relative
// to the element base address.
type Run struct {
	Off int64
	Len int64
}

// Type is an immutable derived datatype.
type Type struct {
	name   string
	size   int64 // packed bytes per element (sum of run lengths)
	extent int64 // distance between consecutive elements in a buffer
	ub     int64 // upper bound: max(run.Off+run.Len), or explicit via Resized
	runs   []Run // in typemap order (pack order), adjacency-coalesced
	contig bool  // single run at offset 0 with size == extent
	pre    []int64

	// plan memoizes the compiled pack/unpack program (see plan.go): one
	// atomic load on the hot path, filled lazily on first use.
	plan atomic.Pointer[Plan]
}

// Predefined base types (sizes follow the C ABI the paper's structs use).
var (
	Byte       = predefined("byte", 1)
	Int8       = predefined("int8", 1)
	Int16      = predefined("int16", 2)
	Int32      = predefined("int32", 4)
	Int64      = predefined("int64", 8)
	Uint64     = predefined("uint64", 8)
	Float32    = predefined("float32", 4)
	Float64    = predefined("float64", 8)
	Complex128 = predefined("complex128", 16)
)

func predefined(name string, size int64) *Type {
	return &Type{
		name:   name,
		size:   size,
		extent: size,
		ub:     size,
		runs:   []Run{{0, size}},
		contig: true,
		pre:    []int64{0, size},
	}
}

// Name returns a debug name for the type.
func (t *Type) Name() string { return t.name }

// Size returns the number of packed data bytes per element.
func (t *Type) Size() int64 { return t.size }

// Extent returns the spacing between consecutive elements of this type in
// an application buffer.
func (t *Type) Extent() int64 { return t.extent }

// Runs returns the flattened per-element typemap in pack order. The slice
// must not be modified.
func (t *Type) Runs() []Run { return t.runs }

// Contig reports whether the type is fully contiguous (no gaps, no
// reordering): such types pack with a single copy regardless of count.
func (t *Type) Contig() bool { return t.contig }

// NumRuns returns the number of contiguous runs per element after
// coalescing.
func (t *Type) NumRuns() int { return len(t.runs) }

// Span returns the number of buffer bytes count elements occupy.
func (t *Type) Span(count int64) int64 {
	if count <= 0 {
		return 0
	}
	return (count-1)*t.extent + t.ub
}

// PackedSize returns the packed byte size of count elements.
func (t *Type) PackedSize(count int64) int64 { return count * t.size }

// Dup mirrors MPI_Type_dup: a new handle with identical transfer
// semantics. The duplicate shares the immutable run list and — through
// the plan cache — the compiled plan, so duplicating never recompiles.
func (t *Type) Dup() *Type {
	return &Type{
		name:   t.name,
		size:   t.size,
		extent: t.extent,
		ub:     t.ub,
		runs:   t.runs,
		contig: t.contig,
		pre:    t.pre,
	}
}

// ErrType reports invalid constructor arguments.
var ErrType = errors.New("ddt: invalid type construction")

func ctorErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrType, fmt.Sprintf(format, args...))
}

// finalize derives size/ub/contig from runs and coalesces adjacent-in-
// sequence runs. Coalescing never reorders: pack order is semantic.
func finalize(name string, extent int64, runs []Run) (*Type, error) {
	co := make([]Run, 0, len(runs))
	var size int64
	var ub int64
	for _, r := range runs {
		if r.Len == 0 {
			continue
		}
		if r.Len < 0 || r.Off < 0 {
			return nil, ctorErr("%s: negative run {%d,%d}", name, r.Off, r.Len)
		}
		size += r.Len
		if end := r.Off + r.Len; end > ub {
			ub = end
		}
		if n := len(co); n > 0 && co[n-1].Off+co[n-1].Len == r.Off {
			co[n-1].Len += r.Len
			continue
		}
		co = append(co, r)
	}
	if extent < ub {
		extent = ub
	}
	t := &Type{
		name:   name,
		size:   size,
		extent: extent,
		ub:     ub,
		runs:   co,
	}
	t.contig = len(co) == 1 && co[0].Off == 0 && t.size == t.extent
	if len(co) == 0 {
		// Zero-size types are legal (e.g. empty struct); treat as contig.
		t.contig = true
	}
	t.pre = computePrefix(t.runs)
	return t, nil
}
