package ddt

import (
	"fmt"
	"testing"
)

// Benchmarks documenting the engine characteristics the evaluation relies
// on: gapped typemaps degenerate to small per-run copies while contiguous
// types pack as one move.

func benchPack(b *testing.B, t *Type, count int64) {
	src := fill(t.Span(count))
	dst := make([]byte, t.PackedSize(count))
	b.SetBytes(t.PackedSize(count))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := t.Pack(src, count, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPackContiguous(b *testing.B) {
	t, _ := Contiguous(1024, Float64)
	benchPack(b, t, 128)
}

func BenchmarkPackGappedStruct(b *testing.B) {
	t, _ := Struct([]int{3, 1}, []int64{0, 16}, []*Type{Int32, Float64})
	benchPack(b, t, 32768) // same ~640 KiB as the contiguous case
}

func BenchmarkPackStridedVector(b *testing.B) {
	t, _ := Vector(4096, 2, 4, Float64)
	benchPack(b, t, 10)
}

func BenchmarkPackIndexedGather(b *testing.B) {
	displs := make([]int, 4096)
	for i := range displs {
		displs[i] = i * 2
	}
	t, _ := IndexedBlock(1, displs, Float64)
	benchPack(b, t, 10)
}

func BenchmarkUnpackGappedStruct(b *testing.B) {
	t, _ := Struct([]int{3, 1}, []int64{0, 16}, []*Type{Int32, Float64})
	const count = 32768
	src := fill(t.Span(count))
	packed := make([]byte, t.PackedSize(count))
	t.Pack(src, count, packed)
	dst := make([]byte, t.Span(count))
	b.SetBytes(t.PackedSize(count))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := t.Unpack(dst, count, packed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPackAtFragmented(b *testing.B) {
	// Streaming pack in transport-sized fragments (the rendezvous path).
	t, _ := Struct([]int{3, 1}, []int64{0, 16}, []*Type{Int32, Float64})
	const count = 32768
	src := fill(t.Span(count))
	frag := make([]byte, 16*1024)
	total := t.PackedSize(count)
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := int64(0); off < total; {
			n, err := t.PackAt(src, count, off, frag)
			if n == 0 {
				b.Fatal(err)
			}
			off += int64(n)
		}
	}
}

func BenchmarkTypeConstruction(b *testing.B) {
	// Datatype (re)creation cost: the paper notes derived types would
	// need recreation per buffer for dynamic data.
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("indexed-%d", n), func(b *testing.B) {
			displs := make([]int, n)
			for i := range displs {
				displs[i] = i * 3
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := IndexedBlock(2, displs, Float64); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
