package ddt

import (
	"bytes"
	"io"
	"testing"
)

// Resume-mid-run regression tests: the streaming contract says PackAt /
// UnpackAt may be entered at ANY virtual packed offset — including one
// byte into a run, one byte before a run edge, and exactly on every run
// and element boundary — and must carry the intra-run offset correctly.
// These tests drive every offset with 1-byte fragments (the worst case a
// streaming adapter can produce) and with fragment sizes chosen to land
// on both sides of every edge, for one shape per canonical plan kind,
// and cross-check the compiled kernels against the interpreter.

// resumeShapes covers all four plan kinds plus kernels: word-move blocks
// (4/8/16 bytes), the unrolled 8-byte-multiple loop (24), and an odd
// block length that falls back to copy.
func resumeShapes(t *testing.T) map[string]*Type {
	t.Helper()
	mk := func(typ *Type, err error) *Type {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return typ
	}
	return map[string]*Type{
		"contig":      mk(Contiguous(4, Int32)),
		"block":       mk(Struct([]int{1}, []int64{8}, []*Type{Float64})),
		"strided-4":   mk(Vector(5, 1, 2, Int32)),
		"strided-8":   mk(Vector(3, 1, 3, Float64)),
		"strided-16":  mk(Vector(3, 1, 2, Complex128)),
		"strided-24":  mk(Vector(2, 3, 5, Float64)),
		"strided-odd": mk(Vector(3, 3, 5, Byte)),
		"runlist":     mk(Struct([]int{3, 1}, []int64{0, 16}, []*Type{Int32, Float64})),
	}
}

// TestPackAtEveryOffsetOneByte packs the whole stream one byte at a
// time, entering at every offset: n must always be 1, the byte must
// match the reference pack, and io.EOF must appear exactly at the final
// byte — never earlier, never later.
func TestPackAtEveryOffsetOneByte(t *testing.T) {
	for name, typ := range resumeShapes(t) {
		const count = 3
		src := fill(typ.Span(count))
		ref := refPack(typ, src, count)
		total := typ.PackedSize(count)
		one := make([]byte, 1)
		for off := int64(0); off < total; off++ {
			n, err := typ.PackAt(src, count, off, one)
			if n != 1 {
				t.Fatalf("%s: PackAt(off=%d) produced %d bytes", name, off, n)
			}
			if one[0] != ref[off] {
				t.Fatalf("%s: PackAt(off=%d) = %#x, want %#x", name, off, one[0], ref[off])
			}
			// Contiguous plans report io.EOF only on the zero-byte read past
			// the end (matching the interpreter); all other kinds flag the
			// final byte.
			wantEOF := off == total-1 && typ.Plan().Kind() != PlanContig
			if (err == io.EOF) != wantEOF || (err != nil && err != io.EOF) {
				t.Fatalf("%s: PackAt(off=%d) err = %v (total %d)", name, off, err, total)
			}
		}
		// Entering at the very end with room produces (0, io.EOF).
		if n, err := typ.PackAt(src, count, total, one); n != 0 || err != io.EOF {
			t.Fatalf("%s: PackAt(off=total) = %d, %v", name, n, err)
		}
	}
}

// TestUnpackAtEveryOffsetOneByte is the dual: scatter the packed image
// one byte at a time in arbitrary (reverse) order, then verify the data
// bytes of the destination match the source exactly.
func TestUnpackAtEveryOffsetOneByte(t *testing.T) {
	for name, typ := range resumeShapes(t) {
		const count = 3
		src := fill(typ.Span(count))
		ref := refPack(typ, src, count)
		dst := make([]byte, typ.Span(count))
		// Reverse order: every write must land independently of history.
		for off := int64(len(ref)) - 1; off >= 0; off-- {
			if err := typ.UnpackAt(dst, count, off, ref[off:off+1]); err != nil {
				t.Fatalf("%s: UnpackAt(off=%d): %v", name, off, err)
			}
		}
		if got := refPack(typ, dst, count); !bytes.Equal(got, ref) {
			t.Fatalf("%s: unpacked data bytes differ from source", name)
		}
	}
}

// TestPackAtFragmentsMatchInterpreter streams with several fragment
// sizes (1..span) and requires the compiled kernels to agree with the
// interpreter on every (offset, fragment) pair — byte-for-byte and in
// the returned (n, err).
func TestPackAtFragmentsMatchInterpreter(t *testing.T) {
	for name, typ := range resumeShapes(t) {
		const count = 3
		src := fill(typ.Span(count))
		total := typ.PackedSize(count)
		for _, frag := range []int{1, 2, 3, 5, 7, 13, 64} {
			got := make([]byte, 0, total)
			a := make([]byte, frag)
			b := make([]byte, frag)
			for off := int64(0); off < total; {
				n1, err1 := typ.PackAt(src, count, off, a)
				n2, err2 := typ.packAtInterp(src, count, off, b)
				if n1 != n2 || err1 != err2 {
					t.Fatalf("%s/frag=%d: plan (%d,%v) != interp (%d,%v) at off %d",
						name, frag, n1, err1, n2, err2, off)
				}
				if !bytes.Equal(a[:n1], b[:n2]) {
					t.Fatalf("%s/frag=%d: bytes differ at off %d", name, frag, off)
				}
				if n1 == 0 {
					t.Fatalf("%s/frag=%d: no progress at off %d (err %v)", name, frag, off, err1)
				}
				got = append(got, a[:n1]...)
				off += int64(n1)
			}
			if !bytes.Equal(got, refPack(typ, src, count)) {
				t.Fatalf("%s/frag=%d: stream != reference pack", name, frag)
			}
		}
	}
}

// TestUnpackAtFragmentsRoundTrip unpacks the packed image in fragments
// of every small size, offset by every possible phase, and requires a
// perfect round trip — the runOff carry on the unpack side.
func TestUnpackAtFragmentsRoundTrip(t *testing.T) {
	for name, typ := range resumeShapes(t) {
		const count = 3
		src := fill(typ.Span(count))
		ref := refPack(typ, src, count)
		total := int64(len(ref))
		for _, frag := range []int64{1, 2, 3, 5, 7, 13} {
			for phase := int64(0); phase < frag && phase < total; phase++ {
				dst := make([]byte, typ.Span(count))
				if phase > 0 {
					if err := typ.UnpackAt(dst, count, 0, ref[:phase]); err != nil {
						t.Fatal(err)
					}
				}
				for off := phase; off < total; off += frag {
					end := off + frag
					if end > total {
						end = total
					}
					if err := typ.UnpackAt(dst, count, off, ref[off:end]); err != nil {
						t.Fatalf("%s/frag=%d/phase=%d: UnpackAt(off=%d): %v", name, frag, phase, off, err)
					}
				}
				if got := refPack(typ, dst, count); !bytes.Equal(got, ref) {
					t.Fatalf("%s/frag=%d/phase=%d: round trip failed", name, frag, phase)
				}
			}
		}
	}
}
