package ddt

import (
	"bytes"
	"sync"
	"testing"
)

// The striped rendezvous path calls PackAt/UnpackAt concurrently at
// disjoint offsets of one Type. These tests pin the property the engine
// already has — the walk is immutable (prefix tables computed at
// construction, no per-call state on Type) — so a future "optimization"
// that adds mutable cursor state to the type trips the race detector and
// these comparisons.

func reentrantType(t *testing.T) *Type {
	t.Helper()
	// Gapped vector: 3 doubles every 5, a non-contiguous walk.
	v, err := Vector(4, 3, 5, Float64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPackAtReentrant(t *testing.T) {
	typ := reentrantType(t)
	const count = 64
	src := make([]byte, typ.Span(count))
	for i := range src {
		src[i] = byte(i*7 + 3)
	}
	total := typ.PackedSize(count)
	want := make([]byte, total)
	if _, err := typ.Pack(src, count, want); err != nil {
		t.Fatal(err)
	}

	got := make([]byte, total)
	const stripes = 8
	chunk := (total + stripes - 1) / stripes
	var wg sync.WaitGroup
	for off := int64(0); off < total; off += chunk {
		span := chunk
		if rem := total - off; span > rem {
			span = rem
		}
		wg.Add(1)
		go func(off, span int64) {
			defer wg.Done()
			// Each stripe walks its range in small, misaligned steps so
			// stripes interleave mid-run and mid-element.
			for at := off; at < off+span; {
				step := int64(13)
				if rem := off + span - at; step > rem {
					step = rem
				}
				n, err := typ.PackAt(src, count, at, got[at:at+step])
				if err != nil && n == 0 {
					t.Errorf("PackAt(%d): %v", at, err)
					return
				}
				at += int64(n)
			}
		}(off, span)
	}
	wg.Wait()
	if !bytes.Equal(got, want) {
		t.Fatal("concurrent striped PackAt diverged from sequential Pack")
	}
}

func TestUnpackAtReentrant(t *testing.T) {
	typ := reentrantType(t)
	const count = 64
	src := make([]byte, typ.Span(count))
	for i := range src {
		src[i] = byte(i*11 + 5)
	}
	total := typ.PackedSize(count)
	packed := make([]byte, total)
	if _, err := typ.Pack(src, count, packed); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, typ.Span(count))
	if err := typ.Unpack(want, count, packed); err != nil {
		t.Fatal(err)
	}

	got := make([]byte, typ.Span(count))
	const stripes = 8
	chunk := (total + stripes - 1) / stripes
	var wg sync.WaitGroup
	for off := int64(0); off < total; off += chunk {
		span := chunk
		if rem := total - off; span > rem {
			span = rem
		}
		wg.Add(1)
		go func(off, span int64) {
			defer wg.Done()
			for at := off; at < off+span; {
				step := int64(17)
				if rem := off + span - at; step > rem {
					step = rem
				}
				if err := typ.UnpackAt(got, count, at, packed[at:at+step]); err != nil {
					t.Errorf("UnpackAt(%d): %v", at, err)
					return
				}
				at += step
			}
		}(off, span)
	}
	wg.Wait()
	if !bytes.Equal(got, want) {
		t.Fatal("concurrent striped UnpackAt diverged from sequential Unpack")
	}
}
