package ddt

import (
	"fmt"
	"io"
	"sort"
)

// The public pack/unpack entry points delegate to the compiled plan
// (plan.go); the original typemap interpreter is kept below as
// packAtInterp/unpackAtInterp/regionsInterp — the differential-testing
// oracle and the plan-off ablation baseline.

// prefix returns cumulative packed sizes of the runs: prefix()[i] is the
// packed offset of run i within one element. It is computed at
// construction time so Type stays immutable and safe for concurrent use.
func (t *Type) prefix() []int64 { return t.pre }

func computePrefix(runs []Run) []int64 {
	p := make([]int64, len(runs)+1)
	for i, r := range runs {
		p[i+1] = p[i] + r.Len
	}
	return p
}

// checkBuf validates that buf can hold count elements.
func (t *Type) checkBuf(buf []byte, count int64) error {
	if count < 0 {
		return fmt.Errorf("ddt: negative count %d", count)
	}
	if need := t.Span(count); int64(len(buf)) < need {
		return fmt.Errorf("ddt: buffer of %d bytes cannot hold %d x %s (%d bytes)", len(buf), count, t.name, need)
	}
	return nil
}

// PackAt packs up to len(dst) bytes of the packed representation of
// (src, count) starting at virtual packed offset off. It returns the
// number of bytes produced (short only at the end of the stream, with
// io.EOF). This is the streaming entry the transport's generic-datatype
// adapter uses; Pack is the one-shot convenience.
func (t *Type) PackAt(src []byte, count int64, off int64, dst []byte) (int, error) {
	return t.Plan().PackAt(src, count, off, dst)
}

// UnpackAt writes the packed bytes in src at virtual packed offset off back
// into the memory layout of (dst, count).
func (t *Type) UnpackAt(dst []byte, count int64, off int64, src []byte) error {
	return t.Plan().UnpackAt(dst, count, off, src)
}

// Pack packs count elements of src into dst and returns the packed size.
// dst must have room for PackedSize(count) bytes.
func (t *Type) Pack(src []byte, count int64, dst []byte) (int64, error) {
	return t.Plan().Pack(src, count, dst)
}

// Unpack scatters the packed bytes in src into count elements at dst.
func (t *Type) Unpack(dst []byte, count int64, src []byte) error {
	return t.Plan().Unpack(dst, count, src)
}

// Regions returns the memory regions of (buf, count) as byte slices in
// pack order: the scatter/gather view of the typemap. Runs that are
// adjacent in memory — within an element and across element boundaries —
// are coalesced. Callers on hot paths should use Plan().AppendRegions
// with reusable scratch instead.
func (t *Type) Regions(buf []byte, count int64) ([][]byte, error) {
	p := t.Plan()
	out := make([][]byte, 0, p.RegionCount(count))
	return p.AppendRegions(out, buf, count)
}

// --- interpreter (oracle / ablation baseline) --------------------------------

// packAtInterp is the pre-plan engine: a typemap walk that binary-searches
// the run containing off and carries a runOff across fragment boundaries.
func (t *Type) packAtInterp(src []byte, count int64, off int64, dst []byte) (int, error) {
	total := t.PackedSize(count)
	if off < 0 || off > total {
		return 0, fmt.Errorf("ddt: pack offset %d out of [0,%d]", off, total)
	}
	if err := t.checkBuf(src, count); err != nil {
		return 0, err
	}
	if rem := total - off; int64(len(dst)) > rem {
		dst = dst[:rem]
	}
	if len(dst) == 0 {
		if off == total {
			return 0, io.EOF
		}
		return 0, nil
	}
	if t.contig {
		n := copy(dst, src[off:])
		return n, nil
	}
	pre := t.prefix()
	elem := off / t.size
	within := off % t.size
	ri := sort.Search(len(t.runs), func(i int) bool { return pre[i+1] > within }) // run containing `within`
	runOff := within - pre[ri]
	w := 0
	for elem < count && w < len(dst) {
		base := elem * t.extent
		for ; ri < len(t.runs) && w < len(dst); ri++ {
			r := t.runs[ri]
			n := copy(dst[w:], src[base+r.Off+runOff:base+r.Off+r.Len])
			w += n
			if int64(n) < r.Len-runOff {
				runOff += int64(n)
				return w, nil
			}
			runOff = 0
		}
		if ri == len(t.runs) {
			ri = 0
			elem++
		}
	}
	if off+int64(w) == total {
		return w, io.EOF
	}
	return w, nil
}

// unpackAtInterp is the interpreter dual of packAtInterp.
func (t *Type) unpackAtInterp(dst []byte, count int64, off int64, src []byte) error {
	total := t.PackedSize(count)
	if off < 0 || off+int64(len(src)) > total {
		return fmt.Errorf("ddt: unpack range [%d,%d) out of [0,%d]", off, off+int64(len(src)), total)
	}
	if err := t.checkBuf(dst, count); err != nil {
		return err
	}
	if len(src) == 0 {
		return nil
	}
	if t.contig {
		copy(dst[off:], src)
		return nil
	}
	pre := t.prefix()
	elem := off / t.size
	within := off % t.size
	ri := sort.Search(len(t.runs), func(i int) bool { return pre[i+1] > within })
	runOff := within - pre[ri]
	r := 0
	for elem < count && r < len(src) {
		base := elem * t.extent
		for ; ri < len(t.runs) && r < len(src); ri++ {
			run := t.runs[ri]
			n := copy(dst[base+run.Off+runOff:base+run.Off+run.Len], src[r:])
			r += n
			if int64(n) < run.Len-runOff {
				return nil // src exhausted mid-run
			}
			runOff = 0
		}
		if ri == len(t.runs) {
			ri = 0
			elem++
		}
	}
	return nil
}

// packInterp is the one-shot interpreter pack (ablation baseline).
func (t *Type) packInterp(src []byte, count int64, dst []byte) (int64, error) {
	total := t.PackedSize(count)
	if int64(len(dst)) < total {
		return 0, fmt.Errorf("ddt: pack destination too small (%d < %d)", len(dst), total)
	}
	n, err := t.packAtInterp(src, count, 0, dst[:total])
	if err == io.EOF {
		err = nil
	}
	if err == nil && int64(n) != total {
		err = fmt.Errorf("ddt: short pack (%d of %d bytes)", n, total)
	}
	return int64(n), err
}

// regionsInterp is the pre-plan region enumeration: one region per run
// per element, no cross-element coalescing, fresh allocation per call.
func (t *Type) regionsInterp(buf []byte, count int64) ([][]byte, error) {
	if err := t.checkBuf(buf, count); err != nil {
		return nil, err
	}
	if t.contig {
		return [][]byte{buf[:t.PackedSize(count)]}, nil
	}
	regions := make([][]byte, 0, int(count)*len(t.runs))
	for e := int64(0); e < count; e++ {
		base := e * t.extent
		for _, r := range t.runs {
			regions = append(regions, buf[base+r.Off:base+r.Off+r.Len])
		}
	}
	return regions, nil
}
