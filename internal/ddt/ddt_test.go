package ddt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// refPack is the oracle: a naive typemap walk with no fast paths.
func refPack(t *Type, src []byte, count int64) []byte {
	var out []byte
	for e := int64(0); e < count; e++ {
		base := e * t.Extent()
		for _, r := range t.Runs() {
			out = append(out, src[base+r.Off:base+r.Off+r.Len]...)
		}
	}
	return out
}

func fill(n int64) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + 3)
	}
	return b
}

func TestPredefinedProperties(t *testing.T) {
	if Int32.Size() != 4 || Int32.Extent() != 4 || !Int32.Contig() {
		t.Fatal("Int32 metadata wrong")
	}
	if Float64.Size() != 8 || Complex128.Size() != 16 {
		t.Fatal("predefined sizes wrong")
	}
}

func TestContiguousCoalesces(t *testing.T) {
	c, err := Contiguous(10, Int32)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Contig() || c.NumRuns() != 1 || c.Size() != 40 || c.Extent() != 40 {
		t.Fatalf("contiguous(10,int32): runs=%d size=%d extent=%d contig=%v",
			c.NumRuns(), c.Size(), c.Extent(), c.Contig())
	}
}

func TestVectorLayout(t *testing.T) {
	// 3 blocks of 2 float64, stride 4 elements.
	v, err := Vector(3, 2, 4, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if v.Contig() {
		t.Fatal("strided vector must not be contiguous")
	}
	if v.Size() != 3*2*8 {
		t.Fatalf("size = %d", v.Size())
	}
	if v.Extent() != int64(2*4+2)*8 {
		t.Fatalf("extent = %d", v.Extent())
	}
	want := []Run{{0, 16}, {32 * 1, 16}, {64, 16}}
	got := v.Runs()
	if len(got) != len(want) {
		t.Fatalf("runs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("run %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestVectorUnitStrideCoalesces(t *testing.T) {
	v, err := Vector(5, 3, 3, Int32) // stride == blocklen: contiguous
	if err != nil {
		t.Fatal(err)
	}
	if !v.Contig() || v.NumRuns() != 1 {
		t.Fatalf("unit-stride vector should coalesce: %v", v.Runs())
	}
}

// structSimple models the paper's Listing 7: {i32 a,b,c; 4B gap; f64 d}.
func structSimple(t *testing.T) *Type {
	t.Helper()
	st, err := Struct([]int{3, 1}, []int64{0, 16}, []*Type{Int32, Float64})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStructWithGap(t *testing.T) {
	st := structSimple(t)
	if st.Size() != 20 {
		t.Fatalf("size = %d; want 20", st.Size())
	}
	if st.Extent() != 24 {
		t.Fatalf("extent = %d; want 24 (gap included)", st.Extent())
	}
	if st.Contig() || st.NumRuns() != 2 {
		t.Fatalf("gapped struct must have 2 runs, got %v", st.Runs())
	}
}

func TestStructNoGapCoalesces(t *testing.T) {
	// Listing 8: {i32 a,b; f64 c} — a,b at 0,4; c at 8. No gap.
	st, err := Struct([]int{2, 1}, []int64{0, 8}, []*Type{Int32, Float64})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Contig() || st.NumRuns() != 1 || st.Size() != 16 || st.Extent() != 16 {
		t.Fatalf("no-gap struct should be contiguous: runs=%v size=%d extent=%d",
			st.Runs(), st.Size(), st.Extent())
	}
}

func TestStructVec(t *testing.T) {
	// Listing 6: {i32 a,b,c; gap; f64 d; i32 data[2048]}.
	st, err := Struct([]int{3, 1, 2048}, []int64{0, 16, 24}, []*Type{Int32, Float64, Int32})
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 12+8+4*2048 {
		t.Fatalf("size = %d", st.Size())
	}
	// Two runs: fields before the gap, then d+data fused.
	if st.NumRuns() != 2 {
		t.Fatalf("struct-vec runs = %v", st.Runs())
	}
}

func TestIndexedOrderPreserved(t *testing.T) {
	// Non-monotonic displacements must pack in list order.
	ix, err := Indexed([]int{1, 1, 1}, []int{5, 0, 2}, Int32)
	if err != nil {
		t.Fatal(err)
	}
	src := fill(ix.Span(1))
	dst := make([]byte, ix.PackedSize(1))
	if _, err := ix.Pack(src, 1, dst); err != nil {
		t.Fatal(err)
	}
	want := append(append(append([]byte{}, src[20:24]...), src[0:4]...), src[8:12]...)
	if !bytes.Equal(dst, want) {
		t.Fatal("indexed pack order not preserved")
	}
}

func TestSubarray2D(t *testing.T) {
	// 4x6 array of float64, 2x3 window at (1,2).
	sa, err := Subarray([]int{4, 6}, []int{2, 3}, []int{1, 2}, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Size() != 2*3*8 {
		t.Fatalf("size = %d", sa.Size())
	}
	if sa.Extent() != 4*6*8 {
		t.Fatalf("extent = %d", sa.Extent())
	}
	if sa.NumRuns() != 2 { // two rows of 3 contiguous doubles
		t.Fatalf("runs = %v", sa.Runs())
	}
	src := fill(sa.Span(1))
	dst := make([]byte, sa.Size())
	sa.Pack(src, 1, dst)
	if !bytes.Equal(dst, refPack(sa, src, 1)) {
		t.Fatal("subarray pack mismatch")
	}
}

func TestResizedExtent(t *testing.T) {
	st, err := Struct([]int{1}, []int64{0}, []*Type{Int32})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Resized(st, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r.Extent() != 16 || r.Size() != 4 || r.Contig() {
		t.Fatalf("resized: extent=%d size=%d contig=%v", r.Extent(), r.Size(), r.Contig())
	}
	if _, err := Resized(st, 2); err == nil {
		t.Fatal("shrinking below ub must fail")
	}
}

func TestNestedTypes(t *testing.T) {
	inner, _ := Vector(2, 1, 3, Int32)
	outer, err := Contiguous(3, inner)
	if err != nil {
		t.Fatal(err)
	}
	src := fill(outer.Span(2))
	dst := make([]byte, outer.PackedSize(2))
	if _, err := outer.Pack(src, 2, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, refPack(outer, src, 2)) {
		t.Fatal("nested type pack mismatch")
	}
}

func TestPackUnpackRoundtripGapped(t *testing.T) {
	st := structSimple(t)
	const count = 100
	src := fill(st.Span(count))
	packed := make([]byte, st.PackedSize(count))
	if _, err := st.Pack(src, count, packed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(packed, refPack(st, src, count)) {
		t.Fatal("pack != reference")
	}
	dst := make([]byte, st.Span(count))
	if err := st.Unpack(dst, count, packed); err != nil {
		t.Fatal(err)
	}
	// Data bytes roundtrip; the gap at [12,16) stays zero.
	for e := int64(0); e < count; e++ {
		base := e * st.Extent()
		if !bytes.Equal(dst[base:base+12], src[base:base+12]) {
			t.Fatalf("element %d int fields mismatch", e)
		}
		if !bytes.Equal(dst[base+16:base+24], src[base+16:base+24]) {
			t.Fatalf("element %d double field mismatch", e)
		}
		if dst[base+12] != 0 || dst[base+15] != 0 {
			t.Fatalf("element %d gap bytes touched", e)
		}
	}
}

func TestPackAtStreaming(t *testing.T) {
	st := structSimple(t)
	const count = 57
	src := fill(st.Span(count))
	want := refPack(st, src, count)
	for _, chunk := range []int{1, 3, 7, 20, 21, 64, 1000} {
		got := make([]byte, 0, len(want))
		off := int64(0)
		buf := make([]byte, chunk)
		for off < int64(len(want)) {
			n, err := st.PackAt(src, count, off, buf)
			if err != nil && n == 0 {
				t.Fatalf("chunk %d off %d: %v", chunk, off, err)
			}
			got = append(got, buf[:n]...)
			off += int64(n)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("chunk %d: streamed pack mismatch", chunk)
		}
	}
}

func TestUnpackAtStreaming(t *testing.T) {
	v, _ := Vector(5, 2, 3, Float64)
	const count = 13
	src := fill(v.Span(count))
	packed := refPack(v, src, count)
	for _, chunk := range []int{1, 5, 16, 100} {
		dst := make([]byte, v.Span(count))
		for off := 0; off < len(packed); off += chunk {
			end := off + chunk
			if end > len(packed) {
				end = len(packed)
			}
			if err := v.UnpackAt(dst, count, int64(off), packed[off:end]); err != nil {
				t.Fatal(err)
			}
		}
		reread := make([]byte, len(packed))
		if _, err := v.Pack(dst, count, reread); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reread, packed) {
			t.Fatalf("chunk %d: streamed unpack mismatch", chunk)
		}
	}
}

func TestRegions(t *testing.T) {
	st := structSimple(t)
	buf := fill(st.Span(3))
	regions, err := st.Regions(buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	// structSimple's last run ends at the extent and its first starts at 0,
	// so the tail of each element merges with the head of the next:
	// 2 runs x 3 elements - 2 cross-element merges = 4 regions.
	if len(regions) != 4 {
		t.Fatalf("regions = %d; want 4", len(regions))
	}
	var cat []byte
	for _, r := range regions {
		cat = append(cat, r...)
	}
	if !bytes.Equal(cat, refPack(st, buf, 3)) {
		t.Fatal("regions concat != packed form")
	}
	// A type whose first run does not start at 0 never touches the
	// previous element's tail, so no cross-element merge happens.
	v, err := Struct([]int{1, 1}, []int64{8, 24}, []*Type{Float64, Float64})
	if err != nil {
		t.Fatal(err)
	}
	vregions, err := v.Regions(fill(v.Span(3)), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(vregions) != 6 {
		t.Fatalf("non-adjacent regions = %d; want 6", len(vregions))
	}
	// Contiguous type: a single region regardless of count.
	c, _ := Contiguous(4, Float64)
	regions, _ = c.Regions(fill(c.Span(9)), 9)
	if len(regions) != 1 {
		t.Fatalf("contig regions = %d", len(regions))
	}
}

func TestBufferValidation(t *testing.T) {
	st := structSimple(t)
	small := make([]byte, 10)
	if _, err := st.Pack(small, 1, make([]byte, 100)); err == nil {
		t.Fatal("pack with undersized source must fail")
	}
	if err := st.Unpack(small, 1, make([]byte, 20)); err == nil {
		t.Fatal("unpack with undersized destination must fail")
	}
	if _, err := st.Pack(make([]byte, 100), 1, make([]byte, 3)); err == nil {
		t.Fatal("pack with undersized destination must fail")
	}
	if err := st.Unpack(make([]byte, 100), 1, make([]byte, 7)); err == nil {
		t.Fatal("unpack with wrong packed size must fail")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := Contiguous(-1, Int32); err == nil {
		t.Fatal("negative count")
	}
	if _, err := Indexed([]int{1}, []int{0, 1}, Int32); err == nil {
		t.Fatal("mismatched lists")
	}
	if _, err := Struct([]int{1}, []int64{0}, []*Type{nil}); err == nil {
		t.Fatal("nil field type")
	}
	if _, err := Subarray([]int{4}, []int{5}, []int{0}, Int32); err == nil {
		t.Fatal("oversized subarray window")
	}
	if _, err := Hvector(2, 2, -8, Int32); err == nil {
		t.Fatal("negative stride")
	}
}

// randomType builds a random type of bounded depth for property tests.
func randomType(rng *rand.Rand, depth int) *Type {
	bases := []*Type{Byte, Int32, Int64, Float64}
	if depth <= 0 {
		return bases[rng.Intn(len(bases))]
	}
	base := randomType(rng, depth-1)
	switch rng.Intn(4) {
	case 0:
		t, err := Contiguous(rng.Intn(4)+1, base)
		if err != nil {
			return base
		}
		return t
	case 1:
		bl := rng.Intn(3) + 1
		t, err := Vector(rng.Intn(3)+1, bl, bl+rng.Intn(3), base)
		if err != nil {
			return base
		}
		return t
	case 2:
		n := rng.Intn(3) + 1
		bls := make([]int, n)
		ds := make([]int, n)
		at := 0
		for i := 0; i < n; i++ {
			at += rng.Intn(3)
			bls[i] = rng.Intn(2) + 1
			ds[i] = at
			at += bls[i]
		}
		t, err := Indexed(bls, ds, base)
		if err != nil {
			return base
		}
		return t
	default:
		t, err := Struct([]int{1, 1}, []int64{0, base.Extent() + int64(rng.Intn(8))}, []*Type{base, base})
		if err != nil {
			return base
		}
		return t
	}
}

// Property: Pack matches the reference walk and Unpack(Pack(x)) restores
// every data byte for random nested types, counts and chunkings.
func TestPackUnpackProperty(t *testing.T) {
	check := func(seed int64, countRaw uint8, chunkRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		typ := randomType(rng, rng.Intn(3)+1)
		count := int64(countRaw)%5 + 1
		if typ.Size() == 0 {
			return true
		}
		src := make([]byte, typ.Span(count))
		rng.Read(src)
		want := refPack(typ, src, count)

		// One-shot pack.
		dst := make([]byte, typ.PackedSize(count))
		if _, err := typ.Pack(src, count, dst); err != nil {
			return false
		}
		if !bytes.Equal(dst, want) {
			return false
		}
		// Streamed pack with random chunk.
		chunk := int(chunkRaw)%33 + 1
		var streamed []byte
		buf := make([]byte, chunk)
		for off := int64(0); off < int64(len(want)); {
			n, err := typ.PackAt(src, count, off, buf)
			if n == 0 {
				return err != nil
			}
			streamed = append(streamed, buf[:n]...)
			off += int64(n)
		}
		if !bytes.Equal(streamed, want) {
			return false
		}
		// Unpack restores data bytes.
		out := make([]byte, typ.Span(count))
		if err := typ.Unpack(out, count, dst); err != nil {
			return false
		}
		return bytes.Equal(refPack(typ, out, count), want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCount(t *testing.T) {
	st := structSimple(t)
	if st.Span(0) != 0 || st.PackedSize(0) != 0 {
		t.Fatal("zero count sizes")
	}
	n, err := st.Pack(nil, 0, nil)
	if err != nil || n != 0 {
		t.Fatalf("zero-count pack = %d, %v", n, err)
	}
}
