package ucp

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"mpicd/internal/fabric"
)

// ackGate wraps a NIC and parks every outbound eager ack until release
// is closed, simulating transport backpressure on the ack path (a full
// shared-memory ring, a full socket buffer). blocked is closed when the
// first ack send parks.
type ackGate struct {
	fabric.NIC
	release chan struct{}
	blocked chan struct{}
	once    sync.Once
}

func (g *ackGate) Send(to int, hdr fabric.Header, payload ...[]byte) error {
	if hdr.Kind == kindEagerAck {
		g.once.Do(func() { close(g.blocked) })
		<-g.release
	}
	return g.NIC.Send(to, hdr, payload...)
}

// TestAckBackpressureDoesNotStallProgress pins the ack-pump contract: a
// wire send of an eager ack that blocks on transport backpressure must
// not stall the receiver's progress loop. Before acks were queued onto
// a dedicated pump goroutine, the inline ack send wedged the progress
// loop, the inbox filled, and at cross-process scale every rank ended
// up waiting to push an ack only its equally-stalled peer could drain —
// a distributed deadlock that exhausted retransmission budgets.
func TestAckBackpressureDoesNotStallProgress(t *testing.T) {
	cfg := Config{Reliable: true}
	f := fabric.NewInproc(2, fabric.Config{})
	gate := &ackGate{
		NIC:     f.NIC(1),
		release: make(chan struct{}),
		blocked: make(chan struct{}),
	}
	a := NewWorker(f.NIC(0), cfg)
	b := NewWorker(gate, cfg)
	defer a.Close()
	// NOT deferred for b: Close waits out the pump, which is parked in
	// the gate until release below.

	data := pattern(4096, 7)
	out := make([]byte, len(data))
	rr1, err := b.Recv(0, 1, exactMask, Contig{}, out, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	sr1, err := a.Send(1, 1, Contig{}, data, int64(len(data)), 0, ProtoEager)
	if err != nil {
		t.Fatal(err)
	}
	if err := rr1.WaitTimeout(5 * time.Second); err != nil {
		t.Fatalf("first receive: %v", err)
	}
	select {
	case <-gate.blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("no ack send parked in the gate")
	}

	// The receiver's ack to message 1 is wedged on "backpressure". The
	// progress loop must still deliver message 2.
	data2 := pattern(4096, 9)
	out2 := make([]byte, len(data2))
	rr2, err := b.Recv(0, 2, exactMask, Contig{}, out2, int64(len(data2)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Send(1, 2, Contig{}, data2, int64(len(data2)), 0, ProtoEager); err != nil {
		t.Fatal(err)
	}
	if err := rr2.WaitTimeout(5 * time.Second); err != nil {
		t.Fatalf("receive behind a blocked ack did not complete: %v", err)
	}
	if !bytes.Equal(out2, data2) {
		t.Fatal("second payload corrupted")
	}

	// Releasing the backpressure lets the queued acks drain and the
	// sender's reliable completions land.
	close(gate.release)
	if err := sr1.WaitTimeout(5 * time.Second); err != nil {
		t.Fatalf("first send after ack release: %v", err)
	}
	b.Close()
}
