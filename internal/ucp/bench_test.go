package ucp

import (
	"fmt"
	"testing"

	"mpicd/internal/fabric"
)

// benchPingpong times half-round-trips of (dt, bufs) between two workers.
func benchPingpong(b *testing.B, cfg Config, dt Datatype, sbuf, rbuf any, count int64, bytes int64) {
	f := fabric.NewInproc(2, fabric.Config{})
	a := NewWorker(f.NIC(0), cfg)
	w := NewWorker(f.NIC(1), cfg)
	defer a.Close()
	defer w.Close()
	done := make(chan error, 1)
	go func() {
		for i := 0; i < b.N; i++ {
			rr, err := w.Recv(0, 1, ^Tag(0), dt, rbuf, count)
			if err == nil {
				err = rr.Wait()
			}
			if err != nil {
				done <- err
				return
			}
			sr, err := w.Send(0, 2, dt, rbuf, count, 0, ProtoAuto)
			if err == nil {
				err = sr.Wait()
			}
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	b.SetBytes(2 * bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := a.Send(1, 1, dt, sbuf, count, 0, ProtoAuto)
		if err == nil {
			err = sr.Wait()
		}
		if err != nil {
			b.Fatal(err)
		}
		rr, err := a.Recv(1, 2, ^Tag(0), dt, sbuf, count)
		if err == nil {
			err = rr.Wait()
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkContigEagerVsRndv shows the protocol split around the
// threshold the paper's Figure 7 dip comes from.
func BenchmarkContigEagerVsRndv(b *testing.B) {
	for _, size := range []int{1024, 16 * 1024, 32 * 1024, 64 * 1024, 1 << 20} {
		b.Run(fmt.Sprint(size), func(b *testing.B) {
			sbuf := make([]byte, size)
			rbuf := make([]byte, size)
			benchPingpong(b, Config{}, Contig{}, sbuf, rbuf, int64(size), int64(size))
		})
	}
}

// BenchmarkIovRegions measures region-list transfers for few-large vs
// many-small shapes.
func BenchmarkIovRegions(b *testing.B) {
	const total = 1 << 20
	for _, regions := range []int{4, 64, 1024, 16384} {
		b.Run(fmt.Sprintf("regions-%d", regions), func(b *testing.B) {
			mk := func() [][]byte {
				out := make([][]byte, regions)
				for i := range out {
					out[i] = make([]byte, total/regions)
				}
				return out
			}
			benchPingpong(b, Config{}, Iov{}, mk(), mk(), -1, total)
		})
	}
}

// BenchmarkGenericCallbacks measures the callback-packed path against the
// contiguous fast path at the same size.
func BenchmarkGenericCallbacks(b *testing.B) {
	const size = 1 << 20
	ops := &xorOps{key: 0}
	sbuf := make([]byte, size)
	rbuf := make([]byte, size)
	b.Run("generic", func(b *testing.B) {
		benchPingpong(b, Config{}, Generic{Ops: ops}, sbuf, rbuf, size, size)
	})
	b.Run("contig", func(b *testing.B) {
		benchPingpong(b, Config{}, Contig{}, sbuf, rbuf, size, size)
	})
}

// BenchmarkMessageRate measures small-message throughput (matching-path
// overhead).
func BenchmarkMessageRate(b *testing.B) {
	sbuf := make([]byte, 8)
	rbuf := make([]byte, 8)
	benchPingpong(b, Config{}, Contig{}, sbuf, rbuf, 8, 8)
}
