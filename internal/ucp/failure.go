package ucp

// Failure notification: when a peer process is declared dead — by the
// heartbeat detector, by a fabric error only a dead process can produce
// (ErrRankDead), or by the layer above — every operation bound to that
// peer completes with ErrProcFailed instead of hanging on a deadline
// that may not exist:
//
//   - posted receives from the peer (and AnySource receives whose only
//     possible remote senders are all dead) complete immediately;
//   - matched eager receives mid-delivery fail (the remaining fragments
//     will never arrive);
//   - rendezvous pulls in flight are failed and their Get loops abandon
//     retrying;
//   - rendezvous sends awaiting a FIN, and reliable eager sends awaiting
//     an ack, complete with the failure instead of burning their
//     retransmission budget;
//   - partially-buffered unexpected messages from the peer are marked
//     errored so a late receive fails fast — but fully-arrived messages
//     stay deliverable, matching the MPI/ULFM rule that messages handed
//     to the transport before the death are still receivable;
//   - blocked probes wake (cond broadcast) and observe the dead peer.
//
// Death is sticky and per-worker near-monotone: dead[] bits go
// false→true on declaration and only an explicit Revive — the elastic
// re-admission of a respawned process under the same rank — flips one
// back. The lock-free hot-path checks need no fences beyond the atomics
// themselves; a send racing a revival may spuriously observe death one
// last time, which callers of Revive (the Grow protocol) absorb by
// sequencing revival before any traffic toward the new incarnation.

import (
	"fmt"
	"time"
)

func procFailedErr(rank int) error {
	return fmt.Errorf("%w: rank %d", ErrProcFailed, rank)
}

// PeerFailed reports whether rank has been declared dead on this worker.
func (w *Worker) PeerFailed(rank int) bool {
	return rank >= 0 && rank < len(w.dead) && w.dead[rank].Load()
}

// FailedPeers returns the ranks declared dead, ascending.
func (w *Worker) FailedPeers() []int {
	var out []int
	for r := range w.dead {
		if w.dead[r].Load() {
			out = append(out, r)
		}
	}
	return out
}

// allOtherPeersDead reports whether every rank except the local one is
// dead — the condition under which an AnySource receive can never be
// satisfied by a remote sender (loopback self-sends are not counted as
// possible senders here; a rank blocked in a receive is not concurrently
// self-sending on the path this guards).
func (w *Worker) allOtherPeersDead() bool {
	n := int64(w.Size() - 1)
	return n > 0 && w.deadCount.Load() >= n
}

// deadSourceErr returns the failure a receive or probe of `from` should
// report when its possible senders are gone, or nil.
func (w *Worker) deadSourceErr(from int) error {
	if from >= 0 {
		if w.PeerFailed(from) {
			return procFailedErr(from)
		}
		return nil
	}
	if w.allOtherPeersDead() {
		return fmt.Errorf("%w: every possible source is dead", ErrProcFailed)
	}
	return nil
}

// OnPeerFailure registers fn to run (outside the worker lock, in the
// declaring goroutine) each time a peer is newly declared dead. The
// recovery layer above uses it to poison communicators containing the
// dead rank.
func (w *Worker) OnPeerFailure(fn func(rank int)) {
	w.mu.Lock()
	w.onPeerFail = append(w.onPeerFail, fn)
	w.mu.Unlock()
}

// AbortWhere completes every posted-but-unmatched receive satisfying pred
// with err and wakes blocked probes, returning how many receives it
// failed. The layer above uses it to poison a revoked communicator's
// matching context without touching other communicators sharing the
// worker (pred sees each receive's matching criteria).
func (w *Worker) AbortWhere(pred func(from int, tag, mask Tag) bool, err error) int {
	var failed []*Request
	w.mu.Lock()
	if !w.closed {
		failed = w.table.filterPosted(func(r *Request) bool {
			return !pred(r.from, r.tag, r.mask)
		})
		w.cond.Broadcast()
	}
	w.mu.Unlock()
	for _, r := range failed {
		r.complete(-1, 0, 0, 0, err)
	}
	return len(failed)
}

// poisonRule is a standing AbortWhere: receives posted after the rule is
// installed fail at post time if their matching criteria satisfy pred.
type poisonRule struct {
	pred func(from int, tag, mask Tag) bool
	err  error
}

// PoisonWhere is AbortWhere made permanent: it completes every currently
// posted receive satisfying pred with err AND installs pred as a
// standing rule that fails matching receives posted afterwards. The
// recovery layer needs the standing half because revocation races the
// communicator's own operations — a collective that passed its
// revocation check can post its receive after the abort sweep ran, and
// a one-shot sweep would leave that receive blocked forever on a
// context nobody will ever send to again. Rules accumulate for the
// worker's lifetime; install one per poisoned context, and only for
// contexts that are never reused (revoked communicators qualify — their
// ids are agreed monotonically).
func (w *Worker) PoisonWhere(pred func(from int, tag, mask Tag) bool, err error) int {
	w.mu.Lock()
	if !w.closed {
		w.poison = append(w.poison, poisonRule{pred: pred, err: err})
	}
	w.mu.Unlock()
	return w.AbortWhere(pred, err)
}

// DeclarePeerFailed marks rank dead and fails everything bound to it.
// Idempotent; safe to call from any goroutine, including the detector's
// prober and pull goroutines. The local rank cannot be declared dead.
func (w *Worker) DeclarePeerFailed(rank int) {
	if rank < 0 || rank >= len(w.dead) || rank == w.Rank() {
		return
	}
	if !w.dead[rank].CompareAndSwap(false, true) {
		return
	}
	w.deadCount.Add(1)
	w.stats.PeerFailures.Add(1)
	if w.det != nil {
		// Keep the detector's view consistent when the declaration came
		// from above (it no-ops if the detector made the call).
		w.det.DeclareDead(rank)
	}
	// Tell the provider too: an SHM ring producer parked on the dead
	// consumer's full ring unblocks only when the provider knows the
	// peer is gone, and a silence-based verdict may precede the socket
	// plane's own evidence.
	if dd, ok := w.nic.(interface{ DeclareRankDown(int) }); ok {
		dd.DeclareRankDown(rank)
	}
	err := procFailedErr(rank)
	allDead := w.allOtherPeersDead()

	var (
		failedReqs []*Request
		eagerOps   []*recvOp
		pullOps    []*recvOp
		deadSends  []*sendOp
		deadRex    []*rexmitEntry
	)
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	failedReqs = w.table.filterPosted(func(r *Request) bool {
		return !(r.from == rank || (r.from < 0 && allDead))
	})
	for key, op := range w.active {
		if key.from == rank {
			delete(w.active, key)
			eagerOps = append(eagerOps, op)
		}
	}
	for key, op := range w.pulls {
		if key.from == rank {
			pullOps = append(pullOps, op)
		}
	}
	for id, s := range w.sends {
		if s.dst == rank {
			delete(w.sends, id)
			delete(w.rexmit, id)
			deadSends = append(deadSends, s)
		}
	}
	for id, e := range w.rexmit {
		if e.dst == rank {
			delete(w.rexmit, id)
			deadRex = append(deadRex, e)
		}
	}
	// Buffered messages from the dead peer: complete eager payloads stay
	// deliverable; anything that still needs the peer (missing fragments,
	// a rendezvous body to pull) is poisoned so a match fails fast.
	now := time.Now()
	poison := func(m *unexMsg) {
		if m.from != rank || m.errored != nil || m.selfSrc != nil {
			return
		}
		if m.rndv || m.buffered < m.total {
			m.errored = err
			m.erroredAt = now
			w.releaseFrags(m)
		}
	}
	w.table.forEachUnexpected(poison)
	for _, m := range w.claimed {
		poison(m)
	}
	cbs := append([]func(int){}, w.onPeerFail...)
	w.cond.Broadcast()
	w.mu.Unlock()

	for _, r := range failedReqs {
		r.complete(rank, 0, 0, 0, err)
	}
	for _, op := range eagerOps {
		op.mu.Lock()
		already := op.finished
		op.finished = true
		op.discard = true
		if op.failure == nil {
			op.failure = err
		}
		for _, p := range op.pending {
			p.Release()
		}
		op.pending = nil
		op.mu.Unlock()
		if !already {
			w.finishRecv(op)
		}
	}
	for _, op := range pullOps {
		// The pull goroutine owns completion; mark the failure so its Get
		// loop (which checks PeerFailed between attempts) finishes with it.
		op.mu.Lock()
		if op.failure == nil {
			op.failure = err
		}
		op.discard = true
		op.mu.Unlock()
	}
	for _, s := range deadSends {
		w.nic.Deregister(s.key)
		s.src.Finish()
		s.req.complete(rank, 0, 0, 0, err)
	}
	for _, e := range deadRex {
		e.req.complete(rank, e.tag, 0, e.aux, err)
	}
	for _, cb := range cbs {
		cb(rank)
	}
}

// Revive lifts rank's death record so a respawned process can be
// re-admitted under the same fabric rank (the Grow protocol calls it
// before any traffic flows toward the replacement). It purges every
// trace of the dead incarnation first — reliable-delivery dedup records
// (a fresh process restarts its message-id space, so stale records
// would swallow its first sends as duplicates) and buffered unexpected
// messages — then clears the dead bit and resets the liveness detector
// and the provider's connection state. After Revive, operations on the
// rank work again and the rank can be declared failed anew.
func (w *Worker) Revive(rank int) error {
	if rank < 0 || rank >= len(w.dead) {
		return fmt.Errorf("ucp: revive rank %d out of range [0,%d)", rank, len(w.dead))
	}
	if rank == w.Rank() {
		return fmt.Errorf("ucp: rank %d cannot revive itself", rank)
	}
	var stale []*unexMsg
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrWorkerClosed
	}
	if w.completed != nil {
		kept := w.completedFIFO[:0]
		for _, k := range w.completedFIFO {
			if k.from == rank {
				delete(w.completed, k)
			} else {
				kept = append(kept, k)
			}
		}
		w.completedFIFO = kept
	}
	stale = w.table.filterUnexpected(func(m *unexMsg) bool { return m.from != rank })
	for _, m := range stale {
		w.releaseFrags(m)
	}
	w.mu.Unlock()
	if w.dead[rank].CompareAndSwap(true, false) {
		w.deadCount.Add(-1)
	}
	// Reset liveness and connection state last, so probes toward the
	// still-booting replacement start from a clean slate. The detector
	// (when present) wraps the provider and forwards.
	if rr, ok := w.nic.(interface{ ReviveRank(int) }); ok {
		rr.ReviveRank(rank)
	}
	return nil
}

// UpdateAddr repoints the fabric at a respawned peer's new address. A
// replacement process generally cannot reuse its predecessor's listening
// endpoint (a new TCP listener gets a fresh ephemeral port), so the Grow
// protocol pushes the rejoin address down before any traffic flows. The
// address-bearing providers forward; fabrics without dialable addresses
// (in-process, shared-memory paths derived from the rank) never need the
// call and reject it so a misconfigured launcher fails loudly.
func (w *Worker) UpdateAddr(rank int, addr string) error {
	if up, ok := w.nic.(interface{ UpdateAddr(int, string) error }); ok {
		return up.UpdateAddr(rank, addr)
	}
	return fmt.Errorf("ucp: fabric %T does not support address updates", w.nic)
}
