package ucp

// Failure notification: when a peer process is declared dead — by the
// heartbeat detector, by a fabric error only a dead process can produce
// (ErrRankDead), or by the layer above — every operation bound to that
// peer completes with ErrProcFailed instead of hanging on a deadline
// that may not exist:
//
//   - posted receives from the peer (and AnySource receives whose only
//     possible remote senders are all dead) complete immediately;
//   - matched eager receives mid-delivery fail (the remaining fragments
//     will never arrive);
//   - rendezvous pulls in flight are failed and their Get loops abandon
//     retrying;
//   - rendezvous sends awaiting a FIN, and reliable eager sends awaiting
//     an ack, complete with the failure instead of burning their
//     retransmission budget;
//   - partially-buffered unexpected messages from the peer are marked
//     errored so a late receive fails fast — but fully-arrived messages
//     stay deliverable, matching the MPI/ULFM rule that messages handed
//     to the transport before the death are still receivable;
//   - blocked probes wake (cond broadcast) and observe the dead peer.
//
// Death is permanent and per-worker-monotone: dead[] bits only ever go
// false→true, so the lock-free hot-path checks need no fences beyond
// the atomics themselves.

import (
	"fmt"
	"time"
)

func procFailedErr(rank int) error {
	return fmt.Errorf("%w: rank %d", ErrProcFailed, rank)
}

// PeerFailed reports whether rank has been declared dead on this worker.
func (w *Worker) PeerFailed(rank int) bool {
	return rank >= 0 && rank < len(w.dead) && w.dead[rank].Load()
}

// FailedPeers returns the ranks declared dead, ascending.
func (w *Worker) FailedPeers() []int {
	var out []int
	for r := range w.dead {
		if w.dead[r].Load() {
			out = append(out, r)
		}
	}
	return out
}

// allOtherPeersDead reports whether every rank except the local one is
// dead — the condition under which an AnySource receive can never be
// satisfied by a remote sender (loopback self-sends are not counted as
// possible senders here; a rank blocked in a receive is not concurrently
// self-sending on the path this guards).
func (w *Worker) allOtherPeersDead() bool {
	n := int64(w.Size() - 1)
	return n > 0 && w.deadCount.Load() >= n
}

// deadSourceErr returns the failure a receive or probe of `from` should
// report when its possible senders are gone, or nil.
func (w *Worker) deadSourceErr(from int) error {
	if from >= 0 {
		if w.PeerFailed(from) {
			return procFailedErr(from)
		}
		return nil
	}
	if w.allOtherPeersDead() {
		return fmt.Errorf("%w: every possible source is dead", ErrProcFailed)
	}
	return nil
}

// OnPeerFailure registers fn to run (outside the worker lock, in the
// declaring goroutine) each time a peer is newly declared dead. The
// recovery layer above uses it to poison communicators containing the
// dead rank.
func (w *Worker) OnPeerFailure(fn func(rank int)) {
	w.mu.Lock()
	w.onPeerFail = append(w.onPeerFail, fn)
	w.mu.Unlock()
}

// AbortWhere completes every posted-but-unmatched receive satisfying pred
// with err and wakes blocked probes, returning how many receives it
// failed. The layer above uses it to poison a revoked communicator's
// matching context without touching other communicators sharing the
// worker (pred sees each receive's matching criteria).
func (w *Worker) AbortWhere(pred func(from int, tag, mask Tag) bool, err error) int {
	var failed []*Request
	w.mu.Lock()
	if !w.closed {
		failed = w.table.filterPosted(func(r *Request) bool {
			return !pred(r.from, r.tag, r.mask)
		})
		w.cond.Broadcast()
	}
	w.mu.Unlock()
	for _, r := range failed {
		r.complete(-1, 0, 0, 0, err)
	}
	return len(failed)
}

// DeclarePeerFailed marks rank dead and fails everything bound to it.
// Idempotent; safe to call from any goroutine, including the detector's
// prober and pull goroutines. The local rank cannot be declared dead.
func (w *Worker) DeclarePeerFailed(rank int) {
	if rank < 0 || rank >= len(w.dead) || rank == w.Rank() {
		return
	}
	if !w.dead[rank].CompareAndSwap(false, true) {
		return
	}
	w.deadCount.Add(1)
	w.stats.PeerFailures.Add(1)
	if w.det != nil {
		// Keep the detector's view consistent when the declaration came
		// from above (it no-ops if the detector made the call).
		w.det.DeclareDead(rank)
	}
	err := procFailedErr(rank)
	allDead := w.allOtherPeersDead()

	var (
		failedReqs []*Request
		eagerOps   []*recvOp
		pullOps    []*recvOp
		deadSends  []*sendOp
		deadRex    []*rexmitEntry
	)
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	failedReqs = w.table.filterPosted(func(r *Request) bool {
		return !(r.from == rank || (r.from < 0 && allDead))
	})
	for key, op := range w.active {
		if key.from == rank {
			delete(w.active, key)
			eagerOps = append(eagerOps, op)
		}
	}
	for key, op := range w.pulls {
		if key.from == rank {
			pullOps = append(pullOps, op)
		}
	}
	for id, s := range w.sends {
		if s.dst == rank {
			delete(w.sends, id)
			delete(w.rexmit, id)
			deadSends = append(deadSends, s)
		}
	}
	for id, e := range w.rexmit {
		if e.dst == rank {
			delete(w.rexmit, id)
			deadRex = append(deadRex, e)
		}
	}
	// Buffered messages from the dead peer: complete eager payloads stay
	// deliverable; anything that still needs the peer (missing fragments,
	// a rendezvous body to pull) is poisoned so a match fails fast.
	now := time.Now()
	poison := func(m *unexMsg) {
		if m.from != rank || m.errored != nil || m.selfSrc != nil {
			return
		}
		if m.rndv || m.buffered < m.total {
			m.errored = err
			m.erroredAt = now
			w.releaseFrags(m)
		}
	}
	w.table.forEachUnexpected(poison)
	for _, m := range w.claimed {
		poison(m)
	}
	cbs := append([]func(int){}, w.onPeerFail...)
	w.cond.Broadcast()
	w.mu.Unlock()

	for _, r := range failedReqs {
		r.complete(rank, 0, 0, 0, err)
	}
	for _, op := range eagerOps {
		op.mu.Lock()
		already := op.finished
		op.finished = true
		op.discard = true
		if op.failure == nil {
			op.failure = err
		}
		for _, p := range op.pending {
			p.Release()
		}
		op.pending = nil
		op.mu.Unlock()
		if !already {
			w.finishRecv(op)
		}
	}
	for _, op := range pullOps {
		// The pull goroutine owns completion; mark the failure so its Get
		// loop (which checks PeerFailed between attempts) finishes with it.
		op.mu.Lock()
		if op.failure == nil {
			op.failure = err
		}
		op.discard = true
		op.mu.Unlock()
	}
	for _, s := range deadSends {
		w.nic.Deregister(s.key)
		s.src.Finish()
		s.req.complete(rank, 0, 0, 0, err)
	}
	for _, e := range deadRex {
		e.req.complete(rank, e.tag, 0, e.aux, err)
	}
	for _, cb := range cbs {
		cb(rank)
	}
}
