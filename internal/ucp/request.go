package ucp

import (
	"errors"
	"sync"
	"time"

	"mpicd/internal/obs"
)

// ErrCanceled is reported by requests removed with CancelRecv.
var ErrCanceled = errors.New("ucp: request canceled")

// Request tracks one in-flight send or receive.
type Request struct {
	w      *Worker
	isSend bool

	// Matching criteria (receives only).
	tag  Tag
	mask Tag
	from int // -1 means any source

	dt    Datatype
	buf   any
	count int64

	// deadline, when non-zero, is enforced by the worker's janitor: an
	// incomplete request past it fails with ErrTimeout.
	deadline time.Time

	// postSeq is the global posting-order stamp (see matchTable).
	postSeq uint64

	// Observability (set only when the worker's obs layer is enabled).
	obsStart time.Time // post/send time, for the completion-latency histogram
	msgID    uint64    // transport message id, once known (0 for unmatched receives)

	mu        sync.Mutex
	done      chan struct{}
	err       error
	completed bool

	// Completion status.
	srcRank int
	srcTag  Tag
	total   int64
	aux0    int64
}

func newRequest(w *Worker) *Request {
	return &Request{w: w, done: make(chan struct{}), srcRank: -1}
}

// complete finishes the request exactly once.
func (r *Request) complete(from int, tag Tag, total, aux0 int64, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.completed {
		return
	}
	r.completed = true
	r.srcRank = from
	r.srcTag = tag
	r.total = total
	r.aux0 = aux0
	r.err = err
	close(r.done)
	if o := r.w.obs; o != nil {
		if !r.obsStart.IsZero() {
			o.completeNS.Observe(time.Since(r.obsStart).Nanoseconds())
		}
		o.sizeBytes.Observe(total)
		status := int64(0)
		if err != nil {
			status = 1
		}
		kind := obs.EvComplete
		if errors.Is(err, ErrTimeout) {
			kind = obs.EvTimeout
		}
		r.w.ev(kind, from, r.msgID, tag, total, status)
	}
}

// Wait blocks until the request completes and returns its error.
func (r *Request) Wait() error {
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// WaitTimeout blocks until the request completes or d elapses, returning
// ErrTimeout in the latter case. The request itself is not canceled — a
// late completion still lands and can be observed with Test or Wait —
// so callers get a bounded wait even when the peer's link is down.
func (r *Request) WaitTimeout(d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-r.done:
		r.mu.Lock()
		defer r.mu.Unlock()
		return r.err
	case <-t.C:
		return ErrTimeout
	}
}

// Test reports whether the request has completed, without blocking.
func (r *Request) Test() (bool, error) {
	select {
	case <-r.done:
		r.mu.Lock()
		defer r.mu.Unlock()
		return true, r.err
	default:
		return false, nil
	}
}

// Done exposes the completion channel for select-based progress.
func (r *Request) Done() <-chan struct{} { return r.done }

// Status returns the source rank, matched tag and transferred byte count.
// Valid only after completion.
func (r *Request) Status() (from int, tag Tag, n int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.srcRank, r.srcTag, r.total
}

// Aux returns the sender-provided auxiliary word (the point-to-point layer
// uses it to carry the packed-part length of custom datatypes). Valid only
// after completion.
func (r *Request) Aux() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.aux0
}

// WaitAll waits on every request and returns the first error encountered.
// After a failure the remaining requests are not waited blindly — a batch
// partner may be dead and without a deadline its receives would never
// complete. Still-unmatched receives are canceled; everything else
// (matched receives, in-flight sends) is drained so no request outlives
// the call with its buffers still in use.
func WaitAll(reqs ...*Request) error {
	for i, r := range reqs {
		if r == nil {
			continue
		}
		if err := r.Wait(); err != nil {
			for _, rr := range reqs[i+1:] {
				if rr == nil {
					continue
				}
				if !rr.isSend && rr.w.CancelRecv(rr) {
					continue
				}
				_ = rr.Wait()
			}
			return err
		}
	}
	return nil
}
