package ucp

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mpicd/internal/fabric"
)

const anyMask = Tag(0)

const exactMask = ^Tag(0)

// pair brings up a 2-rank inproc fabric with workers.
func pair(t *testing.T, fcfg fabric.Config, cfg Config) (*Worker, *Worker) {
	t.Helper()
	return group(t, 2, fcfg, cfg)
}

func group(t *testing.T, n int, fcfg fabric.Config, cfg Config) (*Worker, *Worker) {
	t.Helper()
	f := fabric.NewInproc(n, fcfg)
	ws := make([]*Worker, n)
	for i := range ws {
		ws[i] = NewWorker(f.NIC(i), cfg)
	}
	t.Cleanup(func() {
		for _, w := range ws {
			w.Close()
		}
	})
	if n == 2 {
		return ws[0], ws[1]
	}
	return ws[0], ws[1]
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*13 + seed
	}
	return b
}

func sendRecvContig(t *testing.T, size int, cfg Config, fcfg fabric.Config) {
	t.Helper()
	a, b := pair(t, fcfg, cfg)
	data := pattern(size, 1)
	out := make([]byte, size)
	rr, err := b.Recv(0, 7, exactMask, Contig{}, out, int64(size))
	if err != nil {
		t.Fatal(err)
	}
	sr, err := a.Send(1, 7, Contig{}, data, int64(size), 0, ProtoAuto)
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatalf("size %d: data mismatch", size)
	}
	from, tag, n := rr.Status()
	if from != 0 || tag != 7 || n != int64(size) {
		t.Fatalf("status = (%d, %d, %d)", from, tag, n)
	}
}

func TestContigSizes(t *testing.T) {
	// Spans zero, sub-fragment, exact fragment, multi-fragment eager, and
	// rendezvous sizes.
	for _, size := range []int{0, 1, 100, 4096, 16384, 16385, 32768, 32769, 100000, 1 << 20} {
		t.Run(fmt.Sprint(size), func(t *testing.T) {
			sendRecvContig(t, size, Config{FragSize: 4096}, fabric.Config{FragSize: 4096})
		})
	}
}

func TestUnexpectedBeforePost(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{})
	data := pattern(10000, 2)
	sr, err := a.Send(1, 3, Contig{}, data, -1, 0, ProtoAuto)
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.Wait(); err != nil { // eager completes locally
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let it land in the unexpected queue
	out := make([]byte, 10000)
	rr, err := b.Recv(0, 3, exactMask, Contig{}, out, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rr.Wait(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("unexpected-path data mismatch")
	}
}

func TestUnexpectedRendezvous(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{RndvThresh: 1024})
	data := pattern(100000, 3)
	sr, _ := a.Send(1, 3, Contig{}, data, -1, 0, ProtoAuto)
	time.Sleep(10 * time.Millisecond)
	out := make([]byte, 100000)
	rr, _ := b.Recv(0, 3, exactMask, Contig{}, out, -1)
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("rndv unexpected-path mismatch")
	}
}

func TestTagMatchingWildcards(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{})
	// Send three tagged messages.
	for tag := Tag(1); tag <= 3; tag++ {
		if _, err := a.Send(1, tag, Contig{}, []byte{byte(tag)}, 1, 0, ProtoAuto); err != nil {
			t.Fatal(err)
		}
	}
	// Wildcard receive picks them up in arrival order.
	for want := 1; want <= 3; want++ {
		out := make([]byte, 1)
		rr, err := b.Recv(-1, 0, anyMask, Contig{}, out, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := rr.Wait(); err != nil {
			t.Fatal(err)
		}
		if out[0] != byte(want) {
			t.Fatalf("wildcard order: got %d, want %d", out[0], want)
		}
	}
}

func TestTagSelectivity(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{})
	if _, err := a.Send(1, 10, Contig{}, []byte{10}, 1, 0, ProtoAuto); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Send(1, 20, Contig{}, []byte{20}, 1, 0, ProtoAuto); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 1)
	rr, _ := b.Recv(0, 20, exactMask, Contig{}, out, 1)
	if err := rr.Wait(); err != nil {
		t.Fatal(err)
	}
	if out[0] != 20 {
		t.Fatalf("selective recv got %d", out[0])
	}
	rr, _ = b.Recv(0, 10, exactMask, Contig{}, out, 1)
	if err := rr.Wait(); err != nil {
		t.Fatal(err)
	}
	if out[0] != 10 {
		t.Fatalf("second recv got %d", out[0])
	}
}

func TestPerSourceTagFIFO(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{})
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := a.Send(1, 5, Contig{}, []byte{byte(i)}, 1, 0, ProtoAuto); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		out := make([]byte, 1)
		rr, _ := b.Recv(0, 5, exactMask, Contig{}, out, 1)
		if err := rr.Wait(); err != nil {
			t.Fatal(err)
		}
		if out[0] != byte(i) {
			t.Fatalf("message %d out of order (got %d)", i, out[0])
		}
	}
}

func TestIovSendRecv(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{})
	parts := [][]byte{pattern(100, 1), pattern(5000, 2), pattern(3, 3)}
	var want []byte
	for _, p := range parts {
		want = append(want, p...)
	}
	dst := [][]byte{make([]byte, 2000), make([]byte, 3103)}
	rr, err := b.Recv(0, 9, exactMask, Iov{}, dst, -1)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := a.Send(1, 9, Iov{}, parts, -1, 0, ProtoAuto)
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	got := append(append([]byte{}, dst[0]...), dst[1]...)
	if !bytes.Equal(got, want) {
		t.Fatal("iov reshape mismatch")
	}
}

func TestSelfSend(t *testing.T) {
	f := fabric.NewInproc(1, fabric.Config{})
	w := NewWorker(f.NIC(0), Config{})
	defer w.Close()
	data := pattern(50000, 4)
	out := make([]byte, 50000)
	rr, err := w.Recv(0, 1, exactMask, Contig{}, out, -1)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := w.Send(0, 1, Contig{}, data, -1, 0, ProtoAuto)
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("self-send mismatch")
	}
	// Send-before-recv order too.
	sr, _ = w.Send(0, 2, Contig{}, data[:10], -1, 0, ProtoAuto)
	rr, _ = w.Recv(0, 2, exactMask, Contig{}, out[:10], -1)
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
}

func TestTruncationError(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{})
	data := pattern(1000, 5)
	out := make([]byte, 10)
	rr, _ := b.Recv(0, 1, exactMask, Contig{}, out, -1)
	a.Send(1, 1, Contig{}, data, -1, 0, ProtoAuto)
	err := rr.Wait()
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v; want ErrTruncated", err)
	}
}

func TestTruncationErrorRndv(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{RndvThresh: 100})
	data := pattern(100000, 5)
	out := make([]byte, 10)
	rr, _ := b.Recv(0, 1, exactMask, Contig{}, out, -1)
	sr, _ := a.Send(1, 1, Contig{}, data, -1, 0, ProtoAuto)
	if err := rr.Wait(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("recv err = %v; want ErrTruncated", err)
	}
	// Sender still completes (FIN always arrives).
	if err := sr.Wait(); err == nil {
		t.Log("sender completed cleanly after remote truncation (allowed)")
	}
}

func TestProbeAndGetCount(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{})
	data := pattern(777, 6)
	if _, err := a.Send(1, 33, Contig{}, data, -1, 4242, ProtoAuto); err != nil {
		t.Fatal(err)
	}
	m, err := b.Probe(-1, 33, exactMask, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total != 777 || m.From != 0 || m.Tag != 33 || m.Aux0 != 4242 {
		t.Fatalf("probe info = %+v", m)
	}
	// Probe does not consume: a normal receive still matches.
	out := make([]byte, m.Total)
	rr, _ := b.Recv(m.From, m.Tag, exactMask, Contig{}, out, -1)
	if err := rr.Wait(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("probe+recv mismatch")
	}
}

func TestProbeNonBlocking(t *testing.T) {
	_, b := pair(t, fabric.Config{}, Config{})
	m, err := b.Probe(-1, 0, anyMask, false)
	if err != nil || m != nil {
		t.Fatalf("empty probe = %v, %v", m, err)
	}
}

func TestMprobeMrecv(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{})
	d1 := pattern(100, 7)
	d2 := pattern(200, 8)
	a.Send(1, 1, Contig{}, d1, -1, 0, ProtoAuto)
	a.Send(1, 1, Contig{}, d2, -1, 0, ProtoAuto)
	m1, err := b.Mprobe(-1, 1, exactMask, true)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := b.Mprobe(-1, 1, exactMask, true)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Total != 100 || m2.Total != 200 {
		t.Fatalf("mprobe sizes = %d, %d", m1.Total, m2.Total)
	}
	// Receive them out of order: claims are independent.
	o2 := make([]byte, m2.Total)
	r2, err := b.MRecv(m2, Contig{}, o2, -1)
	if err != nil {
		t.Fatal(err)
	}
	o1 := make([]byte, m1.Total)
	r1, err := b.MRecv(m1, Contig{}, o1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(r1, r2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(o1, d1) || !bytes.Equal(o2, d2) {
		t.Fatal("mrecv data mismatch")
	}
	// Double MRecv on the same handle fails.
	if _, err := b.MRecv(m1, Contig{}, o1, -1); err == nil {
		t.Fatal("MRecv on consumed message should fail")
	}
}

func TestMprobeRendezvousMessage(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{RndvThresh: 512})
	data := pattern(90000, 9)
	sr, _ := a.Send(1, 2, Contig{}, data, -1, 0, ProtoAuto)
	m, err := b.Mprobe(-1, 2, exactMask, true)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, m.Total)
	rr, err := b.MRecv(m, Contig{}, out, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("rndv mrecv mismatch")
	}
}

func TestCancelRecv(t *testing.T) {
	_, b := pair(t, fabric.Config{}, Config{})
	out := make([]byte, 10)
	rr, _ := b.Recv(-1, 1, exactMask, Contig{}, out, -1)
	if !b.CancelRecv(rr) {
		t.Fatal("cancel should succeed for unmatched recv")
	}
	if err := rr.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v; want ErrCanceled", err)
	}
	if b.CancelRecv(rr) {
		t.Fatal("second cancel should fail")
	}
}

func TestConcurrentPingPongManyGoroutines(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{})
	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for g := 0; g < workers; g++ {
		wg.Add(2)
		tag := Tag(100 + g)
		go func(tag Tag) {
			defer wg.Done()
			buf := pattern(1024, byte(tag))
			for i := 0; i < iters; i++ {
				sr, err := a.Send(1, tag, Contig{}, buf, -1, 0, ProtoAuto)
				if err != nil {
					errs <- err
					return
				}
				if err := sr.Wait(); err != nil {
					errs <- err
					return
				}
			}
		}(tag)
		go func(tag Tag) {
			defer wg.Done()
			out := make([]byte, 1024)
			want := pattern(1024, byte(tag))
			for i := 0; i < iters; i++ {
				rr, err := b.Recv(0, tag, exactMask, Contig{}, out, -1)
				if err != nil {
					errs <- err
					return
				}
				if err := rr.Wait(); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(out, want) {
					errs <- fmt.Errorf("tag %d: corrupted message", tag)
					return
				}
			}
		}(tag)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// Property: random sizes and thresholds roundtrip exactly.
func TestContigRoundtripProperty(t *testing.T) {
	f := fabric.NewInproc(2, fabric.Config{FragSize: 512})
	a := NewWorker(f.NIC(0), Config{FragSize: 512, RndvThresh: 2048})
	b := NewWorker(f.NIC(1), Config{FragSize: 512, RndvThresh: 2048})
	defer a.Close()
	defer b.Close()
	check := func(sz uint16, seed int64) bool {
		size := int(sz) % 20000
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, size)
		rng.Read(data)
		out := make([]byte, size)
		rr, err := b.Recv(0, 1, exactMask, Contig{}, out, -1)
		if err != nil {
			return false
		}
		sr, err := a.Send(1, 1, Contig{}, data, -1, 0, ProtoAuto)
		if err != nil {
			return false
		}
		if WaitAll(sr, rr) != nil {
			return false
		}
		return bytes.Equal(out, data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// --- generic datatype tests -------------------------------------------------

// xorOps is a trivial generic datatype: the packed form is the buffer with
// every byte XORed with a key. It also records offsets to verify ordering.
type xorOps struct {
	key     byte
	mu      sync.Mutex
	offsets []int64
}

type xorPack struct {
	ops  *xorOps
	data []byte
}

func (o *xorOps) StartPack(buf any, count int64) (PackState, error) {
	return &xorPack{ops: o, data: buf.([]byte)[:count]}, nil
}

func (o *xorOps) StartUnpack(buf any, count int64) (UnpackState, error) {
	return &xorUnpack{ops: o, data: buf.([]byte)[:count]}, nil
}

func (p *xorPack) PackedSize() (int64, error) { return int64(len(p.data)), nil }

func (p *xorPack) Pack(off int64, dst []byte) (int, error) {
	n := copy(dst, p.data[off:])
	for i := 0; i < n; i++ {
		dst[i] ^= p.ops.key
	}
	return n, nil
}

func (p *xorPack) Finish() error { return nil }

type xorUnpack struct {
	ops  *xorOps
	data []byte
}

func (u *xorUnpack) UnpackedSize() (int64, error) { return int64(len(u.data)), nil }

func (u *xorUnpack) Unpack(off int64, src []byte) error {
	u.ops.mu.Lock()
	u.ops.offsets = append(u.ops.offsets, off)
	u.ops.mu.Unlock()
	for i, b := range src {
		u.data[off+int64(i)] = b ^ u.ops.key
	}
	return nil
}

func (u *xorUnpack) Finish() error { return nil }

func TestGenericDatatypeEager(t *testing.T) {
	a, b := pair(t, fabric.Config{FragSize: 1024}, Config{FragSize: 1024})
	ops := &xorOps{key: 0x5A}
	data := pattern(10000, 10)
	out := make([]byte, 10000)
	rr, _ := b.Recv(0, 1, exactMask, Generic{Ops: ops}, out, 10000)
	sr, err := a.Send(1, 1, Generic{Ops: ops}, data, 10000, 0, ProtoEager)
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("generic eager roundtrip mismatch")
	}
}

func TestGenericDatatypeRndv(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{RndvThresh: 100})
	ops := &xorOps{key: 0xA5}
	data := pattern(250000, 11)
	out := make([]byte, 250000)
	rr, _ := b.Recv(0, 1, exactMask, Generic{Ops: ops}, out, 250000)
	sr, err := a.Send(1, 1, Generic{Ops: ops}, data, 250000, 0, ProtoAuto)
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("generic rndv roundtrip mismatch")
	}
}

// partialPackOps packs at most chunk bytes per Pack call, exercising the
// underfilled-fragment path the paper's API explicitly allows.
type partialPackOps struct {
	chunk int
}

type partialPack struct {
	data  []byte
	chunk int
}

func (o *partialPackOps) StartPack(buf any, count int64) (PackState, error) {
	return &partialPack{data: buf.([]byte)[:count], chunk: o.chunk}, nil
}

func (o *partialPackOps) StartUnpack(buf any, count int64) (UnpackState, error) {
	return &xorUnpack{ops: &xorOps{key: 0}, data: buf.([]byte)[:count]}, nil
}

func (p *partialPack) PackedSize() (int64, error) { return int64(len(p.data)), nil }

func (p *partialPack) Pack(off int64, dst []byte) (int, error) {
	if len(dst) > p.chunk {
		dst = dst[:p.chunk]
	}
	return copy(dst, p.data[off:]), nil
}

func (p *partialPack) Finish() error { return nil }

func TestGenericPartialPack(t *testing.T) {
	a, b := pair(t, fabric.Config{FragSize: 4096}, Config{FragSize: 4096})
	ops := &partialPackOps{chunk: 100}
	data := pattern(5000, 12)
	out := make([]byte, 5000)
	rr, _ := b.Recv(0, 1, exactMask, Generic{Ops: ops}, out, 5000)
	sr, err := a.Send(1, 1, Generic{Ops: ops}, data, 5000, 0, ProtoEager)
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("partial pack roundtrip mismatch")
	}
}

func TestGenericInOrderUnderOutOfOrderFabric(t *testing.T) {
	f := fabric.NewInproc(2, fabric.Config{FragSize: 256, OutOfOrder: true, Seed: 7})
	a := NewWorker(f.NIC(0), Config{FragSize: 256, RndvThresh: 1 << 30})
	b := NewWorker(f.NIC(1), Config{FragSize: 256, RndvThresh: 1 << 30})
	defer a.Close()
	defer b.Close()
	ops := &xorOps{key: 0x11}
	data := pattern(20000, 13)
	out := make([]byte, 20000)
	rr, _ := b.Recv(0, 1, exactMask, Generic{Ops: ops, InOrder: true}, out, 20000)
	sr, err := a.Send(1, 1, Generic{Ops: ops}, data, 20000, 0, ProtoEager)
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("inorder roundtrip mismatch")
	}
	// The inorder contract: offsets observed by unpack are strictly
	// increasing.
	ops.mu.Lock()
	defer ops.mu.Unlock()
	for i := 1; i < len(ops.offsets); i++ {
		if ops.offsets[i] <= ops.offsets[i-1] {
			t.Fatalf("unpack offsets not increasing: %v", ops.offsets)
		}
	}
	if len(ops.offsets) < 3 {
		t.Fatalf("expected multiple fragments, got %d", len(ops.offsets))
	}
}

// failPackOps fails partway through packing.
type failPackOps struct{ failAt int64 }

type failPack struct {
	data   []byte
	failAt int64
}

func (o *failPackOps) StartPack(buf any, count int64) (PackState, error) {
	return &failPack{data: buf.([]byte)[:count], failAt: o.failAt}, nil
}

func (o *failPackOps) StartUnpack(buf any, count int64) (UnpackState, error) {
	return &xorUnpack{ops: &xorOps{}, data: buf.([]byte)[:count]}, nil
}

func (p *failPack) PackedSize() (int64, error) { return int64(len(p.data)), nil }

func (p *failPack) Pack(off int64, dst []byte) (int, error) {
	if off >= p.failAt {
		return 0, errors.New("synthetic pack failure")
	}
	n := copy(dst, p.data[off:])
	if int64(n) > p.failAt-off {
		n = int(p.failAt - off)
	}
	return n, nil
}

func (p *failPack) Finish() error { return nil }

func TestPackErrorPropagatesToBothSides(t *testing.T) {
	a, b := pair(t, fabric.Config{FragSize: 512}, Config{FragSize: 512})
	ops := &failPackOps{failAt: 1000}
	data := pattern(5000, 14)
	out := make([]byte, 5000)
	rr, _ := b.Recv(0, 1, exactMask, Generic{Ops: ops}, out, 5000)
	sr, err := a.Send(1, 1, Generic{Ops: ops}, data, 5000, 0, ProtoEager)
	if err == nil {
		err = sr.Wait()
	}
	if err == nil {
		t.Fatal("send should fail")
	}
	if rerr := rr.Wait(); rerr == nil {
		t.Fatal("receive must observe the sender abort")
	}
}

// failUnpackOps fails on the receive side.
type failUnpackOps struct{ xorOps }

type failUnpack struct{}

func (o *failUnpackOps) StartUnpack(buf any, count int64) (UnpackState, error) {
	return failUnpack{}, nil
}

func (failUnpack) UnpackedSize() (int64, error) { return 1 << 20, nil }
func (failUnpack) Unpack(int64, []byte) error   { return errors.New("synthetic unpack failure") }
func (failUnpack) Finish() error                { return nil }

func TestUnpackErrorCompletesRecv(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{})
	ops := &failUnpackOps{}
	data := pattern(5000, 15)
	out := make([]byte, 5000)
	rr, _ := b.Recv(0, 1, exactMask, Generic{Ops: ops}, out, 5000)
	a.Send(1, 1, Contig{}, data, -1, 0, ProtoEager)
	if err := rr.Wait(); err == nil {
		t.Fatal("unpack failure must fail the receive")
	}
}

func TestWorkerCloseFailsPending(t *testing.T) {
	f := fabric.NewInproc(2, fabric.Config{})
	a := NewWorker(f.NIC(0), Config{})
	b := NewWorker(f.NIC(1), Config{})
	out := make([]byte, 10)
	rr, _ := b.Recv(0, 1, exactMask, Contig{}, out, -1)
	b.Close()
	if err := rr.Wait(); !errors.Is(err, ErrWorkerClosed) {
		t.Fatalf("err = %v; want ErrWorkerClosed", err)
	}
	a.Close()
}

func TestSendInvalidDestination(t *testing.T) {
	a, _ := pair(t, fabric.Config{}, Config{})
	if _, err := a.Send(5, 1, Contig{}, []byte{1}, -1, 0, ProtoAuto); err == nil {
		t.Fatal("send to invalid rank should fail")
	}
}

func TestAuxWordDelivered(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{RndvThresh: 64})
	for _, size := range []int{16, 100000} { // eager and rndv paths
		data := pattern(size, 16)
		out := make([]byte, size)
		rr, _ := b.Recv(0, 1, exactMask, Contig{}, out, -1)
		a.Send(1, 1, Contig{}, data, -1, 918273, ProtoAuto)
		if err := rr.Wait(); err != nil {
			t.Fatal(err)
		}
		if rr.Aux() != 918273 {
			t.Fatalf("aux = %d", rr.Aux())
		}
	}
}

var _ io.ReaderAt = nil // keep io imported for doc references
