package ucp

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"mpicd/internal/fabric"
)

// tcpPair brings up two workers over a real-socket fabric.
func tcpPair(t *testing.T, cfg Config) (*Worker, *Worker) {
	t.Helper()
	addrs := make([]string, 2)
	lns := make([]net.Listener, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	nics := make([]*fabric.TCP, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nics[i], errs[i] = fabric.NewTCP(i, addrs, fabric.Config{})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	a := NewWorker(nics[0], cfg)
	b := NewWorker(nics[1], cfg)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestTCPWorkerEagerAndRndv(t *testing.T) {
	a, b := tcpPair(t, Config{RndvThresh: 8 * 1024})
	for _, size := range []int{0, 100, 4096, 8192, 100000, 1 << 20} {
		t.Run(fmt.Sprint(size), func(t *testing.T) {
			data := pattern(size, byte(size))
			out := make([]byte, size)
			rr, err := b.Recv(0, 1, exactMask, Contig{}, out, -1)
			if err != nil {
				t.Fatal(err)
			}
			sr, err := a.Send(1, 1, Contig{}, data, -1, 0, ProtoAuto)
			if err != nil {
				t.Fatal(err)
			}
			if err := WaitAll(sr, rr); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, data) {
				t.Fatal("tcp transfer mismatch")
			}
		})
	}
}

func TestTCPWorkerIovRendezvous(t *testing.T) {
	// Region lists over sockets: the pull protocol runs as GET
	// request/response frames.
	a, b := tcpPair(t, Config{IovRndvMin: 1024})
	parts := [][]byte{pattern(10000, 1), pattern(50000, 2), pattern(7, 3)}
	var want []byte
	for _, p := range parts {
		want = append(want, p...)
	}
	dst := [][]byte{make([]byte, 30000), make([]byte, 30007)}
	rr, err := b.Recv(0, 2, exactMask, Iov{}, dst, -1)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := a.Send(1, 2, Iov{}, parts, -1, 0, ProtoAuto)
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	got := append(append([]byte{}, dst[0]...), dst[1]...)
	if !bytes.Equal(got, want) {
		t.Fatal("tcp iov mismatch")
	}
}

func TestTCPWorkerGenericCallbacks(t *testing.T) {
	a, b := tcpPair(t, Config{RndvThresh: 4096})
	ops := &xorOps{key: 0x3C}
	data := pattern(200000, 4)
	out := make([]byte, len(data))
	rr, _ := b.Recv(0, 3, exactMask, Generic{Ops: ops}, out, int64(len(data)))
	sr, err := a.Send(1, 3, Generic{Ops: ops}, data, int64(len(data)), 0, ProtoAuto)
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("tcp generic mismatch")
	}
}

func TestTCPWorkerBidirectional(t *testing.T) {
	a, b := tcpPair(t, Config{})
	const iters = 20
	var wg sync.WaitGroup
	errc := make(chan error, 2)
	pingpong := func(w *Worker, peer int, base byte) {
		defer wg.Done()
		buf := pattern(8192, base)
		out := make([]byte, 8192)
		for i := 0; i < iters; i++ {
			sr, err := w.Send(peer, 5, Contig{}, buf, -1, 0, ProtoAuto)
			if err == nil {
				err = sr.Wait()
			}
			if err != nil {
				errc <- err
				return
			}
			rr, err := w.Recv(peer, 5, exactMask, Contig{}, out, -1)
			if err == nil {
				err = rr.Wait()
			}
			if err != nil {
				errc <- err
				return
			}
		}
	}
	wg.Add(2)
	go pingpong(a, 1, 1)
	go pingpong(b, 0, 2)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
