// Package ucp implements a UCP-like transport layer: workers, endpoints,
// 64-bit tag matching with masks, and the three datatype classes the
// paper's prototype used from UCX — contiguous buffers
// (UCP_DATATYPE_CONTIG), scatter/gather region lists (UCP_DATATYPE_IOV)
// and callback-driven generic types (UCP_DATATYPE_GENERIC).
//
// Two protocols move bytes, chosen per message:
//
//   - eager: the sender streams fragments through fabric wire buffers and
//     completes locally; unmatched fragments are buffered on the receiver
//     (the unexpected queue).
//   - rendezvous: the sender registers its Source and sends an RTS; the
//     matched receiver pulls the bytes with the fabric's Get (RDMA-read
//     analogue) and acknowledges with a FIN. This is the zero-copy path
//     region-based custom datatypes rely on.
//
// The eager→rendezvous threshold is configurable; region-bearing (iov)
// messages switch to rendezvous much earlier because only the pull path
// avoids the staging copies (this reproduces the paper's observation that
// the custom API is insensitive to the UCX eager/rendezvous switchover).
package ucp

import (
	"errors"
	"runtime"
	"time"

	"mpicd/internal/fabric"
	"mpicd/internal/obs"
)

// Protocol kinds carried in fabric headers (all below fabric's reserved
// range).
const (
	kindEager fabric.Kind = 1 + iota // message fragment
	kindRTS                          // rendezvous request-to-send
	kindFIN                          // rendezvous completion ack
)

// Tag is the 64-bit transport matching tag. Layers above define its bit
// layout; matching uses masks.
type Tag uint64

// Proto selects the wire protocol for one send.
type Proto int

// Protocol selection hints.
const (
	// ProtoAuto picks eager below the rendezvous threshold and rendezvous
	// above it, with the iov threshold applied to direct (region) sources.
	ProtoAuto Proto = iota
	// ProtoEager forces the eager path.
	ProtoEager
	// ProtoRndv forces the rendezvous path.
	ProtoRndv
)

// Config tunes the transport.
type Config struct {
	// RndvThresh is the eager→rendezvous switch in bytes for generic and
	// contiguous messages (default 32 KiB, the classic UCX value the paper
	// observes a manual-pack dip at).
	RndvThresh int64
	// IovRndvMin is the size at which region-bearing (direct,
	// non-contiguous) messages switch to rendezvous (default 8 KiB).
	// Below it regions are gathered into eager fragments; above it the
	// pull path transfers them zero-copy.
	IovRndvMin int64
	// FragSize is the eager fragment payload size; defaults to the
	// fabric's default fragment size.
	FragSize int
	// PullStripes is the number of concurrent stripes a rendezvous pull
	// may be split into when the message is at least PullStripeThresh
	// bytes and the receive datatype tolerates out-of-order delivery
	// (the custom-datatype inorder contract forces sequential pulls).
	// Zero selects min(GOMAXPROCS, 4); 1 disables striping.
	PullStripes int
	// PullStripeThresh is the minimum rendezvous message size eligible
	// for striped pulls (default 256 KiB). Smaller pulls always run as a
	// single sequential Get, so short transfers pay no goroutine cost.
	PullStripeThresh int64
	// RanksPerNode is how many ranks share this machine, as reported by
	// the launcher. It scales the automatic PullStripes default: with R
	// ranks competing for the node's cores, each pull gets NumCPU/R
	// stripes (clamped to [1,4]) instead of the in-process GOMAXPROCS
	// rule — 128 co-located ranks must not each spawn 4 pull goroutines.
	// Zero (unknown placement) keeps the old rule.
	RanksPerNode int

	// Reliable enables the loss-tolerant protocol: eager messages are
	// retained on the sender and retransmitted until acknowledged,
	// rendezvous RTS control messages are retransmitted until the FIN
	// arrives, and the receiver suppresses the resulting duplicates so
	// every message is delivered exactly once. Off by default: the
	// in-process fabric never loses packets, so plain runs pay nothing.
	Reliable bool
	// Checksum protects eager fragment payloads with a CRC32C carried in
	// the fragment header. Corrupt fragments are dropped (and recovered
	// by retransmission when Reliable is set) or fail the receive with
	// ErrCorrupt. Rendezvous pull frames are protected separately by
	// fabric.Config.Checksum on byte-stream providers.
	Checksum bool
	// ReqTimeout bounds how long a posted receive may wait unmatched and
	// how long a matched eager receive may wait for its remaining
	// fragments before failing with ErrTimeout. Zero disables deadlines.
	ReqTimeout time.Duration
	// RexmitBase and RexmitMax bound the exponential backoff between
	// retransmissions of unacknowledged messages (defaults 3ms / 200ms).
	RexmitBase time.Duration
	RexmitMax  time.Duration
	// RexmitRetries is how many retransmission rounds are attempted
	// before the send fails with ErrTimeout (default 12).
	RexmitRetries int
	// GetRetries is how many times a failed rendezvous Get (link down,
	// corrupt frame) is retried with backoff before the pull degrades or
	// fails (default 3). Sequential (inorder) sinks never retry: their
	// contract forbids rewinding.
	GetRetries int
	// AbortLinger is how long an errored unmatched message is kept for a
	// late receive to observe before the janitor reaps it (default 2s).
	// Reaping requires the janitor, which runs when Reliable or
	// ReqTimeout is set.
	AbortLinger time.Duration

	// MsgIDBase offsets the worker's message-id space. Respawned workers
	// re-admitted under a previously used fabric rank must set a base no
	// prior incarnation used (the launcher derives it from the restart
	// epoch): receivers deduplicate reliable messages by (rank, msg id),
	// and a fresh process counting from zero would collide with the dead
	// incarnation's ids still held in their dedup windows.
	MsgIDBase uint64

	// Heartbeat enables the liveness detector (see fabric.Detector): the
	// worker's NIC is wrapped so every inbound packet refreshes its
	// sender's last-seen stamp, quiet peers are pinged each period, and a
	// peer silent past the dead threshold is declared failed — its
	// in-flight operations complete with ErrProcFailed and blocked
	// receives/probes matched to it wake, with no per-request deadline
	// required. Zero Period (the default) disables detection entirely.
	Heartbeat fabric.DetectorConfig

	// Obs attaches the observability layer: the worker registers its
	// counters, queue-depth gauges and latency/size histograms with
	// Obs.Registry (under ucp.r<rank>.*) and, when Obs.Trace is set,
	// records per-message lifecycle events into the ring. Nil (the
	// default) disables observability entirely — the hot path pays one
	// pointer check and allocates nothing extra (see
	// BenchmarkAblationObs).
	Obs *obs.Observer
}

// DefaultRndvThresh is the default eager→rendezvous threshold (32 KiB).
const DefaultRndvThresh = 32 * 1024

// DefaultIovRndvMin is the default rendezvous threshold for region lists.
const DefaultIovRndvMin = 8 * 1024

// DefaultPullStripeThresh is the default minimum message size for striped
// rendezvous pulls (256 KiB).
const DefaultPullStripeThresh = 256 * 1024

// maxDefaultPullStripes caps the automatic stripe count: past a few
// stripes a pull is memory-bandwidth-bound, not core-bound.
const maxDefaultPullStripes = 4

// DefaultPullStripes returns the automatic stripe count:
// min(GOMAXPROCS, 4).
func DefaultPullStripes() int {
	n := runtime.GOMAXPROCS(0)
	if n > maxDefaultPullStripes {
		n = maxDefaultPullStripes
	}
	if n < 1 {
		n = 1
	}
	return n
}

// DefaultPullStripesFor returns the automatic stripe count when
// ranksPerNode ranks share the machine: NumCPU/ranksPerNode clamped to
// [1, 4]. Non-positive ranksPerNode (placement unknown) falls back to
// DefaultPullStripes.
func DefaultPullStripesFor(ranksPerNode int) int {
	if ranksPerNode <= 0 {
		return DefaultPullStripes()
	}
	n := runtime.NumCPU() / ranksPerNode
	if n > maxDefaultPullStripes {
		n = maxDefaultPullStripes
	}
	if n < 1 {
		n = 1
	}
	return n
}

func (c Config) withDefaults() Config {
	if c.RndvThresh <= 0 {
		c.RndvThresh = DefaultRndvThresh
	}
	if c.IovRndvMin <= 0 {
		c.IovRndvMin = DefaultIovRndvMin
	}
	if c.FragSize <= 0 {
		c.FragSize = fabric.DefaultFragSize
	}
	if c.FragSize > fabric.MaxFragSize {
		c.FragSize = fabric.MaxFragSize
	}
	if c.PullStripes == 0 {
		c.PullStripes = DefaultPullStripesFor(c.RanksPerNode)
	}
	if c.PullStripes < 1 {
		c.PullStripes = 1
	}
	if c.PullStripeThresh <= 0 {
		c.PullStripeThresh = DefaultPullStripeThresh
	}
	if c.RexmitBase <= 0 {
		c.RexmitBase = 3 * time.Millisecond
	}
	if c.RexmitMax <= 0 {
		c.RexmitMax = 200 * time.Millisecond
	}
	if c.RexmitRetries <= 0 {
		c.RexmitRetries = 12
	}
	if c.GetRetries < 0 {
		c.GetRetries = 0
	} else if c.GetRetries == 0 {
		c.GetRetries = 3
	}
	if c.AbortLinger <= 0 {
		c.AbortLinger = 2 * time.Second
	}
	return c
}

// ErrWorkerClosed is returned by operations on a closed worker.
var ErrWorkerClosed = errors.New("ucp: worker closed")

// ErrTruncated is returned when an incoming message is larger than the
// posted receive buffer.
var ErrTruncated = errors.New("ucp: message truncated (receive buffer too small)")

// ErrTimeout is returned when a request exceeds its deadline: a posted
// receive that never matched within Config.ReqTimeout, a matched receive
// whose remaining fragments never arrived, a send whose retransmission
// budget ran out, or a Request.WaitTimeout that expired.
var ErrTimeout = errors.New("ucp: request timed out")

// ErrProcFailed is returned when the peer process of an operation has
// been declared dead — by the heartbeat detector, by a fabric error that
// only a dead process can produce, or by the layer above
// (DeclarePeerFailed). Unlike ErrTimeout it is a verdict about the peer,
// not the operation: every past and future operation on the dead rank
// fails with it, immediately.
var ErrProcFailed = errors.New("ucp: peer process failed")

// ErrLinkDown re-exports the fabric-level link failure so transport users
// can test for it without importing fabric.
var ErrLinkDown = fabric.ErrLinkDown

// ErrCorrupt re-exports the fabric-level integrity failure.
var ErrCorrupt = fabric.ErrCorrupt
