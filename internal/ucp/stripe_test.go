package ucp

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"mpicd/internal/fabric"
)

// stripeCfg enables striping aggressively so tests exercise the fan-out
// regardless of GOMAXPROCS.
func stripeCfg(stripes int) Config {
	return Config{
		RndvThresh:       32 * 1024,
		PullStripes:      stripes,
		PullStripeThresh: 64 * 1024,
	}
}

func TestStripedPullContig(t *testing.T) {
	a, b := pair(t, fabric.Config{}, stripeCfg(4))
	const size = 1 << 20
	data := pattern(size, 3)
	out := make([]byte, size)
	rr, _ := b.Recv(0, 1, exactMask, Contig{}, out, size)
	sr, err := a.Send(1, 1, Contig{}, data, size, 0, ProtoAuto)
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("striped contig roundtrip mismatch")
	}
	if got := b.Stats().StripedPulls.Load(); got != 1 {
		t.Fatalf("striped pulls = %d, want 1", got)
	}
	if got := b.Stats().PullStripeSegs.Load(); got != 4 {
		t.Fatalf("stripe segments = %d, want 4", got)
	}
	if got := b.Stats().SequentialPulls.Load(); got != 0 {
		t.Fatalf("sequential pulls = %d, want 0", got)
	}
}

func TestStripedPullBypassBelowThreshold(t *testing.T) {
	a, b := pair(t, fabric.Config{}, stripeCfg(4))
	const size = 48 * 1024 // above RndvThresh, below PullStripeThresh
	data := pattern(size, 4)
	out := make([]byte, size)
	rr, _ := b.Recv(0, 1, exactMask, Contig{}, out, size)
	sr, err := a.Send(1, 1, Contig{}, data, size, 0, ProtoAuto)
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("roundtrip mismatch")
	}
	if got := b.Stats().SequentialPulls.Load(); got != 1 {
		t.Fatalf("sequential pulls = %d, want 1", got)
	}
	if got := b.Stats().StripedPulls.Load(); got != 0 {
		t.Fatalf("striped pulls = %d, want 0", got)
	}
}

func TestStripedPullGenericUnordered(t *testing.T) {
	a, b := pair(t, fabric.Config{}, stripeCfg(8))
	ops := &xorOps{key: 0x3C}
	const size = 512 * 1024
	data := pattern(size, 5)
	out := make([]byte, size)
	rr, _ := b.Recv(0, 1, exactMask, Generic{Ops: ops}, out, size)
	sr, err := a.Send(1, 1, Generic{Ops: ops}, data, size, 0, ProtoRndv)
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("striped generic roundtrip mismatch")
	}
	if got := b.Stats().StripedPulls.Load(); got != 1 {
		t.Fatalf("striped pulls = %d, want 1", got)
	}
}

// TestStripedPullInOrderFallsBack pins the `inorder ⇒ sequential` rule:
// an InOrder generic sink never stripes, and its unpack callbacks see
// strictly increasing, gap-free offsets even with striping configured.
func TestStripedPullInOrderFallsBack(t *testing.T) {
	a, b := pair(t, fabric.Config{}, stripeCfg(8))
	ops := &xorOps{key: 0x77}
	const size = 512 * 1024
	data := pattern(size, 6)
	out := make([]byte, size)
	rr, _ := b.Recv(0, 1, exactMask, Generic{Ops: ops, InOrder: true}, out, size)
	sr, err := a.Send(1, 1, Generic{Ops: ops, InOrder: true}, data, size, 0, ProtoRndv)
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("inorder roundtrip mismatch")
	}
	if got := b.Stats().StripedPulls.Load(); got != 0 {
		t.Fatalf("striped pulls = %d, want 0 (inorder must stay sequential)", got)
	}
	if got := b.Stats().SequentialPulls.Load(); got != 1 {
		t.Fatalf("sequential pulls = %d, want 1", got)
	}
	ops.mu.Lock()
	defer ops.mu.Unlock()
	if len(ops.offsets) == 0 || ops.offsets[0] != 0 {
		t.Fatalf("first unpack offset = %v, want 0", ops.offsets)
	}
	for i := 1; i < len(ops.offsets); i++ {
		if ops.offsets[i] <= ops.offsets[i-1] {
			t.Fatalf("unpack offsets not strictly increasing: %d then %d",
				ops.offsets[i-1], ops.offsets[i])
		}
	}
}

// TestStripedPullStripesCappedByBytes: more stripes than bytes must not
// spawn empty Gets.
func TestStripedPullStripesCappedByBytes(t *testing.T) {
	cfg := Config{RndvThresh: 1, PullStripes: 8, PullStripeThresh: 1}
	a, b := pair(t, fabric.Config{}, cfg)
	data := []byte{1, 2, 3}
	out := make([]byte, 3)
	rr, _ := b.Recv(0, 1, exactMask, Contig{}, out, 3)
	sr, err := a.Send(1, 1, Contig{}, data, 3, 0, ProtoRndv)
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("tiny striped roundtrip mismatch")
	}
	if got := b.Stats().PullStripeSegs.Load(); got > 3 {
		t.Fatalf("stripe segments = %d for a 3-byte pull", got)
	}
}

// failAtOps fails Unpack for any fragment covering failOff, exercising
// first-error-wins across concurrent stripes.
type failAtOps struct {
	xorOps
	failOff int64
}

func (o *failAtOps) StartUnpack(buf any, count int64) (UnpackState, error) {
	return &failAtUnpack{ops: o, data: buf.([]byte)[:count]}, nil
}

type failAtUnpack struct {
	ops  *failAtOps
	data []byte
}

func (u *failAtUnpack) UnpackedSize() (int64, error) { return int64(len(u.data)), nil }

func (u *failAtUnpack) Unpack(off int64, src []byte) error {
	if off <= u.ops.failOff && u.ops.failOff < off+int64(len(src)) {
		return fmt.Errorf("unpack poisoned at %d", u.ops.failOff)
	}
	copy(u.data[off:], src)
	return nil
}

func (u *failAtUnpack) Finish() error { return nil }

func TestStripedPullFirstErrorWins(t *testing.T) {
	a, b := pair(t, fabric.Config{}, stripeCfg(4))
	ops := &failAtOps{failOff: 300 * 1024}
	const size = 512 * 1024
	data := pattern(size, 7)
	out := make([]byte, size)
	rr, _ := b.Recv(0, 1, exactMask, Generic{Ops: ops}, out, size)
	sr, err := a.Send(1, 1, Generic{Ops: ops}, data, size, 0, ProtoRndv)
	if err != nil {
		t.Fatal(err)
	}
	if err := rr.Wait(); err == nil {
		t.Fatal("receive succeeded despite poisoned unpack")
	}
	// The FIN carries the failure status back to the sender.
	if err := sr.Wait(); err == nil {
		t.Fatal("send succeeded despite remote receive failure")
	}
}

// TestStripedPullConcurrentPairs runs 8 sender/receiver pairs at once,
// each striping a 1 MiB pull 4 ways: the -race stress for the fan-out.
func TestStripedPullConcurrentPairs(t *testing.T) {
	const pairs = 8
	f := fabric.NewInproc(2*pairs, fabric.Config{})
	ws := make([]*Worker, 2*pairs)
	for i := range ws {
		ws[i] = NewWorker(f.NIC(i), stripeCfg(4))
	}
	defer func() {
		for _, w := range ws {
			w.Close()
		}
	}()
	const size = 1 << 20
	var wg sync.WaitGroup
	errs := make(chan error, 2*pairs)
	for p := 0; p < pairs; p++ {
		sender, receiver := ws[2*p], ws[2*p+1]
		data := pattern(size, byte(p))
		out := make([]byte, size)
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rr, err := receiver.Recv(2*p, 1, exactMask, Contig{}, out, size)
			if err != nil {
				errs <- err
				return
			}
			sr, err := sender.Send(2*p+1, 1, Contig{}, data, size, 0, ProtoRndv)
			if err != nil {
				errs <- err
				return
			}
			if err := WaitAll(sr, rr); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(out, data) {
				errs <- fmt.Errorf("pair %d roundtrip mismatch", p)
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	striped := int64(0)
	for _, w := range ws {
		striped += w.Stats().StripedPulls.Load()
	}
	if striped != pairs {
		t.Fatalf("striped pulls = %d, want %d", striped, pairs)
	}
}
