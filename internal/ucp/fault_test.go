package ucp

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"mpicd/internal/fabric"
)

// reliableCfg is the transport configuration the fault matrix runs under:
// small fragments so every message spans many packets, fast retransmit so
// recovery happens within test time.
func reliableCfg() Config {
	return Config{
		Reliable:      true,
		Checksum:      true,
		FragSize:      1024,
		RndvThresh:    32 * 1024,
		RexmitBase:    time.Millisecond,
		RexmitMax:     20 * time.Millisecond,
		RexmitRetries: 200,
	}
}

// lossyPlan injects the full adversary: drop, duplicate, reorder, corrupt
// and truncate on every outbound packet kind (control and data alike).
func lossyPlan(seed int64) fabric.FaultPlan {
	return fabric.FaultPlan{Seed: seed, Rules: []fabric.FaultRule{
		{Peer: -1, Action: fabric.Drop, Prob: 0.15},
		{Peer: -1, Action: fabric.Duplicate, Prob: 0.15},
		{Peer: -1, Action: fabric.Reorder, Prob: 0.15},
		{Peer: -1, Action: fabric.Corrupt, Prob: 0.10},
		{Peer: -1, Action: fabric.Truncate, Prob: 0.05, Bytes: 3},
	}}
}

// faultWorkers builds a 2-rank inproc fabric with both NICs wrapped in
// fault plans (seed on rank 0, seed+1 on rank 1 so the two directions
// draw independent decisions).
func faultWorkers(t *testing.T, seed int64, cfg Config, mkPlan func(int64) fabric.FaultPlan) (*Worker, *Worker) {
	t.Helper()
	f := fabric.NewInproc(2, fabric.Config{FragSize: cfg.FragSize})
	a := NewWorker(fabric.WrapFault(f.NIC(0), mkPlan(seed)), cfg)
	b := NewWorker(fabric.WrapFault(f.NIC(1), mkPlan(seed+1)), cfg)
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

// faultSeeds are the fixed seeds the CI fault matrix pins.
var faultSeeds = []int64{1, 42, 20240711}

func TestFaultMatrixEagerContig(t *testing.T) {
	for _, seed := range faultSeeds {
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			a, b := faultWorkers(t, seed, reliableCfg(), lossyPlan)
			for i := 0; i < 8; i++ {
				size := 1 + i*3000 // sub-fragment through multi-fragment
				data := pattern(size, byte(i))
				out := make([]byte, size)
				rr, err := b.Recv(0, Tag(i), exactMask, Contig{}, out, int64(size))
				if err != nil {
					t.Fatal(err)
				}
				sr, err := a.Send(1, Tag(i), Contig{}, data, int64(size), 0, ProtoEager)
				if err != nil {
					t.Fatal(err)
				}
				if err := WaitAll(sr, rr); err != nil {
					t.Fatalf("transfer %d: %v", i, err)
				}
				if !bytes.Equal(out, data) {
					t.Fatalf("transfer %d: bytes corrupted in delivery", i)
				}
				if _, _, n := rr.Status(); n != int64(size) {
					t.Fatalf("transfer %d: delivered %d of %d bytes", i, n, size)
				}
			}
		})
	}
}

func TestFaultMatrixEagerGeneric(t *testing.T) {
	for _, seed := range faultSeeds {
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			a, b := faultWorkers(t, seed, reliableCfg(), lossyPlan)
			const size = 20000
			for i, inorder := range []bool{false, true} {
				ops := &xorOps{key: 0x3C}
				data := pattern(size, byte(40+i))
				out := make([]byte, size)
				rr, _ := b.Recv(0, Tag(i), exactMask, Generic{Ops: ops, InOrder: inorder}, out, size)
				sr, err := a.Send(1, Tag(i), Generic{Ops: ops, InOrder: inorder}, data, size, 0, ProtoEager)
				if err != nil {
					t.Fatal(err)
				}
				if err := WaitAll(sr, rr); err != nil {
					t.Fatalf("inorder=%v: %v", inorder, err)
				}
				if !bytes.Equal(out, data) {
					t.Fatalf("inorder=%v: bytes corrupted in delivery", inorder)
				}
			}
		})
	}
}

func TestFaultMatrixRendezvous(t *testing.T) {
	// Rendezvous control traffic (RTS/FIN) crosses the lossy links and the
	// pull itself sees injected Get failures; the transfer must still land
	// exactly once.
	mkPlan := func(seed int64) fabric.FaultPlan {
		p := lossyPlan(seed)
		p.Rules = append(p.Rules, fabric.FaultRule{Peer: -1, Action: fabric.FailGet, Prob: 1, Count: 2})
		return p
	}
	for _, seed := range faultSeeds {
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			a, b := faultWorkers(t, seed, reliableCfg(), mkPlan)
			const size = 100000
			for i := 0; i < 3; i++ {
				data := pattern(size, byte(7+i))
				out := make([]byte, size)
				rr, _ := b.Recv(0, Tag(i), exactMask, Contig{}, out, int64(size))
				sr, err := a.Send(1, Tag(i), Contig{}, data, int64(size), 0, ProtoRndv)
				if err != nil {
					t.Fatal(err)
				}
				if err := WaitAll(sr, rr); err != nil {
					t.Fatalf("transfer %d: %v", i, err)
				}
				if !bytes.Equal(out, data) {
					t.Fatalf("transfer %d: bytes corrupted in delivery", i)
				}
			}
		})
	}
}

func TestFaultMatrixIovRendezvous(t *testing.T) {
	for _, seed := range faultSeeds {
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			a, b := faultWorkers(t, seed, reliableCfg(), lossyPlan)
			rows, width := 40, 500
			sdata := make([][]byte, rows)
			rdata := make([][]byte, rows)
			var flat []byte
			for r := range sdata {
				sdata[r] = pattern(width, byte(r))
				flat = append(flat, sdata[r]...)
				rdata[r] = make([]byte, width)
			}
			rr, _ := b.Recv(0, 5, exactMask, Iov{}, rdata, -1)
			sr, err := a.Send(1, 5, Iov{}, sdata, -1, 0, ProtoRndv)
			if err != nil {
				t.Fatal(err)
			}
			if err := WaitAll(sr, rr); err != nil {
				t.Fatal(err)
			}
			var got []byte
			for _, row := range rdata {
				got = append(got, row...)
			}
			if !bytes.Equal(got, flat) {
				t.Fatal("iov rendezvous bytes corrupted in delivery")
			}
		})
	}
}

func TestLinkDownWaitTimeoutAndRexmitExhaustion(t *testing.T) {
	downPlan := func(int64) fabric.FaultPlan {
		return fabric.FaultPlan{Seed: 1, Rules: []fabric.FaultRule{
			{Peer: 1, Action: fabric.LinkDown, Prob: 1, Count: 1, Down: -1},
		}}
	}
	cfg := reliableCfg()
	cfg.RexmitRetries = 5
	f := fabric.NewInproc(2, fabric.Config{FragSize: cfg.FragSize})
	a := NewWorker(fabric.WrapFault(f.NIC(0), downPlan(0)), cfg)
	b := NewWorker(f.NIC(1), cfg)
	defer func() {
		a.Close()
		b.Close()
	}()

	data := pattern(4000, 1)
	sr, err := a.Send(1, 1, Contig{}, data, 4000, 0, ProtoEager)
	if err != nil {
		t.Fatal(err)
	}
	// The link is down, so the send cannot complete — but WaitTimeout must
	// return ErrTimeout instead of hanging.
	if err := sr.WaitTimeout(30 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("WaitTimeout on down link = %v, want ErrTimeout", err)
	}
	// Once the retransmission budget runs out, the request itself fails
	// with ErrTimeout.
	if err := sr.Wait(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("exhausted send = %v, want ErrTimeout", err)
	}
	if a.Stats().Timeouts.Load() == 0 || a.Stats().Retransmits.Load() == 0 {
		t.Fatal("timeout/retransmit counters did not advance")
	}
}

func TestRecvDeadlineTimesOut(t *testing.T) {
	cfg := Config{ReqTimeout: 20 * time.Millisecond}
	a, b := pair(t, fabric.Config{}, cfg)
	_ = a
	out := make([]byte, 10)
	rr, err := b.Recv(0, 99, exactMask, Contig{}, out, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := rr.Wait(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("unmatched posted receive = %v, want ErrTimeout", err)
	}
	if b.Stats().Timeouts.Load() == 0 {
		t.Fatal("Timeouts counter did not advance")
	}
}

func TestGetRetryRecoversAndStripeFallback(t *testing.T) {
	// Two stripes, one retry each: the first four Gets fail, exhausting
	// both stripes; the sequential full-range fallback then succeeds.
	failPlan := func(int64) fabric.FaultPlan {
		return fabric.FaultPlan{Seed: 3, Rules: []fabric.FaultRule{
			{Peer: -1, Action: fabric.FailGet, Prob: 1, Count: 4},
		}}
	}
	cfg := Config{
		Reliable:         true,
		FragSize:         4096,
		PullStripes:      2,
		PullStripeThresh: 8 * 1024,
		GetRetries:       1,
		RexmitBase:       time.Millisecond,
		RexmitMax:        10 * time.Millisecond,
		RexmitRetries:    200,
	}
	f := fabric.NewInproc(2, fabric.Config{FragSize: cfg.FragSize})
	a := NewWorker(f.NIC(0), cfg)
	b := NewWorker(fabric.WrapFault(f.NIC(1), failPlan(0)), cfg)
	defer func() {
		a.Close()
		b.Close()
	}()

	const size = 64 * 1024
	data := pattern(size, 9)
	out := make([]byte, size)
	rr, _ := b.Recv(0, 1, exactMask, Contig{}, out, int64(size))
	sr, err := a.Send(1, 1, Contig{}, data, int64(size), 0, ProtoRndv)
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("fallback pull delivered wrong bytes")
	}
	if b.Stats().GetRetries.Load() == 0 {
		t.Fatal("GetRetries counter did not advance")
	}
	if b.Stats().StripeFallbacks.Load() != 1 {
		t.Fatalf("StripeFallbacks = %d, want 1", b.Stats().StripeFallbacks.Load())
	}
}

func TestCorruptEagerWithoutReliableFailsWithErrCorrupt(t *testing.T) {
	corruptPlan := func(int64) fabric.FaultPlan {
		return fabric.FaultPlan{Seed: 2, Rules: []fabric.FaultRule{
			{Peer: -1, Action: fabric.Corrupt, Prob: 1, Count: 1},
		}}
	}
	cfg := Config{Checksum: true, FragSize: 1024}
	f := fabric.NewInproc(2, fabric.Config{FragSize: cfg.FragSize})
	a := NewWorker(fabric.WrapFault(f.NIC(0), corruptPlan(0)), cfg)
	b := NewWorker(f.NIC(1), cfg)
	defer func() {
		a.Close()
		b.Close()
	}()

	data := pattern(5000, 4)
	out := make([]byte, 5000)
	rr, _ := b.Recv(0, 1, exactMask, Contig{}, out, 5000)
	if _, err := a.Send(1, 1, Contig{}, data, 5000, 0, ProtoEager); err != nil {
		t.Fatal(err)
	}
	if err := rr.Wait(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt unreliable receive = %v, want ErrCorrupt", err)
	}
	if b.Stats().CorruptDrops.Load() == 0 {
		t.Fatal("CorruptDrops counter did not advance")
	}
}

// TestAbortEntriesReaped pins the satellite fix: an abort for a message
// no receive ever claims must not leak in the unexpected queue forever —
// the janitor reaps it after Config.AbortLinger.
func TestAbortEntriesReaped(t *testing.T) {
	cfg := Config{
		FragSize:    512,
		ReqTimeout:  time.Second, // starts the janitor
		AbortLinger: 20 * time.Millisecond,
	}
	a, b := pair(t, fabric.Config{FragSize: 512}, cfg)
	ops := &failPackOps{failAt: 1000}
	data := pattern(5000, 14)
	// No receive is ever posted: the abort parks an errored entry in b's
	// unexpected queue.
	sr, err := a.Send(1, 1, Generic{Ops: ops}, data, 5000, 0, ProtoEager)
	if err == nil {
		err = sr.Wait()
	}
	if err == nil {
		t.Fatal("send with failing pack should error")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if b.Stats().AbortsReaped.Load() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("errored unexpected entry was never reaped")
		}
		time.Sleep(2 * time.Millisecond)
	}
	b.mu.Lock()
	left := b.table.lenUnexpected()
	b.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d unexpected entries remain after reaping", left)
	}
}

// TestReliableStatsConsistency sanity-checks the new counters under a
// deterministic duplicate-heavy plan: duplicates must be suppressed, not
// redelivered.
func TestReliableDuplicateSuppression(t *testing.T) {
	dupPlan := func(seed int64) fabric.FaultPlan {
		return fabric.FaultPlan{Seed: seed, Rules: []fabric.FaultRule{
			{Peer: -1, Action: fabric.Duplicate, Prob: 1},
		}}
	}
	cfg := reliableCfg()
	a, b := faultWorkers(t, 11, cfg, dupPlan)
	const size = 10000
	data := pattern(size, 3)
	out := make([]byte, size)
	rr, _ := b.Recv(0, 1, exactMask, Contig{}, out, int64(size))
	sr, err := a.Send(1, 1, Contig{}, data, int64(size), 0, ProtoEager)
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("duplicated transfer corrupted")
	}
	if b.Stats().DupFrags.Load() == 0 {
		t.Fatal("every fragment was duplicated but none were suppressed")
	}
}
