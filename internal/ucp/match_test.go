package ucp

import (
	"testing"
)

// The match table must preserve the orderings the flat slices gave for
// free: earliest-posted receive wins a message, AnySource receives see
// globally-earliest arrivals, and per-sender arrival order is never
// reordered. Ranks 1 and 17 share a shard (17 & 15 == 1), so the tests
// mix them to exercise intra-shard collisions alongside cross-shard
// ordering.

func postReq(t *matchTable, from int, tag Tag) *Request {
	r := &Request{from: from, tag: tag, mask: ^Tag(0)}
	t.addPosted(r)
	return r
}

func arrive(t *matchTable, from int, tag Tag, id uint64) *unexMsg {
	m := &unexMsg{from: from, tag: tag, id: id}
	t.addUnexpected(m)
	return m
}

func TestMatchPostedPrefersEarliestAcrossAnySource(t *testing.T) {
	var tab matchTable
	any1 := postReq(&tab, -1, 7)
	spec := postReq(&tab, 3, 7)
	any2 := postReq(&tab, -1, 7)

	m := &unexMsg{from: 3, tag: 7}
	if got := tab.matchPosted(m); got != any1 {
		t.Fatalf("first match should be the earliest-posted AnySource receive")
	}
	if got := tab.matchPosted(m); got != spec {
		t.Fatalf("second match should be the source-specific receive posted before the later AnySource one")
	}
	if got := tab.matchPosted(m); got != any2 {
		t.Fatalf("third match should be the remaining AnySource receive")
	}
	if tab.lenPosted() != 0 {
		t.Fatalf("posted count = %d after draining, want 0", tab.lenPosted())
	}
}

func TestMatchPostedSpecificBeforeLaterAny(t *testing.T) {
	var tab matchTable
	spec := postReq(&tab, 17, 9)
	postReq(&tab, -1, 9)
	m := &unexMsg{from: 17, tag: 9}
	if got := tab.matchPosted(m); got != spec {
		t.Fatalf("earlier source-specific receive must beat the later AnySource receive")
	}
	if tab.lenPosted() != 1 {
		t.Fatalf("posted count = %d, want 1", tab.lenPosted())
	}
}

func TestMatchUnexpectedAnySourceGlobalArrivalOrder(t *testing.T) {
	var tab matchTable
	// Arrivals from ranks spread across shards, including a 1/17 shard
	// collision, deliberately not in rank order.
	first := arrive(&tab, 17, 5, 1)
	arrive(&tab, 1, 5, 2)
	arrive(&tab, 4, 5, 3)
	arrive(&tab, 17, 5, 4)

	req := &Request{from: -1, tag: 5, mask: ^Tag(0)}
	if got := tab.matchUnexpected(req); got != first {
		t.Fatalf("AnySource receive matched id=%d, want the globally earliest arrival (id=1)", got.id)
	}
	// Next earliest is from rank 1, which shares shard with remaining
	// rank-17 entries.
	if got := tab.matchUnexpected(req); got == nil || got.id != 2 {
		t.Fatalf("second AnySource match = %+v, want id=2", got)
	}
	if got := tab.matchUnexpected(req); got == nil || got.id != 3 {
		t.Fatalf("third AnySource match = %+v, want id=3", got)
	}
	if tab.lenUnexpected() != 1 {
		t.Fatalf("unexpected count = %d, want 1", tab.lenUnexpected())
	}
}

func TestMatchUnexpectedSpecificSourceSkipsShardNeighbors(t *testing.T) {
	var tab matchTable
	arrive(&tab, 1, 5, 1) // same shard as rank 17
	m17 := arrive(&tab, 17, 5, 2)
	req := &Request{from: 17, tag: 5, mask: ^Tag(0)}
	if got := tab.matchUnexpected(req); got != m17 {
		t.Fatalf("source-specific receive matched the wrong shard neighbor")
	}
	if tab.lenUnexpected() != 1 {
		t.Fatalf("rank-1 entry should remain queued")
	}
}

func TestMatchTableMaskedTags(t *testing.T) {
	var tab matchTable
	arrive(&tab, 2, 0x1234, 1)
	req := &Request{from: -1, tag: 0x0034, mask: 0x00FF}
	if got := tab.probeEarliest(req); got == nil || got.id != 1 {
		t.Fatalf("masked probe missed the buffered message")
	}
	// probeEarliest must not consume.
	if tab.lenUnexpected() != 1 {
		t.Fatalf("probe consumed the message")
	}
	if !tab.removeUnexpected(tab.probeEarliest(req)) {
		t.Fatalf("claim removal failed")
	}
	if tab.removeUnexpected(&unexMsg{from: 2}) {
		t.Fatalf("removing an unqueued message should report false")
	}
}

func TestMatchTableFilterAndTake(t *testing.T) {
	var tab matchTable
	for r := 0; r < 40; r++ {
		postReq(&tab, r%5, Tag(r))
		arrive(&tab, r%5, Tag(r), uint64(r))
	}
	postReq(&tab, -1, 99)

	removed := tab.filterPosted(func(r *Request) bool { return r.from != 2 })
	if len(removed) != 8 {
		t.Fatalf("filterPosted removed %d, want 8", len(removed))
	}
	if tab.lenPosted() != 33 {
		t.Fatalf("posted count = %d, want 33", tab.lenPosted())
	}
	stale := tab.filterUnexpected(func(m *unexMsg) bool { return m.id%2 == 0 })
	if len(stale) != 20 {
		t.Fatalf("filterUnexpected removed %d, want 20", len(stale))
	}
	if got := len(tab.takeAllPosted()); got != 33 {
		t.Fatalf("takeAllPosted returned %d, want 33", got)
	}
	if got := len(tab.takeAllUnexpected()); got != 20 {
		t.Fatalf("takeAllUnexpected returned %d, want 20", got)
	}
	if tab.lenPosted() != 0 || tab.lenUnexpected() != 0 {
		t.Fatalf("table not empty after takeAll: posted=%d unexpected=%d", tab.lenPosted(), tab.lenUnexpected())
	}
	count := 0
	tab.forEachUnexpected(func(*unexMsg) { count++ })
	if count != 0 {
		t.Fatalf("forEachUnexpected visited %d entries on an empty table", count)
	}
}

func TestMatchTableRemovePosted(t *testing.T) {
	var tab matchTable
	spec := postReq(&tab, 6, 1)
	any := postReq(&tab, -1, 1)
	if !tab.removePosted(spec) || !tab.removePosted(any) {
		t.Fatalf("removePosted failed on queued receives")
	}
	if tab.removePosted(spec) {
		t.Fatalf("removePosted should report false on an already-removed receive")
	}
	if tab.lenPosted() != 0 {
		t.Fatalf("posted count = %d, want 0", tab.lenPosted())
	}
}

func TestDefaultPullStripesFor(t *testing.T) {
	if got, want := DefaultPullStripesFor(0), DefaultPullStripes(); got != want {
		t.Fatalf("unknown placement: got %d, want DefaultPullStripes()=%d", got, want)
	}
	// With more co-located ranks than cores every pull must degrade to a
	// single sequential Get.
	if got := DefaultPullStripesFor(1 << 20); got != 1 {
		t.Fatalf("oversubscribed node: got %d stripes, want 1", got)
	}
	// One rank on the node may use up to the in-process cap.
	if got := DefaultPullStripesFor(1); got < 1 || got > maxDefaultPullStripes {
		t.Fatalf("single rank: got %d stripes, want within [1,%d]", got, maxDefaultPullStripes)
	}
	cfg := Config{RanksPerNode: 1 << 20}.withDefaults()
	if cfg.PullStripes != 1 {
		t.Fatalf("withDefaults ignored RanksPerNode: PullStripes=%d", cfg.PullStripes)
	}
}
