package ucp

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"mpicd/internal/fabric"
)

// Regression: a blocking Probe used to loop on cond.Wait with no deadline,
// ignoring Config.ReqTimeout entirely — a probe against a silent peer hung
// forever even though a Recv in the same configuration would time out.
func TestProbeBlockingTimeout(t *testing.T) {
	cfg := Config{ReqTimeout: 20 * time.Millisecond}
	_, b := pair(t, fabric.Config{}, cfg)
	start := time.Now()
	m, err := b.Probe(-1, 5, exactMask, true)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("blocking probe with no sender = (%v, %v), want ErrTimeout", m, err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("probe took %v to time out (janitor wake missing?)", took)
	}
	if b.Stats().Timeouts.Load() == 0 {
		t.Fatal("Timeouts counter did not advance")
	}
}

// A blocking Mprobe against a peer whose link is down (every outbound
// packet dropped at the sender NIC) must honor the deadline too.
func TestMprobeBlockingTimeoutLinkDown(t *testing.T) {
	downPlan := fabric.FaultPlan{Seed: 1, Rules: []fabric.FaultRule{
		{Peer: 1, Action: fabric.LinkDown, Prob: 1, Count: 1, Down: -1},
	}}
	cfg := reliableCfg()
	cfg.ReqTimeout = 30 * time.Millisecond
	cfg.RexmitRetries = 3
	f := fabric.NewInproc(2, fabric.Config{FragSize: cfg.FragSize})
	a := NewWorker(fabric.WrapFault(f.NIC(0), downPlan), cfg)
	b := NewWorker(f.NIC(1), cfg)
	defer func() {
		a.Close()
		b.Close()
	}()

	data := pattern(4000, 2)
	if _, err := a.Send(1, 3, Contig{}, data, 4000, 0, ProtoEager); err != nil {
		t.Fatal(err)
	}
	// Nothing from rank 0 ever arrives at rank 1.
	if m, err := b.Mprobe(0, 3, exactMask, true); !errors.Is(err, ErrTimeout) {
		t.Fatalf("mprobe across down link = (%v, %v), want ErrTimeout", m, err)
	}
}

// An eager message whose fragments are corrupted in flight before any
// match: the checksum layer drops the corrupt copies, retransmission
// repairs them, and a blocking Mprobe still observes the message and
// MRecv delivers intact bytes.
func TestMprobeCorruptEagerFragmentBeforeMatch(t *testing.T) {
	corruptPlan := fabric.FaultPlan{Seed: 7, Rules: []fabric.FaultRule{
		{Peer: -1, Action: fabric.Corrupt, Prob: 1, Count: 3},
	}}
	cfg := reliableCfg()
	cfg.ReqTimeout = 2 * time.Second
	f := fabric.NewInproc(2, fabric.Config{FragSize: cfg.FragSize})
	a := NewWorker(fabric.WrapFault(f.NIC(0), corruptPlan), cfg)
	b := NewWorker(f.NIC(1), cfg)
	defer func() {
		a.Close()
		b.Close()
	}()

	const size = 5000 // spans several 1 KiB fragments
	data := pattern(size, 3)
	sr, err := a.Send(1, 9, Contig{}, data, size, 0, ProtoEager)
	if err != nil {
		t.Fatal(err)
	}
	m, err := b.Mprobe(0, 9, exactMask, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total != size {
		t.Fatalf("probed size = %d, want %d", m.Total, size)
	}
	out := make([]byte, size)
	rr, err := b.MRecv(m, Contig{}, out, size)
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("bytes corrupted in delivery")
	}
	if b.Stats().CorruptDrops.Load() == 0 {
		t.Fatal("CorruptDrops counter did not advance")
	}
}

// Closing the worker must wake a blocked probe with ErrWorkerClosed.
func TestProbeBlockingWorkerClose(t *testing.T) {
	_, b := pair(t, fabric.Config{}, Config{})
	done := make(chan error, 1)
	go func() {
		_, err := b.Probe(-1, 1, exactMask, true)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrWorkerClosed) {
			t.Fatalf("probe on closed worker = %v, want ErrWorkerClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("probe did not wake on Close")
	}
}

// Regression: MRecv used to clear m.claimed before checking w.closed, so
// failing with ErrWorkerClosed stranded the message — a retry on the same
// handle was rejected as unclaimed ("requires a message claimed by
// Mprobe") instead of reporting the real condition.
func TestMRecvClosedWorkerPreservesClaim(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{})
	data := pattern(64, 5)
	if _, err := a.Send(1, 4, Contig{}, data, 64, 0, ProtoEager); err != nil {
		t.Fatal(err)
	}
	m, err := b.Mprobe(0, 4, exactMask, true)
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	out := make([]byte, 64)
	if _, err := b.MRecv(m, Contig{}, out, 64); !errors.Is(err, ErrWorkerClosed) {
		t.Fatalf("MRecv on closed worker = %v, want ErrWorkerClosed", err)
	}
	// The claim survives the failure: a retry reports the same closed
	// condition rather than the misleading unclaimed-message error.
	_, err = b.MRecv(m, Contig{}, out, 64)
	if !errors.Is(err, ErrWorkerClosed) {
		t.Fatalf("retried MRecv = %v, want ErrWorkerClosed", err)
	}
	if err != nil && strings.Contains(err.Error(), "requires a message claimed") {
		t.Fatalf("retried MRecv lost the claim: %v", err)
	}
}
