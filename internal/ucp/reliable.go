package ucp

// Reliability machinery: retransmission of unacknowledged sends, duplicate
// suppression on the receiver, fragment checksums, deadline enforcement
// and reaping of stale abort records. Everything here is driven by the
// worker's janitor goroutine, which only runs when Config.Reliable or
// Config.ReqTimeout asks for it — plain lossless runs carry none of the
// cost.
//
// The protocol is sender-driven: a reliable eager send retains the packed
// message and retransmits all of it until the receiver's ack arrives; a
// reliable rendezvous send retransmits the RTS until the FIN arrives (a
// lost FIN is recovered because the receiver answers a duplicate RTS for
// a completed message by resending the FIN). The receiver keeps a bounded
// set of recently completed message ids so duplicates trigger an ack or
// FIN resend instead of a second delivery — together this gives
// exactly-once completion on both sides for any pattern of packet drop,
// duplication and reordering, and bounded-time failure (ErrTimeout) when
// the peer is unreachable.

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"mpicd/internal/fabric"
	"mpicd/internal/obs"
)

// Header flag bits layered on fabric.Flags by the transport.
const (
	// flagReliable marks an eager fragment whose sender expects an ack.
	flagReliable uint8 = 1 << 6
	// flagCRC marks an eager fragment whose header Aux1 carries a CRC32C
	// of the payload.
	flagCRC uint8 = 1 << 7
)

// janitorTick is the sweep period for retransmits, deadlines and reaping.
const janitorTick = 2 * time.Millisecond

// completedCap bounds the per-worker duplicate-suppression set. Older
// entries are evicted FIFO; a duplicate arriving after eviction would be
// redelivered, so the cap is sized far above any plausible retransmit
// window.
const completedCap = 4096

// doneRec remembers how a completed wire message finished so duplicates
// can be answered without redelivery.
type doneRec struct {
	kind   fabric.Kind // kindEagerAck or kindFIN
	status int64       // 0 success, 1 failure
}

// rexmitEntry is one unacknowledged send awaiting ack (eager) or FIN
// (rendezvous RTS).
type rexmitEntry struct {
	dst      int
	tag      Tag
	id       uint64
	total    int64
	aux      int64
	req      *Request
	payload  []byte        // retained packed message (eager); nil for RTS
	hdr      fabric.Header // control header to resend (RTS); unused for eager
	eager    bool
	attempts int
	next     time.Time
}

// startJanitor launches the sweep goroutine when the configuration needs
// one.
func (w *Worker) startJanitor() {
	if !w.cfg.Reliable && w.cfg.ReqTimeout <= 0 {
		return
	}
	w.wg.Add(1)
	go w.janitor()
}

func (w *Worker) janitor() {
	defer w.wg.Done()
	t := time.NewTicker(janitorTick)
	defer t.Stop()
	for {
		select {
		case <-w.quit:
			return
		case now := <-t.C:
			w.sweep(now)
		}
	}
}

// sweep advances the reliability state machine one tick: resend overdue
// unacknowledged messages, fail requests past their deadline or
// retransmission budget, and reap stale errored unexpected entries. All
// fabric sends and request completions happen after w.mu is released.
func (w *Worker) sweep(now time.Time) {
	type expiredSend struct {
		e *rexmitEntry
		s *sendOp // the rendezvous send to tear down; nil for eager
	}
	var (
		resend  []*rexmitEntry
		expired []expiredSend
		timedCb []func()
	)
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	for id, e := range w.rexmit {
		if now.Before(e.next) {
			continue
		}
		if e.attempts >= w.cfg.RexmitRetries {
			delete(w.rexmit, id)
			var s *sendOp
			if !e.eager {
				s = w.sends[id]
				delete(w.sends, id)
			}
			expired = append(expired, expiredSend{e, s})
			continue
		}
		e.attempts++
		e.next = now.Add(w.rexmitBackoff().Delay(e.attempts, w.rng))
		resend = append(resend, e)
	}
	if w.cfg.ReqTimeout > 0 {
		// Posted receives that never matched.
		expiredReqs := w.table.filterPosted(func(r *Request) bool {
			return r.deadline.IsZero() || !now.After(r.deadline)
		})
		for _, r := range expiredReqs {
			req := r
			timedCb = append(timedCb, func() {
				w.stats.Timeouts.Add(1)
				req.complete(-1, 0, 0, 0, ErrTimeout)
			})
		}
		// Matched eager receives whose remaining fragments never came.
		for key, op := range w.active {
			if op.req.deadline.IsZero() || now.Before(op.req.deadline) {
				continue
			}
			delete(w.active, key)
			expiredOp := op
			timedCb = append(timedCb, func() {
				expiredOp.mu.Lock()
				already := expiredOp.finished
				expiredOp.finished = true
				expiredOp.discard = true
				if expiredOp.failure == nil {
					expiredOp.failure = ErrTimeout
				}
				for _, p := range expiredOp.pending {
					p.Release()
				}
				expiredOp.pending = nil
				expiredOp.mu.Unlock()
				if !already {
					w.stats.Timeouts.Add(1)
					w.finishRecv(expiredOp)
				}
			})
		}
	}
	// Reap errored unexpected entries no receive ever claimed.
	if w.table.lenUnexpected() > 0 {
		stale := w.table.filterUnexpected(func(m *unexMsg) bool {
			return m.errored == nil || m.erroredAt.IsZero() || now.Sub(m.erroredAt) <= w.cfg.AbortLinger
		})
		for _, m := range stale {
			w.stats.AbortsReaped.Add(1)
			reaped := m
			timedCb = append(timedCb, func() { w.releaseFrags(reaped) })
		}
	}
	// Wake blocking probes so they re-check their deadlines (probe waits
	// on w.cond rather than carrying a per-request deadline entry).
	w.cond.Broadcast()
	w.mu.Unlock()

	for _, e := range resend {
		w.stats.Retransmits.Add(1)
		w.ev(obs.EvRexmit, e.dst, e.id, e.tag, e.total, int64(e.attempts))
		if e.eager {
			w.sendEagerFrags(e.dst, e.tag, e.id, e.total, e.aux, e.payload)
		} else {
			_ = w.nic.Send(e.dst, e.hdr)
		}
	}
	for _, x := range expired {
		w.stats.Timeouts.Add(1)
		if x.s != nil {
			w.nic.Deregister(x.s.key)
			x.s.src.Finish()
		}
		// A destination the detector has since declared dead gets the
		// taxonomy error, not a bare timeout (the usual path flushes such
		// entries at declaration time; this covers the race where the
		// declaration lands mid-sweep).
		err := fmt.Errorf("%w: send to rank %d unacked after %d attempts", ErrTimeout, x.e.dst, x.e.attempts)
		if w.PeerFailed(x.e.dst) {
			err = procFailedErr(x.e.dst)
		}
		x.e.req.complete(x.e.dst, x.e.tag, 0, x.e.aux, err)
	}
	for _, cb := range timedCb {
		cb()
	}
}

func (w *Worker) rexmitBackoff() fabric.Backoff {
	return fabric.Backoff{Base: w.cfg.RexmitBase, Max: w.cfg.RexmitMax, Factor: 2, Jitter: 0.25}
}

// trackRexmit registers an unacknowledged send with the janitor. Caller
// must not hold w.mu.
func (w *Worker) trackRexmit(e *rexmitEntry) error {
	e.next = time.Now().Add(w.rexmitBackoff().Delay(0, nil))
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrWorkerClosed
	}
	w.rexmit[e.id] = e
	w.mu.Unlock()
	return nil
}

// ackRexmit resolves the rexmit entry for id, completing its request with
// the acknowledged status. Duplicate acks find no entry and are ignored.
func (w *Worker) ackRexmit(id uint64, status int64) {
	w.mu.Lock()
	e, ok := w.rexmit[id]
	if ok {
		delete(w.rexmit, id)
	}
	w.mu.Unlock()
	if !ok || !e.eager {
		return
	}
	var err error
	if status != 0 {
		err = errors.New("ucp: remote receive failed (eager ack)")
	}
	e.req.complete(e.dst, e.tag, e.total, e.aux, err)
}

// eagerSendReliable packs the whole message into a retained buffer (a
// sequential pass, legal for every source class including inorder custom
// types), then streams checksummed fragments that the janitor retransmits
// until the receiver acks. Fragment-level send errors are deliberately
// ignored: a down link is exactly what retransmission is for.
func (w *Worker) eagerSendReliable(dst int, tag Tag, id uint64, total, aux int64, src SendState, req *Request) error {
	buf := make([]byte, total)
	frag := int64(w.cfg.FragSize)
	for off := int64(0); off < total; {
		n := frag
		if rem := total - off; n > rem {
			n = rem
		}
		got, err := src.ReadAt(buf[off:off+n], off)
		if err != nil && err != io.EOF {
			return err
		}
		if got == 0 {
			return fabric.ErrShortTransfer
		}
		off += int64(got)
	}
	if err := w.trackRexmit(&rexmitEntry{dst: dst, tag: tag, id: id, total: total, aux: aux, req: req, payload: buf, eager: true}); err != nil {
		return err
	}
	w.sendEagerFrags(dst, tag, id, total, aux, buf)
	return nil
}

// sendEagerFrags streams one full copy of a retained eager message.
func (w *Worker) sendEagerFrags(dst int, tag Tag, id uint64, total, aux int64, buf []byte) {
	frag := int64(w.cfg.FragSize)
	off := int64(0)
	for {
		n := frag
		if rem := total - off; n > rem {
			n = rem
		}
		hdr := fabric.Header{Kind: kindEager, Flags: flagReliable, Tag: uint64(tag), MsgID: id, Offset: off, Total: total, Aux0: aux}
		if off > 0 && off+n < total {
			hdr.Flags |= fabric.FlagUnordered
		}
		payload := buf[off : off+n]
		if w.cfg.Checksum {
			hdr.Flags |= flagCRC
			hdr.Aux1 = int64(fabric.CRC32(payload))
		}
		if err := w.nic.Send(dst, hdr, payload); err == nil {
			w.stats.EagerFragments.Add(1)
		}
		off += n
		if off >= total {
			return
		}
	}
}

// recordCompleted remembers how a wire message finished so later
// duplicates can be answered without redelivery. Caller must not hold
// w.mu. No-op unless Reliable.
func (w *Worker) recordCompleted(key msgKey, kind fabric.Kind, status int64) {
	if !w.cfg.Reliable {
		return
	}
	w.mu.Lock()
	if _, ok := w.completed[key]; !ok {
		w.completed[key] = doneRec{kind: kind, status: status}
		w.completedFIFO = append(w.completedFIFO, key)
		if len(w.completedFIFO) > completedCap {
			evict := w.completedFIFO[0]
			w.completedFIFO = w.completedFIFO[1:]
			delete(w.completed, evict)
		}
	}
	w.mu.Unlock()
}

// completedStatus looks up the duplicate-suppression record for key.
func (w *Worker) completedStatus(key msgKey) (doneRec, bool) {
	if !w.cfg.Reliable {
		return doneRec{}, false
	}
	w.mu.Lock()
	rec, ok := w.completed[key]
	w.mu.Unlock()
	return rec, ok
}

// verifyFragCRC checks a checksummed eager fragment. It reports whether
// the fragment should be delivered; on mismatch the packet is consumed:
// dropped when retransmission will recover it, or converted into a
// receive failure when it will not.
func (w *Worker) verifyFragCRC(pkt *fabric.Packet) bool {
	if pkt.Hdr.Flags&flagCRC == 0 || len(pkt.Payload) == 0 {
		return true
	}
	if fabric.CRC32(pkt.Payload) == uint32(uint64(pkt.Hdr.Aux1)) {
		return true
	}
	w.stats.CorruptDrops.Add(1)
	if pkt.Hdr.Flags&flagReliable != 0 {
		// The sender retains the message; a retransmitted copy replaces
		// this fragment.
		pkt.Release()
		return false
	}
	w.failEagerFrag(pkt)
	return false
}

// failEagerFrag routes a corrupt unreliable fragment as a receive
// failure: the payload is untrustworthy, but the header still identifies
// the message, so the matching receive fails with ErrCorrupt instead of
// hanging on a byte count that never completes.
func (w *Worker) failEagerFrag(pkt *fabric.Packet) {
	key := msgKey{pkt.From, pkt.Hdr.MsgID}
	err := errorCorruptFrag(pkt.Hdr.Offset)
	w.mu.Lock()
	if op, ok := w.active[key]; ok {
		w.mu.Unlock()
		op.mu.Lock()
		op.discard = true
		if op.failure == nil {
			op.failure = err
		}
		done := w.feedLocked(op, pkt)
		op.mu.Unlock()
		if done {
			w.finishRecv(op)
			w.mu.Lock()
			delete(w.active, key)
			w.mu.Unlock()
		}
		return
	}
	if m := w.findBuffered(key); m != nil {
		if m.errored == nil {
			m.errored = err
			m.erroredAt = time.Now()
		}
		w.releaseFrags(m)
		// Keep counting so nothing downstream waits on this message.
		m.buffered += int64(len(pkt.Payload))
		w.cond.Broadcast()
		w.mu.Unlock()
		pkt.Release()
		return
	}
	// First sign of this message: record it as errored so a receive that
	// matches it fails promptly.
	m := &unexMsg{
		from: pkt.From, id: pkt.Hdr.MsgID, tag: Tag(pkt.Hdr.Tag),
		total: pkt.Hdr.Total, aux0: pkt.Hdr.Aux0,
		errored: err, erroredAt: time.Now(),
	}
	if req := w.matchPosted(m); req != nil {
		w.startRecvLocked(req, m) // releases w.mu
		pkt.Release()
		return
	}
	w.table.addUnexpected(m)
	w.cond.Broadcast()
	w.mu.Unlock()
	pkt.Release()
}

// timedGet is nic.Get plus the get_rtt_ns histogram observation when the
// obs layer is enabled.
func (w *Worker) timedGet(from int, key uint64, off int64, sink fabric.Sink, sinkOff, n int64) error {
	if w.obs == nil {
		return w.nic.Get(from, key, off, sink, sinkOff, n)
	}
	start := time.Now()
	err := w.nic.Get(from, key, off, sink, sinkOff, n)
	w.obs.getNS.Observe(time.Since(start).Nanoseconds())
	return err
}

func errorCorruptFrag(off int64) error {
	return fmt.Errorf("%w: eager fragment at offset %d failed checksum", ErrCorrupt, off)
}

// findBuffered locates an unexpected or claimed entry for key. Caller
// holds w.mu.
func (w *Worker) findBuffered(key msgKey) *unexMsg {
	if m, ok := w.claimed[key]; ok {
		return m
	}
	return w.table.findUnexpected(key)
}

// addFragDedup appends an eager fragment to a buffered message, dropping
// it when an equal-or-longer copy of the same offset is already held
// (retransmissions resend whole messages). Returns the payload bytes
// newly buffered. Caller holds w.mu.
func (w *Worker) addFragDedup(m *unexMsg, pkt *fabric.Packet) int64 {
	if w.cfg.Reliable {
		for i, f := range m.frags {
			if f.Hdr.Offset != pkt.Hdr.Offset {
				continue
			}
			if len(f.Payload) >= len(pkt.Payload) {
				w.stats.DupFrags.Add(1)
				pkt.Release()
				return 0
			}
			// The held copy was truncated; the new one supersedes it.
			delta := int64(len(pkt.Payload) - len(f.Payload))
			f.Release()
			m.frags[i] = pkt
			return delta
		}
	}
	m.frags = append(m.frags, pkt)
	return int64(len(pkt.Payload))
}

// RexmitInfo describes one unacknowledged reliable send — which peer
// has not confirmed receipt, and how many resend rounds it has cost.
// Debug/ops surface (launch workers dump it when a job dies).
type RexmitInfo struct {
	Dst      int
	Tag      Tag
	Eager    bool
	Attempts int
}

// RexmitSnapshot lists the sends currently awaiting acknowledgement.
func (w *Worker) RexmitSnapshot() []RexmitInfo {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]RexmitInfo, 0, len(w.rexmit))
	for _, e := range w.rexmit {
		out = append(out, RexmitInfo{Dst: e.dst, Tag: e.tag, Eager: e.eager, Attempts: e.attempts})
	}
	return out
}

// ackItem is one queued outbound eager ack.
type ackItem struct {
	to     int
	id     uint64
	status int64
}

// sendAck acknowledges a completed reliable eager message. Acks are
// queued, not sent inline: every call site runs on the progress
// goroutine, and a wire send can block on transport backpressure (a
// full shared-memory ring, a full socket buffer). A blocked progress
// loop stops draining the inbox, which stalls the provider's inbound
// path, which keeps the peer's channel to this rank full — at scale
// that closes a distributed cycle where every rank waits to enqueue an
// ack that only its equally-stalled peer could drain, and no
// retransmission budget can break it (retransmits need the same full
// channels). The pump goroutine absorbs the backpressure instead; the
// queue is bounded in practice by the number of in-flight reliable
// messages.
func (w *Worker) sendAck(to int, id uint64, status int64) {
	w.stats.AcksSent.Add(1)
	w.ackMu.Lock()
	if w.ackClosed {
		w.ackMu.Unlock()
		return
	}
	w.ackQ = append(w.ackQ, ackItem{to, id, status})
	w.ackMu.Unlock()
	w.ackCond.Signal()
}

// ackPump drains queued acks onto the wire, absorbing any transport
// backpressure off the progress goroutine. Post-close sends fail fast
// (the NIC is closed), so shutdown never wedges here.
func (w *Worker) ackPump() {
	defer w.wg.Done()
	defer close(w.ackDrained) // Close waits on this before tearing down the NIC
	for {
		w.ackMu.Lock()
		for len(w.ackQ) == 0 && !w.ackClosed {
			w.ackCond.Wait()
		}
		if len(w.ackQ) == 0 {
			w.ackMu.Unlock()
			return
		}
		q := w.ackQ
		w.ackQ = nil
		w.ackMu.Unlock()
		for _, a := range q {
			_ = w.nic.Send(a.to, fabric.Header{Kind: kindEagerAck, MsgID: a.id, Aux0: a.status})
		}
	}
}

// handleEagerAck completes the sender side of a reliable eager message.
func (w *Worker) handleEagerAck(pkt *fabric.Packet) {
	id := pkt.Hdr.MsgID
	status := pkt.Hdr.Aux0
	pkt.Release()
	w.ackRexmit(id, status)
}

// getRetry wraps a rendezvous Get with bounded retries for transient
// failures (link down, corrupt frame). Unrecoverable errors — unknown
// key, closed NIC — and sequential sinks (which cannot rewind) pass
// straight through.
func (w *Worker) getRetry(from int, key uint64, off int64, sink fabric.Sink, sinkOff, n int64, sequential bool) error {
	if w.PeerFailed(from) {
		return procFailedErr(from)
	}
	err := w.timedGet(from, key, off, sink, sinkOff, n)
	if err != nil && errors.Is(err, fabric.ErrRankDead) {
		// Only a dead process produces ErrRankDead: promote it to a peer
		// failure so every other operation on the rank fails too, and do
		// not waste a single retry on it.
		w.DeclarePeerFailed(from)
		return procFailedErr(from)
	}
	if err == nil || sequential || w.cfg.GetRetries <= 0 ||
		errors.Is(err, fabric.ErrBadKey) || errors.Is(err, fabric.ErrClosed) {
		return err
	}
	bo := w.rexmitBackoff()
	rng := rand.New(rand.NewSource(int64(key)<<20 ^ off ^ n))
	for attempt := 0; attempt < w.cfg.GetRetries; attempt++ {
		t := time.NewTimer(bo.Delay(attempt, rng))
		select {
		case <-w.quit:
			t.Stop()
			return err
		case <-t.C:
		}
		if w.PeerFailed(from) {
			return procFailedErr(from)
		}
		w.stats.GetRetries.Add(1)
		if err = w.timedGet(from, key, off, sink, sinkOff, n); err == nil {
			return nil
		}
		if errors.Is(err, fabric.ErrRankDead) {
			w.DeclarePeerFailed(from)
			return procFailedErr(from)
		}
		if errors.Is(err, fabric.ErrBadKey) || errors.Is(err, fabric.ErrClosed) {
			return err
		}
	}
	return err
}
