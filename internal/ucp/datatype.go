package ucp

import (
	"fmt"
	"io"

	"mpicd/internal/fabric"
)

// SendState is a live send-side view of (buffer, datatype): a byte source
// plus a completion hook that releases any per-operation state.
type SendState interface {
	fabric.Source
	// Finish releases per-operation resources; called exactly once when
	// the transfer completes (successfully or not).
	Finish() error
}

// RecvState is the receive-side dual of SendState.
type RecvState interface {
	fabric.Sink
	Finish() error
}

// RecvInfo carries the matched message's wire metadata into receive-state
// construction. Dynamic datatypes (e.g. serialized objects whose region
// layout is only known from an unpacked header) size their sinks from it.
type RecvInfo struct {
	From  int
	Tag   Tag
	Total int64 // message payload bytes
	Aux   int64 // sender-provided auxiliary word (packed-part length)
}

// Datatype lowers an application buffer to wire representations. It is the
// transport analogue of ucp_datatype_t: Contig, Iov and Generic implement
// it.
type Datatype interface {
	// SendState binds the datatype to a send buffer.
	SendState(buf any, count int64) (SendState, error)
	// RecvState binds the datatype to a receive buffer for the matched
	// message described by info.
	RecvState(buf any, count int64, info RecvInfo) (RecvState, error)
}

// AuxProvider is implemented by send states that supply the message's
// auxiliary header word themselves (e.g. the custom-datatype engine
// advertising its packed-part length). It overrides the aux argument of
// Worker.Send.
type AuxProvider interface {
	Aux() int64
}

// ProtoChooser is implemented by send states that override automatic
// protocol selection under ProtoAuto.
type ProtoChooser interface {
	ChooseProto(total, rndvThresh, iovMin int64) Proto
}

// noFinish adds a no-op Finish to plain sources/sinks.
type noFinishSrc struct{ fabric.Source }

func (noFinishSrc) Finish() error { return nil }

// Window forwards direct access when the wrapped source supports it.
func (s noFinishSrc) Window(off, n int64) ([]byte, bool) {
	if d, ok := s.Source.(fabric.DirectSource); ok {
		return d.Window(off, n)
	}
	return nil, false
}

// NumRegions forwards the region count when the wrapped source reports
// one (protocol selection depends on it).
func (s noFinishSrc) NumRegions() int {
	if rc, ok := s.Source.(fabric.RegionCounter); ok {
		return rc.NumRegions()
	}
	return 1
}

type noFinishSink struct{ fabric.Sink }

func (noFinishSink) Finish() error { return nil }

func (s noFinishSink) Window(off, n int64) ([]byte, bool) {
	if d, ok := s.Sink.(fabric.DirectSink); ok {
		return d.Window(off, n)
	}
	return nil, false
}

func (s noFinishSink) Sequential() bool {
	if q, ok := s.Sink.(fabric.SequentialSink); ok {
		return q.Sequential()
	}
	return false
}

// Contig is the contiguous-buffer datatype (UCP_DATATYPE_CONTIG). Buffers
// must be []byte; count is the byte count (a negative count means "use the
// whole slice").
type Contig struct{}

func contigBytes(buf any, count int64) (fabric.Bytes, error) {
	b, ok := buf.([]byte)
	if !ok {
		if fb, ok := buf.(fabric.Bytes); ok {
			b = fb
		} else {
			return nil, fmt.Errorf("ucp: Contig requires a []byte buffer, got %T", buf)
		}
	}
	if count < 0 {
		count = int64(len(b))
	}
	if count > int64(len(b)) {
		return nil, fmt.Errorf("ucp: Contig count %d exceeds buffer length %d", count, len(b))
	}
	return fabric.Bytes(b[:count]), nil
}

// SendState implements Datatype.
func (Contig) SendState(buf any, count int64) (SendState, error) {
	b, err := contigBytes(buf, count)
	if err != nil {
		return nil, err
	}
	return noFinishSrc{b}, nil
}

// RecvState implements Datatype.
func (Contig) RecvState(buf any, count int64, _ RecvInfo) (RecvState, error) {
	b, err := contigBytes(buf, count)
	if err != nil {
		return nil, err
	}
	return noFinishSink{b}, nil
}

// Iov is the scatter/gather datatype (UCP_DATATYPE_IOV). Buffers must be
// [][]byte region lists; count is ignored (the regions define the size).
type Iov struct{}

func iovRegions(buf any) (*fabric.Iov, error) {
	switch v := buf.(type) {
	case [][]byte:
		return fabric.NewIov(v), nil
	case *fabric.Iov:
		return v, nil
	default:
		return nil, fmt.Errorf("ucp: Iov requires a [][]byte buffer, got %T", buf)
	}
}

// SendState implements Datatype.
func (Iov) SendState(buf any, _ int64) (SendState, error) {
	v, err := iovRegions(buf)
	if err != nil {
		return nil, err
	}
	return noFinishSrc{v}, nil
}

// RecvState implements Datatype.
func (Iov) RecvState(buf any, _ int64, _ RecvInfo) (RecvState, error) {
	v, err := iovRegions(buf)
	if err != nil {
		return nil, err
	}
	return noFinishSink{v}, nil
}

// GenericOps is the callback set behind a Generic datatype, mirroring
// ucp_generic_dt_ops: per-operation pack/unpack state with virtual byte
// offsets. The paper's custom-datatype callbacks were designed against
// exactly this interface shape.
type GenericOps interface {
	// StartPack binds a send buffer and returns its pack state.
	StartPack(buf any, count int64) (PackState, error)
	// StartUnpack binds a receive buffer and returns its unpack state.
	StartUnpack(buf any, count int64) (UnpackState, error)
}

// PackState packs a buffer fragment by fragment.
type PackState interface {
	// PackedSize returns the total number of bytes Pack will produce.
	PackedSize() (int64, error)
	// Pack fills dst with packed bytes starting at virtual offset off and
	// returns the number of bytes produced. It may underfill dst; the
	// transport continues from off+used.
	Pack(off int64, dst []byte) (used int, err error)
	// Finish releases the state.
	Finish() error
}

// UnpackState unpacks fragments back into the receive buffer.
type UnpackState interface {
	// UnpackedSize returns the total number of bytes Unpack will consume.
	UnpackedSize() (int64, error)
	// Unpack consumes src at virtual offset off.
	Unpack(off int64, src []byte) error
	// Finish releases the state.
	Finish() error
}

// Generic is the callback-driven datatype (UCP_DATATYPE_GENERIC).
type Generic struct {
	Ops GenericOps
	// InOrder requires unpack callbacks to observe strictly increasing
	// offsets; the transport buffers out-of-order fragments to honor it.
	InOrder bool
}

// SendState implements Datatype.
func (g Generic) SendState(buf any, count int64) (SendState, error) {
	if g.Ops == nil {
		return nil, fmt.Errorf("ucp: Generic datatype with nil Ops")
	}
	st, err := g.Ops.StartPack(buf, count)
	if err != nil {
		return nil, err
	}
	size, err := st.PackedSize()
	if err != nil {
		st.Finish()
		return nil, err
	}
	return &genericSrc{st: st, size: size}, nil
}

// RecvState implements Datatype.
func (g Generic) RecvState(buf any, count int64, _ RecvInfo) (RecvState, error) {
	if g.Ops == nil {
		return nil, fmt.Errorf("ucp: Generic datatype with nil Ops")
	}
	st, err := g.Ops.StartUnpack(buf, count)
	if err != nil {
		return nil, err
	}
	size, err := st.UnpackedSize()
	if err != nil {
		st.Finish()
		return nil, err
	}
	return &genericSink{st: st, size: size, inorder: g.InOrder}, nil
}

type genericSrc struct {
	st   PackState
	size int64
}

func (s *genericSrc) Size() int64 { return s.size }

func (s *genericSrc) ReadAt(dst []byte, off int64) (int, error) {
	if off < 0 || off > s.size {
		return 0, fmt.Errorf("ucp: generic pack offset %d out of range [0,%d]", off, s.size)
	}
	if rem := s.size - off; int64(len(dst)) > rem {
		dst = dst[:rem]
	}
	if len(dst) == 0 {
		return 0, io.EOF
	}
	used, err := s.st.Pack(off, dst)
	if err != nil {
		return used, err
	}
	if used < len(dst) && off+int64(used) == s.size {
		return used, io.EOF
	}
	return used, nil
}

func (s *genericSrc) Finish() error { return s.st.Finish() }

type genericSink struct {
	st      UnpackState
	size    int64
	inorder bool
}

func (s *genericSink) Size() int64 { return s.size }

func (s *genericSink) Sequential() bool { return s.inorder }

func (s *genericSink) WriteAt(src []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(src)) > s.size {
		return 0, fmt.Errorf("ucp: generic unpack range [%d,%d) out of [0,%d]", off, off+int64(len(src)), s.size)
	}
	if err := s.st.Unpack(off, src); err != nil {
		return 0, err
	}
	return len(src), nil
}

func (s *genericSink) Finish() error { return s.st.Finish() }
