package ucp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"mpicd/internal/fabric"
	"mpicd/internal/obs"
)

// obsPair brings up a 2-rank inproc fabric with both workers sharing one
// Observer (per-rank metric prefixes keep them apart in the registry).
func obsPair(t *testing.T, o *obs.Observer, cfg Config) (*Worker, *Worker) {
	t.Helper()
	cfg.Obs = o
	return pair(t, fabric.Config{}, cfg)
}

func TestObsByteCountersByProtocol(t *testing.T) {
	o := obs.New(0)
	a, b := obsPair(t, o, Config{RndvThresh: 16 * 1024})

	xfer := func(n int, proto Proto) {
		t.Helper()
		data := pattern(n, 1)
		out := make([]byte, n)
		rr, _ := b.Recv(0, 1, exactMask, Contig{}, out, int64(n))
		sr, err := a.Send(1, 1, Contig{}, data, int64(n), 0, proto)
		if err != nil {
			t.Fatal(err)
		}
		if err := WaitAll(sr, rr); err != nil {
			t.Fatal(err)
		}
	}
	xfer(1000, ProtoEager)
	xfer(1000, ProtoEager)
	xfer(64*1024, ProtoRndv)

	s := a.StatsSnapshot()
	if s.EagerBytes != 2000 {
		t.Fatalf("eager bytes = %d, want 2000", s.EagerBytes)
	}
	if s.RndvBytes != 64*1024 {
		t.Fatalf("rndv bytes = %d, want %d", s.RndvBytes, 64*1024)
	}
	if s.MessagesInitiated() != 3 {
		t.Fatalf("initiated = %d, want 3", s.MessagesInitiated())
	}
	if got := b.StatsSnapshot().MessagesMatched(); got != 3 {
		t.Fatalf("matched = %d, want 3", got)
	}
	// The registry gauges mirror the worker counters.
	snap := o.Registry.Snapshot()
	if g := snap.Gauges["ucp.r0.eager_bytes"]; g != 2000 {
		t.Fatalf("registry eager_bytes gauge = %d, want 2000", g)
	}
	if g := snap.Gauges["ucp.r0.rndv_sends"]; g != 1 {
		t.Fatalf("registry rndv_sends gauge = %d, want 1", g)
	}
}

func TestObsSelfSendBytes(t *testing.T) {
	o := obs.New(0)
	f := fabric.NewInproc(1, fabric.Config{})
	w := NewWorker(f.NIC(0), Config{Obs: o})
	defer w.Close()
	out := make([]byte, 512)
	rr, _ := w.Recv(0, 1, exactMask, Contig{}, out, -1)
	sr, _ := w.Send(0, 1, Contig{}, pattern(512, 2), -1, 0, ProtoAuto)
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if s := w.StatsSnapshot(); s.SelfBytes != 512 || s.SelfSends != 1 {
		t.Fatalf("self bytes/sends = %d/%d, want 512/1", s.SelfBytes, s.SelfSends)
	}
}

func TestObsHistogramsPopulated(t *testing.T) {
	o := obs.New(0)
	a, b := obsPair(t, o, Config{RndvThresh: 8 * 1024})
	for _, n := range []int{100, 2000, 32 * 1024} {
		data := pattern(n, 4)
		out := make([]byte, n)
		rr, _ := b.Recv(0, 2, exactMask, Contig{}, out, int64(n))
		sr, _ := a.Send(1, 2, Contig{}, data, int64(n), 0, ProtoAuto)
		if err := WaitAll(sr, rr); err != nil {
			t.Fatal(err)
		}
	}
	snap := o.Registry.Snapshot()
	// Sender side: completion latency and eager pack time; receiver side:
	// delivery time and one Get round trip from the rendezvous transfer.
	for _, name := range []string{
		"ucp.r0.msg_complete_ns",
		"ucp.r0.pack_ns",
		"ucp.r1.msg_complete_ns",
		"ucp.r1.unpack_ns",
		"ucp.r1.get_rtt_ns",
		"ucp.r1.msg_size_bytes",
	} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			t.Fatalf("histogram %s missing or empty: %+v", name, h)
		}
	}
	if h := snap.Histograms["ucp.r1.msg_size_bytes"]; h.P99 < 32*1024 {
		t.Fatalf("size histogram p99 = %d, want >= 32768", h.P99)
	}
}

func TestObsTraceLifecycle(t *testing.T) {
	o := obs.New(256)
	a, b := obsPair(t, o, Config{})
	data := pattern(300, 6)
	out := make([]byte, 300)
	rr, _ := b.Recv(0, 8, exactMask, Contig{}, out, 300)
	sr, _ := a.Send(1, 8, Contig{}, data, 300, 0, ProtoEager)
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("data mismatch")
	}
	kinds := map[obs.EventKind]int{}
	for _, e := range o.Trace.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []obs.EventKind{obs.EvSend, obs.EvPost, obs.EvMatch, obs.EvComplete} {
		if kinds[k] == 0 {
			t.Fatalf("trace missing %v events; got %v", k, kinds)
		}
	}
	// The dump is valid JSON with both sections.
	var buf bytes.Buffer
	if err := o.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Metrics json.RawMessage `json:"metrics"`
		Trace   []obs.Event     `json:"trace"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if len(dump.Trace) == 0 || len(dump.Metrics) == 0 {
		t.Fatal("dump missing metrics or trace section")
	}
}

// Snapshot consistency under concurrency: 8 goroutine pairs ping-pong
// while samplers concurrently take StatsSnapshots, registry snapshots and
// JSON dumps. Run under -race this pins down that the obs layer adds no
// data races; afterwards the protocol-class invariants must hold exactly.
func TestObsSnapshotConsistencyConcurrent(t *testing.T) {
	o := obs.New(1024)
	a, b := obsPair(t, o, Config{RndvThresh: 4 * 1024})
	const pairs = 8
	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan error, pairs*2)
	stop := make(chan struct{})

	// Samplers hammer every read path while traffic flows.
	var swg sync.WaitGroup
	for i := 0; i < 2; i++ {
		swg.Add(1)
		go func() {
			defer swg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snapA, snapB := a.StatsSnapshot(), b.StatsSnapshot()
				if snapA.MessagesInitiated() < 0 || snapB.MessagesMatched() < 0 {
					panic("negative counter")
				}
				_ = o.Registry.Snapshot()
				var buf bytes.Buffer
				_ = o.WriteJSON(&buf)
			}
		}()
	}

	for g := 0; g < pairs; g++ {
		wg.Add(2)
		tag := Tag(200 + g)
		size := 512 + g*1024 // straddles the rendezvous threshold
		go func(tag Tag, size int) {
			defer wg.Done()
			buf := pattern(size, byte(tag))
			for i := 0; i < iters; i++ {
				sr, err := a.Send(1, tag, Contig{}, buf, int64(size), 0, ProtoAuto)
				if err != nil {
					errs <- err
					return
				}
				if err := sr.Wait(); err != nil {
					errs <- fmt.Errorf("send tag %d iter %d: %w", tag, i, err)
					return
				}
			}
		}(tag, size)
		go func(tag Tag, size int) {
			defer wg.Done()
			out := make([]byte, size)
			for i := 0; i < iters; i++ {
				rr, err := b.Recv(0, tag, exactMask, Contig{}, out, int64(size))
				if err != nil {
					errs <- err
					return
				}
				if err := rr.Wait(); err != nil {
					errs <- fmt.Errorf("recv tag %d iter %d: %w", tag, i, err)
					return
				}
			}
		}(tag, size)
	}
	wg.Wait()
	close(stop)
	swg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	const total = pairs * iters
	sa, sb := a.StatsSnapshot(), b.StatsSnapshot()
	if sa.MessagesInitiated() != total {
		t.Fatalf("initiated = %d, want %d", sa.MessagesInitiated(), total)
	}
	if sb.MessagesMatched() != total {
		t.Fatalf("matched = %d, want %d", sb.MessagesMatched(), total)
	}
	if sa.EagerSends == 0 || sa.RndvSends == 0 {
		t.Fatalf("expected both protocols exercised: %+v", sa)
	}
	// All traffic drained: no queue residue on either side.
	for _, s := range []StatsSnapshot{sa, sb} {
		d := s.Depths
		if d.Posted != 0 || d.Unexpected != 0 || d.ActiveRecvs != 0 || d.PendingSends != 0 || d.PendingPulls != 0 {
			t.Fatalf("rank %d queue residue after drain: %+v", s.Rank, d)
		}
	}
}

// Stats accounting stays exact under the PR 2 fault matrix: the lossy
// adversary forces retransmits and dup drops, but the protocol-class
// invariants and delivered bytes are unchanged.
func TestObsStatsConsistentUnderFaults(t *testing.T) {
	o := obs.New(512)
	cfg := reliableCfg()
	cfg.Obs = o
	a, b := faultWorkers(t, 42, cfg, lossyPlan)
	const msgs = 6
	var delivered int64
	for i := 0; i < msgs; i++ {
		size := 1 + i*2500
		data := pattern(size, byte(i))
		out := make([]byte, size)
		rr, _ := b.Recv(0, Tag(i), exactMask, Contig{}, out, int64(size))
		sr, err := a.Send(1, Tag(i), Contig{}, data, int64(size), 0, ProtoEager)
		if err != nil {
			t.Fatal(err)
		}
		if err := WaitAll(sr, rr); err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("transfer %d corrupted", i)
		}
		delivered += int64(size)
	}
	sa, sb := a.StatsSnapshot(), b.StatsSnapshot()
	if sa.MessagesInitiated() != msgs {
		t.Fatalf("initiated = %d, want %d", sa.MessagesInitiated(), msgs)
	}
	if sb.MessagesMatched() != msgs {
		t.Fatalf("matched = %d, want %d", sb.MessagesMatched(), msgs)
	}
	if sa.EagerBytes != delivered {
		t.Fatalf("eager bytes = %d, want %d (retransmits must not double-count)", sa.EagerBytes, delivered)
	}
	// The adversary really fired, and the trace recorded the retransmits.
	if sa.Retransmits == 0 {
		t.Fatal("lossy plan produced no retransmits")
	}
	var rexmitEvents int
	for _, e := range o.Trace.Events() {
		if e.Kind == obs.EvRexmit {
			rexmitEvents++
		}
	}
	if rexmitEvents == 0 && o.Trace.Dropped() == 0 {
		t.Fatal("no EvRexmit events in an undropped trace")
	}
}

// Disabled mode: a worker without Config.Obs still keeps counters and
// serves snapshots, and records nothing anywhere else.
func TestObsDisabledStillCounts(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{})
	data := pattern(256, 7)
	out := make([]byte, 256)
	rr, _ := b.Recv(0, 1, exactMask, Contig{}, out, 256)
	sr, _ := a.Send(1, 1, Contig{}, data, 256, 0, ProtoEager)
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if s := a.StatsSnapshot(); s.EagerSends != 1 || s.EagerBytes != 256 {
		t.Fatalf("disabled-mode snapshot = %+v", s)
	}
}

// The janitor's deadline sweep doubles as the probe wake-up; make sure
// enabling obs does not perturb it (a send under ReqTimeout completes
// well before the deadline).
func TestObsWithReqTimeout(t *testing.T) {
	o := obs.New(64)
	a, b := obsPair(t, o, Config{ReqTimeout: time.Second})
	data := pattern(128, 8)
	out := make([]byte, 128)
	rr, _ := b.Recv(0, 1, exactMask, Contig{}, out, 128)
	sr, _ := a.Send(1, 1, Contig{}, data, 128, 0, ProtoEager)
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
}
