package ucp

import (
	"errors"
	"testing"
	"time"

	"mpicd/internal/fabric"
)

// Failure-notification regression tests. The defining property under
// test: a blocked operation bound to a dead peer completes with
// ErrProcFailed through the liveness detector alone — no ReqTimeout is
// configured anywhere in this file, so before failure notification
// existed every one of these tests hung forever.

// hbCfg is the detector-enabled transport configuration: fast heartbeat
// cadence so deaths are declared within test time, no request deadline.
func hbCfg() Config {
	return Config{Heartbeat: fabric.DetectorConfig{
		Period:       2 * time.Millisecond,
		SuspectAfter: 8 * time.Millisecond,
		DeadAfter:    25 * time.Millisecond,
	}}
}

// killWorld brings up an n-rank inproc world where every NIC is wrapped
// in a fault plan sharing one kill switch, so killing a rank silences it
// for every peer in both directions.
func killWorld(t *testing.T, n int, cfg Config) ([]*Worker, []*fabric.FaultNIC) {
	t.Helper()
	ks := fabric.NewKillSwitch()
	f := fabric.NewInproc(n, fabric.Config{FragSize: cfg.FragSize})
	ws := make([]*Worker, n)
	fns := make([]*fabric.FaultNIC, n)
	for i := range ws {
		fns[i] = fabric.WrapFault(f.NIC(i), fabric.FaultPlan{Kills: ks})
		ws[i] = NewWorker(fns[i], cfg)
	}
	t.Cleanup(func() {
		for _, w := range ws {
			w.Close()
		}
	})
	return ws, fns
}

// waitFailed blocks until w has declared rank dead (detector latency).
func waitFailed(t *testing.T, w *Worker, rank int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !w.PeerFailed(rank) {
		if time.Now().After(deadline) {
			t.Fatalf("rank %d never declared failed", rank)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitErr waits for a request with a hang guard: these tests assert the
// absence of an infinite block, so they must not block infinitely
// themselves.
func waitErr(t *testing.T, r *Request) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- r.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(10 * time.Second):
		t.Fatal("request still blocked 10s after peer death (regression: no failure notification)")
		return nil
	}
}

// TestRecvDeadPeerNoTimeout is the core regression: a blocking receive
// from a peer that dies mid-wait, with no ReqTimeout configured.
func TestRecvDeadPeerNoTimeout(t *testing.T) {
	ws, fns := killWorld(t, 2, hbCfg())
	buf := make([]byte, 16)
	r, err := ws[0].Recv(1, 7, exactMask, Contig{}, buf, 16)
	if err != nil {
		t.Fatal(err)
	}
	fns[1].Kill()
	if err := waitErr(t, r); !errors.Is(err, ErrProcFailed) {
		t.Fatalf("Recv from dead peer = %v, want ErrProcFailed", err)
	}
	if ws[0].StatsSnapshot().PeerFailures != 1 {
		t.Fatal("peer_failures counter did not record the death")
	}
}

// TestRecvAnySourceAllSendersDead: an AnySource receive can only be
// satisfied by some remote sender; when every possible sender is dead it
// must fail rather than wait for a message that cannot arrive.
func TestRecvAnySourceAllSendersDead(t *testing.T) {
	ws, fns := killWorld(t, 3, hbCfg())
	buf := make([]byte, 16)
	r, err := ws[0].Recv(-1, 7, exactMask, Contig{}, buf, 16)
	if err != nil {
		t.Fatal(err)
	}
	fns[1].Kill()
	// One survivor left: the receive must keep waiting.
	waitFailed(t, ws[0], 1)
	if done, _ := r.Test(); done {
		t.Fatal("AnySource receive completed while a live sender remained")
	}
	fns[2].Kill()
	if err := waitErr(t, r); !errors.Is(err, ErrProcFailed) {
		t.Fatalf("AnySource with all senders dead = %v, want ErrProcFailed", err)
	}
	// Posting after the fact fails fast too.
	waitFailed(t, ws[0], 2)
	if _, err := ws[0].Recv(-1, 7, exactMask, Contig{}, buf, 16); !errors.Is(err, ErrProcFailed) {
		t.Fatalf("post-mortem AnySource recv = %v, want ErrProcFailed", err)
	}
}

// TestProbeDeadPeer: blocking Probe and Mprobe wake on peer death.
func TestProbeDeadPeer(t *testing.T) {
	ws, fns := killWorld(t, 2, hbCfg())
	type res struct {
		m   *Message
		err error
	}
	probe := make(chan res, 1)
	mprobe := make(chan res, 1)
	go func() {
		m, err := ws[0].Probe(1, 7, exactMask, true)
		probe <- res{m, err}
	}()
	go func() {
		m, err := ws[0].Mprobe(1, 7, exactMask, true)
		mprobe <- res{m, err}
	}()
	time.Sleep(5 * time.Millisecond) // let both blocks establish
	fns[1].Kill()
	for name, ch := range map[string]chan res{"Probe": probe, "Mprobe": mprobe} {
		select {
		case r := <-ch:
			if !errors.Is(r.err, ErrProcFailed) {
				t.Fatalf("%s on dead peer = %v, want ErrProcFailed", name, r.err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s still blocked after peer death", name)
		}
	}
}

// TestSendDeadPeerFailsFast: once the death is known, new sends to the
// peer are refused immediately instead of burning a retransmit budget.
func TestSendDeadPeerFailsFast(t *testing.T) {
	ws, fns := killWorld(t, 2, hbCfg())
	fns[1].Kill()
	waitFailed(t, ws[0], 1)
	start := time.Now()
	if _, err := ws[0].Send(1, 7, Contig{}, make([]byte, 8), 8, 0, ProtoEager); !errors.Is(err, ErrProcFailed) {
		t.Fatalf("Send to dead peer = %v, want ErrProcFailed", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("fail-fast send took %v", d)
	}
}

// TestRndvSendDeadReceiver: a rendezvous send whose RTS is never
// answered (the receiver died before posting) completes with
// ErrProcFailed instead of waiting forever for the FIN.
func TestRndvSendDeadReceiver(t *testing.T) {
	cfg := hbCfg()
	cfg.RndvThresh = 1024
	ws, fns := killWorld(t, 2, cfg)
	data := pattern(8192, 3)
	r, err := ws[0].Send(1, 7, Contig{}, data, int64(len(data)), 0, ProtoAuto)
	if err != nil {
		t.Fatal(err)
	}
	fns[1].Kill()
	if err := waitErr(t, r); !errors.Is(err, ErrProcFailed) {
		t.Fatalf("rndv send to dead receiver = %v, want ErrProcFailed", err)
	}
}

// TestRndvRecvDeadSender: the sender dies after its RTS arrives but
// before the payload can be pulled; the posted receive must fail (a
// dead rank's registered memory is gone — the pull can never succeed).
func TestRndvRecvDeadSender(t *testing.T) {
	cfg := hbCfg()
	cfg.RndvThresh = 1024
	ws, fns := killWorld(t, 2, cfg)
	data := pattern(8192, 3)
	if _, err := ws[0].Send(1, 7, Contig{}, data, int64(len(data)), 0, ProtoAuto); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the RTS land unexpected at rank 1
	fns[0].Kill()
	waitFailed(t, ws[1], 0)
	buf := make([]byte, len(data))
	r, err := ws[1].Recv(0, 7, exactMask, Contig{}, buf, int64(len(buf)))
	if err != nil {
		if !errors.Is(err, ErrProcFailed) {
			t.Fatalf("recv post-death = %v, want ErrProcFailed (or a poisoned match)", err)
		}
		return
	}
	if err := waitErr(t, r); !errors.Is(err, ErrProcFailed) {
		t.Fatalf("rndv recv from dead sender = %v, want ErrProcFailed", err)
	}
}

// TestEagerDeliveredBeforeDeathStillReceivable pins the ULFM rule: a
// message fully handed to the transport before the sender died is still
// matchable and receivable afterwards.
func TestEagerDeliveredBeforeDeathStillReceivable(t *testing.T) {
	ws, fns := killWorld(t, 2, hbCfg())
	data := pattern(64, 5)
	if _, err := ws[0].Send(1, 7, Contig{}, data, int64(len(data)), 0, ProtoEager); err != nil {
		t.Fatal(err)
	}
	// Wait for the unexpected message to be fully buffered at rank 1.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m, err := ws[1].Probe(0, 7, exactMask, false); err == nil && m != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("eager message never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	fns[0].Kill()
	waitFailed(t, ws[1], 0)
	buf := make([]byte, len(data))
	r, err := ws[1].Recv(0, 7, exactMask, Contig{}, buf, int64(len(buf)))
	if err != nil {
		t.Fatalf("recv of pre-death message refused: %v", err)
	}
	if err := waitErr(t, r); err != nil {
		t.Fatalf("pre-death message not delivered: %v", err)
	}
	for i := range data {
		if buf[i] != data[i] {
			t.Fatalf("byte %d corrupted: %d != %d", i, buf[i], data[i])
		}
	}
	// But the next receive — matching nothing — fails.
	if _, err := ws[1].Recv(0, 7, exactMask, Contig{}, buf, int64(len(buf))); !errors.Is(err, ErrProcFailed) {
		t.Fatalf("second recv from dead peer = %v, want ErrProcFailed", err)
	}
}

// TestWaitAllMidBatchFailure is the satellite-3 regression: when one
// request in a batch fails, WaitAll must dispose of the rest rather
// than wait blindly — the third receive here would otherwise block
// forever (its sender never sends, and there is no ReqTimeout).
func TestWaitAllMidBatchFailure(t *testing.T) {
	ws, fns := killWorld(t, 3, hbCfg())
	bufs := [3][]byte{make([]byte, 16), make([]byte, 16), make([]byte, 16)}

	r1, err := ws[0].Recv(1, 1, exactMask, Contig{}, bufs[0], 16)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ws[0].Recv(2, 2, exactMask, Contig{}, bufs[1], 16)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := ws[0].Recv(1, 3, exactMask, Contig{}, bufs[2], 16)
	if err != nil {
		t.Fatal(err)
	}
	// r1 completes, r2's peer dies, r3 never matches.
	if _, err := ws[1].Send(0, 1, Contig{}, pattern(16, 1), 16, 0, ProtoEager); err != nil {
		t.Fatal(err)
	}
	_ = waitErr(t, r1)
	fns[2].Kill()
	waitFailed(t, ws[0], 2)

	done := make(chan error, 1)
	go func() { done <- WaitAll(r1, r2, r3) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrProcFailed) {
			t.Fatalf("WaitAll = %v, want ErrProcFailed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("WaitAll hung on the batch tail after a mid-batch failure")
	}
	// The tail request must be resolved (canceled), not left pending.
	if done, _ := r3.Test(); !done {
		t.Fatal("WaitAll left the tail receive pending")
	}
}
