package ucp

// Observability glue: when Config.Obs is set, the worker registers its
// protocol counters and queue-depth gauges with the shared registry,
// observes latency/size histograms, and records per-message lifecycle
// events into the trace ring. When Config.Obs is nil (the default) the
// worker's obs pointer is nil and every instrumentation site reduces to
// one pointer check — the eager path stays allocation-free and its
// latency is pinned by BenchmarkAblationObs.

import (
	"fmt"
	"time"

	"mpicd/internal/obs"
)

// EvSend trace Arg values: the wire path the send took.
const (
	traceProtoEager int64 = iota
	traceProtoRndv
	traceProtoSelf
)

// workerObs holds the worker's resolved observability handles so the hot
// path never does a registry (map) lookup.
type workerObs struct {
	trace *obs.Ring
	rank  int32

	// Histograms (all named ucp.r<rank>.*):
	completeNS *obs.Histogram // msg_complete_ns: request post→complete latency
	packNS     *obs.Histogram // pack_ns: sender-side serialization per eager message
	unpackNS   *obs.Histogram // unpack_ns: receiver-side delivery, match→finish
	getNS      *obs.Histogram // get_rtt_ns: one fabric Get round trip
	sizeBytes  *obs.Histogram // msg_size_bytes: completed message sizes
}

// setupObs resolves the worker's metric handles and registers the
// WorkerStats counters and live queue depths under ucp.r<rank>.*.
func (w *Worker) setupObs(o *obs.Observer) {
	if o == nil || o.Registry == nil {
		return
	}
	rank := w.nic.Rank()
	p := func(name string) string { return fmt.Sprintf("ucp.r%d.%s", rank, name) }
	reg := o.Registry
	w.obs = &workerObs{
		trace:      o.Trace,
		rank:       int32(rank),
		completeNS: reg.Histogram(p("msg_complete_ns")),
		packNS:     reg.Histogram(p("pack_ns")),
		unpackNS:   reg.Histogram(p("unpack_ns")),
		getNS:      reg.Histogram(p("get_rtt_ns")),
		sizeBytes:  reg.Histogram(p("msg_size_bytes")),
	}
	// The cumulative protocol counters live in WorkerStats (they are
	// always counted — atomics are cheap); the registry exposes them as
	// gauges so one snapshot unifies both worlds.
	counters := []struct {
		name string
		fn   obs.Gauge
	}{
		{"eager_sends", w.stats.EagerSends.Load},
		{"rndv_sends", w.stats.RndvSends.Load},
		{"self_sends", w.stats.SelfSends.Load},
		{"eager_fragments", w.stats.EagerFragments.Load},
		{"unexpected_hits", w.stats.UnexpectedHits.Load},
		{"posted_hits", w.stats.PostedHits.Load},
		{"eager_bytes", w.stats.EagerBytes.Load},
		{"rndv_bytes", w.stats.RndvBytes.Load},
		{"self_bytes", w.stats.SelfBytes.Load},
		{"sequential_pulls", w.stats.SequentialPulls.Load},
		{"striped_pulls", w.stats.StripedPulls.Load},
		{"pull_stripe_segs", w.stats.PullStripeSegs.Load},
		{"retransmits", w.stats.Retransmits.Load},
		{"acks_sent", w.stats.AcksSent.Load},
		{"dup_frags", w.stats.DupFrags.Load},
		{"dup_rts", w.stats.DupRTS.Load},
		{"corrupt_drops", w.stats.CorruptDrops.Load},
		{"get_retries", w.stats.GetRetries.Load},
		{"stripe_fallbacks", w.stats.StripeFallbacks.Load},
		{"timeouts", w.stats.Timeouts.Load},
		{"aborts_reaped", w.stats.AbortsReaped.Load},
		{"peer_failures", w.stats.PeerFailures.Load},
	}
	for _, c := range counters {
		reg.GaugeFunc(p(c.name), c.fn)
	}
	depths := []struct {
		name string
		fn   obs.Gauge
	}{
		{"posted_depth", func() int64 { return int64(w.QueueDepths().Posted) }},
		{"unexpected_depth", func() int64 { return int64(w.QueueDepths().Unexpected) }},
		{"active_recvs", func() int64 { return int64(w.QueueDepths().ActiveRecvs) }},
		{"pending_sends", func() int64 { return int64(w.QueueDepths().PendingSends) }},
		{"rexmit_depth", func() int64 { return int64(w.QueueDepths().Rexmit) }},
	}
	for _, d := range depths {
		reg.GaugeFunc(p(d.name), d.fn)
	}
}

// ev records one lifecycle trace event. A disabled trace (nil obs or nil
// ring) costs two pointer checks and nothing else.
func (w *Worker) ev(kind obs.EventKind, peer int, id uint64, tag Tag, size, arg int64) {
	o := w.obs
	if o == nil || o.trace == nil {
		return
	}
	o.trace.Record(obs.Event{
		Nanos: time.Now().UnixNano(),
		Kind:  kind,
		Rank:  o.rank,
		Peer:  int32(peer),
		MsgID: id,
		Tag:   uint64(tag),
		Size:  size,
		Arg:   arg,
	})
}

// obsNow returns a start timestamp when observability is enabled and the
// zero time otherwise, so disabled mode never calls time.Now.
func (w *Worker) obsNow() time.Time {
	if w.obs == nil {
		return time.Time{}
	}
	return time.Now()
}

// QueueDepthsSnapshot reports the instantaneous matching-engine state.
type QueueDepthsSnapshot struct {
	Posted       int `json:"posted"`        // receives waiting for a message
	Unexpected   int `json:"unexpected"`    // messages waiting for a receive
	Claimed      int `json:"claimed"`       // mprobe-claimed messages not yet MRecv'd
	ActiveRecvs  int `json:"active_recvs"`  // matched eager receives mid-delivery
	PendingSends int `json:"pending_sends"` // rendezvous sends awaiting FIN
	PendingPulls int `json:"pending_pulls"` // rendezvous receives mid-pull
	Rexmit       int `json:"rexmit"`        // unacknowledged sends the janitor tracks
}

// QueueDepths samples the live queue depths under the worker lock.
func (w *Worker) QueueDepths() QueueDepthsSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	return QueueDepthsSnapshot{
		Posted:       w.table.lenPosted(),
		Unexpected:   w.table.lenUnexpected(),
		Claimed:      len(w.claimed),
		ActiveRecvs:  len(w.active),
		PendingSends: len(w.sends),
		PendingPulls: len(w.pulls),
		Rexmit:       len(w.rexmit),
	}
}

// StatsSnapshot is a plain-value copy of every worker counter plus the
// live queue depths, safe to encode, compare and diff. Protocol-class
// invariants the tests rely on:
//
//	EagerSends + RndvSends + SelfSends == messages initiated
//	UnexpectedHits + PostedHits        == messages matched
type StatsSnapshot struct {
	Rank int `json:"rank"`

	EagerSends     int64 `json:"eager_sends"`
	RndvSends      int64 `json:"rndv_sends"`
	SelfSends      int64 `json:"self_sends"`
	EagerFragments int64 `json:"eager_fragments"`
	UnexpectedHits int64 `json:"unexpected_hits"`
	PostedHits     int64 `json:"posted_hits"`

	EagerBytes int64 `json:"eager_bytes"`
	RndvBytes  int64 `json:"rndv_bytes"`
	SelfBytes  int64 `json:"self_bytes"`

	SequentialPulls int64 `json:"sequential_pulls"`
	StripedPulls    int64 `json:"striped_pulls"`
	PullStripeSegs  int64 `json:"pull_stripe_segs"`

	Retransmits     int64 `json:"retransmits"`
	AcksSent        int64 `json:"acks_sent"`
	DupFrags        int64 `json:"dup_frags"`
	DupRTS          int64 `json:"dup_rts"`
	CorruptDrops    int64 `json:"corrupt_drops"`
	GetRetries      int64 `json:"get_retries"`
	StripeFallbacks int64 `json:"stripe_fallbacks"`
	Timeouts        int64 `json:"timeouts"`
	AbortsReaped    int64 `json:"aborts_reaped"`
	PeerFailures    int64 `json:"peer_failures"`

	Depths QueueDepthsSnapshot `json:"depths"`
}

// StatsSnapshot copies every counter and the live queue depths. It works
// with or without Config.Obs — the protocol counters are always
// maintained.
func (w *Worker) StatsSnapshot() StatsSnapshot {
	s := &w.stats
	return StatsSnapshot{
		Rank:            w.nic.Rank(),
		EagerSends:      s.EagerSends.Load(),
		RndvSends:       s.RndvSends.Load(),
		SelfSends:       s.SelfSends.Load(),
		EagerFragments:  s.EagerFragments.Load(),
		UnexpectedHits:  s.UnexpectedHits.Load(),
		PostedHits:      s.PostedHits.Load(),
		EagerBytes:      s.EagerBytes.Load(),
		RndvBytes:       s.RndvBytes.Load(),
		SelfBytes:       s.SelfBytes.Load(),
		SequentialPulls: s.SequentialPulls.Load(),
		StripedPulls:    s.StripedPulls.Load(),
		PullStripeSegs:  s.PullStripeSegs.Load(),
		Retransmits:     s.Retransmits.Load(),
		AcksSent:        s.AcksSent.Load(),
		DupFrags:        s.DupFrags.Load(),
		DupRTS:          s.DupRTS.Load(),
		CorruptDrops:    s.CorruptDrops.Load(),
		GetRetries:      s.GetRetries.Load(),
		StripeFallbacks: s.StripeFallbacks.Load(),
		Timeouts:        s.Timeouts.Load(),
		AbortsReaped:    s.AbortsReaped.Load(),
		PeerFailures:    s.PeerFailures.Load(),
		Depths:          w.QueueDepths(),
	}
}

// MessagesInitiated sums the per-protocol send counters.
func (s StatsSnapshot) MessagesInitiated() int64 {
	return s.EagerSends + s.RndvSends + s.SelfSends
}

// MessagesMatched sums the two match-path counters.
func (s StatsSnapshot) MessagesMatched() int64 {
	return s.UnexpectedHits + s.PostedHits
}
