package ucp

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mpicd/internal/fabric"
	"mpicd/internal/obs"
)

// Worker is one rank's transport engine: it owns a NIC, a progress
// goroutine, and the two matching queues (posted receives and unexpected
// messages) every MPI implementation carries.
type Worker struct {
	nic fabric.NIC
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	table   matchTable          // posted receives + unexpected messages, sharded by peer
	active  map[msgKey]*recvOp  // matched receives still consuming fragments
	claimed map[msgKey]*unexMsg // mprobe-claimed messages still buffering
	sends   map[uint64]*sendOp  // rendezvous sends awaiting FIN
	pulls   map[msgKey]*recvOp  // rendezvous receives mid-pull (dup RTS suppression)
	closed  bool

	// Reliability state (see reliable.go), guarded by mu.
	rexmit        map[uint64]*rexmitEntry // unacknowledged sends by msg id
	completed     map[msgKey]doneRec      // recently finished wire messages
	completedFIFO []msgKey
	rng           *rand.Rand // retransmit jitter; guarded by mu

	// Outbound eager-ack queue (see ackPump in reliable.go), guarded by
	// ackMu. ackClosed stops the pump.
	ackMu      sync.Mutex
	ackCond    *sync.Cond
	ackQ       []ackItem
	ackClosed  bool
	ackDrained chan struct{} // closed by ackPump once the queue is flushed after ackClosed

	// Failure-notification state (see failure.go). dead is read lock-free
	// on the send/receive hot paths; the rest is guarded by mu.
	det        *fabric.Detector // nil unless Config.Heartbeat enables detection
	dead       []atomic.Bool    // per-peer declared-failed flags
	deadCount  atomic.Int64     // number of true entries in dead
	onPeerFail []func(rank int) // failure callbacks, invoked outside mu
	poison     []poisonRule     // standing receive-post rejections, guarded by mu

	quit    chan struct{} // stops the janitor
	nextMsg atomic.Uint64
	wg      sync.WaitGroup
	stats   WorkerStats
	obs     *workerObs // nil when Config.Obs is unset (see obs.go)
}

// WorkerStats counts protocol events; all fields are cumulative.
type WorkerStats struct {
	EagerSends     atomic.Int64 // messages sent through the eager path
	RndvSends      atomic.Int64 // messages sent through rendezvous
	SelfSends      atomic.Int64 // loopback messages
	EagerFragments atomic.Int64 // eager fragments put on the wire
	UnexpectedHits atomic.Int64 // receives that matched the unexpected queue
	PostedHits     atomic.Int64 // messages that matched a posted receive

	EagerBytes atomic.Int64 // payload bytes initiated through the eager path
	RndvBytes  atomic.Int64 // payload bytes initiated through rendezvous
	SelfBytes  atomic.Int64 // payload bytes initiated through loopback

	SequentialPulls atomic.Int64 // rendezvous pulls run as one sequential Get
	StripedPulls    atomic.Int64 // rendezvous pulls split into concurrent stripes
	PullStripeSegs  atomic.Int64 // total stripe segments issued by striped pulls

	Retransmits     atomic.Int64 // resend rounds issued by the janitor
	AcksSent        atomic.Int64 // eager acks sent (including resends)
	DupFrags        atomic.Int64 // duplicate eager fragments suppressed
	DupRTS          atomic.Int64 // duplicate RTS control messages suppressed
	CorruptDrops    atomic.Int64 // eager fragments that failed their checksum
	GetRetries      atomic.Int64 // rendezvous Get attempts beyond the first
	StripeFallbacks atomic.Int64 // striped pulls degraded to one sequential Get
	Timeouts        atomic.Int64 // requests failed with ErrTimeout
	AbortsReaped    atomic.Int64 // stale errored unexpected entries reaped
	PeerFailures    atomic.Int64 // peers declared dead on this worker
}

// Stats exposes the worker's protocol counters.
func (w *Worker) Stats() *WorkerStats { return &w.stats }

type msgKey struct {
	from int
	id   uint64
}

// sendOp is a rendezvous send awaiting its FIN.
type sendOp struct {
	req *Request
	src SendState
	key uint64
	dst int // destination rank, for failure notification
}

// unexMsg is an inbound message that arrived before a matching receive was
// posted (or a local self-send awaiting a match).
type unexMsg struct {
	from  int
	id    uint64
	tag   Tag
	total int64
	aux0  int64

	// Exactly one of these delivery modes applies.
	rndvKey   uint64 // rendezvous: remote memory key (valid if rndv)
	rndv      bool
	frags     []*fabric.Packet // eager: buffered fragments in arrival order
	buffered  int64
	selfSrc   SendState // self-send: local source
	selfReq   *Request  // self-send: the sender's request
	errored   error     // abort received before match
	erroredAt time.Time // when errored was set (janitor reaping)
	reliable  bool      // sender expects an ack (reliable eager)
	claimed   bool
	arriveSeq uint64 // global arrival stamp (see matchTable)
}

// recvOp is a matched receive consuming data. Its mutable fields are
// guarded by mu so that the goroutine that matched the message can drain
// buffered fragments while the progress goroutine routes live ones.
type recvOp struct {
	req   *Request
	from  int
	id    uint64
	tag   Tag
	total int64 // incoming message size
	aux0  int64

	wireEager bool      // eager message from a remote rank (ack/dedup applies)
	reliable  bool      // sender expects an ack on completion
	start     time.Time // match time, for the unpack_ns histogram (zero when obs is off)

	mu         sync.Mutex
	sink       RecvState // nil when sink construction failed
	received   int64
	discard    bool  // stop delivering; drain remaining fragments
	failure    error // first failure
	finished   bool
	sequential bool
	next       int64
	pending    map[int64]*fabric.Packet
	// seen dedups retransmitted fragments for non-sequential sinks:
	// offset → longest payload accepted there (a truncated fragment may
	// be superseded by its full retransmission).
	seen map[int64]int64
}

// NewWorker attaches a transport worker to a NIC and starts its progress
// goroutine. When Config.Heartbeat enables liveness detection the NIC is
// wrapped with a fabric.Detector whose death verdicts feed
// DeclarePeerFailed.
func NewWorker(nic fabric.NIC, cfg Config) *Worker {
	w := &Worker{
		nic:     nic,
		cfg:     cfg.withDefaults(),
		active:  make(map[msgKey]*recvOp),
		claimed: make(map[msgKey]*unexMsg),
		sends:   make(map[uint64]*sendOp),
		pulls:   make(map[msgKey]*recvOp),
		rexmit:  make(map[uint64]*rexmitEntry),
		dead:    make([]atomic.Bool, nic.Size()),
		quit:    make(chan struct{}),
	}
	if w.cfg.Reliable {
		w.completed = make(map[msgKey]doneRec, completedCap)
		w.rng = rand.New(rand.NewSource(int64(nic.Rank())<<32 | 0x5eed))
	}
	w.nextMsg.Store(w.cfg.MsgIDBase)
	w.cond = sync.NewCond(&w.mu)
	w.ackCond = sync.NewCond(&w.ackMu)
	w.ackDrained = make(chan struct{})
	w.wg.Add(1)
	go w.ackPump()
	w.setupObs(w.cfg.Obs)
	if hb := w.cfg.Heartbeat; hb.Period > 0 {
		if hb.Obs == nil && w.cfg.Obs != nil {
			hb.Obs = w.cfg.Obs.Registry
		}
		w.det = fabric.NewDetector(nic, hb)
		w.det.OnDead(w.DeclarePeerFailed)
		w.nic = w.det
	} else if h, ok := nic.(interface{ SetPeerDownHook(func(int, bool)) }); ok {
		// No detector, but the provider can still report hard link-level
		// death evidence (a refused redial to a peer that was connected:
		// its process is gone). Feed it straight into failure
		// notification so cross-process death fails fast even without
		// heartbeats. Soft evidence needs the detector's state machine to
		// mean anything; ignore it here.
		h.SetPeerDownHook(func(rank int, hard bool) {
			if hard {
				w.DeclarePeerFailed(rank)
			}
		})
	}
	w.wg.Add(1)
	go w.loop()
	w.startJanitor()
	if w.det != nil {
		w.det.Start()
	}
	return w
}

// Detector exposes the worker's liveness detector (nil when heartbeats
// are disabled).
func (w *Worker) Detector() *fabric.Detector { return w.det }

// Rank returns the worker's fabric rank.
func (w *Worker) Rank() int { return w.nic.Rank() }

// Size returns the number of ranks on the fabric.
func (w *Worker) Size() int { return w.nic.Size() }

// Close shuts the worker down. In-flight operations complete with errors.
func (w *Worker) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	posted := w.table.takeAllPosted()
	w.cond.Broadcast()
	w.mu.Unlock()
	close(w.quit)
	w.ackMu.Lock()
	w.ackClosed = true
	w.ackMu.Unlock()
	w.ackCond.Broadcast()
	for _, r := range posted {
		r.complete(-1, 0, 0, 0, ErrWorkerClosed)
	}
	// Flush queued eager acks before tearing down the NIC. The reliable
	// protocol's exit story — a completed send is an acked send, so
	// finish-barrier-then-exit is safe — holds only if this side's acks
	// actually leave before the wire goes away. The ack pump decouples
	// acks from the progress loop, so at close time the queue can still
	// hold the ack for the very message (a barrier release, say) that
	// let this rank finish; dropping it strands the sender retransmitting
	// into a closed endpoint for its whole timeout budget. Bounded wait:
	// if a peer has genuinely wedged the pump, nic.Close below unblocks
	// it and the remaining acks are lost — that peer is failing anyway.
	select {
	case <-w.ackDrained:
	case <-time.After(3 * time.Second):
	}
	w.nic.Close()
	w.wg.Wait()
}

const (
	kindAbort    fabric.Kind = 10 // sender-side pack failure notification
	kindEagerAck fabric.Kind = 11 // reliable eager completion ack (status in Aux0)
)

// Send starts a tagged send of (buf, count) with datatype dt to rank dst.
// aux is an opaque value delivered to the receiver alongside the message
// (the point-to-point layer uses it for the custom-datatype packed-part
// length). proto selects or forces the wire protocol.
func (w *Worker) Send(dst int, tag Tag, dt Datatype, buf any, count int64, aux int64, proto Proto) (*Request, error) {
	if dst < 0 || dst >= w.Size() {
		return nil, fmt.Errorf("ucp: destination rank %d out of range [0,%d)", dst, w.Size())
	}
	if w.dead[dst].Load() {
		return nil, procFailedErr(dst)
	}
	src, err := dt.SendState(buf, count)
	if err != nil {
		return nil, err
	}
	req := newRequest(w)
	req.isSend = true
	total := src.Size()
	id := w.nextMsg.Add(1)
	req.msgID = id
	req.obsStart = w.obsNow()
	if ap, ok := src.(AuxProvider); ok {
		aux = ap.Aux()
	}

	if dst == w.Rank() {
		w.stats.SelfSends.Add(1)
		w.stats.SelfBytes.Add(total)
		w.ev(obs.EvSend, dst, id, tag, total, traceProtoSelf)
		w.selfSend(req, src, Tag(tag), total, aux, id)
		return req, nil
	}

	useRndv := false
	switch proto {
	case ProtoRndv:
		useRndv = true
	case ProtoEager:
	default:
		if pc, ok := src.(ProtoChooser); ok {
			proto = pc.ChooseProto(total, w.cfg.RndvThresh, w.cfg.IovRndvMin)
		}
		switch {
		case proto == ProtoRndv:
			useRndv = true
		case proto == ProtoEager:
		case total > w.cfg.RndvThresh:
			useRndv = true
		default:
			if rc, ok := fabric.Source(src).(fabric.RegionCounter); ok && rc.NumRegions() > 1 && total >= w.cfg.IovRndvMin {
				// Region lists only reach zero-copy through the pull path.
				useRndv = true
			}
		}
	}

	if useRndv {
		w.stats.RndvSends.Add(1)
		w.stats.RndvBytes.Add(total)
		w.ev(obs.EvSend, dst, id, tag, total, traceProtoRndv)
		key := w.nic.Register(src)
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			w.nic.Deregister(key)
			src.Finish()
			return nil, ErrWorkerClosed
		}
		w.sends[id] = &sendOp{req: req, src: src, key: key, dst: dst}
		w.mu.Unlock()
		hdr := fabric.Header{Kind: kindRTS, Tag: uint64(tag), MsgID: id, Total: total, Aux0: aux, Aux1: int64(key)}
		if w.cfg.Reliable {
			// The janitor retransmits the RTS until the FIN arrives, so
			// even a failed first send (link down) just waits its turn.
			if err := w.trackRexmit(&rexmitEntry{dst: dst, tag: tag, id: id, total: total, aux: aux, req: req, hdr: hdr}); err != nil {
				w.mu.Lock()
				delete(w.sends, id)
				w.mu.Unlock()
				w.nic.Deregister(key)
				src.Finish()
				return nil, err
			}
			_ = w.nic.Send(dst, hdr)
			return req, nil
		}
		if err := w.nic.Send(dst, hdr); err != nil {
			w.mu.Lock()
			delete(w.sends, id)
			w.mu.Unlock()
			w.nic.Deregister(key)
			src.Finish()
			return nil, err
		}
		return req, nil
	}

	// Eager: stream fragments and complete locally — or, when Reliable,
	// retain the packed message and complete on the receiver's ack.
	w.stats.EagerSends.Add(1)
	w.stats.EagerBytes.Add(total)
	w.ev(obs.EvSend, dst, id, tag, total, traceProtoEager)
	packStart := w.obsNow()
	if w.cfg.Reliable {
		err = w.eagerSendReliable(dst, tag, id, total, aux, src, req)
	} else {
		err = w.eagerSend(dst, tag, id, total, aux, src)
	}
	if w.obs != nil {
		// The eager fragment loop interleaves pack (source reads /
		// staging copies) with wire submission; the combined figure is
		// the sender-side serialization cost per message.
		w.obs.packNS.Observe(time.Since(packStart).Nanoseconds())
	}
	if ferr := src.Finish(); err == nil {
		err = ferr
	}
	if err != nil {
		// Notify the receiver so a matched receive does not hang.
		_ = w.nic.Send(dst, fabric.Header{Kind: kindAbort, Tag: uint64(tag), MsgID: id, Total: total, Aux0: aux}, []byte(err.Error()))
		req.complete(dst, tag, 0, aux, err)
		return req, err
	}
	if !w.cfg.Reliable {
		req.complete(dst, tag, total, aux, nil)
	}
	return req, nil
}

func (w *Worker) eagerSend(dst int, tag Tag, id uint64, total, aux int64, src SendState) error {
	if total == 0 {
		hdr := fabric.Header{Kind: kindEager, Tag: uint64(tag), MsgID: id, Offset: 0, Total: 0, Aux0: aux}
		return w.nic.Send(dst, hdr)
	}
	off := int64(0)
	frag := int64(w.cfg.FragSize)
	// Checksummed fragments must be staged so the CRC covers exactly the
	// bytes on the wire; this trades the zero-copy SendFrom path for
	// integrity (the checksum-ablation benchmark quantifies the cost).
	var staging []byte
	if w.cfg.Checksum {
		staging = make([]byte, frag)
	}
	for off < total {
		n := frag
		if rem := total - off; n > rem {
			n = rem
		}
		hdr := fabric.Header{Kind: kindEager, Tag: uint64(tag), MsgID: id, Offset: off, Total: total, Aux0: aux}
		if off > 0 && off+n < total {
			hdr.Flags = fabric.FlagUnordered
		}
		var sent int64
		var err error
		if staging != nil {
			var got int
			got, err = src.ReadAt(staging[:n], off)
			if err != nil && err != io.EOF {
				return err
			}
			if got == 0 {
				return fabric.ErrShortTransfer
			}
			hdr.Flags |= flagCRC
			hdr.Aux1 = int64(fabric.CRC32(staging[:got]))
			sent = int64(got)
			err = w.nic.Send(dst, hdr, staging[:got])
		} else {
			sent, err = w.nic.SendFrom(dst, hdr, src, off, n)
		}
		if err != nil {
			return err
		}
		w.stats.EagerFragments.Add(1)
		off += sent
	}
	return nil
}

// selfSend queues a local message for matching without touching the wire.
func (w *Worker) selfSend(req *Request, src SendState, tag Tag, total, aux int64, id uint64) {
	m := &unexMsg{from: w.Rank(), id: id, tag: tag, total: total, aux0: aux, selfSrc: src, selfReq: req}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		src.Finish()
		req.complete(-1, 0, 0, 0, ErrWorkerClosed)
		return
	}
	if r := w.matchPosted(m); r != nil {
		w.ev(obs.EvMatch, m.from, m.id, m.tag, m.total, 1)
		w.startRecvLocked(r, m) // releases w.mu
		return
	}
	w.table.addUnexpected(m)
	w.cond.Broadcast()
	w.mu.Unlock()
}

// Recv posts a tagged receive. from restricts the source rank (-1 accepts
// any). mask selects which tag bits participate in matching (use ^Tag(0)
// for exact matching).
func (w *Worker) Recv(from int, tag, mask Tag, dt Datatype, buf any, count int64) (*Request, error) {
	req := newRequest(w)
	req.tag = tag
	req.mask = mask
	req.from = from
	req.dt = dt
	req.buf = buf
	req.count = count
	if w.cfg.ReqTimeout > 0 {
		req.deadline = time.Now().Add(w.cfg.ReqTimeout)
	}
	req.obsStart = w.obsNow()
	w.ev(obs.EvPost, from, 0, tag, 0, 0)

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, ErrWorkerClosed
	}
	// Standing poisons (PoisonWhere) outrank matching: a receive on a
	// poisoned context must fail even if a stray message could satisfy it.
	for _, p := range w.poison {
		if p.pred(from, tag, mask) {
			w.mu.Unlock()
			return nil, p.err
		}
	}
	if m := w.matchUnexpected(req); m != nil {
		w.stats.UnexpectedHits.Add(1)
		w.ev(obs.EvMatch, m.from, m.id, m.tag, m.total, 0)
		w.startRecvLocked(req, m) // releases w.mu
		return req, nil
	}
	// No buffered message can satisfy this receive; if its only possible
	// senders are dead it can never match — fail fast instead of posting
	// a receive that would hang (messages already delivered by a peer
	// before its death were matched above, preserving ULFM semantics).
	if err := w.deadSourceErr(from); err != nil {
		w.mu.Unlock()
		return nil, err
	}
	w.table.addPosted(req)
	w.mu.Unlock()
	return req, nil
}

// CancelRecv removes a posted receive that has not matched yet. It reports
// whether the cancellation won the race with an incoming message.
func (w *Worker) CancelRecv(req *Request) bool {
	w.mu.Lock()
	if w.table.removePosted(req) {
		w.mu.Unlock()
		req.complete(-1, 0, 0, 0, ErrCanceled)
		return true
	}
	w.mu.Unlock()
	return false
}

// matches reports whether message metadata satisfies a posted receive.
func matches(req *Request, from int, tag Tag) bool {
	if req.from >= 0 && req.from != from {
		return false
	}
	return (tag & req.mask) == (req.tag & req.mask)
}

// matchPosted finds and removes the earliest posted receive matching m.
// Caller holds w.mu.
func (w *Worker) matchPosted(m *unexMsg) *Request {
	return w.table.matchPosted(m)
}

// matchUnexpected finds and removes the earliest unexpected message
// matching req. Caller holds w.mu.
func (w *Worker) matchUnexpected(req *Request) *unexMsg {
	return w.table.matchUnexpected(req)
}

// startRecvLocked binds a matched (request, message) pair and begins
// delivery. The caller must hold w.mu; it is released on return. For
// partially-arrived eager messages the new receive op is registered in the
// active table before w.mu drops, so live fragments routed by the progress
// goroutine serialize with the buffered-fragment drain through op.mu.
func (w *Worker) startRecvLocked(req *Request, m *unexMsg) {
	if m.errored != nil {
		w.mu.Unlock()
		w.releaseFrags(m)
		req.complete(m.from, m.tag, 0, m.aux0, m.errored)
		return
	}
	op := &recvOp{
		req:   req,
		from:  m.from,
		id:    m.id,
		tag:   m.tag,
		total: m.total,
		aux0:  m.aux0,
		start: w.obsNow(),
	}
	req.msgID = m.id
	key := msgKey{m.from, m.id}
	eager := m.selfSrc == nil && !m.rndv
	op.wireEager = eager
	op.reliable = m.reliable
	op.mu.Lock()
	if eager && m.total > 0 {
		w.active[key] = op
	}
	if m.rndv {
		w.pulls[key] = op
	}
	w.mu.Unlock()

	// Build the sink outside w.mu: datatype state construction may run
	// user callbacks.
	sink, err := req.dt.RecvState(req.buf, req.count, RecvInfo{From: m.from, Tag: m.tag, Total: m.total, Aux: m.aux0})
	if err != nil {
		op.discard = true
		op.failure = err
	} else {
		op.sink = sink
		if ss, ok := fabric.Sink(sink).(fabric.SequentialSink); ok && ss.Sequential() {
			op.sequential = true
			op.pending = make(map[int64]*fabric.Packet)
		}
		if m.total > sink.Size() {
			op.discard = true
			op.failure = fmt.Errorf("%w: %d bytes incoming, %d byte buffer", ErrTruncated, m.total, sink.Size())
		}
	}
	if w.cfg.Reliable && eager && !op.sequential {
		op.seen = make(map[int64]int64)
	}

	switch {
	case m.selfSrc != nil:
		op.mu.Unlock()
		w.wg.Add(1)
		go w.runSelf(op, m)
	case m.rndv:
		op.mu.Unlock()
		w.wg.Add(1)
		go w.runPull(op, m.rndvKey)
	default:
		done := false
		for _, pkt := range m.frags {
			if w.feedLocked(op, pkt) {
				done = true
			}
		}
		m.frags = nil
		if m.total == 0 && !op.finished {
			op.finished = true
			done = true
		}
		op.mu.Unlock()
		if done {
			w.finishRecv(op)
			w.mu.Lock()
			delete(w.active, key)
			w.mu.Unlock()
		}
	}
}

// runSelf completes a matched self-send by local transfer.
func (w *Worker) runSelf(op *recvOp, m *unexMsg) {
	defer w.wg.Done()
	err := op.failure
	n := op.total
	if err == nil && n > 0 {
		err = fabric.Transfer(m.selfSrc, 0, op.sink, 0, n, nil)
	}
	if err != nil {
		n = 0
	}
	if op.sink != nil {
		if ferr := op.sink.Finish(); err == nil {
			err = ferr
		}
	}
	op.req.complete(op.from, op.tag, n, op.aux0, err)
	w.finishSelf(m, err)
}

// finishSelf completes the send side of a self message, if any.
func (w *Worker) finishSelf(m *unexMsg, err error) {
	if m.selfSrc == nil {
		return
	}
	if ferr := m.selfSrc.Finish(); err == nil {
		err = ferr
	}
	m.selfReq.complete(w.Rank(), m.tag, m.total, m.aux0, err)
	m.selfSrc = nil
}

// runPull executes the rendezvous receive: pull (striped when the
// datatype contract allows), FIN after every byte landed, complete.
func (w *Worker) runPull(op *recvOp, key uint64) {
	defer w.wg.Done()
	err := op.failure
	n := op.total
	if err == nil && n > 0 {
		err = w.pullBody(op, key, n)
	}
	status := int64(0)
	if err != nil {
		status = 1
		n = 0
	}
	mk := msgKey{op.from, op.id}
	// Record completion before dropping the pull entry: handleRTS checks
	// both under one lock, so a retransmitted RTS always finds at least
	// one of them and never redelivers.
	w.recordCompleted(mk, kindFIN, status)
	w.mu.Lock()
	delete(w.pulls, mk)
	w.mu.Unlock()
	_ = w.nic.Send(op.from, fabric.Header{Kind: kindFIN, MsgID: op.id, Aux0: status})
	if op.sink != nil {
		if ferr := op.sink.Finish(); err == nil {
			err = ferr
		}
	}
	op.req.complete(op.from, op.tag, n, op.aux0, err)
}

// pullBody moves the rendezvous message body. Transfers of at least
// PullStripeThresh bytes whose sink tolerates out-of-order delivery are
// split into PullStripes byte ranges pulled concurrently, putting
// multiple cores on the sender-side pack (ReadAt) and receiver-side
// unpack (WriteAt) of one message. Sequential sinks — the inorder
// contract — and small transfers take the single-Get path unchanged.
//
// The stripe fan-out relies on both endpoints being safe for concurrent
// access at disjoint offsets: sources/sinks built from memory windows
// (Bytes, Iov, Concat over them) index immutable layout tables, and
// non-inorder pack/unpack callbacks accept arbitrary-offset fragments by
// contract, so disjoint stripes never share mutable state.
func (w *Worker) pullBody(op *recvOp, key uint64, n int64) error {
	stripes := int64(w.cfg.PullStripes)
	if op.sequential || stripes <= 1 || n < w.cfg.PullStripeThresh {
		w.stats.SequentialPulls.Add(1)
		return w.getRetry(op.from, key, 0, op.sink, 0, n, op.sequential)
	}
	if stripes > n {
		stripes = n
	}
	chunk := (n + stripes - 1) / stripes
	w.stats.StripedPulls.Add(1)
	w.ev(obs.EvStripes, op.from, op.id, op.tag, n, (n+chunk-1)/chunk)
	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		first error
	)
	for off := int64(0); off < n; off += chunk {
		span := chunk
		if rem := n - off; span > rem {
			span = rem
		}
		w.stats.PullStripeSegs.Add(1)
		wg.Add(1)
		go func(off, span int64) {
			defer wg.Done()
			if err := w.getRetry(op.from, key, off, op.sink, off, span, false); err != nil {
				errMu.Lock()
				if first == nil {
					first = err
				}
				errMu.Unlock()
			}
		}(off, span)
	}
	// Join every stripe before returning: the FIN that releases the
	// sender's registration must not race an in-flight stripe.
	wg.Wait()
	if first == nil {
		return nil
	}
	if errors.Is(first, fabric.ErrBadKey) || errors.Is(first, fabric.ErrClosed) {
		return first
	}
	// Graceful degradation: a stripe exhausted its retries, so re-pull
	// the whole range as one sequential Get. Non-sequential sinks accept
	// rewrites at already-covered offsets, so restarting from zero is
	// contract-safe.
	w.stats.StripeFallbacks.Add(1)
	return w.getRetry(op.from, key, 0, op.sink, 0, n, false)
}

// feedLocked delivers one eager fragment. Caller holds op.mu. It returns
// true exactly once, for the call that completes the message.
func (w *Worker) feedLocked(op *recvOp, pkt *fabric.Packet) bool {
	if op.finished {
		pkt.Release()
		return false
	}
	write := func(p *fabric.Packet) {
		got := int64(len(p.Payload))
		if op.seen != nil {
			prev, dup := op.seen[p.Hdr.Offset]
			if dup && prev >= got {
				// Full duplicate of an accepted fragment.
				w.stats.DupFrags.Add(1)
				p.Release()
				return
			}
			op.seen[p.Hdr.Offset] = got
			if dup {
				// A truncated copy was accepted earlier; this complete
				// retransmission supersedes it — count only the delta.
				got -= prev
			}
		}
		if !op.discard {
			if _, err := op.sink.WriteAt(p.Payload, p.Hdr.Offset); err != nil {
				op.discard = true
				op.failure = err
			}
		}
		p.Release()
		op.received += got
	}
	if !op.sequential || op.discard {
		write(pkt)
	} else {
		if pkt.Hdr.Offset < op.next {
			// Sequential sinks already consumed this range; duplicate.
			w.stats.DupFrags.Add(1)
			pkt.Release()
			return false
		}
		if pkt.Hdr.Offset != op.next {
			if held, ok := op.pending[pkt.Hdr.Offset]; ok {
				// Keep whichever copy carries more bytes.
				if len(held.Payload) >= len(pkt.Payload) {
					w.stats.DupFrags.Add(1)
					pkt.Release()
					return false
				}
				held.Release()
			}
			op.pending[pkt.Hdr.Offset] = pkt
			return false
		}
		op.next = pkt.Hdr.Offset + int64(len(pkt.Payload))
		write(pkt)
		for {
			p, ok := op.pending[op.next]
			if !ok {
				break
			}
			delete(op.pending, op.next)
			op.next = p.Hdr.Offset + int64(len(p.Payload))
			write(p)
		}
	}
	if op.received >= op.total && !op.finished {
		op.finished = true
		return true
	}
	return false
}

// finishRecv completes an eager receive after its final fragment (or an
// abort). Caller must not hold op.mu or w.mu.
func (w *Worker) finishRecv(op *recvOp) {
	err := op.failure
	n := op.received
	if err != nil {
		n = 0
	}
	if op.sink != nil {
		if ferr := op.sink.Finish(); err == nil {
			err = ferr
		}
	}
	if w.obs != nil && !op.start.IsZero() {
		// Receiver-side delivery: match → every fragment consumed and the
		// sink finished (buffered drain + live routing + unpack callbacks).
		w.obs.unpackNS.Observe(time.Since(op.start).Nanoseconds())
	}
	if op.wireEager {
		status := int64(0)
		if err != nil {
			status = 1
		}
		// Record before the ack leaves so a duplicate fragment racing the
		// ack finds the completion record.
		w.recordCompleted(msgKey{op.from, op.id}, kindEagerAck, status)
		if op.reliable {
			w.sendAck(op.from, op.id, status)
		}
	}
	op.req.complete(op.from, op.tag, n, op.aux0, err)
}

// releaseFrags returns any buffered wire buffers of an unmatched message.
func (w *Worker) releaseFrags(m *unexMsg) {
	for _, pkt := range m.frags {
		pkt.Release()
	}
	m.frags = nil
}

// loop is the progress goroutine: it turns wire packets into matching and
// delivery events.
func (w *Worker) loop() {
	defer w.wg.Done()
	for {
		pkt, ok := w.nic.Recv()
		if !ok {
			w.drainOnClose()
			return
		}
		w.handle(pkt)
	}
}

// drainOnClose fails everything still in flight when the NIC closes.
func (w *Worker) drainOnClose() {
	w.mu.Lock()
	active := w.active
	w.active = make(map[msgKey]*recvOp)
	sends := w.sends
	w.sends = make(map[uint64]*sendOp)
	rexmit := w.rexmit
	w.rexmit = make(map[uint64]*rexmitEntry)
	unex := w.table.takeAllUnexpected()
	w.cond.Broadcast()
	w.mu.Unlock()
	for _, op := range active {
		op.mu.Lock()
		already := op.finished
		op.finished = true
		if op.failure == nil {
			op.failure = ErrWorkerClosed
		}
		op.mu.Unlock()
		if !already {
			w.finishRecv(op)
		}
	}
	for _, s := range sends {
		w.nic.Deregister(s.key)
		s.src.Finish()
		s.req.complete(-1, 0, 0, 0, ErrWorkerClosed)
	}
	for _, e := range rexmit {
		// Rendezvous entries share a request with the sends map above
		// (complete is idempotent); reliable eager entries are only here.
		e.req.complete(-1, 0, 0, 0, ErrWorkerClosed)
	}
	for _, m := range unex {
		w.releaseFrags(m)
		w.finishSelf(m, ErrWorkerClosed)
	}
}

func (w *Worker) handle(pkt *fabric.Packet) {
	switch pkt.Hdr.Kind {
	case kindEager:
		w.handleEager(pkt)
	case kindRTS:
		w.handleRTS(pkt)
	case kindFIN:
		w.handleFIN(pkt)
	case kindAbort:
		w.handleAbort(pkt)
	case kindEagerAck:
		w.handleEagerAck(pkt)
	default:
		pkt.Release()
	}
}

// bufferAckLocked reports whether a reliable eager message is fully
// buffered and should be acknowledged. An eager send is complete once
// the data is safely held at the receiver — MPI's local-completion
// contract — so the ack must NOT wait for the application to post a
// matching receive: a receiver busy elsewhere (a recovery protocol, a
// skewed collective schedule) would otherwise stall the sender into
// retransmission exhaustion and a spurious ErrTimeout. The check is
// idempotent on purpose: a retransmitted fragment arriving because the
// ack was lost triggers a fresh ack (duplicate acks find no rexmit
// entry and are ignored). Caller holds w.mu and sends the ack after
// releasing it.
func (w *Worker) bufferAckLocked(m *unexMsg) bool {
	return m.reliable && !m.rndv && m.selfSrc == nil &&
		m.errored == nil && m.buffered >= m.total
}

func (w *Worker) handleEager(pkt *fabric.Packet) {
	if !w.verifyFragCRC(pkt) {
		return // consumed: dropped for retransmit, or routed as a failure
	}
	key := msgKey{pkt.From, pkt.Hdr.MsgID}
	reliable := pkt.Hdr.Flags&flagReliable != 0
	w.mu.Lock()
	// A fragment of an already-completed message is a retransmission that
	// crossed our ack on the wire: answer with a fresh ack, do not
	// redeliver. Checked in the same critical section as the active table
	// — completion records the message before removing it from active, so
	// a duplicate always hits one of the two.
	if w.cfg.Reliable {
		if rec, ok := w.completed[key]; ok {
			w.mu.Unlock()
			w.stats.DupFrags.Add(1)
			pkt.Release()
			if reliable && rec.kind == kindEagerAck {
				w.sendAck(key.from, key.id, rec.status)
			}
			return
		}
	}
	if op, ok := w.active[key]; ok {
		w.mu.Unlock()
		op.mu.Lock()
		done := w.feedLocked(op, pkt)
		op.mu.Unlock()
		if done {
			// finishRecv records the completion before the entry leaves
			// the active table; late duplicates meanwhile bounce off the
			// op's finished flag.
			w.finishRecv(op)
			w.mu.Lock()
			delete(w.active, key)
			w.mu.Unlock()
		}
		return
	}
	if m, ok := w.claimed[key]; ok {
		m.reliable = m.reliable || reliable
		m.buffered += w.addFragDedup(m, pkt)
		ack := w.bufferAckLocked(m)
		w.cond.Broadcast()
		w.mu.Unlock()
		if ack {
			w.sendAck(key.from, key.id, 0)
		}
		return
	}
	if pkt.Hdr.Offset == 0 {
		// First fragment: try to match — unless a retransmitted first
		// fragment raced ahead and the message is already buffered.
		if w.cfg.Reliable {
			if m := w.findBuffered(key); m != nil {
				m.reliable = m.reliable || reliable
				m.buffered += w.addFragDedup(m, pkt)
				ack := w.bufferAckLocked(m)
				w.cond.Broadcast()
				w.mu.Unlock()
				if ack {
					w.sendAck(key.from, key.id, 0)
				}
				return
			}
		}
		m := &unexMsg{
			from:     pkt.From,
			id:       pkt.Hdr.MsgID,
			tag:      Tag(pkt.Hdr.Tag),
			total:    pkt.Hdr.Total,
			aux0:     pkt.Hdr.Aux0,
			reliable: reliable,
		}
		if pkt.Hdr.Total > 0 {
			m.frags = []*fabric.Packet{pkt}
			m.buffered = int64(len(pkt.Payload))
		} else {
			pkt.Release()
		}
		if req := w.matchPosted(m); req != nil {
			w.stats.PostedHits.Add(1)
			w.ev(obs.EvMatch, m.from, m.id, m.tag, m.total, 1)
			w.startRecvLocked(req, m) // releases w.mu
			return
		}
		w.table.addUnexpected(m)
		ack := w.bufferAckLocked(m)
		w.cond.Broadcast()
		w.mu.Unlock()
		if ack {
			w.sendAck(key.from, key.id, 0)
		}
		return
	}
	// Later fragment of an unmatched message: buffer onto its entry.
	if m := w.table.findUnexpected(key); m != nil {
		m.reliable = m.reliable || reliable
		m.buffered += w.addFragDedup(m, pkt)
		ack := w.bufferAckLocked(m)
		w.cond.Broadcast()
		w.mu.Unlock()
		if ack {
			w.sendAck(key.from, key.id, 0)
		}
		return
	}
	if w.cfg.Reliable && reliable {
		// Out-of-order arrival: a later fragment beat the first one here.
		// Hold it on a fresh entry so nothing is lost; matching still
		// waits for the offset-0 fragment's metadata (same tag either way).
		m := &unexMsg{
			from:     pkt.From,
			id:       pkt.Hdr.MsgID,
			tag:      Tag(pkt.Hdr.Tag),
			total:    pkt.Hdr.Total,
			aux0:     pkt.Hdr.Aux0,
			reliable: true,
			frags:    []*fabric.Packet{pkt},
			buffered: int64(len(pkt.Payload)),
		}
		if req := w.matchPosted(m); req != nil {
			w.stats.PostedHits.Add(1)
			w.ev(obs.EvMatch, m.from, m.id, m.tag, m.total, 1)
			w.startRecvLocked(req, m) // releases w.mu
			return
		}
		w.table.addUnexpected(m)
		w.cond.Broadcast()
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()
	// No home for this fragment (message was dropped); discard.
	pkt.Release()
}

func (w *Worker) handleRTS(pkt *fabric.Packet) {
	key := msgKey{pkt.From, pkt.Hdr.MsgID}
	if w.cfg.Reliable {
		// Retransmitted RTS: if the pull already finished, the FIN was
		// lost — resend it. If the pull is running or the message is
		// still buffered awaiting a match, the original RTS is in hand.
		// One critical section pairs with runPull's record-then-delete
		// ordering so a duplicate always hits at least one check.
		w.mu.Lock()
		rec, done := w.completed[key]
		_, running := w.pulls[key]
		buffered := w.findBuffered(key) != nil
		w.mu.Unlock()
		if done && rec.kind == kindFIN {
			w.stats.DupRTS.Add(1)
			pkt.Release()
			_ = w.nic.Send(key.from, fabric.Header{Kind: kindFIN, MsgID: key.id, Aux0: rec.status})
			return
		}
		if running || buffered {
			w.stats.DupRTS.Add(1)
			pkt.Release()
			return
		}
	}
	m := &unexMsg{
		from:    pkt.From,
		id:      pkt.Hdr.MsgID,
		tag:     Tag(pkt.Hdr.Tag),
		total:   pkt.Hdr.Total,
		aux0:    pkt.Hdr.Aux0,
		rndv:    true,
		rndvKey: uint64(pkt.Hdr.Aux1),
	}
	pkt.Release()
	w.mu.Lock()
	if req := w.matchPosted(m); req != nil {
		w.stats.PostedHits.Add(1)
		w.ev(obs.EvMatch, m.from, m.id, m.tag, m.total, 1)
		w.startRecvLocked(req, m) // releases w.mu
		return
	}
	w.table.addUnexpected(m)
	w.cond.Broadcast()
	w.mu.Unlock()
}

func (w *Worker) handleFIN(pkt *fabric.Packet) {
	id := pkt.Hdr.MsgID
	status := pkt.Hdr.Aux0
	pkt.Release()
	w.mu.Lock()
	s, ok := w.sends[id]
	if ok {
		delete(w.sends, id)
	}
	delete(w.rexmit, id) // stop retransmitting the RTS
	w.mu.Unlock()
	if !ok {
		return
	}
	w.nic.Deregister(s.key)
	total := s.src.Size()
	err := s.src.Finish()
	if status != 0 && err == nil {
		err = errors.New("ucp: remote receive failed during rendezvous pull")
	}
	s.req.complete(-1, 0, total, 0, err)
}

func (w *Worker) handleAbort(pkt *fabric.Packet) {
	key := msgKey{pkt.From, pkt.Hdr.MsgID}
	err := fmt.Errorf("ucp: sender aborted: %s", string(pkt.Payload))
	w.mu.Lock()
	if op, ok := w.active[key]; ok {
		delete(w.active, key)
		w.mu.Unlock()
		pkt.Release()
		op.mu.Lock()
		already := op.finished
		op.finished = true
		op.discard = true
		if op.failure == nil {
			op.failure = err
		}
		op.mu.Unlock()
		if !already {
			w.finishRecv(op)
		}
		return
	}
	if m, ok := w.claimed[key]; ok {
		m.errored = err
		m.erroredAt = time.Now()
		w.releaseFrags(m)
		w.cond.Broadcast()
		w.mu.Unlock()
		pkt.Release()
		return
	}
	if m := w.table.findUnexpected(key); m != nil {
		m.errored = err
		m.erroredAt = time.Now()
		w.releaseFrags(m)
		w.cond.Broadcast()
		w.mu.Unlock()
		pkt.Release()
		return
	}
	// Abort for a message whose first fragment never arrived (or was
	// already consumed): record it as an errored unexpected message so a
	// future receive fails instead of hanging. The janitor reaps the
	// entry after Config.AbortLinger if no receive ever claims it.
	m := &unexMsg{from: pkt.From, id: pkt.Hdr.MsgID, tag: Tag(pkt.Hdr.Tag), total: pkt.Hdr.Total, aux0: pkt.Hdr.Aux0, errored: err, erroredAt: time.Now()}
	w.table.addUnexpected(m)
	w.cond.Broadcast()
	w.mu.Unlock()
	pkt.Release()
}
