package ucp

// Sharded tag-match table. The worker's two matching queues — posted
// receives and unexpected messages — were flat slices, so every match,
// probe and failure sweep scanned entries for all peers. At a few ranks
// that is fine; at 128–256 ranks a busy worker's unexpected queue mixes
// traffic from every peer and each incoming fragment pays a scan
// proportional to the whole backlog. The table shards both queues by
// peer rank so the common case — a receive naming its source, a fragment
// looking up its message — touches only the one shard that can hold a
// match.
//
// MPI ordering semantics survive sharding through sequence stamps:
//
//   - posted receives carry postSeq; a message matches the
//     earliest-posted receive among its sender's shard and the separate
//     AnySource list (the two candidates' stamps are compared).
//   - unexpected messages carry arriveSeq; an AnySource receive matches
//     the earliest arrival across all shards, and a source-specific
//     receive matches the earliest within its shard — which is exactly
//     per-sender arrival order, the only order MPI guarantees.
//
// The table is not separately locked: every method requires the worker's
// mu, exactly like the slices it replaces. Sharding here buys scan
// locality, not lock concurrency — the worker lock is held for a bounded
// walk of one shard instead of the whole queue.

// matchShards is the shard count (power of two so the index is a mask).
// Ranks hash by low bits; 16 shards keep per-shard scans short up to a
// few hundred ranks without bloating small workers.
const matchShards = 16

func matchShard(from int) int { return from & (matchShards - 1) }

// matchTable holds both matching queues. Zero value is ready to use.
type matchTable struct {
	postSeq   uint64
	arriveSeq uint64

	posted    [matchShards][]*Request // source-specific receives, by from
	postedAny []*Request              // AnySource receives (from < 0)
	nPosted   int

	unexpected [matchShards][]*unexMsg // buffered messages, by sender
	nUnex      int
}

func (t *matchTable) lenPosted() int     { return t.nPosted }
func (t *matchTable) lenUnexpected() int { return t.nUnex }

// addPosted appends a receive in posting order.
func (t *matchTable) addPosted(r *Request) {
	t.postSeq++
	r.postSeq = t.postSeq
	if r.from < 0 {
		t.postedAny = append(t.postedAny, r)
	} else {
		sh := matchShard(r.from)
		t.posted[sh] = append(t.posted[sh], r)
	}
	t.nPosted++
}

// removePosted removes a specific receive (CancelRecv), reporting whether
// it was still queued.
func (t *matchTable) removePosted(r *Request) bool {
	list := &t.postedAny
	if r.from >= 0 {
		list = &t.posted[matchShard(r.from)]
	}
	for i, q := range *list {
		if q == r {
			*list = append((*list)[:i], (*list)[i+1:]...)
			t.nPosted--
			return true
		}
	}
	return false
}

// matchPosted finds and removes the earliest-posted receive matching m:
// the first match in the sender's shard raced against the first match in
// the AnySource list, decided by postSeq.
func (t *matchTable) matchPosted(m *unexMsg) *Request {
	sh := matchShard(m.from)
	si := -1
	for i, r := range t.posted[sh] {
		if matches(r, m.from, m.tag) {
			si = i
			break
		}
	}
	ai := -1
	for i, r := range t.postedAny {
		if matches(r, m.from, m.tag) {
			ai = i
			break
		}
	}
	switch {
	case si < 0 && ai < 0:
		return nil
	case ai < 0 || (si >= 0 && t.posted[sh][si].postSeq < t.postedAny[ai].postSeq):
		r := t.posted[sh][si]
		t.posted[sh] = append(t.posted[sh][:si], t.posted[sh][si+1:]...)
		t.nPosted--
		return r
	default:
		r := t.postedAny[ai]
		t.postedAny = append(t.postedAny[:ai], t.postedAny[ai+1:]...)
		t.nPosted--
		return r
	}
}

// filterPosted removes every receive keep rejects and returns them in
// posting order (callers complete them outside the worker lock).
func (t *matchTable) filterPosted(keep func(*Request) bool) []*Request {
	var removed []*Request
	filter := func(list []*Request) []*Request {
		kept := list[:0]
		for _, r := range list {
			if keep(r) {
				kept = append(kept, r)
			} else {
				removed = append(removed, r)
			}
		}
		return kept
	}
	for sh := range t.posted {
		t.posted[sh] = filter(t.posted[sh])
	}
	t.postedAny = filter(t.postedAny)
	t.nPosted -= len(removed)
	return removed
}

// takeAllPosted empties the posted queues and returns the receives.
func (t *matchTable) takeAllPosted() []*Request {
	all := make([]*Request, 0, t.nPosted)
	for sh := range t.posted {
		all = append(all, t.posted[sh]...)
		t.posted[sh] = nil
	}
	all = append(all, t.postedAny...)
	t.postedAny = nil
	t.nPosted = 0
	return all
}

// addUnexpected appends a message in arrival order.
func (t *matchTable) addUnexpected(m *unexMsg) {
	t.arriveSeq++
	m.arriveSeq = t.arriveSeq
	sh := matchShard(m.from)
	t.unexpected[sh] = append(t.unexpected[sh], m)
	t.nUnex++
}

// probeEarliest locates (without removing) the earliest-arrival message
// matching req: first match in the source's shard, or the minimum
// arriveSeq among each shard's first match for AnySource.
func (t *matchTable) probeEarliest(req *Request) *unexMsg {
	if req.from >= 0 {
		for _, m := range t.unexpected[matchShard(req.from)] {
			if matches(req, m.from, m.tag) {
				return m
			}
		}
		return nil
	}
	var best *unexMsg
	for sh := range t.unexpected {
		for _, m := range t.unexpected[sh] {
			if !matches(req, m.from, m.tag) {
				continue
			}
			if best == nil || m.arriveSeq < best.arriveSeq {
				best = m
			}
			break // shard is arrival-ordered; later entries can't beat m
		}
	}
	return best
}

// matchUnexpected finds and removes the earliest-arrival message
// matching req.
func (t *matchTable) matchUnexpected(req *Request) *unexMsg {
	m := t.probeEarliest(req)
	if m != nil {
		t.removeUnexpected(m)
	}
	return m
}

// removeUnexpected removes a specific message (probe claim), reporting
// whether it was still queued.
func (t *matchTable) removeUnexpected(m *unexMsg) bool {
	sh := matchShard(m.from)
	for i, q := range t.unexpected[sh] {
		if q == m {
			t.unexpected[sh] = append(t.unexpected[sh][:i], t.unexpected[sh][i+1:]...)
			t.nUnex--
			return true
		}
	}
	return false
}

// findUnexpected locates the buffered message for key, scanning only its
// sender's shard (the hot path for mid-message eager fragments).
func (t *matchTable) findUnexpected(key msgKey) *unexMsg {
	for _, m := range t.unexpected[matchShard(key.from)] {
		if m.from == key.from && m.id == key.id {
			return m
		}
	}
	return nil
}

// forEachUnexpected visits every buffered message (failure poisoning).
func (t *matchTable) forEachUnexpected(fn func(*unexMsg)) {
	for sh := range t.unexpected {
		for _, m := range t.unexpected[sh] {
			fn(m)
		}
	}
}

// filterUnexpected removes every message keep rejects and returns them
// (janitor reaping of stale errored entries).
func (t *matchTable) filterUnexpected(keep func(*unexMsg) bool) []*unexMsg {
	var removed []*unexMsg
	for sh := range t.unexpected {
		kept := t.unexpected[sh][:0]
		for _, m := range t.unexpected[sh] {
			if keep(m) {
				kept = append(kept, m)
			} else {
				removed = append(removed, m)
			}
		}
		t.unexpected[sh] = kept
	}
	t.nUnex -= len(removed)
	return removed
}

// takeAllUnexpected empties the unexpected queues and returns the
// messages.
func (t *matchTable) takeAllUnexpected() []*unexMsg {
	all := make([]*unexMsg, 0, t.nUnex)
	for sh := range t.unexpected {
		all = append(all, t.unexpected[sh]...)
		t.unexpected[sh] = nil
	}
	t.nUnex = 0
	return all
}
