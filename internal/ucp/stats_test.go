package ucp

import (
	"testing"
	"time"

	"mpicd/internal/fabric"
)

// The stats counters make protocol selection observable: these tests pin
// down which path each message class takes.

func TestStatsEagerVsRndvSelection(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{RndvThresh: 32 * 1024})
	out := make([]byte, 1<<20)

	send := func(n int) {
		t.Helper()
		rr, _ := b.Recv(0, 1, exactMask, Contig{}, out[:n], -1)
		sr, err := a.Send(1, 1, Contig{}, out[:n], int64(n), 0, ProtoAuto)
		if err != nil {
			t.Fatal(err)
		}
		if err := WaitAll(sr, rr); err != nil {
			t.Fatal(err)
		}
	}

	send(1024) // below threshold
	if got := a.Stats().EagerSends.Load(); got != 1 {
		t.Fatalf("eager sends = %d", got)
	}
	if got := a.Stats().RndvSends.Load(); got != 0 {
		t.Fatalf("rndv sends = %d", got)
	}
	send(1 << 20) // above threshold
	if got := a.Stats().RndvSends.Load(); got != 1 {
		t.Fatalf("rndv sends = %d", got)
	}
	if got := b.Stats().PostedHits.Load(); got != 2 {
		t.Fatalf("posted hits = %d", got)
	}
}

func TestStatsIovGoesRndvEarly(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{RndvThresh: 1 << 20, IovRndvMin: 8192})
	parts := [][]byte{make([]byte, 8192), make([]byte, 8192)}
	dst := [][]byte{make([]byte, 16384)}
	rr, _ := b.Recv(0, 1, exactMask, Iov{}, dst, -1)
	sr, err := a.Send(1, 1, Iov{}, parts, -1, 0, ProtoAuto)
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	// 16 KiB is far below RndvThresh, but the region list still pulls.
	if got := a.Stats().RndvSends.Load(); got != 1 {
		t.Fatalf("iov rndv sends = %d", got)
	}
}

func TestStatsEagerFragmentCount(t *testing.T) {
	a, b := pair(t, fabric.Config{FragSize: 1024}, Config{FragSize: 1024, RndvThresh: 1 << 20})
	data := make([]byte, 10*1024)
	out := make([]byte, len(data))
	rr, _ := b.Recv(0, 1, exactMask, Contig{}, out, -1)
	sr, _ := a.Send(1, 1, Contig{}, data, -1, 0, ProtoAuto)
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().EagerFragments.Load(); got != 10 {
		t.Fatalf("fragments = %d, want 10", got)
	}
}

func TestStatsUnexpectedHit(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{})
	sr, _ := a.Send(1, 1, Contig{}, []byte{1}, 1, 0, ProtoAuto)
	if err := sr.Wait(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	out := make([]byte, 1)
	rr, _ := b.Recv(0, 1, exactMask, Contig{}, out, 1)
	if err := rr.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().UnexpectedHits.Load(); got != 1 {
		t.Fatalf("unexpected hits = %d", got)
	}
	if got := b.Stats().PostedHits.Load(); got != 0 {
		t.Fatalf("posted hits = %d", got)
	}
}

func TestStatsSelfSend(t *testing.T) {
	f := fabric.NewInproc(1, fabric.Config{})
	w := NewWorker(f.NIC(0), Config{})
	defer w.Close()
	out := make([]byte, 4)
	rr, _ := w.Recv(0, 1, exactMask, Contig{}, out, -1)
	sr, _ := w.Send(0, 1, Contig{}, []byte{1, 2, 3, 4}, -1, 0, ProtoAuto)
	if err := WaitAll(sr, rr); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().SelfSends.Load(); got != 1 {
		t.Fatalf("self sends = %d", got)
	}
}
