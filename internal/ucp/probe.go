package ucp

import "fmt"

// Message describes a probed inbound message. A Message returned by Mprobe
// is claimed: it is no longer visible to matching and must be consumed with
// MRecv (the MPI_Mprobe/MPI_Mrecv pattern the paper's Python discussion
// revolves around).
type Message struct {
	From  int
	Tag   Tag
	Total int64
	Aux0  int64

	w       *Worker
	msg     *unexMsg
	claimed bool
}

// Probe looks for an inbound message matching (from, tag, mask) without
// removing it. With block set it waits for one; otherwise it returns nil
// when nothing matches.
func (w *Worker) Probe(from int, tag, mask Tag, block bool) (*Message, error) {
	return w.probe(from, tag, mask, block, false)
}

// Mprobe is Probe plus claim: the matched message is removed from the
// unexpected queue and reserved for a later MRecv.
func (w *Worker) Mprobe(from int, tag, mask Tag, block bool) (*Message, error) {
	return w.probe(from, tag, mask, block, true)
}

func (w *Worker) probe(from int, tag, mask Tag, block, claim bool) (*Message, error) {
	probeReq := &Request{tag: tag, mask: mask, from: from}
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.closed {
			return nil, ErrWorkerClosed
		}
		for i, m := range w.unexpected {
			if !matches(probeReq, m.from, m.tag) {
				continue
			}
			info := &Message{From: m.from, Tag: m.tag, Total: m.total, Aux0: m.aux0, w: w, msg: m}
			if claim {
				w.unexpected = append(w.unexpected[:i], w.unexpected[i+1:]...)
				m.claimed = true
				info.claimed = true
				if m.selfSrc == nil && !m.rndv {
					// Eager fragments keep arriving; route them here.
					w.claimed[msgKey{m.from, m.id}] = m
				}
			}
			return info, nil
		}
		if !block {
			return nil, nil
		}
		w.cond.Wait()
	}
}

// MRecv receives a message claimed by Mprobe into (buf, count) with
// datatype dt.
func (w *Worker) MRecv(m *Message, dt Datatype, buf any, count int64) (*Request, error) {
	if m == nil || !m.claimed || m.w != w {
		return nil, fmt.Errorf("ucp: MRecv requires a message claimed by Mprobe on this worker")
	}
	req := newRequest(w)
	req.dt = dt
	req.buf = buf
	req.count = count
	m.claimed = false
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, ErrWorkerClosed
	}
	delete(w.claimed, msgKey{m.msg.from, m.msg.id})
	w.startRecvLocked(req, m.msg) // releases w.mu
	return req, nil
}
