package ucp

import (
	"fmt"
	"time"
)

// Message describes a probed inbound message. A Message returned by Mprobe
// is claimed: it is no longer visible to matching and must be consumed with
// MRecv (the MPI_Mprobe/MPI_Mrecv pattern the paper's Python discussion
// revolves around).
type Message struct {
	From  int
	Tag   Tag
	Total int64
	Aux0  int64

	w       *Worker
	msg     *unexMsg
	claimed bool
}

// Probe looks for an inbound message matching (from, tag, mask) without
// removing it. With block set it waits for one; otherwise it returns nil
// when nothing matches. A blocking probe honors Config.ReqTimeout exactly
// like Recv: when the deadline passes with no match it fails with
// ErrTimeout instead of waiting forever on a dead peer.
func (w *Worker) Probe(from int, tag, mask Tag, block bool) (*Message, error) {
	return w.probe(from, tag, mask, block, false)
}

// Mprobe is Probe plus claim: the matched message is removed from the
// unexpected queue and reserved for a later MRecv.
func (w *Worker) Mprobe(from int, tag, mask Tag, block bool) (*Message, error) {
	return w.probe(from, tag, mask, block, true)
}

func (w *Worker) probe(from int, tag, mask Tag, block, claim bool) (*Message, error) {
	probeReq := &Request{tag: tag, mask: mask, from: from}
	// Blocking probes carry the same deadline as receives. The janitor
	// broadcasts w.cond every sweep tick (it always runs when ReqTimeout
	// is configured), so a prober blocked on a dead peer wakes, observes
	// the expired deadline and fails with ErrTimeout instead of hanging.
	var deadline time.Time
	if block && w.cfg.ReqTimeout > 0 {
		deadline = time.Now().Add(w.cfg.ReqTimeout)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.closed {
			return nil, ErrWorkerClosed
		}
		if m := w.table.probeEarliest(probeReq); m != nil {
			info := &Message{From: m.from, Tag: m.tag, Total: m.total, Aux0: m.aux0, w: w, msg: m}
			if claim {
				w.table.removeUnexpected(m)
				m.claimed = true
				info.claimed = true
				if m.selfSrc == nil && !m.rndv {
					// Eager fragments keep arriving; route them here.
					w.claimed[msgKey{m.from, m.id}] = m
				}
			}
			return info, nil
		}
		// Nothing buffered can satisfy the probe; if its only possible
		// senders are declared dead, no message ever will. This covers
		// blocked probes with no ReqTimeout configured: DeclarePeerFailed
		// broadcasts w.cond, the prober wakes, re-scans, and lands here.
		if err := w.deadSourceErr(from); err != nil {
			return nil, err
		}
		if !block {
			return nil, nil
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			w.stats.Timeouts.Add(1)
			return nil, ErrTimeout
		}
		w.cond.Wait()
	}
}

// MRecv receives a message claimed by Mprobe into (buf, count) with
// datatype dt.
func (w *Worker) MRecv(m *Message, dt Datatype, buf any, count int64) (*Request, error) {
	if m == nil || !m.claimed || m.w != w {
		return nil, fmt.Errorf("ucp: MRecv requires a message claimed by Mprobe on this worker")
	}
	req := newRequest(w)
	req.dt = dt
	req.buf = buf
	req.count = count
	req.obsStart = w.obsNow()
	w.mu.Lock()
	if w.closed {
		// The claim is only consumed on success: failing here with the
		// claim already cleared would strand the message — unreceivable
		// (no longer claimed) and unprobeable (not in the unexpected
		// queue).
		w.mu.Unlock()
		return nil, ErrWorkerClosed
	}
	m.claimed = false
	delete(w.claimed, msgKey{m.msg.from, m.msg.id})
	w.startRecvLocked(req, m.msg) // releases w.mu
	return req, nil
}
