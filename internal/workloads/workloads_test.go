package workloads

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"unsafe"

	"mpicd/internal/core"
	"mpicd/internal/ddt"
	"mpicd/internal/layout"
)

func run2(t *testing.T, rank0, rank1 func(c *core.Comm) error) {
	t.Helper()
	err := core.Run(2, core.Options{}, func(c *core.Comm) error {
		if c.Rank() == 0 {
			return rank0(c)
		}
		return rank1(c)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStructLayoutsAgreeWithDDT(t *testing.T) {
	if got := StructVecType().Extent(); got != StructVecExtent {
		t.Fatalf("struct-vec extent = %d", got)
	}
	if got := StructVecType().Size(); got != StructVecPacked {
		t.Fatalf("struct-vec size = %d", got)
	}
	if got := StructSimpleType().Extent(); got != StructSimpleExtent {
		t.Fatalf("struct-simple extent = %d", got)
	}
	if got := StructSimpleType().Size(); got != StructSimplePacked {
		t.Fatalf("struct-simple size = %d", got)
	}
	if !StructSimpleNoGapType().Contig() {
		t.Fatal("no-gap struct must be contiguous")
	}
	if StructSimpleType().Contig() {
		t.Fatal("gapped struct must not be contiguous")
	}
}

func TestManualPackMatchesDDTPack(t *testing.T) {
	const count = 13
	img := make([]byte, count*StructVecExtent)
	FillStructVec(img, count, 7)
	manual := make([]byte, count*StructVecPacked)
	if n := PackStructVec(img, count, manual); n != len(manual) {
		t.Fatalf("manual pack wrote %d of %d", n, len(manual))
	}
	engine := make([]byte, count*StructVecPacked)
	if _, err := StructVecType().Pack(img, count, engine); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(manual, engine) {
		t.Fatal("manual pack and datatype engine disagree for struct-vec")
	}

	img2 := make([]byte, count*StructSimpleExtent)
	FillStructSimple(img2, count, 9)
	m2 := make([]byte, count*StructSimplePacked)
	PackStructSimple(img2, count, m2)
	e2 := make([]byte, count*StructSimplePacked)
	StructSimpleType().Pack(img2, count, e2)
	if !bytes.Equal(m2, e2) {
		t.Fatal("manual pack and engine disagree for struct-simple")
	}
}

func TestManualUnpackRoundtrip(t *testing.T) {
	const count = 9
	img := make([]byte, count*StructVecExtent)
	FillStructVec(img, count, 3)
	packed := make([]byte, count*StructVecPacked)
	PackStructVec(img, count, packed)
	out := make([]byte, count*StructVecExtent)
	UnpackStructVec(packed, out, count)
	repacked := make([]byte, count*StructVecPacked)
	PackStructVec(out, count, repacked)
	if !bytes.Equal(repacked, packed) {
		t.Fatal("struct-vec manual roundtrip mismatch")
	}
}

// sendRecvCustom transfers an image with the custom datatype and returns
// the received image.
func sendRecvCustom(t *testing.T, dt *core.Datatype, img []byte, count int, extent int) []byte {
	t.Helper()
	out := make([]byte, count*extent)
	run2(t,
		func(c *core.Comm) error { return c.Send(img, Count(count), dt, 1, 1) },
		func(c *core.Comm) error {
			_, err := c.Recv(out, Count(count), dt, 0, 1)
			return err
		})
	return out
}

func TestStructVecCustomTransfer(t *testing.T) {
	for _, count := range []int{1, 4, 33} {
		t.Run(fmt.Sprint(count), func(t *testing.T) {
			img := make([]byte, count*StructVecExtent)
			FillStructVec(img, count, 11)
			out := sendRecvCustom(t, StructVecCustom(), img, count, StructVecExtent)
			a := make([]byte, count*StructVecPacked)
			b := make([]byte, count*StructVecPacked)
			PackStructVec(img, count, a)
			PackStructVec(out, count, b)
			if !bytes.Equal(a, b) {
				t.Fatal("custom struct-vec transfer mismatch")
			}
		})
	}
}

func TestStructSimpleCustomTransfer(t *testing.T) {
	const count = 100
	img := make([]byte, count*StructSimpleExtent)
	FillStructSimple(img, count, 5)
	out := sendRecvCustom(t, StructSimpleCustom(), img, count, StructSimpleExtent)
	a := make([]byte, count*StructSimplePacked)
	b := make([]byte, count*StructSimplePacked)
	PackStructSimple(img, count, a)
	PackStructSimple(out, count, b)
	if !bytes.Equal(a, b) {
		t.Fatal("custom struct-simple transfer mismatch")
	}
}

func TestStructSimpleNoGapCustomTransfer(t *testing.T) {
	const count = 64
	img := make([]byte, count*StructSimpleNoGapExtent)
	FillStructSimpleNoGap(img, count, 2)
	out := sendRecvCustom(t, StructSimpleNoGapCustom(), img, count, StructSimpleNoGapExtent)
	if !bytes.Equal(out, img) {
		t.Fatal("no-gap custom transfer mismatch")
	}
}

func TestStructVecDerivedTransfer(t *testing.T) {
	// The rsmpi baseline path: derived datatype through the engine.
	const count = 8
	img := make([]byte, count*StructVecExtent)
	FillStructVec(img, count, 4)
	dt := core.FromDDT(StructVecType())
	out := make([]byte, count*StructVecExtent)
	run2(t,
		func(c *core.Comm) error { return c.Send(img, count, dt, 1, 1) },
		func(c *core.Comm) error {
			_, err := c.Recv(out, count, dt, 0, 1)
			return err
		})
	a := make([]byte, count*StructVecPacked)
	b := make([]byte, count*StructVecPacked)
	PackStructVec(img, count, a)
	PackStructVec(out, count, b)
	if !bytes.Equal(a, b) {
		t.Fatal("derived struct-vec transfer mismatch")
	}
}

func TestDoubleVecGenerator(t *testing.T) {
	v := NewDoubleVec(10000, 1024, 1)
	if DoubleVecBytes(v) != 10000 {
		t.Fatalf("total = %d", DoubleVecBytes(v))
	}
	if len(v) != 10 {
		t.Fatalf("subvectors = %d", len(v))
	}
	if len(v[9]) != 10000-9*1024 {
		t.Fatalf("tail = %d", len(v[9]))
	}
	small := NewDoubleVec(100, 1024, 1)
	if len(small) != 1 || len(small[0]) != 100 {
		t.Fatal("sub-message-size double-vec should be a single subvector")
	}
}

func TestDoubleVecManualRoundtrip(t *testing.T) {
	check := func(totalRaw uint16, subRaw uint8) bool {
		total := int(totalRaw)%50000 + 1
		sub := int(subRaw)%2000 + 1
		v := NewDoubleVec(total, sub, 3)
		buf := make([]byte, PackedDoubleVecSize(v))
		if PackDoubleVec(v, buf) != len(buf) {
			return false
		}
		out, err := UnpackDoubleVec(buf)
		if err != nil || len(out) != len(v) {
			return false
		}
		for i := range v {
			if !bytes.Equal(out[i], v[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleVecCustomTransfer(t *testing.T) {
	dt := DoubleVecCustom()
	for _, tc := range []struct{ total, sub int }{
		{64, 64}, {4096, 256}, {1 << 20, 1024}, {100, 4096},
	} {
		t.Run(fmt.Sprintf("%d_%d", tc.total, tc.sub), func(t *testing.T) {
			send := NewDoubleVec(tc.total, tc.sub, 9)
			run2(t,
				func(c *core.Comm) error { return c.Send(send, 1, dt, 1, 1) },
				func(c *core.Comm) error {
					var recv [][]byte
					if _, err := c.Recv(&recv, 1, dt, 0, 1); err != nil {
						return err
					}
					if len(recv) != len(send) {
						return fmt.Errorf("subvectors = %d, want %d", len(recv), len(send))
					}
					for i := range send {
						if !bytes.Equal(recv[i], send[i]) {
							return fmt.Errorf("subvector %d mismatch", i)
						}
					}
					return nil
				})
		})
	}
}

func TestDoubleVecManualTransfer(t *testing.T) {
	// The manual-pack method: pack, send bytes (with mprobe sizing on the
	// receive side), unpack.
	send := NewDoubleVec(100000, 512, 7)
	run2(t,
		func(c *core.Comm) error {
			buf := make([]byte, PackedDoubleVecSize(send))
			PackDoubleVec(send, buf)
			return c.Send(buf, -1, core.TypeBytes, 1, 1)
		},
		func(c *core.Comm) error {
			m, err := c.Mprobe(0, 1)
			if err != nil {
				return err
			}
			buf := make([]byte, m.Bytes)
			if _, err := c.MRecv(m, buf, -1, core.TypeBytes); err != nil {
				return err
			}
			recv, err := UnpackDoubleVec(buf)
			if err != nil {
				return err
			}
			if len(recv) != len(send) {
				return errors.New("length mismatch")
			}
			for i := range send {
				if !bytes.Equal(recv[i], send[i]) {
					return fmt.Errorf("subvector %d mismatch", i)
				}
			}
			return nil
		})
}

func TestFieldValuesSurviveCustomTransfer(t *testing.T) {
	// Value-level check (not just byte equality) for struct-simple.
	const count = 3
	img := make([]byte, count*StructSimpleExtent)
	FillStructSimple(img, count, 21)
	out := sendRecvCustom(t, StructSimpleCustom(), img, count, StructSimpleExtent)
	for e := 0; e < count; e++ {
		base := e * StructSimpleExtent
		if layout.I32(out, base) != 21+int32(3*e) {
			t.Fatalf("element %d field a = %d", e, layout.I32(out, base))
		}
		if layout.F64(out, base+16) != 21+float64(e)/16 {
			t.Fatalf("element %d field d = %v", e, layout.F64(out, base+16))
		}
	}
}

// TestDerivedMirrorsMatchHandBuilt pins the Go mirror structs to the
// paper layouts: field offsets and sizeof match the layout constants,
// the derived datatype is transfer-equivalent to the hand-built one, and
// — through the plan cache — both compile to the very same plan.
func TestDerivedMirrorsMatchHandBuilt(t *testing.T) {
	if s := unsafe.Sizeof(StructVecGo{}); s != StructVecExtent {
		t.Fatalf("sizeof(StructVecGo) = %d, want %d", s, StructVecExtent)
	}
	var sv StructVecGo
	if o := unsafe.Offsetof(sv.D); o != 16 {
		t.Fatalf("StructVecGo.D at offset %d, want 16", o)
	}
	if o := unsafe.Offsetof(sv.Data); o != 24 {
		t.Fatalf("StructVecGo.Data at offset %d, want 24", o)
	}
	if s := unsafe.Sizeof(StructSimpleGo{}); s != StructSimpleExtent {
		t.Fatalf("sizeof(StructSimpleGo) = %d, want %d", s, StructSimpleExtent)
	}
	if s := unsafe.Sizeof(StructSimpleNoGapGo{}); s != StructSimpleNoGapExtent {
		t.Fatalf("sizeof(StructSimpleNoGapGo) = %d, want %d", s, StructSimpleNoGapExtent)
	}

	cases := []struct {
		name          string
		derived, hand *ddt.Type
		packed        int64
	}{
		{"struct-vec", StructVecDerived(), StructVecType(), StructVecPacked},
		{"struct-simple", StructSimpleDerived(), StructSimpleType(), StructSimplePacked},
		{"struct-simple-no-gap", StructSimpleNoGapDerived(), StructSimpleNoGapType(), StructSimpleNoGapPacked},
	}
	for _, tc := range cases {
		if !ddt.Equal(tc.derived, tc.hand) {
			t.Fatalf("%s: derived type is not transfer-equivalent to the hand-built one", tc.name)
		}
		if tc.derived.Size() != tc.packed {
			t.Fatalf("%s: derived packed size %d, want %d", tc.name, tc.derived.Size(), tc.packed)
		}
		if tc.derived.Plan() != tc.hand.Plan() {
			t.Fatalf("%s: derived and hand-built types compiled separate plans", tc.name)
		}
	}
}

// TestDerivedStructVecPacksIdentically: the derived type moves exactly
// the bytes the manual packing loop moves.
func TestDerivedStructVecPacksIdentically(t *testing.T) {
	const count = 3
	img := make([]byte, count*StructVecExtent)
	FillStructVec(img, count, 7)
	manual := make([]byte, count*StructVecPacked)
	PackStructVec(img, count, manual)
	derived := make([]byte, count*StructVecPacked)
	if _, err := StructVecDerived().Pack(img, count, derived); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(manual, derived) {
		t.Fatal("derived pack disagrees with the manual packing loop")
	}
}
