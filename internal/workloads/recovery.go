package workloads

import (
	"errors"
	"fmt"
	"sync"

	"mpicd/internal/core"
)

// Communicator-creation collectives (Dup, Split, Shrink) advance a
// shared per-rank context-id counter and therefore must run in the same
// order on every rank — the MPI rule the soak would otherwise trip over:
// its two drivers fail independently, and letting each shrink its own
// communicator concurrently races the counter and can hand two live
// communicators the same matching context (observed in early soak runs
// as a training gradient landing in a pub/sub receive).
//
// rankRecovery is the application-level answer: one coordinator per
// rank. A driver that sees a taxonomy failure revokes its communicator
// (unblocking every peer) and parks at the rendezvous; when both
// drivers have arrived, one of them rebuilds the whole generation in a
// fixed order — Shrink the base communicator, then Dup the pub/sub
// communicator from the survivor world — and both resume on the new
// pair. Every rank runs the identical creation sequence, so context ids
// stay consistent world-wide.

// errPeerDriverGone reports a rendezvous that can never complete: the
// other driver already returned (cleanly or with a hard error), so
// nobody is left to pair with.
var errPeerDriverGone = errors.New("workloads: peer driver exited; recovery rendezvous abandoned")

// errSelfDead marks a recovery abandoned because this rank was killed.
// Drivers translate it into a quiet exit via their Dead hook.
var errSelfDead = errors.New("workloads: local rank killed during recovery")

// recoveryAttempts bounds how many times one rendezvous retries the
// Shrink+Dup sequence when further failures land mid-recovery.
const recoveryAttempts = 5

type rankRecovery struct {
	mu   sync.Mutex
	cond *sync.Cond
	dead func() bool

	base *core.Comm // current training communicator
	pub  *core.Comm // current pub/sub communicator
	gen  uint64     // completed recovery generations

	arrived  int
	departed bool
	err      error // terminal coordinator failure, sticky
}

func newRankRecovery(base, pub *core.Comm, dead func() bool) *rankRecovery {
	r := &rankRecovery{base: base, pub: pub, dead: dead}
	r.cond = sync.NewCond(&r.mu)
	if r.dead == nil {
		r.dead = func() bool { return false }
	}
	return r
}

// comms returns the current generation's communicator pair.
func (r *rankRecovery) comms() (base, pub *core.Comm, gen uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.base, r.pub, r.gen
}

// depart marks this driver as permanently gone and releases any peer
// parked at the rendezvous — a driver that exits for any reason must
// call it (defer), or a later failure would leave its peer waiting
// forever for a pairing that cannot happen.
func (r *rankRecovery) depart() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.departed = true
	r.cond.Broadcast()
}

// recover is called by a driver whose operations on generation gen
// failed inside the taxonomy, after it revoked its own communicator. It
// blocks until the rank's other driver arrives, rebuilds both
// communicators exactly once for the pair, and returns the new
// generation.
func (r *rankRecovery) recover(gen uint64) (base, pub *core.Comm, newGen uint64, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if gen != r.gen {
		// The pair already finished a later generation than the one this
		// driver failed on; just hand over the current pair.
		return r.base, r.pub, r.gen, r.err
	}
	r.arrived++
	if r.arrived < 2 {
		for gen == r.gen && r.err == nil && !r.departed {
			r.cond.Wait()
		}
		if gen == r.gen && r.err == nil {
			return nil, nil, 0, errPeerDriverGone
		}
		return r.base, r.pub, r.gen, r.err
	}

	// Both drivers are in: this one rebuilds the generation. Holding
	// r.mu through the collectives is fine — the only other party is
	// parked in cond.Wait.
	defer func() {
		r.arrived = 0
		r.cond.Broadcast()
	}()
	var lastErr error
	for attempt := 0; attempt < recoveryAttempts; attempt++ {
		if r.dead() {
			r.err = errSelfDead
			return nil, nil, 0, r.err
		}
		nbase, err := r.base.Shrink()
		if err != nil {
			if errors.Is(err, core.ErrExcluded) {
				// The survivors agreed this live rank dead (a false-positive
				// verdict, e.g. an asymmetric link flap outlasting the
				// detector window). The verdict is permanent and retrying
				// Shrink on the old communicator would block forever — the
				// survivors have moved on. Fence: both drivers exit quietly.
				r.err = err
				return nil, nil, 0, r.err
			}
			lastErr = fmt.Errorf("shrink: %w", err)
			continue
		}
		if nbase.Size() == 1 {
			// A symmetric outage can isolate this rank completely: its own
			// detector declares every peer dead and the agreement trivially
			// converges on a singleton world, while the survivors (if any)
			// agree the mirror image and move on without it. No fence notice
			// can reach a rank nobody can send to, so the split-brain is
			// resolved here: a soak driver alone in the world has nothing
			// left to measure, and spinning on self-collectives would only
			// distort the run's statistics. Treat it as fenced.
			r.err = fmt.Errorf("%w: recovery left this rank alone in a singleton world", core.ErrExcluded)
			return nil, nil, 0, r.err
		}
		npub, err := nbase.Dup()
		if err != nil {
			// A further failure landed between the shrink and the dup;
			// revoke the half-built base so every rank abandons it and
			// retries from the (still revoked) previous base.
			_ = nbase.Revoke()
			lastErr = fmt.Errorf("dup after shrink: %w", err)
			continue
		}
		r.base, r.pub = nbase, npub
		r.gen++
		return r.base, r.pub, r.gen, nil
	}
	if r.dead() {
		r.err = errSelfDead
	} else {
		r.err = fmt.Errorf("recovery failed after %d attempts: %w", recoveryAttempts, lastErr)
	}
	return nil, nil, 0, r.err
}
