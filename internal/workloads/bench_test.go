package workloads

import (
	"testing"

	"mpicd/internal/core"
)

// Local packing costs (no communication): the raw loop work behind the
// paper's methods.

func BenchmarkManualPackStructSimple(b *testing.B) {
	const count = 32768
	img := make([]byte, count*StructSimpleExtent)
	FillStructSimple(img, count, 1)
	dst := make([]byte, count*StructSimplePacked)
	b.SetBytes(int64(len(dst)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackStructSimple(img, count, dst)
	}
}

func BenchmarkHandlerPackStructSimple(b *testing.B) {
	// The custom handler's pack callback over the same data: must stay
	// within range of the hand-written loop.
	const count = 32768
	img := make([]byte, count*StructSimpleExtent)
	FillStructSimple(img, count, 1)
	dst := make([]byte, count*StructSimplePacked)
	dt := StructSimpleCustom()
	b.SetBytes(int64(len(dst)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Pack(img, count, dt, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnginePackStructSimple(b *testing.B) {
	// The derived-datatype engine on the same data (the rsmpi path).
	const count = 32768
	img := make([]byte, count*StructSimpleExtent)
	FillStructSimple(img, count, 1)
	dst := make([]byte, count*StructSimplePacked)
	t := StructSimpleType()
	b.SetBytes(int64(len(dst)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := t.Pack(img, count, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPackDoubleVec(b *testing.B) {
	vecs := NewDoubleVec(1<<20, 1024, 1)
	dst := make([]byte, PackedDoubleVecSize(vecs))
	b.SetBytes(int64(len(dst)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackDoubleVec(vecs, dst)
	}
}

func BenchmarkUnpackDoubleVec(b *testing.B) {
	vecs := NewDoubleVec(1<<20, 1024, 1)
	buf := make([]byte, PackedDoubleVecSize(vecs))
	PackDoubleVec(vecs, buf)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := UnpackDoubleVec(buf); err != nil {
			b.Fatal(err)
		}
	}
}
