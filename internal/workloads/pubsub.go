package workloads

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mpicd/internal/core"
	"mpicd/internal/ddt"
	"mpicd/internal/layout"
	"mpicd/internal/obs"
)

// The pub/sub soak driver: a publisher (comm rank 0) fans frames out to
// every subscriber over a persistent Bcast, and each subscriber feeds a
// bounded in-process queue drained by a consumer goroutine. A full queue
// blocks the subscriber before it re-enters the Bcast, which stalls the
// publisher at the collective — backpressure falls out of the
// collective's semantics instead of an ad-hoc credit protocol. The
// driver runs on its own communicator (a Dup of the training world), so
// its traffic and its recovery are isolated from the training loop's.

// PubSubConfig parameterises one rank's pub/sub driver.
type PubSubConfig struct {
	// PayloadWords is the number of int64 payload words per frame after
	// the two header words (default 64).
	PayloadWords int
	// QueueDepth bounds the subscriber-side delivery queue (default 16).
	QueueDepth int

	// Stop, when closed, makes the publisher mark its next frame final;
	// subscribers exit after consuming it.
	Stop <-chan struct{}
	// Dead reports whether this rank has been killed by the chaos
	// schedule.
	Dead func() bool

	// Registry (optional) receives soak.pubsub_iter_ns latency
	// observations (publisher side). Watchdog (optional) is petted once
	// per frame.
	Registry *obs.Registry
	Watchdog *obs.Watchdog

	// rec, when set, coordinates recovery with the rank's other driver
	// (see rankRecovery). When nil the driver shrinks its own
	// communicator.
	rec *rankRecovery
}

func (cfg *PubSubConfig) defaults() {
	if cfg.PayloadWords <= 0 {
		cfg.PayloadWords = 64
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
}

// PubSubStats is one rank's pub/sub tally for a soak run.
type PubSubStats struct {
	Published  int64 // frames published (while this rank was the root)
	Delivered  int64 // frames consumed off the bounded queue
	Recoveries int64 // successful Revoke/Agree/Shrink/rebind cycles
	Fenced     bool  // exited because the survivors agreed this live rank dead
}

// Frame layout: word 0 = sequence number, word 1 = final flag, then
// PayloadWords words of payload derived from the sequence number.
const pubsubHeaderWords = 2

func fillFrame(frame []byte, seq int64, final bool) {
	layout.PutI64(frame, 0, seq)
	var f int64
	if final {
		f = 1
	}
	layout.PutI64(frame, 8, f)
	words := len(frame)/8 - pubsubHeaderWords
	for i := 0; i < words; i++ {
		layout.PutI64(frame, (pubsubHeaderWords+i)*8, seq*31+int64(i)*7)
	}
}

func checkFrame(frame []byte) (seq int64, final bool, err error) {
	seq = layout.I64(frame, 0)
	final = layout.I64(frame, 8) != 0
	words := len(frame)/8 - pubsubHeaderWords
	for i := 0; i < words; i++ {
		want := seq*31 + int64(i)*7
		if got := layout.I64(frame, (pubsubHeaderWords+i)*8); got != want {
			return seq, final, fmt.Errorf("frame %d: payload word %d = %d, want %d", seq, i, got, want)
		}
	}
	return seq, final, nil
}

// RunPubSub drives one rank's side of the fan-out until the publisher's
// final frame (or this rank's death). The publisher is the
// communicator's rank 0 and must be protected from the chaos schedule —
// with the root dead there is nobody left to mark a frame final.
func RunPubSub(c *core.Comm, cfg PubSubConfig) (PubSubStats, error) {
	cfg.defaults()
	var stats PubSubStats
	dead := func() bool { return cfg.Dead != nil && cfg.Dead() }

	frame := make([]byte, (pubsubHeaderWords+cfg.PayloadWords)*8)
	words := core.Count(len(frame) / 8)
	bc, err := c.BcastInit(frame, words, core.FromDDT(ddt.Int64), 0)
	if err != nil {
		return stats, err
	}
	defer func() { _ = bc.Free() }()

	var hist *obs.Histogram
	if cfg.Registry != nil {
		hist = cfg.Registry.Histogram("soak.pubsub_iter_ns")
	}

	// Subscriber side: the bounded queue and its consumer. The consumer
	// re-verifies each frame so corruption cannot hide behind the queue.
	var (
		queue    chan []byte
		consumer sync.WaitGroup
		consumed int64
		consErr  error
	)
	if c.Rank() != 0 {
		queue = make(chan []byte, cfg.QueueDepth)
		consumer.Add(1)
		go func() {
			defer consumer.Done()
			for f := range queue {
				if _, _, err := checkFrame(f); err != nil && consErr == nil {
					consErr = err
				}
				consumed++
			}
		}()
	}
	finish := func() {
		if queue != nil {
			close(queue)
			consumer.Wait()
			stats.Delivered = consumed
		}
	}

	var gen uint64
	if cfg.rec != nil {
		defer cfg.rec.depart()
	}
	var seq, lastSeen int64 = 0, -1
	for {
		begin := time.Now()
		var final bool
		if c.Rank() == 0 {
			select {
			case <-cfg.Stop:
				final = true
			default:
			}
			fillFrame(frame, seq, final)
		}
		err := bc.Start()
		if err == nil {
			err = bc.Wait()
		}
		if err != nil {
			if dead() {
				finish()
				return stats, nil
			}
			if !errors.Is(err, core.ErrProcFailed) && !errors.Is(err, core.ErrRevoked) {
				finish()
				return stats, fmt.Errorf("pubsub frame outside the taxonomy: %w", err)
			}
			var nc *core.Comm
			var rerr error
			if cfg.rec != nil {
				_ = c.Revoke()
				_, nc, gen, rerr = cfg.rec.recover(gen)
			} else {
				nc, rerr = recoverComm(c, dead)
			}
			if rerr != nil {
				finish()
				if dead() {
					return stats, nil
				}
				if errors.Is(rerr, core.ErrExcluded) {
					// Fenced (see ErrExcluded): exit like a dead rank.
					stats.Fenced = true
					return stats, nil
				}
				return stats, rerr
			}
			_ = bc.Wait()
			if rerr := bc.Rebind(nc); rerr != nil {
				finish()
				return stats, fmt.Errorf("rebinding after shrink: %w", rerr)
			}
			c = nc
			// Shrink renumbers order-preservingly, so the root role can
			// migrate: if the old root was excluded, the lowest survivor
			// becomes rank 0 here and takes over publishing. It must
			// continue the sequence from what it saw as a subscriber —
			// restarting at its stale local seq (or 0) would violate the
			// monotonicity every subscriber checks.
			if c.Rank() == 0 && seq <= lastSeen {
				seq = lastSeen + 1
			}
			stats.Recoveries++
			continue
		}

		if c.Rank() == 0 {
			stats.Published++
			seq++
		} else {
			got, isFinal, cerr := checkFrame(frame)
			if cerr != nil {
				finish()
				return stats, cerr
			}
			// Sequence numbers never reset, so they must never decrease.
			// Gaps are legal (a frame lost to a recovery window), and so is
			// a repeat: a publisher whose broadcast failed partway re-sends
			// the same frame after recovery, and subscribers that already
			// had it see it twice. Repeats are verified but not re-queued.
			if got < lastSeen {
				finish()
				return stats, fmt.Errorf("sequence went backwards: %d after %d", got, lastSeen)
			}
			repeat := got == lastSeen
			lastSeen = got
			final = isFinal
			if !repeat {
				// Hand the frame to the consumer; a full queue blocks here,
				// which is the backpressure point.
				cp := make([]byte, len(frame))
				copy(cp, frame)
				queue <- cp
			}
		}
		if hist != nil {
			hist.Observe(time.Since(begin).Nanoseconds())
		}
		if cfg.Watchdog != nil {
			cfg.Watchdog.Pet()
		}
		if final {
			finish()
			if consErr != nil {
				return stats, consErr
			}
			return stats, nil
		}
	}
}
