package workloads

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"mpicd/internal/core"
	"mpicd/internal/fabric"
	"mpicd/internal/obs"
	"mpicd/internal/ucp"
)

// The chaos soak orchestrator: bring up an in-process world with
// heartbeat failure detection and fault-wrapped NICs, run the training
// and pub/sub drivers concurrently on every rank (on separate
// communicators, via Dup), replay a seeded chaos schedule against the
// live traffic, and hold the run to its invariants — forward progress
// under the watchdog, verified payloads, recovery after every kill, and
// a world that tears down leak-free. The whole run derives from one
// seed: a failed soak reproduces from its report header alone.

// SoakConfig parameterises a soak run. Zero values get defaults sized
// for a quick (~2 s) smoke run; CI and the mpicd-soak binary raise
// Budget into the tens of seconds.
type SoakConfig struct {
	Ranks  int           // world size (default 5)
	Seed   int64         // chaos schedule seed (default 1)
	Budget time.Duration // wall-clock traffic budget (default 2s)

	Kills         int // rank-kill events (default 1; clamped by the schedule)
	CorruptBursts int // corruption-burst events (default Ranks)
	LinkFlaps     int // link-flap events (default Ranks)

	// WatchdogWindow is the longest tolerated no-progress window across
	// the whole world (default 5s). Any window without a completed
	// training step or pub/sub frame anywhere counts as a stall, and any
	// stall fails the run.
	WatchdogWindow time.Duration

	// MinStepsPerSec, when > 0, is the sustained-throughput floor: total
	// completed training steps divided by elapsed traffic time must not
	// fall below it.
	MinStepsPerSec float64

	// Registry receives every metric the run produces (created fresh
	// when nil). Reuse across runs is not supported: gauge names would
	// collide.
	Registry *obs.Registry

	// Logf, when set, receives progress lines (chaos events, recoveries).
	Logf func(format string, args ...any)
}

func (cfg *SoakConfig) defaults() {
	if cfg.Ranks <= 0 {
		cfg.Ranks = 5
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 2 * time.Second
	}
	if cfg.Kills == 0 {
		cfg.Kills = 1
	}
	if cfg.WatchdogWindow <= 0 {
		cfg.WatchdogWindow = 5 * time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
}

// SoakReport is the outcome of one soak run. Violations lists every
// broken invariant; an empty list is a pass.
type SoakReport struct {
	Seed      int           `json:"seed"`
	Ranks     int           `json:"ranks"`
	Budget    time.Duration `json:"budget_ns"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	Events    []string      `json:"events"` // chaos events actually applied
	Killed    []int         `json:"killed"` // ranks killed, in kill order
	Fenced    []int         `json:"fenced"` // live ranks the survivors agreed dead (ErrExcluded)
	Survivors int           `json:"survivors"`

	TrainSteps  int64   `json:"train_steps"` // completed training steps, all survivors
	PubFrames   int64   `json:"pub_frames"`  // frames published (rank 0)
	Delivered   int64   `json:"delivered"`   // frames consumed off subscriber queues
	Recoveries  int64   `json:"recoveries"`  // Revoke/Agree/Shrink cycles, both drivers
	StepsPerSec float64 `json:"steps_per_sec"`

	TrainP50  time.Duration `json:"train_p50_ns"`
	TrainP99  time.Duration `json:"train_p99_ns"`
	PubSubP50 time.Duration `json:"pubsub_p50_ns"`
	PubSubP99 time.Duration `json:"pubsub_p99_ns"`

	Stalls     int64    `json:"stalls"`
	LeakCheck  string   `json:"leak_check"` // "ok" or the leak error
	Violations []string `json:"violations"`
}

// soakTuning scales the failure-detection and retransmission horizons
// with the traffic budget. The chaos schedule holds flapped links down
// for 2–4% of the budget, so a fixed DeadAfter would make every flap on
// a long run a death verdict and shrink the world to nothing. Scaling
// DeadAfter to ~3% splits the flaps into two populations: most are
// ridden out by retransmission with no failure verdict at all —
// sustained turbulence, the common production case — while the longest
// outlast the detector and exercise the full
// exclusion/fence/shrink/rebind path. The retransmission budget is
// stretched past DeadAfter so the detector's typed verdict
// (ErrProcFailed) always lands before the reliable layer gives up with
// a bare timeout.
func soakTuning(budget time.Duration) (hb fabric.DetectorConfig, rexmitRetries int) {
	deadAfter := budget / 35
	if deadAfter < 150*time.Millisecond {
		deadAfter = 150 * time.Millisecond
	}
	if deadAfter > 2*time.Second {
		deadAfter = 2 * time.Second
	}
	hb = fabric.DetectorConfig{
		Period:       5 * time.Millisecond,
		SuspectAfter: deadAfter / 4,
		DeadAfter:    deadAfter,
	}
	// Default backoff reaches ~381ms over the first 7 attempts, then
	// adds 200ms per round: spend DeadAfter plus a second of margin in
	// the flat tail.
	rexmitRetries = 7 + int((deadAfter+time.Second)/(200*time.Millisecond))
	return hb, rexmitRetries
}

// RunSoak executes one seeded soak run and returns its report. The
// returned error is non-nil exactly when the report has violations (or
// the harness itself failed); the report is valid either way.
func RunSoak(cfg SoakConfig) (*SoakReport, error) {
	cfg.defaults()
	rep := &SoakReport{Seed: int(cfg.Seed), Ranks: cfg.Ranks, Budget: cfg.Budget}
	reg := cfg.Registry

	poolGauge := obs.LeakGauge{Name: "fabric.pool_outstanding", Fn: func() int64 {
		return reg.Snapshot().Gauges["fabric.pool_outstanding"]
	}}
	snap := obs.TakeLeakSnapshot(poolGauge)
	hb, rexmitRetries := soakTuning(cfg.Budget)

	wd := obs.NewWatchdog(cfg.WatchdogWindow, func(stalled time.Duration, progress int64) {
		cfg.Logf("soak: WATCHDOG no progress for %v (progress=%d)", stalled, progress)
	})
	wd.Register(reg)

	// World: heartbeat detection + one FaultNIC per rank on a shared
	// kill switch, all metrics funneled into the run's registry.
	ks := fabric.NewKillSwitch()
	fns := make([]*fabric.FaultNIC, cfg.Ranks)
	var fnMu sync.Mutex
	opt := core.Options{
		// The chaos schedule injects corruption and link loss, so the
		// world runs the loss-tolerant protocol: CRC32C on eager
		// fragments and pull frames, sender-side retention and
		// retransmission until acked. Without these, a corrupt burst on
		// the zero-copy in-process fabric would hand flipped bytes
		// straight to the application.
		Fabric: fabric.Config{Checksum: true},
		UCP: ucp.Config{
			Heartbeat:     hb,
			Reliable:      true,
			Checksum:      true,
			RexmitRetries: rexmitRetries,
			Obs:           &obs.Observer{Registry: reg},
		},
		WrapNIC: func(rank int, nic fabric.NIC) fabric.NIC {
			fn := fabric.WrapFault(nic, fabric.FaultPlan{Kills: ks})
			fnMu.Lock()
			fns[rank] = fn
			fnMu.Unlock()
			return fn
		},
	}
	sys := core.NewSystem(cfg.Ranks, opt)

	schedule := fabric.BuildChaosSchedule(fabric.ChaosPlan{
		Seed:          cfg.Seed,
		Budget:        cfg.Budget,
		Ranks:         cfg.Ranks,
		Protect:       []int{0}, // pub/sub root and reporting rank
		Kills:         cfg.Kills,
		CorruptBursts: cfg.CorruptBursts,
		LinkFlaps:     cfg.LinkFlaps,
	})
	runner := fabric.NewChaosRunner(fns, schedule)
	var evMu sync.Mutex
	runner.OnEvent = func(ev fabric.ChaosEvent) {
		line := fmt.Sprintf("%v %s rank=%d peer=%d count=%d", ev.At.Round(time.Millisecond), ev.Kind, ev.Rank, ev.Peer, ev.Count)
		evMu.Lock()
		rep.Events = append(rep.Events, line)
		evMu.Unlock()
		cfg.Logf("soak: chaos %s", line)
	}

	// Per-rank bodies: Dup the pub/sub communicator first (collective,
	// must complete world-wide before chaos starts), then run both
	// drivers concurrently.
	stop := make(chan struct{})
	type rankResult struct {
		train    TrainingStats
		pub      PubSubStats
		trainErr error
		pubErr   error
		setupErr error
	}
	results := make([]rankResult, cfg.Ranks)
	var setup, work sync.WaitGroup
	setup.Add(cfg.Ranks)
	work.Add(cfg.Ranks)
	for rank := 0; rank < cfg.Ranks; rank++ {
		go func(rank int) {
			defer work.Done()
			res := &results[rank]
			c := sys.Comm(rank)
			pubComm, err := c.Dup()
			if err != nil {
				res.setupErr = err
				setup.Done()
				return
			}
			setup.Done()
			dead := func() bool { return ks.Dead(rank) }
			rec := newRankRecovery(c, pubComm, dead)
			var drivers sync.WaitGroup
			drivers.Add(2)
			go func() {
				defer drivers.Done()
				res.train, res.trainErr = RunTrainingLoop(c, TrainingConfig{
					Stop: stop, Dead: dead, Registry: reg, Watchdog: wd, rec: rec,
				})
			}()
			go func() {
				defer drivers.Done()
				res.pub, res.pubErr = RunPubSub(pubComm, PubSubConfig{
					Stop: stop, Dead: dead, Registry: reg, Watchdog: wd, rec: rec,
				})
			}()
			drivers.Wait()
		}(rank)
	}
	setup.Wait()

	// Traffic is flowing: arm the clock, the watchdog, and the chaos.
	begin := time.Now()
	wd.Start()
	runner.Start()
	budget := time.AfterFunc(cfg.Budget, func() { close(stop) })

	// Bound the run even if an invariant breaks in a way that wedges a
	// collective (one rank exits on a hard error, its peers block
	// waiting for it): past a grace window, force-kill the whole world —
	// the detectors poison every pending operation, the drivers observe
	// their own death and drain, and the violation is reported instead
	// of the suite hanging.
	workDone := make(chan struct{})
	go func() { work.Wait(); close(workDone) }()
	grace := cfg.Budget + 2*cfg.WatchdogWindow + 10*time.Second
	select {
	case <-workDone:
	case <-time.After(grace):
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("run still live %v past its budget; world force-killed", grace-cfg.Budget))
		for r := 0; r < cfg.Ranks; r++ {
			if fns[r] != nil {
				fns[r].Kill()
			}
		}
		<-workDone
	}
	rep.Elapsed = time.Since(begin)
	budget.Stop()
	runner.Stop()
	wd.Stop()

	rep.Killed = runner.Killed()
	rep.Survivors = cfg.Ranks - len(rep.Killed)
	rep.Stalls = wd.Stalls()
	for rank := range results {
		res := &results[rank]
		if res.train.Fenced || res.pub.Fenced {
			rep.Fenced = append(rep.Fenced, rank)
		}
		rep.TrainSteps += res.train.Steps
		rep.Recoveries += res.train.Recoveries + res.pub.Recoveries
		rep.PubFrames += res.pub.Published
		rep.Delivered += res.pub.Delivered
		for _, e := range []struct {
			what string
			err  error
		}{{"setup", res.setupErr}, {"training", res.trainErr}, {"pubsub", res.pubErr}} {
			if e.err != nil {
				rep.Violations = append(rep.Violations, fmt.Sprintf("rank %d %s: %v", rank, e.what, e.err))
			}
		}
	}
	if rep.Elapsed > 0 {
		rep.StepsPerSec = float64(rep.TrainSteps) / rep.Elapsed.Seconds()
	}
	th := reg.Histogram("soak.train_iter_ns")
	ph := reg.Histogram("soak.pubsub_iter_ns")
	rep.TrainP50, rep.TrainP99 = time.Duration(th.Quantile(0.50)), time.Duration(th.Quantile(0.99))
	rep.PubSubP50, rep.PubSubP99 = time.Duration(ph.Quantile(0.50)), time.Duration(ph.Quantile(0.99))

	// Tear down, then hold the leak gate: every goroutine and pool
	// buffer the run grabbed — including everything the kills and
	// recoveries abandoned — must be released.
	sys.Close()
	rep.LeakCheck = "ok"
	if err := snap.Check(10*time.Second, poolGauge); err != nil {
		rep.LeakCheck = err.Error()
		rep.Violations = append(rep.Violations, fmt.Sprintf("leak: %v", err))
	}

	// Invariant gates.
	if rep.TrainSteps == 0 {
		rep.Violations = append(rep.Violations, "no training steps completed")
	}
	if rep.PubFrames == 0 {
		rep.Violations = append(rep.Violations, "no frames published")
	}
	if rep.Delivered == 0 {
		rep.Violations = append(rep.Violations, "no frames delivered to subscribers")
	}
	if len(rep.Killed) > 0 && rep.Recoveries == 0 {
		rep.Violations = append(rep.Violations, fmt.Sprintf("%d rank(s) killed but no recoveries observed", len(rep.Killed)))
	}
	if rep.Stalls > 0 {
		rep.Violations = append(rep.Violations, fmt.Sprintf("watchdog counted %d stall window(s) of %v", rep.Stalls, cfg.WatchdogWindow))
	}
	if cfg.MinStepsPerSec > 0 && rep.StepsPerSec < cfg.MinStepsPerSec {
		rep.Violations = append(rep.Violations, fmt.Sprintf("throughput %.1f steps/s below floor %.1f", rep.StepsPerSec, cfg.MinStepsPerSec))
	}

	if len(rep.Violations) > 0 {
		return rep, fmt.Errorf("soak(seed=%d): %d invariant violation(s):\n  %s",
			cfg.Seed, len(rep.Violations), strings.Join(rep.Violations, "\n  "))
	}
	return rep, nil
}
