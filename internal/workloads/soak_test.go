package workloads

import (
	"strings"
	"testing"
	"time"

	"mpicd/internal/obs"
)

// The in-tree soak smoke tests: short seeded runs of the full chaos
// harness. The CI soak job and the mpicd-soak binary run the same
// harness for tens of seconds; these keep the machinery honest on every
// `go test` without dominating the suite's wall clock.

func runSoak(t *testing.T, cfg SoakConfig) *SoakReport {
	t.Helper()
	cfg.Logf = t.Logf
	rep, err := RunSoak(cfg)
	if err != nil {
		t.Fatalf("soak failed: %v", err)
	}
	return rep
}

// TestSoakSmoke: one kill plus corruption and link flaps over a ~2.5s
// budget, every invariant enforced by RunSoak itself (the t.Fatal path),
// with sanity floors re-checked here so a silently-empty run cannot
// pass.
func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("soak smoke run takes seconds")
	}
	rep := runSoak(t, SoakConfig{
		Ranks:  5,
		Seed:   42,
		Budget: 2500 * time.Millisecond,
		Kills:  1,
	})
	if len(rep.Killed) != 1 {
		t.Errorf("schedule killed %v, want exactly 1 victim", rep.Killed)
	}
	if rep.Survivors != rep.Ranks-len(rep.Killed) {
		t.Errorf("survivors = %d with %d killed of %d", rep.Survivors, len(rep.Killed), rep.Ranks)
	}
	if rep.Recoveries == 0 {
		t.Error("kill applied but no driver recovered")
	}
	if rep.TrainSteps == 0 || rep.PubFrames == 0 || rep.Delivered == 0 {
		t.Errorf("empty traffic: train=%d pub=%d delivered=%d", rep.TrainSteps, rep.PubFrames, rep.Delivered)
	}
	if rep.LeakCheck != "ok" {
		t.Errorf("leak check: %s", rep.LeakCheck)
	}
	t.Logf("soak: %d steps (%.0f/s), %d frames, %d delivered, %d recoveries, train p99 %v, pubsub p99 %v",
		rep.TrainSteps, rep.StepsPerSec, rep.PubFrames, rep.Delivered, rep.Recoveries, rep.TrainP50, rep.PubSubP99)
}

// TestSoakNoChaos: a fault-free run must sail through with zero
// recoveries — the invariants hold without the chaos machinery doing
// any masking.
func TestSoakNoChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run takes seconds")
	}
	rep := runSoak(t, SoakConfig{
		Ranks:         4,
		Seed:          7,
		Budget:        time.Second,
		Kills:         -1, // negative: below the schedule's clamp, no kill events
		CorruptBursts: -1,
		LinkFlaps:     -1,
	})
	if len(rep.Killed) != 0 || rep.Recoveries != 0 {
		t.Errorf("fault-free run saw %v killed, %d recoveries", rep.Killed, rep.Recoveries)
	}
}

// TestSoakScheduleDeterminism: the report's applied-event log derives
// entirely from the seed — two runs with the same config agree on what
// chaos happened (the reproducibility contract printed in every report
// header).
func TestSoakScheduleDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("soak runs take seconds")
	}
	cfg := SoakConfig{Ranks: 4, Seed: 20240711, Budget: 1200 * time.Millisecond, Kills: 1}
	a := runSoak(t, cfg)
	cfg.Registry = obs.NewRegistry() // fresh registry; same seed
	b := runSoak(t, cfg)
	if strings.Join(a.Events, "\n") != strings.Join(b.Events, "\n") {
		t.Errorf("same seed, different chaos:\nrun A:\n  %s\nrun B:\n  %s",
			strings.Join(a.Events, "\n  "), strings.Join(b.Events, "\n  "))
	}
	if len(a.Killed) != len(b.Killed) {
		t.Errorf("same seed, different kills: %v vs %v", a.Killed, b.Killed)
	}
}
