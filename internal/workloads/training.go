package workloads

import (
	"errors"
	"fmt"
	"time"

	"mpicd/internal/core"
	"mpicd/internal/ddt"
	"mpicd/internal/layout"
	"mpicd/internal/obs"
)

// The training-loop soak driver: the communication skeleton of
// data-parallel training, iterated for a wall-clock budget under chaos.
// Each step is a ring halo exchange over a strided vector datatype
// (persistent Send_init/Recv_init pairs) followed by a persistent
// Allreduce of a gradient buffer — the two patterns that dominate real
// training traffic. When a rank dies mid-step the driver runs the ULFM
// recovery protocol (Revoke → Agree → Shrink), re-aims its persistent
// handles at the survivor communicator, and keeps iterating.

// TrainingConfig parameterises one rank's training-loop driver.
type TrainingConfig struct {
	// GradCount is the number of int64 gradient elements reduced per
	// step (default 256). One extra element is appended internally as
	// the distributed stop flag.
	GradCount int
	// HaloBlocks/HaloBlockLen/HaloStride shape the halo's strided
	// vector datatype, in int64 elements (defaults 8, 4, 8).
	HaloBlocks, HaloBlockLen, HaloStride int

	// Stop, when closed, requests shutdown. Exit is collective: the
	// stop request rides the gradient Allreduce, so every rank leaves
	// after the same step and nobody hangs in a half-entered
	// collective.
	Stop <-chan struct{}
	// Dead reports whether this rank has been killed by the chaos
	// schedule; a dead rank's driver returns quietly instead of
	// reporting its poisoned operations as failures.
	Dead func() bool

	// Registry (optional) receives soak.train_iter_ns latency
	// observations. Watchdog (optional) is petted once per completed
	// step.
	Registry *obs.Registry
	Watchdog *obs.Watchdog

	// rec, when set, coordinates recovery with the rank's other driver:
	// communicator rebuilds happen once per rank in a fixed order
	// instead of concurrently per driver. When nil the driver shrinks
	// its own communicator (single-driver use).
	rec *rankRecovery
}

func (cfg *TrainingConfig) defaults() {
	if cfg.GradCount <= 0 {
		cfg.GradCount = 256
	}
	if cfg.HaloBlocks <= 0 {
		cfg.HaloBlocks = 8
	}
	if cfg.HaloBlockLen <= 0 {
		cfg.HaloBlockLen = 4
	}
	if cfg.HaloStride < cfg.HaloBlockLen {
		cfg.HaloStride = 8
	}
}

// TrainingStats is one rank's tally for a soak run.
type TrainingStats struct {
	Steps      int64 // completed training steps
	Recoveries int64 // successful Revoke/Agree/Shrink/rebind cycles
	Fenced     bool  // exited because the survivors agreed this live rank dead
}

// trainingState carries the per-communicator bindings that must be
// rebuilt (halos) or re-aimed (allreduce) after a shrink.
type trainingState struct {
	c        *core.Comm
	cfg      *TrainingConfig
	vdt      *core.Datatype
	extent   int
	sendImg  []byte // local halo contribution, vector layout
	leftImg  []byte // halo received from the left neighbor
	rightImg []byte // halo received from the right neighbor

	halos []*core.PersistentRequest

	gradSend []byte
	gradRecv []byte
	ar       *core.PersistentColl
}

// haloTag namespaces the driver's p2p traffic: direction in the low bit.
const (
	haloTagRight = 101 // sent to the right neighbor, received from the left
	haloTagLeft  = 102 // sent to the left neighbor, received from the right
)

func newTrainingState(c *core.Comm, cfg *TrainingConfig) (*trainingState, error) {
	vec, err := ddt.Vector(cfg.HaloBlocks, cfg.HaloBlockLen, cfg.HaloStride, ddt.Int64)
	if err != nil {
		return nil, err
	}
	extent := ((cfg.HaloBlocks-1)*cfg.HaloStride + cfg.HaloBlockLen) * 8
	gradBytes := (cfg.GradCount + 1) * 8 // +1: the distributed stop flag
	s := &trainingState{
		cfg:      cfg,
		vdt:      core.FromDDT(vec),
		extent:   extent,
		sendImg:  make([]byte, extent),
		leftImg:  make([]byte, extent),
		rightImg: make([]byte, extent),
		gradSend: make([]byte, gradBytes),
		gradRecv: make([]byte, gradBytes),
	}
	if err := s.bind(c); err != nil {
		return nil, err
	}
	return s, nil
}

// bind (re)creates the communicator-scoped bindings: fresh persistent
// halo pairs (neighbors change with renumbering) and the persistent
// Allreduce (re-aimed if it already exists, preserving its scratch).
func (s *trainingState) bind(c *core.Comm) error {
	s.c = c
	n := c.Size()
	left := (c.Rank() - 1 + n) % n
	right := (c.Rank() + 1) % n

	s.halos = s.halos[:0]
	if n > 1 {
		sr, err := c.SendInit(s.sendImg, 1, s.vdt, right, haloTagRight)
		if err != nil {
			return err
		}
		sl, err := c.SendInit(s.sendImg, 1, s.vdt, left, haloTagLeft)
		if err != nil {
			return err
		}
		rl, err := c.RecvInit(s.leftImg, 1, s.vdt, left, haloTagRight)
		if err != nil {
			return err
		}
		rr, err := c.RecvInit(s.rightImg, 1, s.vdt, right, haloTagLeft)
		if err != nil {
			return err
		}
		s.halos = append(s.halos, sr, sl, rl, rr)
	}

	if s.ar == nil {
		ar, err := c.AllreduceInit(s.gradSend, s.gradRecv, core.Count(s.cfg.GradCount+1), core.FromDDT(ddt.Int64), core.OpSumInt64)
		if err != nil {
			return err
		}
		s.ar = ar
		return nil
	}
	return s.ar.Rebind(c)
}

// fillHalo writes this rank's halo pattern: a function of the comm rank
// and element index only, so verification does not depend on neighbors
// being at exactly the same step count around a recovery window.
func (s *trainingState) fillHalo() {
	for b := 0; b < s.cfg.HaloBlocks; b++ {
		for e := 0; e < s.cfg.HaloBlockLen; e++ {
			off := (b*s.cfg.HaloStride + e) * 8
			layout.PutI64(s.sendImg, off, int64(s.c.Rank())*1_000_000+int64(b*s.cfg.HaloBlockLen+e))
		}
	}
}

// checkHalo verifies a received halo image against the sender's pattern
// (vector-selected blocks only; gaps are not transferred).
func (s *trainingState) checkHalo(img []byte, from int) error {
	for b := 0; b < s.cfg.HaloBlocks; b++ {
		for e := 0; e < s.cfg.HaloBlockLen; e++ {
			off := (b*s.cfg.HaloStride + e) * 8
			want := int64(from)*1_000_000 + int64(b*s.cfg.HaloBlockLen+e)
			if got := layout.I64(img, off); got != want {
				return fmt.Errorf("halo from rank %d: element (%d,%d) = %d, want %d", from, b, e, got, want)
			}
		}
	}
	return nil
}

// step runs one training iteration: halo exchange, then gradient
// Allreduce carrying the stop flag. It returns (stopAgreed, err).
func (s *trainingState) step(stopping bool) (bool, error) {
	c := s.c
	n := c.Size()
	if n > 1 {
		s.fillHalo()
		if err := core.StartAll(s.halos...); err != nil {
			return false, err
		}
		if err := core.WaitAllPersistent(s.halos...); err != nil {
			return false, err
		}
		left := (c.Rank() - 1 + n) % n
		right := (c.Rank() + 1) % n
		if err := s.checkHalo(s.leftImg, left); err != nil {
			return false, err
		}
		if err := s.checkHalo(s.rightImg, right); err != nil {
			return false, err
		}
	}

	// Gradients: rank r contributes (r+1)*(i+1); the expected sum
	// depends only on the communicator size, so a one-step skew across a
	// recovery window cannot produce a false mismatch.
	for i := 0; i < s.cfg.GradCount; i++ {
		layout.PutI64(s.gradSend, i*8, int64(c.Rank()+1)*int64(i+1))
	}
	var flag int64
	if stopping {
		flag = 1
	}
	layout.PutI64(s.gradSend, s.cfg.GradCount*8, flag)

	if err := s.ar.Start(); err != nil {
		return false, err
	}
	if err := s.ar.Wait(); err != nil {
		return false, err
	}

	var rankSum int64
	for r := 0; r < n; r++ {
		rankSum += int64(r + 1)
	}
	for i := 0; i < s.cfg.GradCount; i++ {
		if got := layout.I64(s.gradRecv, i*8); got != rankSum*int64(i+1) {
			return false, fmt.Errorf("gradient[%d] = %d, want %d (size %d)", i, got, rankSum*int64(i+1), n)
		}
	}
	return layout.I64(s.gradRecv, s.cfg.GradCount*8) > 0, nil
}

// drain waits out any still-active halo instances after a failure so
// their poisoned completions land before the bindings are replaced —
// otherwise a leak check would find their schedule goroutines alive.
func (s *trainingState) drain() {
	_ = core.WaitAllPersistent(s.halos...)
	_ = s.ar.Wait()
}

// free releases the persistent allreduce worker.
func (s *trainingState) free() {
	if s.ar != nil {
		_ = s.ar.Free()
	}
}

// RunTrainingLoop drives one rank's training loop until the distributed
// stop agreement (or this rank's death). Taxonomy failures trigger
// recovery; anything else is returned as a hard error.
func RunTrainingLoop(c *core.Comm, cfg TrainingConfig) (TrainingStats, error) {
	cfg.defaults()
	var stats TrainingStats
	dead := func() bool { return cfg.Dead != nil && cfg.Dead() }

	s, err := newTrainingState(c, &cfg)
	if err != nil {
		return stats, err
	}
	defer s.free()

	var hist *obs.Histogram
	if cfg.Registry != nil {
		hist = cfg.Registry.Histogram("soak.train_iter_ns")
	}
	stopping := func() bool {
		if cfg.Stop == nil {
			return false
		}
		select {
		case <-cfg.Stop:
			return true
		default:
			return false
		}
	}

	var gen uint64
	if cfg.rec != nil {
		defer cfg.rec.depart()
	}
	for {
		begin := time.Now()
		done, err := s.step(stopping())
		if err != nil {
			if dead() {
				return stats, nil
			}
			if !errors.Is(err, core.ErrProcFailed) && !errors.Is(err, core.ErrRevoked) {
				return stats, fmt.Errorf("training step outside the taxonomy: %w", err)
			}
			var nc *core.Comm
			var rerr error
			if cfg.rec != nil {
				// Unblock every peer stuck in this communicator's
				// collectives, then pair up with the rank's other driver
				// for the ordered rebuild.
				_ = s.c.Revoke()
				nc, _, gen, rerr = cfg.rec.recover(gen)
			} else {
				nc, rerr = recoverComm(s.c, dead)
			}
			if rerr != nil {
				if dead() {
					return stats, nil
				}
				if errors.Is(rerr, core.ErrExcluded) {
					// The world moved on without us (see ErrExcluded). A
					// fenced rank exits like a dead one: quietly.
					stats.Fenced = true
					return stats, nil
				}
				return stats, rerr
			}
			s.drain()
			if rerr := s.bind(nc); rerr != nil {
				return stats, fmt.Errorf("rebinding after shrink: %w", rerr)
			}
			stats.Recoveries++
			continue
		}
		stats.Steps++
		if hist != nil {
			hist.Observe(time.Since(begin).Nanoseconds())
		}
		if cfg.Watchdog != nil {
			cfg.Watchdog.Pet()
		}
		if done {
			return stats, nil
		}
	}
}

// recoverComm runs the survivor side of the ULFM protocol on c and
// returns the shrunken communicator.
func recoverComm(c *core.Comm, dead func() bool) (*core.Comm, error) {
	if err := c.Revoke(); err != nil {
		return nil, fmt.Errorf("revoke: %w", err)
	}
	if _, err := c.Agree(0); err != nil {
		if dead() {
			return nil, err
		}
		return nil, fmt.Errorf("agree: %w", err)
	}
	nc, err := c.Shrink()
	if err != nil {
		if dead() {
			return nil, err
		}
		return nil, fmt.Errorf("shrink: %w", err)
	}
	return nc, nil
}
